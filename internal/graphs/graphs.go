// Package graphs generates the synthetic input graphs the benchmark
// workloads (BC, PageRank) run on. The paper uses University of Florida
// sparse-matrix collection graphs (rome99, nasa1824, ex33, c-22, c-37,
// c-36, ex3, c-40); this package provides deterministic generators that
// span the same structural space — road networks (low degree, huge
// diameter), FEM meshes (moderate local degree), and optimization
// matrices with dense hub rows (high contention) — and a catalog mapping
// each paper input to a generator instance (see catalog.go).
package graphs

import "math/rand"

// Graph is a directed graph in adjacency-list form (undirected inputs
// store both arcs).
type Graph struct {
	Name string
	Adj  [][]int32
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.Adj) }

// Edges returns the arc count.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// MaxDegree returns the maximum out-degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, a := range g.Adj {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// addUndirected inserts both arcs.
func (g *Graph) addUndirected(u, v int) {
	if u == v {
		return
	}
	g.Adj[u] = append(g.Adj[u], int32(v))
	g.Adj[v] = append(g.Adj[v], int32(u))
}

// Road generates a road-network-like graph: a jittered 2D grid with a
// fraction of diagonal shortcuts. Low average degree (~2.7), large
// diameter — the shape of rome99.
func Road(name string, side int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := side * side
	g := &Graph{Name: name, Adj: make([][]int32, n)}
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			// Sparse grid: drop some street segments.
			if x+1 < side && rng.Float64() < 0.75 {
				g.addUndirected(id(x, y), id(x+1, y))
			}
			if y+1 < side && rng.Float64() < 0.75 {
				g.addUndirected(id(x, y), id(x, y+1))
			}
			if x+1 < side && y+1 < side && rng.Float64() < 0.08 {
				g.addUndirected(id(x, y), id(x+1, y+1))
			}
		}
	}
	ensureConnectedSpine(g)
	return g
}

// FEM generates a finite-element-mesh-like graph: vertices connected to a
// band of near neighbours, moderate uniform degree — the shape of
// nasa1824 / ex33 / ex3.
func FEM(name string, n, band int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Adj: make([][]int32, n)}
	for u := 0; u < n; u++ {
		deg := 3 + rng.Intn(band)
		for k := 1; k <= deg; k++ {
			v := u + k
			if v < n && rng.Float64() < 0.8 {
				g.addUndirected(u, v)
			}
		}
		// Occasional long-range element coupling.
		if rng.Float64() < 0.1 {
			g.addUndirected(u, rng.Intn(n))
		}
	}
	ensureConnectedSpine(g)
	return g
}

// Hub generates an optimization-matrix-like graph: mostly sparse rows
// plus a few dense hub rows touching a large fraction of vertices — the
// contended shape of the c-* inputs.
func Hub(name string, n, hubs int, hubFrac float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Adj: make([][]int32, n)}
	for u := 0; u < n; u++ {
		deg := 1 + rng.Intn(4)
		for k := 0; k < deg; k++ {
			g.addUndirected(u, rng.Intn(n))
		}
	}
	for h := 0; h < hubs; h++ {
		hub := rng.Intn(n)
		for u := 0; u < n; u++ {
			if u != hub && rng.Float64() < hubFrac {
				g.addUndirected(hub, u)
			}
		}
	}
	ensureConnectedSpine(g)
	return g
}

// Uniform generates a uniform random graph with average degree d.
func Uniform(name string, n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Adj: make([][]int32, n)}
	arcs := n * d / 2
	for i := 0; i < arcs; i++ {
		g.addUndirected(rng.Intn(n), rng.Intn(n))
	}
	ensureConnectedSpine(g)
	return g
}

// ensureConnectedSpine links i to i+1 wherever vertex i is isolated, so
// BFS-based workloads reach every vertex.
func ensureConnectedSpine(g *Graph) {
	for u := 0; u < g.N()-1; u++ {
		if len(g.Adj[u]) == 0 {
			g.addUndirected(u, u+1)
		}
	}
	if n := g.N(); n > 1 && len(g.Adj[n-1]) == 0 {
		g.addUndirected(n-1, n-2)
	}
}

// BFS returns per-vertex level (distance from src, -1 unreachable) and
// the vertices grouped by level.
func (g *Graph) BFS(src int) (level []int, levels [][]int32) {
	level = make([]int, g.N())
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int32{int32(src)}
	levels = append(levels, frontier)
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if level[v] < 0 {
					level[v] = level[u] + 1
					next = append(next, v)
				}
			}
		}
		if len(next) > 0 {
			levels = append(levels, next)
		}
		frontier = next
	}
	return level, levels
}

// SigmaCounts runs the forward phase of Brandes' betweenness centrality
// from src: sigma[v] = number of shortest paths from src to v.
func (g *Graph) SigmaCounts(src int) []int64 {
	level, levels := g.BFS(src)
	sigma := make([]int64, g.N())
	sigma[src] = 1
	for _, frontier := range levels {
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if level[v] == level[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
	}
	return sigma
}

// PageRank runs fixed-point integer PageRank for iters iterations with
// damping factor 0.85 (scaled by 2^16) and returns the final ranks. This
// is the sequential reference the simulated workload must reproduce.
func (g *Graph) PageRank(iters int) []int64 {
	const scale = 1 << 16
	n := g.N()
	rank := make([]int64, n)
	for i := range rank {
		rank[i] = scale
	}
	next := make([]int64, n)
	for it := 0; it < iters; it++ {
		base := int64(scale) * 15 / 100
		for i := range next {
			next[i] = base
		}
		for u := 0; u < n; u++ {
			if len(g.Adj[u]) == 0 {
				continue
			}
			contrib := rank[u] * 85 / 100 / int64(len(g.Adj[u]))
			for _, v := range g.Adj[u] {
				next[v] += contrib
			}
		}
		rank, next = next, rank
	}
	return rank
}
