// Package telemetry is the semantics engine's instrumentation layer: an
// atomic-counter block per program check, threaded through the POR
// enumerator, the streaming race-classification pipeline, and the system
// model, with the same zero-overhead-when-disabled contract the probe
// hub gives the timing simulator. A nil *Check (the disabled mode) folds
// every counter method into one predictable nil-check branch, so the hot
// enumeration loops pay nothing when nobody is watching; an enabled
// check is a handful of uncontended atomic adds per execution.
//
// Counters split into two classes. The deterministic ones — executions
// enumerated, transitions taken, sleep-set skips, memo hits, race pairs,
// SC results, budget fraction — are pure functions of the explored
// search tree, identical across worker counts and runs; Record exposes
// exactly that subset for byte-identical JSONL telemetry artifacts.
// Scheduling-dependent ones — per-worker analyzed counts, idle waits,
// pool recycle rates, union-merge input sizes — live only in Snapshot,
// the live /checks view.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"rats/internal/rtrace"
)

// CheckState is one check's lifecycle state.
type CheckState uint8

const (
	// StateRunning: the check is enumerating/analyzing.
	StateRunning CheckState = iota
	// StateDone: the verdict was produced.
	StateDone
	// StateLimit: the execution budget tripped (ErrLimit).
	StateLimit
	// StateStopped: enumeration was stopped early (ErrStop/cancellation).
	StateStopped
	// StateFailed: the check returned a non-limit error.
	StateFailed

	// NumCheckStates bounds the enum for drift tests and array indexing.
	NumCheckStates = 5
)

func (s CheckState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateLimit:
		return "limit"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	}
	return "?"
}

// Check is one program check's live counter block. All methods are safe
// on a nil receiver (the disabled mode) and for concurrent use: the
// enumerator, analysis workers, and HTTP snapshotters share one Check.
type Check struct {
	program string
	model   string

	// suiteWorker is the suite-level worker that ran this check (-1
	// until attributed); it lets a -j N run show which CLI worker owned
	// which program.
	suiteWorker atomic.Int64

	clock func() time.Time

	state     atomic.Int32
	limit     atomic.Int64
	startNS   atomic.Int64 // wall-clock start, unix nanos (0 = not begun)
	elapsedNS atomic.Int64 // frozen by Finish; 0 while running

	enumerated  atomic.Int64 // executions recorded by the enumerator
	transitions atomic.Int64 // DFS transitions taken (execOne calls)
	sleepSkips  atomic.Int64 // transitions suppressed by the sleep set
	memoHits    atomic.Int64 // system-model seen-state memo hits
	analyzed    atomic.Int64 // executions classified by Analyze workers
	recycled    atomic.Int64 // executions refilled from Recycle
	allocated   atomic.Int64 // executions freshly allocated
	racePairs   atomic.Int64 // distinct racy pairs in the final verdict
	mergedRaces atomic.Int64 // union-merge inputs (sum of shard set sizes)
	scResults   atomic.Int64 // distinct final memory states

	// Solver counter block (Mode: solve checks only; zero otherwise).
	solveDecisions    atomic.Int64 // branching points: states/pairs with >1 choice
	solvePropagations atomic.Int64 // forced moves + statically implied pairs
	solveConflicts    atomic.Int64 // memo hits + statically refuted candidates
	solveLearned      atomic.Int64 // distinct states memoized

	mu       sync.Mutex
	workers  []*Worker
	onFinish func(*Check)
	traceID  string

	// span is the request-trace span covering the current enumeration
	// phase, if any. The engine reads it through the Check pointer the
	// options already carry, so linking a trace never widens EnumOptions
	// or the enumerator's hot search state (whose field offsets are
	// layout-sensitive; see the enumerator struct comment in exec.go).
	span atomic.Pointer[rtrace.Span]
}

// NewCheck builds a standalone (unregistered) check. Registry.NewCheck
// is the usual constructor; this one serves tests and one-off checks.
func NewCheck(program, model string) *Check {
	c := &Check{program: program, model: model}
	c.suiteWorker.Store(-1)
	return c
}

// Program returns the checked program's name ("" on nil).
func (c *Check) Program() string {
	if c == nil {
		return ""
	}
	return c.program
}

// Model returns the model the program was checked under ("" on nil).
func (c *Check) Model() string {
	if c == nil {
		return ""
	}
	return c.model
}

// SetClock overrides the wall clock (deterministic tests and goldens).
func (c *Check) SetClock(fn func() time.Time) {
	if c != nil {
		c.clock = fn
	}
}

// SetTraceID links the check to a request trace, so metric exemplars and
// /checks rows can point back at the trace that produced them.
func (c *Check) SetTraceID(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.traceID = id
	c.mu.Unlock()
}

// TraceID returns the linked request trace ID ("" on nil or unlinked).
func (c *Check) TraceID() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceID
}

// SetSpan links (or, with nil, unlinks) the request-trace span covering
// the check's current enumeration phase. While linked, the enumerator
// emits telemetry-fed span events — the sequential path's "enumerated"
// summary and the parallel pool's per-worker "enum.worker" children —
// onto it. The caller owns the span's lifetime: unlink before ending it.
func (c *Check) SetSpan(sp *rtrace.Span) {
	if c != nil {
		c.span.Store(sp)
	}
}

// Span returns the linked enumeration span (nil on a nil receiver or
// when no trace is linked).
func (c *Check) Span() *rtrace.Span {
	if c == nil {
		return nil
	}
	return c.span.Load()
}

// SetSuiteWorker attributes the check to a suite-level worker index.
func (c *Check) SetSuiteWorker(i int) {
	if c != nil {
		c.suiteWorker.Store(int64(i))
	}
}

func (c *Check) now() time.Time {
	if c.clock != nil {
		return c.clock()
	}
	return time.Now()
}

// Begin marks the check running with its execution budget and stamps the
// start time (first call wins).
func (c *Check) Begin(limit int64) {
	if c == nil {
		return
	}
	c.limit.Store(limit)
	c.state.Store(int32(StateRunning))
	c.startNS.CompareAndSwap(0, c.now().UnixNano())
}

// Finish freezes the elapsed time and moves the check to a terminal
// state. Only the first Finish takes effect.
func (c *Check) Finish(s CheckState) {
	if c == nil {
		return
	}
	if !c.state.CompareAndSwap(int32(StateRunning), int32(s)) {
		return
	}
	if start := c.startNS.Load(); start != 0 {
		c.elapsedNS.Store(c.now().UnixNano() - start)
	}
	c.mu.Lock()
	fn := c.onFinish
	c.mu.Unlock()
	if fn != nil {
		fn(c)
	}
}

// State returns the current lifecycle state (StateRunning on nil).
func (c *Check) State() CheckState {
	if c == nil {
		return StateRunning
	}
	return CheckState(c.state.Load())
}

// IncEnumerated counts one recorded execution.
func (c *Check) IncEnumerated() {
	if c != nil {
		c.enumerated.Add(1)
	}
}

// IncTransition counts one DFS transition taken.
func (c *Check) IncTransition() {
	if c != nil {
		c.transitions.Add(1)
	}
}

// IncSleepSkip counts one transition suppressed by the sleep set.
func (c *Check) IncSleepSkip() {
	if c != nil {
		c.sleepSkips.Add(1)
	}
}

// AddTransitions folds in a worker-local transition count. The
// enumerator's hot loops count into plain per-clone fields and flush
// once per branch, so the per-transition cost is a register increment
// in both modes rather than a pointer load and branch.
func (c *Check) AddTransitions(n int64) {
	if c != nil && n != 0 {
		c.transitions.Add(n)
	}
}

// AddSleepSkips folds in a worker-local sleep-set skip count.
func (c *Check) AddSleepSkips(n int64) {
	if c != nil && n != 0 {
		c.sleepSkips.Add(n)
	}
}

// AddMemoHits counts system-model seen-state memo hits.
func (c *Check) AddMemoHits(n int64) {
	if c != nil {
		c.memoHits.Add(n)
	}
}

// IncRecycled counts one execution refilled from the Recycle hook.
func (c *Check) IncRecycled() {
	if c != nil {
		c.recycled.Add(1)
	}
}

// IncAllocated counts one freshly allocated execution.
func (c *Check) IncAllocated() {
	if c != nil {
		c.allocated.Add(1)
	}
}

// SetUnion records the verdict union-merge outcome: distinct racy pairs,
// total shard-set entries merged, and distinct final memory states.
func (c *Check) SetUnion(racePairs, mergedRaces, scResults int64) {
	if c == nil {
		return
	}
	c.racePairs.Store(racePairs)
	c.mergedRaces.Store(mergedRaces)
	c.scResults.Store(scResults)
}

// AddSolve folds in the solve backend's counters: decisions (branching
// points with more than one choice), propagations (forced moves and
// statically implied race pairs), conflicts (memo hits and statically
// refuted candidate pairs), and learned (distinct states memoized). The
// solver is sequential and deterministic, so these land in Record and
// stay byte-identical across runs.
func (c *Check) AddSolve(decisions, propagations, conflicts, learned int64) {
	if c == nil {
		return
	}
	c.solveDecisions.Add(decisions)
	c.solvePropagations.Add(propagations)
	c.solveConflicts.Add(conflicts)
	c.solveLearned.Add(learned)
}

// Enumerated returns the live executions-recorded counter (0 on nil).
func (c *Check) Enumerated() int64 {
	if c == nil {
		return 0
	}
	return c.enumerated.Load()
}

// Worker registers one analysis worker's counter slot (nil on nil).
func (c *Check) Worker() *Worker {
	if c == nil {
		return nil
	}
	w := &Worker{c: c}
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	return w
}

// Worker is one analysis worker's private counters within a Check.
type Worker struct {
	c        *Check
	analyzed atomic.Int64
	idle     atomic.Int64
}

// IncAnalyzed counts one execution classified by this worker.
func (w *Worker) IncAnalyzed() {
	if w != nil {
		w.analyzed.Add(1)
		w.c.analyzed.Add(1)
	}
}

// IncIdle counts one blocking wait on an empty execution channel (the
// worker outpaced the enumerator).
func (w *Worker) IncIdle() {
	if w != nil {
		w.idle.Add(1)
	}
}

// WorkerSnapshot is one worker's share of the live snapshot.
type WorkerSnapshot struct {
	Analyzed  int64 `json:"analyzed"`
	IdleWaits int64 `json:"idle_waits"`
}

// Snapshot is the live, scheduling-dependent view of a Check: everything
// Record has plus wall-clock timing, pool recycle counts, union-merge
// input sizes, and per-worker attribution.
type Snapshot struct {
	Program           string           `json:"program"`
	Model             string           `json:"model"`
	State             string           `json:"state"`
	SuiteWorker       int64            `json:"suite_worker"`
	Limit             int64            `json:"limit"`
	Executions        int64            `json:"executions"`
	Transitions       int64            `json:"transitions"`
	SleepSkips        int64            `json:"sleep_skips"`
	PrunedPct         float64          `json:"pruned_pct"`
	MemoHits          int64            `json:"memo_hits"`
	Analyzed          int64            `json:"analyzed"`
	Recycled          int64            `json:"recycled"`
	Allocated         int64            `json:"allocated"`
	RacePairs         int64            `json:"race_pairs"`
	MergedRaces       int64            `json:"merged_races"`
	SCResults         int64            `json:"sc_results"`
	BudgetFraction    float64          `json:"budget_fraction"`
	SolveDecisions    int64            `json:"solve_decisions,omitempty"`
	SolvePropagations int64            `json:"solve_propagations,omitempty"`
	SolveConflicts    int64            `json:"solve_conflicts,omitempty"`
	SolveLearned      int64            `json:"solve_learned,omitempty"`
	StartedAt         string           `json:"started_at,omitempty"`
	ElapsedMs         float64          `json:"elapsed_ms"`
	ExecsPerSec       float64          `json:"execs_per_sec"`
	Workers           []WorkerSnapshot `json:"workers,omitempty"`
}

// Record is the deterministic subset of a finished check's counters:
// every field is a pure function of the explored search tree, so the
// JSON encoding is byte-identical across runs and worker counts. This is
// the -telemetry-out JSONL schema.
type Record struct {
	Program        string  `json:"program"`
	Model          string  `json:"model"`
	State          string  `json:"state"`
	Limit          int64   `json:"limit"`
	Executions     int64   `json:"executions"`
	Transitions    int64   `json:"transitions"`
	SleepSkips     int64   `json:"sleep_skips"`
	PrunedPct      float64 `json:"pruned_pct"`
	MemoHits       int64   `json:"memo_hits"`
	RacePairs      int64   `json:"race_pairs"`
	SCResults      int64   `json:"sc_results"`
	BudgetFraction float64 `json:"budget_fraction"`

	// Solver counters; omitempty keeps enumeration-mode records (and
	// their byte-identical JSONL goldens) unchanged.
	SolveDecisions    int64 `json:"solve_decisions,omitempty"`
	SolvePropagations int64 `json:"solve_propagations,omitempty"`
	SolveConflicts    int64 `json:"solve_conflicts,omitempty"`
	SolveLearned      int64 `json:"solve_learned,omitempty"`
}

// prunedPct is the share of candidate transitions the sleep set
// suppressed, in percent.
func prunedPct(skips, taken int64) float64 {
	if skips+taken == 0 {
		return 0
	}
	return 100 * float64(skips) / float64(skips+taken)
}

func budgetFraction(enumerated, limit int64) float64 {
	if limit <= 0 {
		return 0
	}
	return float64(enumerated) / float64(limit)
}

// Record returns the deterministic counter subset (zero value on nil).
func (c *Check) Record() Record {
	if c == nil {
		return Record{}
	}
	enum := c.enumerated.Load()
	skips, taken := c.sleepSkips.Load(), c.transitions.Load()
	return Record{
		Program:        c.program,
		Model:          c.model,
		State:          c.State().String(),
		Limit:          c.limit.Load(),
		Executions:     enum,
		Transitions:    taken,
		SleepSkips:     skips,
		PrunedPct:      prunedPct(skips, taken),
		MemoHits:       c.memoHits.Load(),
		RacePairs:      c.racePairs.Load(),
		SCResults:      c.scResults.Load(),
		BudgetFraction: budgetFraction(enum, c.limit.Load()),

		SolveDecisions:    c.solveDecisions.Load(),
		SolvePropagations: c.solvePropagations.Load(),
		SolveConflicts:    c.solveConflicts.Load(),
		SolveLearned:      c.solveLearned.Load(),
	}
}

// Snapshot returns the full live view (zero value on nil).
func (c *Check) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	rec := c.Record()
	s := Snapshot{
		Program:        rec.Program,
		Model:          rec.Model,
		State:          rec.State,
		SuiteWorker:    c.suiteWorker.Load(),
		Limit:          rec.Limit,
		Executions:     rec.Executions,
		Transitions:    rec.Transitions,
		SleepSkips:     rec.SleepSkips,
		PrunedPct:      rec.PrunedPct,
		MemoHits:       rec.MemoHits,
		Analyzed:       c.analyzed.Load(),
		Recycled:       c.recycled.Load(),
		Allocated:      c.allocated.Load(),
		RacePairs:      rec.RacePairs,
		MergedRaces:    c.mergedRaces.Load(),
		SCResults:      rec.SCResults,
		BudgetFraction: rec.BudgetFraction,

		SolveDecisions:    rec.SolveDecisions,
		SolvePropagations: rec.SolvePropagations,
		SolveConflicts:    rec.SolveConflicts,
		SolveLearned:      rec.SolveLearned,
	}
	if start := c.startNS.Load(); start != 0 {
		s.StartedAt = time.Unix(0, start).UTC().Format(time.RFC3339Nano)
		el := c.elapsedNS.Load()
		if el == 0 { // still running: live elapsed
			el = c.now().UnixNano() - start
		}
		if el < 0 {
			el = 0
		}
		s.ElapsedMs = float64(el) / 1e6
		if el > 0 {
			s.ExecsPerSec = float64(s.Executions) / (float64(el) / 1e9)
		}
	}
	c.mu.Lock()
	for _, w := range c.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{
			Analyzed:  w.analyzed.Load(),
			IdleWaits: w.idle.Load(),
		})
	}
	c.mu.Unlock()
	return s
}
