package serve

import (
	"container/list"
	"sync"

	"rats/internal/memmodel"
)

// verdictCache is a fixed-capacity LRU over canonical-key+model ->
// verdict. Verdicts are stored in the canonical program's namespace and
// rewritten per hit, so one entry serves every submission equivalent up
// to thread and location renaming.
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	v   *memmodel.Verdict
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (c *verdictCache) get(key string) (*memmodel.Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

func (c *verdictCache) put(key string, v *memmodel.Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).v = v
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, v: v})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// singleflight collapses concurrent calls with the same key onto one
// execution; followers block until the leader's result is ready and
// share it. Unlike a cache, entries live only while the call runs.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	v    *memmodel.Verdict
	err  error
}

// do runs fn once per concurrent key. The second return reports whether
// this caller joined an existing flight rather than leading its own.
func (g *singleflight) do(key string, fn func() (*memmodel.Verdict, error)) (*memmodel.Verdict, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*sfCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.v, true, c.err
	}
	c := &sfCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.v, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.v, false, c.err
}
