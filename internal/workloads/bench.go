package workloads

import (
	"fmt"
	"math/rand"

	"rats/internal/core"
	"rats/internal/graphs"
	"rats/internal/trace"
)

// UTSParams sizes the Unbalanced Tree Search benchmark (16K nodes in the
// paper).
type UTSParams struct {
	CUs   int
	Warps int // warps per CU
	Nodes int // tree nodes (target; the generated tree is close)
	Seed  int64
	// Polls is the number of unpaired occupancy checks per dequeue — the
	// Work Queue pattern of Listing 1.
	Polls int
	// HRFScopes labels own-queue operations with HRF work-group scope
	// (the scoped-synchronization alternative of Section 7). The paper
	// notes UTS is one of the two workloads that could benefit from
	// scopes; this variant quantifies it.
	HRFScopes bool
}

// DefaultUTS returns paper-shaped parameters.
func DefaultUTS(s Scale) UTSParams {
	return UTSParams{CUs: 15, Warps: s.pick(2, 4), Nodes: s.pick(600, 4000), Seed: 7, Polls: 2}
}

// utsTree generates a geometric unbalanced tree: child counts drawn from
// a skewed distribution, capped at the node budget. It returns each
// node's child count and parent (-1 for the root).
func utsTree(p UTSParams) (children, parent []int) {
	rng := rand.New(rand.NewSource(p.Seed))
	children = []int{0}
	parent = []int{-1}
	budget := p.Nodes - 1
	grant := func(i, kids int) {
		if kids > budget {
			kids = budget
		}
		budget -= kids
		children[i] += kids
		for k := 0; k < kids; k++ {
			children = append(children, 0)
			parent = append(parent, i)
		}
	}
	// UTS roots have a large fixed fan-out.
	grant(0, 20+rng.Intn(20))
	for i := 1; i < len(children) && budget > 0; i++ {
		// Skewed branching: most nodes are leaves, a few fan out widely.
		switch r := rng.Float64(); {
		case r < 0.55:
			// leaf
		case r < 0.85:
			grant(i, 1+rng.Intn(2))
		default:
			grant(i, 3+rng.Intn(6))
		}
	}
	// If the branching process dies out early, reseed random subtrees
	// until the node budget is spent.
	for budget > 0 {
		grant(rng.Intn(len(children)), 1+rng.Intn(6))
	}
	return children, parent
}

// UTS builds the unbalanced-tree-search benchmark: dynamic load balancing
// through per-CU work queues with stealing (the paper's UTS uses
// distributed queues; a node is enqueued on the queue of the CU that
// expanded its parent, and dequeued by whichever warp processes it —
// sometimes a remote steal). Occupancy polls are unpaired atomic loads of
// the warp's own queue (Listing 1: no invalidation under DRF1/DRFrlx, and
// local atomic reuse under DeNovo); dequeues and enqueues are paired
// RMWs; node payloads are data accesses.
func UTS(p UTSParams) *trace.Trace {
	children, parent := utsTree(p)
	tr := trace.New("UTS")
	queueAddr := func(cu int) uint64 { return auxBase + uint64(cu)*256 } // one line per queue
	nwarps := p.CUs * p.Warps
	warps := make([]*trace.Warp, nwarps)
	for w := range warps {
		warps[w] = tr.AddWarp(w % p.CUs)
	}
	warpOf := func(node int) int { return node % nwarps }
	cuOf := func(node int) int { return warpOf(node) % p.CUs }
	// enqueueCU[n] is the queue its parent's processor pushed it to.
	enqueueCU := func(n int) int {
		if parent[n] < 0 {
			return 0
		}
		return cuOf(parent[n])
	}
	tr.Init[queueAddr(0)] = 1 // root enqueued on CU 0's queue
	rng := rand.New(rand.NewSource(p.Seed + 1))
	localScope := func(scoped bool) trace.Scope {
		if scoped && p.HRFScopes {
			return trace.ScopeLocal
		}
		return trace.ScopeGlobal
	}
	for node, kids := range children {
		warp := warps[warpOf(node)]
		myCU := cuOf(node)
		// Occupancy polls on the warp's own queue: unpaired atomic loads
		// (work-group scoped in the HRF variant).
		for i := 0; i < p.Polls; i++ {
			warp.AtomicScoped(localScope(true), core.Unpaired, core.OpLoad, 0, queueAddr(myCU))
			warp.Compute(2)
		}
		// Dequeue from the queue holding this node (a steal when the node
		// was enqueued by another CU): SC read-modify-write; own-queue
		// dequeues may be work-group scoped.
		deqCU := enqueueCU(node)
		warp.AtomicScoped(localScope(deqCU == myCU), core.Paired, core.OpDec, 0, queueAddr(deqCU))
		// Process the node: payload reads plus unbalanced compute.
		payload := word(dataBase, node*32)
		warp.Load(core.Data, payload, payload+64)
		warp.Join()
		warp.Compute(10 + rng.Intn(30))
		// Enqueue children on the local queue: payload writes plus SC
		// increments (work-group scoped in the HRF variant).
		for k := 0; k < kids; k++ {
			warp.Store(core.Data, word(dataBase, (node+k+1)*32))
			warp.AtomicScoped(localScope(true), core.Paired, core.OpInc, 0, queueAddr(myCU))
		}
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		var sum int64
		for cu := 0; cu < p.CUs; cu++ {
			sum += read(queueAddr(cu))
		}
		if sum != 0 {
			return fmt.Errorf("work queues sum to %d, want 0", sum)
		}
		return nil
	}
	return tr
}

// GraphParams sizes the graph benchmarks.
type GraphParams struct {
	CUs   int
	Warps int // warps per CU
	// Iters is the PageRank iteration count.
	Iters int
}

// DefaultGraph returns paper-shaped parameters.
func DefaultGraph(s Scale) GraphParams {
	return GraphParams{CUs: 15, Warps: s.pick(2, 4), Iters: s.pick(2, 3)}
}

// splitInts partitions a slice across n buckets round-robin by index
// blocks, preserving locality.
func splitRange(n, buckets int) [][2]int {
	out := make([][2]int, buckets)
	per := (n + buckets - 1) / buckets
	for b := 0; b < buckets; b++ {
		lo := b * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		out[b] = [2]int{lo, hi}
	}
	return out
}

// adjAddrs returns the line-spread addresses of vertex u's adjacency
// list entries (int32 each).
func adjAddr(g *graphs.Graph, u int, k int) uint64 {
	// Lay adjacency lists contiguously by vertex with 64-entry alignment
	// to mimic CSR layout.
	return adjBase + uint64(u)*256 + uint64(k)*4
}

// BC builds Brandes-style betweenness centrality (Pannotia): a forward
// BFS phase accumulating shortest-path counts (sigma) with commutative
// adds and non-ordering distance checks, followed by a backward
// dependency-accumulation phase that re-reads the adjacency lists (the
// cross-phase data reuse DRF1 unlocks) and accumulates delta with
// commutative adds. One device barrier per level in each phase. The
// functional check verifies both sigma and delta against the sequential
// reference.
func BC(g *graphs.Graph, p GraphParams) *trace.Trace {
	tr := trace.New("BC-" + g.Name)
	level, levels := g.BFS(0)
	sigmaRef := g.SigmaCounts(0)

	// sigma accumulates in the simulator starting from sigma[0]=1.
	tr.Init[word(rankBase, 0)] = 0 // sigma array zeroed; root handled below
	nwarps := p.CUs * p.Warps
	warps := make([]*trace.Warp, nwarps)
	for w := range warps {
		warps[w] = tr.AddWarp(w % p.CUs)
	}
	// Root bootstrap.
	warps[0].Atomic(core.Commutative, core.OpAdd, 1, word(rankBase, 0))

	// sigmaAt tracks the sequential sigma value as levels complete, so
	// the generated operands reproduce the reference computation.
	sigma := make([]int64, g.N())
	sigma[0] = 1
	for _, frontier := range levels {
		// Distribute this level's vertices across warps.
		for wi, span := range splitRange(len(frontier), nwarps) {
			warp := warps[wi]
			for fi := span[0]; fi < span[1]; fi++ {
				u := int(frontier[fi])
				// Read the adjacency list (data; reusable across phases).
				deg := len(g.Adj[u])
				for k := 0; k < deg; k += 16 {
					warp.Load(core.Data, adjAddr(g, u, k))
				}
				// Check neighbour distances (non-ordering loads), then
				// accumulate sigma into next-level neighbours
				// (commutative adds).
				var dstAddrs, distAddrs []uint64
				var ops []int64
				for _, v := range g.Adj[u] {
					distAddrs = append(distAddrs, word(rankBase, g.N()+int(v)))
					if level[v] == level[u]+1 {
						dstAddrs = append(dstAddrs, word(rankBase, int(v)))
						ops = append(ops, sigma[u])
					}
				}
				for _, ch := range chunk32(len(distAddrs)) {
					warp.Atomic(core.NonOrdering, core.OpLoad, 0, distAddrs[ch[0]:ch[1]]...)
				}
				for _, ch := range chunk32(len(dstAddrs)) {
					warp.AtomicLanes(core.Commutative, core.OpAdd, dstAddrs[ch[0]:ch[1]], ops[ch[0]:ch[1]])
				}
				warp.Compute(2 + deg/8)
			}
		}
		// Level barrier for every warp.
		for _, warp := range warps {
			warp.Barrier()
		}
		// Advance the reference sigma past this level.
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if level[v] == level[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
	}
	// Backward phase: dependency accumulation in reverse level order.
	// delta[u] += (sigma[u] * (scale + delta[v])) / (sigma[v] * scale)
	// in fixed point; operands are generator-computed so the simulated
	// adds reproduce the sequential reference exactly.
	const deltaScale = 1 << 10
	deltaBase := g.N() * 2 // delta array after sigma and dist arrays
	delta := make([]int64, g.N())
	for li := len(levels) - 1; li >= 1; li-- {
		for wi, span := range splitRange(len(levels[li]), nwarps) {
			warp := warps[wi]
			for fi := span[0]; fi < span[1]; fi++ {
				v := int(levels[li][fi])
				deg := len(g.Adj[v])
				// Re-read the adjacency list (reuse from the forward
				// phase under DRF1/DRFrlx).
				for k := 0; k < deg; k += 16 {
					warp.Load(core.Data, adjAddr(g, v, k))
				}
				var dstAddrs, sigAddrs []uint64
				var ops []int64
				for _, u := range g.Adj[v] {
					if level[u] == level[v]-1 {
						sigAddrs = append(sigAddrs, word(rankBase, int(u)))
						// Fixed point: sigma[u]/sigma[v] * (1 + delta[v]),
						// everything scaled by deltaScale.
						c := sigma[u] * (deltaScale + delta[v]) / sigma[v]
						dstAddrs = append(dstAddrs, word(rankBase, deltaBase+int(u)))
						ops = append(ops, c)
					}
				}
				for _, ch := range chunk32(len(sigAddrs)) {
					warp.Atomic(core.NonOrdering, core.OpLoad, 0, sigAddrs[ch[0]:ch[1]]...)
				}
				for _, ch := range chunk32(len(dstAddrs)) {
					warp.AtomicLanes(core.Commutative, core.OpAdd, dstAddrs[ch[0]:ch[1]], ops[ch[0]:ch[1]])
				}
				warp.Compute(2 + deg/8)
			}
		}
		for _, warp := range warps {
			warp.Barrier()
		}
		// Advance the reference delta past this level.
		for _, v := range levels[li] {
			for _, u := range g.Adj[v] {
				if level[u] == level[v]-1 {
					delta[u] += sigma[u] * (deltaScale + delta[v]) / sigma[v]
				}
			}
		}
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		for v := 0; v < g.N(); v++ {
			if got := read(word(rankBase, v)); got != sigmaRef[v] {
				return fmt.Errorf("sigma[%d] = %d, want %d", v, got, sigmaRef[v])
			}
			if got := read(word(rankBase, deltaBase+v)); got != delta[v] {
				return fmt.Errorf("delta[%d] = %d, want %d", v, got, delta[v])
			}
		}
		return nil
	}
	return tr
}

// PR builds Pannotia-style PageRank: each iteration scatters every
// vertex's contribution to its neighbours with commutative atomic adds,
// re-reading the adjacency lists (the data-reuse DRF1 exploits), with a
// device barrier between iterations. The functional check verifies the
// final ranks against the sequential fixed-point reference.
func PR(g *graphs.Graph, p GraphParams) *trace.Trace {
	tr := trace.New("PR-" + g.Name)
	const scale = 1 << 16
	n := g.N()
	nwarps := p.CUs * p.Warps
	warps := make([]*trace.Warp, nwarps)
	for w := range warps {
		warps[w] = tr.AddWarp(w % p.CUs)
	}

	// The simulated kernel accumulates every iteration's atomic adds into
	// one rank-accumulator array; the reference below mirrors that.
	rank := make([]int64, n)
	for i := range rank {
		rank[i] = scale
	}
	for it := 0; it < p.Iters; it++ {
		next := make([]int64, n)
		base := int64(scale) * 15 / 100
		for i := range next {
			next[i] = base
		}
		for wi, span := range splitRange(n, nwarps) {
			warp := warps[wi]
			for u := span[0]; u < span[1]; u++ {
				deg := len(g.Adj[u])
				if deg == 0 {
					continue
				}
				// Re-read this vertex's rank and adjacency (data reuse
				// across iterations).
				warp.Load(core.Data, word(dataBase, u))
				for k := 0; k < deg; k += 16 {
					warp.Load(core.Data, adjAddr(g, u, k))
				}
				contrib := rank[u] * 85 / 100 / int64(deg)
				var addrs []uint64
				for _, v := range g.Adj[u] {
					addrs = append(addrs, word(rankBase, int(v)))
					next[v] += contrib
				}
				for _, ch := range chunk32(len(addrs)) {
					warp.Atomic(core.Commutative, core.OpAdd, contrib, addrs[ch[0]:ch[1]]...)
				}
				warp.Compute(1 + deg/8)
			}
		}
		for _, warp := range warps {
			warp.Barrier()
		}
		// After the barrier, read back the new ranks (data loads).
		for wi, span := range splitRange(n, nwarps) {
			warp := warps[wi]
			for u := span[0]; u < span[1]; u += 16 {
				warp.Load(core.Data, word(rankBase, u))
			}
		}
		for _, warp := range warps {
			warp.Barrier()
		}
		rank = next
	}
	// The simulator's rank array accumulated sum over iterations of
	// (next[i] - base): recompute the expected accumulator.
	want := make([]int64, n)
	{
		r := make([]int64, n)
		for i := range r {
			r[i] = scale
		}
		for it := 0; it < p.Iters; it++ {
			base := int64(scale) * 15 / 100
			nx := make([]int64, n)
			for i := range nx {
				nx[i] = base
			}
			for u := 0; u < n; u++ {
				if len(g.Adj[u]) == 0 {
					continue
				}
				contrib := r[u] * 85 / 100 / int64(len(g.Adj[u]))
				for _, v := range g.Adj[u] {
					nx[v] += contrib
					want[v] += contrib
				}
			}
			r = nx
		}
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		for v := 0; v < n; v++ {
			if got := read(word(rankBase, v)); got != want[v] {
				return fmt.Errorf("rank-acc[%d] = %d, want %d", v, got, want[v])
			}
		}
		return nil
	}
	return tr
}
