package serve

import (
	"container/list"
	"context"
	"sync"

	"rats/internal/memmodel"
)

// lru is a fixed-capacity LRU map. The service keeps two: canonical
// key+model -> verdict (stored in the canonical program's namespace and
// rewritten per hit, so one entry serves every submission equivalent up
// to thread and location renaming) and submission hash+model -> rendered
// witness (keyed by the raw text, because witnesses read back in the
// submitter's own namespace).
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry[V]
	byKey map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	v   V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).v, true
}

func (c *lru[V]) put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry[V]).v = v
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry[V]{key: key, v: v})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry[V]).key)
	}
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// singleflight collapses concurrent calls with the same key onto one
// execution; followers block until the shared result is ready. Unlike a
// cache, entries live only while the call runs.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	v    *memmodel.Verdict
	err  error
	// waiters counts requests still waiting on the result; when it drops
	// to zero before fn returns, cancel stops the now-unwanted call.
	waiters int
	cancel  context.CancelFunc
}

// waitCanceled reports that a waiting request's own context ended before
// the shared call finished. The call itself may still be running for the
// remaining waiters — this error describes the wait, not the check.
type waitCanceled struct{ err error }

func (e *waitCanceled) Error() string {
	return "serve: gave up waiting for shared check: " + e.err.Error()
}

func (e *waitCanceled) Unwrap() error { return e.err }

// do runs fn once per concurrent key. fn runs on its own goroutine under
// a context detached from any single request and canceled only when
// every joined request has stopped waiting — so a leader's disconnect
// does not poison coalesced followers, and a follower whose own ctx ends
// first gets a *waitCanceled immediately instead of waiting out the
// leader's deadline. The bool reports whether this caller joined an
// existing flight rather than leading its own.
func (g *singleflight) do(ctx context.Context, key string, fn func(context.Context) (*memmodel.Verdict, error)) (*memmodel.Verdict, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*sfCall)
	}
	c, joined := g.calls[key]
	if !joined {
		callCtx, cancel := context.WithCancel(context.Background())
		c = &sfCall{done: make(chan struct{}), cancel: cancel}
		g.calls[key] = c
		go func() {
			c.v, c.err = fn(callCtx)
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
			cancel()
		}()
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		g.leave(c)
		return c.v, joined, c.err
	case <-ctx.Done():
		if g.leave(c) {
			// Last waiter out: the call was just canceled on this
			// request's behalf and returns promptly (the enumeration
			// polls its context at bounded strides) with the search's own
			// diagnostics — executions, elapsed — which beat a bare wait
			// error. No other caller is blocked on this: the flight is
			// already over for everyone else.
			<-c.done
			return c.v, joined, c.err
		}
		return nil, joined, &waitCanceled{err: ctx.Err()}
	}
}

// leave drops one waiter and reports whether it was the last; the last
// one out cancels the call's context (a no-op when fn already returned).
func (g *singleflight) leave(c *sfCall) bool {
	g.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	g.mu.Unlock()
	if last {
		c.cancel()
	}
	return last
}
