package probe_test

import (
	"errors"
	"testing"

	"rats/internal/probe"
)

// failSink fails Close with a fixed error and records that Close ran.
type failSink struct {
	err    error
	closed bool
}

func (f *failSink) Emit(probe.Event) {}
func (f *failSink) Close() error {
	f.closed = true
	return f.err
}

// TestHubCloseJoinsSinkErrors: Hub.Close must close every sink even when
// earlier ones fail, and the returned error must carry every failure —
// a flush error from one file must not mask another's.
func TestHubCloseJoinsSinkErrors(t *testing.T) {
	errA := errors.New("sink A flush failed")
	errB := errors.New("sink B flush failed")
	a := &failSink{err: errA}
	mid := &failSink{}
	b := &failSink{err: errB}

	hub := probe.NewHub()
	hub.Attach(a)
	hub.Attach(mid)
	hub.Attach(b)
	err := hub.Close()
	if err == nil {
		t.Fatal("Close returned nil despite two failing sinks")
	}
	if !errors.Is(err, errA) {
		t.Errorf("joined error %v does not carry the first sink's error", err)
	}
	if !errors.Is(err, errB) {
		t.Errorf("joined error %v does not carry the last sink's error", err)
	}
	for i, s := range []*failSink{a, mid, b} {
		if !s.closed {
			t.Errorf("sink %d was not closed", i)
		}
	}
}

// TestHubCloseAllHealthy: the all-healthy path must stay a nil error
// (errors.Join of nothing), not a non-nil wrapper.
func TestHubCloseAllHealthy(t *testing.T) {
	hub := probe.NewHub()
	hub.Attach(&failSink{})
	hub.Attach(&failSink{})
	if err := hub.Close(); err != nil {
		t.Fatalf("Close of healthy sinks returned %v", err)
	}
}
