// Package workloads generates the traces for the paper's seven
// microbenchmarks (Hist, Hist_global, HG-Non-Order, Flags, SplitCounter,
// RefCounter, Seqlocks — Table 3) and three full benchmarks (UTS, BC,
// PageRank). Each generator reproduces its kernel's memory-access and
// atomic structure — atomic density, data reuse, contention, per-lane
// divergence — and attaches a functional check the simulator validates
// after every run.
package workloads

// Address-space layout: disjoint regions per logical array so workloads
// never alias.
const (
	dataBase uint64 = 0x1000_0000 // input element arrays
	binsBase uint64 = 0x2000_0000 // histogram bins / shared counters
	flagBase uint64 = 0x3000_0000 // flags (stop/dirty/seq)
	adjBase  uint64 = 0x4000_0000 // graph adjacency lists
	rankBase uint64 = 0x5000_0000 // rank / sigma / delta arrays
	auxBase  uint64 = 0x6000_0000 // miscellaneous (queues, outputs)

	wordSize uint64 = 4
)

// word returns the byte address of element i in a region.
func word(base uint64, i int) uint64 { return base + uint64(i)*wordSize }

// Scale selects a workload size: Test keeps full-suite runs fast;
// Paper approximates the paper's input sizes (scaled to what a
// cycle-level software simulator sustains).
type Scale int

const (
	// Test is the small configuration used by the test suite.
	Test Scale = iota
	// Paper is the benchmark-harness configuration.
	Paper
)

// pick returns t for Test scale, p for Paper scale.
func (s Scale) pick(t, p int) int {
	if s == Paper {
		return p
	}
	return t
}

// warpLanes is the SIMT width.
const warpLanes = 32

// chunk32 splits [0, n) into 32-element lane groups.
func chunk32(n int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += warpLanes {
		hi := lo + warpLanes
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
