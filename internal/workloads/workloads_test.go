package workloads

import (
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/trace"
)

// TestAllWorkloadsFunctional runs every workload at Test scale under all
// six configurations; the traces' FinalCheck must pass everywhere (the
// protocols and models may reorder, but never corrupt, the results).
func TestAllWorkloadsFunctional(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
				for _, m := range core.Models() {
					tr := e.Build(Test)
					if _, err := system.RunTrace(memsys.Default(proto, m), tr); err != nil {
						t.Fatalf("%s under %v/%v: %v", e.Name, proto, m, err)
					}
				}
			}
		})
	}
}

// TestWorkloadsUseDeclaredClasses verifies that each trace only uses the
// relaxed-atomic classes Table 3 declares for it (plus paired/data).
func TestWorkloadsUseDeclaredClasses(t *testing.T) {
	declared := map[string][]core.Class{
		"H":     {core.Commutative},
		"HG":    {core.Commutative},
		"HG-NO": {core.NonOrdering},
		"Flags": {core.Commutative, core.NonOrdering},
		"SC":    {core.Quantum},
		"RC":    {core.Quantum, core.Commutative}, // commutative mark store
		"SEQ":   {core.Speculative},
		"UTS":   {core.Unpaired},
		"BC-1":  {core.Commutative, core.NonOrdering},
		"PR-1":  {core.Commutative},
	}
	for name, classes := range declared {
		e := ByName(name)
		if e == nil {
			t.Fatalf("workload %s missing from registry", name)
		}
		allowed := map[core.Class]bool{core.Data: true, core.Paired: true}
		for _, c := range classes {
			allowed[c] = true
		}
		tr := e.Build(Test)
		used := map[core.Class]bool{}
		for _, w := range tr.Warps {
			for _, op := range w.Ops {
				if op.Kind.IsMem() {
					used[op.Class] = true
					if !allowed[op.Class] {
						t.Errorf("%s uses undeclared class %v", name, op.Class)
					}
				}
			}
		}
		// The headline class must actually appear.
		if !used[classes[0]] {
			t.Errorf("%s never uses its headline class %v", name, classes[0])
		}
	}
}

// TestRegistryComplete checks Table 3 coverage: 7 microbenchmarks, UTS,
// 4 BC graphs, 4 PR graphs, and 9 Figure 1 applications.
func TestRegistryComplete(t *testing.T) {
	if got := len(Micro()); got != 7 {
		t.Errorf("microbenchmarks: %d, want 7", got)
	}
	if got := len(Benchmarks()); got != 9 {
		t.Errorf("benchmarks: %d, want 9 (UTS + 4 BC + 4 PR)", got)
	}
	if got := len(Figure1Apps()); got != 9 {
		t.Errorf("Figure 1 applications: %d, want 9", got)
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if e := ByName("SEQ"); e == nil || e.Full != "Seqlocks" {
		t.Error("ByName(SEQ) wrong")
	}
}

// TestTracesAreDeterministic: building twice yields identical op streams.
func TestTracesAreDeterministic(t *testing.T) {
	for _, e := range All() {
		a, b := e.Build(Test), e.Build(Test)
		if len(a.Warps) != len(b.Warps) || a.NumOps() != b.NumOps() {
			t.Fatalf("%s nondeterministic shape", e.Name)
		}
		for i := range a.Warps {
			for j := range a.Warps[i].Ops {
				oa, ob := a.Warps[i].Ops[j], b.Warps[i].Ops[j]
				if oa.Kind != ob.Kind || oa.Class != ob.Class || len(oa.Addrs) != len(ob.Addrs) {
					t.Fatalf("%s warp %d op %d differs", e.Name, i, j)
				}
			}
		}
	}
}

// TestPaperScaleLarger: Paper scale must strictly grow the op count.
func TestPaperScaleLarger(t *testing.T) {
	for _, e := range All() {
		small := e.Build(Test).NumOps()
		big := e.Build(Paper).NumOps()
		if big <= small {
			t.Errorf("%s: Paper scale (%d ops) not larger than Test scale (%d ops)", e.Name, big, small)
		}
	}
}

// TestUTSTreeShape: the generated tree hits its node budget and is
// genuinely unbalanced.
func TestUTSTreeShape(t *testing.T) {
	p := DefaultUTS(Test)
	kids, parents := utsTree(p)
	if len(kids) < p.Nodes/2 {
		t.Fatalf("tree has %d nodes, target %d", len(kids), p.Nodes)
	}
	if len(parents) != len(kids) || parents[0] != -1 {
		t.Fatal("parent array malformed")
	}
	for i := 1; i < len(parents); i++ {
		if parents[i] < 0 || parents[i] >= i {
			t.Fatalf("node %d has invalid parent %d", i, parents[i])
		}
	}
	max := 0
	leaves := 0
	for _, k := range kids {
		if k > max {
			max = k
		}
		if k == 0 {
			leaves++
		}
	}
	if max < 3 {
		t.Error("tree has no wide fan-out — not unbalanced")
	}
	if leaves < len(kids)/3 {
		t.Error("tree has too few leaves")
	}
}

// TestTraceOpMix sanity-checks that atomic-heavy workloads are actually
// atomic-heavy (HG) and that Hist keeps most work local (scratchpad).
func TestTraceOpMix(t *testing.T) {
	count := func(tr *trace.Trace, k trace.Kind) int {
		n := 0
		for _, w := range tr.Warps {
			for _, op := range w.Ops {
				if op.Kind == k {
					n++
				}
			}
		}
		return n
	}
	hg := HistGlobal(DefaultHist(Test))
	if a, l := count(hg, trace.Atomic), count(hg, trace.Load); a < l {
		t.Errorf("HG should be atomic-dominated: atomics=%d loads=%d", a, l)
	}
	h := Hist(DefaultHist(Test))
	if s := count(h, trace.ScratchStore); s == 0 {
		t.Error("Hist should use the scratchpad")
	}
	// H's global atomic ops are bounded by bins, not elements.
	if a := count(h, trace.Atomic); a > 2*len(h.Warps)*256/32+len(h.Warps) {
		t.Errorf("Hist issues too many global atomics: %d", a)
	}
}

// TestUTSHRFScopedFunctional: the HRF-scoped UTS variant stays
// functionally exact under every configuration and is faster than the
// unscoped version on GPU coherence.
func TestUTSHRFScopedFunctional(t *testing.T) {
	p := DefaultUTS(Test)
	p.HRFScopes = true
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		for _, m := range core.Models() {
			if _, err := system.RunTrace(memsys.Default(proto, m), UTS(p)); err != nil {
				t.Fatalf("scoped UTS under %v/%v: %v", proto, m, err)
			}
		}
	}
	unscoped := DefaultUTS(Test)
	r0, err := system.RunTrace(memsys.Default(memsys.ProtoGPU, core.DRF0), UTS(unscoped))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := system.RunTrace(memsys.Default(memsys.ProtoGPU, core.DRF0), UTS(p))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cycles >= r0.Stats.Cycles {
		t.Errorf("HRF scopes did not speed up UTS: %d vs %d", r1.Stats.Cycles, r0.Stats.Cycles)
	}
}
