// Package litmus represents small concurrent test programs ("litmus
// tests") in the style used by the Herd tool and by Listing 7 of the RAts
// paper. A program is a set of straight-line threads of memory operations
// over named shared locations, with per-thread registers. Syntactic
// dependencies (address, data, control) are tracked so the race detectors
// in internal/memmodel can approximate observability exactly the way the
// paper's Herd model does.
//
// Loops and real control flow are intentionally absent: as in Herd, racy
// idioms are expressed as straight-line unrollings with explicit
// dependency markers.
package litmus

import (
	"fmt"
	"sort"

	"rats/internal/core"
)

// Loc names a shared memory location.
type Loc string

// Reg identifies a per-thread register. NoReg means the operation
// discards its loaded value.
type Reg int8

// NoReg marks the absence of a destination register.
const NoReg Reg = -1

// Expr is a linear expression over a thread's registers:
// Const + sum(registers). It is the only value form litmus programs need:
// rich enough to express data dependencies, simple enough to enumerate.
type Expr struct {
	Const int64
	Regs  []Reg
}

// ConstExpr returns an expression with a fixed value.
func ConstExpr(v int64) Expr { return Expr{Const: v} }

// RegExpr returns an expression equal to a register's value.
func RegExpr(r Reg) Expr { return Expr{Regs: []Reg{r}} }

// Eval computes the expression over a register file.
func (e Expr) Eval(rf []int64) int64 {
	v := e.Const
	for _, r := range e.Regs {
		v += rf[r]
	}
	return v
}

// DependsOn reports whether the expression reads register r.
func (e Expr) DependsOn(r Reg) bool {
	for _, x := range e.Regs {
		if x == r {
			return true
		}
	}
	return false
}

// GuardOp compares two expressions in a guard.
type GuardOp uint8

const (
	// GuardEQ: A == B.
	GuardEQ GuardOp = iota
	// GuardNE: A != B.
	GuardNE
	// GuardEven: A == B and A is even (seqlock sequence check).
	GuardEQEven
)

// Guard is a condition on an operation: the operation executes only when
// every guard of the op holds. Guards model the conditional control flow
// of the paper's use cases (dequeue only when occupancy > 0, seqlock
// retry, refcount reaching zero) while keeping threads straight-line.
type Guard struct {
	A, B Expr
	Op   GuardOp
}

// Holds evaluates the guard over a register file.
func (g Guard) Holds(rf []int64) bool {
	a, b := g.A.Eval(rf), g.B.Eval(rf)
	switch g.Op {
	case GuardEQ:
		return a == b
	case GuardNE:
		return a != b
	case GuardEQEven:
		return a == b && a%2 == 0
	}
	return false
}

// Regs returns the registers the guard reads.
func (g Guard) Regs() []Reg {
	return append(append([]Reg(nil), g.A.Regs...), g.B.Regs...)
}

// Op is a single operation of a thread: either a memory operation or a
// branch marker (a control-dependency sink, carrying no memory effect).
type Op struct {
	// IsBranch marks a control-flow marker. Only Cond is meaningful.
	IsBranch bool
	// Cond is the branch condition (branch ops only).
	Cond Expr

	// Guards condition the op's execution: if any guard fails (evaluated
	// against the thread's registers when the op is reached), the op is
	// skipped and produces no event. Guard registers are always read
	// (control dependency) whether or not the op executes.
	Guards []Guard

	// Class distinguishes the operation to the system (Section 3.6).
	Class core.Class
	// AOp is the access kind (load/store/RMW flavour).
	AOp core.AtomicOp
	// Loc is the shared location accessed.
	Loc Loc
	// Dst receives the loaded value (loads and RMWs); NoReg discards it.
	Dst Reg
	// Operand is the stored value (stores) or RMW operand.
	Operand Expr
	// Expected is the comparison value for CAS.
	Expected Expr
	// AddrDeps lists registers the effective address depends on. The
	// address itself is static (Loc); AddrDeps exist purely so the
	// dependency analysis can model address dependencies.
	AddrDeps []Reg
}

// Reads reports whether the op observes a memory value.
func (o Op) Reads() bool { return !o.IsBranch && o.AOp.Reads() }

// Writes reports whether the op may modify memory.
func (o Op) Writes() bool { return !o.IsBranch && o.AOp.Writes() }

// UsesReg reports whether the op's inputs (operand, expected, address,
// guards, branch condition) read register r.
func (o Op) UsesReg(r Reg) bool {
	if o.IsBranch {
		return o.Cond.DependsOn(r)
	}
	if o.Operand.DependsOn(r) || o.Expected.DependsOn(r) {
		return true
	}
	for _, a := range o.AddrDeps {
		if a == r {
			return true
		}
	}
	return o.GuardUsesReg(r)
}

// GuardUsesReg reports whether the op's guards read register r. Guard
// registers are observed even when the op is skipped.
func (o Op) GuardUsesReg(r Reg) bool {
	for _, g := range o.Guards {
		for _, gr := range g.Regs() {
			if gr == r {
				return true
			}
		}
	}
	return false
}

// GuardsHold evaluates every guard of the op.
func (o Op) GuardsHold(rf []int64) bool {
	for _, g := range o.Guards {
		if !g.Holds(rf) {
			return false
		}
	}
	return true
}

func (o Op) String() string {
	if o.IsBranch {
		return fmt.Sprintf("branch(%v)", o.Cond.Regs)
	}
	dst := ""
	if o.Dst != NoReg {
		dst = fmt.Sprintf("r%d = ", o.Dst)
	}
	return fmt.Sprintf("%s%s.%s[%s]", dst, o.AOp, o.Class, o.Loc)
}

// Thread is a straight-line sequence of operations.
type Thread struct {
	Name string
	Ops  []Op
	// nregs is the number of registers allocated so far.
	nregs int
	// pending guards are attached to every subsequently appended op
	// (an open "if" block); see WithGuards / EndGuards.
	pending []Guard
}

// NZ builds a guard requiring register r to be non-zero.
func NZ(r Reg) Guard { return Guard{A: RegExpr(r), B: ConstExpr(0), Op: GuardNE} }

// EQZ builds a guard requiring register r to be zero.
func EQZ(r Reg) Guard { return Guard{A: RegExpr(r), B: ConstExpr(0), Op: GuardEQ} }

// EQConst builds a guard requiring register r to equal a constant.
func EQConst(r Reg, c int64) Guard { return Guard{A: RegExpr(r), B: ConstExpr(c), Op: GuardEQ} }

// EQReg builds a guard requiring two registers to be equal.
func EQReg(a, b Reg) Guard { return Guard{A: RegExpr(a), B: RegExpr(b), Op: GuardEQ} }

// EQEvenReg builds a guard requiring two registers to be equal and even
// (the seqlock sequence check).
func EQEvenReg(a, b Reg) Guard { return Guard{A: RegExpr(a), B: RegExpr(b), Op: GuardEQEven} }

// Program is a complete litmus test.
type Program struct {
	Name    string
	Threads []*Thread
	// Init gives initial values for locations (default 0).
	Init map[Loc]int64
	// QuantumDomain is the value set quantum accesses range over when the
	// quantum-equivalent program is enumerated. If empty, a domain is
	// derived from the constants appearing in the program.
	QuantumDomain []int64
}

// New creates an empty program.
func New(name string) *Program {
	return &Program{Name: name, Init: map[Loc]int64{}}
}

// Thread appends a new empty thread and returns it.
func (p *Program) Thread(name string) *Thread {
	t := &Thread{Name: name}
	p.Threads = append(p.Threads, t)
	return t
}

// SetInit sets a location's initial value.
func (p *Program) SetInit(loc Loc, v int64) { p.Init[loc] = v }

// Locs returns every location touched by the program, sorted.
func (p *Program) Locs() []Loc {
	// Programs touch a handful of locations: a linear-scan dedup into one
	// small slice beats a map and avoids copying each Op to inspect it.
	out := make([]Loc, 0, len(p.Init))
	add := func(l Loc) {
		for _, x := range out {
			if x == l {
				return
			}
		}
		out = append(out, l)
	}
	for l := range p.Init {
		add(l)
	}
	for t := range p.Threads {
		ops := p.Threads[t].Ops
		for i := range ops {
			if !ops[i].IsBranch {
				add(ops[i].Loc)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumOps returns the total operation count across threads.
func (p *Program) NumOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t.Ops)
	}
	return n
}

// HasClass reports whether any operation carries the given class.
func (p *Program) HasClass(c core.Class) bool {
	for _, t := range p.Threads {
		for _, o := range t.Ops {
			if !o.IsBranch && o.Class == c {
				return true
			}
		}
	}
	return false
}

// Validate checks structural sanity: thread names are unique, the
// program performs at least one operation, register uses precede
// definitions and stay within the thread's register file, classes are
// valid, CAS ops have expected values.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("litmus %s: no threads", p.Name)
	}
	names := make(map[string]bool, len(p.Threads))
	for _, t := range p.Threads {
		if t.Name == "" {
			continue
		}
		if names[t.Name] {
			return fmt.Errorf("litmus %s: duplicate thread name %q", p.Name, t.Name)
		}
		names[t.Name] = true
	}
	if p.NumOps() == 0 {
		return fmt.Errorf("litmus %s: no operations", p.Name)
	}
	for ti, t := range p.Threads {
		defined := map[Reg]bool{}
		for oi, o := range t.Ops {
			if o.IsBranch {
				for _, r := range o.Cond.Regs {
					if !defined[r] {
						return fmt.Errorf("litmus %s: thread %d op %d branches on undefined r%d", p.Name, ti, oi, r)
					}
				}
				continue
			}
			if !o.Class.Valid() {
				return fmt.Errorf("litmus %s: thread %d op %d has invalid class", p.Name, ti, oi)
			}
			if o.Loc == "" {
				return fmt.Errorf("litmus %s: thread %d op %d has empty location", p.Name, ti, oi)
			}
			deps := [][]Reg{o.Operand.Regs, o.Expected.Regs, o.AddrDeps}
			for _, g := range o.Guards {
				deps = append(deps, g.Regs())
			}
			for _, regs := range deps {
				for _, r := range regs {
					if !defined[r] {
						return fmt.Errorf("litmus %s: thread %d op %d uses undefined r%d", p.Name, ti, oi, r)
					}
				}
			}
			if o.Dst != NoReg {
				if !o.Reads() {
					return fmt.Errorf("litmus %s: thread %d op %d writes register but does not read memory", p.Name, ti, oi)
				}
				if o.Dst < 0 || int(o.Dst) >= t.nregs {
					return fmt.Errorf("litmus %s: thread %d op %d destination r%d out of range (thread declares %d registers)",
						p.Name, ti, oi, o.Dst, t.nregs)
				}
				defined[o.Dst] = true
			}
		}
	}
	return nil
}

// Relabel returns a deep copy of the program with every op's class mapped
// through f. It is used to derive DRF0/DRF1 variants and mislabeled
// litmus tests from a single annotated source.
func (p *Program) Relabel(f func(core.Class) core.Class) *Program {
	q := New(p.Name)
	for l, v := range p.Init {
		q.Init[l] = v
	}
	q.QuantumDomain = append([]int64(nil), p.QuantumDomain...)
	for _, t := range p.Threads {
		nt := q.Thread(t.Name)
		nt.nregs = t.nregs
		nt.Ops = make([]Op, len(t.Ops))
		copy(nt.Ops, t.Ops)
		for i := range nt.Ops {
			if !nt.Ops[i].IsBranch {
				nt.Ops[i].Class = f(nt.Ops[i].Class)
			}
		}
	}
	return q
}

// Under returns the program as model m distinguishes it (e.g. Under(DRF0)
// turns every atomic into a paired atomic).
func (p *Program) Under(m core.Model) *Program {
	q := p.Relabel(m.Effective)
	q.Name = fmt.Sprintf("%s@%s", p.Name, m)
	return q
}

// WithGuards opens a guarded region: every op appended until EndGuards is
// conditioned on all the given guards (an "if" block).
func (t *Thread) WithGuards(gs ...Guard) *Thread {
	t.pending = append(t.pending, gs...)
	return t
}

// EndGuards closes all open guarded regions.
func (t *Thread) EndGuards() { t.pending = nil }

// attach adds the op, applying any pending guards.
func (t *Thread) attach(o Op) {
	if len(t.pending) > 0 && !o.IsBranch {
		o.Guards = append([]Guard(nil), t.pending...)
	}
	t.Ops = append(t.Ops, o)
}

// newReg allocates a fresh register.
func (t *Thread) newReg() Reg {
	r := Reg(t.nregs)
	t.nregs++
	return r
}

// NumRegs returns the number of registers the thread uses.
func (t *Thread) NumRegs() int { return t.nregs }

// SetNumRegs records the thread's register count for threads whose Ops
// are built directly (program transforms, deep copies) rather than
// through the builder helpers, which maintain the count via newReg.
func (t *Thread) SetNumRegs(n int) { t.nregs = n }

// Load appends an atomic/data load and returns its destination register.
func (t *Thread) Load(loc Loc, c core.Class) Reg {
	r := t.newReg()
	t.attach(Op{Class: c, AOp: core.OpLoad, Loc: loc, Dst: r})
	return r
}

// LoadDiscard appends a load whose value is discarded.
func (t *Thread) LoadDiscard(loc Loc, c core.Class) {
	t.attach(Op{Class: c, AOp: core.OpLoad, Loc: loc, Dst: NoReg})
}

// Store appends a store of a constant.
func (t *Thread) Store(loc Loc, v int64, c core.Class) {
	t.StoreExpr(loc, ConstExpr(v), c)
}

// StoreExpr appends a store of an expression (creating data dependencies
// on the expression's registers).
func (t *Thread) StoreExpr(loc Loc, e Expr, c core.Class) {
	t.attach(Op{Class: c, AOp: core.OpStore, Loc: loc, Dst: NoReg, Operand: e})
}

// RMW appends a read-modify-write with a constant operand, returning the
// register holding the old value.
func (t *Thread) RMW(op core.AtomicOp, loc Loc, operand int64, c core.Class) Reg {
	r := t.newReg()
	t.attach(Op{Class: c, AOp: op, Loc: loc, Dst: r, Operand: ConstExpr(operand)})
	return r
}

// RMWDiscard appends a read-modify-write whose old value is discarded
// (e.g. a histogram increment).
func (t *Thread) RMWDiscard(op core.AtomicOp, loc Loc, operand int64, c core.Class) {
	t.attach(Op{Class: c, AOp: op, Loc: loc, Dst: NoReg, Operand: ConstExpr(operand)})
}

// Inc appends a fetch-increment whose value is discarded.
func (t *Thread) Inc(loc Loc, c core.Class) { t.RMWDiscard(core.OpInc, loc, 0, c) }

// Dec appends a fetch-decrement returning the old value.
func (t *Thread) Dec(loc Loc, c core.Class) Reg { return t.RMW(core.OpDec, loc, 0, c) }

// CAS appends a compare-and-swap (expected, desired constants), returning
// the register holding the old value.
func (t *Thread) CAS(loc Loc, expected, desired int64, c core.Class) Reg {
	r := t.newReg()
	t.attach(Op{
		Class: c, AOp: core.OpCAS, Loc: loc, Dst: r,
		Operand: ConstExpr(desired), Expected: ConstExpr(expected),
	})
	return r
}

// Branch appends a control-dependency marker on the expression: every
// later op of the thread becomes control-dependent on the expression's
// registers.
func (t *Thread) Branch(e Expr) {
	t.attach(Op{IsBranch: true, Cond: e})
}

// Use marks a register's value as observed (a branch depending on it).
// This is how litmus tests express "the program later uses r".
func (t *Thread) Use(r Reg) { t.Branch(RegExpr(r)) }

// LoadDep appends a load whose address depends on register dep (an
// address dependency, for observability analysis).
func (t *Thread) LoadDep(loc Loc, dep Reg, c core.Class) Reg {
	r := t.newReg()
	t.attach(Op{Class: c, AOp: core.OpLoad, Loc: loc, Dst: r, AddrDeps: []Reg{dep}})
	return r
}
