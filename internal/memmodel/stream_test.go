package memmodel

import (
	"reflect"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// TestStreamingMatchesMaterialize is the determinism contract of the
// streaming pipeline: for every catalog program and model, the verdict
// must be byte-identical between the materializing reference mode and
// streaming at several worker counts — delivery order is unspecified, but
// every aggregated field is a set merged by union and finished by a sort.
func TestStreamingMatchesMaterialize(t *testing.T) {
	for _, tc := range litmus.Suite() {
		for _, m := range []core.Model{core.DRF0, core.DRF1, core.DRFrlx} {
			want, err := CheckProgramWith(tc.Prog, m, CheckOptions{Materialize: true})
			if err != nil {
				t.Fatalf("%s/%s materialize: %v", tc.Prog.Name, m, err)
			}
			for _, workers := range []int{1, 2, 5} {
				got, err := CheckProgramWith(tc.Prog, m, CheckOptions{Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", tc.Prog.Name, m, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s workers=%d: verdict diverges\n got: %+v\nwant: %+v",
						tc.Prog.Name, m, workers, got, want)
				}
				if got.Summary() != want.Summary() {
					t.Errorf("%s/%s workers=%d: summary diverges: %q vs %q",
						tc.Prog.Name, m, workers, got.Summary(), want.Summary())
				}
			}
		}
	}
}

// TestStreamingRecyclesExecutions pins the bounded-memory half of the
// Visit/Recycle contract: a consumer that hands each execution back via
// Recycle keeps the enumerator on a single Execution object regardless of
// how many executions the program has — no O(#executions) allocation.
func TestStreamingRecyclesExecutions(t *testing.T) {
	p := litmus.ByName("Flags_2")
	if p == nil {
		t.Fatal("no Flags_2 in suite")
	}
	seen := map[*Execution]bool{}
	visits := 0
	var spare *Execution
	_, err := Enumerate(p.Prog.Under(core.DRFrlx), EnumOptions{
		Quantum:    true,
		Sequential: true,
		Recycle: func() *Execution {
			ex := spare
			spare = nil
			return ex
		},
		Visit: func(ex *Execution) error {
			seen[ex] = true
			visits++
			spare = ex
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits < 2 {
		t.Fatalf("want multiple executions, got %d", visits)
	}
	if len(seen) != 1 {
		t.Errorf("recycling consumer saw %d distinct Executions over %d visits, want 1", len(seen), visits)
	}
}

// TestStreamingStopsOnErrStop: returning ErrStop from Visit ends
// enumeration cleanly after the current execution.
func TestStreamingStopsOnErrStop(t *testing.T) {
	p := litmus.ByName("IRIW")
	if p == nil {
		t.Fatal("no IRIW in suite")
	}
	visits := 0
	execs, err := Enumerate(p.Prog.Under(core.DRFrlx), EnumOptions{
		Quantum:    true,
		Sequential: true,
		Visit: func(ex *Execution) error {
			visits++
			if visits == 3 {
				return ErrStop
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("ErrStop must not surface as an error: %v", err)
	}
	if execs != nil {
		t.Errorf("streaming enumeration must not materialize executions, got %d", len(execs))
	}
	if visits != 3 {
		t.Errorf("visits after ErrStop: got %d, want 3", visits)
	}
}

// TestStreamingNaiveIntractableSeeds checks whole-program verdicts on the
// random programs whose naive enumeration exceeds the execution limit
// (the trailing seeds of TestTheoremPropertyRandom): the streaming
// pipeline must complete under partial-order reduction and agree with the
// materializing mode.
func TestStreamingNaiveIntractableSeeds(t *testing.T) {
	for _, seed := range []int64{346, 960, 5861} {
		p := randomProgram(seed)
		want, err := CheckProgramWith(p, core.DRFrlx, CheckOptions{Materialize: true})
		if err != nil {
			t.Fatalf("seed %d materialize: %v", seed, err)
		}
		got, err := CheckProgram(p, core.DRFrlx)
		if err != nil {
			t.Fatalf("seed %d streaming: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: streaming verdict diverges\n got: %+v\nwant: %+v", seed, got, want)
		}
	}
}
