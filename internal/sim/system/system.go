// Package system assembles the full simulated machine of Table 2 — mesh,
// L1s, L2 banks, CUs, CPU — and runs a workload trace to completion under
// a chosen coherence protocol and consistency model, producing timing,
// event, and energy statistics.
package system

import (
	"fmt"
	"strings"
	"sync/atomic"

	"rats/internal/energy"
	"rats/internal/fault"
	"rats/internal/probe"
	"rats/internal/sim/cu"
	"rats/internal/sim/memsys"
	"rats/internal/sim/noc"
	"rats/internal/stats"
	"rats/internal/trace"
)

// event is a scheduled continuation, ordered by (cycle, seq) so
// same-cycle events fire in scheduling order (the FIFO contract of
// Env.At).
type event struct {
	cycle int64
	seq   int64
	d     memsys.Deferred
}

// eventQueue is a hand-rolled binary min-heap of events. container/heap
// funnels elements through `any`, boxing every push and pop; the typed
// heap keeps the scheduler allocation-free in steady state.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	*q = h
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	*q = h
	for i := 0; ; {
		s := i
		if l := 2*i + 1; l < n && h.less(l, s) {
			s = l
		}
		if r := 2*i + 2; r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top
}

// System is one assembled machine instance.
type System struct {
	Cfg   memsys.Config
	env   *memsys.Env
	mesh  *noc.Mesh
	l1s   []*memsys.L1
	l2s   []*memsys.L2Bank
	cus   []*cu.CU
	stats stats.Stats

	events eventQueue
	evSeq  int64
	cycle  int64
	txnSeq int64
	tr     *trace.Trace
	probe  *probe.Hub
	inj    *fault.Injector
	// skipOff disables fast-forwarding so every cycle is processed — the
	// reference mode cycle skipping is validated against. quietUntil marks
	// cycles the skip oracle proved idle: in skip-off mode they are still
	// processed, but with stall accounting suppressed, so both modes
	// attribute stalls over the identical set of scheduler-active cycles.
	skipOff    bool
	quietUntil int64

	// abortMsg, when set (from any goroutine), makes Run stop at the next
	// check and return a diagnostic error — the harness's wall-clock
	// timeout mechanism.
	abortMsg atomic.Pointer[string]

	// debugHook, when set, runs after every processed cycle (tests only).
	debugHook func(cycle int64)
}

// Result is the outcome of a simulation run.
type Result struct {
	Name   string
	Cfg    memsys.Config
	Stats  stats.Stats
	Energy energy.Breakdown
	// Read returns the final functional value of a word address.
	Read func(addr uint64) int64
}

// New builds the machine for a configuration.
func New(cfg memsys.Config) *System {
	s := &System{Cfg: cfg}
	s.mesh = noc.NewMesh(cfg.MeshWidth, cfg.MeshHeight, cfg.HopLat, &s.stats)
	s.env = &memsys.Env{
		Cfg:    &s.Cfg,
		Mesh:   s.mesh,
		Stats:  &s.stats,
		Values: map[uint64]int64{},
		At:     s.at,
	}
	for n := 0; n < cfg.Nodes(); n++ {
		l1 := memsys.NewL1(s.env, n)
		l2 := memsys.NewL2Bank(s.env, n)
		s.l1s = append(s.l1s, l1)
		s.l2s = append(s.l2s, l2)
		s.cus = append(s.cus, cu.New(s.env, n, l1, &s.txnSeq))
		node := n
		s.mesh.SetReceiver(n, func(m noc.Message) { s.deliver(node, m) })
	}
	s.mesh.SetPayloadNamer(memsys.PayloadName)
	if cfg.Faults != nil {
		s.inj = fault.NewInjector(cfg.Faults, cfg.FaultSeed)
		s.env.Fault = s.inj
		s.mesh.SetFault(s.inj)
	}
	return s
}

// FaultCounts returns the injected-perturbation tally, and whether fault
// injection is enabled at all.
func (s *System) FaultCounts() (fault.Counts, bool) {
	if s.inj == nil {
		return fault.Counts{}, false
	}
	return s.inj.Counts(), true
}

// Abort requests that a running simulation stop with a diagnostic error.
// Safe to call from another goroutine (wall-clock timeouts).
func (s *System) Abort(reason string) { s.abortMsg.Store(&reason) }

// SetCycleSkipping toggles the event-driven fast-forward (on by default).
// With skipping off every cycle is processed individually; results must
// be identical either way — the equivalence tests pin this.
func (s *System) SetCycleSkipping(on bool) { s.skipOff = !on }

// AttachProbe enables the observability layer: every component's
// emission points route to the hub. Call before Run, after attaching the
// hub's sinks; with no hub attached — or a hub with no sinks and no
// sampling — the simulator takes the nil-check fast path everywhere.
func (s *System) AttachProbe(h *probe.Hub) {
	h = h.ActiveOrNil()
	s.probe = h
	s.env.Probe = h
	s.mesh.AttachProbe(h)
	for _, l1 := range s.l1s {
		l1.AttachProbe(h)
	}
}

// at schedules a deferred continuation at the given cycle (clamped to
// the future so handlers never re-enter the current cycle's processing).
func (s *System) at(cycle int64, d memsys.Deferred) {
	if cycle <= s.cycle {
		cycle = s.cycle + 1
	}
	s.evSeq++
	s.events.push(event{cycle: cycle, seq: s.evSeq, d: d})
}

// deliver routes a network message to the right component: L2 requests go
// to the bank, everything else to the L1.
func (s *System) deliver(node int, m noc.Message) {
	if memsys.IsL2Request(m.Payload) {
		s.l2s[node].Handle(s.cycle, m.Payload)
		return
	}
	s.l1s[node].Handle(s.cycle, m.Payload)
}

// Load places a trace's warps onto the machine and seeds the value layer.
func (s *System) Load(tr *trace.Trace) error {
	s.tr = tr
	for addr, v := range tr.Init {
		s.env.Values[s.Cfg.WordAddr(addr)] = v
	}
	for _, w := range tr.Warps {
		node := w.CU
		if w.IsCPU {
			node = s.Cfg.CPUNode
		} else if node < 0 || node >= s.Cfg.NumCUs {
			return fmt.Errorf("system: warp placed on CU %d (have %d CUs)", node, s.Cfg.NumCUs)
		}
		s.cus[node].AddWarp(w)
	}
	return nil
}

// Run executes the loaded trace to completion and returns the result.
// Non-completion — MaxCycles, the liveness watchdog, an invariant
// violation, or an Abort — returns a *DiagnosticError carrying the run's
// state (stuck warps, MSHR/store-buffer occupancy, in-flight messages)
// rather than a bare message.
func (s *System) Run() (*Result, error) {
	if s.tr == nil {
		return nil, fmt.Errorf("system: no trace loaded")
	}
	var (
		lastSig      int64 // progress signature at lastProgress
		lastProgress int64 // cycle progress was last observed
		prevCoreOps  int64 // monotone-retirement invariant state
		iters        int64 // processed-cycle count (abort polling)
	)
	for {
		if s.done() {
			break
		}
		s.cycle++
		if s.cycle > s.Cfg.MaxCycles {
			return nil, s.diagnose(fmt.Sprintf("exceeded MaxCycles=%d (deadlock?)", s.Cfg.MaxCycles))
		}
		if s.probe != nil {
			s.probe.Tick(s.cycle, &s.stats)
		}
		// 1. Run scheduled events.
		for s.events.Len() > 0 && s.events[0].cycle <= s.cycle {
			e := s.events.pop()
			e.d.Fire(s.cycle)
		}
		// 2. Deliver network messages.
		s.mesh.Tick(s.cycle)
		// 3. L1 store-buffer drains and flush callbacks.
		for _, l1 := range s.l1s {
			l1.Tick(s.cycle)
		}
		// 4. Device-wide barrier resolution.
		s.resolveBarrier()
		// 5. CUs issue. A cycle is "quiet" when fast-forwarding is disabled
		// but the wake hints proved it idle: it still runs in full (so an
		// inexact hint diverges the architectural counters and fails the
		// equivalence tests) with only stall accounting suppressed, since a
		// skipped cycle would not have been attributed either.
		quiet := s.skipOff && s.cycle <= s.quietUntil
		for _, c := range s.cus {
			c.Tick(s.cycle, quiet)
		}
		if s.debugHook != nil {
			s.debugHook(s.cycle)
		}
		// Always-on invariants: catch corruption as a diagnosed error.
		if s.stats.CoreOps < prevCoreOps {
			return nil, s.diagnose(fmt.Sprintf(
				"invariant violated: retired-op count decreased (%d -> %d)", prevCoreOps, s.stats.CoreOps))
		}
		prevCoreOps = s.stats.CoreOps
		for _, l1 := range s.l1s {
			d := l1.Diag()
			if d.MSHROutstanding > d.MSHRCapacity {
				return nil, s.diagnose(fmt.Sprintf(
					"invariant violated: node %d MSHR occupancy %d exceeds capacity %d",
					d.Node, d.MSHROutstanding, d.MSHRCapacity))
			}
			if d.SBQueued > d.SBCapacity {
				return nil, s.diagnose(fmt.Sprintf(
					"invariant violated: node %d store-buffer occupancy %d exceeds capacity %d",
					d.Node, d.SBQueued, d.SBCapacity))
			}
		}
		// Liveness watchdog: no counter moved for a whole window.
		if sig := s.progressSignature(); sig != lastSig {
			lastSig = sig
			lastProgress = s.cycle
		} else if w := s.Cfg.WatchdogWindow; w > 0 && s.cycle-lastProgress >= w {
			return nil, s.diagnose(fmt.Sprintf(
				"no forward progress for %d cycles (watchdog window %d)", s.cycle-lastProgress, w))
		}
		iters++
		if iters&1023 == 0 {
			if msg := s.abortMsg.Load(); msg != nil {
				return nil, s.diagnose("aborted: " + *msg)
			}
		}
		// 6. Fast-forward over provably idle cycles (or, in the skip-off
		// validation mode, just mark them quiet and walk through them).
		// Never jump once the machine is done: a hint can outlive the last
		// retirement (the fault injector reports pressure-window boundaries
		// unconditionally), and jumping first would inflate the final cycle
		// count past where the reference mode stops.
		if s.skipOff {
			s.quietUntil = s.cycle
			if next := s.nextWorkCycle(); next > s.cycle+1 {
				s.quietUntil = next - 1
			}
		} else if next := s.nextWorkCycle(); next > s.cycle+1 && !s.done() {
			s.cycle = next - 1
		}
	}
	// End-of-run invariant: nothing outlives the run.
	if s.mesh.Pending() {
		return nil, s.diagnose("invariant violated: messages in flight after completion")
	}
	for _, l1 := range s.l1s {
		if !l1.Quiesced() {
			return nil, s.diagnose("invariant violated: L1 work outstanding after completion")
		}
	}
	s.stats.Cycles = s.cycle
	s.finishProbe()
	res := &Result{
		Name:   s.tr.Name,
		Cfg:    s.Cfg,
		Stats:  s.stats,
		Energy: energy.Compute(&s.stats, energy.DefaultModel()),
		Read:   func(addr uint64) int64 { return s.env.Values[s.Cfg.WordAddr(addr)] },
	}
	if s.tr.FinalCheck != nil {
		if err := s.tr.FinalCheck(res.Read); err != nil {
			return res, fmt.Errorf("system: functional check failed for %s: %w", s.tr.Name, err)
		}
	}
	return res, nil
}

// progressSignature folds every counter that moves when the machine does
// useful work into one value; if it is unchanged across a whole watchdog
// window the run is wedged. Warp retirement bumps no Stats counter, so
// retired-warp counts are folded in too — otherwise the final retire of a
// long-quiet warp could trip the watchdog spuriously.
func (s *System) progressSignature() int64 {
	sig := s.stats.CoreOps + s.stats.L1Accesses + s.stats.L2Accesses +
		s.stats.Atomics + s.stats.NoCMessages
	for _, c := range s.cus {
		sig += int64(c.RetiredWarps())
	}
	return sig
}

// Caps on how much per-item detail a DiagnosticError carries; full counts
// are always reported.
const (
	maxDiagWarps    = 16
	maxDiagMessages = 16
)

// DiagnosticError is returned by Run when a simulation cannot complete:
// MaxCycles exhaustion, the liveness watchdog firing, an invariant
// violation, or an external Abort. It snapshots enough machine state to
// localize the hang — which warps are stuck and why, L1 MSHR/store-buffer
// occupancy, and in-flight network messages.
type DiagnosticError struct {
	Workload string
	Reason   string
	Cycle    int64
	MaxCyc   int64

	RetiredOps   int64
	RetiredWarps int
	TotalWarps   int

	// Warps holds stuck (non-retired) warps only, capped at maxDiagWarps;
	// WarpsOmitted counts the rest.
	Warps        []cu.WarpDiag
	WarpsOmitted int

	// L1s holds controllers with outstanding work only.
	L1s []memsys.L1Diag

	// Messages holds in-flight NoC messages, soonest arrival first, capped
	// at maxDiagMessages; MessagesOmitted counts the rest.
	Messages        []noc.MsgDiag
	MessagesOmitted int

	CoalescedTxns int
	PendingEvents int
}

// Error renders a multi-line deadlock report.
func (e *DiagnosticError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system: %s: %s at cycle %d (retired ops %d, warps %d/%d retired)",
		e.Workload, e.Reason, e.Cycle, e.RetiredOps, e.RetiredWarps, e.TotalWarps)
	for _, w := range e.Warps {
		fmt.Fprintf(&b, "\n  warp %d (node %d): %s, pc %d/%d, %d loads + %d atomics outstanding",
			w.Warp, w.Node, w.State, w.PC, w.Ops, w.OutLoads, w.OutAtomics)
	}
	if e.WarpsOmitted > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more stuck warps", e.WarpsOmitted)
	}
	for _, d := range e.L1s {
		fmt.Fprintf(&b, "\n  L1 node %d: MSHR %d/%d, store buffer %d/%d (%d unacked), %d atomics, %d forwards, %d flush waiters",
			d.Node, d.MSHROutstanding, d.MSHRCapacity, d.SBQueued, d.SBCapacity,
			d.SBUnacked, d.PendingAtomics, d.PendingForwards, d.FlushWaiters)
	}
	for _, m := range e.Messages {
		tag := ""
		if m.Dup {
			tag = " (dup)"
		}
		fmt.Fprintf(&b, "\n  in flight: %s %d->%d, %d flits, arrives cycle %d%s",
			m.Payload, m.Src, m.Dst, m.Flits, m.Arrival, tag)
	}
	if e.MessagesOmitted > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more in-flight messages", e.MessagesOmitted)
	}
	if e.CoalescedTxns > 0 {
		fmt.Fprintf(&b, "\n  %d transactions queued in coalescers", e.CoalescedTxns)
	}
	if e.PendingEvents > 0 {
		fmt.Fprintf(&b, "\n  %d scheduled events pending", e.PendingEvents)
	}
	return b.String()
}

// diagnose builds the DiagnosticError for a failed run and, when a probe
// hub is attached, emits the same report as WatchdogReport events so it
// lands in traces alongside the run's other telemetry.
func (s *System) diagnose(reason string) *DiagnosticError {
	e := &DiagnosticError{
		Reason:     reason,
		Cycle:      s.cycle,
		MaxCyc:     s.Cfg.MaxCycles,
		RetiredOps: s.stats.CoreOps,
	}
	if s.tr != nil {
		e.Workload = s.tr.Name
	}
	for _, c := range s.cus {
		e.RetiredWarps += c.RetiredWarps()
		e.CoalescedTxns += c.CoalescerDepth()
		for _, w := range c.Diag(s.cycle) {
			e.TotalWarps++
			if !w.Stuck() {
				continue
			}
			if len(e.Warps) < maxDiagWarps {
				e.Warps = append(e.Warps, w)
			} else {
				e.WarpsOmitted++
			}
		}
	}
	for _, l1 := range s.l1s {
		if d := l1.Diag(); d.Busy() {
			e.L1s = append(e.L1s, d)
		}
	}
	for _, m := range s.mesh.InFlight() {
		if len(e.Messages) < maxDiagMessages {
			e.Messages = append(e.Messages, m)
		} else {
			e.MessagesOmitted++
		}
	}
	e.PendingEvents = s.events.Len()
	if s.probe != nil {
		s.probe.Emit(probe.Event{Cycle: s.cycle, Comp: probe.CompSystem, Node: -1, Warp: -1,
			Kind: probe.WatchdogReport, Arg: int64(len(e.Warps) + e.WarpsOmitted)})
		for _, w := range e.Warps {
			s.probe.Emit(probe.Event{Cycle: s.cycle, Comp: probe.CompCU, Node: w.Node,
				Warp: w.Warp, Kind: probe.WatchdogReport, Arg: int64(w.PC), Aux: int64(w.Ops)})
		}
	}
	// Failed runs flush their telemetry too: open stall intervals close
	// and the final partial metrics interval is sampled, so the tail
	// window leading up to the failure isn't silently dropped.
	s.finishProbe()
	return e
}

// finishProbe closes per-warp stall intervals and emits the end-of-run
// (or end-of-diagnosis) sample. Called on both the success and the
// diagnosed-failure paths.
func (s *System) finishProbe() {
	if s.probe == nil {
		return
	}
	for _, c := range s.cus {
		c.CloseStalls(s.cycle, s.probe)
	}
	s.probe.FinalSample(s.cycle, &s.stats)
}

// done reports whether every warp has retired and the machine is idle.
func (s *System) done() bool {
	if s.mesh.Pending() || s.events.Len() > 0 {
		return false
	}
	for _, c := range s.cus {
		if !c.Done() {
			return false
		}
	}
	for _, l1 := range s.l1s {
		if !l1.Quiesced() {
			return false
		}
	}
	return true
}

// barrierReady reports whether the device-wide barrier can release:
// every live warp has arrived, every store buffer has drained, and no
// traffic (write-through acks, atomics) is still settling. Shared by
// resolveBarrier and the system's own wake hint — the barrier is the one
// piece of clocked behavior the driver itself owns, so the driver must
// report it as next-cycle work or fast-forwarding would jump over the
// release.
func (s *System) barrierReady() (waiting int, ok bool) {
	for _, c := range s.cus {
		waiting += c.BarrierWaiters()
	}
	if waiting == 0 {
		return 0, false
	}
	live := 0
	for _, c := range s.cus {
		live += c.NumWarps()
	}
	// Warps that already retired no longer participate.
	retired := 0
	for _, c := range s.cus {
		retired += c.RetiredWarps()
	}
	if waiting < live-retired {
		return waiting, false
	}
	for _, l1 := range s.l1s {
		if !l1.SBDrained() {
			return waiting, false
		}
	}
	return waiting, !s.mesh.Pending()
}

// resolveBarrier implements the device-wide barrier: when every live warp
// has arrived and every store buffer has drained, all L1s self-invalidate
// (barriers carry paired acquire+release semantics under every model) and
// the warps resume.
func (s *System) resolveBarrier() {
	waiting, ok := s.barrierReady()
	if !ok {
		return
	}
	for _, l1 := range s.l1s {
		l1.AcquireInvalidate()
	}
	for _, c := range s.cus {
		c.ReleaseBarrier()
	}
	if s.probe != nil {
		s.probe.Emit(probe.Event{Cycle: s.cycle, Comp: probe.CompSystem, Node: -1,
			Warp: -1, Kind: probe.BarrierRelease, Arg: int64(waiting)})
	}
}

// nextWorkCycle polls every component's NextWork wake hint plus the
// event queue and returns the earliest cycle anything can make progress
// on its own, or -1 when the machine is entirely idle (then nothing
// will ever happen again — the done check or the watchdog ends the
// run). The driver skips the clock straight to this cycle, so hints
// must be exact: every cycle a component would act on must be reported.
// A component that only reacts to deliveries and scheduled events may
// return -1 unconditionally, because those arrive at processed cycles.
func (s *System) nextWorkCycle() int64 {
	next := int64(-1)
	min := func(t int64) {
		if t >= 0 && (next < 0 || t < next) {
			next = t
		}
	}
	for _, c := range s.cus {
		min(c.NextWork(s.cycle))
	}
	for _, l1 := range s.l1s {
		min(l1.NextWork(s.cycle))
	}
	for _, l2 := range s.l2s {
		min(l2.NextWork(s.cycle))
	}
	min(s.mesh.NextWork(s.cycle))
	if s.inj != nil {
		min(s.inj.NextWork(s.cycle))
	}
	if s.events.Len() > 0 {
		min(s.events[0].cycle)
	}
	// The driver's own clocked work: a resolvable barrier releases at the
	// next processed cycle.
	if _, ok := s.barrierReady(); ok {
		min(s.cycle + 1)
	}
	return next
}

// RunTrace is the one-call convenience API: build, load, run.
func RunTrace(cfg memsys.Config, tr *trace.Trace) (*Result, error) {
	s := New(cfg)
	if err := s.Load(tr); err != nil {
		return nil, err
	}
	return s.Run()
}

