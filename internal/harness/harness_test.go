package harness

import (
	"fmt"
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/workloads"
)

func TestConfigFor(t *testing.T) {
	for name, want := range map[string]struct {
		proto memsys.Protocol
		model core.Model
	}{
		"GD0": {memsys.ProtoGPU, core.DRF0},
		"GD1": {memsys.ProtoGPU, core.DRF1},
		"GDR": {memsys.ProtoGPU, core.DRFrlx},
		"DD0": {memsys.ProtoDeNovo, core.DRF0},
		"DD1": {memsys.ProtoDeNovo, core.DRF1},
		"DDR": {memsys.ProtoDeNovo, core.DRFrlx},
	} {
		cfg, err := ConfigFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Protocol != want.proto || cfg.Model != want.model {
			t.Errorf("%s -> %v/%v", name, cfg.Protocol, cfg.Model)
		}
	}
	for _, bad := range []string{"", "XX0", "GD9", "ZDR", "GD"} {
		if _, err := ConfigFor(bad); err == nil {
			t.Errorf("ConfigFor(%q) should fail", bad)
		}
	}
}

func TestTablesRender(t *testing.T) {
	t2 := Table2()
	for _, want := range []string{"GPU CUs", "15", "32 KB", "4 MB", "128 entries", "4x4"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	t3 := Table3()
	for _, want := range []string{"H", "HG-NO", "SEQ", "UTS", "BC-4", "PR-4", "rome99", "Quantum", "Speculative"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
	t4 := Table4()
	for _, want := range []string{"Avoid cache invalidations", "Overlap atomics", "DRFrlx"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table4 missing %q", want)
		}
	}
	if !strings.Contains(EnergyModelDescription(), "pJ") {
		t.Error("energy description wrong")
	}
}

func TestTable2LatencyRangesMatchPaper(t *testing.T) {
	// The paper's Table 2: L2 hit 29-61, remote L1 35-83, memory 197-261.
	// Our derived ranges must overlap those windows.
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	checks := []struct {
		got   string
		loMax int64 // derived lower bound must be <= this
		hiMin int64 // derived upper bound must be >= this
	}{
		{l2Range(cfg), 35, 50},
		{remoteL1Range(cfg), 45, 60},
		{memRange(cfg), 200, 210},
	}
	for _, c := range checks {
		var lo, hi int64
		if _, err := sscan(c.got, &lo, &hi); err != nil {
			t.Fatalf("bad range %q: %v", c.got, err)
		}
		if lo > c.loMax || hi < c.hiMin {
			t.Errorf("range %q outside paper window (lo<=%d, hi>=%d)", c.got, c.loMax, c.hiMin)
		}
	}
}

// sscan parses "lo-hi cycles".
func sscan(s string, lo, hi *int64) (int, error) {
	return fmt.Sscanf(s, "%d-%d cycles", lo, hi)
}

func TestFigure1Shape(t *testing.T) {
	rows, err := Figure1(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Figure 1 has %d apps, want 9", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Speedup < 0.9 {
			t.Errorf("%s: relaxed atomics slowed the discrete GPU down: %.2fx", r.App, r.Speedup)
		}
		byName[r.App] = r.Speedup
	}
	// The paper's headline: the graph benchmarks benefit most; PageRank
	// is the extreme case.
	if byName["PageRank"] < 1.5 {
		t.Errorf("PageRank speedup %.2fx too small", byName["PageRank"])
	}
	if byName["PageRank"] <= byName["Flags"] || byName["BC"] <= byName["Flags"] {
		t.Error("graph benchmarks should outgain Flags on the discrete GPU")
	}
	out := RenderFigure1(rows)
	if !strings.Contains(out, "PageRank") || !strings.Contains(out, "#") {
		t.Error("Figure 1 render broken")
	}
}

func TestFigure3ShapeAndSummary(t *testing.T) {
	fig3, err := Figure3(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Order) != 7 {
		t.Fatalf("Figure 3 rows: %d", len(fig3.Order))
	}
	norm := fig3.Time.Normalize("GD0")
	for _, wl := range fig3.Order {
		if v := norm.Get(wl, "GD0"); v != 1 {
			t.Errorf("%s GD0 normalized = %f", wl, v)
		}
		// Weakening the model never hurts by more than simulation noise
		// within a protocol (contention effects allowed, bounded).
		for _, proto := range []string{"G", "D"} {
			d0 := norm.Get(wl, proto+"D0")
			dr := norm.Get(wl, proto+"DR")
			if dr > d0*1.05 {
				t.Errorf("%s: %sDR (%.3f) much slower than %sD0 (%.3f)", wl, proto, dr, proto, d0)
			}
		}
	}
	fig4, err := Figure4(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Order) != 9 {
		t.Fatalf("Figure 4 rows: %d", len(fig4.Order))
	}
	// BC and PR must show the paper's big DRF1 gains on GPU coherence.
	n4 := fig4.Time.Normalize("GD0")
	for _, wl := range []string{"BC-1", "PR-1"} {
		if g1 := n4.Get(wl, "GD1"); g1 > 0.95 {
			t.Errorf("%s GD1 = %.3f: missing the DRF1 reuse win", wl, g1)
		}
	}
	// UTS is insensitive to DRFrlx (unpaired atomics only).
	if d := n4.Get("UTS", "GDR") - n4.Get("UTS", "GD1"); d > 0.02 || d < -0.02 {
		t.Errorf("UTS GDR vs GD1 differs by %.3f; unpaired atomics should make DRFrlx a no-op", d)
	}

	s := Summarize(fig3, fig4)
	if s.MicroDRFrlxVsDRF0GPU <= 0 || s.MicroDRFrlxVsDRF0DeNovo <= 0 {
		t.Error("DRFrlx should reduce microbenchmark time on both protocols")
	}
	if s.DRF1TimeReduction[0] <= 0 || s.DRF1TimeReduction[1] <= 0 {
		t.Error("DRF1 should reduce time on both protocols")
	}
	if s.MaxDRF1ReductionBCPR[1] < 0.25 {
		t.Errorf("BC/PR max DRF1 reduction (DeNovo) = %.2f; paper reports up to 53%%", s.MaxDRF1ReductionBCPR[1])
	}
	if s.MaxDRFrlxReductionBCPR[0] < 0.15 {
		t.Errorf("BC/PR max DRFrlx reduction (GPU) = %.2f; paper reports up to 37%%", s.MaxDRFrlxReductionBCPR[0])
	}
	out := s.Render()
	if !strings.Contains(out, "paper:") {
		t.Error("summary render missing paper comparisons")
	}
	if !strings.Contains(fig3.Render(), "normalized") {
		t.Error("figure render missing normalization")
	}
}

func TestRunAllErrorPropagation(t *testing.T) {
	_, err := RunAll(workloads.Micro()[:1], workloads.Test, []string{"BOGUS"})
	if err == nil {
		t.Fatal("bogus config should error")
	}
}

func TestEnergyBreakdownPopulated(t *testing.T) {
	fig3, err := Figure3(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range fig3.Order {
		for _, cfg := range ConfigOrder {
			if fig3.Energy.Total(wl, cfg) <= 0 {
				t.Errorf("energy cell %s/%s empty", wl, cfg)
			}
		}
	}
	out := fig3.Energy.Render("GD0")
	for _, comp := range EnergyComponents {
		if !strings.Contains(out, comp) {
			t.Errorf("energy render missing %s", comp)
		}
	}
}
