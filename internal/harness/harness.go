// Package harness runs the paper's experiments end to end: it sweeps
// workloads across the six configurations (GD0, GD1, GDR, DD0, DD1, DDR),
// regenerates every figure and table of the evaluation, and computes the
// summary statistics Section 6 quotes.
package harness

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rats/internal/core"
	"rats/internal/energy"
	"rats/internal/fault"
	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
	"rats/internal/report"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/trace"
	"rats/internal/workloads"
)

// ConfigOrder lists the six configurations in the paper's order.
var ConfigOrder = []string{"GD0", "GD1", "GDR", "DD0", "DD1", "DDR"}

// EnergyComponents lists the paper's energy breakdown components.
var EnergyComponents = []string{"GPU core+", "Scratch", "L1", "L2", "NoC"}

// ConfigFor returns the simulator configuration for a name like "GD0" or
// "DDR".
func ConfigFor(name string) (memsys.Config, error) {
	if len(name) != 3 {
		return memsys.Config{}, fmt.Errorf("harness: bad config name %q", name)
	}
	var proto memsys.Protocol
	switch name[0] {
	case 'G':
		proto = memsys.ProtoGPU
	case 'D':
		proto = memsys.ProtoDeNovo
	default:
		return memsys.Config{}, fmt.Errorf("harness: bad protocol in %q", name)
	}
	var model core.Model
	switch name[1:] {
	case "D0":
		model = core.DRF0
	case "D1":
		model = core.DRF1
	case "DR":
		model = core.DRFrlx
	default:
		return memsys.Config{}, fmt.Errorf("harness: bad model in %q", name)
	}
	return memsys.Default(proto, model), nil
}

// Results maps workload name -> config name -> simulation result.
type Results map[string]map[string]*system.Result

// RunOptions controls the resilience and fault-injection behaviour of a
// sweep. The zero value reproduces the plain sweep: no timeouts, no
// journal, no injected faults, default watchdog.
type RunOptions struct {
	// Timeout, when positive, bounds each run's wall-clock time; an
	// expired run aborts with a diagnostic error instead of hanging the
	// sweep.
	Timeout time.Duration
	// Journal, when non-nil, records each completed run and lets an
	// interrupted sweep resume: already-journaled (workload, config) pairs
	// are restored instead of re-simulated.
	Journal *Journal
	// Faults and FaultSeed configure deterministic fault injection for
	// every run in the sweep.
	Faults    *fault.Spec
	FaultSeed int64
	// WatchdogWindow overrides the per-run liveness watchdog: positive
	// replaces the default no-progress window, negative disables the
	// watchdog, zero keeps the configuration default.
	WatchdogWindow int64
	// Progress, when non-nil, receives per-run lifecycle updates
	// (running/done/failed/restored) for the live /progress endpoint.
	Progress *obs.Progress
	// Checks, when non-nil, registers one telemetry check per semantics
	// check a litmus sweep (LitmusSweep) runs, feeding the obs server's
	// /checks endpoint and rats_check_* metrics. Simulation sweeps ignore
	// it.
	Checks *telemetry.Registry
	// TelemetryOut, when non-nil, receives the deterministic per-check
	// JSONL records when a litmus sweep completes — one JSON object per
	// check, in suite order, byte-identical across runs and worker counts.
	TelemetryOut io.Writer
	// Retries, when positive, re-runs a failed (workload, config) pair up
	// to this many extra times when the failure looks transient — a
	// recovered panic or a wall-clock timeout — with exponential backoff
	// and jitter between attempts. Deterministic failures (bad config,
	// nil trace) are never retried. Every failed attempt is journaled, so
	// a resumed sweep picks up the remaining budget instead of starting
	// the count over, and a pair that exhausted its budget in an earlier
	// process fails immediately instead of burning the timeouts again.
	Retries int
	// RetryBackoff is the delay before the first retry; each further
	// retry doubles it (plus up to 50% jitter, capped at 5s). Zero means
	// 100ms.
	RetryBackoff time.Duration
}

// apply folds the options into a run configuration.
func (o *RunOptions) apply(cfg *memsys.Config) {
	if o == nil {
		return
	}
	cfg.Faults = o.Faults
	cfg.FaultSeed = o.FaultSeed
	switch {
	case o.WatchdogWindow > 0:
		cfg.WatchdogWindow = o.WatchdogWindow
	case o.WatchdogWindow < 0:
		cfg.WatchdogWindow = 0
	}
}

// errRunPanic and errRunTimeout classify a run failure for the retry
// logic. They are sentinels wrapped into the returned error at the point
// where the failure's nature is known for certain — recovering the panic,
// observing the timeout timer fire — so classification never depends on
// what the error message happens to contain (a workload or config whose
// name mentions "timeout" must not look transient).
var (
	errRunPanic   = errors.New("run panicked")
	errRunTimeout = errors.New("run timed out")
)

// runOne executes a single (workload, config) pair with panic recovery
// and an optional wall-clock timeout. A panic anywhere in trace building
// or simulation is converted into an error carrying the stack, so one
// broken run cannot take down the rest of a sweep.
func runOne(entry workloads.Entry, scale workloads.Scale, cfgName string, opts *RunOptions) (res *system.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("%w: panic: %v\n%s", errRunPanic, r, debug.Stack())
		}
	}()
	cfg, err := ConfigFor(cfgName)
	if err != nil {
		return nil, err
	}
	opts.apply(&cfg)
	var tr *trace.Trace
	if tr = entry.Build(scale); tr == nil {
		return nil, fmt.Errorf("workload %s built a nil trace", entry.Name)
	}
	sys := system.New(cfg)
	if err := sys.Load(tr); err != nil {
		return nil, err
	}
	var timedOut atomic.Bool
	if opts != nil && opts.Timeout > 0 {
		d := opts.Timeout
		t := time.AfterFunc(d, func() {
			timedOut.Store(true)
			sys.Abort(fmt.Sprintf("wall-clock timeout %s exceeded", d))
		})
		defer t.Stop()
	}
	res, err = sys.Run()
	if err != nil && timedOut.Load() {
		err = fmt.Errorf("%w: %w", errRunTimeout, err)
	}
	return res, err
}

// retryable reports whether a run failure is worth re-attempting: a
// recovered panic or a wall-clock timeout can be a transient scheduling
// or resource hiccup, while config and trace errors are deterministic
// and would just fail again.
func retryable(err error) bool {
	return errors.Is(err, errRunPanic) || errors.Is(err, errRunTimeout)
}

// retrySleep is the backoff before retry n (0-based): base doubled n
// times, capped at 5s, plus up to 50% jitter so retries from parallel
// workers do not re-collide. Doubling stops at the cap, so a large n
// cannot overflow the shift into a negative duration.
func retrySleep(base time.Duration, n int) time.Duration {
	const max = 5 * time.Second
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// runAttempts runs one (workload, config) pair through the retry budget.
// The journal's attempt history counts against the budget, so a resumed
// sweep continues where the previous process stopped — and refuses
// outright when the budget was already exhausted.
func runAttempts(entry workloads.Entry, scale workloads.Scale, cfgName string, opts *RunOptions) (*system.Result, error) {
	budget := 1
	var jnl *Journal
	if opts != nil {
		budget += opts.Retries
		jnl = opts.Journal
	}
	start := 0
	if jnl != nil {
		n, lastErr := jnl.Attempts(entry.Name, cfgName)
		if n >= budget {
			return nil, fmt.Errorf("retry budget exhausted in an earlier sweep (%d attempts; last: %s)", n, lastErr)
		}
		start = n
	}
	for attempt := start; ; attempt++ {
		res, err := runOne(entry, scale, cfgName, opts)
		if err == nil {
			return res, nil
		}
		if !retryable(err) {
			return nil, err
		}
		if jnl != nil {
			if jerr := jnl.RecordAttempt(entry.Name, cfgName, attempt+1, err); jerr != nil {
				return nil, errors.Join(err, fmt.Errorf("journal attempt: %w", jerr))
			}
		}
		if attempt+1 >= budget {
			if budget > 1 {
				return nil, fmt.Errorf("attempt %d/%d: %w", attempt+1, budget, err)
			}
			return nil, err
		}
		var backoff time.Duration
		if opts != nil {
			backoff = opts.RetryBackoff
		}
		time.Sleep(retrySleep(backoff, attempt-start))
	}
}

// RunAll simulates every entry under every named configuration, in
// parallel across runs (each simulation is single-threaded and
// independent). Equivalent to RunAllWith with zero options.
func RunAll(entries []workloads.Entry, scale workloads.Scale, cfgNames []string) (Results, error) {
	return RunAllWith(entries, scale, cfgNames, nil)
}

// RunAllWith is RunAll with resilience options. Failures do not stop the
// sweep: every run is attempted (or restored from the journal), all
// errors are joined into the returned error, and the Results hold every
// run that did succeed — callers get partial figures plus a full account
// of what failed.
func RunAllWith(entries []workloads.Entry, scale workloads.Scale, cfgNames []string, opts *RunOptions) (Results, error) {
	type job struct {
		entry workloads.Entry
		cfg   string
	}
	var jobs []job
	for _, e := range entries {
		for _, c := range cfgNames {
			jobs = append(jobs, job{e, c})
		}
	}
	out := Results{}
	var mu sync.Mutex
	errs := make([]error, len(jobs))
	record := func(j job, res *system.Result) {
		mu.Lock()
		if out[j.entry.Name] == nil {
			out[j.entry.Name] = map[string]*system.Result{}
		}
		out[j.entry.Name][j.cfg] = res
		mu.Unlock()
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		if opts != nil && opts.Journal != nil {
			if res, ok := opts.Journal.Lookup(j.entry.Name, j.cfg); ok {
				record(j, res)
				if opts.Progress != nil {
					opts.Progress.Restored(j.entry.Name, j.cfg, res.Stats.Cycles)
				}
				continue
			}
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if opts != nil && opts.Progress != nil {
				opts.Progress.Start(j.entry.Name, j.cfg)
			}
			res, err := runAttempts(j.entry, scale, j.cfg, opts)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", j.entry.Name, j.cfg, err)
				if opts != nil && opts.Progress != nil {
					opts.Progress.Fail(j.entry.Name, j.cfg, err)
				}
				return
			}
			record(j, res)
			if opts != nil && opts.Progress != nil {
				opts.Progress.Done(j.entry.Name, j.cfg, res.Stats.Cycles)
			}
			if opts != nil && opts.Journal != nil {
				if jerr := opts.Journal.Record(j.entry.Name, j.cfg, res); jerr != nil {
					errs[i] = fmt.Errorf("%s/%s: journal: %w", j.entry.Name, j.cfg, jerr)
				}
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// Figure holds one reproduced figure: execution time and energy, plus the
// raw results.
type Figure struct {
	Title   string
	Order   []string // workload row order
	Time    *report.Table
	Energy  *report.StackedTable
	Results Results
}

// buildFigure assembles time/energy tables from results.
func buildFigure(title string, entries []workloads.Entry, res Results) *Figure {
	f := &Figure{Title: title, Results: res}
	f.Time = report.NewTable(title+" — execution time", "workload", ConfigOrder)
	f.Energy = report.NewStackedTable(title+" — energy", EnergyComponents, ConfigOrder)
	for _, e := range entries {
		f.Order = append(f.Order, e.Name)
		for _, c := range ConfigOrder {
			r := res[e.Name][c]
			if r == nil {
				continue
			}
			f.Time.Set(e.Name, c, float64(r.Stats.Cycles))
			br := r.Energy
			f.Energy.Set(e.Name, c, "GPU core+", br.Core)
			f.Energy.Set(e.Name, c, "Scratch", br.Scratch)
			f.Energy.Set(e.Name, c, "L1", br.L1)
			f.Energy.Set(e.Name, c, "L2", br.L2)
			f.Energy.Set(e.Name, c, "NoC", br.NoC)
		}
	}
	return f
}

// Render prints the figure in the paper's normalized form.
func (f *Figure) Render() string {
	var b strings.Builder
	b.WriteString(f.Time.Normalize("GD0").Render("%10.3f", true))
	b.WriteString("\n")
	b.WriteString(f.Energy.Render("GD0"))
	return b.String()
}

// Figure3 reproduces Figure 3: the seven microbenchmarks under all six
// configurations.
func Figure3(scale workloads.Scale) (*Figure, error) {
	fig, err := Figure3With(scale, nil)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Figure3With is Figure3 with resilience options. Unlike Figure3, a
// non-nil error still comes with the figure built from whatever runs
// succeeded.
func Figure3With(scale workloads.Scale, opts *RunOptions) (*Figure, error) {
	entries := workloads.Micro()
	res, err := RunAllWith(entries, scale, ConfigOrder, opts)
	return buildFigure("Figure 3: microbenchmarks", entries, res), err
}

// Figure4 reproduces Figure 4: UTS, BC 1-4, PR 1-4 under all six
// configurations.
func Figure4(scale workloads.Scale) (*Figure, error) {
	fig, err := Figure4With(scale, nil)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Figure4With is Figure4 with resilience options; like Figure3With it
// returns the partial figure alongside any joined error.
func Figure4With(scale workloads.Scale, opts *RunOptions) (*Figure, error) {
	entries := workloads.Benchmarks()
	res, err := RunAllWith(entries, scale, ConfigOrder, opts)
	return buildFigure("Figure 4: benchmarks", entries, res), err
}

// Figure1Row is one bar of Figure 1.
type Figure1Row struct {
	App     string
	Speedup float64 // relaxed-atomic time over SC-atomic time on the discrete GPU
}

// Figure1 reproduces Figure 1: relaxed vs. SC atomics on a discrete GPU.
// Each application runs twice on the discrete configuration — once with
// every atomic strengthened to SC (DRF0) and once with its relaxed
// annotations honoured (DRFrlx) — and the speedup is reported.
func Figure1(scale workloads.Scale) ([]Figure1Row, error) {
	apps := workloads.Figure1Apps()
	type res struct {
		idx     int
		sc, rlx int64
		err     error
	}
	ch := make(chan res, len(apps))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, app := range apps {
		i, app := i, app
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			scRes, err := system.RunTrace(memsys.Discrete(core.DRF0), app.Build(scale))
			if err != nil {
				ch <- res{err: fmt.Errorf("%s SC: %w", app.Name, err)}
				return
			}
			rlxRes, err := system.RunTrace(memsys.Discrete(core.DRFrlx), app.Build(scale))
			if err != nil {
				ch <- res{err: fmt.Errorf("%s relaxed: %w", app.Name, err)}
				return
			}
			ch <- res{idx: i, sc: scRes.Stats.Cycles, rlx: rlxRes.Stats.Cycles}
		}()
	}
	rows := make([]Figure1Row, len(apps))
	for range apps {
		r := <-ch
		if r.err != nil {
			return nil, r.err
		}
		rows[r.idx] = Figure1Row{App: apps[r.idx].Name, Speedup: float64(r.sc) / float64(r.rlx)}
	}
	return rows, nil
}

// RenderFigure1 draws the Figure 1 bars.
func RenderFigure1(rows []Figure1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: relaxed-atomics speedup on a discrete GPU (SC time / relaxed time)\n")
	max := 0.0
	for _, r := range rows {
		if r.Speedup > max {
			max = r.Speedup
		}
	}
	for _, r := range rows {
		n := int(r.Speedup / max * 50)
		fmt.Fprintf(&b, "%-14s %s %.2fx\n", r.App, strings.Repeat("#", n), r.Speedup)
	}
	return b.String()
}

// Summary holds the Section 6 headline aggregates.
type Summary struct {
	// Reduction[weaker][stronger] style entries, as fractions (0.12 =
	// 12% execution-time reduction).
	MicroDRFrlxVsDRF0GPU    float64
	MicroDRFrlxVsDRF0DeNovo float64
	DeNovoTimeReduction     [3]float64 // vs GPU, per model DRF0/DRF1/DRFrlx
	DeNovoEnergyReduction   [3]float64
	DRF1TimeReduction       [2]float64 // vs DRF0: [GPU, DeNovo], all workloads
	DRFrlxTimeReduction     [2]float64 // vs DRF1: [GPU, DeNovo], all workloads
	MaxDRF1ReductionBCPR    [2]float64 // best-case DRF1 vs DRF0 on BC/PR
	MaxDRFrlxReductionBCPR  [2]float64 // best-case DRFrlx vs DRF1 on BC/PR
}

func reduction(times Results, rows []string, weakCfg, strongCfg string) float64 {
	var ratios []float64
	for _, r := range rows {
		a, b := times[r][weakCfg], times[r][strongCfg]
		if a != nil && b != nil && b.Stats.Cycles > 0 {
			ratios = append(ratios, float64(a.Stats.Cycles)/float64(b.Stats.Cycles))
		}
	}
	return 1 - report.Geomean(ratios)
}

func energyReduction(times Results, rows []string, weakCfg, strongCfg string) float64 {
	var ratios []float64
	for _, r := range rows {
		a, b := times[r][weakCfg], times[r][strongCfg]
		if a != nil && b != nil && b.Energy.Total() > 0 {
			ratios = append(ratios, a.Energy.Total()/b.Energy.Total())
		}
	}
	return 1 - report.Geomean(ratios)
}

func maxReduction(times Results, rows []string, weakCfg, strongCfg string) float64 {
	best := 0.0
	for _, r := range rows {
		a, b := times[r][weakCfg], times[r][strongCfg]
		if a == nil || b == nil || b.Stats.Cycles == 0 {
			continue
		}
		red := 1 - float64(a.Stats.Cycles)/float64(b.Stats.Cycles)
		if red > best {
			best = red
		}
	}
	return best
}

// Summarize computes the Section 6 aggregates from the two figures.
func Summarize(fig3, fig4 *Figure) *Summary {
	all := Results{}
	for k, v := range fig3.Results {
		all[k] = v
	}
	for k, v := range fig4.Results {
		all[k] = v
	}
	allRows := append(append([]string{}, fig3.Order...), fig4.Order...)
	var bcpr []string
	for _, r := range fig4.Order {
		if strings.HasPrefix(r, "BC") || strings.HasPrefix(r, "PR") {
			bcpr = append(bcpr, r)
		}
	}
	s := &Summary{
		MicroDRFrlxVsDRF0GPU:    reduction(fig3.Results, fig3.Order, "GDR", "GD0"),
		MicroDRFrlxVsDRF0DeNovo: reduction(fig3.Results, fig3.Order, "DDR", "DD0"),
	}
	for i, m := range []string{"D0", "D1", "DR"} {
		s.DeNovoTimeReduction[i] = reduction(all, allRows, "D"+m, "G"+m)
		s.DeNovoEnergyReduction[i] = energyReduction(all, allRows, "D"+m, "G"+m)
	}
	s.DRF1TimeReduction = [2]float64{
		reduction(all, allRows, "GD1", "GD0"),
		reduction(all, allRows, "DD1", "DD0"),
	}
	s.DRFrlxTimeReduction = [2]float64{
		reduction(all, allRows, "GDR", "GD1"),
		reduction(all, allRows, "DDR", "DD1"),
	}
	s.MaxDRF1ReductionBCPR = [2]float64{
		maxReduction(all, bcpr, "GD1", "GD0"),
		maxReduction(all, bcpr, "DD1", "DD0"),
	}
	s.MaxDRFrlxReductionBCPR = [2]float64{
		maxReduction(all, bcpr, "GDR", "GD1"),
		maxReduction(all, bcpr, "DDR", "DD1"),
	}
	return s
}

// Render prints the summary next to the paper's quoted numbers.
func (s *Summary) Render() string {
	var b strings.Builder
	b.WriteString("Section 6 headline aggregates (measured vs. paper)\n")
	f := func(name string, got float64, paper string) {
		fmt.Fprintf(&b, "  %-58s %6.1f%%   (paper: %s)\n", name, got*100, paper)
	}
	f("micro: DRFrlx vs DRF0 exec-time reduction, GPU", s.MicroDRFrlxVsDRF0GPU, "6%")
	f("micro: DRFrlx vs DRF0 exec-time reduction, DeNovo", s.MicroDRFrlxVsDRF0DeNovo, "10%")
	f("all: DRF1 vs DRF0 exec-time reduction, GPU", s.DRF1TimeReduction[0], "11%")
	f("all: DRF1 vs DRF0 exec-time reduction, DeNovo", s.DRF1TimeReduction[1], "11%")
	f("all: DRFrlx vs DRF1 exec-time reduction, GPU", s.DRFrlxTimeReduction[0], "9%")
	f("all: DRFrlx vs DRF1 exec-time reduction, DeNovo", s.DRFrlxTimeReduction[1], "7%")
	f("BC/PR: max DRF1 vs DRF0 reduction, GPU", s.MaxDRF1ReductionBCPR[0], "up to 49%")
	f("BC/PR: max DRF1 vs DRF0 reduction, DeNovo", s.MaxDRF1ReductionBCPR[1], "up to 53%")
	f("BC/PR: max DRFrlx vs DRF1 reduction, GPU", s.MaxDRFrlxReductionBCPR[0], "up to 37%")
	f("BC/PR: max DRFrlx vs DRF1 reduction, DeNovo", s.MaxDRFrlxReductionBCPR[1], "up to 29%")
	for i, m := range []string{"DRF0", "DRF1", "DRFrlx"} {
		f(fmt.Sprintf("DeNovo vs GPU exec-time reduction, %s", m), s.DeNovoTimeReduction[i], []string{"14%", "14%", "12%"}[i])
		f(fmt.Sprintf("DeNovo vs GPU energy reduction, %s", m), s.DeNovoEnergyReduction[i], []string{"16%", "18%", "18%"}[i])
	}
	return b.String()
}

// Table2 renders the simulated system parameters.
func Table2() string {
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	var b strings.Builder
	b.WriteString("Table 2: simulated heterogeneous system parameters\n")
	rows := [][2]string{
		{"CPU cores", "1"},
		{"GPU CUs", fmt.Sprint(cfg.NumCUs)},
		{"Mesh", fmt.Sprintf("%dx%d", cfg.MeshWidth, cfg.MeshHeight)},
		{"L1 size", fmt.Sprintf("%d KB (%d sets, %d-way)", int64(cfg.L1Sets*cfg.L1Ways)*int64(cfg.LineSize)/1024, cfg.L1Sets, cfg.L1Ways)},
		{"L2 size", fmt.Sprintf("%d MB (%d banks, NUCA)", int64(cfg.L2SetsPerBank*cfg.L2Ways)*int64(cfg.LineSize)*int64(cfg.Nodes())/(1024*1024), cfg.Nodes())},
		{"Store buffer size", fmt.Sprintf("%d entries", cfg.StoreBuffer)},
		{"L1 MSHRs", fmt.Sprintf("%d entries", cfg.L1MSHRs)},
		{"L1 hit latency", fmt.Sprintf("%d cycle", cfg.L1HitLat)},
		{"Remote L1 hit latency", remoteL1Range(cfg)},
		{"L2 hit latency", l2Range(cfg)},
		{"Memory latency", memRange(cfg)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %s\n", r[0], r[1])
	}
	return b.String()
}

func l2Range(cfg memsys.Config) string {
	// Round trip: request hop(s) + bank latency + response hops.
	minLat := cfg.L2Lat + 2*cfg.HopLat
	maxLat := cfg.L2Lat + 2*int64(cfg.MeshWidth+cfg.MeshHeight-2)*cfg.HopLat + int64(cfg.DataFlits)
	return fmt.Sprintf("%d-%d cycles", minLat, maxLat)
}

func remoteL1Range(cfg memsys.Config) string {
	minLat := cfg.L2Lat + 4*cfg.HopLat + cfg.L1HitLat
	maxLat := cfg.L2Lat + 3*int64(cfg.MeshWidth+cfg.MeshHeight-2)*cfg.HopLat + cfg.L1HitLat + int64(cfg.DataFlits)
	return fmt.Sprintf("%d-%d cycles", minLat, maxLat)
}

func memRange(cfg memsys.Config) string {
	minLat := cfg.DRAMLat + cfg.L2Lat + 2*cfg.HopLat
	maxLat := cfg.DRAMLat + cfg.L2Lat + 2*int64(cfg.MeshWidth+cfg.MeshHeight-2)*cfg.HopLat + cfg.DRAMOcc
	return fmt.Sprintf("%d-%d cycles", minLat, maxLat)
}

// Table3 renders the benchmark table.
func Table3() string {
	var b strings.Builder
	b.WriteString("Table 3: benchmarks, input sizes, and relaxed atomics used\n")
	fmt.Fprintf(&b, "  %-8s %-14s %-22s %s\n", "name", "benchmark", "input", "atomic types")
	for _, e := range workloads.All() {
		fmt.Fprintf(&b, "  %-8s %-14s %-22s %s\n", e.Name, e.Full, e.Input, e.AtomicTypes)
	}
	return b.String()
}

// Table4 renders the qualitative benefits table from the model policies.
func Table4() string {
	var b strings.Builder
	b.WriteString("Table 4: benefits of DRF0, DRF1, and DRFrlx\n")
	fmt.Fprintf(&b, "  %-46s %6s %6s %8s\n", "benefit", "DRF0", "DRF1", "DRFrlx")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, row := range core.BenefitsTable() {
		fmt.Fprintf(&b, "  %-46s %6s %6s %8s\n", row.Name, mark(row.Has[0]), mark(row.Has[1]), mark(row.Has[2]))
	}
	return b.String()
}

// EnergyModelDescription documents the energy components for reports.
func EnergyModelDescription() string {
	m := energy.DefaultModel()
	return fmt.Sprintf("energy model (pJ/event): core=%.0f scratch=%.0f l1=%.0f l2=%.0f dram=%.0f flit-hop=%.0f",
		m.CoreOp, m.ScratchAccess, m.L1Access, m.L2Access, m.DRAMAccess, m.FlitHop)
}
