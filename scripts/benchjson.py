#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_*.json and gate regressions.

Usage:
  benchjson.py parse OUT.json FILE [FILE...]
      Parse benchmark text output (as produced by `go test -bench ...
      -benchmem | tee file`) into a JSON report: one entry per benchmark
      with every reported metric (ns/op, B/op, allocs/op, and custom
      metrics such as cycles/sec, allocs/cycle, execs).

  benchjson.py check NEW.json BASELINE.json
      Fail (exit 1) when NEW regresses against BASELINE:
        * cycles/sec: each benchmark's throughput is normalized by the
          run's own reference benchmark (BenchmarkSystemRun/H/noskip) to
          factor out raw machine speed, then compared: a normalized drop
          of more than 10% fails.
        * idle-heavy skip/noskip speedup must stay >= 2x (the event-driven
          skipping acceptance floor; machine-independent).
        * allocs/cycle on the idle-heavy skip variant must stay <= 0.05
          (the zero-allocation steady-state floor; machine-independent —
          the busy H variant is excluded because its short runs are
          dominated by one-time pool warm-up, not steady state).
"""

import json
import re
import sys

REFERENCE = "BenchmarkSystemRun/H/noskip"
SPEEDUP_NUM = "BenchmarkSystemRun/idle-heavy/skip"
SPEEDUP_DEN = "BenchmarkSystemRun/idle-heavy/noskip"
TOLERANCE = 0.10
MIN_SPEEDUP = 2.0
MAX_ALLOCS_PER_CYCLE = 0.05

LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([\d.e+]+)\s+(\S+)")


def parse(paths):
    out = []
    for path in paths:
        for line in open(path):
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            metrics = {}
            for val, unit in METRIC.findall(rest):
                try:
                    metrics[unit] = float(val)
                except ValueError:
                    continue
            if metrics:
                out.append({"name": name, "iterations": iters, "metrics": metrics})
    return out


def by_name(report):
    return {b["name"]: b["metrics"] for b in report}


def check(new, base):
    newm, basem = by_name(new), by_name(base)
    failures = []

    def cps(table, name):
        return table.get(name, {}).get("cycles/sec")

    ref_new, ref_base = cps(newm, REFERENCE), cps(basem, REFERENCE)
    for name, metrics in basem.items():
        if "cycles/sec" not in metrics or name not in newm:
            continue
        if not ref_new or not ref_base:
            break
        base_norm = metrics["cycles/sec"] / ref_base
        got = cps(newm, name)
        if got is None:
            failures.append(f"{name}: cycles/sec metric missing from new run")
            continue
        new_norm = got / ref_new
        if new_norm < (1 - TOLERANCE) * base_norm:
            failures.append(
                f"{name}: normalized cycles/sec regressed "
                f"{base_norm:.3f} -> {new_norm:.3f} (>{TOLERANCE:.0%} drop)"
            )

    num, den = cps(newm, SPEEDUP_NUM), cps(newm, SPEEDUP_DEN)
    if num and den:
        speedup = num / den
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"idle-heavy skip speedup {speedup:.2f}x < {MIN_SPEEDUP}x floor"
            )
        print(f"idle-heavy skip speedup: {speedup:.2f}x")

    apc = newm.get(SPEEDUP_NUM, {}).get("allocs/cycle")
    if apc is not None:
        print(f"idle-heavy skip allocs/cycle: {apc:.4f}")
        if apc > MAX_ALLOCS_PER_CYCLE:
            failures.append(
                f"{SPEEDUP_NUM}: {apc:.4f} allocs/cycle > {MAX_ALLOCS_PER_CYCLE} floor"
            )

    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    return not failures


def main():
    if len(sys.argv) < 4 or sys.argv[1] not in ("parse", "check"):
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "parse":
        report = parse(sys.argv[3:])
        if not report:
            print("no benchmark results parsed", file=sys.stderr)
            return 1
        with open(sys.argv[2], "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"{len(report)} benchmarks -> {sys.argv[2]}")
        return 0
    new = json.load(open(sys.argv[2]))
    base = json.load(open(sys.argv[3]))
    ok = check(new, base)
    print("benchmark gate:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
