package solve

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
)

// models is the full model axis every differential test sweeps.
var models = []core.Model{core.DRF0, core.DRF1, core.DRFrlx}

// normalize strips the one field the solver and enumerator legitimately
// disagree on: Execs counts enumerated executions, and the solver only
// enumerates during its confirmation phase (zero when the static split
// plus state search decide everything).
func normalize(v *memmodel.Verdict) *memmodel.Verdict {
	v.Execs = 0
	return v
}

// contendedProgram mirrors the memmodel test helper of the same name:
// every operation conflicts with every other, so the enumerator's
// interleaving count is the full multinomial while the solver's state
// space stays polynomial.
func contendedProgram(threads, opsPer int) *litmus.Program {
	p := litmus.New("contended")
	for t := 0; t < threads; t++ {
		th := p.Thread("h" + strconv.Itoa(t))
		for i := 0; i < opsPer; i++ {
			th.Inc("X", core.Unpaired)
		}
	}
	return p
}

// randomProgram mirrors the memmodel theorem-fuzzer generator: small
// random programs over two locations, all classes, no guards.
func randomProgram(seed int64) *litmus.Program {
	rng := rand.New(rand.NewSource(seed))
	classes := core.Classes()
	locs := []litmus.Loc{"X", "Y"}
	p := litmus.New("random")
	nThreads := 2 + rng.Intn(2)
	for t := 0; t < nThreads; t++ {
		th := p.Thread("t" + strconv.Itoa(t))
		nOps := 2 + rng.Intn(2)
		for i := 0; i < nOps; i++ {
			c := classes[rng.Intn(len(classes))]
			loc := locs[rng.Intn(len(locs))]
			switch rng.Intn(3) {
			case 0:
				r := th.Load(loc, c)
				if rng.Intn(2) == 0 {
					th.Use(r)
				}
			case 1:
				th.Store(loc, int64(rng.Intn(2)), c)
			default:
				th.RMWDiscard(core.OpInc, loc, 0, c)
			}
		}
	}
	p.QuantumDomain = []int64{0, 1, 2}
	return p
}

// TestSolveMatchesEnumerateOnSuite is the solver's exactness contract on
// the full litmus catalog: for every program and model, the solve
// backend's verdict must equal the enumeration pipeline's byte for byte
// (modulo the Execs count).
func TestSolveMatchesEnumerateOnSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		p := tc.Prog
		for _, m := range models {
			want, err := memmodel.CheckProgram(p, m)
			if err != nil {
				t.Fatalf("%s/%s enumerate: %v", p.Name, m, err)
			}
			got, err := Check(p, m, memmodel.CheckOptions{})
			if err != nil {
				t.Fatalf("%s/%s solve: %v", p.Name, m, err)
			}
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Errorf("%s/%s: solver diverges\n got: %+v\nwant: %+v", p.Name, m, got, want)
			}
		}
	}
}

// TestSolveNaiveIntractableSeeds routes the theorem-fuzzer seeds whose
// naive enumeration exceeds the execution limit through the solver and
// checks exact agreement with the (reduced) enumeration pipeline — the
// solve-mode counterpart of TestStreamingNaiveIntractableSeeds.
func TestSolveNaiveIntractableSeeds(t *testing.T) {
	for _, seed := range []int64{346, 960, 5861} {
		p := randomProgram(seed)
		for _, m := range models {
			want, err := memmodel.CheckProgram(p, m)
			if err != nil {
				t.Fatalf("seed %d/%s enumerate: %v", seed, m, err)
			}
			got, err := Check(p, m, memmodel.CheckOptions{})
			if err != nil {
				t.Fatalf("seed %d/%s solve: %v", seed, m, err)
			}
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Errorf("seed %d/%s: solver diverges\n got: %+v\nwant: %+v", seed, m, got, want)
			}
		}
	}
}

// TestSolveContendedCompletesFast pins the tentpole's performance claim:
// the 7-thread contended program — whose interleaving count makes full
// enumeration intractable (it is the deadline-machinery worst case in
// exec_ctx_test.go) — must resolve through the solver in milliseconds
// with the exact verdict. The assertion bound is generous for CI noise;
// the bench suite carries the precise numbers.
func TestSolveContendedCompletesFast(t *testing.T) {
	p := contendedProgram(7, 3)
	start := time.Now()
	v, err := Check(p, core.DRFrlx, memmodel.CheckOptions{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Legal {
		t.Errorf("contended unpaired increments are race-free, got %s", v.Summary())
	}
	want := map[string]bool{"X=21;": true}
	if !reflect.DeepEqual(v.SCResults, want) {
		t.Errorf("SCResults: got %v, want %v", v.SCResults, want)
	}
	if elapsed > time.Second {
		t.Errorf("solve took %s on contended(7,3); want milliseconds", elapsed)
	}
	t.Logf("contended(7,3) solved in %s", elapsed)
}

// TestSolveSymmetrySoundness is the symmetry-reduction property test:
// permuting the threads of a program changes neither its canonical key
// nor any model-level fact the solver reports — legality, the per-kind
// race counts, and the SC result set (thread identity does not appear in
// final memory) must all be invariant.
func TestSolveSymmetrySoundness(t *testing.T) {
	base := func() *litmus.Program {
		p := litmus.New("sym")
		t0 := p.Thread("a")
		t0.Store("X", 1, core.Data)
		t0.Store("F", 1, core.Unpaired)
		t1 := p.Thread("b")
		r := t1.Load("F", core.Unpaired)
		t1.Use(r)
		d := t1.Load("X", core.Data)
		t1.Use(d)
		return p
	}
	permuted := func() *litmus.Program {
		p := litmus.New("sym_perm")
		t1 := p.Thread("b")
		r := t1.Load("F", core.Unpaired)
		t1.Use(r)
		d := t1.Load("X", core.Data)
		t1.Use(d)
		t0 := p.Thread("a")
		t0.Store("X", 1, core.Data)
		t0.Store("F", 1, core.Unpaired)
		return p
	}

	p1, p2 := base(), permuted()
	c1, err := memmodel.Canonicalize(p1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := memmodel.Canonicalize(p2)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Key != c2.Key {
		t.Fatalf("thread permutation changed the canonical key:\n%q\n%q", c1.Key, c2.Key)
	}
	for _, m := range models {
		v1, err := Check(p1, m, memmodel.CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v2, err := Check(p2, m, memmodel.CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if v1.Legal != v2.Legal {
			t.Errorf("%s: legality not permutation-invariant: %t vs %t", m, v1.Legal, v2.Legal)
		}
		for _, k := range memmodel.RaceKinds() {
			if len(v1.Races[k]) != len(v2.Races[k]) {
				t.Errorf("%s/%s: race count not permutation-invariant: %d vs %d",
					m, k, len(v1.Races[k]), len(v2.Races[k]))
			}
		}
		if !reflect.DeepEqual(v1.SCResults, v2.SCResults) {
			t.Errorf("%s: SC results not permutation-invariant:\n%v\n%v", m, v1.SCResults, v2.SCResults)
		}
		// Each verdict must also match the enumerator on its own program.
		for i, pair := range []struct {
			p *litmus.Program
			v *memmodel.Verdict
		}{{p1, v1}, {p2, v2}} {
			want, err := memmodel.CheckProgram(pair.p, m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(pair.v), normalize(want)) {
				t.Errorf("%s variant %d: solver diverges from enumerator", m, i)
			}
		}
	}
}

// FuzzSolveMatchesEnumerate is the differential fuzz oracle the package
// doc promises: on generated programs across every model, the solver and
// the enumerator must produce identical verdicts.
func FuzzSolveMatchesEnumerate(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 123, 346, 960, 5861} {
		for mi := range models {
			f.Add(seed, uint8(mi))
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, modelIdx uint8) {
		m := models[int(modelIdx)%len(models)]
		p := randomProgram(seed)
		want, err := memmodel.CheckProgram(p, m)
		if err != nil {
			t.Skipf("enumerate: %v", err)
		}
		got, err := Check(p, m, memmodel.CheckOptions{})
		if err != nil {
			t.Fatalf("solve failed where enumerate succeeded: %v", err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Errorf("seed %d/%s: solver diverges\n got: %+v\nwant: %+v", seed, m, got, want)
		}
	})
}

// TestSolveTelemetryCounters: a solved check surfaces the DPLL-style
// counters on its telemetry record (and through the registry totals that
// feed the rats_check_solver_* metrics), while an enumeration-mode check
// of the same program leaves them zero — the omitempty contract that
// keeps enumeration-mode JSONL goldens unchanged.
func TestSolveTelemetryCounters(t *testing.T) {
	p := contendedProgram(4, 2)
	reg := telemetry.NewRegistry()

	tel := reg.NewCheck(p.Name, core.DRFrlx.String())
	if _, err := Check(p, core.DRFrlx, memmodel.CheckOptions{Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	rec := tel.Record()
	if rec.SolveLearned == 0 || rec.SolvePropagations == 0 {
		t.Errorf("solve record missing counters: %+v", rec)
	}
	if rec.SolveDecisions == 0 {
		t.Errorf("contended program must have branching states, got %+v", rec)
	}
	tot := reg.Totals()
	if tot.SolveLearned != rec.SolveLearned || tot.SolveDecisions != rec.SolveDecisions {
		t.Errorf("registry totals diverge from the record: %+v vs %+v", tot, rec)
	}

	etel := telemetry.NewCheck(p.Name, core.DRFrlx.String())
	if _, err := memmodel.CheckProgramWith(p, core.DRFrlx, memmodel.CheckOptions{Telemetry: etel}); err != nil {
		t.Fatal(err)
	}
	erec := etel.Record()
	if erec.SolveDecisions != 0 || erec.SolvePropagations != 0 || erec.SolveConflicts != 0 || erec.SolveLearned != 0 {
		t.Errorf("enumeration-mode record carries solver counters: %+v", erec)
	}
}
