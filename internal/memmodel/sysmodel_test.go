package memmodel

import (
	"math/rand"
	"strconv"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

func TestSystemModelSBPaired(t *testing.T) {
	// Paired store buffering: the system must not produce OUT0=OUT1=0.
	sys, err := SystemResults(litmus.SB("sb", core.Paired), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys["OUT0=0;OUT1=0;X=1;Y=1;"] {
		t.Error("paired SB produced the forbidden 0,0 outcome")
	}
	if len(sys) == 0 {
		t.Fatal("no system results")
	}
}

func TestSystemModelSBRelaxed(t *testing.T) {
	// Non-ordering store buffering: the relaxed system reorders the
	// store and load, producing the non-SC 0,0 outcome — consistent with
	// the program being illegal (it has a non-ordering race).
	sys, err := SystemResults(litmus.SB("sb_no", core.NonOrdering), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sys["OUT0=0;OUT1=0;X=1;Y=1;"] {
		t.Errorf("relaxed SB never produced 0,0: %v", sys)
	}
}

func TestSystemModelPerLocationSC(t *testing.T) {
	// CoRR: even with fully relaxed accesses, two same-location reads
	// must not observe values going backwards (per-location SC).
	sys, err := SystemResults(litmus.CoRR(core.NonOrdering), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys["OUT0=1;OUT1=0;X=1;"] {
		t.Error("per-location SC violated: read of 1 then 0")
	}
}

func TestSystemModelMPPaired(t *testing.T) {
	// Paired MP: the guarded data read must never miss the payload, in
	// the relaxed system too (acquire/release preserved).
	p := litmus.New("mp_out")
	t0 := p.Thread("producer")
	t0.Store("D", 1, core.Data)
	t0.Store("F", 1, core.Paired)
	t1 := p.Thread("consumer")
	f := t1.Load("F", core.Paired)
	t1.StoreExpr("OUTF", litmus.RegExpr(f), core.Data)
	t1.WithGuards(litmus.NZ(f))
	d := t1.Load("D", core.Data)
	t1.StoreExpr("OUT", litmus.RegExpr(d), core.Data)
	t1.EndGuards()
	sys, err := SystemResults(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// OUTF=1 means the flag was observed; OUT must then be 1.
	if sys["D=1;F=1;OUT=0;OUTF=1;"] {
		t.Error("paired MP lost the payload in the system model")
	}
}

func TestSystemModelMPUnpairedWeak(t *testing.T) {
	// Unpaired MP: unpaired atomics do not order data, so the system may
	// reorder the payload store after the flag store and the consumer
	// can observe F=1 with D=0. (That is why MP_unpaired is illegal.)
	p := litmus.New("mp_unpaired_out")
	t0 := p.Thread("producer")
	t0.Store("D", 1, core.Data)
	t0.Store("F", 1, core.Unpaired)
	t1 := p.Thread("consumer")
	f := t1.Load("F", core.Unpaired)
	t1.StoreExpr("OUTF", litmus.RegExpr(f), core.Data)
	t1.WithGuards(litmus.NZ(f))
	d := t1.Load("D", core.Data)
	t1.StoreExpr("OUT", litmus.RegExpr(d), core.Data)
	t1.EndGuards()
	sys, err := SystemResults(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sys["D=1;F=1;OUT=0;OUTF=1;"] {
		t.Errorf("unpaired MP never exhibited the weak outcome: %v", sys)
	}
}

// TestTheoremOnSuite validates Theorem 3.1 on every legal program of the
// suite: everything the straightforward DRFrlx system can produce is an
// SC result of the quantum-equivalent program.
func TestTheoremOnSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		tc := tc
		t.Run(tc.Prog.Name, func(t *testing.T) {
			rep, err := ValidateTheorem(tc.Prog)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Legal && !rep.SystemSC {
				t.Errorf("Theorem 3.1 violated for legal program %s: non-SC results %v",
					tc.Prog.Name, rep.NonSCResults)
			}
		})
	}
}

// TestTheoremConverseOnRacyPrograms: the racy SB variant must actually
// exhibit non-SC behaviour (the theorem's contrapositive sanity check —
// our system model is not vacuously strong).
func TestTheoremConverseOnRacyPrograms(t *testing.T) {
	rep, err := ValidateTheorem(litmus.SB("sb_no", core.NonOrdering))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Legal {
		t.Fatal("SB with non-ordering labels should be illegal")
	}
	if rep.SystemSC {
		t.Error("racy SB produced only SC results — system model too strong to be a useful check")
	}
}

// randomProgram generates a small random litmus program over two
// locations with random classes — no guards, constants in {0,1}.
func randomProgram(seed int64) *litmus.Program {
	rng := rand.New(rand.NewSource(seed))
	classes := core.Classes()
	locs := []litmus.Loc{"X", "Y"}
	p := litmus.New("random")
	nThreads := 2 + rng.Intn(2)
	for t := 0; t < nThreads; t++ {
		th := p.Thread("t" + strconv.Itoa(t))
		nOps := 2 + rng.Intn(2)
		for i := 0; i < nOps; i++ {
			c := classes[rng.Intn(len(classes))]
			loc := locs[rng.Intn(len(locs))]
			switch rng.Intn(3) {
			case 0:
				r := th.Load(loc, c)
				if rng.Intn(2) == 0 {
					th.Use(r)
				}
			case 1:
				th.Store(loc, int64(rng.Intn(2)), c)
			default:
				th.RMWDiscard(core.OpInc, loc, 0, c)
			}
		}
	}
	p.QuantumDomain = []int64{0, 1, 2}
	return p
}

// TestTheoremPropertyRandom is the property-based form of Theorem 3.1:
// for random programs, legality under DRFrlx implies the system model
// produces only SC (quantum-equivalent) results. The seed range is fixed
// so runs are deterministic, and an enumeration blowup is a hard failure
// — with partial-order reduction in the enumerator and seen-state
// memoization in the system model, every generated program must validate
// within the execution limit. The three trailing seeds are programs
// whose naive enumeration exceeds the limit; before the reduction this
// test silently skipped such programs.
func TestTheoremPropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seeds := make([]int64, 0, 303)
	for s := int64(0); s < 300; s++ {
		seeds = append(seeds, s)
	}
	seeds = append(seeds, 346, 960, 5861)
	legal := 0
	for _, seed := range seeds {
		p := randomProgram(seed)
		rep, err := ValidateTheorem(p)
		if err != nil {
			t.Fatalf("seed %d: enumeration blew the limit: %v", seed, err)
		}
		if rep.Legal {
			legal++
			if !rep.SystemSC {
				t.Errorf("seed %d: legal program with non-SC system results %v", seed, rep.NonSCResults)
			}
		}
	}
	if legal == 0 {
		t.Fatalf("property vacuous: %d seeds, none legal", len(seeds))
	}
}

// TestPreservedPOSubsetOfPO: ppo must be a sub-relation of program order.
func TestPreservedPOSubsetOfPO(t *testing.T) {
	for _, tc := range litmus.Suite() {
		p := tc.Prog
		ppo := PreservedPO(p)
		lay := layout(p)
		thread := make([]int, lay.n)
		opIdx := make([]int, lay.n)
		for ti, th := range p.Threads {
			for i := range th.Ops {
				if id := lay.id[ti][i]; id >= 0 {
					thread[id] = ti
					opIdx[id] = i
				}
			}
		}
		for _, pr := range ppo.Pairs() {
			i, j := pr[0], pr[1]
			if thread[i] != thread[j] || opIdx[i] >= opIdx[j] {
				t.Fatalf("%s: ppo edge (%d,%d) not in program order", p.Name, i, j)
			}
		}
	}
}

// TestSystemModelMPReleaseAcquire: the Section 7 extension — a release
// store to the flag and an acquire load of it order the data payload, so
// the weak MP outcome is impossible in the system model.
func TestSystemModelMPReleaseAcquire(t *testing.T) {
	p := litmus.New("mp_ra_out")
	t0 := p.Thread("producer")
	t0.Store("D", 1, core.Data)
	t0.Store("F", 1, core.Release)
	t1 := p.Thread("consumer")
	f := t1.Load("F", core.Acquire)
	t1.StoreExpr("OUTF", litmus.RegExpr(f), core.Data)
	t1.WithGuards(litmus.NZ(f))
	d := t1.Load("D", core.Data)
	t1.StoreExpr("OUT", litmus.RegExpr(d), core.Data)
	t1.EndGuards()
	sys, err := SystemResults(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys["D=1;F=1;OUT=0;OUTF=1;"] {
		t.Error("release/acquire MP lost the payload in the system model")
	}
	v, err := CheckProgram(p, core.DRFrlx)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Legal {
		t.Errorf("release/acquire MP should be race-free: %s", v.Summary())
	}
}
