// Seqlock semantics: model-check the seqlock idiom (Listing 6 of the
// paper) with the DRFrlx litmus engine. The correctly-annotated seqlock
// is race-free under DRFrlx; dropping the sequence re-check turns the
// racy speculative load into a speculative race, which the detector
// pinpoints.
//
//	go run ./examples/seqlock
package main

import (
	"fmt"
	"log"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
)

func main() {
	for _, prog := range []*litmus.Program{
		litmus.Seqlocks(),          // Listing 6, correctly annotated
		litmus.SeqlocksUnchecked(), // reader uses unvalidated data
		litmus.SeqlocksWW(),        // two writers without the lock
	} {
		fmt.Printf("== %s\n", prog.Name)
		for _, m := range core.Models() {
			v, err := memmodel.CheckProgram(prog, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %s\n", v.Summary())
		}
		// Theorem 3.1: on a compliant system, legal programs stay SC.
		rep, err := memmodel.ValidateTheorem(prog)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case rep.Legal && rep.SystemSC:
			fmt.Println("   system model: every relaxed execution is SC (theorem holds)")
		case !rep.Legal && !rep.SystemSC:
			fmt.Printf("   system model: %d reachable results, %d outside SC — expected for an illegal program\n",
				rep.SystemCount, len(rep.NonSCResults))
		case !rep.Legal:
			fmt.Println("   system model: illegal program happened to stay SC on this system")
		default:
			fmt.Println("   system model: THEOREM VIOLATED")
		}
		fmt.Println()
	}
}
