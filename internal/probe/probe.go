// Package probe is the simulator's observability layer: a typed event
// stream tapped at the interesting points of every component (warp issue
// and stalls, cache hits and protocol actions, MSHR/store-buffer
// occupancy, NoC transfers) and fanned out to attached sinks — a
// Chrome-trace/Perfetto writer, an interval-metrics sampler, a per-warp
// stall-attribution table, and a span layer (SpanSink) that stitches the
// Txn-keyed events of one memory operation into a per-transaction latency
// span with a per-level queueing/service decomposition.
//
// The layer is zero-overhead when disabled: components hold a *Hub that
// is nil unless a sink was attached, and every emission site is guarded
// by a plain nil check, so production runs pay one predictable branch per
// site and allocate nothing (see BenchmarkProbeOverhead).
package probe

import (
	"errors"

	"rats/internal/stats"
)

// Component identifies the simulated component class an event came from.
type Component uint8

const (
	// CompSystem is the event loop / barrier driver.
	CompSystem Component = iota
	// CompCU is a compute unit (warp scheduler + coalescer).
	CompCU
	// CompL1 is a per-node L1 controller (including its MSHR and store
	// buffer).
	CompL1
	// CompL2 is a NUCA L2 bank.
	CompL2
	// CompNoC is the mesh interconnect.
	CompNoC
	// NumComponents bounds arrays indexed by component (and the drift
	// test that keeps Component.String exhaustive).
	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompSystem:
		return "system"
	case CompCU:
		return "cu"
	case CompL1:
		return "l1"
	case CompL2:
		return "l2"
	case CompNoC:
		return "noc"
	}
	return "?"
}

// Kind is the event kind.
type Kind uint8

const (
	// WarpIssue: a warp issued an op; Arg is the trace op kind.
	WarpIssue Kind = iota
	// StallBegin: a warp entered a stall; Reason is set.
	StallBegin
	// StallEnd: a warp left a stall; Reason is set, Arg is the duration
	// in cycles.
	StallEnd
	// BarrierArrive: a warp parked at the device-wide barrier.
	BarrierArrive
	// BarrierRelease: the barrier resolved; Arg is the warp count.
	BarrierRelease
	// CoalescerPush: a transaction entered the CU coalescer.
	CoalescerPush
	// CoalescerDrain: the L1 accepted a coalescer transaction.
	CoalescerDrain
	// CacheHit / CacheMiss: tag lookup outcome (Comp says L1 or L2).
	CacheHit
	CacheMiss
	// OwnershipRequest: an L1 asked the registry for ownership of Addr.
	OwnershipRequest
	// OwnershipGrant: the L2 registry granted ownership directly.
	OwnershipGrant
	// RemoteForward: the L2 forwarded a request to a remote owning L1;
	// Arg is the owner node.
	RemoteForward
	// AcquireInvalidation: an L1 flash self-invalidated; Arg is the
	// number of lines dropped.
	AcquireInvalidation
	// ReleaseFlush: a warp began a release store-buffer flush.
	ReleaseFlush
	// AtomicPerformed: an atomic executed (Comp says at L1 or L2 bank).
	AtomicPerformed
	// Writeback: an owned victim was written back to the L2.
	Writeback
	// MSHRAlloc: an MSHR entry was allocated for line Addr.
	MSHRAlloc
	// MSHRCoalesce: a request merged into an existing MSHR entry; Arg is
	// the entry's waiter count after the merge.
	MSHRCoalesce
	// SBFill: a store entered the store buffer; Arg is the occupancy.
	SBFill
	// SBDrain: a store left the buffer toward memory; Arg is the
	// occupancy after the drain.
	SBDrain
	// NoCEnqueue: a message entered the mesh; Txn is the message
	// sequence number, Node the source, Arg the destination, Aux the
	// flit count.
	NoCEnqueue
	// NoCHop: a message traversed one link; Node is the hop node.
	NoCHop
	// NoCDeliver: a message reached its destination receiver.
	NoCDeliver
	// FaultInjected: the fault injector perturbed the system; Arg is a
	// small code (0 extra message delay, 1 duplication), Aux the
	// magnitude (e.g. the added delay in cycles).
	FaultInjected
	// WatchdogReport: the liveness watchdog (or the MaxCycles/abort
	// path) captured a diagnostic dump. The system-level summary event's
	// Arg is the stuck-warp count; per-warp events name each stuck warp.
	WatchdogReport
	// DRAMAccess: an L2 bank handed a line fill to its DRAM port; Cycle
	// is the hand-off cycle (end of the L2 pipeline), Txn the originating
	// transaction. The span layer uses it to split bank time from memory
	// time.
	DRAMAccess
	// TxnComplete: a memory transaction's Done callback fired — the end
	// of its latency span.
	TxnComplete
	// NumKinds bounds arrays indexed by kind (and the drift test that
	// keeps Kind.String exhaustive).
	NumKinds
)

func (k Kind) String() string {
	names := [...]string{
		"warp-issue", "stall-begin", "stall-end", "barrier-arrive",
		"barrier-release", "coalescer-push", "coalescer-drain",
		"cache-hit", "cache-miss", "ownership-request", "ownership-grant",
		"remote-forward", "acquire-invalidation", "release-flush",
		"atomic-performed", "writeback", "mshr-alloc", "mshr-coalesce",
		"sb-fill", "sb-drain", "noc-enqueue", "noc-hop", "noc-deliver",
		"fault-injected", "watchdog-report", "dram-access", "txn-complete",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// StallReason classifies why a warp cannot issue (the attribution the
// stall sink aggregates).
type StallReason uint8

const (
	// StallNone: not stalled (issuing, computing, done).
	StallNone StallReason = iota
	// StallIssue: structural back-pressure (coalescer or downstream
	// queue full) unrelated to the store buffer.
	StallIssue
	// StallMemory: waiting on outstanding loads/atomics — MLP bounds,
	// joins, and fences draining memory.
	StallMemory
	// StallBarrier: parked at the device-wide barrier.
	StallBarrier
	// StallStoreBufferFull: blocked behind a full store buffer.
	StallStoreBufferFull
	// StallConsistency: a consistency action gate — release flush in
	// progress, or SC/atomic-serial ordering forbidding overlap.
	StallConsistency
	// StallFault: issue suppressed by an injected wedge fault (liveness
	// drills).
	StallFault
	// NumStallReasons bounds arrays indexed by reason.
	NumStallReasons
)

func (r StallReason) String() string {
	switch r {
	case StallNone:
		return "none"
	case StallIssue:
		return "issue"
	case StallMemory:
		return "memory"
	case StallBarrier:
		return "barrier"
	case StallStoreBufferFull:
		return "store-buffer-full"
	case StallConsistency:
		return "consistency"
	case StallFault:
		return "fault-wedge"
	}
	return "?"
}

// Event is one instrumentation record. It is passed by value and sinks
// must not retain pointers into it.
type Event struct {
	// Cycle is the simulated cycle the event occurred at.
	Cycle int64
	// Comp and Node identify the emitting component instance.
	Comp Component
	Node int
	// Warp is the global warp index, or -1 when not warp-attributable.
	Warp int
	// Kind is the event kind; Reason qualifies stall events.
	Kind   Kind
	Reason StallReason
	// Txn is the originating memory transaction's id (assigned at
	// coalescer push; ids start at 1), or 0 when the event is not
	// attributable to one transaction. It is carried end-to-end — through
	// NoC messages, L2 banks, and responses — so SpanSink can stitch one
	// transaction's events into a latency span.
	Txn int64
	// Msg is the NoC message sequence number for NoC events (the Chrome
	// sink's async begin/end pairing key), or 0.
	Msg int64
	// Addr is the byte address or line-start address involved, if any.
	Addr uint64
	// Arg and Aux carry kind-specific detail (duration, occupancy,
	// destination node, flit count — see the Kind docs).
	Arg int64
	Aux int64
}

// Sink consumes the event stream. Emit is called synchronously from the
// single-threaded simulation loop; Close flushes any buffered output.
type Sink interface {
	Emit(ev Event)
	Close() error
}

// Sampler is the optional interface for sinks that want periodic
// snapshots of the aggregate counters instead of (or in addition to)
// discrete events. The snapshot's Cycles field is set to the sample
// cycle, so each sample is a self-consistent "counters as of cycle X".
type Sampler interface {
	Sample(cycle int64, snap stats.Stats)
}

// Hub fans events out to the attached sinks and drives interval
// sampling. A nil *Hub means observability is disabled; emission sites
// guard with a nil check and pay nothing else.
type Hub struct {
	sinks       []Sink
	samplers    []Sampler
	interval    int64
	next        int64
	cycle       int64
	lastSampled int64
}

// NewHub returns an empty hub (no sinks attached).
func NewHub() *Hub { return &Hub{lastSampled: -1} }

// Attach registers a sink; if it also implements Sampler it receives
// interval samples.
func (h *Hub) Attach(s Sink) {
	h.sinks = append(h.sinks, s)
	if sm, ok := s.(Sampler); ok {
		h.samplers = append(h.samplers, sm)
	}
}

// SetSampleInterval enables interval sampling every n cycles (n <= 0
// disables it).
func (h *Hub) SetSampleInterval(n int64) {
	h.interval = n
	h.next = n
}

// ActiveOrNil returns the hub when it has at least one sink or interval
// sampling enabled, and nil otherwise. Component wiring (System.
// AttachProbe) routes through it so attaching an empty hub degrades to
// the disabled nil-*Hub fast path — one predictable branch per emission
// site instead of a call plus an empty fan-out loop per event. Attach
// sinks and set the sample interval before wiring the hub into a system.
func (h *Hub) ActiveOrNil() *Hub {
	if h == nil || (len(h.sinks) == 0 && h.interval <= 0) {
		return nil
	}
	return h
}

// Emit fans one event out to every sink.
func (h *Hub) Emit(ev Event) {
	for _, s := range h.sinks {
		s.Emit(ev)
	}
}

// Now returns the current simulated cycle (for emitters, like the cache
// structures, that are not handed the cycle explicitly).
func (h *Hub) Now() int64 { return h.cycle }

// Tick is called by the system driver once per processed cycle. It
// advances the hub clock and fires interval samples when a boundary is
// crossed (fast-forwarded gaps produce one sample at the first processed
// cycle past the boundary).
func (h *Hub) Tick(cycle int64, st *stats.Stats) {
	h.cycle = cycle
	if h.interval <= 0 || cycle < h.next {
		return
	}
	h.sample(cycle, st)
	h.next = (cycle/h.interval + 1) * h.interval
}

// FinalSample emits the end-of-run sample (the aggregate counters) to
// every sampler, unless an interval sample already landed on this cycle.
func (h *Hub) FinalSample(cycle int64, st *stats.Stats) {
	if h.lastSampled == cycle {
		return
	}
	h.sample(cycle, st)
}

func (h *Hub) sample(cycle int64, st *stats.Stats) {
	snap := *st
	snap.Cycles = cycle
	for _, s := range h.samplers {
		s.Sample(cycle, snap)
	}
	h.lastSampled = cycle
}

// Close closes every sink. Every sink's Close runs even if an earlier
// one fails; all errors are joined so none is silently dropped.
func (h *Hub) Close() error {
	var errs []error
	for _, s := range h.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// CountingSink counts events without recording them — the null sink used
// by tests and the overhead benchmark.
type CountingSink struct {
	Events  int64
	Samples int64
}

// Emit counts the event.
func (c *CountingSink) Emit(Event) { c.Events++ }

// Sample counts the sample.
func (c *CountingSink) Sample(int64, stats.Stats) { c.Samples++ }

// Close is a no-op.
func (c *CountingSink) Close() error { return nil }
