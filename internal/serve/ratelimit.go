package serve

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// rateTable is a per-client token-bucket limiter: each client key gets
// burst tokens refilled at rate per second. Stale buckets are pruned
// opportunistically so a scan of client addresses cannot grow the table
// without bound.
type rateTable struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	now    func() time.Time
	bucket map[string]*tokenBucket
	// sweepAt is the next prune time.
	sweepAt time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateIdleEvict drops buckets untouched this long; full buckets carry no
// state worth keeping.
const rateIdleEvict = 5 * time.Minute

func newRateTable(rate float64, burst int, now func() time.Time) *rateTable {
	return &rateTable{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		bucket:  make(map[string]*tokenBucket),
		sweepAt: now().Add(rateIdleEvict),
	}
}

// allow consumes one token from key's bucket, reporting whether one was
// available and the tokens remaining after the decision — the trace
// layer records the remainder so a 429's span shows how far over the
// budget the client was.
func (t *rateTable) allow(key string) (bool, float64) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if now.After(t.sweepAt) {
		for k, b := range t.bucket {
			if now.Sub(b.last) > rateIdleEvict {
				delete(t.bucket, k)
			}
		}
		t.sweepAt = now.Add(rateIdleEvict)
	}
	b, ok := t.bucket[key]
	if !ok {
		b = &tokenBucket{tokens: t.burst, last: now}
		t.bucket[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * t.rate
		if b.tokens > t.burst {
			b.tokens = t.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false, b.tokens
	}
	b.tokens--
	return true, b.tokens
}

// clientKey identifies the requesting client for rate limiting: the
// remote IP without the ephemeral port. Forwarding headers are ignored
// on purpose — they are trivially spoofable, and ratsserve is expected
// to face its clients directly.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
