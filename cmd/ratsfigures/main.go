// Command ratsfigures regenerates every table and figure of the paper's
// evaluation: Figure 1 (discrete-GPU speedups), Figure 2 (via the litmus
// engine), Figure 3 (microbenchmarks), Figure 4 (benchmarks), Tables 1-4,
// and the Section 6 summary aggregates.
//
// Usage:
//
//	ratsfigures                 # everything, test scale
//	ratsfigures -scale paper    # paper-scale inputs (slower)
//	ratsfigures -only fig3      # one artifact: fig1|fig3|fig4|table1..table4|summary
//	ratsfigures -stalls PR-3    # per-config stall attribution for one workload
//	ratsfigures -litmus         # litmus-suite verdict table via the streaming checker
//	ratsfigures -latency        # per-config transaction-latency percentiles (microbenchmarks)
//	ratsfigures -only fig3 -http :6060            # live /progress + /metrics while sweeping
//	ratsfigures -only fig3 -journal sweep.jsonl   # checkpointed (resumable) sweep
//	ratsfigures -only fig3 -faults 'delay:p=0.05,max=10' -fault-seed 3 -timeout 1m
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rats/internal/core"
	"rats/internal/fault"
	"rats/internal/harness"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
	"rats/internal/workloads"
)

func main() {
	var (
		scaleName  = flag.String("scale", "test", "workload scale: test or paper")
		only       = flag.String("only", "", "render a single artifact")
		stalls     = flag.String("stalls", "", "render the stall-attribution sweep for one workload and exit")
		litmusTab  = flag.Bool("litmus", false, "render the litmus-suite verdict table (streaming checker) and exit")
		latency    = flag.Bool("latency", false, "render the per-config transaction-latency sweep over the microbenchmarks and exit")
		httpAddr   = flag.String("http", "", "serve live /progress, /metrics, and pprof on this address while sweeping")
		journal    = flag.String("journal", "", "JSONL checkpoint file: completed runs are recorded and restored on rerun")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit per simulation run (0 = none), e.g. 1m")
		faultSpec  = flag.String("faults", "", "fault-injection spec applied to every run (see internal/fault)")
		faultSeed  = flag.Int64("fault-seed", 1, "PRNG seed for fault injection")
		watchdog   = flag.Int64("watchdog", 0, "liveness watchdog window in cycles (>0 override, <0 disable, 0 default)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	scale := workloads.Test
	if *scaleName == "paper" {
		scale = workloads.Paper
	}

	want := func(name string) bool { return *only == "" || *only == name }
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsfigures:", err)
			os.Exit(1)
		}
	}
	// fail reports a sweep error without exiting, so partial figures still
	// render; the process exits non-zero at the end.
	exitCode := 0
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsfigures:", err)
			exitCode = 1
		}
	}

	opts := &harness.RunOptions{Timeout: *timeout, FaultSeed: *faultSeed, WatchdogWindow: *watchdog}
	var server *obs.Server
	if *httpAddr != "" {
		opts.Progress = obs.NewProgress()
		server = obs.NewServer()
		server.SetRunInfo("command", "ratsfigures")
		server.SetRunInfo("scale", *scaleName)
		server.SetProgress(opts.Progress)
		addr, err := server.Start(*httpAddr)
		die(err)
		defer server.Close()
		fmt.Printf("observability server on http://%s (/progress /metrics /checks /debug/pprof)\n", addr)
	}
	if *faultSpec != "" {
		spec, err := fault.Parse(*faultSpec)
		die(err)
		opts.Faults = spec
	}
	if *journal != "" {
		j, err := harness.OpenJournal(*journal)
		die(err)
		defer j.Close()
		opts.Journal = j
		if n := j.Loaded(); n > 0 {
			fmt.Printf("journal %s: restored %d completed runs; re-simulating only the rest\n", *journal, n)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		die(err)
		defer f.Close()
		die(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			die(err)
			defer f.Close()
			runtime.GC()
			die(pprof.WriteHeapProfile(f))
		}()
	}

	if *litmusTab {
		// The verdict table doubles as a checker-telemetry summary: per
		// test, total executions explored across the three model checks,
		// the DRFrlx sleep-set pruning ratio, and total checker wall time.
		reg := telemetry.NewRegistry()
		opts.Checks = reg
		if server != nil {
			server.SetChecks(reg)
		}
		results, err := harness.LitmusSweep(litmus.Suite(), harness.LitmusSweepOptions{Run: opts})
		die(err)
		fmt.Println("Litmus suite verdicts (streaming race classification)")
		fmt.Printf("  %-26s %-8s %-8s %-8s %8s %8s %9s\n", "test", "DRF0", "DRF1", "DRFrlx", "execs", "pruned", "ms")
		for _, r := range results {
			fmt.Printf("  %-26s", r.Case.Prog.Name)
			for i := range core.Models() {
				cell := "illegal"
				if r.Verdicts[i].Legal {
					cell = "legal"
				}
				fmt.Printf(" %-8s", cell)
			}
			var execs int64
			var pruned, ms float64
			for _, c := range r.Checks {
				s := c.Snapshot()
				execs += s.Executions
				ms += s.ElapsedMs
				if c.Model() == core.DRFrlx.String() {
					pruned = s.PrunedPct
				}
			}
			fmt.Printf(" %8d %7.1f%% %9.2f\n", execs, pruned, ms)
		}
		return
	}

	if *stalls != "" {
		entry := workloads.ByName(*stalls)
		if entry == nil {
			fmt.Fprintf(os.Stderr, "ratsfigures: unknown workload %q\n", *stalls)
			os.Exit(1)
		}
		rows, err := harness.StallSweep(*entry, scale, harness.ConfigOrder)
		die(err)
		fmt.Println(harness.RenderStallSweep(entry.Name, rows))
		return
	}

	if *latency {
		cells, err := harness.LatencySweep(workloads.Micro(), scale, harness.ConfigOrder)
		die(err)
		fmt.Println(harness.RenderLatencySweep(cells, harness.ConfigOrder))
		return
	}

	if want("table1") {
		fmt.Println("Table 1: GPU relaxed atomic use cases")
		fmt.Printf("  %-28s %s\n", "category", "application")
		for _, tc := range litmus.Suite() {
			if tc.UseCase != "" {
				fmt.Printf("  %-28s %s\n", tc.UseCase, tc.App)
			}
		}
		fmt.Println()
	}
	if want("table2") {
		fmt.Println(harness.Table2())
	}
	if want("table3") {
		fmt.Println(harness.Table3())
	}
	if want("table4") {
		fmt.Println(harness.Table4())
	}
	if want("profile") {
		fmt.Println(workloads.ProfileTable(scale))
	}
	if want("fig1") {
		rows, err := harness.Figure1(scale)
		die(err)
		fmt.Println(harness.RenderFigure1(rows))
	}
	if want("fig2") {
		fmt.Println("Figure 2: non-ordering race detection")
		for _, p := range []*litmus.Program{litmus.Figure2a(), litmus.Figure2b()} {
			v, err := memmodel.CheckProgram(p, core.DRFrlx)
			die(err)
			fmt.Printf("  %s\n", v.Summary())
		}
		fmt.Println()
	}
	var fig3, fig4 *harness.Figure
	if want("fig3") || want("summary") {
		var err error
		fig3, err = harness.Figure3With(scale, opts)
		fail(err)
		if want("fig3") {
			fmt.Println(fig3.Render())
		}
	}
	if want("fig4") || want("summary") {
		var err error
		fig4, err = harness.Figure4With(scale, opts)
		fail(err)
		if want("fig4") {
			fmt.Println(fig4.Render())
		}
	}
	if want("summary") && fig3 != nil && fig4 != nil {
		fmt.Println(harness.Summarize(fig3, fig4).Render())
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}
