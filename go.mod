module rats

go 1.22
