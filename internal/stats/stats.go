// Package stats collects the event counts the simulator produces and the
// energy model consumes. All counters are plain int64s incremented by the
// single-threaded simulation loop.
package stats

import (
	"fmt"
	"strings"
)

// Stats is the full counter set for one simulation run.
type Stats struct {
	// Cycles is the total execution time in GPU cycles.
	Cycles int64

	// Core-side events.
	CoreOps         int64 // instructions issued by CUs/CPU (incl. compute)
	ScratchAccesses int64

	// L1 events.
	L1Accesses int64
	L1Hits     int64
	L1Misses   int64

	// L2 events.
	L2Accesses int64
	L2Hits     int64
	L2Misses   int64

	// DRAM events.
	DRAMAccesses int64

	// NoC traffic.
	NoCMessages int64
	NoCFlitHops int64

	// Atomics.
	Atomics     int64 // atomic transactions performed
	AtomicsAtL1 int64 // performed locally after ownership (DeNovo)
	AtomicsAtL2 int64 // performed at the LLC (GPU coherence)

	// Consistency actions.
	AcquireInvalidations int64 // flash self-invalidations at atomic loads
	LinesInvalidated     int64
	ReleaseFlushes       int64 // store-buffer flushes at atomic stores

	// Protocol events.
	OwnershipRequests int64
	RemoteL1Forwards  int64
	MSHRCoalesced     int64 // requests merged into an existing MSHR entry
	Writebacks        int64

	// Stall accounting (approximate, for diagnostics).
	StoreBufferFullStalls int64
	WarpIssueStalls       int64
}

// Add accumulates other into s.
func (s *Stats) Add(o *Stats) {
	s.Cycles += o.Cycles
	s.CoreOps += o.CoreOps
	s.ScratchAccesses += o.ScratchAccesses
	s.L1Accesses += o.L1Accesses
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L2Accesses += o.L2Accesses
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.DRAMAccesses += o.DRAMAccesses
	s.NoCMessages += o.NoCMessages
	s.NoCFlitHops += o.NoCFlitHops
	s.Atomics += o.Atomics
	s.AtomicsAtL1 += o.AtomicsAtL1
	s.AtomicsAtL2 += o.AtomicsAtL2
	s.AcquireInvalidations += o.AcquireInvalidations
	s.LinesInvalidated += o.LinesInvalidated
	s.ReleaseFlushes += o.ReleaseFlushes
	s.OwnershipRequests += o.OwnershipRequests
	s.RemoteL1Forwards += o.RemoteL1Forwards
	s.MSHRCoalesced += o.MSHRCoalesced
	s.Writebacks += o.Writebacks
	s.StoreBufferFullStalls += o.StoreBufferFullStalls
	s.WarpIssueStalls += o.WarpIssueStalls
}

// Rows returns the counters as sorted name/value pairs for reporting.
func (s *Stats) Rows() []struct {
	Name  string
	Value int64
} {
	rows := []struct {
		Name  string
		Value int64
	}{
		{"cycles", s.Cycles},
		{"core_ops", s.CoreOps},
		{"scratch_accesses", s.ScratchAccesses},
		{"l1_accesses", s.L1Accesses},
		{"l1_hits", s.L1Hits},
		{"l1_misses", s.L1Misses},
		{"l2_accesses", s.L2Accesses},
		{"l2_hits", s.L2Hits},
		{"l2_misses", s.L2Misses},
		{"dram_accesses", s.DRAMAccesses},
		{"noc_messages", s.NoCMessages},
		{"noc_flit_hops", s.NoCFlitHops},
		{"atomics", s.Atomics},
		{"atomics_at_l1", s.AtomicsAtL1},
		{"atomics_at_l2", s.AtomicsAtL2},
		{"acquire_invalidations", s.AcquireInvalidations},
		{"lines_invalidated", s.LinesInvalidated},
		{"release_flushes", s.ReleaseFlushes},
		{"ownership_requests", s.OwnershipRequests},
		{"remote_l1_forwards", s.RemoteL1Forwards},
		{"mshr_coalesced", s.MSHRCoalesced},
		{"writebacks", s.Writebacks},
		{"store_buffer_full_stalls", s.StoreBufferFullStalls},
		{"warp_issue_stalls", s.WarpIssueStalls},
	}
	return rows
}

// String renders the counters one per line.
func (s *Stats) String() string {
	var b strings.Builder
	for _, r := range s.Rows() {
		fmt.Fprintf(&b, "%-26s %12d\n", r.Name, r.Value)
	}
	return b.String()
}
