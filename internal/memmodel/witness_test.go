package memmodel

import (
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

func TestFindWitnessDataRace(t *testing.T) {
	w, err := FindWitness(litmus.MPData(), core.DRF0)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("MPData must yield a witness")
	}
	if w.Kind != DataRace {
		t.Errorf("kind = %v", w.Kind)
	}
	out := w.String()
	for _, want := range []string{"data race", "witness SC execution", "X =", "Y =", "final state", "diagnosis"} {
		if !strings.Contains(out, want) {
			t.Errorf("witness missing %q:\n%s", want, out)
		}
	}
}

func TestFindWitnessLegalIsNil(t *testing.T) {
	w, err := FindWitness(litmus.WorkQueue(), core.DRFrlx)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatalf("legal program produced a witness: %v", w)
	}
}

func TestWitnessKindsAndDiagnoses(t *testing.T) {
	for _, tc := range []struct {
		prog     *litmus.Program
		kind     RaceKind
		diagnose string
	}{
		{litmus.EventCounterNonCommutative(), CommutativeRace, "do not commute"},
		{litmus.EventCounterObserved(), CommutativeRace, "observed"},
		{litmus.Figure2a(), NonOrderingRace, "ordering path"},
		{litmus.QuantumMixed(), QuantumRace, "quantum access"},
		{litmus.SeqlocksWW(), SpeculativeRace, "two racing stores"},
		{litmus.SeqlocksUnchecked(), SpeculativeRace, "observed"},
	} {
		w, err := FindWitness(tc.prog, core.DRFrlx)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			t.Errorf("%s: no witness", tc.prog.Name)
			continue
		}
		if w.Kind != tc.kind {
			t.Errorf("%s: kind %v, want %v", tc.prog.Name, w.Kind, tc.kind)
		}
		if !strings.Contains(w.String(), tc.diagnose) {
			t.Errorf("%s: diagnosis missing %q:\n%s", tc.prog.Name, tc.diagnose, w.String())
		}
	}
}

// TestWitnessPairReallyRaces: the reported pair must be conflicting,
// cross-thread, and hb1-unordered in the witness execution.
func TestWitnessPairReallyRaces(t *testing.T) {
	for _, prog := range []*litmus.Program{
		litmus.MPData(), litmus.Figure2a(), litmus.QuantumMixed(), litmus.SeqlocksWW(),
	} {
		w, err := FindWitness(prog, core.DRFrlx)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			t.Fatalf("%s: no witness", prog.Name)
		}
		r := BuildRelations(w.Exec)
		if !r.Race.Has(w.Pair[0], w.Pair[1]) {
			t.Errorf("%s: witness pair %v is not racing", prog.Name, w.Pair)
		}
	}
}

// TestClassicShapes: the new classic litmus entries behave as documented
// in the system-centric model, too.
func TestClassicShapes(t *testing.T) {
	// LB paired: r0=r1=1 impossible in both SC and system model.
	sys, err := SystemResults(litmus.LB("lb", core.Paired).Under(core.DRFrlx), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys["OUT0=1;OUT1=1;X=1;Y=1;"] {
		t.Error("paired LB produced the forbidden 1,1 outcome")
	}
	// 2+2W same-value commutative: final state unique regardless of order.
	v, err := CheckProgram(litmus.TwoPlusTwoW("w", core.Commutative, 7, 7), core.DRFrlx)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Legal {
		t.Error("same-value commutative stores must be legal")
	}
	if len(v.SCResults) != 1 {
		t.Errorf("same-value 2+2W has %d results, want 1", len(v.SCResults))
	}
}
