#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_*.json and gate regressions.

Usage:
  benchjson.py parse OUT.json FILE [FILE...]
      Parse benchmark text output (as produced by `go test -bench ...
      -benchmem | tee file`) into a JSON report: one entry per benchmark
      with every reported metric (ns/op, B/op, allocs/op, and custom
      metrics such as cycles/sec, allocs/cycle, execs). Repeated samples
      of the same benchmark (from `-count=N`) are aggregated per metric
      by best case — min for /op costs, max for /sec rates, median
      otherwise. Interference on a shared runner is one-sided (load only
      ever slows a sample down), so the best case is the robust
      estimator of the code's true speed; gates compare those, not
      single noisy samples.

  benchjson.py check-telemetry NEW.json BASELINE.json
      Gate the disabled-telemetry overhead: for every BenchmarkEnumerate
      .../por and BenchmarkCheckProgram/.../{streaming,materialize}
      present in both files, compute the ns/op ratio — normalized by the
      median drift of the reference benchmarks the instrumentation does
      not touch, to factor out machine speed. The MEDIAN regression over
      that gated set must stay within 2% (single-bench ns/op carries a
      ~±5% alignment/neighbor-load noise floor that a median over eleven
      hot-path benchmarks cancels), and no individual benchmark may
      regress more than 10%. The "+tel" variants (instrumentation
      enabled) are reported informationally against their plain
      counterparts in NEW.

  benchjson.py check NEW.json BASELINE.json
      Fail (exit 1) when NEW regresses against BASELINE:
        * cycles/sec: each benchmark's throughput is normalized by the
          run's own reference benchmark (BenchmarkSystemRun/H/noskip) to
          factor out raw machine speed, then compared: a normalized drop
          of more than 10% fails.
        * idle-heavy skip/noskip speedup must stay >= 2x (the event-driven
          skipping acceptance floor; machine-independent).
        * allocs/cycle on the idle-heavy skip variant must stay <= 0.05
          (the zero-allocation steady-state floor; machine-independent —
          the busy H variant is excluded because its short runs are
          dominated by one-time pool warm-up, not steady state).
      Race-classification gates (applied when the relation/analysis
      benchmarks are present in NEW; all machine-independent ratios):
        * BenchmarkAnalyze/<prog>/arena must stay at <= 2 allocs/op and
          the fresh/arena allocs ratio must stay >= 10x (the arena floor).
        * BenchmarkTransClosure and BenchmarkCompose bitset kernels must
          stay >= 4x faster than the []bool reference at every size.
        * BenchmarkCheckProgram/<prog>/streaming must not be slower than
          the materializing two-phase pipeline (5% tolerance).
      Solver gates (applied when BenchmarkSolve is present in NEW;
      machine-independent ratios within one run):
        * BenchmarkSolve/<prog>/solve must be >= 10x faster than the
          sibling /enumerate variant wherever both ran (the
          constraint-solving backend's acceptance floor on
          contention-dominated programs).
"""

import json
import re
import sys

REFERENCE = "BenchmarkSystemRun/H/noskip"
SPEEDUP_NUM = "BenchmarkSystemRun/idle-heavy/skip"
SPEEDUP_DEN = "BenchmarkSystemRun/idle-heavy/noskip"
TOLERANCE = 0.10
MIN_SPEEDUP = 2.0
MAX_ALLOCS_PER_CYCLE = 0.05

# Race-classification (bitset kernel / streaming pipeline) floors.
MAX_ARENA_ALLOCS = 2.0
MIN_ARENA_ALLOC_RATIO = 10.0
MIN_KERNEL_SPEEDUP = 4.0
STREAMING_TOLERANCE = 0.05

# Constraint-solving backend floor: on contention-dominated programs the
# solver must beat full enumeration by at least this much. The measured
# gap is orders of magnitude larger (enumeration is super-exponential in
# thread count where the solver's memoized state space is polynomial),
# so 10x is a conservative machine-independent floor, not a target.
MIN_SOLVE_SPEEDUP = 10.0

# Disabled-telemetry overhead ceiling on the semantics-engine hot paths.
# The 2% ceiling applies to the MEDIAN normalized regression across the
# gated set: per-bench ns/op on a shared runner has a ~±5% noise floor
# even best-of-5 (code/alignment luck plus neighbor load), so individual
# benchmarks cannot support a 2% comparison, but the median over eleven
# independent hot-path benchmarks cancels that noise. A per-bench
# backstop still catches any single benchmark blowing up outright.
TELEMETRY_TOLERANCE = 0.02
TELEMETRY_BENCH_CEILING = 0.10
# Benchmarks gated by check-telemetry (matched by prefix + suffix).
TELEMETRY_GATED = (
    ("BenchmarkEnumerate/", "/por"),
    ("BenchmarkCheckProgram/", "/streaming"),
    ("BenchmarkCheckProgram/", "/materialize"),
)
# Normalization reference prefixes: benchmarks the checker
# instrumentation does not touch, so their drift between two runs is
# machine/toolchain speed, not telemetry cost. The scale is the median
# ns/op ratio over every reference present in both runs.
TELEMETRY_REFERENCES = (
    "BenchmarkAnalyze/",
    "BenchmarkTransClosure/",
    "BenchmarkCompose/",
    "BenchmarkSetOps/",
    "BenchmarkSystemRun/",
)

LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([\d.e+]+)\s+(\S+)")


def aggregate(unit, vals):
    """Collapse repeated samples of one metric: min for /op costs, max
    for /sec rates (one-sided interference noise), median otherwise."""
    if unit.endswith("/op"):
        return min(vals)
    if unit.endswith("/sec"):
        return max(vals)
    vals = sorted(vals)
    mid = len(vals) // 2
    if len(vals) % 2:
        return vals[mid]
    return (vals[mid - 1] + vals[mid]) / 2


def parse(paths):
    samples, order = {}, []
    for path in paths:
        for line in open(path):
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            metrics = {}
            for val, unit in METRIC.findall(rest):
                try:
                    metrics[unit] = float(val)
                except ValueError:
                    continue
            if not metrics:
                continue
            if name not in samples:
                samples[name] = []
                order.append((name, iters))
            samples[name].append(metrics)
    out = []
    for name, iters in order:
        units = {u for run in samples[name] for u in run}
        merged = {
            u: aggregate(u, [run[u] for run in samples[name] if u in run])
            for u in sorted(units)
        }
        out.append({"name": name, "iterations": iters, "metrics": merged})
    return out


def by_name(report):
    return {b["name"]: b["metrics"] for b in report}


def check(new, base):
    newm, basem = by_name(new), by_name(base)
    failures = []

    def cps(table, name):
        return table.get(name, {}).get("cycles/sec")

    ref_new, ref_base = cps(newm, REFERENCE), cps(basem, REFERENCE)
    for name, metrics in basem.items():
        if "cycles/sec" not in metrics or name not in newm:
            continue
        if not ref_new or not ref_base:
            break
        base_norm = metrics["cycles/sec"] / ref_base
        got = cps(newm, name)
        if got is None:
            failures.append(f"{name}: cycles/sec metric missing from new run")
            continue
        new_norm = got / ref_new
        if new_norm < (1 - TOLERANCE) * base_norm:
            failures.append(
                f"{name}: normalized cycles/sec regressed "
                f"{base_norm:.3f} -> {new_norm:.3f} (>{TOLERANCE:.0%} drop)"
            )

    num, den = cps(newm, SPEEDUP_NUM), cps(newm, SPEEDUP_DEN)
    if num and den:
        speedup = num / den
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"idle-heavy skip speedup {speedup:.2f}x < {MIN_SPEEDUP}x floor"
            )
        print(f"idle-heavy skip speedup: {speedup:.2f}x")

    apc = newm.get(SPEEDUP_NUM, {}).get("allocs/cycle")
    if apc is not None:
        print(f"idle-heavy skip allocs/cycle: {apc:.4f}")
        if apc > MAX_ALLOCS_PER_CYCLE:
            failures.append(
                f"{SPEEDUP_NUM}: {apc:.4f} allocs/cycle > {MAX_ALLOCS_PER_CYCLE} floor"
            )

    failures += check_raceclass(newm)
    failures += check_solve(newm)

    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    return not failures


def check_raceclass(newm):
    """Machine-independent floors for the bitset relation kernels and the
    streaming race-classification pipeline. Each gate only fires when its
    benchmarks are present, so older baselines pass unchanged."""
    failures = []

    # Arena analysis: absolute allocs/op ceiling plus fresh/arena ratio.
    for name, metrics in sorted(newm.items()):
        if not (name.startswith("BenchmarkAnalyze/") and name.endswith("/arena")):
            continue
        allocs = metrics.get("allocs/op")
        if allocs is None:
            continue
        prog = name[len("BenchmarkAnalyze/"):-len("/arena")]
        print(f"analyze arena allocs/op [{prog}]: {allocs:.0f}")
        if allocs > MAX_ARENA_ALLOCS:
            failures.append(
                f"{name}: {allocs:.0f} allocs/op > {MAX_ARENA_ALLOCS:.0f} ceiling"
            )
        fresh = newm.get(f"BenchmarkAnalyze/{prog}/fresh", {}).get("allocs/op")
        if fresh is not None:
            ratio = fresh / max(allocs, 1.0)
            if ratio < MIN_ARENA_ALLOC_RATIO:
                failures.append(
                    f"{name}: fresh/arena allocs ratio {ratio:.1f}x "
                    f"< {MIN_ARENA_ALLOC_RATIO:.0f}x floor"
                )

    # Bitset kernels vs the retained []bool reference implementation.
    for name, metrics in sorted(newm.items()):
        if not name.endswith("/bitset"):
            continue
        ref = newm.get(name[: -len("/bitset")] + "/ref", {}).get("ns/op")
        got = metrics.get("ns/op")
        if not ref or not got:
            continue
        speedup = ref / got
        print(f"kernel speedup [{name[len('Benchmark'):-len('/bitset')]}]: {speedup:.1f}x")
        if speedup < MIN_KERNEL_SPEEDUP:
            failures.append(
                f"{name}: {speedup:.2f}x vs reference < {MIN_KERNEL_SPEEDUP}x floor"
            )

    # Streaming must dominate the two-phase materializing pipeline.
    for name, metrics in sorted(newm.items()):
        if not (name.startswith("BenchmarkCheckProgram/") and name.endswith("/streaming")):
            continue
        mat = newm.get(name[: -len("/streaming")] + "/materialize", {}).get("ns/op")
        got = metrics.get("ns/op")
        if not mat or not got:
            continue
        prog = name[len("BenchmarkCheckProgram/"):-len("/streaming")]
        print(f"streaming vs materialize [{prog}]: {mat / got:.2f}x")
        if got > (1 + STREAMING_TOLERANCE) * mat:
            failures.append(
                f"{name}: streaming {got:.0f} ns/op slower than "
                f"materialize {mat:.0f} ns/op (>{STREAMING_TOLERANCE:.0%})"
            )

    return failures


def check_solve(newm):
    """Machine-independent floor for the constraint-solving backend:
    wherever BenchmarkSolve ran a program in both modes, solving must
    beat enumerating by MIN_SOLVE_SPEEDUP. Fires only when the solver
    benchmarks are present, so older baselines pass unchanged."""
    failures = []
    for name, metrics in sorted(newm.items()):
        if not (name.startswith("BenchmarkSolve/") and name.endswith("/solve")):
            continue
        enum_ns = newm.get(name[: -len("/solve")] + "/enumerate", {}).get("ns/op")
        got = metrics.get("ns/op")
        if not enum_ns or not got:
            continue
        speedup = enum_ns / got
        prog = name[len("BenchmarkSolve/"):-len("/solve")]
        print(f"solve vs enumerate [{prog}]: {speedup:.0f}x")
        if speedup < MIN_SOLVE_SPEEDUP:
            failures.append(
                f"{name}: {speedup:.1f}x vs enumeration < {MIN_SOLVE_SPEEDUP:.0f}x floor"
            )
    return failures


def check_telemetry(newm, basem):
    """Gate the disabled-telemetry (nil-fold) overhead on the enumerator
    and checker hot paths: median over the gated set <= TELEMETRY_TOLERANCE,
    any single bench <= TELEMETRY_BENCH_CEILING, normalized by a shared
    reference set to divide out machine speed."""
    failures = []

    ratios = []
    for name, metrics in basem.items():
        if not name.startswith(TELEMETRY_REFERENCES):
            continue
        base_ns, new_ns = metrics.get("ns/op"), newm.get(name, {}).get("ns/op")
        if base_ns and new_ns:
            ratios.append(new_ns / base_ns)
    if not ratios:
        print("telemetry gate: no shared reference benchmarks; skipping")
        return failures
    scale = aggregate("", ratios)  # median across the untouched references
    print(f"telemetry gate: machine scale {scale:.3f}x (median over {len(ratios)} references)")

    gated = []
    for name, metrics in sorted(basem.items()):
        if not any(name.startswith(p) and name.endswith(s) for p, s in TELEMETRY_GATED):
            continue
        base_ns = metrics.get("ns/op")
        new_ns = newm.get(name, {}).get("ns/op")
        if not base_ns or not new_ns:
            continue
        ratio = new_ns / (base_ns * scale)
        gated.append(ratio)
        print(f"disabled-telemetry overhead [{name[len('Benchmark'):]}]: {ratio - 1:+.1%}")
        if ratio > 1 + TELEMETRY_BENCH_CEILING:
            failures.append(
                f"{name}: disabled-telemetry ns/op regressed {ratio - 1:+.1%} "
                f"(> {TELEMETRY_BENCH_CEILING:.0%} per-bench backstop, normalized)"
            )
    if gated:
        overall = aggregate("", gated)  # median regression over the gated set
        print(
            f"disabled-telemetry overhead [median of {len(gated)} hot-path "
            f"benches]: {overall - 1:+.1%} (ceiling {TELEMETRY_TOLERANCE:.0%})"
        )
        if overall > 1 + TELEMETRY_TOLERANCE:
            failures.append(
                f"median hot-path ns/op regressed {overall - 1:+.1%} "
                f"(> {TELEMETRY_TOLERANCE:.0%} ceiling, normalized, "
                f"{len(gated)} benches)"
            )

    # Enabled-telemetry cost, informational: "+tel" vs plain in NEW.
    for name, metrics in sorted(newm.items()):
        if not name.endswith("+tel"):
            continue
        plain = newm.get(name[: -len("+tel")], {}).get("ns/op")
        got = metrics.get("ns/op")
        if plain and got:
            print(f"enabled-telemetry overhead [{name[len('Benchmark'):]}]: {got / plain - 1:+.1%}")

    return failures


def main():
    if len(sys.argv) < 4 or sys.argv[1] not in ("parse", "check", "check-telemetry"):
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "parse":
        report = parse(sys.argv[3:])
        if not report:
            print("no benchmark results parsed", file=sys.stderr)
            return 1
        with open(sys.argv[2], "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"{len(report)} benchmarks -> {sys.argv[2]}")
        return 0
    new = json.load(open(sys.argv[2]))
    base = json.load(open(sys.argv[3]))
    if sys.argv[1] == "check-telemetry":
        failures = check_telemetry(by_name(new), by_name(base))
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        print("telemetry overhead gate:", "OK" if not failures else "FAILED")
        return 0 if not failures else 1
    ok = check(new, base)
    print("benchmark gate:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
