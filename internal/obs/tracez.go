package obs

import (
	"encoding/json"
	"net/http"
	"strings"

	"rats/internal/rtrace"
)

// openMetricsContentType is the negotiated OpenMetrics exposition type.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// acceptsOpenMetrics reports whether the Accept header asks for the
// OpenMetrics exposition format. Matching is deliberately loose — any
// listed media range naming openmetrics-text opts in; q-weights are not
// compared because the server only has the two formats and classic text
// is the safe default.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// SetTraces attaches the request tracer: its ring buffer of recent,
// error, and slowest traces becomes the /tracez payload.
func (s *Server) SetTraces(t *rtrace.Tracer) {
	s.mu.Lock()
	s.traces = t
	s.mu.Unlock()
}

func (s *Server) tracer() *rtrace.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces
}

// handleTracez serves the ring-buffered trace views.
//
//	/tracez                  — JSON: stats + recent/error/slowest traces
//	/tracez?id=<trace-id>    — JSON: that one trace (404 if it left the ring)
//	/tracez?id=<id>&format=chrome — that trace as a Chrome/Perfetto
//	                           trace-event file (the internal/probe format)
//	/tracez?format=chrome    — every ringed trace on one Chrome timeline
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	t := s.tracer()
	if t == nil {
		http.Error(w, "no tracer attached", http.StatusNotFound)
		return
	}
	id := r.URL.Query().Get("id")
	chrome := r.URL.Query().Get("format") == "chrome"
	if id != "" {
		td, ok := t.Find(id)
		if !ok {
			http.Error(w, "trace not found (evicted from ring or never existed)", http.StatusNotFound)
			return
		}
		if chrome {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="trace-`+id+`.json"`)
			rtrace.WriteChrome(w, td)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(td)
		return
	}
	snap := t.Snapshot()
	if chrome {
		// One timeline of everything the ring holds, deduplicated (a
		// trace can sit in several views) and in recent-first order.
		seen := map[string]bool{}
		var all []*rtrace.TraceData
		for _, set := range [][]*rtrace.TraceData{snap.Recent, snap.Errors, snap.Slowest} {
			for _, td := range set {
				if !seen[td.TraceID] {
					seen[td.TraceID] = true
					all = append(all, td)
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="tracez.json"`)
		rtrace.WriteChrome(w, all...)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
