package workloads

import (
	"fmt"

	"rats/internal/graphs"
	"rats/internal/trace"
)

// Entry describes one benchmark of Table 3.
type Entry struct {
	// Name is the short name used in Figures 3 and 4 (H, HG, HG-NO,
	// Flags, SC, RC, SEQ, UTS, BC-1..4, PR-1..4).
	Name string
	// Full is the benchmark's full name.
	Full string
	// Input describes the input, as Table 3 reports it.
	Input string
	// AtomicTypes lists the relaxed-atomic classes used.
	AtomicTypes string
	// Micro marks the Figure 3 microbenchmarks (vs. Figure 4 benchmarks).
	Micro bool
	// Build generates the trace at the given scale.
	Build func(s Scale) *trace.Trace
}

// Micro returns the seven microbenchmarks of Figure 3, in the paper's
// order.
func Micro() []Entry {
	return []Entry{
		{Name: "H", Full: "Hist", Input: "256 KB, 256 bins", AtomicTypes: "Commutative", Micro: true,
			Build: func(s Scale) *trace.Trace { return Hist(DefaultHist(s)) }},
		{Name: "HG", Full: "Hist_global", Input: "256 KB, 256 bins", AtomicTypes: "Commutative", Micro: true,
			Build: func(s Scale) *trace.Trace { return HistGlobal(DefaultHist(s)) }},
		{Name: "HG-NO", Full: "HG-Non-Order", Input: "256 KB, 256 bins", AtomicTypes: "Non-Ordering", Micro: true,
			Build: func(s Scale) *trace.Trace { return HistGlobalNonOrder(DefaultHist(s)) }},
		{Name: "Flags", Full: "Flags", Input: "90 Thread Blocks", AtomicTypes: "Commutative, Non-Ordering", Micro: true,
			Build: func(s Scale) *trace.Trace { return Flags(DefaultFlags(s)) }},
		{Name: "SC", Full: "SplitCounter", Input: "112 Thread Blocks", AtomicTypes: "Quantum", Micro: true,
			Build: func(s Scale) *trace.Trace { return SplitCounter(DefaultSplitCounter(s)) }},
		{Name: "RC", Full: "RefCounter", Input: "64 Thread Blocks", AtomicTypes: "Quantum", Micro: true,
			Build: func(s Scale) *trace.Trace { return RefCounter(DefaultRefCounter(s)) }},
		{Name: "SEQ", Full: "Seqlocks", Input: "512 Thread Blocks", AtomicTypes: "Speculative", Micro: true,
			Build: func(s Scale) *trace.Trace { return Seqlocks(DefaultSeqlocks(s)) }},
	}
}

// Benchmarks returns the Figure 4 benchmarks: UTS, BC on four graphs,
// PR on four graphs.
func Benchmarks() []Entry {
	out := []Entry{
		{Name: "UTS", Full: "UTS", Input: "16K nodes", AtomicTypes: "Unpaired",
			Build: func(s Scale) *trace.Trace { return UTS(DefaultUTS(s)) }},
	}
	for i, g := range graphs.BCInputs() {
		g := g
		out = append(out, Entry{
			Name: fmt.Sprintf("BC-%d", i+1), Full: "BC", Input: g.Name,
			AtomicTypes: "Commutative, Non-Ordering",
			Build:       func(s Scale) *trace.Trace { return BC(g, DefaultGraph(s)) },
		})
	}
	for i, g := range graphs.PRInputs() {
		g := g
		out = append(out, Entry{
			Name: fmt.Sprintf("PR-%d", i+1), Full: "PageRank", Input: g.Name,
			AtomicTypes: "Commutative",
			Build:       func(s Scale) *trace.Trace { return PR(g, DefaultGraph(s)) },
		})
	}
	return out
}

// All returns every workload (Figure 3 then Figure 4 order).
func All() []Entry {
	return append(Micro(), Benchmarks()...)
}

// Figure1Apps returns the nine atomic-heavy applications evaluated on the
// discrete GPU in Figure 1. The paper selects the nine applications with
// the highest dynamic atomic fraction from its benchmark suites; here we
// use the corresponding nine workloads of this reproduction (PageRank,
// BC, UTS, and the six atomic-dense microbenchmark kernels).
func Figure1Apps() []Entry {
	bcs := graphs.BCInputs()
	prs := graphs.PRInputs()
	return []Entry{
		{Name: "PageRank", Full: "PageRank", AtomicTypes: "Commutative",
			Build: func(s Scale) *trace.Trace { return PR(prs[3], DefaultGraph(s)) }},
		{Name: "BC", Full: "BC", AtomicTypes: "Commutative, Non-Ordering",
			Build: func(s Scale) *trace.Trace { return BC(bcs[3], DefaultGraph(s)) }},
		{Name: "UTS", Full: "UTS", AtomicTypes: "Unpaired",
			Build: func(s Scale) *trace.Trace { return UTS(DefaultUTS(s)) }},
		{Name: "Hist", Full: "Hist", AtomicTypes: "Commutative",
			Build: func(s Scale) *trace.Trace { return Hist(DefaultHist(s)) }},
		{Name: "HG", Full: "Hist_global", AtomicTypes: "Commutative",
			Build: func(s Scale) *trace.Trace { return HistGlobal(DefaultHist(s)) }},
		{Name: "Flags", Full: "Flags", AtomicTypes: "Non-Ordering",
			Build: func(s Scale) *trace.Trace { return Flags(DefaultFlags(s)) }},
		{Name: "SplitCounter", Full: "SplitCounter", AtomicTypes: "Quantum",
			Build: func(s Scale) *trace.Trace { return SplitCounter(DefaultSplitCounter(s)) }},
		{Name: "RefCounter", Full: "RefCounter", AtomicTypes: "Quantum",
			Build: func(s Scale) *trace.Trace { return RefCounter(DefaultRefCounter(s)) }},
		{Name: "Seqlocks", Full: "Seqlocks", AtomicTypes: "Speculative",
			Build: func(s Scale) *trace.Trace { return Seqlocks(DefaultSeqlocks(s)) }},
	}
}

// ByName returns a workload entry by short name, or nil.
func ByName(name string) *Entry {
	for _, e := range All() {
		if e.Name == name {
			e := e
			return &e
		}
	}
	return nil
}
