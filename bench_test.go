// Package rats_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark simulates a workload and
// reports the simulated execution time as the custom metric
// "sim-cycles" (wall time measures simulator speed, sim-cycles measures
// the machine being simulated).
package rats_test

import (
	"fmt"
	"testing"

	"rats/internal/core"
	"rats/internal/harness"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/probe"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/workloads"
)

// runSim benchmarks one (workload, config) cell and reports sim-cycles.
func runSim(b *testing.B, entry workloads.Entry, cfg memsys.Config) {
	b.Helper()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := system.RunTrace(cfg, entry.Build(workloads.Test))
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkFigure1 reproduces Figure 1: each sub-benchmark runs one of
// the nine atomic-heavy applications on the discrete-GPU configuration
// with SC atomics and with relaxed atomics, reporting the speedup.
func BenchmarkFigure1(b *testing.B) {
	for _, app := range workloads.Figure1Apps() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				sc, err := system.RunTrace(memsys.Discrete(core.DRF0), app.Build(workloads.Test))
				if err != nil {
					b.Fatal(err)
				}
				rlx, err := system.RunTrace(memsys.Discrete(core.DRFrlx), app.Build(workloads.Test))
				if err != nil {
					b.Fatal(err)
				}
				speedup = float64(sc.Stats.Cycles) / float64(rlx.Stats.Cycles)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// figureCells benchmarks every (workload, config) cell of a figure.
func figureCells(b *testing.B, entries []workloads.Entry) {
	for _, e := range entries {
		for _, c := range harness.ConfigOrder {
			e, c := e, c
			b.Run(fmt.Sprintf("%s/%s", e.Name, c), func(b *testing.B) {
				cfg, err := harness.ConfigFor(c)
				if err != nil {
					b.Fatal(err)
				}
				runSim(b, e, cfg)
			})
		}
	}
}

// BenchmarkFigure3 reproduces Figure 3's 7x6 grid (microbenchmark
// execution time and energy under GD0..DDR).
func BenchmarkFigure3(b *testing.B) { figureCells(b, workloads.Micro()) }

// BenchmarkFigure4 reproduces Figure 4's 9x6 grid (UTS, BC 1-4, PR 1-4).
func BenchmarkFigure4(b *testing.B) { figureCells(b, workloads.Benchmarks()) }

// BenchmarkTable1LitmusSuite measures the programmer-centric model
// (Listing 7) over the Table 1 use cases: full SC enumeration plus the
// five race detectors, under DRFrlx.
func BenchmarkTable1LitmusSuite(b *testing.B) {
	for _, tc := range litmus.Suite() {
		if tc.UseCase == "" {
			continue
		}
		tc := tc
		b.Run(tc.Prog.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memmodel.CheckProgram(tc.Prog, core.DRFrlx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2 measures the non-ordering detector on the Figure 2
// litmus tests (program/conflict-graph path analysis).
func BenchmarkFigure2(b *testing.B) {
	for _, p := range []*litmus.Program{litmus.Figure2a(), litmus.Figure2b()} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				execs, err := memmodel.Enumerate(p, memmodel.EnumOptions{})
				if err != nil {
					b.Fatal(err)
				}
				for _, ex := range execs {
					memmodel.Analyze(ex)
				}
			}
		})
	}
}

// BenchmarkTable2SystemBuild measures machine construction (the Table 2
// system: 16 nodes, caches, NoC).
func BenchmarkTable2SystemBuild(b *testing.B) {
	cfg := memsys.Default(memsys.ProtoDeNovo, core.DRFrlx)
	for i := 0; i < b.N; i++ {
		system.New(cfg)
	}
}

// BenchmarkTable3TraceGeneration measures workload generation for every
// Table 3 entry.
func BenchmarkTable3TraceGeneration(b *testing.B) {
	for _, e := range workloads.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Build(workloads.Test)
			}
		})
	}
}

// BenchmarkTable4Theorem runs the system-centric model validation behind
// Table 4's guarantees (Theorem 3.1) on the primary use cases.
func BenchmarkTable4Theorem(b *testing.B) {
	for _, p := range []*litmus.Program{litmus.WorkQueue(), litmus.SplitCounter(), litmus.Seqlocks()} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memmodel.ValidateTheorem(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProbeOverhead compares a run with no probe hub attached
// against the same run with a hub and a counting sink: the "disabled"
// case is the zero-overhead contract (every emission site reduces to a
// nil check), the "counting" case bounds the cost of the event stream
// itself.
func BenchmarkProbeOverhead(b *testing.B) {
	e := *workloads.ByName("H")
	cfg := memsys.Default(memsys.ProtoDeNovo, core.DRFrlx)
	b.Run("disabled", func(b *testing.B) {
		runSim(b, e, cfg)
	})
	b.Run("sinkless", func(b *testing.B) {
		// A hub with nothing attached must cost the same as no hub at
		// all: AttachProbe folds it to nil (Hub.ActiveOrNil), so every
		// emission site is back to the single nil-check branch.
		for i := 0; i < b.N; i++ {
			sys := system.New(cfg)
			sys.AttachProbe(probe.NewHub())
			if err := sys.Load(e.Build(workloads.Test)); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counting", func(b *testing.B) {
		var events int64
		for i := 0; i < b.N; i++ {
			sink := &probe.CountingSink{}
			hub := probe.NewHub()
			hub.Attach(sink)
			sys := system.New(cfg)
			sys.AttachProbe(hub)
			if err := sys.Load(e.Build(workloads.Test)); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				b.Fatal(err)
			}
			events = sink.Events
		}
		b.ReportMetric(float64(events), "events")
	})
	b.Run("spans", func(b *testing.B) {
		var spans int64
		for i := 0; i < b.N; i++ {
			sink := probe.NewLatencySink()
			hub := probe.NewHub()
			hub.Attach(sink)
			sys := system.New(cfg)
			sys.AttachProbe(hub)
			if err := sys.Load(e.Build(workloads.Test)); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				b.Fatal(err)
			}
			if sink.Open() != 0 {
				b.Fatalf("%d spans left open", sink.Open())
			}
			spans = sink.Completed()
		}
		b.ReportMetric(float64(spans), "spans")
	})
}

// --- Ablations (DESIGN.md "Key design decisions") ---

// BenchmarkAblationAtomicPlacement isolates the protocol axis on the
// contended histogram: atomics at the L2 bank (GPU) vs. at the L1 with
// ownership (DeNovo), same consistency model.
func BenchmarkAblationAtomicPlacement(b *testing.B) {
	e := *workloads.ByName("HG")
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			runSim(b, e, memsys.Default(proto, core.DRFrlx))
		})
	}
}

// BenchmarkAblationCoalescing toggles DeNovo's MSHR atomic coalescing
// (1 target = no coalescing) on the contended histogram.
func BenchmarkAblationCoalescing(b *testing.B) {
	e := *workloads.ByName("HG")
	for _, targets := range []int{1, 2, 4, 8, 16} {
		targets := targets
		b.Run(fmt.Sprintf("targets-%d", targets), func(b *testing.B) {
			cfg := memsys.Default(memsys.ProtoDeNovo, core.DRFrlx)
			cfg.L1MSHRTargets = targets
			runSim(b, e, cfg)
		})
	}
}

// BenchmarkAblationFlushInval isolates the acquire/release costs DRF1
// removes: BC's reuse-heavy kernel under DRF0 (invalidate + flush per
// atomic) vs DRF1 (neither), same protocol.
func BenchmarkAblationFlushInval(b *testing.B) {
	e := *workloads.ByName("BC-4")
	for _, m := range []core.Model{core.DRF0, core.DRF1} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			runSim(b, e, memsys.Default(memsys.ProtoGPU, m))
		})
	}
}

// BenchmarkAblationOverlap sweeps the per-warp relaxed-atomic overlap
// degree (the DRFrlx lever) on PageRank.
func BenchmarkAblationOverlap(b *testing.B) {
	e := *workloads.ByName("PR-4")
	for _, mlp := range []int{1, 2, 4, 8} {
		mlp := mlp
		b.Run(fmt.Sprintf("outstanding-%d", mlp), func(b *testing.B) {
			cfg := memsys.Default(memsys.ProtoGPU, core.DRFrlx)
			cfg.MaxOutstandingAtomicsPerWarp = mlp
			runSim(b, e, cfg)
		})
	}
}

// BenchmarkAblationReleaseAcquire contrasts SC seqlock readers with the
// Section 7 acquire/release variant under both protocols (DRFrlx).
func BenchmarkAblationReleaseAcquire(b *testing.B) {
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		for _, variant := range []string{"SC", "RA"} {
			proto, variant := proto, variant
			b.Run(fmt.Sprintf("%s/%s", proto, variant), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					params := workloads.DefaultSeqlocks(workloads.Test)
					tr := workloads.Seqlocks(params)
					if variant == "RA" {
						tr = workloads.SeqlocksRA(params)
					}
					res, err := system.RunTrace(memsys.Default(proto, core.DRFrlx), tr)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Stats.Cycles
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkExtensionHRFScopes quantifies the Section 7 scoped-
// synchronization alternative on UTS (one of the two workloads the paper
// says could benefit from HRF scopes): GPU coherence with HRF work-group
// scopes vs. the unscoped models vs. DeNovo — reproducing the prior-work
// claim that DeNovo reaches scoped-class performance without scopes.
func BenchmarkExtensionHRFScopes(b *testing.B) {
	run := func(b *testing.B, cfg memsys.Config, scoped bool) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			p := workloads.DefaultUTS(workloads.Test)
			p.HRFScopes = scoped
			res, err := system.RunTrace(cfg, workloads.UTS(p))
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Stats.Cycles
		}
		b.ReportMetric(float64(cycles), "sim-cycles")
	}
	b.Run("GD0", func(b *testing.B) { run(b, memsys.Default(memsys.ProtoGPU, core.DRF0), false) })
	b.Run("GD0-HRF", func(b *testing.B) { run(b, memsys.Default(memsys.ProtoGPU, core.DRF0), true) })
	b.Run("GD1", func(b *testing.B) { run(b, memsys.Default(memsys.ProtoGPU, core.DRF1), false) })
	b.Run("DD1", func(b *testing.B) { run(b, memsys.Default(memsys.ProtoDeNovo, core.DRF1), false) })
}

// BenchmarkAblationScopesFreeDeNovo contrasts the protocols under DRF0 on
// the full benchmark set's most reuse-heavy entry — the "DeNovo without
// scopes" claim inherited from the paper's prior work.
func BenchmarkAblationScopesFreeDeNovo(b *testing.B) {
	e := *workloads.ByName("BC-2")
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			runSim(b, e, memsys.Default(proto, core.DRF0))
		})
	}
}
