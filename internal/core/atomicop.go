package core

import "fmt"

// AtomicOp is the read-modify-write function of an atomic operation. Plain
// atomic loads and stores use OpLoad / OpStore; everything else is an RMW.
type AtomicOp uint8

const (
	// OpLoad is a plain atomic load.
	OpLoad AtomicOp = iota
	// OpStore is a plain atomic store (exchange without reading).
	OpStore
	// OpAdd is fetch_add.
	OpAdd
	// OpSub is fetch_sub.
	OpSub
	// OpInc is fetch_add(1).
	OpInc
	// OpDec is fetch_sub(1).
	OpDec
	// OpAnd is fetch_and.
	OpAnd
	// OpOr is fetch_or.
	OpOr
	// OpXor is fetch_xor.
	OpXor
	// OpMin is fetch_min.
	OpMin
	// OpMax is fetch_max.
	OpMax
	// OpExchange is atomic exchange (returns old value, stores operand).
	OpExchange
	// OpCAS is compare-and-swap.
	OpCAS
)

func (op AtomicOp) String() string {
	switch op {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpInc:
		return "inc"
	case OpDec:
		return "dec"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpExchange:
		return "xchg"
	case OpCAS:
		return "cas"
	}
	return fmt.Sprintf("AtomicOp(%d)", uint8(op))
}

// IsRMW reports whether the operation both reads and writes its location.
func (op AtomicOp) IsRMW() bool { return op != OpLoad && op != OpStore }

// Writes reports whether the operation may modify its location. OpCAS
// conservatively counts as writing.
func (op AtomicOp) Writes() bool { return op != OpLoad }

// Reads reports whether the operation observes its location's old value.
func (op AtomicOp) Reads() bool { return op != OpStore }

// Apply evaluates the RMW function: given the location's old value and the
// operation's operand(s), it returns the new value stored. For OpCAS,
// operand is the desired new value and expected the comparison value.
func (op AtomicOp) Apply(old, operand, expected int64) int64 {
	switch op {
	case OpLoad:
		return old
	case OpStore, OpExchange:
		return operand
	case OpAdd:
		return old + operand
	case OpSub:
		return old - operand
	case OpInc:
		return old + 1
	case OpDec:
		return old - 1
	case OpAnd:
		return old & operand
	case OpOr:
		return old | operand
	case OpXor:
		return old ^ operand
	case OpMin:
		if operand < old {
			return operand
		}
		return old
	case OpMax:
		if operand > old {
			return operand
		}
		return old
	case OpCAS:
		if old == expected {
			return operand
		}
		return old
	}
	return old
}

// commuteGroup assigns each modifying operation to an algebraic group such
// that any two operations in the same group commute for all operands.
// Additive ops (add/sub/inc/dec) form one group; each of and/or/xor/min/max
// forms its own group (xor commutes with xor, etc.). Store, exchange, and
// CAS commute with nothing (not even themselves, in general).
func commuteGroup(op AtomicOp) int {
	switch op {
	case OpAdd, OpSub, OpInc, OpDec:
		return 1
	case OpAnd:
		return 2
	case OpOr:
		return 3
	case OpXor:
		return 4
	case OpMin:
		return 5
	case OpMax:
		return 6
	}
	return 0 // no group
}

// Commutes implements the paper's Commutativity definition (Section 3.2.3):
// two stores or RMWs to a single location are commutative with respect to
// each other if performing them in either order yields the same final
// value for the location. Loads never participate (commutativity is
// defined only between modifying operations). Two plain stores of the
// same value commute; otherwise commutativity is decided by algebraic
// group membership, which is sound for all operand values.
func Commutes(opX AtomicOp, operandX int64, opY AtomicOp, operandY int64) bool {
	if !opX.Writes() || !opY.Writes() {
		return false
	}
	if (opX == OpStore || opX == OpExchange) && (opY == OpStore || opY == OpExchange) {
		return operandX == operandY
	}
	gx, gy := commuteGroup(opX), commuteGroup(opY)
	return gx != 0 && gx == gy
}
