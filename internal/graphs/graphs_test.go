package graphs

import (
	"testing"
	"testing/quick"
)

func TestGeneratorsBasic(t *testing.T) {
	for _, g := range []*Graph{
		Road("r", 10, 1),
		FEM("f", 200, 6, 2),
		Hub("h", 200, 2, 0.2, 3),
		Uniform("u", 200, 4, 4),
	} {
		if g.N() == 0 || g.Edges() == 0 {
			t.Fatalf("%s degenerate: n=%d e=%d", g.Name, g.N(), g.Edges())
		}
		// Undirected representation: edge count is even.
		if g.Edges()%2 != 0 {
			t.Errorf("%s: odd arc count %d", g.Name, g.Edges())
		}
		// No isolated vertices (spine guarantee).
		for u, adj := range g.Adj {
			if len(adj) == 0 {
				t.Fatalf("%s: vertex %d isolated", g.Name, u)
			}
		}
		if g.MaxDegree() <= 0 {
			t.Errorf("%s: max degree %d", g.Name, g.MaxDegree())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Hub("h", 150, 2, 0.2, 7)
	b := Hub("h", 150, 2, 0.2, 7)
	if a.Edges() != b.Edges() {
		t.Fatal("same seed produced different graphs")
	}
	c := Hub("h", 150, 2, 0.2, 8)
	if a.Edges() == c.Edges() {
		t.Log("warning: different seeds coincided (possible but unlikely)")
	}
}

func TestStructuralContrast(t *testing.T) {
	road := Road("r", 20, 1)
	hub := Hub("h", 400, 3, 0.2, 2)
	// Road networks: low max degree. Hub matrices: dense rows.
	if road.MaxDegree() > 12 {
		t.Errorf("road max degree %d too high", road.MaxDegree())
	}
	if hub.MaxDegree() < 40 {
		t.Errorf("hub max degree %d too low", hub.MaxDegree())
	}
	// Road diameter (BFS depth) far exceeds the hub graph's.
	_, roadLevels := road.BFS(0)
	_, hubLevels := hub.BFS(0)
	if len(roadLevels) <= len(hubLevels) {
		t.Errorf("road BFS depth %d should exceed hub depth %d", len(roadLevels), len(hubLevels))
	}
}

func TestBFSLevelsConsistent(t *testing.T) {
	g := FEM("f", 300, 8, 5)
	level, levels := g.BFS(0)
	seen := 0
	for d, frontier := range levels {
		for _, v := range frontier {
			seen++
			if level[v] != d {
				t.Fatalf("vertex %d in frontier %d has level %d", v, d, level[v])
			}
		}
	}
	// Every reachable vertex appears exactly once.
	reachable := 0
	for _, l := range level {
		if l >= 0 {
			reachable++
		}
	}
	if seen != reachable {
		t.Fatalf("levels contain %d vertices, %d reachable", seen, reachable)
	}
	// BFS edge property: adjacent vertices differ by at most one level.
	for u := range g.Adj {
		for _, v := range g.Adj[u] {
			if level[u] >= 0 && level[v] >= 0 {
				d := level[u] - level[v]
				if d < -1 || d > 1 {
					t.Fatalf("edge (%d,%d) spans levels %d..%d", u, v, level[u], level[v])
				}
			}
		}
	}
}

// TestSigmaProperties: sigma[src] == 1; sigma[v] > 0 for reachable v;
// sigma[v] equals the sum of sigma over its shortest-path predecessors.
func TestSigmaProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := Uniform("u", 60, 3, seed)
		level, _ := g.BFS(0)
		sigma := g.SigmaCounts(0)
		if sigma[0] != 1 {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if level[v] < 0 {
				continue
			}
			if sigma[v] <= 0 {
				return false
			}
			if v == 0 {
				continue
			}
			var sum int64
			for u := 0; u < g.N(); u++ {
				for _, w := range g.Adj[u] {
					if int(w) == v && level[u] == level[v]-1 {
						sum += sigma[u]
					}
				}
			}
			if sum != sigma[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankConservativeShape(t *testing.T) {
	g := Hub("h", 200, 2, 0.2, 3)
	ranks := g.PageRank(5)
	if len(ranks) != g.N() {
		t.Fatal("rank length wrong")
	}
	// Ranks are positive and hubs outrank leaves.
	maxDeg, maxV := 0, 0
	minDeg, minV := 1<<30, 0
	for v, adj := range g.Adj {
		if ranks[v] <= 0 {
			t.Fatalf("rank[%d] = %d", v, ranks[v])
		}
		if len(adj) > maxDeg {
			maxDeg, maxV = len(adj), v
		}
		if len(adj) < minDeg {
			minDeg, minV = len(adj), v
		}
	}
	if ranks[maxV] <= ranks[minV] {
		t.Errorf("hub rank %d not above leaf rank %d", ranks[maxV], ranks[minV])
	}
}

func TestCatalog(t *testing.T) {
	if len(BCInputs()) != 4 || len(PRInputs()) != 4 {
		t.Fatal("catalog sizes wrong")
	}
	for _, name := range []string{"rome99", "nasa1824", "ex33", "c-22", "c-37", "c-36", "ex3", "c-40"} {
		g := ByName(name)
		if g == nil {
			t.Fatalf("catalog missing %s", name)
		}
		if g.N() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if len(Names()) != 8 {
		t.Errorf("Names() = %v", Names())
	}
}
