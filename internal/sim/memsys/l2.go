package memsys

import (
	"rats/internal/core"
	"rats/internal/probe"
	"rats/internal/sim/cache"
	"rats/internal/sim/noc"
)

// L2Bank is one NUCA slice of the shared last-level cache, co-located
// with a node. It serves line reads, ownership registrations (DeNovo),
// write-throughs (GPU coherence), and hosts the bank atomic unit that
// performs GPU-coherence atomics. Each bank has a private DRAM port with
// fixed latency and bounded bandwidth.
type L2Bank struct {
	env  *Env
	node int

	array *cache.Array
	// registry maps a line to the L1 node that owns (is registered for)
	// it under DeNovo; absent means the L2 owns the line.
	registry map[uint64]int

	// atomicFree is the cycle at which the bank's atomic unit frees up.
	atomicFree int64
	// dramFree is the cycle at which the DRAM port frees up.
	dramFree int64
}

// NewL2Bank builds the bank at the given node.
func NewL2Bank(env *Env, node int) *L2Bank {
	return &L2Bank{
		env:      env,
		node:     node,
		array:    cache.NewArray(env.Cfg.L2SetsPerBank, env.Cfg.L2Ways),
		registry: map[uint64]int{},
	}
}

// Owner returns the registered owner of a line, or -1.
func (b *L2Bank) Owner(line uint64) int {
	if o, ok := b.registry[line]; ok {
		return o
	}
	return -1
}

// emit reports a bank event when a probe hub is attached.
func (b *L2Bank) emit(cycle int64, kind probe.Kind, txn int64, addr uint64, arg int64) {
	if h := b.env.Probe; h != nil {
		h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompL2, Node: b.node, Warp: -1,
			Kind: kind, Txn: txn, Addr: addr, Arg: arg})
	}
}

// serveLine ensures the line is present in the bank, returning the cycle
// at which its data is available. Misses go to the bank's DRAM port. The
// DRAMAccess event marks the end of the bank pipeline so the span layer
// can split bank time from memory (port queueing + access) time.
func (b *L2Bank) serveLine(cycle int64, line uint64, dirty bool, txn int64) int64 {
	st := b.env.Stats
	if b.array.Lookup(line) != cache.Invalid {
		st.L2Hits++
		b.emit(cycle, probe.CacheHit, txn, line*b.env.Cfg.LineSize, 0)
		if dirty {
			b.array.SetDirty(line)
		}
		return cycle + b.env.Cfg.L2Lat
	}
	st.L2Misses++
	b.emit(cycle, probe.CacheMiss, txn, line*b.env.Cfg.LineSize, 0)
	st.DRAMAccesses++
	b.emit(cycle+b.env.Cfg.L2Lat, probe.DRAMAccess, txn, line*b.env.Cfg.LineSize, 0)
	start := cycle + b.env.Cfg.L2Lat
	if b.dramFree > start {
		start = b.dramFree
	}
	b.dramFree = start + b.env.Cfg.DRAMOcc
	ready := start + b.env.Cfg.DRAMLat
	if v, evicted := b.array.Insert(line, cache.Valid, dirty); evicted && v.Dirty {
		// Dirty victim: one more DRAM write (bandwidth only).
		st.DRAMAccesses++
		b.dramFree += b.env.Cfg.DRAMOcc
	}
	return ready
}

func (b *L2Bank) send(cycle int64, dst, flits int, txn int64, p noc.Payload) {
	b.env.Mesh.Send(cycle, noc.Message{Src: b.node, Dst: dst, Flits: flits, Txn: txn, Payload: p})
}

// NextWork implements the wake-hint contract for the driver's
// fast-forward. An L2 bank has no clocked loop at all: it acts only
// when Handle delivers a request (a mesh arrival) or a deferred
// continuation fires (a scheduled event), and both of those force the
// driver to process the cycle anyway. Hence always -1.
func (b *L2Bank) NextWork(cycle int64) int64 { return -1 }

// Handle processes one delivered network request at the given cycle.
func (b *L2Bank) Handle(cycle int64, p noc.Payload) {
	if f := b.env.Fault; f != nil {
		if until := f.L2StallUntil(cycle); until > cycle {
			// Injected bank stall storm: the bank is unavailable until the
			// window ends; deferral preserves arrival order (same-cycle
			// events run FIFO), so this perturbs timing only.
			b.env.At(until, deferCall(func(c int64) { b.Handle(c, p) }))
			return
		}
	}
	cfg := b.env.Cfg
	st := b.env.Stats
	switch p.Kind {
	case pkReadReq:
		st.L2Accesses++
		if owner := b.Owner(p.Line); cfg.Protocol == ProtoDeNovo && owner >= 0 && owner != p.Requester {
			// Three-hop: ask the owning L1 to supply the requester.
			st.RemoteL1Forwards++
			b.emit(cycle, probe.RemoteForward, p.Txn, p.Line*cfg.LineSize, int64(owner))
			b.send(cycle+cfg.L2TagLat, owner, cfg.ControlFlits, p.Txn,
				noc.Payload{Kind: pkFwdRead, Line: p.Line, Requester: p.Requester, Txn: p.Txn})
			return
		}
		ready := b.serveLine(cycle, p.Line, false, p.Txn)
		b.send(ready, p.Requester, cfg.DataFlits, p.Txn,
			noc.Payload{Kind: pkReadResp, Line: p.Line, Txn: p.Txn})

	case pkOwnReq:
		st.L2Accesses++
		st.OwnershipRequests++
		prev := b.Owner(p.Line)
		b.registry[p.Line] = p.Requester
		if prev >= 0 && prev != p.Requester {
			st.RemoteL1Forwards++
			b.emit(cycle, probe.RemoteForward, p.Txn, p.Line*cfg.LineSize, int64(prev))
			b.send(cycle+cfg.L2TagLat, prev, cfg.ControlFlits, p.Txn,
				noc.Payload{Kind: pkFwdOwn, Line: p.Line, Requester: p.Requester, Txn: p.Txn})
			return
		}
		b.emit(cycle, probe.OwnershipGrant, p.Txn, p.Line*cfg.LineSize, int64(p.Requester))
		ready := b.serveLine(cycle, p.Line, false, p.Txn)
		b.send(ready, p.Requester, cfg.DataFlits, p.Txn,
			noc.Payload{Kind: pkOwnResp, Line: p.Line, Txn: p.Txn})

	case pkWtReq:
		st.L2Accesses++
		ready := b.serveLine(cycle, p.Line, true, 0)
		b.send(ready, p.Requester, cfg.ControlFlits, 0,
			noc.Payload{Kind: pkWtAck, Line: p.Line})

	case pkWbReq:
		st.L2Accesses++
		if b.Owner(p.Line) == p.Requester {
			delete(b.registry, p.Line)
		}
		b.serveLine(cycle, p.Line, true, 0)

	case pkAtomicReq:
		// Payload carries the word address in Line for atomics.
		st.L2Accesses++
		ready := b.serveLine(cycle, p.Line/cfg.LineSize, true, p.Txn)
		start := ready
		if b.atomicFree > start {
			start = b.atomicFree
		}
		done := start + cfg.L2AtomicOccupancy
		b.atomicFree = done
		b.env.At(done, Deferred{kind: deferL2Atomic, l2: b, pkt: p})

	default:
		panic("memsys: L2 bank received unknown message")
	}
}

// fireAtomic performs a GPU-coherence atomic at the bank atomic unit and
// replies with the old value.
func (b *L2Bank) fireAtomic(cycle int64, p noc.Payload) {
	st := b.env.Stats
	st.Atomics++
	st.AtomicsAtL2++
	b.emit(cycle, probe.AtomicPerformed, p.Txn, p.Line, p.Txn)
	old := b.env.ApplyAtomic(p.Line, core.AtomicOp(p.Op), p.Operand)
	b.send(cycle, p.Requester, b.env.Cfg.ControlFlits, p.Txn,
		noc.Payload{Kind: pkAtomicResp, Txn: p.Txn, Operand: old})
}
