// Package memmodel implements the semantics half of the RAts paper: it
// enumerates the sequentially consistent executions of a litmus program
// (including the quantum-equivalent transformation of Section 3.4), builds
// the relations of Section 2.3/3.3 (program order, conflict order, so1,
// hb1, the program/conflict graph), detects the paper's five illegal race
// categories exactly as Listing 7's Herd model does, and provides a
// system-centric model of a straightforward DRFrlx machine for validating
// Theorem 3.1 on litmus tests.
package memmodel

import (
	"fmt"
	"sort"
	"strings"

	"rats/internal/core"
	"rats/internal/litmus"
)

// Event is one dynamic memory operation of an execution. Branch markers
// are not events; their control dependencies are folded into the static
// dependency analysis.
type Event struct {
	// ID is the event's index, stable across executions of the same
	// program (events are numbered thread by thread, op by op).
	ID int
	// Thread is the issuing thread's index.
	Thread int
	// OpIndex is the op's index within its thread (including branches).
	OpIndex int
	// Op is the static operation.
	Op litmus.Op
	// Loaded is the value the event read (loads and RMWs).
	Loaded int64
	// Stored is the value the event wrote (stores and RMWs).
	Stored int64
	// TPos is the event's position in the SC total order T.
	TPos int
	// Randomized marks quantum events whose values were replaced by the
	// quantum transformation.
	Randomized bool
}

// Execution is one SC execution of a program: a total order plus the
// values transferred.
type Execution struct {
	Prog *litmus.Program
	// Events indexed by event ID.
	Events []Event
	// Order lists event IDs in SC total order.
	Order []int
	// RF maps each reading event to the writing event it read from, or -1
	// for the initial value. Randomized quantum reads map to -1.
	RF []int
	// Present[id] reports whether the event executed (guarded ops whose
	// guards failed are absent).
	Present []bool
	// Final is the memory state at the end of the execution — the
	// paper's "result of an execution" (Section 3.2.3).
	Final map[litmus.Loc]int64
	// Regs holds each thread's final register file.
	Regs [][]int64
}

// ResultKey serializes the final memory state into a comparable string.
func (e *Execution) ResultKey() string {
	return resultKey(e.Final)
}

func resultKey(final map[litmus.Loc]int64) string {
	locs := make([]string, 0, len(final))
	for l := range final {
		locs = append(locs, string(l))
	}
	sort.Strings(locs)
	var b strings.Builder
	for _, l := range locs {
		fmt.Fprintf(&b, "%s=%d;", l, final[litmus.Loc(l)])
	}
	return b.String()
}

// EnumOptions configures execution enumeration.
type EnumOptions struct {
	// Quantum applies the quantum transformation (Section 3.4.3): quantum
	// loads return arbitrary domain values, quantum stores write
	// arbitrary domain values.
	Quantum bool
	// Limit bounds the number of executions produced (0 = DefaultLimit).
	Limit int
}

// DefaultLimit bounds enumeration to keep litmus tests tractable.
const DefaultLimit = 500_000

// ErrLimit is returned when enumeration exceeds its execution budget.
var ErrLimit = fmt.Errorf("memmodel: execution limit exceeded")

// eventLayout precomputes the static event numbering of a program.
type eventLayout struct {
	// id[t][i] is the event ID of thread t's op i, or -1 for branches.
	id [][]int
	// n is the total number of events.
	n int
}

func layout(p *litmus.Program) eventLayout {
	var l eventLayout
	l.id = make([][]int, len(p.Threads))
	for t, th := range p.Threads {
		l.id[t] = make([]int, len(th.Ops))
		for i, op := range th.Ops {
			if op.IsBranch {
				l.id[t][i] = -1
				continue
			}
			l.id[t][i] = l.n
			l.n++
		}
	}
	return l
}

// QuantumDomain returns the value domain used for randomized quantum
// accesses: the program's explicit domain if set, otherwise every constant
// appearing in the program plus {0, 1}.
func QuantumDomain(p *litmus.Program) []int64 {
	if len(p.QuantumDomain) > 0 {
		return append([]int64(nil), p.QuantumDomain...)
	}
	set := map[int64]bool{0: true, 1: true}
	for _, v := range p.Init {
		set[v] = true
	}
	for _, t := range p.Threads {
		for _, o := range t.Ops {
			if o.IsBranch {
				continue
			}
			set[o.Operand.Const] = true
			set[o.Expected.Const] = true
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type enumerator struct {
	prog   *litmus.Program
	lay    eventLayout
	opts   EnumOptions
	domain []int64

	// mutable search state
	pc      []int
	mem     map[litmus.Loc]int64
	lastW   map[litmus.Loc]int // event ID of last writer, -1 init
	regs    [][]int64
	order   []int
	loaded  []int64
	stored  []int64
	rf      []int
	random  []bool
	present []bool

	execs []*Execution
	err   error
}

// Enumerate produces every SC execution of the program (or of its
// quantum-equivalent program when opts.Quantum is set).
func Enumerate(p *litmus.Program, opts EnumOptions) ([]*Execution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Limit == 0 {
		opts.Limit = DefaultLimit
	}
	e := &enumerator{
		prog:   p,
		lay:    layout(p),
		opts:   opts,
		domain: QuantumDomain(p),
		pc:     make([]int, len(p.Threads)),
		mem:    map[litmus.Loc]int64{},
		lastW:  map[litmus.Loc]int{},
		order:  make([]int, 0, 16),
	}
	for _, l := range p.Locs() {
		e.mem[l] = p.Init[l]
		e.lastW[l] = -1
	}
	e.regs = make([][]int64, len(p.Threads))
	for t, th := range p.Threads {
		e.regs[t] = make([]int64, th.NumRegs())
	}
	n := e.lay.n
	e.loaded = make([]int64, n)
	e.stored = make([]int64, n)
	e.rf = make([]int, n)
	e.random = make([]bool, n)
	e.present = make([]bool, n)
	e.step()
	if e.err != nil {
		return nil, e.err
	}
	return e.execs, nil
}

// step is the DFS over interleavings (and quantum value choices).
func (e *enumerator) step() {
	if e.err != nil {
		return
	}
	done := true
	for t := range e.prog.Threads {
		if e.pc[t] < len(e.prog.Threads[t].Ops) {
			done = false
			op := e.prog.Threads[t].Ops[e.pc[t]]
			// Consume branch markers and disabled guarded ops eagerly:
			// they are thread-local no-ops (guard values are fixed once
			// the thread reaches them) and must not multiply
			// interleavings.
			if op.IsBranch || (len(op.Guards) > 0 && !op.GuardsHold(e.regs[t])) {
				e.pc[t]++
				e.step()
				e.pc[t]--
				return
			}
		}
	}
	if done {
		e.record()
		return
	}
	for t := range e.prog.Threads {
		if e.pc[t] >= len(e.prog.Threads[t].Ops) {
			continue
		}
		op := e.prog.Threads[t].Ops[e.pc[t]]
		if op.IsBranch {
			continue // handled above; only one branch head processed per level
		}
		e.exec(t, op)
	}
}

// exec runs thread t's current op with all applicable value choices,
// recursing after each.
func (e *enumerator) exec(t int, op litmus.Op) {
	id := e.lay.id[t][e.pc[t]]
	quantum := e.opts.Quantum && op.Class == core.Quantum
	loadChoices := []int64{0}
	storeChoices := []int64{0}
	if quantum {
		if op.Reads() {
			loadChoices = e.domain
		}
		if op.Writes() {
			storeChoices = e.domain
		}
	}
	for _, lv := range loadChoices {
		for _, sv := range storeChoices {
			e.execOne(t, op, id, quantum, lv, sv)
			if e.err != nil {
				return
			}
		}
	}
}

func (e *enumerator) execOne(t int, op litmus.Op, id int, quantum bool, qload, qstore int64) {
	loc := op.Loc
	oldMem := e.mem[loc]
	oldLast := e.lastW[loc]
	var oldReg int64
	if op.Dst != litmus.NoReg {
		oldReg = e.regs[t][op.Dst]
	}

	// Perform the access.
	loaded := oldMem
	e.rf[id] = oldLast
	if quantum && op.Reads() {
		loaded = qload
		e.rf[id] = -1
	}
	e.loaded[id] = loaded
	e.random[id] = quantum
	if op.Dst != litmus.NoReg {
		e.regs[t][op.Dst] = loaded
	}
	if op.Writes() {
		var newVal int64
		if quantum {
			newVal = qstore
		} else {
			operand := op.Operand.Eval(e.regs[t])
			expected := op.Expected.Eval(e.regs[t])
			newVal = op.AOp.Apply(oldMem, operand, expected)
		}
		e.mem[loc] = newVal
		e.lastW[loc] = id
		e.stored[id] = newVal
	}
	e.order = append(e.order, id)
	e.present[id] = true
	e.pc[t]++

	e.step()

	// Undo.
	e.pc[t]--
	e.present[id] = false
	e.order = e.order[:len(e.order)-1]
	if op.Writes() {
		e.mem[loc] = oldMem
		e.lastW[loc] = oldLast
	}
	if op.Dst != litmus.NoReg {
		e.regs[t][op.Dst] = oldReg
	}
}

// record snapshots the completed execution.
func (e *enumerator) record() {
	if len(e.execs) >= e.opts.Limit {
		e.err = fmt.Errorf("%w (limit %d, program %s)", ErrLimit, e.opts.Limit, e.prog.Name)
		return
	}
	ex := &Execution{
		Prog:    e.prog,
		Events:  make([]Event, e.lay.n),
		Order:   append([]int(nil), e.order...),
		RF:      append([]int(nil), e.rf...),
		Present: append([]bool(nil), e.present...),
		Final:   make(map[litmus.Loc]int64, len(e.mem)),
	}
	for l, v := range e.mem {
		ex.Final[l] = v
	}
	for t, th := range e.prog.Threads {
		for i, op := range th.Ops {
			id := e.lay.id[t][i]
			if id < 0 {
				continue
			}
			ex.Events[id] = Event{
				ID: id, Thread: t, OpIndex: i, Op: op, TPos: -1,
				Loaded: e.loaded[id], Stored: e.stored[id], Randomized: e.random[id],
			}
			if !e.present[id] {
				ex.Events[id].Loaded = 0
				ex.Events[id].Stored = 0
				ex.Events[id].Randomized = false
				ex.RF[id] = -1
			}
		}
	}
	for pos, id := range ex.Order {
		ex.Events[id].TPos = pos
	}
	ex.Regs = make([][]int64, len(e.regs))
	for t := range e.regs {
		ex.Regs[t] = append([]int64(nil), e.regs[t]...)
	}
	e.execs = append(e.execs, ex)
}

// Results returns the set of distinct final memory states over a slice of
// executions, keyed by ResultKey.
func Results(execs []*Execution) map[string]map[litmus.Loc]int64 {
	out := map[string]map[litmus.Loc]int64{}
	for _, e := range execs {
		out[e.ResultKey()] = e.Final
	}
	return out
}
