package memsys

import (
	"fmt"

	"rats/internal/probe"
	"rats/internal/sim/cache"
	"rats/internal/sim/noc"
)

// txnIDOf extracts the transaction id from an MSHR waiter for probe
// attribution.
func txnIDOf(w cache.Waiter) int64 {
	if w.Txn != nil {
		return w.Txn.(*Txn).ID
	}
	return w.Store.Txn
}

// L1 is a per-node first-level cache controller. Protocol behaviour
// (GPU coherence vs. DeNovo) is selected by the configuration:
//
//	GPU:    write-through no-allocate; atomics forwarded to the home L2
//	        bank; acquire flash-invalidates everything.
//	DeNovo: writeback with ownership; stores and atomics obtain ownership
//	        and then perform locally; same-line requests coalesce in the
//	        MSHR; acquire invalidates only non-owned lines.
type L1 struct {
	env  *Env
	node int

	array *cache.Array
	mshr  *cache.MSHR
	sb    *cache.StoreBuffer

	// pendingAtomics tracks GPU-coherence atomics in flight to L2 banks.
	pendingAtomics map[int64]*Txn
	// atomicFree is the cycle the local (DeNovo) atomic unit frees up.
	atomicFree int64
	// pendingFwds queues ownership-yield requests that arrived while this
	// L1's own ownership request for the line was still in flight (the
	// L2 registry can hand ownership onward before the previous grant
	// lands). The yield is performed once ownership arrives and the
	// queued local operations have drained.
	pendingFwds map[uint64][]noc.Payload

	// waiterScratch and needOwnScratch are reusable buffers for draining
	// MSHR waiter lists in response handlers (steady state allocates
	// nothing).
	waiterScratch  []cache.Waiter
	needOwnScratch []cache.Waiter

	flushCbs []func(int64)
}

// NewL1 builds the controller for a node.
func NewL1(env *Env, node int) *L1 {
	return &L1{
		env:            env,
		node:           node,
		array:          cache.NewArray(env.Cfg.L1Sets, env.Cfg.L1Ways),
		mshr:           cache.NewMSHR(env.Cfg.L1MSHRs, env.Cfg.L1MSHRTargets),
		sb:             cache.NewStoreBuffer(env.Cfg.StoreBuffer),
		pendingAtomics: map[int64]*Txn{},
		pendingFwds:    map[uint64][]noc.Payload{},
	}
}

// AttachProbe routes this controller's structure events (MSHR, store
// buffer) to the hub; the controller's own events go through env.Probe.
func (l *L1) AttachProbe(h *probe.Hub) {
	l.mshr.AttachProbe(h, l.node)
	l.sb.AttachProbe(h, l.node)
}

// emitTxn reports a tag-lookup outcome (or similar per-transaction
// event) when a probe hub is attached.
func (l *L1) emitTxn(cycle int64, kind probe.Kind, txn *Txn) {
	if h := l.env.Probe; h != nil {
		h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompL1, Node: l.node,
			Warp: txn.Warp, Kind: kind, Txn: txn.ID, Addr: txn.Addr})
	}
}

// complete finishes a transaction: the TxnComplete event closes its
// latency span, then the Done callback fires. The transaction must not
// be touched afterwards (its issuer may recycle it).
func (l *L1) complete(cycle int64, txn *Txn, value int64) {
	if h := l.env.Probe; h != nil {
		h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompL1, Node: l.node,
			Warp: txn.Warp, Kind: probe.TxnComplete, Txn: txn.ID, Addr: txn.Addr})
	}
	txn.Done.TxnDone(txn, cycle, value)
}

func (l *L1) send(cycle int64, dst, flits int, txn int64, p noc.Payload) {
	l.env.Mesh.Send(cycle, noc.Message{Src: l.node, Dst: dst, Flits: flits, Txn: txn, Payload: p})
}

func (l *L1) home(line uint64) int { return l.env.Cfg.HomeNode(line) }

// mshrFull reports whether a new MSHR entry cannot be allocated at this
// cycle, honouring injected capacity-pressure windows. Pressure applies
// only at these issue boundaries; response handlers use the real capacity
// so in-flight protocol state never exceeds it.
func (l *L1) mshrFull(cycle int64) bool {
	if l.mshr.Full() {
		return true
	}
	if f := l.env.Fault; f != nil && l.mshr.Outstanding() >= f.MSHRCap(cycle, l.env.Cfg.L1MSHRs) {
		return true
	}
	return false
}

// sbFull reports whether the store buffer cannot accept another store at
// this cycle, honouring injected capacity-pressure windows.
func (l *L1) sbFull(cycle int64) bool {
	if l.sb.Full() {
		return true
	}
	if f := l.env.Fault; f != nil && l.sb.Len() >= f.SBCap(cycle, l.env.Cfg.StoreBuffer) {
		return true
	}
	return false
}

// insertLine fills a line, writing back an evicted owned victim.
func (l *L1) insertLine(cycle int64, line uint64, st cache.State, dirty bool) {
	v, evicted := l.array.Insert(line, st, dirty)
	if evicted && v.State == cache.Owned {
		l.env.Stats.Writebacks++
		if h := l.env.Probe; h != nil {
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompL1, Node: l.node, Warp: -1,
				Kind: probe.Writeback, Addr: v.LineAddr * l.env.Cfg.LineSize})
		}
		l.send(cycle, l.home(v.LineAddr), l.env.Cfg.DataFlits, 0,
			noc.Payload{Kind: pkWbReq, Line: v.LineAddr, Requester: l.node})
	}
}

// TryIssue accepts one transaction from the compute unit. It returns
// false when a resource (MSHR, store buffer, atomic tracker) is full; the
// caller retries next cycle.
func (l *L1) TryIssue(cycle int64, txn *Txn) bool {
	cfg := l.env.Cfg
	st := l.env.Stats
	line := txn.Addr / cfg.LineSize

	switch txn.Kind {
	case TxnLoad:
		if l.array.Lookup(line) != cache.Invalid {
			st.L1Accesses++
			st.L1Hits++
			l.emitTxn(cycle, probe.CacheHit, txn)
			l.env.At(cycle+cfg.L1HitLat, Deferred{kind: deferCompleteRead, l1: l, txn: txn})
			return true
		}
		if e := l.mshr.Lookup(line); e != nil {
			if !l.mshr.CanCoalesce(e) {
				st.WarpIssueStalls++
				return false
			}
			st.L1Accesses++
			st.L1Misses++
			st.MSHRCoalesced++
			l.emitTxn(cycle, probe.CacheMiss, txn)
			l.mshr.Coalesce(e, cache.Waiter{Txn: txn}, txn.ID)
			return true
		}
		if l.mshrFull(cycle) {
			st.WarpIssueStalls++
			return false
		}
		st.L1Accesses++
		st.L1Misses++
		l.emitTxn(cycle, probe.CacheMiss, txn)
		e := l.mshr.Allocate(line, false, txn.ID)
		e.Waiters = append(e.Waiters, cache.Waiter{Txn: txn})
		l.send(cycle, l.home(line), cfg.ControlFlits, txn.ID,
			noc.Payload{Kind: pkReadReq, Line: line, Requester: l.node, Txn: txn.ID})
		return true

	case TxnStore:
		if l.sbFull(cycle) {
			st.StoreBufferFullStalls++
			return false
		}
		l.sb.Push(cache.SBEntry{Line: line, Txn: txn.ID})
		l.env.At(cycle+1, Deferred{kind: deferComplete, l1: l, txn: txn, value: 0})
		return true

	case TxnAtomic:
		if txn.LocalScope {
			// HRF work-group scope: the atomic is private to this CU
			// until the next global synchronization, so it performs at
			// the L1 with no coherence traffic under either protocol.
			st.L1Accesses++
			st.L1Hits++
			l.emitTxn(cycle, probe.CacheHit, txn)
			l.performLocalAtomic(cycle, txn)
			return true
		}
		if cfg.Protocol == ProtoGPU {
			atomicCap := cfg.L1MSHRs
			if f := l.env.Fault; f != nil {
				atomicCap = f.MSHRCap(cycle, atomicCap)
			}
			if len(l.pendingAtomics) >= atomicCap {
				st.WarpIssueStalls++
				return false
			}
			l.pendingAtomics[txn.ID] = txn
			l.send(cycle, l.home(line), cfg.ControlFlits, txn.ID, noc.Payload{
				Kind: pkAtomicReq, Line: txn.Addr, Requester: l.node,
				Txn: txn.ID, Op: uint8(txn.AOp), Operand: txn.Operand,
			})
			return true
		}
		// DeNovo: perform locally once owned.
		if l.array.Lookup(line) == cache.Owned {
			st.L1Accesses++
			st.L1Hits++
			l.emitTxn(cycle, probe.CacheHit, txn)
			l.performLocalAtomic(cycle, txn)
			return true
		}
		if e := l.mshr.Lookup(line); e != nil {
			if !l.mshr.CanCoalesce(e) {
				st.WarpIssueStalls++
				return false
			}
			st.L1Accesses++
			st.L1Misses++
			st.MSHRCoalesced++
			l.emitTxn(cycle, probe.CacheMiss, txn)
			l.mshr.Coalesce(e, cache.Waiter{Txn: txn}, txn.ID)
			e.WantOwnership = true
			return true
		}
		if l.mshrFull(cycle) {
			st.WarpIssueStalls++
			return false
		}
		st.L1Accesses++
		st.L1Misses++
		l.emitTxn(cycle, probe.CacheMiss, txn)
		l.emitTxn(cycle, probe.OwnershipRequest, txn)
		e := l.mshr.Allocate(line, true, txn.ID)
		e.Waiters = append(e.Waiters, cache.Waiter{Txn: txn})
		l.send(cycle, l.home(line), cfg.ControlFlits, txn.ID,
			noc.Payload{Kind: pkOwnReq, Line: line, Requester: l.node, Txn: txn.ID})
		return true
	}
	panic("memsys: unknown txn kind")
}

// performLocalAtomic books a DeNovo atomic into the L1 atomic unit and
// schedules its perform.
func (l *L1) performLocalAtomic(cycle int64, txn *Txn) {
	cfg := l.env.Cfg
	start := cycle + cfg.L1HitLat
	if l.atomicFree > start {
		start = l.atomicFree
	}
	done := start + cfg.L1AtomicOccupancy
	l.atomicFree = done
	l.env.At(done, Deferred{kind: deferLocalAtomic, l1: l, txn: txn})
}

// fireLocalAtomic runs the scheduled atomic through the value layer.
func (l *L1) fireLocalAtomic(cycle int64, txn *Txn) {
	l.env.Stats.Atomics++
	l.env.Stats.AtomicsAtL1++
	l.emitTxn(cycle, probe.AtomicPerformed, txn)
	old := l.env.ApplyAtomic(txn.Addr, txn.AOp, txn.Operand)
	l.complete(cycle, txn, old)
}

// yieldOwnership invalidates the local copy and grants ownership to the
// forwarded requester.
func (l *L1) yieldOwnership(cycle int64, m noc.Payload) {
	if l.array.Peek(m.Line) == cache.Owned {
		l.array.Invalidate(m.Line)
	}
	l.send(cycle+l.env.Cfg.L1HitLat, m.Requester, l.env.Cfg.DataFlits, m.Txn,
		noc.Payload{Kind: pkOwnResp, Line: m.Line, Txn: m.Txn})
}

// Handle processes a delivered network message.
func (l *L1) Handle(cycle int64, p noc.Payload) {
	cfg := l.env.Cfg
	st := l.env.Stats
	switch p.Kind {
	case pkReadResp:
		l.insertLine(cycle, p.Line, cache.Valid, false)
		waiters := l.mshr.Release(p.Line, l.waiterScratch[:0])
		needOwn := l.needOwnScratch[:0]
		for _, w := range waiters {
			if w.Txn != nil {
				if txn := w.Txn.(*Txn); txn.Kind == TxnLoad {
					l.env.At(cycle+1, Deferred{kind: deferCompleteRead, l1: l, txn: txn})
				} else {
					needOwn = append(needOwn, w)
				}
			} else {
				needOwn = append(needOwn, w)
			}
		}
		if len(needOwn) > 0 {
			// The read raced with writers that joined the entry: the line
			// arrived readable but the writers still need ownership. The
			// re-request is attributed to the first waiting writer.
			lead := txnIDOf(needOwn[0])
			e := l.mshr.Allocate(p.Line, true, lead)
			e.Waiters = append(e.Waiters, needOwn...)
			l.send(cycle, l.home(p.Line), cfg.ControlFlits, lead,
				noc.Payload{Kind: pkOwnReq, Line: p.Line, Requester: l.node, Txn: lead})
		}
		l.waiterScratch = waiters[:0]
		l.needOwnScratch = needOwn[:0]

	case pkOwnResp:
		l.insertLine(cycle, p.Line, cache.Owned, true)
		waiters := l.mshr.Release(p.Line, l.waiterScratch[:0])
		for _, w := range waiters {
			if w.Txn != nil {
				if txn := w.Txn.(*Txn); txn.Kind == TxnLoad {
					l.env.At(cycle+1, Deferred{kind: deferCompleteRead, l1: l, txn: txn})
				} else {
					l.performLocalAtomic(cycle, txn)
				}
			} else {
				l.sb.Ack()
			}
		}
		l.waiterScratch = waiters[:0]
		// Ownership was already handed onward by the L2 while our request
		// was in flight: yield after the queued local work drains.
		if fwds := l.pendingFwds[p.Line]; len(fwds) > 0 {
			delete(l.pendingFwds, p.Line)
			when := cycle + 1
			if l.atomicFree > when {
				when = l.atomicFree
			}
			l.env.At(when, deferCall(func(c int64) {
				for _, f := range fwds {
					l.yieldOwnership(c, f)
				}
			}))
		}

	case pkFwdRead:
		// Serve a remote reader from the owned copy; keep ownership.
		st.L1Accesses++
		l.send(cycle+cfg.L1HitLat, p.Requester, cfg.DataFlits, p.Txn,
			noc.Payload{Kind: pkReadResp, Line: p.Line, Txn: p.Txn})

	case pkFwdOwn:
		st.L1Accesses++
		if e := l.mshr.Lookup(p.Line); e != nil && e.WantOwnership && l.array.Peek(p.Line) != cache.Owned {
			// Our own ownership request is still in flight: defer the
			// yield until it lands (otherwise two L1s would both believe
			// they own the line).
			l.pendingFwds[p.Line] = append(l.pendingFwds[p.Line], p)
			break
		}
		l.yieldOwnership(cycle, p)

	case pkWtAck:
		l.sb.Ack()

	case pkAtomicResp:
		txn := l.pendingAtomics[p.Txn]
		if txn == nil {
			panic(fmt.Sprintf("memsys: node %d atomic response for unknown id %d", l.node, p.Txn))
		}
		delete(l.pendingAtomics, p.Txn)
		l.env.At(cycle+1, Deferred{kind: deferComplete, l1: l, txn: txn, value: p.Operand})

	default:
		panic("memsys: L1 received unknown message")
	}
}

// Tick drains the store buffer (one entry per cycle) and fires flush
// callbacks once drained.
func (l *L1) Tick(cycle int64) {
	cfg := l.env.Cfg
	st := l.env.Stats
	if entry, ok := l.sb.Peek(); ok {
		if cfg.Protocol == ProtoGPU {
			st.L1Accesses++
			l.sb.Pop()
			l.send(cycle, l.home(entry.Line), cfg.DataFlits, entry.Txn,
				noc.Payload{Kind: pkWtReq, Line: entry.Line, Requester: l.node})
		} else {
			switch {
			case l.array.Lookup(entry.Line) == cache.Owned:
				st.L1Accesses++
				st.L1Hits++
				l.array.SetDirty(entry.Line)
				l.sb.Pop()
				l.sb.Ack()
			case l.mshr.Lookup(entry.Line) != nil && l.mshr.CanCoalesce(l.mshr.Lookup(entry.Line)):
				st.L1Accesses++
				st.L1Misses++
				st.MSHRCoalesced++
				e := l.mshr.Lookup(entry.Line)
				l.mshr.Coalesce(e, cache.Waiter{Store: entry}, entry.Txn)
				e.WantOwnership = true
				l.sb.Pop()
			case !l.mshrFull(cycle):
				st.L1Accesses++
				st.L1Misses++
				me := l.mshr.Allocate(entry.Line, true, entry.Txn)
				me.Waiters = append(me.Waiters, cache.Waiter{Store: entry})
				l.sb.Pop()
				if h := l.env.Probe; h != nil {
					h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompL1, Node: l.node, Warp: -1,
						Kind: probe.OwnershipRequest, Txn: entry.Txn, Addr: entry.Line * cfg.LineSize})
				}
				l.send(cycle, l.home(entry.Line), cfg.ControlFlits, entry.Txn,
					noc.Payload{Kind: pkOwnReq, Line: entry.Line, Requester: l.node, Txn: entry.Txn})
			default:
				// MSHR full: retry next cycle.
			}
		}
	}
	if len(l.flushCbs) > 0 && l.sb.Drained() {
		cbs := l.flushCbs
		l.flushCbs = nil
		for _, cb := range cbs {
			cb(cycle)
		}
	}
}

// Flush registers a callback fired when the store buffer has fully
// drained (a release action).
func (l *L1) Flush(cycle int64, cb func(int64)) {
	if l.sb.Drained() {
		cb(cycle)
		return
	}
	l.flushCbs = append(l.flushCbs, cb)
}

// SBDrained reports whether the store buffer is empty and acknowledged.
func (l *L1) SBDrained() bool { return l.sb.Drained() }

// NextWork returns the earliest cycle this controller acts on its own:
// the store buffer drains (or retries) one entry per cycle while it
// holds pending or unacked stores. Everything else the L1 does — MSHR
// fills, forwarded requests, flush completion — happens in response to
// deliveries or scheduled events, which are processed cycles already.
func (l *L1) NextWork(cycle int64) int64 {
	if !l.sb.Drained() {
		return cycle + 1
	}
	return -1
}

// SBFull reports whether the store buffer cannot accept another store
// (probe stall attribution).
func (l *L1) SBFull() bool { return l.sb.Full() }

// AcquireInvalidate performs the acquire-side self-invalidation: GPU
// coherence drops everything; DeNovo keeps owned lines.
func (l *L1) AcquireInvalidate() {
	st := l.env.Stats
	st.AcquireInvalidations++
	var keep func(cache.Line) bool
	if l.env.Cfg.Protocol == ProtoDeNovo {
		keep = func(ln cache.Line) bool { return ln.State == cache.Owned }
	}
	dropped := int64(l.array.FlashInvalidate(keep))
	st.LinesInvalidated += dropped
	if h := l.env.Probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: l.node, Warp: -1,
			Kind: probe.AcquireInvalidation, Arg: dropped})
	}
}

// L1Diag is one controller's occupancy snapshot for liveness diagnostics
// and the always-on invariant checks.
type L1Diag struct {
	Node            int
	MSHROutstanding int
	MSHRCapacity    int
	SBQueued        int
	SBCapacity      int
	SBUnacked       int
	PendingAtomics  int
	PendingForwards int
	FlushWaiters    int
}

// Busy reports whether the controller holds any outstanding work.
func (d L1Diag) Busy() bool {
	return d.MSHROutstanding > 0 || d.SBQueued > 0 || d.SBUnacked > 0 ||
		d.PendingAtomics > 0 || d.PendingForwards > 0 || d.FlushWaiters > 0
}

// Diag snapshots the controller's occupancy.
func (l *L1) Diag() L1Diag {
	return L1Diag{
		Node:            l.node,
		MSHROutstanding: l.mshr.Outstanding(),
		MSHRCapacity:    l.env.Cfg.L1MSHRs,
		SBQueued:        l.sb.Len(),
		SBCapacity:      l.env.Cfg.StoreBuffer,
		SBUnacked:       l.sb.Unacked(),
		PendingAtomics:  len(l.pendingAtomics),
		PendingForwards: len(l.pendingFwds),
		FlushWaiters:    len(l.flushCbs),
	}
}

// Quiesced reports whether the controller has no outstanding work.
func (l *L1) Quiesced() bool {
	return l.mshr.Outstanding() == 0 && l.sb.Drained() &&
		len(l.pendingAtomics) == 0 && len(l.flushCbs) == 0 &&
		len(l.pendingFwds) == 0
}

// OwnsLine reports whether the L1 currently holds the line in Owned
// state (test introspection).
func (l *L1) OwnsLine(line uint64) bool { return l.array.Peek(line) == cache.Owned }

// HoldsLine reports whether the L1 holds the line in any readable state
// (test introspection).
func (l *L1) HoldsLine(line uint64) bool { return l.array.Peek(line) != cache.Invalid }
