package probe_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"rats/internal/core"
	"rats/internal/probe"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
)

// ev builds a minimal transaction-keyed event for synthetic streams.
func ev(cycle int64, comp probe.Component, kind probe.Kind, txn int64) probe.Event {
	return probe.Event{Cycle: cycle, Comp: comp, Kind: kind, Txn: txn}
}

// push builds the span-opening CoalescerPush event (Aux carries the op
// class, as emitted by the CU).
func push(cycle int64, txn int64, op probe.SpanOp) probe.Event {
	return probe.Event{Cycle: cycle, Comp: probe.CompCU, Kind: probe.CoalescerPush,
		Txn: txn, Aux: int64(op), Warp: 3, Node: 2, Addr: 0x40}
}

// sumSegs is the span invariant's left-hand side.
func sumSegs(sp probe.Span) int64 {
	var sum int64
	for _, v := range sp.Segs {
		sum += v
	}
	return sum
}

// TestSpanReassemblyMissPath drives a synthetic L1-miss-to-DRAM load
// through the sink and checks the exact per-segment attribution: every
// gap lands in the segment implied by the previous event, and the
// segments sum to the span duration.
func TestSpanReassemblyMissPath(t *testing.T) {
	var spans []probe.Span
	s := probe.NewSpanSink(func(sp probe.Span) { spans = append(spans, sp) })

	s.Emit(push(10, 1, probe.SpanLoad))
	s.Emit(ev(14, probe.CompCU, probe.CoalescerDrain, 1))  // coalescer += 4
	s.Emit(ev(15, probe.CompL1, probe.CacheMiss, 1))       // l1 += 1
	s.Emit(ev(15, probe.CompL1, probe.MSHRAlloc, 1))       // zero gap
	s.Emit(ev(16, probe.CompL1, probe.NoCEnqueue, 1))      // mshr ends, l1? no: mode was MSHR -> mshr += 1
	s.Emit(ev(22, probe.CompNoC, probe.NoCDeliver, 1))     // noc += 6
	s.Emit(ev(23, probe.CompL2, probe.CacheMiss, 1))       // post-NoC at L2: l2 += 1
	s.Emit(ev(48, probe.CompL2, probe.DRAMAccess, 1))      // l2 += 25
	s.Emit(ev(210, probe.CompL2, probe.NoCEnqueue, 1))     // mem += 162
	s.Emit(ev(218, probe.CompNoC, probe.NoCDeliver, 1))    // noc += 8
	s.Emit(ev(220, probe.CompL1, probe.TxnComplete, 1))    // post-NoC at L1: l1 += 2

	if len(spans) != 1 {
		t.Fatalf("completed %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Op != probe.SpanLoad || sp.Level != probe.HitMem {
		t.Errorf("span classified as %s/%s, want load/mem", sp.Op, sp.Level)
	}
	if sp.Start != 10 || sp.End != 220 {
		t.Errorf("span window [%d,%d], want [10,220]", sp.Start, sp.End)
	}
	want := map[probe.Seg]int64{
		probe.SegCoalescer: 4, probe.SegL1: 1 + 2, probe.SegMSHR: 1,
		probe.SegNoC: 6 + 8, probe.SegL2: 1 + 25, probe.SegMem: 162,
	}
	for seg, w := range want {
		if sp.Segs[seg] != w {
			t.Errorf("seg %s = %d, want %d", seg, sp.Segs[seg], w)
		}
	}
	if got := sumSegs(sp); got != sp.End-sp.Start {
		t.Errorf("segments sum to %d, span duration is %d", got, sp.End-sp.Start)
	}
	if s.Open() != 0 || s.Completed() != 1 {
		t.Errorf("open=%d completed=%d, want 0/1", s.Open(), s.Completed())
	}
}

// TestSpanOutOfOrderDelivery: an event behind the transaction's clock
// must be tolerated (counted, charged zero) without breaking the
// segments-sum-to-duration invariant.
func TestSpanOutOfOrderDelivery(t *testing.T) {
	var spans []probe.Span
	s := probe.NewSpanSink(func(sp probe.Span) { spans = append(spans, sp) })

	s.Emit(push(10, 7, probe.SpanAtomic))
	s.Emit(ev(20, probe.CompL1, probe.CacheHit, 7))
	s.Emit(ev(15, probe.CompNoC, probe.NoCEnqueue, 7)) // behind the clock
	s.Emit(ev(25, probe.CompL1, probe.TxnComplete, 7))

	if s.OutOfOrder() != 1 {
		t.Errorf("out-of-order count = %d, want 1", s.OutOfOrder())
	}
	if len(spans) != 1 {
		t.Fatalf("completed %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if got := sumSegs(sp); got != sp.End-sp.Start {
		t.Errorf("segments sum to %d, span duration is %d", got, sp.End-sp.Start)
	}
	if sp.End != 25 {
		t.Errorf("end = %d, want 25 (clock must never go backwards)", sp.End)
	}
}

// TestSpanCoalescedSecondaryMiss: an MSHR-coalesced secondary must get
// its waiting time attributed to the MSHR segment, and both primary and
// secondary must complete without leaking open state.
func TestSpanCoalescedSecondaryMiss(t *testing.T) {
	got := map[int64]probe.Span{}
	s := probe.NewSpanSink(func(sp probe.Span) { got[sp.Txn] = sp })

	s.Emit(push(0, 1, probe.SpanLoad))
	s.Emit(push(1, 2, probe.SpanLoad))
	s.Emit(ev(2, probe.CompCU, probe.CoalescerDrain, 1))
	s.Emit(ev(3, probe.CompL1, probe.CacheMiss, 1))
	s.Emit(ev(3, probe.CompL1, probe.MSHRAlloc, 1))
	s.Emit(ev(4, probe.CompCU, probe.CoalescerDrain, 2))
	s.Emit(ev(5, probe.CompL1, probe.CacheMiss, 2))
	s.Emit(ev(5, probe.CompL1, probe.MSHRCoalesce, 2))
	s.Emit(ev(100, probe.CompL1, probe.TxnComplete, 1))
	s.Emit(ev(100, probe.CompL1, probe.TxnComplete, 2))

	if len(got) != 2 || s.Open() != 0 {
		t.Fatalf("completed %d spans with %d open, want 2/0", len(got), s.Open())
	}
	sec := got[2]
	if sec.Segs[probe.SegMSHR] != 95 {
		t.Errorf("secondary MSHR wait = %d, want 95", sec.Segs[probe.SegMSHR])
	}
	for txn, sp := range got {
		if sum := sumSegs(sp); sum != sp.End-sp.Start {
			t.Errorf("txn %d: segments sum to %d, duration %d", txn, sum, sp.End-sp.Start)
		}
	}
}

// TestSpanDroppedAndUnknown: unterminated spans stay open (observable,
// bounded) and events for unknown or zero transactions are ignored — no
// leak, no panic.
func TestSpanDroppedAndUnknown(t *testing.T) {
	s := probe.NewSpanSink(nil)

	// Unknown transaction: mid-flight events with no opening push (e.g.
	// a store draining from the store buffer after its span completed).
	s.Emit(ev(5, probe.CompL1, probe.CacheMiss, 42))
	s.Emit(ev(6, probe.CompL1, probe.TxnComplete, 42))
	// Zero transaction id: not attributable.
	s.Emit(ev(7, probe.CompL2, probe.CacheHit, 0))
	if s.Open() != 0 || s.Completed() != 0 {
		t.Fatalf("unknown-txn events created state: open=%d completed=%d", s.Open(), s.Completed())
	}

	// A pushed span that never completes (watchdog abort) stays open.
	s.Emit(push(10, 1, probe.SpanStore))
	s.Emit(ev(12, probe.CompL1, probe.CacheHit, 1))
	if s.Open() != 1 {
		t.Fatalf("open = %d, want 1 unterminated span", s.Open())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close with an open span: %v", err)
	}
	if s.Completed() != 0 {
		t.Errorf("unterminated span was counted as completed")
	}
}

// spanConfigs spans both protocols and the consistency-model extremes.
func spanConfigs() map[string]memsys.Config {
	return map[string]memsys.Config{
		"GD0": memsys.Default(memsys.ProtoGPU, core.DRF0),
		"GDR": memsys.Default(memsys.ProtoGPU, core.DRFrlx),
		"DD0": memsys.Default(memsys.ProtoDeNovo, core.DRF0),
		"DDR": memsys.Default(memsys.ProtoDeNovo, core.DRFrlx),
	}
}

// TestSpanInvariantRealRuns runs the two-warp workload under both
// protocols and the consistency extremes, asserting the structural span
// invariants on the real event stream: every span's segments sum to its
// duration, and every transaction completes.
func TestSpanInvariantRealRuns(t *testing.T) {
	for name, cfg := range spanConfigs() {
		t.Run(name, func(t *testing.T) {
			var spans []probe.Span
			sink := probe.NewSpanSink(func(sp probe.Span) { spans = append(spans, sp) })
			hub := probe.NewHub()
			hub.Attach(sink)
			sys := system.New(cfg)
			sys.AttachProbe(hub)
			if err := sys.Load(twoWarpTrace()); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if len(spans) == 0 {
				t.Fatal("no spans completed")
			}
			if n := sink.Open(); n != 0 {
				t.Errorf("%d spans left open after a successful run", n)
			}
			for _, sp := range spans {
				if sp.End < sp.Start {
					t.Fatalf("txn %d: end %d before start %d", sp.Txn, sp.End, sp.Start)
				}
				if sum := sumSegs(sp); sum != sp.End-sp.Start {
					t.Errorf("txn %d (%s/%s): segments sum to %d, duration %d",
						sp.Txn, sp.Op, sp.Level, sum, sp.End-sp.Start)
				}
				if sp.Op >= probe.NumSpanOps || sp.Level >= probe.NumHitLevels {
					t.Errorf("txn %d: out-of-range classification %d/%d", sp.Txn, sp.Op, sp.Level)
				}
			}
		})
	}
}

// TestSpanWriterDeterministic: the same workload and configuration must
// produce byte-identical span JSONL across runs, and every line must be
// valid JSON whose segments sum to its duration.
func TestSpanWriterDeterministic(t *testing.T) {
	runOnce := func() []byte {
		var buf bytes.Buffer
		hub := probe.NewHub()
		hub.Attach(probe.NewSpanWriter(&buf))
		runWithHub(t, hub)
		return buf.Bytes()
	}
	first := runOnce()
	second := runOnce()
	if !bytes.Equal(first, second) {
		t.Errorf("span stream not deterministic: %d vs %d bytes", len(first), len(second))
	}

	sc := bufio.NewScanner(bytes.NewReader(first))
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Start int64            `json:"start"`
			End   int64            `json:"end"`
			Segs  map[string]int64 `json:"segs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		var sum int64
		for _, v := range rec.Segs {
			sum += v
		}
		if sum != rec.End-rec.Start {
			t.Errorf("line %d: segments sum to %d, duration %d", lines, sum, rec.End-rec.Start)
		}
	}
	if lines == 0 {
		t.Fatal("span writer produced no lines")
	}
}

// BenchmarkSpanSink bounds the per-event cost of span reassembly on the
// synthetic miss path (one full span per 11 events).
func BenchmarkSpanSink(b *testing.B) {
	s := probe.NewSpanSink(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := int64(i) + 1
		s.Emit(push(10, txn, probe.SpanLoad))
		s.Emit(ev(14, probe.CompCU, probe.CoalescerDrain, txn))
		s.Emit(ev(15, probe.CompL1, probe.CacheMiss, txn))
		s.Emit(ev(15, probe.CompL1, probe.MSHRAlloc, txn))
		s.Emit(ev(16, probe.CompL1, probe.NoCEnqueue, txn))
		s.Emit(ev(22, probe.CompNoC, probe.NoCDeliver, txn))
		s.Emit(ev(23, probe.CompL2, probe.CacheMiss, txn))
		s.Emit(ev(48, probe.CompL2, probe.DRAMAccess, txn))
		s.Emit(ev(210, probe.CompL2, probe.NoCEnqueue, txn))
		s.Emit(ev(218, probe.CompNoC, probe.NoCDeliver, txn))
		s.Emit(ev(220, probe.CompL1, probe.TxnComplete, txn))
	}
	if s.Open() != 0 {
		b.Fatalf("%d spans left open", s.Open())
	}
}
