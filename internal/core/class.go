// Package core defines the DRFrlx memory-model taxonomy from the paper
// "Chasing Away RAts: Semantics and Evaluation for Relaxed Atomics on
// Heterogeneous Systems" (ISCA 2017): the classes that every memory
// operation must be distinguished as (data, paired, unpaired, commutative,
// non-ordering, quantum, speculative), the three consistency models the
// paper evaluates (DRF0, DRF1, DRFrlx), and the behaviour each model
// assigns to each class (Table 4).
//
// The rest of the repository builds on this package: the litmus engine
// (internal/memmodel) uses the classes to detect the paper's five illegal
// race categories, and the timing simulator (internal/sim) uses the model
// policies to decide when to self-invalidate caches, flush store buffers,
// and overlap atomics.
package core

import "fmt"

// Class distinguishes a memory operation to the system, per DRFrlx
// (Section 3.6 of the paper). Data is the default for unannotated
// accesses; all other classes are atomics.
type Class uint8

const (
	// Data is an ordinary, non-atomic access. Data accesses may never
	// race in any legal program under any of the DRF models.
	Data Class = iota
	// Paired is an SC atomic (C++ memory_order_seq_cst). Paired atomics
	// are the only accesses that create happens-before (so1) edges.
	Paired
	// Unpaired is a DRF1 unpaired atomic: it may race with other atomics
	// but is never used to order data accesses. It may be reordered with
	// respect to data, but stays in program order with other atomics.
	Unpaired
	// Commutative marks racy read-modify-writes whose racing interactions
	// commute (e.g. histogram increments) and whose return values are
	// unobserved (Section 3.2).
	Commutative
	// NonOrdering marks racy atomics that never occur on a unique
	// ordering path between other conflicting accesses (Section 3.3).
	NonOrdering
	// Quantum marks accesses whose values the program is resilient to:
	// reasoning is performed on the quantum-equivalent program in which
	// quantum loads/stores use random values (Section 3.4).
	Quantum
	// Speculative marks racy loads whose misspeculated values are
	// discarded (seqlocks), and the stores that race only with such
	// loads (Section 3.5).
	Speculative
	// Acquire is the Section 7 extension: a load with acquire ordering —
	// it self-invalidates like a paired load but does not serialize the
	// pipeline behind a full SC fence. Treated as paired by the race
	// checker (sound on a multi-copy-atomic machine like the simulated
	// one).
	Acquire
	// Release is the Section 7 extension: a store with release ordering —
	// it flushes the store buffer like a paired store without the full
	// SC fence. Treated as paired by the race checker.
	Release

	numClasses = int(Release) + 1
)

// Classes lists every class in declaration order, for iteration in tests
// and table generation.
func Classes() []Class {
	return []Class{Data, Paired, Unpaired, Commutative, NonOrdering, Quantum, Speculative, Acquire, Release}
}

// IsAtomic reports whether the class is any flavour of atomic.
func (c Class) IsAtomic() bool { return c != Data }

// IsRelaxed reports whether the class is one of the four DRFrlx relaxed
// categories (commutative, non-ordering, quantum, speculative). Per
// Section 3.6, all four allow the same system optimizations and are merged
// into a single "relaxed" category for implementation purposes.
func (c Class) IsRelaxed() bool {
	switch c {
	case Commutative, NonOrdering, Quantum, Speculative:
		return true
	}
	return false
}

// OrdersLikePaired reports whether the class synchronizes (creates
// happens-before edges) like a paired access: paired itself, plus the
// acquire/release extension classes.
func (c Class) OrdersLikePaired() bool {
	return c == Paired || c == Acquire || c == Release
}

// Valid reports whether c is one of the defined classes.
func (c Class) Valid() bool { return int(c) < numClasses }

func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Paired:
		return "paired"
	case Unpaired:
		return "unpaired"
	case Commutative:
		return "commutative"
	case NonOrdering:
		return "non-ordering"
	case Quantum:
		return "quantum"
	case Speculative:
		return "speculative"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ParseClass converts a keyword (as introduced in Section 3.6) back to a
// Class. It accepts the paper's five new keywords plus "data" and
// "paired"/"seq_cst".
func ParseClass(s string) (Class, error) {
	switch s {
	case "data":
		return Data, nil
	case "paired", "seq_cst", "sc":
		return Paired, nil
	case "unpaired":
		return Unpaired, nil
	case "commutative":
		return Commutative, nil
	case "non-ordering", "nonordering", "non_ordering":
		return NonOrdering, nil
	case "quantum":
		return Quantum, nil
	case "speculative":
		return Speculative, nil
	case "acquire":
		return Acquire, nil
	case "release":
		return Release, nil
	}
	return Data, fmt.Errorf("core: unknown access class %q", s)
}
