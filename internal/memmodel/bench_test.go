package memmodel

import (
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel/telemetry"
)

// benchProgram pulls a named program from the suite in its analysis form
// (quantum-equivalent under DRFrlx — what CheckProgram enumerates).
func benchProgram(b *testing.B, name string) *litmus.Program {
	b.Helper()
	tc := litmus.ByName(name)
	if tc == nil {
		b.Fatalf("no suite program named %q", name)
	}
	return tc.Prog.Under(core.DRFrlx)
}

func benchEnumerate(b *testing.B, p *litmus.Program, opts EnumOptions) {
	b.Helper()
	b.ReportAllocs()
	execs := 0
	for i := 0; i < b.N; i++ {
		got, err := Enumerate(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		execs = len(got)
	}
	b.ReportMetric(float64(execs), "execs")
	b.ReportMetric(float64(execs)*float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkEnumerate compares the naive enumerator against the default
// parallel + sleep-set-reduced one on the catalog's enumeration-heavy
// programs. IRIW is the independence showcase (4 threads, 2 locations:
// the reduction collapses 6300 interleavings to 15); RefCounterTwo is
// dominated by conflicting RMWs, bounding the reduction's overhead when
// little commutes; Flags_2 sits in between.
func BenchmarkEnumerate(b *testing.B) {
	for _, name := range []string{"IRIW", "Flags_2", "RefCounterTwo"} {
		p := benchProgram(b, name)
		b.Run(name+"/naive", func(b *testing.B) {
			benchEnumerate(b, p, EnumOptions{Quantum: true, Naive: true})
		})
		b.Run(name+"/por", func(b *testing.B) {
			benchEnumerate(b, p, EnumOptions{Quantum: true})
		})
		// The enabled-telemetry variant prices the atomic counters; the
		// plain por variant above is the disabled (nil-fold) path the CI
		// overhead gate pins against the pre-telemetry baseline.
		b.Run(name+"/por+tel", func(b *testing.B) {
			benchEnumerate(b, p, EnumOptions{Quantum: true, Telemetry: telemetry.NewCheck(name, "bench")})
		})
	}
}

// BenchmarkAnalyze measures per-execution race classification on catalog
// programs: "arena" reuses one Analyzer across executions (the streaming
// pipeline's steady state — the allocs/op floor the CI gate enforces),
// "fresh" allocates a new arena per execution (the old behaviour of the
// package-level Analyze).
func BenchmarkAnalyze(b *testing.B) {
	for _, name := range []string{"WorkQueue", "Seqlocks", "Flags_2"} {
		p := benchProgram(b, name)
		execs, err := Enumerate(p, EnumOptions{Quantum: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/arena", func(b *testing.B) {
			b.ReportAllocs()
			an := NewAnalyzer()
			for i := 0; i < b.N; i++ {
				an.Analyze(execs[i%len(execs)])
			}
		})
		b.Run(name+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Analyze(execs[i%len(execs)])
			}
		})
	}
}

// BenchmarkCheckProgram measures whole-program verdicts: "streaming" is
// the default pipeline (POR enumeration feeding parallel Analyze
// workers), "materialize" collects every execution first and analyzes
// serially. Both already use the bitset kernels; EXPERIMENTS.md records
// the pre-bitset serial baseline these are gated against.
func BenchmarkCheckProgram(b *testing.B) {
	for _, name := range []string{"WorkQueue", "Seqlocks", "Flags_2", "IRIW"} {
		tc := litmus.ByName(name)
		if tc == nil {
			b.Fatalf("no suite program named %q", name)
		}
		for _, mode := range []string{"streaming", "materialize"} {
			b.Run(name+"/"+mode, func(b *testing.B) {
				b.ReportAllocs()
				opts := CheckOptions{Materialize: mode == "materialize"}
				for i := 0; i < b.N; i++ {
					if _, err := CheckProgramWith(tc.Prog, core.DRFrlx, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// Enabled-telemetry streaming variant: one fresh check per
		// iteration, matching how a sweep instruments each verdict.
		b.Run(name+"/streaming+tel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := CheckOptions{Telemetry: telemetry.NewCheck(name, "bench")}
				if _, err := CheckProgramWith(tc.Prog, core.DRFrlx, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolve compares the constraint-solving backend (Mode: solve)
// against the streaming enumeration pipeline on contention-dominated
// programs — the shape POR cannot reduce, because every increment
// conflicts with every other. contended(5,2) is the ratio pair the CI
// gate pins at >=10x; contended(7,3) has too many interleavings to
// enumerate at all, so only the solver runs there (the absolute-latency
// evidence). Flags_2 prices the solver on an ordinary catalog case
// where POR already collapses the space.
func BenchmarkSolve(b *testing.B) {
	run := func(b *testing.B, p *litmus.Program, opts CheckOptions) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := CheckProgramWith(p, core.DRFrlx, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	c52 := contendedProgram(5, 2)
	b.Run("contended_5x2/enumerate", func(b *testing.B) {
		run(b, c52, CheckOptions{})
	})
	b.Run("contended_5x2/solve", func(b *testing.B) {
		run(b, c52, CheckOptions{Mode: ModeSolve})
	})
	b.Run("contended_7x3/solve", func(b *testing.B) {
		run(b, contendedProgram(7, 3), CheckOptions{Mode: ModeSolve})
	})
	tc := litmus.ByName("Flags_2")
	if tc == nil {
		b.Fatal("no suite program named Flags_2")
	}
	b.Run("Flags_2/solve", func(b *testing.B) {
		run(b, tc.Prog, CheckOptions{Mode: ModeSolve})
	})
}

// BenchmarkSystemResults pins the memoized system-model search on the
// theorem fuzzer's worst case shape (every interleaving of a 3×3
// program converges onto few distinct states).
func BenchmarkSystemResults(b *testing.B) {
	p := benchProgram(b, "RefCounterTwo")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SystemResults(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
