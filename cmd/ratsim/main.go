// Command ratsim runs one workload under one configuration and prints the
// timing, event, and energy statistics.
//
// Usage:
//
//	ratsim -workload PR-3 -config DDR [-scale paper] [-energy]
//	ratsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"rats/internal/harness"
	"rats/internal/sim/system"
	"rats/internal/trace"
	"rats/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "H", "workload short name (see -list)")
		config    = flag.String("config", "GD0", "configuration: GD0, GD1, GDR, DD0, DD1, DDR")
		scaleName = flag.String("scale", "test", "workload scale: test or paper")
		list      = flag.Bool("list", false, "list workloads and exit")
		showEn    = flag.Bool("energy", true, "print the energy breakdown")
		dump      = flag.String("dump", "", "write the generated trace as JSON to this file and exit")
		replay    = flag.String("replay", "", "run a JSON trace file instead of a generated workload")
	)
	flag.Parse()

	if *list {
		fmt.Println(harness.Table3())
		return
	}
	scale := workloads.Test
	if *scaleName == "paper" {
		scale = workloads.Paper
	}
	cfg, err := harness.ConfigFor(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratsim:", err)
		os.Exit(1)
	}
	var tr *trace.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsim:", err)
			os.Exit(1)
		}
		tr, err = trace.DecodeJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsim:", err)
			os.Exit(1)
		}
	} else {
		entry := workloads.ByName(*workload)
		if entry == nil {
			fmt.Fprintf(os.Stderr, "ratsim: unknown workload %q (use -list)\n", *workload)
			os.Exit(1)
		}
		tr = entry.Build(scale)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.EncodeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "ratsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d warps, %d ops)\n", *dump, len(tr.Warps), tr.NumOps())
		return
	}
	fmt.Printf("running %s (%d warps, %d ops) under %s/%s\n",
		tr.Name, len(tr.Warps), tr.NumOps(), cfg.Protocol, cfg.Model)
	res, err := system.RunTrace(cfg, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratsim:", err)
		os.Exit(1)
	}
	fmt.Println(res.Stats.String())
	if *showEn {
		fmt.Println("energy breakdown (pJ):")
		for _, c := range res.Energy.Components() {
			fmt.Printf("  %-10s %16.0f\n", c.Name, c.Value)
		}
		fmt.Printf("  %-10s %16.0f\n", "total", res.Energy.Total())
	}
}
