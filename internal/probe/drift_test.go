package probe_test

import (
	"testing"

	"rats/internal/probe"
)

// stringerExhaustive checks that every enum value below n renders a
// real, unique name, and that the first out-of-range value renders "?".
// Adding a constant without updating String fails here instead of
// silently rendering "?" in traces and tables.
func stringerExhaustive(t *testing.T, what string, n int, name func(int) string) {
	t.Helper()
	seen := map[string]int{}
	for i := 0; i < n; i++ {
		s := name(i)
		if s == "?" || s == "" {
			t.Errorf("%s %d has no name (String says %q); update String alongside the constant", what, i, s)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("%s %d and %d share the name %q", what, prev, i, s)
		}
		seen[s] = i
	}
	if s := name(n); s != "?" {
		t.Errorf("%s %d (out of range) renders %q, want \"?\"", what, n, s)
	}
}

func TestKindStringExhaustive(t *testing.T) {
	stringerExhaustive(t, "Kind", int(probe.NumKinds),
		func(i int) string { return probe.Kind(i).String() })
}

func TestComponentStringExhaustive(t *testing.T) {
	stringerExhaustive(t, "Component", int(probe.NumComponents),
		func(i int) string { return probe.Component(i).String() })
}

func TestStallReasonStringExhaustive(t *testing.T) {
	stringerExhaustive(t, "StallReason", int(probe.NumStallReasons),
		func(i int) string { return probe.StallReason(i).String() })
}

func TestSpanEnumStringsExhaustive(t *testing.T) {
	stringerExhaustive(t, "Seg", int(probe.NumSegs),
		func(i int) string { return probe.Seg(i).String() })
	stringerExhaustive(t, "SpanOp", int(probe.NumSpanOps),
		func(i int) string { return probe.SpanOp(i).String() })
	stringerExhaustive(t, "HitLevel", int(probe.NumHitLevels),
		func(i int) string { return probe.HitLevel(i).String() })
}
