package memmodel

import (
	"reflect"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// permuteRename returns a deep copy of p with threads reordered by perm
// (new index i holds old thread perm[i]) and locations renamed through
// ren (identity for locations not in the map).
func permuteRename(p *litmus.Program, perm []int, ren map[litmus.Loc]litmus.Loc) *litmus.Program {
	rn := func(l litmus.Loc) litmus.Loc {
		if r, ok := ren[l]; ok {
			return r
		}
		return l
	}
	q := litmus.New(p.Name + "-scrambled")
	for l, v := range p.Init {
		q.SetInit(rn(l), v)
	}
	q.QuantumDomain = append([]int64(nil), p.QuantumDomain...)
	for i, old := range perm {
		src := p.Threads[old]
		dst := q.Thread("w" + string(rune('a'+i)))
		dst.Ops = make([]litmus.Op, len(src.Ops))
		copy(dst.Ops, src.Ops)
		for oi := range dst.Ops {
			if !dst.Ops[oi].IsBranch {
				dst.Ops[oi].Loc = rn(dst.Ops[oi].Loc)
			}
		}
		dst.SetNumRegs(src.NumRegs())
	}
	return q
}

// reverse returns the permutation [n-1, ..., 0].
func reversePerm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	return perm
}

// scrambleLocs maps every location of p to an ugly fresh name.
func scrambleLocs(p *litmus.Program) map[litmus.Loc]litmus.Loc {
	ren := map[litmus.Loc]litmus.Loc{}
	for i, l := range p.Locs() {
		ren[l] = litmus.Loc("zz_" + string(rune('p'+i)))
	}
	return ren
}

// TestCanonicalKeyInvariantOnCatalog checks that for every catalog case,
// reordering threads and renaming every shared location leaves the
// canonical key unchanged.
func TestCanonicalKeyInvariantOnCatalog(t *testing.T) {
	for _, c := range litmus.Suite() {
		c := c
		t.Run(c.Prog.Name, func(t *testing.T) {
			base, err := Canonicalize(c.Prog)
			if err != nil {
				t.Fatalf("Canonicalize: %v", err)
			}
			if err := base.Prog.Validate(); err != nil {
				t.Fatalf("canonical program invalid: %v", err)
			}
			scr := permuteRename(c.Prog, reversePerm(len(c.Prog.Threads)), scrambleLocs(c.Prog))
			got, err := Canonicalize(scr)
			if err != nil {
				t.Fatalf("Canonicalize(scrambled): %v", err)
			}
			if got.Key != base.Key {
				t.Errorf("key changed under thread permutation + location renaming:\n  base %s\n  scrambled %s", base.Key, got.Key)
			}
		})
	}
}

// TestCanonicalKeySeparatesCatalog checks that distinct catalog programs
// do not collide (they are structurally different, so their canonical
// forms must differ).
func TestCanonicalKeySeparatesCatalog(t *testing.T) {
	seen := map[string]string{}
	for _, c := range litmus.Suite() {
		canon, err := Canonicalize(c.Prog)
		if err != nil {
			t.Fatalf("%s: %v", c.Prog.Name, err)
		}
		if prev, ok := seen[canon.Key]; ok {
			t.Errorf("catalog programs %s and %s share canonical key %s", prev, c.Prog.Name, canon.Key)
		}
		seen[canon.Key] = c.Prog.Name
	}
}

// TestCanonicalKeyDistinguishesClasses checks that a semantically
// meaningful change (an op's class) changes the key.
func TestCanonicalKeyDistinguishesClasses(t *testing.T) {
	p := litmus.New("classes")
	p.Thread("a").Store("X", 1, core.Data)
	p.Thread("b").Load("X", core.Data)
	q := p.Relabel(func(core.Class) core.Class { return core.Unpaired })
	cp, err := Canonicalize(p)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Canonicalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Key == cq.Key {
		t.Errorf("relabel(data->unpaired) did not change the canonical key")
	}
}

// TestCanonicalNormalizesSpelling checks that explicit zero initializers,
// register order inside sum expressions, and guard order inside
// conjunctions do not affect the key.
func TestCanonicalNormalizesSpelling(t *testing.T) {
	build := func(explicitInit bool, flip bool) *litmus.Program {
		p := litmus.New("spelling")
		if explicitInit {
			p.SetInit("X", 0)
			p.SetInit("Y", 0)
		}
		ta := p.Thread("a")
		r0 := ta.Load("X", core.Unpaired)
		r1 := ta.Load("Y", core.Unpaired)
		sum := litmus.Expr{Regs: []litmus.Reg{r0, r1}}
		g1, g2 := litmus.NZ(r0), litmus.EQZ(r1)
		if flip {
			sum.Regs = []litmus.Reg{r1, r0}
			g1, g2 = g2, g1
		}
		ta.WithGuards(g1, g2)
		ta.StoreExpr("X", sum, core.Unpaired)
		ta.EndGuards()
		p.Thread("b").Store("Y", 1, core.Unpaired)
		return p
	}
	a, err := Canonicalize(build(false, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(build(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Errorf("spelling differences changed the canonical key:\n  %s\n  %s", a.Key, b.Key)
	}
}

// TestRewriteVerdictMatchesDirectCheck checks the cache-hit path end to
// end: checking the canonical program and rewriting its verdict into a
// scrambled submission's namespace must equal (up to Execs, which is
// search-order dependent under POR) checking the scrambled program
// directly.
func TestRewriteVerdictMatchesDirectCheck(t *testing.T) {
	cases := []string{"MP_unpaired", "SB_nonordering", "Seqlocks", "IRIW"}
	for _, name := range cases {
		c := litmus.ByName(name)
		if c == nil {
			t.Fatalf("catalog case %s missing", name)
		}
		for _, m := range core.Models() {
			scr := permuteRename(c.Prog, reversePerm(len(c.Prog.Threads)), scrambleLocs(c.Prog))
			canon, err := Canonicalize(scr)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m, err)
			}
			canonV, err := CheckProgram(canon.Prog, m)
			if err != nil {
				t.Fatalf("%s/%s: check canonical: %v", name, m, err)
			}
			direct, err := CheckProgram(scr, m)
			if err != nil {
				t.Fatalf("%s/%s: check direct: %v", name, m, err)
			}
			got := canon.RewriteVerdict(canonV, scr.Name)
			got.Execs = direct.Execs // search-order dependent; excluded
			// Verdict.Prog carries the @model suffix from Under.
			got.Prog = direct.Prog
			if !reflect.DeepEqual(got, direct) {
				t.Errorf("%s/%s: rewritten verdict differs from direct check\n  rewritten: %+v\n  direct:    %+v", name, m, got, direct)
			}
		}
	}
}
