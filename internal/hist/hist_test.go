package hist

import (
	"math/rand"
	"sort"
	"testing"
)

func TestExactBelowSubCount(t *testing.T) {
	var h Histogram
	for v := int64(0); v < subCount; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != subCount-1 {
		t.Errorf("q1 = %d, want %d", got, subCount-1)
	}
	// Every small value is its own bucket, so the median is exact.
	if got := h.Quantile(0.5); got != subCount/2-1 && got != subCount/2 {
		t.Errorf("q0.5 = %d, want ~%d", got, subCount/2)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// upperBound(bucketIndex(v)) must be >= v, and the next bucket's
	// upper bound must be > this one's (buckets are ordered and disjoint).
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 65, 100, 1023, 1024, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		i := bucketIndex(v)
		if u := upperBound(i); u < v {
			t.Errorf("upperBound(bucketIndex(%d)) = %d < value", v, u)
		}
		if i > 0 && upperBound(i-1) >= v {
			t.Errorf("value %d should not fit in bucket %d (upper %d)", v, i-1, upperBound(i-1))
		}
	}
}

func TestRelativeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var vals []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 16))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(q*float64(len(vals)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q%.2f = %d below exact %d", q, got, exact)
		}
		// Upper bound within one sub-bucket width: <= exact * (1 + 2^-subBits) + 1.
		lim := exact + exact>>subBits + 1
		if got > lim {
			t.Errorf("q%.2f = %d exceeds error bound %d (exact %d)", q, got, lim, exact)
		}
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Histogram
	for i := 0; i < 2000; i++ {
		v := int64(rng.Intn(1 << 12))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a != both {
		t.Fatal("merged histogram differs from directly-recorded one")
	}
}

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	var o Histogram
	o.Record(5)
	h.Merge(&o)
	if h.Min() != 5 || h.Max() != 5 || h.Count() != 1 {
		t.Fatal("merge into empty lost state")
	}
}

func TestEachCoversAllCounts(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 1, 40, 40, 40, 5000} {
		h.Record(v)
	}
	var n, lastUpper int64 = 0, -1
	h.Each(func(upper, count int64) {
		if upper <= lastUpper {
			t.Fatalf("Each out of order: %d after %d", upper, lastUpper)
		}
		lastUpper = upper
		n += count
	})
	if n != h.Count() {
		t.Fatalf("Each visited %d counts, want %d", n, h.Count())
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i & 0xffff))
	}
}

func BenchmarkQuantile(b *testing.B) {
	var h Histogram
	for v := int64(0); v < 1<<16; v += 7 {
		h.Record(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func TestP999TracksTail(t *testing.T) {
	var h Histogram
	for i := 0; i < 1997; i++ {
		h.Record(10)
	}
	for i := 0; i < 3; i++ {
		h.Record(100000)
	}
	s := h.Summarize()
	if s.P99 >= s.P999 {
		t.Fatalf("P99 %d should be below P999 %d with a 1.5-in-1000 outlier", s.P99, s.P999)
	}
	if s.P999 < 100000 || s.P999 != s.Max {
		t.Fatalf("P999 = %d, want clamped to max %d", s.P999, s.Max)
	}
}

func TestUpperForMatchesEach(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 31, 32, 1000, 123456, 1 << 40} {
		h.Record(v)
		u := UpperFor(v)
		if v > u {
			t.Fatalf("UpperFor(%d) = %d is below the value", v, u)
		}
		found := false
		h.Each(func(upper, count int64) {
			if upper == u {
				found = true
			}
		})
		if !found {
			t.Fatalf("UpperFor(%d) = %d is not a bucket edge Each reports", v, u)
		}
	}
	if got := UpperFor(-5); got != UpperFor(0) {
		t.Fatalf("UpperFor(-5) = %d, want clamp to UpperFor(0) = %d", got, UpperFor(0))
	}
}
