package memmodel

import (
	"fmt"
	"sort"
	"strings"

	"rats/internal/core"
	"rats/internal/litmus"
)

// Annotation inference: given a program whose atomic operations are
// identified but not yet classified, search the DRFrlx class space for
// the cheapest legal labelling. "Cheapest" follows the cost order implied
// by Table 4: paired atomics pay invalidation + flush + serialization;
// unpaired atomics pay serialization only; the four relaxed classes are
// free. This mechanizes the reasoning a programmer performs when deciding
// which accesses can safely be relaxed.

// classCost ranks classes by the consistency actions they require.
func classCost(c core.Class) int {
	switch c {
	case core.Paired:
		return 2
	case core.Unpaired:
		return 1
	default:
		return 0 // the relaxed classes allow identical optimizations
	}
}

// atomicSite identifies one annotatable operation.
type atomicSite struct {
	thread, op int
}

// Labelling is one legal class assignment.
type Labelling struct {
	// Classes[i] is the class assigned to the i-th atomic site (in
	// thread-major program order).
	Classes []core.Class
	// Cost is the summed class cost (lower = more relaxed).
	Cost int
}

// String renders the assignment compactly.
func (l Labelling) String() string {
	parts := make([]string, len(l.Classes))
	for i, c := range l.Classes {
		parts[i] = c.String()
	}
	return fmt.Sprintf("[%s] cost=%d", strings.Join(parts, ", "), l.Cost)
}

// InferOptions bounds the search.
type InferOptions struct {
	// MaxSites caps the number of annotatable sites (the search is
	// exponential); defaults to 6.
	MaxSites int
	// Candidates restricts the classes tried per site. The default
	// excludes quantum: quantum labelling is always race-minimal (quantum
	// accesses may race with each other freely) but changes the value
	// guarantee to "any value" — whether the program tolerates that is a
	// judgement inference cannot make, so quantum is opt-in.
	Candidates []core.Class
	// Mode selects the checking backend for each candidate labelling.
	// ModeSolve is a natural fit here: inference only consumes Legal, so
	// the solver's verdict-only fast path pays off on every probe.
	Mode Mode
}

// InferLabels finds every minimum-cost legal labelling of the program's
// atomic sites under DRFrlx. Data operations are left untouched; existing
// atomic classes are ignored (every atomic site is re-searched). Returns
// the minimal labellings sorted lexicographically.
func InferLabels(p *litmus.Program, opts InferOptions) ([]Labelling, error) {
	if opts.MaxSites == 0 {
		opts.MaxSites = 6
	}
	if len(opts.Candidates) == 0 {
		opts.Candidates = []core.Class{
			core.Paired, core.Unpaired, core.Commutative,
			core.NonOrdering, core.Speculative,
		}
	}
	var sites []atomicSite
	for ti, th := range p.Threads {
		for oi, op := range th.Ops {
			if !op.IsBranch && op.Class.IsAtomic() {
				sites = append(sites, atomicSite{ti, oi})
			}
		}
	}
	if len(sites) > opts.MaxSites {
		return nil, fmt.Errorf("memmodel: %d atomic sites exceeds inference cap %d", len(sites), opts.MaxSites)
	}

	assign := make([]core.Class, len(sites))
	var best []Labelling
	bestCost := 1 << 30

	var search func(i, cost int) error
	search = func(i, cost int) error {
		if cost > bestCost {
			return nil
		}
		if i == len(sites) {
			q := p.Relabel(func(c core.Class) core.Class { return c })
			for si, s := range sites {
				q.Threads[s.thread].Ops[s.op].Class = assign[si]
			}
			v, err := CheckProgramWith(q, core.DRFrlx, CheckOptions{Mode: opts.Mode})
			if err != nil {
				return err
			}
			if !v.Legal {
				return nil
			}
			if cost < bestCost {
				bestCost = cost
				best = best[:0]
			}
			best = append(best, Labelling{Classes: append([]core.Class(nil), assign...), Cost: cost})
			return nil
		}
		for _, c := range opts.Candidates {
			assign[i] = c
			if err := search(i+1, cost+classCost(c)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := search(0, 0); err != nil {
		return nil, err
	}
	sort.Slice(best, func(a, b int) bool {
		for i := range best[a].Classes {
			if best[a].Classes[i] != best[b].Classes[i] {
				return best[a].Classes[i] < best[b].Classes[i]
			}
		}
		return false
	})
	return best, nil
}

// Sites lists the annotatable operations of a program in the order
// InferLabels assigns them, as human-readable strings.
func Sites(p *litmus.Program) []string {
	var out []string
	for ti, th := range p.Threads {
		for oi, op := range th.Ops {
			if !op.IsBranch && op.Class.IsAtomic() {
				name := th.Name
				if name == "" {
					name = fmt.Sprintf("t%d", ti)
				}
				out = append(out, fmt.Sprintf("%s.%d: %v", name, oi, op))
			}
		}
	}
	return out
}
