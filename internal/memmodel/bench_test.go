package memmodel

import (
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// benchProgram pulls a named program from the suite in its analysis form
// (quantum-equivalent under DRFrlx — what CheckProgram enumerates).
func benchProgram(b *testing.B, name string) *litmus.Program {
	b.Helper()
	for _, tc := range litmus.Suite() {
		if tc.Prog.Name == name {
			return tc.Prog.Under(core.DRFrlx)
		}
	}
	b.Fatalf("no suite program named %q", name)
	return nil
}

func benchEnumerate(b *testing.B, p *litmus.Program, opts EnumOptions) {
	b.Helper()
	b.ReportAllocs()
	execs := 0
	for i := 0; i < b.N; i++ {
		got, err := Enumerate(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		execs = len(got)
	}
	b.ReportMetric(float64(execs), "execs")
	b.ReportMetric(float64(execs)*float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkEnumerate compares the naive enumerator against the default
// parallel + sleep-set-reduced one on the catalog's enumeration-heavy
// programs. IRIW is the independence showcase (4 threads, 2 locations:
// the reduction collapses 6300 interleavings to 15); RefCounterTwo is
// dominated by conflicting RMWs, bounding the reduction's overhead when
// little commutes; Flags_2 sits in between.
func BenchmarkEnumerate(b *testing.B) {
	for _, name := range []string{"IRIW", "Flags_2", "RefCounterTwo"} {
		p := benchProgram(b, name)
		b.Run(name+"/naive", func(b *testing.B) {
			benchEnumerate(b, p, EnumOptions{Quantum: true, Naive: true})
		})
		b.Run(name+"/por", func(b *testing.B) {
			benchEnumerate(b, p, EnumOptions{Quantum: true})
		})
	}
}

// BenchmarkSystemResults pins the memoized system-model search on the
// theorem fuzzer's worst case shape (every interleaving of a 3×3
// program converges onto few distinct states).
func BenchmarkSystemResults(b *testing.B) {
	p := benchProgram(b, "RefCounterTwo")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SystemResults(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
