package cache

import "rats/internal/probe"

// SBEntry is one buffered store: the line it dirties and the originating
// store transaction's id (0 when none), kept for probe attribution of the
// drain traffic. A concrete type rather than `any` keeps the push/drain
// path free of per-store boxing allocations.
type SBEntry struct {
	Line uint64
	Txn  int64
}

// StoreBuffer models the per-core FIFO of stores that have issued but not
// yet become globally visible. Under GPU coherence entries drain as
// write-throughs to the LLC; under DeNovo they drain as ownership
// requests. A release (paired store or barrier) must wait until the
// buffer is empty and all drained entries have been acknowledged — the
// "store buffer flush" cost that DRF1 and DRFrlx avoid for relaxed
// atomics (Table 4).
type StoreBuffer struct {
	capacity int
	// queue[head:] holds the live entries; head-index draining reuses the
	// backing array instead of reslicing it away (steady-state the buffer
	// allocates nothing).
	queue []SBEntry
	head  int
	// unacked counts entries drained into the memory system whose
	// completion acknowledgements are still pending.
	unacked int

	// probe, when non-nil, receives fill/drain events attributed to node
	// (the owning L1).
	probe *probe.Hub
	node  int
}

// AttachProbe routes fill/drain events to the hub, attributed to the
// owning L1's node.
func (b *StoreBuffer) AttachProbe(h *probe.Hub, node int) {
	b.probe = h
	b.node = node
}

// NewStoreBuffer builds a buffer with the given capacity.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{capacity: capacity, queue: make([]SBEntry, 0, capacity)}
}

// Full reports whether a new store cannot be accepted.
func (b *StoreBuffer) Full() bool { return b.Len() >= b.capacity }

// Len returns the number of queued (not yet drained) entries.
func (b *StoreBuffer) Len() int { return len(b.queue) - b.head }

// Push appends a store. The caller must have checked Full.
func (b *StoreBuffer) Push(e SBEntry) {
	if b.Full() {
		panic("cache: store buffer push when full")
	}
	if b.head > 0 && len(b.queue) == cap(b.queue) {
		n := copy(b.queue, b.queue[b.head:])
		b.queue = b.queue[:n]
		b.head = 0
	}
	b.queue = append(b.queue, e)
	if h := b.probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: b.node, Warp: -1,
			Kind: probe.SBFill, Arg: int64(b.Len())})
	}
}

// Pop drains the oldest entry into the memory system, incrementing the
// unacked count. The second return is false when the buffer is empty.
func (b *StoreBuffer) Pop() (SBEntry, bool) {
	if b.Len() == 0 {
		return SBEntry{}, false
	}
	e := b.queue[b.head]
	b.head++
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
	}
	b.unacked++
	if h := b.probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: b.node, Warp: -1,
			Kind: probe.SBDrain, Arg: int64(b.Len())})
	}
	return e, true
}

// Ack records completion of a drained entry.
func (b *StoreBuffer) Ack() {
	if b.unacked == 0 {
		panic("cache: store buffer ack without outstanding drain")
	}
	b.unacked--
}

// Drained reports whether the buffer is empty and every drained entry has
// been acknowledged — the flush condition.
func (b *StoreBuffer) Drained() bool { return b.Len() == 0 && b.unacked == 0 }

// Unacked returns the in-flight drained count.
func (b *StoreBuffer) Unacked() int { return b.unacked }

// Peek returns the oldest entry without draining it; the second return is
// false when the buffer is empty.
func (b *StoreBuffer) Peek() (SBEntry, bool) {
	if b.Len() == 0 {
		return SBEntry{}, false
	}
	return b.queue[b.head], true
}
