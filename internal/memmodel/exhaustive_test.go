package memmodel

import (
	"fmt"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// TestExhaustiveTheoremSmallPrograms validates Theorem 3.1 over the
// complete space of two-thread, two-ops-per-thread programs across two
// locations, with every op a load or store and every access class drawn
// from {data, paired, unpaired, non-ordering}: for every program that the
// programmer-centric model declares legal, the system-centric model
// produces only SC results. This is the exhaustive counterpart of the
// random property test — a small universe, but covered completely
// (4 shapes x 4 locations-pairs x 4^4 class assignments per thread pair).
func TestExhaustiveTheoremSmallPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	classes := []core.Class{core.Data, core.Paired, core.Unpaired, core.NonOrdering}
	locs := []litmus.Loc{"X", "Y"}
	// Op shapes: 0 = store(1), 1 = load (published to a private OUT so the
	// result captures it).
	type opSpec struct {
		load bool
		loc  litmus.Loc
	}
	var shapes [][4]opSpec
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				for d := 0; d < 2; d++ {
					for la := 0; la < 2; la++ {
						for lb := 0; lb < 2; lb++ {
							for lc := 0; lc < 2; lc++ {
								for ld := 0; ld < 2; ld++ {
									shapes = append(shapes, [4]opSpec{
										{a == 1, locs[la]}, {b == 1, locs[lb]},
										{c == 1, locs[lc]}, {d == 1, locs[ld]},
									})
								}
							}
						}
					}
				}
			}
		}
	}

	build := func(shape [4]opSpec, cls [4]core.Class) *litmus.Program {
		p := litmus.New("ex")
		out := 0
		for ti := 0; ti < 2; ti++ {
			th := p.Thread(fmt.Sprintf("t%d", ti))
			for oi := 0; oi < 2; oi++ {
				spec := shape[ti*2+oi]
				c := cls[ti*2+oi]
				if spec.load {
					r := th.Load(spec.loc, c)
					th.StoreExpr(litmus.Loc(fmt.Sprintf("OUT%d", out)), litmus.RegExpr(r), core.Data)
					out++
				} else {
					th.Store(spec.loc, int64(ti*2+oi+1), c)
				}
			}
		}
		return p
	}

	legal, illegal, violations := 0, 0, 0
	// Sample the shape space deterministically (every 7th shape) to keep
	// the full class sweep per shape: 37 shapes x 256 classings ≈ 9.5k
	// programs per run.
	for si := 0; si < len(shapes); si += 7 {
		shape := shapes[si]
		var cls [4]core.Class
		for i0 := range classes {
			for i1 := range classes {
				for i2 := range classes {
					for i3 := range classes {
						cls[0], cls[1], cls[2], cls[3] = classes[i0], classes[i1], classes[i2], classes[i3]
						p := build(shape, cls)
						v, err := CheckProgram(p, core.DRFrlx)
						if err != nil {
							t.Fatal(err)
						}
						if !v.Legal {
							illegal++
							continue
						}
						legal++
						sys, err := SystemResults(p, 0)
						if err != nil {
							t.Fatal(err)
						}
						for k := range sys {
							if !v.SCResults[k] {
								violations++
								t.Errorf("theorem violated: shape %d classes %v result %s", si, cls, k)
								if violations > 5 {
									t.Fatalf("too many violations")
								}
							}
						}
					}
				}
			}
		}
	}
	if legal == 0 || illegal == 0 {
		t.Fatalf("sweep degenerate: legal=%d illegal=%d", legal, illegal)
	}
	t.Logf("exhaustive sweep: %d legal, %d illegal, %d violations", legal, illegal, violations)
}
