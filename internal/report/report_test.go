package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 1 {
		t.Errorf("empty geomean = %f", g)
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-9 {
		t.Errorf("geomean(5) = %f", g)
	}
}

// Geomean lies between min and max (property).
func TestGeomeanBounds(t *testing.T) {
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		g := Geomean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("test", "wl", []string{"A", "B"})
	tb.Set("x", "A", 10)
	tb.Set("x", "B", 5)
	tb.Set("y", "A", 4)
	tb.Set("y", "B", 8)
	if tb.Get("x", "B") != 5 || tb.Get("zzz", "A") != 0 {
		t.Fatal("get wrong")
	}
	n := tb.Normalize("A")
	if n.Get("x", "A") != 1 || n.Get("x", "B") != 0.5 || n.Get("y", "B") != 2 {
		t.Fatalf("normalize wrong: %+v", n.Cells)
	}
	if g := n.ColGeomean("B"); math.Abs(g-1) > 1e-9 {
		t.Errorf("col geomean = %f, want 1", g)
	}
	out := n.Render("%10.3f", true)
	for _, want := range []string{"wl", "A", "B", "x", "y", "geomean", "0.500", "2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if bars := tb.Bars(20); !strings.Contains(bars, "#") {
		t.Error("bars missing")
	}
}

func TestRowOrderPreserved(t *testing.T) {
	tb := NewTable("t", "r", []string{"C"})
	for _, r := range []string{"z", "a", "m"} {
		tb.Set(r, "C", 1)
	}
	if tb.Rows[0] != "z" || tb.Rows[1] != "a" || tb.Rows[2] != "m" {
		t.Errorf("row order not insertion order: %v", tb.Rows)
	}
}

func TestStackedTable(t *testing.T) {
	st := NewStackedTable("energy", []string{"L1", "L2"}, []string{"GD0", "DDR"})
	st.Set("H", "GD0", "L1", 6)
	st.Set("H", "GD0", "L2", 4)
	st.Set("H", "DDR", "L1", 3)
	st.Set("H", "DDR", "L2", 2)
	if st.Total("H", "GD0") != 10 || st.Total("H", "DDR") != 5 {
		t.Fatal("totals wrong")
	}
	out := st.Render("GD0")
	if !strings.Contains(out, "0.500") { // DDR total normalized
		t.Errorf("render missing normalized total:\n%s", out)
	}
	if !strings.Contains(out, "energy") {
		t.Error("title missing")
	}
}

func TestKV(t *testing.T) {
	out := KV(map[string]float64{"bbb": 2, "aaa": 1})
	ai, bi := strings.Index(out, "aaa"), strings.Index(out, "bbb")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("KV not sorted:\n%s", out)
	}
}
