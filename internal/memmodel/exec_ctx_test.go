package memmodel

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
)

// contendedProgram builds a program whose every operation conflicts with
// every other (same-location RMWs), so partial-order reduction cannot
// prune anything and the interleaving count is the full multinomial —
// intractable at this size. It is the worst-case input the service's
// deadline machinery exists for.
func contendedProgram(threads, opsPer int) *litmus.Program {
	p := litmus.New("contended")
	for t := 0; t < threads; t++ {
		th := p.Thread("h" + strconv.Itoa(t))
		for i := 0; i < opsPer; i++ {
			th.Inc("X", core.Unpaired)
		}
	}
	return p
}

// TestCheckProgramCtxDeadline checks that a deadline interrupts an
// intractable search promptly and surfaces as a *CancelError carrying
// the context's cause.
func TestCheckProgramCtxDeadline(t *testing.T) {
	p := contendedProgram(7, 3)
	const deadline = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := CheckProgramWith(p, core.DRFrlx, CheckOptions{
		Ctx:   ctx,
		Limit: 1 << 30, // make the deadline, not the execution cap, the binding constraint
	})
	elapsed := time.Since(start)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("CancelError must wrap context.DeadlineExceeded, got %v", ce.Err)
	}
	// The ISSUE's bound is 2x the deadline for the whole HTTP response;
	// give the raw checker half that and plenty of CI slack besides.
	if elapsed > 10*deadline {
		t.Errorf("cancellation took %s, want promptly after the %s deadline", elapsed, deadline)
	}
}

// TestCheckProgramCtxPreCancelled checks that an already-cancelled
// context fails before any enumeration starts.
func TestCheckProgramCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CheckProgramWith(contendedProgram(2, 2), core.DRFrlx, CheckOptions{Ctx: ctx})
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want wrapped context.Canceled, got %v", ce.Err)
	}
}

// TestCheckProgramTransitionLimit checks that the transition budget trips
// as a *LimitError with phase "transitions" even when the execution
// limit is far away.
func TestCheckProgramTransitionLimit(t *testing.T) {
	p := contendedProgram(7, 3)
	_, err := CheckProgramWith(p, core.DRFrlx, CheckOptions{
		TransitionLimit: 10_000,
		Limit:           1 << 30,
	})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Phase != "transitions" {
		t.Errorf("phase: got %q, want %q", le.Phase, "transitions")
	}
	if !errors.Is(err, ErrLimit) {
		t.Errorf("transition LimitError must satisfy errors.Is(err, ErrLimit)")
	}
}
