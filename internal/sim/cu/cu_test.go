package cu

import (
	"container/heap"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/sim/noc"
	"rats/internal/stats"
	"rats/internal/trace"
)

// harness wires one CU to a real L1/L2/mesh so scheduler behaviour can be
// observed cycle by cycle.
type harness struct {
	cfg   memsys.Config
	env   *memsys.Env
	cu    *CU
	l1s   []*memsys.L1
	l2s   []*memsys.L2Bank
	mesh  *noc.Mesh
	st    stats.Stats
	cycle int64
	evs   evq
	seq   int64
	txn   int64
}

type ev struct {
	cycle, seq int64
	d          memsys.Deferred
}
type evq []ev

func (q evq) Len() int { return len(q) }
func (q evq) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q evq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *evq) Push(x any)   { *q = append(*q, x.(ev)) }
func (q *evq) Pop() any     { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }

func newHarness(model core.Model) *harness {
	h := &harness{cfg: memsys.Default(memsys.ProtoGPU, model)}
	h.mesh = noc.NewMesh(h.cfg.MeshWidth, h.cfg.MeshHeight, h.cfg.HopLat, &h.st)
	h.env = &memsys.Env{
		Cfg: &h.cfg, Mesh: h.mesh, Stats: &h.st, Values: map[uint64]int64{},
		At: func(c int64, d memsys.Deferred) {
			if c <= h.cycle {
				c = h.cycle + 1
			}
			h.seq++
			heap.Push(&h.evs, ev{cycle: c, seq: h.seq, d: d})
		},
	}
	for n := 0; n < h.cfg.Nodes(); n++ {
		l1 := memsys.NewL1(h.env, n)
		l2 := memsys.NewL2Bank(h.env, n)
		h.l1s = append(h.l1s, l1)
		h.l2s = append(h.l2s, l2)
		node := n
		h.mesh.SetReceiver(n, func(m noc.Message) {
			if memsys.IsL2Request(m.Payload) {
				h.l2s[node].Handle(h.cycle, m.Payload)
				return
			}
			h.l1s[node].Handle(h.cycle, m.Payload)
		})
	}
	h.cu = New(h.env, 0, h.l1s[0], &h.txn)
	return h
}

func (h *harness) step() {
	h.cycle++
	for h.evs.Len() > 0 && h.evs[0].cycle <= h.cycle {
		e := heap.Pop(&h.evs).(ev)
		e.d.Fire(h.cycle)
	}
	h.mesh.Tick(h.cycle)
	for _, l1 := range h.l1s {
		l1.Tick(h.cycle)
	}
	h.cu.Tick(h.cycle, false)
}

func (h *harness) runUntilDone(t *testing.T, bound int) {
	t.Helper()
	for i := 0; i < bound; i++ {
		h.step()
		if h.cu.Done() {
			return
		}
	}
	t.Fatalf("CU not done after %d cycles", bound)
}

func TestComputeOccupiesWarp(t *testing.T) {
	h := newHarness(core.DRF0)
	w := &trace.Warp{CU: 0}
	w.Compute(10).Compute(10)
	h.cu.AddWarp(w)
	h.runUntilDone(t, 100)
	if h.cycle < 20 {
		t.Errorf("two 10-cycle computes finished in %d cycles", h.cycle)
	}
	if h.st.CoreOps != 2 {
		t.Errorf("core ops = %d", h.st.CoreOps)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	h := newHarness(core.DRFrlx)
	for i := 0; i < 4; i++ {
		w := &trace.Warp{CU: 0}
		for j := 0; j < 5; j++ {
			w.Compute(0)
		}
		h.cu.AddWarp(w)
	}
	// 4 warps x 5 zero-latency computes at 1 issue/cycle = 20 cycles.
	h.runUntilDone(t, 60)
	if h.cycle > 25 {
		t.Errorf("round robin starved warps: %d cycles for 20 issues", h.cycle)
	}
}

func TestSCAtomicFencesWarp(t *testing.T) {
	// Under DRF0, a warp's atomic blocks its subsequent compute; issue
	// count over the first few cycles stays at 1.
	h := newHarness(core.DRF0)
	w := &trace.Warp{CU: 0}
	w.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	w.Compute(1)
	h.cu.AddWarp(w)
	for i := 0; i < 5; i++ {
		h.step()
	}
	if h.st.CoreOps != 1 {
		t.Errorf("fence leaked: %d ops issued while atomic outstanding", h.st.CoreOps)
	}
	h.runUntilDone(t, 2000)
}

func TestRelaxedAtomicsPipelined(t *testing.T) {
	h := newHarness(core.DRFrlx)
	w := &trace.Warp{CU: 0}
	w.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	w.Atomic(core.Commutative, core.OpInc, 0, 0x4040)
	h.cu.AddWarp(w)
	for i := 0; i < 4; i++ {
		h.step()
	}
	// Both relaxed atomics issue back to back (atomic MLP = 2).
	if h.st.CoreOps != 2 {
		t.Errorf("relaxed atomics did not pipeline: %d issued", h.st.CoreOps)
	}
	h.runUntilDone(t, 2000)
	if h.env.Read(0x4000) != 1 || h.env.Read(0x4040) != 1 {
		t.Error("atomics lost")
	}
}

func TestBarrierParksWarp(t *testing.T) {
	h := newHarness(core.DRFrlx)
	w := &trace.Warp{CU: 0}
	w.Barrier()
	w.Compute(1)
	h.cu.AddWarp(w)
	for i := 0; i < 10; i++ {
		h.step()
	}
	if h.cu.BarrierWaiters() != 1 {
		t.Fatalf("barrier waiters = %d", h.cu.BarrierWaiters())
	}
	if h.cu.Done() {
		t.Fatal("warp done despite parked at barrier")
	}
	h.cu.ReleaseBarrier()
	h.runUntilDone(t, 50)
	if h.cu.RetiredWarps() != 1 {
		t.Error("warp did not retire after barrier release")
	}
}

func TestNextWork(t *testing.T) {
	h := newHarness(core.DRFrlx)
	w := &trace.Warp{CU: 0}
	w.Compute(50)
	h.cu.AddWarp(w)
	h.step() // issues the compute; busy until cycle+50
	wake := h.cu.NextWork(h.cycle)
	if wake <= h.cycle || wake > h.cycle+51 {
		t.Errorf("NextWork = %d at cycle %d", wake, h.cycle)
	}
	// A memory-bound warp reports no self-wake: its Join is gated on the
	// outstanding load, and only the load's completion (an event) can
	// change that.
	h2 := newHarness(core.DRF0)
	w2 := &trace.Warp{CU: 0}
	w2.Load(core.Data, 0x1000)
	w2.Join()
	h2.cu.AddWarp(w2)
	h2.step()
	h2.step()
	if wk := h2.cu.NextWork(h2.cycle); wk >= 0 && !h2.cu.Done() {
		t.Errorf("memory-bound warp should not self-wake (wake=%d)", wk)
	}
	h2.runUntilDone(t, 2000)
}

func TestEmptyWarpRetiresImmediately(t *testing.T) {
	h := newHarness(core.DRF0)
	h.cu.AddWarp(&trace.Warp{CU: 0})
	if !h.cu.Done() {
		t.Fatal("empty warp should be done at birth")
	}
}
