package workloads

import (
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/trace"
)

func TestProfileTrace(t *testing.T) {
	tr := trace.New("p")
	w := tr.AddWarp(0)
	w.Load(core.Data, 0x1000, 0x1004, 0x1040) // 2 lines
	w.Store(core.Data, 0x2000)                // 1 line
	w.Atomic(core.Commutative, core.OpInc, 0, 0x3000, 0x3000, 0x3004)
	w.AtomicLoad(core.NonOrdering, 0x4000)
	w.Barrier()
	w.ScratchAccess(trace.ScratchStore, 2)
	w.Compute(5)

	p := ProfileTrace(tr)
	if p.Warps != 1 {
		t.Errorf("warps = %d", p.Warps)
	}
	if p.Loads != 2 || p.Stores != 1 {
		t.Errorf("loads=%d stores=%d", p.Loads, p.Stores)
	}
	if p.Atomics != 4 {
		t.Errorf("atomics = %d", p.Atomics)
	}
	if p.ByClass[core.Commutative] != 3 || p.ByClass[core.NonOrdering] != 1 {
		t.Errorf("by class: %v", p.ByClass)
	}
	if p.Barriers != 1 || p.Scratch != 2 {
		t.Errorf("barriers=%d scratch=%d", p.Barriers, p.Scratch)
	}
	want := 4.0 / 7.0
	if got := p.AtomicFraction(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("atomic fraction = %f, want %f", got, want)
	}
}

func TestProfileEmptyTrace(t *testing.T) {
	p := ProfileTrace(trace.New("empty"))
	if p.AtomicFraction() != 0 {
		t.Error("empty trace fraction should be 0")
	}
}

// TestProfileMatchesPaperSelection: the registered workloads are
// atomic-heavy (that is why the paper picked them); every one exceeds a
// 30% atomic fraction, with the micros near the top.
func TestProfileMatchesPaperSelection(t *testing.T) {
	for _, e := range All() {
		p := ProfileTrace(e.Build(Test))
		if f := p.AtomicFraction(); f < 0.3 {
			t.Errorf("%s atomic fraction %.2f — too low for a relaxed-atomics study", e.Name, f)
		}
	}
	// UTS must be the only unpaired user; SEQ the only speculative one.
	for _, e := range All() {
		p := ProfileTrace(e.Build(Test))
		if p.ByClass[core.Unpaired] > 0 && e.Name != "UTS" {
			t.Errorf("%s uses unpaired atomics", e.Name)
		}
		if p.ByClass[core.Speculative] > 0 && e.Name != "SEQ" {
			t.Errorf("%s uses speculative atomics", e.Name)
		}
	}
}

func TestProfileTableRender(t *testing.T) {
	out := ProfileTable(Test)
	for _, want := range []string{"atomic%", "UTS", "HG", "quantum", "non-ordering"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile table missing %q", want)
		}
	}
	// Sorted descending by atomic fraction: the first data row should be
	// one of the all-atomic micros, and UTS (57%) must come after HG.
	hg := strings.Index(out, "\n  HG ")
	uts := strings.Index(out, "\n  UTS")
	if hg < 0 || uts < 0 || hg > uts {
		t.Errorf("profile table not sorted by atomic fraction:\n%s", out)
	}
}

// TestBCBackwardPhasePresent: BC traces include the backward phase
// (delta adds) — roughly twice the barriers of the forward-only version.
func TestBCBackwardPhasePresent(t *testing.T) {
	tr := ByName("BC-1").Build(Test)
	p := ProfileTrace(tr)
	if p.Barriers == 0 {
		t.Fatal("BC has no barriers")
	}
	// Both commutative (sigma+delta adds) and non-ordering (dist+sigma
	// checks) traffic must be present in quantity.
	if p.ByClass[core.Commutative] < 100 || p.ByClass[core.NonOrdering] < 100 {
		t.Errorf("BC class mix too thin: %v", p.ByClass)
	}
}
