package telemetry_test

import (
	"testing"

	"rats/internal/memmodel/telemetry"
)

// TestCheckStateStringExhaustive mirrors the probe/stats drift tests:
// every state below NumCheckStates must have a real, unique name, and
// the first out-of-range value must render "?". Adding a state without
// updating String fails here instead of silently rendering "?" in
// /checks payloads and JSONL records.
func TestCheckStateStringExhaustive(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < telemetry.NumCheckStates; i++ {
		s := telemetry.CheckState(i).String()
		if s == "?" || s == "" {
			t.Errorf("CheckState %d has no name (String says %q); update String alongside the constant", i, s)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("CheckState %d and %d share the name %q", prev, i, s)
		}
		seen[s] = i
	}
	if s := telemetry.CheckState(telemetry.NumCheckStates).String(); s != "?" {
		t.Errorf("CheckState %d (out of range) renders %q, want \"?\"", telemetry.NumCheckStates, s)
	}
}
