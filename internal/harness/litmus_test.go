package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
)

// smallSuite keeps sweep tests fast: a handful of cases spanning legal
// and racy programs.
func smallSuite() []litmus.Case {
	var out []litmus.Case
	want := map[string]bool{"IRIW": true, "WorkQueue": true, "Seqlocks": true, "MPData": true, "WRC": true}
	for _, tc := range litmus.Suite() {
		if want[tc.Prog.Name] {
			out = append(out, tc)
		}
	}
	return out
}

// TestLitmusSweepMatchesDirectChecks: the sweep's verdicts and theorem
// reports must match what the memmodel API returns directly, with
// results in suite order.
func TestLitmusSweepMatchesDirectChecks(t *testing.T) {
	suite := smallSuite()
	if len(suite) < 3 {
		t.Fatalf("small suite only found %d cases", len(suite))
	}
	results, err := LitmusSweep(suite, LitmusSweepOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(suite) {
		t.Fatalf("got %d results for %d cases", len(results), len(suite))
	}
	for i, r := range results {
		if r.Case.Prog.Name != suite[i].Prog.Name {
			t.Fatalf("result %d is %s, want %s (order lost)", i, r.Case.Prog.Name, suite[i].Prog.Name)
		}
		if len(r.Verdicts) != len(core.Models()) {
			t.Fatalf("%s: %d verdicts", r.Case.Prog.Name, len(r.Verdicts))
		}
		for j, m := range core.Models() {
			if r.Verdicts[j].Legal != r.Case.Legal[j] {
				t.Errorf("%s under %s: legal=%v, suite expects %v", r.Case.Prog.Name, m, r.Verdicts[j].Legal, r.Case.Legal[j])
			}
		}
		if r.Theorem == nil || (r.Theorem.Legal && !r.Theorem.SystemSC) {
			t.Errorf("%s: theorem report %+v", r.Case.Prog.Name, r.Theorem)
		}
		if len(r.Checks) != 0 {
			t.Errorf("%s: checks registered without a registry", r.Case.Prog.Name)
		}
	}
}

// TestLitmusSweepTelemetryDeterministic is the acceptance contract: the
// JSONL telemetry artifact must be byte-identical across worker counts,
// and the registry aggregates must equal the sums over the records.
func TestLitmusSweepTelemetryDeterministic(t *testing.T) {
	suite := smallSuite()
	var outputs []*bytes.Buffer
	var regs []*telemetry.Registry
	for _, workers := range []int{1, 2, 4} {
		reg := telemetry.NewRegistry()
		var buf bytes.Buffer
		prog := obs.NewProgress()
		_, err := LitmusSweep(suite, LitmusSweepOptions{
			Workers: workers,
			Check:   memmodel.CheckOptions{Workers: 2},
			Run:     &RunOptions{Checks: reg, Progress: prog, TelemetryOut: &buf},
		})
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, &buf)
		regs = append(regs, reg)

		rep := prog.Snapshot()
		if rep.Total != len(suite) || rep.Done != len(suite) {
			t.Errorf("workers=%d: progress total=%d done=%d, want %d", workers, rep.Total, rep.Done, len(suite))
		}
	}
	for i := 1; i < len(outputs); i++ {
		if !bytes.Equal(outputs[0].Bytes(), outputs[i].Bytes()) {
			t.Errorf("telemetry JSONL differs between worker counts:\n--- workers=1\n%s\n--- other\n%s",
				outputs[0].String(), outputs[i].String())
		}
	}

	// Registry totals must exactly equal the sums over the JSONL records.
	tot := regs[0].Totals()
	var execs, transitions, skips, memo int64
	lines := strings.Split(strings.TrimSpace(outputs[0].String()), "\n")
	wantLines := len(suite) * (len(core.Models()) + 1) // per-model + system
	if len(lines) != wantLines {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), wantLines)
	}
	for _, line := range lines {
		var rec telemetry.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.State != "done" {
			t.Errorf("record %s/%s state = %s", rec.Program, rec.Model, rec.State)
		}
		execs += rec.Executions
		transitions += rec.Transitions
		skips += rec.SleepSkips
		memo += rec.MemoHits
	}
	if tot.Executions != execs || tot.Transitions != transitions || tot.SleepSkips != skips || tot.MemoHits != memo {
		t.Errorf("registry totals %+v do not match JSONL sums (execs=%d transitions=%d skips=%d memo=%d)",
			tot, execs, transitions, skips, memo)
	}
	if tot.States[telemetry.StateDone] != int64(wantLines) {
		t.Errorf("done states = %d, want %d", tot.States[telemetry.StateDone], wantLines)
	}
}

// TestLitmusSweepTheoremOnly: theorem-only sweeps skip verdicts but keep
// the instrumented system-model check.
func TestLitmusSweepTheoremOnly(t *testing.T) {
	suite := smallSuite()[:2]
	reg := telemetry.NewRegistry()
	results, err := LitmusSweep(suite, LitmusSweepOptions{
		TheoremOnly: true,
		Run:         &RunOptions{Checks: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Verdicts != nil {
			t.Errorf("%s: theorem-only sweep produced verdicts", r.Case.Prog.Name)
		}
		if r.Theorem == nil {
			t.Errorf("%s: no theorem report", r.Case.Prog.Name)
		}
		if len(r.Checks) != 1 || r.Checks[0].Model() != "system" {
			t.Errorf("%s: checks = %v", r.Case.Prog.Name, r.Checks)
		}
	}
}
