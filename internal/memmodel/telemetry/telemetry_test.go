package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rats/internal/memmodel/telemetry"
)

// TestNilSafety: every method of the disabled (nil) mode must be a
// no-op — this is the contract that lets the enumerator call counters
// unconditionally.
func TestNilSafety(t *testing.T) {
	var c *telemetry.Check
	c.Begin(100)
	c.IncEnumerated()
	c.IncTransition()
	c.IncSleepSkip()
	c.AddMemoHits(3)
	c.IncRecycled()
	c.IncAllocated()
	c.SetUnion(1, 2, 3)
	c.SetSuiteWorker(4)
	c.SetClock(time.Now)
	c.Finish(telemetry.StateDone)
	w := c.Worker()
	if w != nil {
		t.Fatalf("nil Check.Worker() = %v, want nil", w)
	}
	w.IncAnalyzed()
	w.IncIdle()
	if got := c.Record(); got != (telemetry.Record{}) {
		t.Errorf("nil Record = %+v, want zero", got)
	}
	if got := c.Snapshot(); got.Executions != 0 || got.Workers != nil {
		t.Errorf("nil Snapshot = %+v, want zero", got)
	}
	if c.State() != telemetry.StateRunning {
		t.Errorf("nil State = %v", c.State())
	}

	var r *telemetry.Registry
	if r.NewCheck("p", "m") != nil {
		t.Error("nil Registry.NewCheck must return nil")
	}
	if s := r.Snapshot(); s.Total != 0 {
		t.Errorf("nil Registry snapshot = %+v", s)
	}
	if tot := r.Totals(); tot.Executions != 0 {
		t.Errorf("nil Registry totals = %+v", tot)
	}
	if recs := r.Records(); recs != nil {
		t.Errorf("nil Registry records = %v", recs)
	}
}

// fakeClock steps a fixed amount per reading, so elapsed times are
// deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func TestCheckLifecycleAndCounters(t *testing.T) {
	r := telemetry.NewRegistry()
	r.SetClock(fakeClock(10 * time.Millisecond))
	c := r.NewCheck("IRIW", "DRFrlx")
	if c.Program() != "IRIW" || c.Model() != "DRFrlx" {
		t.Fatalf("identity = %q/%q", c.Program(), c.Model())
	}
	c.Begin(500)
	if c.State() != telemetry.StateRunning {
		t.Fatalf("state after Begin = %v", c.State())
	}
	for i := 0; i < 15; i++ {
		c.IncEnumerated()
	}
	for i := 0; i < 60; i++ {
		c.IncTransition()
	}
	for i := 0; i < 40; i++ {
		c.IncSleepSkip()
	}
	c.AddMemoHits(7)
	c.IncRecycled()
	c.IncAllocated()
	c.IncAllocated()
	w0, w1 := c.Worker(), c.Worker()
	w0.IncAnalyzed()
	w0.IncAnalyzed()
	w1.IncAnalyzed()
	w1.IncIdle()
	c.SetUnion(4, 9, 2)
	c.Finish(telemetry.StateDone)
	// Second Finish must not overwrite the terminal state.
	c.Finish(telemetry.StateFailed)

	rec := c.Record()
	want := telemetry.Record{
		Program: "IRIW", Model: "DRFrlx", State: "done",
		Limit: 500, Executions: 15, Transitions: 60, SleepSkips: 40,
		PrunedPct: 40.0, MemoHits: 7, RacePairs: 4, SCResults: 2,
		BudgetFraction: 15.0 / 500,
	}
	if rec != want {
		t.Errorf("Record = %+v, want %+v", rec, want)
	}

	s := c.Snapshot()
	if s.Analyzed != 3 || s.Recycled != 1 || s.Allocated != 2 || s.MergedRaces != 9 {
		t.Errorf("snapshot scheduling counters = %+v", s)
	}
	if len(s.Workers) != 2 || s.Workers[0].Analyzed != 2 || s.Workers[1].IdleWaits != 1 {
		t.Errorf("worker snapshots = %+v", s.Workers)
	}
	if s.ElapsedMs <= 0 {
		t.Errorf("elapsed = %v, want > 0", s.ElapsedMs)
	}
	if s.ExecsPerSec <= 0 {
		t.Errorf("execs/sec = %v, want > 0", s.ExecsPerSec)
	}
	if s.StartedAt == "" {
		t.Error("StartedAt empty after Begin")
	}

	// Registry aggregates and latency.
	snap := r.Snapshot()
	if snap.Total != 1 || snap.Done != 1 || snap.Executions != 15 {
		t.Errorf("registry snapshot = %+v", snap)
	}
	if snap.Latency == nil || snap.Latency.Count != 1 {
		t.Errorf("latency summary = %+v", snap.Latency)
	}
	tot := r.Totals()
	if tot.Executions != 15 || tot.MemoHits != 7 || tot.States[telemetry.StateDone] != 1 {
		t.Errorf("totals = %+v", tot)
	}
}

// TestRegistryOrderAndRecords: snapshots and records sort by (program,
// model) regardless of registration order, and WriteRecords emits
// deterministic JSONL.
func TestRegistryOrderAndRecords(t *testing.T) {
	r := telemetry.NewRegistry()
	b := r.NewCheck("B", "DRF0")
	a2 := r.NewCheck("A", "DRFrlx")
	a1 := r.NewCheck("A", "DRF0")
	for _, c := range []*telemetry.Check{b, a2, a1} {
		c.Begin(10)
		c.IncEnumerated()
		c.Finish(telemetry.StateDone)
	}
	recs := r.Records()
	gotOrder := []string{}
	for _, rec := range recs {
		gotOrder = append(gotOrder, rec.Program+"/"+rec.Model)
	}
	wantOrder := []string{"A/DRF0", "A/DRFrlx", "B/DRF0"}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("record order = %v, want %v", gotOrder, wantOrder)
		}
	}

	var buf1, buf2 bytes.Buffer
	if err := telemetry.WriteRecords(&buf1, recs); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteRecords(&buf2, r.Records()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("WriteRecords not byte-identical across calls")
	}
	lines := strings.Split(strings.TrimSpace(buf1.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSONL lines, got %d", len(lines))
	}
	for _, line := range lines {
		var rec telemetry.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q not valid JSON: %v", line, err)
		}
		if rec.Executions != 1 || rec.BudgetFraction != 0.1 {
			t.Errorf("round-tripped record = %+v", rec)
		}
	}
}

// TestConcurrentCounters: many goroutines hammering one Check must not
// lose counts (run under -race in CI).
func TestConcurrentCounters(t *testing.T) {
	c := telemetry.NewCheck("P", "DRF0")
	c.Begin(1000)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.Worker()
			for i := 0; i < per; i++ {
				c.IncEnumerated()
				c.IncTransition()
				w.IncAnalyzed()
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	c.Finish(telemetry.StateDone)
	rec := c.Record()
	if rec.Executions != goroutines*per || rec.Transitions != goroutines*per {
		t.Errorf("lost counts: %+v", rec)
	}
	if got := c.Snapshot().Analyzed; got != goroutines*per {
		t.Errorf("analyzed = %d", got)
	}
}
