package memmodel

import (
	"fmt"
	"sort"
	"strings"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel/rel"
)

// RaceKind is one of the paper's illegal race categories.
type RaceKind uint8

const (
	DataRace RaceKind = iota
	CommutativeRace
	NonOrderingRace
	QuantumRace
	SpeculativeRace
)

func (k RaceKind) String() string {
	switch k {
	case DataRace:
		return "data race"
	case CommutativeRace:
		return "commutative race"
	case NonOrderingRace:
		return "non-ordering race"
	case QuantumRace:
		return "quantum race"
	case SpeculativeRace:
		return "speculative race"
	}
	return fmt.Sprintf("RaceKind(%d)", uint8(k))
}

// RaceKinds lists all kinds in precedence order.
func RaceKinds() []RaceKind {
	return []RaceKind{DataRace, CommutativeRace, NonOrderingRace, QuantumRace, SpeculativeRace}
}

// Analysis holds the per-execution race analysis: for each kind, the
// unordered event pairs (i < j) that form such a race.
type Analysis struct {
	Exec  *Execution
	Rel   *Relations
	Races map[RaceKind][][2]int
}

// Illegal reports whether the execution contains any illegal race under
// the given model (DRF0/DRF1 forbid data races; DRFrlx forbids all five).
func (a *Analysis) Illegal(m core.Model) bool {
	if len(a.Races[DataRace]) > 0 {
		return true
	}
	if m != core.DRFrlx {
		return false
	}
	for _, k := range []RaceKind{CommutativeRace, NonOrderingRace, QuantumRace, SpeculativeRace} {
		if len(a.Races[k]) > 0 {
			return true
		}
	}
	return false
}

// canonical folds a symmetric relation to unordered (i<j) pairs.
func canonical(r rel.Rel) [][2]int {
	seen := map[[2]int]bool{}
	for _, p := range r.Pairs() {
		i, j := p[0], p[1]
		if i > j {
			i, j = j, i
		}
		seen[[2]int{i, j}] = true
	}
	out := make([][2]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Analyze runs the programmer-centric model of Listing 7 on one SC
// execution: it computes data, commutative, non-ordering, quantum, and
// speculative races.
func Analyze(ex *Execution) *Analysis {
	r := BuildRelations(ex)
	n := r.N
	races := map[RaceKind][][2]int{}

	classSet := func(c core.Class) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = r.Class[i] == c
		}
		return out
	}
	alo := func(c core.Class) rel.Rel {
		s := classSet(c)
		any := make([]bool, n)
		for i := range any {
			any[i] = true
		}
		return rel.Cross(s, any).Union(rel.Cross(any, s))
	}

	// data-race = race & (at-least-one Data)
	dataRace := r.Race.Inter(alo(core.Data))
	races[DataRace] = canonical(dataRace)

	// Commutative race (Section 3.2.3): race with at least one commutative
	// access where (a) the accesses are not pairwise commutative, or
	// (b) either access's loaded value is observed.
	commRace := rel.New(n)
	for _, p := range r.Race.Inter(alo(core.Commutative)).Pairs() {
		i, j := p[0], p[1]
		ei, ej := ex.Events[i], ex.Events[j]
		pairwise := core.Commutes(ei.Op.AOp, ei.Op.Operand.Const, ej.Op.AOp, ej.Op.Operand.Const)
		observed := (r.IsR[i] && r.Observed[i]) || (r.IsR[j] && r.Observed[j])
		if !pairwise || observed {
			commRace.Set(i, j)
		}
	}
	races[CommutativeRace] = canonical(commRace)

	// Non-ordering race (Section 3.3.3): a racing atomic pair (X, Y) with
	// at least one non-ordering access, whose conflict-order edge lies on
	// an ordering path from some conflicting (A, B) that has no valid
	// ordering path. Per Listing 7, pairs already flagged as data or
	// commutative races are excluded.
	noRace := rel.New(n)
	bothAtomic := rel.Cross(r.IsAtomic, r.IsAtomic)
	candidates := r.Race.Inter(alo(core.NonOrdering)).Inter(bothAtomic).
		Diff(dataRace).Diff(commRace)
	for _, p := range candidates.Pairs() {
		x, y := p[0], p[1]
		if !r.CO.Has(x, y) {
			continue // consider the T-ordered direction only
		}
		if noPathIsUnique(r, x, y) {
			noRace.Set(x, y)
		}
	}
	races[NonOrderingRace] = canonical(noRace)

	// Quantum race (Section 3.4.3): race between a quantum access and a
	// non-quantum access.
	quantumSet := classSet(core.Quantum)
	qRace := r.Race.Inter(alo(core.Quantum)).Diff(rel.Cross(quantumSet, quantumSet))
	races[QuantumRace] = canonical(qRace)

	// Speculative race (Section 3.5.3): race with at least one speculative
	// access where both are writes, or the racy load's value is observed.
	specRace := rel.New(n)
	for _, p := range r.Race.Inter(alo(core.Speculative)).Pairs() {
		i, j := p[0], p[1]
		bothWrites := r.IsW[i] && r.IsW[j]
		observed := (r.IsR[i] && r.Observed[i]) || (r.IsR[j] && r.Observed[j])
		if bothWrites || observed {
			specRace.Set(i, j)
		}
	}
	races[SpeculativeRace] = canonical(specRace)

	return &Analysis{Exec: ex, Rel: r, Races: races}
}

// noPathIsUnique reports whether the conflict-order edge (x → y) lies on
// an ordering path from some conflicting pair (A, B) that has no valid
// ordering path — i.e. the non-ordering edge carries ordering
// responsibility it is not allowed to carry.
func noPathIsUnique(r *Relations, x, y int) bool {
	for a := 0; a < r.N; a++ {
		for b := 0; b < r.N; b++ {
			if a == b || !r.CO.Has(a, b) {
				continue
			}
			// A path A →* x → y →* B containing at least one po edge.
			// Reach is reflexive, so A==x / y==B degenerate into the
			// shorter path; the po edge must still exist on one side
			// (the bare conflict edge x → y is never an ordering path).
			reachable := r.Reach.Has(a, x) && r.Reach.Has(y, b)
			hasPO := r.POPath.Has(a, x) || r.POPath.Has(y, b)
			if !reachable || !hasPO {
				continue
			}
			if !r.ValidPath.Has(a, b) {
				return true
			}
		}
	}
	return false
}

// Verdict is the program-level outcome of checking every SC execution of
// the (quantum-equivalent) program.
type Verdict struct {
	Prog  string
	Model core.Model
	// Legal reports whether the program is race-free under the model
	// (a "DRF0/DRF1/DRFrlx program" per the respective definitions).
	Legal bool
	// Races collects, per kind, the distinct racy op pairs found across
	// executions, described as "thread.opindex" strings.
	Races map[RaceKind][]string
	// Execs is the number of SC executions analyzed. The enumerator
	// applies partial-order reduction, so this counts one representative
	// per trace of commuting accesses, not every interleaving.
	Execs int
	// SCResults is the set of final memory states over all SC executions
	// of the (quantum-equivalent) program.
	SCResults map[string]bool
}

// CheckProgram enumerates the SC executions of the program's
// quantum-equivalent form (as model m distinguishes its accesses) and
// classifies every race. DRF0 and DRF1 forbid data races only; DRFrlx
// forbids all five categories. The returned verdict aggregates races
// across executions.
func CheckProgram(p0 *litmus.Program, m core.Model) (*Verdict, error) {
	p := p0.Under(m)
	execs, err := Enumerate(p, EnumOptions{Quantum: true})
	if err != nil {
		return nil, err
	}
	v := &Verdict{
		Prog: p0.Name, Model: m, Legal: true,
		Races: map[RaceKind][]string{}, Execs: len(execs),
		SCResults: map[string]bool{},
	}
	kinds := []RaceKind{DataRace}
	if m == core.DRFrlx {
		kinds = RaceKinds()
	}
	seen := map[string]bool{}
	for _, ex := range execs {
		v.SCResults[ex.ResultKey()] = true
		a := Analyze(ex)
		for _, k := range kinds {
			for _, pr := range a.Races[k] {
				v.Legal = false
				ei, ej := ex.Events[pr[0]], ex.Events[pr[1]]
				desc := fmt.Sprintf("T%d.%d(%s)~T%d.%d(%s)",
					ei.Thread, ei.OpIndex, ei.Op.Class, ej.Thread, ej.OpIndex, ej.Op.Class)
				key := k.String() + ":" + desc
				if !seen[key] {
					seen[key] = true
					v.Races[k] = append(v.Races[k], desc)
				}
			}
		}
	}
	for k := range v.Races {
		sort.Strings(v.Races[k])
	}
	return v, nil
}

// Summary renders the verdict as a one-line description for reports.
func (v *Verdict) Summary() string {
	if v.Legal {
		return fmt.Sprintf("%s under %s: LEGAL (%d SC executions)", v.Prog, v.Model, v.Execs)
	}
	var parts []string
	for _, k := range RaceKinds() {
		if n := len(v.Races[k]); n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s(s)", n, k))
		}
	}
	return fmt.Sprintf("%s under %s: ILLEGAL — %s", v.Prog, v.Model, strings.Join(parts, ", "))
}
