// Package obs is the live observability endpoint: an HTTP server that
// exposes the running simulation's aggregate counters and latency
// histograms in Prometheus text format (/metrics), per-run sweep status
// (/progress), and the standard pprof handlers — so a multi-hour
// paper-scale sweep can be watched (and profiled) without waiting for it
// to finish.
package obs

import (
	"sync"
	"time"
)

// RunState is one sweep run's lifecycle state.
type RunState string

const (
	// RunRunning: the simulation is executing.
	RunRunning RunState = "running"
	// RunDone: completed successfully.
	RunDone RunState = "done"
	// RunFailed: returned an error (diagnostic, timeout, panic).
	RunFailed RunState = "failed"
	// RunRestored: restored from a checkpoint journal instead of
	// re-simulated.
	RunRestored RunState = "restored"
)

// RunStatus is one (workload, config) run's status snapshot.
type RunStatus struct {
	Workload string   `json:"workload"`
	Config   string   `json:"config"`
	State    RunState `json:"state"`
	// Cycles is the run's simulated length once finished/restored.
	Cycles int64 `json:"cycles,omitempty"`
	// Err carries the failure message for failed runs.
	Err string `json:"err,omitempty"`
	// StartedAt is the run's start time (RFC 3339, UTC). Empty for
	// statuses recorded before the run started (restored runs keep it).
	StartedAt string `json:"started_at,omitempty"`
	// ElapsedMs is the run's wall time so far (running) or total
	// (finished), in milliseconds.
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`

	started  time.Time
	finished time.Time
}

// Progress tracks a sweep's per-run status for the /progress endpoint.
// All methods are safe for concurrent use; the harness updates it from
// its worker goroutines while the HTTP server snapshots it.
type Progress struct {
	mu    sync.Mutex
	order []string // key order of first appearance (stable reporting)
	runs  map[string]*RunStatus
	start time.Time
	clock func() time.Time
}

// NewProgress builds an empty tracker.
func NewProgress() *Progress {
	p := &Progress{runs: map[string]*RunStatus{}, clock: time.Now}
	p.start = p.clock()
	return p
}

// SetClock overrides the wall clock (deterministic tests).
func (p *Progress) SetClock(fn func() time.Time) {
	p.mu.Lock()
	p.clock = fn
	p.mu.Unlock()
}

func (p *Progress) upsert(workload, cfg string, state RunState, cycles int64, errMsg string) {
	key := workload + "/" + cfg
	p.mu.Lock()
	now := p.clock()
	r := p.runs[key]
	if r == nil {
		r = &RunStatus{Workload: workload, Config: cfg}
		p.runs[key] = r
		p.order = append(p.order, key)
	}
	if state == RunRunning && r.started.IsZero() {
		r.started = now
		r.StartedAt = now.UTC().Format(time.RFC3339)
	}
	if state != RunRunning {
		r.finished = now
	}
	r.State = state
	r.Cycles = cycles
	r.Err = errMsg
	p.mu.Unlock()
}

// Start marks a run as executing.
func (p *Progress) Start(workload, cfg string) { p.upsert(workload, cfg, RunRunning, 0, "") }

// Done marks a run completed with its simulated cycle count.
func (p *Progress) Done(workload, cfg string, cycles int64) {
	p.upsert(workload, cfg, RunDone, cycles, "")
}

// Fail marks a run failed.
func (p *Progress) Fail(workload, cfg string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	p.upsert(workload, cfg, RunFailed, 0, msg)
}

// Restored marks a run restored from a checkpoint journal.
func (p *Progress) Restored(workload, cfg string, cycles int64) {
	p.upsert(workload, cfg, RunRestored, cycles, "")
}

// Report is the /progress JSON payload.
type Report struct {
	Total          int         `json:"total"`
	Running        int         `json:"running"`
	Done           int         `json:"done"`
	Failed         int         `json:"failed"`
	Restored       int         `json:"restored"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	Runs           []RunStatus `json:"runs"`
}

// Snapshot returns the current report, runs in first-appearance order.
func (p *Progress) Snapshot() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock()
	rep := Report{ElapsedSeconds: now.Sub(p.start).Seconds()}
	for _, key := range p.order {
		r := *p.runs[key]
		if !r.started.IsZero() {
			end := r.finished
			if end.IsZero() {
				end = now
			}
			r.ElapsedMs = float64(end.Sub(r.started)) / float64(time.Millisecond)
		}
		rep.Total++
		switch r.State {
		case RunRunning:
			rep.Running++
		case RunDone:
			rep.Done++
		case RunFailed:
			rep.Failed++
		case RunRestored:
			rep.Restored++
		}
		rep.Runs = append(rep.Runs, r)
	}
	return rep
}
