// Quickstart: build a tiny workload with the trace API, run it under
// GPU+DRF0 and DeNovo+DRFrlx, and compare timing and energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/trace"
)

func main() {
	// A toy event counter: 8 warps, each incrementing a shared counter
	// 32 times with commutative atomics, then a barrier, then one warp
	// reads the total with a paired load.
	build := func() *trace.Trace {
		tr := trace.New("quickstart")
		counter := uint64(0x4000)
		for w := 0; w < 8; w++ {
			warp := tr.AddWarp(w) // one warp per CU
			for i := 0; i < 32; i++ {
				warp.Atomic(core.Commutative, core.OpInc, 0, counter)
				warp.Compute(2)
			}
			warp.Barrier()
			if w == 0 {
				warp.AtomicLoad(core.Paired, counter)
			}
		}
		tr.FinalCheck = func(read func(uint64) int64) error {
			if got := read(counter); got != 8*32 {
				return fmt.Errorf("counter = %d, want %d", got, 8*32)
			}
			return nil
		}
		return tr
	}

	for _, cfg := range []memsys.Config{
		memsys.Default(memsys.ProtoGPU, core.DRF0),      // GD0: the strict baseline
		memsys.Default(memsys.ProtoDeNovo, core.DRFrlx), // DDR: the paper's best
	} {
		res, err := system.RunTrace(cfg, build())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s/%-6s  %6d cycles  %8.0f pJ  (atomics: %d at L1, %d at L2)\n",
			cfg.Protocol, cfg.Model, res.Stats.Cycles, res.Energy.Total(),
			res.Stats.AtomicsAtL1, res.Stats.AtomicsAtL2)
	}
	fmt.Println("functional check passed under both configurations")
}
