package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	r := New(3)
	r.Set(0, 1)
	r.Set(1, 2)
	if !r.Has(0, 1) || r.Has(2, 0) {
		t.Fatal("Set/Has broken")
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
	tc := r.TransClosure()
	if !tc.Has(0, 2) {
		t.Error("transitive closure missing (0,2)")
	}
	if tc.Has(2, 0) {
		t.Error("transitive closure has spurious (2,0)")
	}
	if !r.Acyclic() {
		t.Error("chain should be acyclic")
	}
	r.Set(2, 0)
	if r.Acyclic() {
		t.Error("cycle not detected")
	}
}

func TestComposeInverse(t *testing.T) {
	a := FromPairs(4, [][2]int{{0, 1}, {1, 2}})
	b := FromPairs(4, [][2]int{{1, 3}, {2, 3}})
	c := a.Compose(b)
	want := FromPairs(4, [][2]int{{0, 3}, {1, 3}})
	if len(c.Diff(want).Pairs()) != 0 || len(want.Diff(c).Pairs()) != 0 {
		t.Errorf("compose = %v, want %v", c.Pairs(), want.Pairs())
	}
	inv := a.Inverse()
	if !inv.Has(1, 0) || !inv.Has(2, 1) || inv.Count() != 2 {
		t.Errorf("inverse wrong: %v", inv.Pairs())
	}
}

func TestCross(t *testing.T) {
	a := []bool{true, false, true}
	b := []bool{false, true, true}
	c := Cross(a, b)
	want := FromPairs(3, [][2]int{{0, 1}, {0, 2}, {2, 1}, {2, 2}})
	if len(c.Diff(want).Pairs()) != 0 || len(want.Diff(c).Pairs()) != 0 {
		t.Errorf("cross = %v", c.Pairs())
	}
}

func TestEmptyIdentity(t *testing.T) {
	if !New(5).Empty() {
		t.Error("new relation not empty")
	}
	id := Identity(3)
	if id.Count() != 3 || !id.Has(1, 1) {
		t.Error("identity wrong")
	}
	r := FromPairs(3, [][2]int{{0, 1}})
	rt := r.ReflTransClosure()
	if !rt.Has(0, 0) || !rt.Has(0, 1) || !rt.Has(2, 2) {
		t.Error("reflexive transitive closure wrong")
	}
}

func randRel(rng *rand.Rand, n int, density float64) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				r.Set(i, j)
			}
		}
	}
	return r
}

// Algebraic laws, property-based.
func TestAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed + rng.Int63()))
		n := 2 + r.Intn(5)
		a, b, c := randRel(r, n, 0.3), randRel(r, n, 0.3), randRel(r, n, 0.3)

		// Union commutes, intersection commutes.
		if a.Union(b).Diff(b.Union(a)).Count() != 0 {
			return false
		}
		if a.Inter(b).Diff(b.Inter(a)).Count() != 0 {
			return false
		}
		// Composition is associative.
		l := a.Compose(b).Compose(c)
		rr := a.Compose(b.Compose(c))
		if l.Diff(rr).Count() != 0 || rr.Diff(l).Count() != 0 {
			return false
		}
		// (a;b)⁻¹ = b⁻¹;a⁻¹.
		x := a.Compose(b).Inverse()
		y := b.Inverse().Compose(a.Inverse())
		if x.Diff(y).Count() != 0 || y.Diff(x).Count() != 0 {
			return false
		}
		// Closure is idempotent and contains the original.
		tc := a.TransClosure()
		if tc.TransClosure().Diff(tc).Count() != 0 {
			return false
		}
		if a.Diff(tc).Count() != 0 {
			return false
		}
		// Closure is transitive: tc;tc ⊆ tc.
		if tc.Compose(tc).Diff(tc).Count() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	New(2).Union(New(3))
}
