package litmus

import (
	"fmt"
	"sort"
	"strings"

	"rats/internal/core"
)

// Format renders a program back into the textual form accepted by Parse
// (round-trippable for programs built with the builder API).
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "litmus %q\n", p.Name)
	if len(p.Init) > 0 {
		locs := make([]string, 0, len(p.Init))
		for l := range p.Init {
			locs = append(locs, string(l))
		}
		sort.Strings(locs)
		b.WriteString("init")
		for _, l := range locs {
			fmt.Fprintf(&b, " %s=%d", l, p.Init[Loc(l)])
		}
		b.WriteString("\n")
	}
	if len(p.QuantumDomain) > 0 {
		b.WriteString("quantum-domain")
		for _, v := range p.QuantumDomain {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteString("\n")
	}
	for ti, t := range p.Threads {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", ti)
		}
		fmt.Fprintf(&b, "\nthread %s\n", name)
		formatThread(&b, t)
	}
	return b.String()
}

func formatExpr(e Expr) string {
	var parts []string
	for _, r := range e.Regs {
		parts = append(parts, fmt.Sprintf("r%d", r))
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	return strings.Join(parts, "+")
}

func formatGuard(g Guard) string {
	op := "=="
	suffix := ""
	switch g.Op {
	case GuardNE:
		op = "!="
	case GuardEQEven:
		suffix = " even"
	}
	return fmt.Sprintf("%s %s %s%s", formatExpr(g.A), op, formatExpr(g.B), suffix)
}

func guardsKey(gs []Guard) string {
	parts := make([]string, len(gs))
	for i, g := range gs {
		parts[i] = formatGuard(g)
	}
	return strings.Join(parts, " && ")
}

var opNames = map[core.AtomicOp]string{
	core.OpAdd: "add", core.OpSub: "sub", core.OpInc: "inc", core.OpDec: "dec",
	core.OpAnd: "and", core.OpOr: "or", core.OpXor: "xor",
	core.OpMin: "min", core.OpMax: "max", core.OpExchange: "xchg",
}

func formatThread(b *strings.Builder, t *Thread) {
	open := "" // currently open guard block key
	indent := "  "
	for _, o := range t.Ops {
		key := ""
		if !o.IsBranch {
			key = guardsKey(o.Guards)
		}
		if key != open {
			if open != "" {
				fmt.Fprintf(b, "%s}\n", indent)
			}
			if key != "" {
				fmt.Fprintf(b, "%sif %s {\n", indent, key)
			}
			open = key
		}
		pad := indent
		if open != "" {
			pad += "  "
		}
		switch {
		case o.IsBranch:
			fmt.Fprintf(b, "%sbranch %s\n", pad, formatExpr(o.Cond))
		case o.AOp == core.OpLoad:
			if o.Dst != NoReg {
				fmt.Fprintf(b, "%sr%d = load %s %s\n", pad, o.Dst, o.Loc, o.Class)
			} else {
				fmt.Fprintf(b, "%sload %s %s\n", pad, o.Loc, o.Class)
			}
		case o.AOp == core.OpStore:
			fmt.Fprintf(b, "%sstore %s %s %s\n", pad, o.Loc, formatExpr(o.Operand), o.Class)
		case o.AOp == core.OpCAS:
			if o.Dst != NoReg {
				fmt.Fprintf(b, "%sr%d = cas %s %s %s %s\n", pad, o.Dst, o.Loc,
					formatExpr(o.Expected), formatExpr(o.Operand), o.Class)
			} else {
				fmt.Fprintf(b, "%scas %s %s %s %s\n", pad, o.Loc,
					formatExpr(o.Expected), formatExpr(o.Operand), o.Class)
			}
		default:
			name := opNames[o.AOp]
			if o.Dst != NoReg {
				fmt.Fprintf(b, "%sr%d = %s %s %s %s\n", pad, o.Dst, name, o.Loc, formatExpr(o.Operand), o.Class)
			} else {
				fmt.Fprintf(b, "%s%s %s %s %s\n", pad, name, o.Loc, formatExpr(o.Operand), o.Class)
			}
		}
	}
	if open != "" {
		fmt.Fprintf(b, "%s}\n", indent)
	}
}
