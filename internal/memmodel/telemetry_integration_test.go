package memmodel

import (
	"errors"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel/telemetry"
)

// TestCheckTelemetryCounts: an instrumented check's counters must agree
// with the verdict it produced — executions enumerated equals
// Verdict.Execs, every enumerated execution was analyzed, and the merge
// sizes match the verdict's race/SC sets.
func TestCheckTelemetryCounts(t *testing.T) {
	for _, prog := range []*litmus.Program{litmus.IRIW(), litmus.WorkQueue(), litmus.MPData()} {
		c := telemetry.NewCheck(prog.Name, core.DRFrlx.String())
		v, err := CheckProgramWith(prog, core.DRFrlx, CheckOptions{Telemetry: c})
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		if c.State() != telemetry.StateDone {
			t.Errorf("%s: state = %v, want done", prog.Name, c.State())
		}
		s := c.Snapshot()
		if s.Executions != int64(v.Execs) {
			t.Errorf("%s: telemetry executions = %d, verdict execs = %d", prog.Name, s.Executions, v.Execs)
		}
		if s.Analyzed != s.Executions {
			t.Errorf("%s: analyzed = %d, enumerated = %d", prog.Name, s.Analyzed, s.Executions)
		}
		if s.Transitions < s.Executions {
			t.Errorf("%s: transitions = %d < executions = %d", prog.Name, s.Transitions, s.Executions)
		}
		var distinct int
		for _, descs := range v.Races {
			distinct += len(descs)
		}
		if s.RacePairs != int64(distinct) {
			t.Errorf("%s: race pairs = %d, verdict distinct races = %d", prog.Name, s.RacePairs, distinct)
		}
		if s.SCResults != int64(len(v.SCResults)) {
			t.Errorf("%s: sc results = %d, verdict = %d", prog.Name, s.SCResults, len(v.SCResults))
		}
		if s.BudgetFraction <= 0 || s.BudgetFraction > 1 {
			t.Errorf("%s: budget fraction = %v", prog.Name, s.BudgetFraction)
		}
	}
}

// TestCheckTelemetryDeterministic: the deterministic Record must be
// byte-for-byte identical across worker counts and pipeline modes — it
// is a function of the explored search tree, not of scheduling.
func TestCheckTelemetryDeterministic(t *testing.T) {
	prog := litmus.Seqlocks()
	var want telemetry.Record
	for i, opts := range []CheckOptions{
		{Workers: 1},
		{Workers: 2},
		{Workers: 5},
		{Materialize: true},
	} {
		c := telemetry.NewCheck(prog.Name, core.DRFrlx.String())
		opts.Telemetry = c
		if _, err := CheckProgramWith(prog, core.DRFrlx, opts); err != nil {
			t.Fatal(err)
		}
		rec := c.Record()
		if i == 0 {
			want = rec
			continue
		}
		if rec != want {
			t.Errorf("opts %+v: record = %+v, want %+v", opts, rec, want)
		}
	}
}

// TestCheckTelemetryVerdictUnchanged: instrumentation must not perturb
// verdicts across the suite.
func TestCheckTelemetryVerdictUnchanged(t *testing.T) {
	for _, tc := range litmus.Suite() {
		c := telemetry.NewCheck(tc.Prog.Name, core.DRFrlx.String())
		instrumented, err := CheckProgramWith(tc.Prog, core.DRFrlx, CheckOptions{Telemetry: c})
		if err != nil {
			t.Fatalf("%s: %v", tc.Prog.Name, err)
		}
		plain, err := CheckProgram(tc.Prog, core.DRFrlx)
		if err != nil {
			t.Fatalf("%s: %v", tc.Prog.Name, err)
		}
		if instrumented.Legal != plain.Legal || instrumented.Execs != plain.Execs {
			t.Errorf("%s: instrumented verdict differs: %+v vs %+v", tc.Prog.Name, instrumented, plain)
		}
	}
}

// TestLimitErrorStructured: a budget trip surfaces the structured
// *LimitError while preserving the ErrLimit sentinel, in both search
// phases.
func TestLimitErrorStructured(t *testing.T) {
	c := telemetry.NewCheck("IRIW", core.DRFrlx.String())
	_, err := CheckProgramWith(litmus.IRIW(), core.DRFrlx, CheckOptions{Limit: 3, Telemetry: c})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %T", err)
	}
	if le.Phase != "enumeration" || le.Limit != 3 || le.Executions != 3 || le.Prog == "" {
		t.Errorf("limit error fields = %+v", le)
	}
	if le.Telemetry == nil || le.Telemetry.Executions != 3 {
		t.Errorf("limit error telemetry = %+v", le.Telemetry)
	}
	if c.State() != telemetry.StateLimit {
		t.Errorf("state = %v, want limit", c.State())
	}

	sysTel := telemetry.NewCheck("IRIW/system", "system")
	_, err = SystemResultsWith(litmus.IRIW().Under(core.DRFrlx), 2, sysTel)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("system model: want ErrLimit, got %v", err)
	}
	le = nil
	if !errors.As(err, &le) {
		t.Fatalf("system model: want *LimitError, got %T", err)
	}
	if le.Phase != "system model" || le.Limit != 2 || le.Executions != 2 {
		t.Errorf("system limit error fields = %+v", le)
	}
	if sysTel.State() != telemetry.StateLimit {
		t.Errorf("system state = %v, want limit", sysTel.State())
	}
}

// TestSystemResultsTelemetry: the memoized system search reports memo
// hits and finishes done; results are unchanged by instrumentation.
func TestSystemResultsTelemetry(t *testing.T) {
	prog := litmus.IRIW().Under(core.DRFrlx)
	c := telemetry.NewCheck(prog.Name, "system")
	instrumented, err := SystemResultsWith(prog, 0, c)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SystemResults(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrumented) != len(plain) {
		t.Errorf("instrumented results = %d, plain = %d", len(instrumented), len(plain))
	}
	if c.State() != telemetry.StateDone {
		t.Errorf("state = %v, want done", c.State())
	}
	s := c.Snapshot()
	if s.Executions == 0 || s.Transitions == 0 {
		t.Errorf("system counters empty: %+v", s)
	}
	if s.MemoHits == 0 {
		t.Errorf("memoized search reported zero memo hits")
	}
}
