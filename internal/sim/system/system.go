// Package system assembles the full simulated machine of Table 2 — mesh,
// L1s, L2 banks, CUs, CPU — and runs a workload trace to completion under
// a chosen coherence protocol and consistency model, producing timing,
// event, and energy statistics.
package system

import (
	"container/heap"
	"fmt"

	"rats/internal/energy"
	"rats/internal/probe"
	"rats/internal/sim/cu"
	"rats/internal/sim/memsys"
	"rats/internal/sim/noc"
	"rats/internal/stats"
	"rats/internal/trace"
)

// event is a scheduled callback.
type event struct {
	cycle int64
	seq   int64
	fn    func(int64)
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	v := old[n-1]
	*q = old[:n-1]
	return v
}

// System is one assembled machine instance.
type System struct {
	Cfg   memsys.Config
	env   *memsys.Env
	mesh  *noc.Mesh
	l1s   []*memsys.L1
	l2s   []*memsys.L2Bank
	cus   []*cu.CU
	stats stats.Stats

	events eventQueue
	evSeq  int64
	cycle  int64
	txnSeq int64
	tr     *trace.Trace
	probe  *probe.Hub
}

// Result is the outcome of a simulation run.
type Result struct {
	Name   string
	Cfg    memsys.Config
	Stats  stats.Stats
	Energy energy.Breakdown
	// Read returns the final functional value of a word address.
	Read func(addr uint64) int64
}

// New builds the machine for a configuration.
func New(cfg memsys.Config) *System {
	s := &System{Cfg: cfg}
	s.mesh = noc.NewMesh(cfg.MeshWidth, cfg.MeshHeight, cfg.HopLat, &s.stats)
	s.env = &memsys.Env{
		Cfg:    &s.Cfg,
		Mesh:   s.mesh,
		Stats:  &s.stats,
		Values: map[uint64]int64{},
		At:     s.at,
	}
	for n := 0; n < cfg.Nodes(); n++ {
		l1 := memsys.NewL1(s.env, n)
		l2 := memsys.NewL2Bank(s.env, n)
		s.l1s = append(s.l1s, l1)
		s.l2s = append(s.l2s, l2)
		s.cus = append(s.cus, cu.New(s.env, n, l1, &s.txnSeq))
		node := n
		s.mesh.SetReceiver(n, func(m noc.Message) { s.deliver(node, m) })
	}
	return s
}

// AttachProbe enables the observability layer: every component's
// emission points route to the hub. Call before Run; with no hub
// attached the simulator takes the nil-check fast path everywhere.
func (s *System) AttachProbe(h *probe.Hub) {
	s.probe = h
	s.env.Probe = h
	s.mesh.AttachProbe(h)
	for _, l1 := range s.l1s {
		l1.AttachProbe(h)
	}
}

// at schedules fn at the given cycle (clamped to the future so handlers
// never re-enter the current cycle's processing).
func (s *System) at(cycle int64, fn func(int64)) {
	if cycle <= s.cycle {
		cycle = s.cycle + 1
	}
	s.evSeq++
	heap.Push(&s.events, event{cycle: cycle, seq: s.evSeq, fn: fn})
}

// deliver routes a network message to the right component: L2 requests go
// to the bank, everything else to the L1.
func (s *System) deliver(node int, m noc.Message) {
	if memsys.IsL2Request(m.Payload) {
		s.l2s[node].Handle(s.cycle, m.Payload)
		return
	}
	s.l1s[node].Handle(s.cycle, m.Payload)
}

// Load places a trace's warps onto the machine and seeds the value layer.
func (s *System) Load(tr *trace.Trace) error {
	s.tr = tr
	for addr, v := range tr.Init {
		s.env.Values[s.Cfg.WordAddr(addr)] = v
	}
	for _, w := range tr.Warps {
		node := w.CU
		if w.IsCPU {
			node = s.Cfg.CPUNode
		} else if node < 0 || node >= s.Cfg.NumCUs {
			return fmt.Errorf("system: warp placed on CU %d (have %d CUs)", node, s.Cfg.NumCUs)
		}
		s.cus[node].AddWarp(w)
	}
	return nil
}

// Run executes the loaded trace to completion and returns the result.
func (s *System) Run() (*Result, error) {
	if s.tr == nil {
		return nil, fmt.Errorf("system: no trace loaded")
	}
	for {
		if s.done() {
			break
		}
		s.cycle++
		if s.cycle > s.Cfg.MaxCycles {
			return nil, fmt.Errorf("system: exceeded %d cycles running %s (deadlock?)", s.Cfg.MaxCycles, s.tr.Name)
		}
		if s.probe != nil {
			s.probe.Tick(s.cycle, &s.stats)
		}
		// 1. Run scheduled events.
		for s.events.Len() > 0 && s.events[0].cycle <= s.cycle {
			e := heap.Pop(&s.events).(event)
			e.fn(s.cycle)
		}
		// 2. Deliver network messages.
		s.mesh.Tick(s.cycle)
		// 3. L1 store-buffer drains and flush callbacks.
		for _, l1 := range s.l1s {
			l1.Tick(s.cycle)
		}
		// 4. Device-wide barrier resolution.
		s.resolveBarrier()
		// 5. CUs issue.
		for _, c := range s.cus {
			c.Tick(s.cycle)
		}
		// 6. Fast-forward over provably idle cycles.
		s.fastForward()
	}
	s.stats.Cycles = s.cycle
	if s.probe != nil {
		for _, c := range s.cus {
			c.CloseStalls(s.cycle, s.probe)
		}
		s.probe.FinalSample(s.cycle, &s.stats)
	}
	res := &Result{
		Name:   s.tr.Name,
		Cfg:    s.Cfg,
		Stats:  s.stats,
		Energy: energy.Compute(&s.stats, energy.DefaultModel()),
		Read:   func(addr uint64) int64 { return s.env.Values[s.Cfg.WordAddr(addr)] },
	}
	if s.tr.FinalCheck != nil {
		if err := s.tr.FinalCheck(res.Read); err != nil {
			return res, fmt.Errorf("system: functional check failed for %s: %w", s.tr.Name, err)
		}
	}
	return res, nil
}

// done reports whether every warp has retired and the machine is idle.
func (s *System) done() bool {
	if s.mesh.Pending() || s.events.Len() > 0 {
		return false
	}
	for _, c := range s.cus {
		if !c.Done() {
			return false
		}
	}
	for _, l1 := range s.l1s {
		if !l1.Quiesced() {
			return false
		}
	}
	return true
}

// resolveBarrier implements the device-wide barrier: when every live warp
// has arrived and every store buffer has drained, all L1s self-invalidate
// (barriers carry paired acquire+release semantics under every model) and
// the warps resume.
func (s *System) resolveBarrier() {
	waiting := 0
	for _, c := range s.cus {
		waiting += c.BarrierWaiters()
	}
	if waiting == 0 {
		return
	}
	live := 0
	for _, c := range s.cus {
		live += c.NumWarps()
	}
	// Warps that already retired no longer participate.
	retired := 0
	for _, c := range s.cus {
		retired += c.RetiredWarps()
	}
	if waiting < live-retired {
		return
	}
	for _, l1 := range s.l1s {
		if !l1.SBDrained() {
			return
		}
	}
	if s.mesh.Pending() {
		// Let in-flight traffic (write-through acks, atomics) settle.
		return
	}
	for _, l1 := range s.l1s {
		l1.AcquireInvalidate()
	}
	for _, c := range s.cus {
		c.ReleaseBarrier()
	}
	if s.probe != nil {
		s.probe.Emit(probe.Event{Cycle: s.cycle, Comp: probe.CompSystem, Node: -1,
			Warp: -1, Kind: probe.BarrierRelease, Arg: int64(waiting)})
	}
}

// fastForward advances the clock over cycles where nothing can happen:
// no CU can issue, so the next interesting cycle is the earliest event,
// message arrival, or compute completion.
func (s *System) fastForward() {
	next := int64(-1)
	min := func(t int64) {
		if t >= 0 && (next < 0 || t < next) {
			next = t
		}
	}
	for _, c := range s.cus {
		w := c.NextWake(s.cycle)
		if w >= 0 {
			min(w)
		}
	}
	for _, l1 := range s.l1s {
		if !l1.SBDrained() {
			min(s.cycle + 1)
		}
	}
	if s.events.Len() > 0 {
		min(s.events[0].cycle)
	}
	min(s.mesh.NextArrival())
	if next > s.cycle+1 {
		s.cycle = next - 1
	}
}

// RunTrace is the one-call convenience API: build, load, run.
func RunTrace(cfg memsys.Config, tr *trace.Trace) (*Result, error) {
	s := New(cfg)
	if err := s.Load(tr); err != nil {
		return nil, err
	}
	return s.Run()
}
