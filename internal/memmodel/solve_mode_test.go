package memmodel_test

import (
	"reflect"
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"

	// Registers the solve backend for CheckOptions.Mode "solve".
	_ "rats/internal/memmodel/solve"
)

// TestCheckProgramWithModeSolve exercises the dispatch path callers use:
// CheckOptions.Mode "solve" must route through the registered backend
// and agree with default enumeration on the whole suite (Execs excluded:
// the solver counts only confirmation-phase executions).
func TestCheckProgramWithModeSolve(t *testing.T) {
	for _, tc := range litmus.Suite() {
		for _, m := range []core.Model{core.DRF0, core.DRF1, core.DRFrlx} {
			want, err := memmodel.CheckProgram(tc.Prog, m)
			if err != nil {
				t.Fatalf("%s/%s enumerate: %v", tc.Prog.Name, m, err)
			}
			got, err := memmodel.CheckProgramWith(tc.Prog, m, memmodel.CheckOptions{Mode: memmodel.ModeSolve})
			if err != nil {
				t.Fatalf("%s/%s mode=solve: %v", tc.Prog.Name, m, err)
			}
			got.Execs, want.Execs = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: mode=solve diverges\n got: %+v\nwant: %+v", tc.Prog.Name, m, got, want)
			}
		}
	}
}

// TestModeSolveMaterializeFallsBack: the solver is verdict-only, so a
// Materialize request must fall back to the enumeration pipeline, which
// analyzes every enumerated execution (Execs > 0), where the solver
// itself would report zero for this statically-decided program.
func TestModeSolveMaterializeFallsBack(t *testing.T) {
	p := litmus.MP("mp_mat", core.Paired)
	v, err := memmodel.CheckProgramWith(p, core.DRFrlx, memmodel.CheckOptions{
		Mode: memmodel.ModeSolve, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Execs == 0 {
		t.Error("Materialize with mode=solve analyzed no executions; fallback to the enumerator is broken")
	}
}

// TestUnknownModeRejected pins the validation error for a mode the
// dispatcher does not know.
func TestUnknownModeRejected(t *testing.T) {
	_, err := memmodel.CheckProgramWith(litmus.IRIW(), core.DRFrlx, memmodel.CheckOptions{Mode: "dpll"})
	if err == nil || !strings.Contains(err.Error(), "unknown CheckOptions.Mode") {
		t.Fatalf("want unknown-mode error, got %v", err)
	}
}

// TestInferLabelsModeSolve: inference probes only consume Legal, so the
// solver's verdict-only fast path must yield the same minimal labellings
// as enumeration.
func TestInferLabelsModeSolve(t *testing.T) {
	p := litmus.MP("mp_infer", core.Paired)
	want, err := memmodel.InferLabels(p, memmodel.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := memmodel.InferLabels(p, memmodel.InferOptions{Mode: memmodel.ModeSolve})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("inference diverges under mode=solve:\n got: %v\nwant: %v", got, want)
	}
}
