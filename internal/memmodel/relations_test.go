package memmodel

import (
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// execWhere returns the first execution satisfying pred.
func execWhere(t *testing.T, p *litmus.Program, pred func(*Execution) bool) *Execution {
	t.Helper()
	execs, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range execs {
		if pred(ex) {
			return ex
		}
	}
	t.Fatal("no execution matches predicate")
	return nil
}

// eventAt finds the event for (thread, opIndex).
func eventAt(ex *Execution, thread, opIndex int) *Event {
	for i := range ex.Events {
		if ex.Events[i].Thread == thread && ex.Events[i].OpIndex == opIndex {
			return &ex.Events[i]
		}
	}
	return nil
}

func TestSO1AndHB1OnMP(t *testing.T) {
	p := litmus.MP("mp", core.Paired)
	// Execution where the consumer observes the flag.
	ex := execWhere(t, p, func(ex *Execution) bool {
		f := eventAt(ex, 1, 0)
		return f != nil && f.Loaded == 1
	})
	r := BuildRelations(ex)
	dStore := eventAt(ex, 0, 0).ID
	fStore := eventAt(ex, 0, 1).ID
	fLoad := eventAt(ex, 1, 0).ID
	dLoad := eventAt(ex, 1, 1).ID

	if !r.SO1.Has(fStore, fLoad) {
		t.Error("so1 edge missing between paired flag store and load")
	}
	if r.SO1.Has(fLoad, fStore) {
		t.Error("so1 must be directed")
	}
	if !r.HB1.Has(dStore, dLoad) {
		t.Error("hb1 must order payload store before guarded load")
	}
	if r.Race.Has(dStore, dLoad) || r.Race.Has(dLoad, dStore) {
		t.Error("ordered accesses must not race")
	}
	if !r.PO.Has(dStore, fStore) || r.PO.Has(fStore, dStore) {
		t.Error("program order wrong")
	}
	if !r.Conflict.Has(dStore, dLoad) || !r.Conflict.Has(dLoad, dStore) {
		t.Error("conflict must be symmetric")
	}
}

func TestConflictOrderFollowsT(t *testing.T) {
	p := litmus.New("co")
	p.Thread("a").Store("X", 1, core.Paired)
	p.Thread("b").Store("X", 2, core.Paired)
	execs, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range execs {
		r := BuildRelations(ex)
		first, second := ex.Order[0], ex.Order[1]
		if !r.CO.Has(first, second) || r.CO.Has(second, first) {
			t.Fatal("conflict order must follow T exactly")
		}
	}
}

func TestHB1IsTransitiveAndAcyclic(t *testing.T) {
	// The reduced enumerator keeps the whole catalog within the default
	// limit (one representative per trace suffices for these structural
	// invariants), so every program and every execution is checked — no
	// enumeration cap, no skip on blowup.
	for _, tc := range litmus.Suite() {
		execs, err := Enumerate(tc.Prog.Under(core.DRFrlx), EnumOptions{Quantum: true})
		if err != nil {
			t.Fatalf("%s: enumeration failed: %v", tc.Prog.Name, err)
		}
		for _, ex := range execs {
			r := BuildRelations(ex)
			// Transitivity: hb1;hb1 ⊆ hb1.
			if !r.HB1.Compose(r.HB1).Diff(r.HB1).Empty() {
				t.Fatalf("%s: hb1 not transitive", tc.Prog.Name)
			}
			if !r.HB1.Acyclic() {
				t.Fatalf("%s: hb1 cyclic", tc.Prog.Name)
			}
			// Race is symmetric and disjoint from hb1.
			if !r.Race.Diff(r.Race.Inverse()).Empty() {
				t.Fatalf("%s: race not symmetric", tc.Prog.Name)
			}
			if !r.Race.Inter(r.HB1).Empty() {
				t.Fatalf("%s: race overlaps hb1", tc.Prog.Name)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestObservedSetGuardsAlwaysCount(t *testing.T) {
	// A load whose value only feeds a guard is still observed (control
	// dependency), even when the guarded op is skipped.
	p := litmus.New("g")
	th := p.Thread("t")
	r := th.Load("X", core.Speculative)
	th.WithGuards(litmus.EQConst(r, 99)) // never true
	th.Store("Y", 1, core.Data)
	th.EndGuards()
	execs, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel := BuildRelations(execs[0])
	if !rel.Observed[0] {
		t.Error("guard-feeding load must be observed")
	}
}

func TestObservedSetSkippedOperandUse(t *testing.T) {
	// A load whose value feeds only the operand of a skipped op is NOT
	// observed in that execution (the seqlock discard property).
	p := litmus.New("g2")
	th := p.Thread("t")
	g := th.Load("G", core.Paired) // guard register, reads 0
	d := th.Load("X", core.Speculative)
	th.WithGuards(litmus.NZ(g)) // fails: G is 0
	th.StoreExpr("Y", litmus.RegExpr(d), core.Data)
	th.EndGuards()
	execs, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel := BuildRelations(execs[0])
	if rel.Observed[1] {
		t.Error("speculative load observed despite its only use being skipped")
	}
}

// TestUpgradeSingleSiteKeepsLegal: for quantum-free legal programs,
// strengthening any one atomic site to paired preserves legality (the
// upgrade-safety property the paper states for non-quantum classes in
// Section 3.4.2).
func TestUpgradeSingleSiteKeepsLegal(t *testing.T) {
	for _, tc := range litmus.Suite() {
		if tc.Prog.HasClass(core.Quantum) {
			continue // quantum may not race with stronger classes
		}
		v, err := CheckProgram(tc.Prog, core.DRFrlx)
		if err != nil || !v.Legal {
			continue
		}
		for ti, th := range tc.Prog.Threads {
			for oi, op := range th.Ops {
				if op.IsBranch || !op.Class.IsAtomic() || op.Class == core.Paired {
					continue
				}
				q := tc.Prog.Relabel(func(c core.Class) core.Class { return c })
				q.Name = tc.Prog.Name + "_up"
				q.Threads[ti].Ops[oi].Class = core.Paired
				v2, err := CheckProgram(q, core.DRFrlx)
				if err != nil {
					t.Fatal(err)
				}
				if !v2.Legal {
					t.Errorf("%s: upgrading T%d.%d (%v) to paired broke legality: %s",
						tc.Prog.Name, ti, oi, op.Class, v2.Summary())
				}
			}
		}
	}
}
