package memsys

import "rats/internal/sim/noc"

// Network message kinds, carried in noc.Payload.Kind. The payload is a
// by-value union (no per-message boxing on the Send path); the field
// mapping per kind is:
//
//	Line      — the line address (the word address for atomics)
//	Requester — the node a response (or three-hop forward) routes back to
//	Txn       — the originating transaction's id (0 when none, e.g.
//	            store-buffer drains whose transaction already completed);
//	            doubles as the atomic request id
//	Op        — the core.AtomicOp for atomic requests
//	Operand   — the atomic operand (requests) or old value (responses)
const (
	// pkReadReq asks the home L2 bank for a readable copy of a line.
	pkReadReq uint8 = iota + 1
	// pkReadResp delivers a readable copy (from the L2 bank or, under
	// DeNovo, directly from a remote owning L1).
	pkReadResp
	// pkOwnReq asks the home L2 bank for ownership of a line (DeNovo
	// stores and atomics).
	pkOwnReq
	// pkOwnResp grants ownership (from the bank or the previous owner).
	pkOwnResp
	// pkFwdRead asks a remote owning L1 to send a copy to the requester
	// (the owner keeps its registration).
	pkFwdRead
	// pkFwdOwn asks a remote owning L1 to yield ownership to the
	// requester.
	pkFwdOwn
	// pkWtReq is a GPU-coherence write-through of one line's dirty words.
	pkWtReq
	// pkWtAck acknowledges a write-through (store-buffer flush
	// accounting).
	pkWtAck
	// pkWbReq writes an evicted owned line back to the L2 (DeNovo),
	// clearing the registration.
	pkWbReq
	// pkAtomicReq performs an atomic at the home L2 bank (GPU coherence).
	pkAtomicReq
	// pkAtomicResp returns the atomic's old value.
	pkAtomicResp
)

// IsL2Request reports whether a network payload is served by the L2 bank
// (as opposed to an L1 controller).
func IsL2Request(p noc.Payload) bool {
	switch p.Kind {
	case pkReadReq, pkOwnReq, pkWtReq, pkWbReq, pkAtomicReq:
		return true
	}
	return false
}

// PayloadName renders a payload kind for liveness diagnostics (registered
// with the mesh by the system driver). The names match the concrete
// payload types this package used before the by-value union.
func PayloadName(p noc.Payload) string {
	switch p.Kind {
	case pkReadReq:
		return "memsys.readReq"
	case pkReadResp:
		return "memsys.readResp"
	case pkOwnReq:
		return "memsys.ownReq"
	case pkOwnResp:
		return "memsys.ownResp"
	case pkFwdRead:
		return "memsys.fwdRead"
	case pkFwdOwn:
		return "memsys.fwdOwn"
	case pkWtReq:
		return "memsys.wtReq"
	case pkWtAck:
		return "memsys.wtAck"
	case pkWbReq:
		return "memsys.wbReq"
	case pkAtomicReq:
		return "memsys.atomicReq"
	case pkAtomicResp:
		return "memsys.atomicResp"
	}
	return ""
}
