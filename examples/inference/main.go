// Annotation inference: given a program written entirely with SC atomics,
// search the DRFrlx class lattice for the cheapest legal labelling —
// mechanizing the "which of my atomics can I safely relax?" question the
// paper's model exists to answer.
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
)

func main() {
	// Listing 2's event counter, written naively: two workers increment a
	// shared counter and raise completion flags; the main thread joins on
	// the flags and reads the total. Every atomic is paired (SC) — which
	// ones can be relaxed?
	p := litmus.New("event-counter-naive")
	for w := 0; w < 2; w++ {
		t := p.Thread(fmt.Sprintf("worker%d", w))
		t.Inc("CTR", core.Paired)
		t.Store(litmus.Loc(fmt.Sprintf("DONE%d", w)), 1, core.Paired)
	}
	main := p.Thread("main")
	d0 := main.Load("DONE0", core.Paired)
	d1 := main.Load("DONE1", core.Paired)
	main.WithGuards(litmus.EQConst(d0, 1), litmus.EQConst(d1, 1))
	total := main.Load("CTR", core.Data) // plain read after the join
	main.EndGuards()
	main.Use(total)

	fmt.Println("annotatable sites:")
	for i, s := range memmodel.Sites(p) {
		fmt.Printf("  %d: %s\n", i, s)
	}

	start := time.Now()
	labels, err := memmodel.InferLabels(p, memmodel.InferOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum-cost legal labellings (%d found in %v):\n", len(labels), time.Since(start).Round(time.Millisecond))
	for _, l := range labels {
		fmt.Println("  ", l)
	}

	fmt.Println(`
interpretation: the DONE flags carry the ordering for the final read and
must stay paired; the racing counter increments relax for free (they
commute and their return values are discarded) — exactly Table 1's Event
Counter use case, discovered automatically. Note that quantum is opt-in
for inference: it would trivially "win" (quantum accesses may race with
anything quantum) at the price of random values, a trade-off only the
programmer can judge.`)
}
