package probe

import (
	"fmt"
	"sort"
	"strings"
)

// StallSink aggregates StallEnd durations into a per-warp breakdown of
// where issue slots went: structural back-pressure, memory, barriers,
// full store buffers, and consistency actions (the acquire/release/
// serialization costs the paper's models trade against each other). Per
// warp the intervals are disjoint, so every row's total is bounded by
// the run's total cycles.
type StallSink struct {
	perWarp map[int]*[NumStallReasons]int64
	node    map[int]int
}

// NewStallSink builds an empty aggregator.
func NewStallSink() *StallSink {
	return &StallSink{perWarp: map[int]*[NumStallReasons]int64{}, node: map[int]int{}}
}

// Emit accumulates stall-end durations; other events are ignored.
func (s *StallSink) Emit(ev Event) {
	if ev.Kind != StallEnd {
		return
	}
	row := s.perWarp[ev.Warp]
	if row == nil {
		row = &[NumStallReasons]int64{}
		s.perWarp[ev.Warp] = row
		s.node[ev.Warp] = ev.Node
	}
	row[ev.Reason] += ev.Arg
}

// Close is a no-op (the sink holds no buffered output).
func (s *StallSink) Close() error { return nil }

// reasonOrder lists the reported columns (StallNone excluded).
var reasonOrder = []StallReason{
	StallIssue, StallMemory, StallBarrier, StallStoreBufferFull, StallConsistency,
	StallFault,
}

// Warps returns the warp ids with recorded stalls, sorted.
func (s *StallSink) Warps() []int {
	ids := make([]int, 0, len(s.perWarp))
	for id := range s.perWarp {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// WarpTotal returns one warp's summed stall cycles.
func (s *StallSink) WarpTotal(warp int) int64 {
	row := s.perWarp[warp]
	if row == nil {
		return 0
	}
	var t int64
	for _, r := range reasonOrder {
		t += row[r]
	}
	return t
}

// ReasonTotals sums each reason across all warps.
func (s *StallSink) ReasonTotals() [NumStallReasons]int64 {
	var out [NumStallReasons]int64
	for _, row := range s.perWarp {
		for r, v := range row {
			out[r] += v
		}
	}
	return out
}

// Table renders the per-warp breakdown. totalCycles (the run length)
// gives each warp's stall share.
func (s *StallSink) Table(totalCycles int64) string {
	var b strings.Builder
	b.WriteString("per-warp stall attribution (cycles)\n")
	fmt.Fprintf(&b, "  %-6s %-4s", "warp", "node")
	for _, r := range reasonOrder {
		fmt.Fprintf(&b, " %18s", r)
	}
	fmt.Fprintf(&b, " %12s %8s\n", "total", "of run")
	var grand [NumStallReasons]int64
	for _, id := range s.Warps() {
		row := s.perWarp[id]
		fmt.Fprintf(&b, "  %-6d %-4d", id, s.node[id])
		var t int64
		for _, r := range reasonOrder {
			fmt.Fprintf(&b, " %18d", row[r])
			t += row[r]
			grand[r] += row[r]
		}
		share := 0.0
		if totalCycles > 0 {
			share = float64(t) / float64(totalCycles) * 100
		}
		fmt.Fprintf(&b, " %12d %7.1f%%\n", t, share)
	}
	fmt.Fprintf(&b, "  %-6s %-4s", "all", "")
	var t int64
	for _, r := range reasonOrder {
		fmt.Fprintf(&b, " %18d", grand[r])
		t += grand[r]
	}
	fmt.Fprintf(&b, " %12d\n", t)
	return b.String()
}
