package memsys

import "rats/internal/core"

// Network message payloads. All requests carry the requester's node so
// responses (and three-hop forwards) can be routed back, and the
// originating transaction's id (Txn, 0 when none — e.g. store-buffer
// drains whose transaction already completed) so the latency-span layer
// can attribute protocol legs end-to-end.

// readReq asks the home L2 bank for a readable copy of a line.
type readReq struct {
	Line      uint64
	Requester int
	Txn       int64
}

// readResp delivers a readable copy (from the L2 bank or, under DeNovo,
// directly from a remote owning L1).
type readResp struct {
	Line uint64
	Txn  int64
}

// ownReq asks the home L2 bank for ownership of a line (DeNovo stores and
// atomics).
type ownReq struct {
	Line      uint64
	Requester int
	Txn       int64
}

// ownResp grants ownership (from the bank or the previous owner).
type ownResp struct {
	Line uint64
	Txn  int64
}

// fwdRead asks a remote owning L1 to send a copy to the requester (the
// owner keeps its registration).
type fwdRead struct {
	Line      uint64
	Requester int
	Txn       int64
}

// fwdOwn asks a remote owning L1 to yield ownership to the requester.
type fwdOwn struct {
	Line      uint64
	Requester int
	Txn       int64
}

// wtReq is a GPU-coherence write-through of one line's dirty words.
type wtReq struct {
	Line      uint64
	Requester int
}

// wtAck acknowledges a write-through (store-buffer flush accounting).
type wtAck struct {
	Line uint64
}

// wbReq writes an evicted owned line back to the L2 (DeNovo), clearing
// the registration.
type wbReq struct {
	Line      uint64
	Requester int
}

// atomicReq performs an atomic at the home L2 bank (GPU coherence).
type atomicReq struct {
	ID        int64
	Addr      uint64
	AOp       core.AtomicOp
	Operand   int64
	Requester int
}

// atomicResp returns the atomic's old value.
type atomicResp struct {
	ID    int64
	Value int64
}

// IsL2Request reports whether a network payload is served by the L2 bank
// (as opposed to an L1 controller).
func IsL2Request(payload any) bool {
	switch payload.(type) {
	case readReq, ownReq, wtReq, wbReq, atomicReq:
		return true
	}
	return false
}
