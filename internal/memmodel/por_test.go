package memmodel

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// execSignature fingerprints everything about an execution that is
// invariant under reordering commuting accesses — the final state, the
// reads-from function, the event values, the final registers, and the
// race verdicts. Two executions of the same Mazurkiewicz trace have the
// same signature, so the reduced enumerator must produce exactly the
// naive enumerator's signature set.
func execSignature(ex *Execution) string {
	var b strings.Builder
	b.WriteString(ex.ResultKey())
	fmt.Fprintf(&b, "|rf=%v|present=%v|regs=%v", ex.RF, ex.Present, ex.Regs)
	for _, ev := range ex.Events {
		fmt.Fprintf(&b, "|%d:%d,%d,%t", ev.ID, ev.Loaded, ev.Stored, ev.Randomized)
	}
	a := Analyze(ex)
	for _, k := range RaceKinds() {
		prs := append([][2]int(nil), a.Races[k]...)
		sort.Slice(prs, func(i, j int) bool {
			return prs[i][0] < prs[j][0] || (prs[i][0] == prs[j][0] && prs[i][1] < prs[j][1])
		})
		fmt.Fprintf(&b, "|%v:%v", k, prs)
	}
	return b.String()
}

func signatureSet(execs []*Execution) map[string]bool {
	set := make(map[string]bool, len(execs))
	for _, ex := range execs {
		set[execSignature(ex)] = true
	}
	return set
}

// TestPORMatchesNaiveOnCatalog is the soundness property of the reduced
// parallel enumerator: on every program of the litmus catalog (both the
// raw program and its DRFrlx quantum-equivalent form), the default
// Enumerate produces exactly the naive enumerator's set of execution
// signatures — same final states, reads-from choices, values, and race
// verdicts — while never producing more executions.
func TestPORMatchesNaiveOnCatalog(t *testing.T) {
	for _, tc := range litmus.Suite() {
		tc := tc
		t.Run(tc.Prog.Name, func(t *testing.T) {
			variants := []struct {
				name string
				prog *litmus.Program
				opts EnumOptions
			}{
				{"raw", tc.Prog, EnumOptions{}},
				{"quantum-drfrlx", tc.Prog.Under(core.DRFrlx), EnumOptions{Quantum: true}},
			}
			for _, v := range variants {
				naive, err := Enumerate(v.prog, EnumOptions{Quantum: v.opts.Quantum, Naive: true})
				if err != nil {
					t.Fatalf("%s: naive enumeration failed: %v", v.name, err)
				}
				por, err := Enumerate(v.prog, v.opts)
				if err != nil {
					t.Fatalf("%s: reduced enumeration failed: %v", v.name, err)
				}
				if len(por) > len(naive) {
					t.Fatalf("%s: POR produced %d executions, naive %d", v.name, len(por), len(naive))
				}
				ns, ps := signatureSet(naive), signatureSet(por)
				for sig := range ns {
					if !ps[sig] {
						t.Errorf("%s: naive signature missing from POR set:\n%s", v.name, sig)
					}
				}
				for sig := range ps {
					if !ns[sig] {
						t.Errorf("%s: POR produced a signature naive never does:\n%s", v.name, sig)
					}
				}
				// Results must agree as sets, not just signatures.
				nr, pr := Results(naive), Results(por)
				if len(nr) != len(pr) {
					t.Fatalf("%s: result sets differ: naive %d, POR %d", v.name, len(nr), len(pr))
				}
				for k := range nr {
					if _, ok := pr[k]; !ok {
						t.Errorf("%s: final state %q lost by POR", v.name, k)
					}
				}
			}
		})
	}
}

// TestEnumerateDeterministic pins the parallel fan-out's determinism:
// repeated runs must produce the identical ordered execution list (the
// per-branch lists are concatenated in sequential branch order).
func TestEnumerateDeterministic(t *testing.T) {
	progs := []*litmus.Program{
		twoByTwo(),
		litmus.IRIW(),
		litmus.MP("mp_det", core.Paired).Under(core.DRFrlx),
	}
	for _, p := range progs {
		base, err := Enumerate(p, EnumOptions{Quantum: true})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			got, err := Enumerate(p, EnumOptions{Quantum: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(base) {
				t.Fatalf("%s: run %d produced %d executions, first run %d",
					p.Name, trial, len(got), len(base))
			}
			for i := range got {
				if fmt.Sprint(got[i].Order) != fmt.Sprint(base[i].Order) ||
					execSignature(got[i]) != execSignature(base[i]) {
					t.Fatalf("%s: execution %d differs between runs", p.Name, i)
				}
			}
		}
	}
}

// TestPORReducesIRIW pins that the reduction actually fires on the
// catalog's worst independence case (four threads, two locations).
func TestPORReducesIRIW(t *testing.T) {
	p := litmus.IRIW()
	naive, err := Enumerate(p, EnumOptions{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	por, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) < 100*len(por) {
		t.Fatalf("expected >=100x reduction on IRIW, got naive=%d por=%d", len(naive), len(por))
	}
}
