package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rats/internal/litmus"
	"rats/internal/memmodel"
)

// contendedSrc builds the service's worst-case input in textual form:
// every operation is a same-location RMW, so partial-order reduction
// prunes nothing and the interleaving count is the full multinomial —
// intractable within any sane deadline.
func contendedSrc(threads, opsPer int) string {
	var b strings.Builder
	b.WriteString("litmus \"contended\"\n")
	for t := 0; t < threads; t++ {
		fmt.Fprintf(&b, "\nthread h%d\n", t)
		for i := 0; i < opsPer; i++ {
			b.WriteString("  inc X unpaired\n")
		}
	}
	return b.String()
}

// catalogSrc renders a litmus catalog case to its textual form.
func catalogSrc(t *testing.T, name string) string {
	t.Helper()
	c := litmus.ByName(name)
	if c == nil {
		t.Fatalf("catalog case %s missing", name)
	}
	return litmus.Format(c.Prog)
}

func postCheck(t *testing.T, url string, req CheckRequest) (int, CheckResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("transport error (connection reset?): %v", err)
	}
	defer resp.Body.Close()
	var ok CheckResponse
	var bad ErrorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatalf("decode 200 body: %v", err)
		}
	} else {
		if err := dec.Decode(&bad); err != nil {
			t.Fatalf("decode %d body: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode, ok, bad
}

func newTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	s := New(opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func TestCheckVerdicts(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	cases := []struct {
		name, model string
		legal       bool
	}{
		{"MP_paired", "DRFrlx", true},
		{"MPData", "DRFrlx", false},
		{"MP_unpaired", "DRF0", true},
		{"MP_unpaired", "DRF1", false},
	}
	for _, c := range cases {
		status, ok, bad := postCheck(t, srv.URL, CheckRequest{Program: catalogSrc(t, c.name), Model: c.model})
		if status != http.StatusOK {
			t.Fatalf("%s/%s: status %d (%s: %s)", c.name, c.model, status, bad.Kind, bad.Error)
		}
		if ok.Legal != c.legal {
			t.Errorf("%s/%s: legal=%v, want %v", c.name, c.model, ok.Legal, c.legal)
		}
		if ok.Canonical == "" {
			t.Errorf("%s/%s: missing canonical key", c.name, c.model)
		}
		if len(ok.SCResults) == 0 {
			t.Errorf("%s/%s: missing sc_results", c.name, c.model)
		}
	}
}

func TestWitnessOnIllegalProgram(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	status, ok, bad := postCheck(t, srv.URL, CheckRequest{
		Program: catalogSrc(t, "MPData"), Model: "DRFrlx", Witness: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, bad.Error)
	}
	if ok.Legal {
		t.Fatal("MPData must be illegal under DRFrlx")
	}
	if !strings.Contains(ok.Witness, "witness SC execution") {
		t.Errorf("witness missing or malformed:\n%s", ok.Witness)
	}
}

// TestCacheServesRenamedResubmission checks the canonicalization story
// end to end over HTTP: a thread-permuted, location-renamed duplicate is
// a cache hit, and its verdict reads back in its own namespace.
func TestCacheServesRenamedResubmission(t *testing.T) {
	s, srv := newTestServer(t, Options{})
	orig := "litmus \"mine\"\ninit D=0 F=0\n\nthread producer\n  store D 1 data\n  store F 1 unpaired\n\nthread consumer\n  r0 = load F unpaired\n  r1 = load D data\n  use r1\n"
	// Same program: threads listed in the other order, locations renamed.
	renamed := "litmus \"theirs\"\ninit Q=0 P=0\n\nthread alpha\n  r0 = load Q unpaired\n  r1 = load P data\n  use r1\n\nthread beta\n  store P 1 data\n  store Q 1 unpaired\n"

	status, first, bad := postCheck(t, srv.URL, CheckRequest{Program: orig, Model: "DRF1"})
	if status != http.StatusOK {
		t.Fatalf("first submission: %d (%s)", status, bad.Error)
	}
	if first.Cached {
		t.Error("first submission cannot be a cache hit")
	}
	status, second, bad := postCheck(t, srv.URL, CheckRequest{Program: renamed, Model: "DRF1"})
	if status != http.StatusOK {
		t.Fatalf("renamed resubmission: %d (%s)", status, bad.Error)
	}
	if !second.Cached {
		t.Error("renamed resubmission must hit the canonical cache")
	}
	if second.Canonical != first.Canonical {
		t.Errorf("canonical keys differ: %s vs %s", first.Canonical, second.Canonical)
	}
	if second.Legal != first.Legal {
		t.Errorf("legal differs between equivalent submissions: %v vs %v", first.Legal, second.Legal)
	}
	// The cached verdict must be rewritten into the second program's
	// namespace: its races mention the renamed locations' threads, and
	// its SC results use P/Q, not D/F.
	for _, k := range second.SCResults {
		if strings.Contains(k, "D=") || strings.Contains(k, "F=") {
			t.Errorf("cached SC result leaked the original namespace: %s", k)
		}
	}
	if st := s.Stats(); st.Checked != 1 || st.CacheHits != 1 {
		t.Errorf("stats: checked=%d cacheHits=%d, want 1 and 1", st.Checked, st.CacheHits)
	}
}

// TestSingleFlightCollapsesConcurrentDuplicates floods the service with
// identical submissions and checks exactly one enumeration ran. Run
// under -race in CI.
func TestSingleFlightCollapsesConcurrentDuplicates(t *testing.T) {
	s, srv := newTestServer(t, Options{Workers: 2, QueueDepth: 64})
	src := catalogSrc(t, "IRIW")
	const n = 16
	var wg sync.WaitGroup
	statuses := make([]int, n)
	responses := make([]CheckResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], responses[i], _ = postCheck(t, srv.URL, CheckRequest{Program: src})
		}(i)
	}
	wg.Wait()
	legal0 := responses[0].Legal
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d", i, st)
		}
		if responses[i].Legal != legal0 {
			t.Errorf("request %d: verdict diverged", i)
		}
	}
	// Duplicates either joined the in-flight leader or hit the cache the
	// leader filled; at most a few leaders can slip through before the
	// first fill, but with identical keys single-flight admits only one.
	if st := s.Stats(); st.Checked != 1 {
		t.Errorf("checked=%d, want exactly 1 (single-flight collapse)", st.Checked)
	}
}

// TestDeadlineOnIntractableProgram is the ISSUE's acceptance test: an
// intractable program with a 100ms deadline gets a structured 422
// within 2x the deadline, and the checker's goroutines drain.
func TestDeadlineOnIntractableProgram(t *testing.T) {
	_, srv := newTestServer(t, Options{ExecLimit: 1 << 30, TransitionLimit: 1 << 40})
	// Idle HTTP keep-alive connections carry goroutines on both ends;
	// close them so the count below sees only the checker's goroutines.
	closeIdle := func() { http.DefaultTransport.(*http.Transport).CloseIdleConnections() }
	closeIdle()
	runtime.GC()
	before := runtime.NumGoroutine()

	const deadlineMs = 100
	start := time.Now()
	status, _, bad := postCheck(t, srv.URL, CheckRequest{
		Program: contendedSrc(7, 3), DeadlineMs: deadlineMs,
	})
	elapsed := time.Since(start)

	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%+v)", status, bad)
	}
	if bad.Kind != "deadline" {
		t.Errorf("kind %q, want %q", bad.Kind, "deadline")
	}
	if bad.Phase == "" {
		t.Errorf("structured response missing phase: %+v", bad)
	}
	if elapsed > 2*deadlineMs*time.Millisecond {
		t.Errorf("response took %s, want within 2x the %dms deadline", elapsed, deadlineMs)
	}

	// No goroutine leak: the DFS workers and analysis pool must exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		closeIdle()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTransitionBudgetTripsAs422 checks the work-budget degradation
// path: no deadline, but a transition budget that makes the intractable
// program fail fast and structured.
func TestTransitionBudgetTripsAs422(t *testing.T) {
	_, srv := newTestServer(t, Options{ExecLimit: 1 << 30, TransitionLimit: 20_000})
	status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: contendedSrc(7, 3)})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", status)
	}
	if bad.Kind != "limit" || bad.Phase != "transitions" {
		t.Errorf("got kind=%q phase=%q, want limit/transitions", bad.Kind, bad.Phase)
	}
}

// TestBurstYieldsOnlyCleanStatuses is the overload acceptance test: a
// burst of 4x the queue capacity yields only 200/429/503 — every
// connection gets an HTTP response, none are reset — and a cached
// duplicate is still served mid-burst.
func TestBurstYieldsOnlyCleanStatuses(t *testing.T) {
	s, srv := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	// Prefill the cache.
	cachedSrc := catalogSrc(t, "MP_paired")
	if status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: cachedSrc}); status != http.StatusOK {
		t.Fatalf("prefill: %d (%s)", status, bad.Error)
	}

	// Burst: 4x the total capacity (1 worker + 2 queued), every program
	// distinct so single-flight cannot collapse them.
	capacity := 1 + 2
	n := 4 * capacity
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := "litmus \"burst" + strconv.Itoa(i) + "\"\n\nthread a\n  store X " +
				strconv.Itoa(i+2) + " paired\n\nthread b\n  r0 = load X paired\n  use r0\n"
			statuses[i], _, _ = postCheck(t, srv.URL, CheckRequest{Program: src})
		}(i)
	}
	// Mid-burst, the cached duplicate must be served even if the queue
	// is at capacity.
	status, resp, bad := postCheck(t, srv.URL, CheckRequest{Program: cachedSrc})
	if status != http.StatusOK {
		t.Errorf("cached duplicate during burst: %d (%s)", status, bad.Error)
	} else if !resp.Cached {
		t.Error("duplicate during burst was recomputed, want cache hit")
	}
	wg.Wait()

	for i, st := range statuses {
		switch st {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("burst request %d: status %d, want 200/429/503", i, st)
		}
	}
	if st := s.Stats(); st.Queued != 0 || st.Running != 0 {
		t.Errorf("gauges must settle to zero after burst: queued=%d running=%d", st.Queued, st.Running)
	}
}

// TestDrainFinishesInFlight starts a slow check, begins draining, and
// checks the in-flight request completes while new work gets 503 and
// readiness flips.
func TestDrainFinishesInFlight(t *testing.T) {
	s, srv := newTestServer(t, Options{Workers: 2, ExecLimit: 1 << 30, TransitionLimit: 1 << 40})

	slow := make(chan struct{})
	var slowStatus int
	var slowBad ErrorResponse
	go func() {
		defer close(slow)
		// A generous deadline the drain must NOT cut short: the check
		// runs to its own 422, proving drain waits for in-flight work.
		slowStatus, _, slowBad = postCheck(t, srv.URL, CheckRequest{
			Program: contendedSrc(7, 3), DeadlineMs: 700,
		})
	}()

	// Wait until the slow check is running.
	for i := 0; ; i++ {
		if s.Stats().Running > 0 {
			break
		}
		if i > 200 {
			t.Fatal("slow check never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.BeginDrain()

	// Readiness flips immediately; liveness stays up.
	if resp, err := http.Get(srv.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz during drain: %d, want 503", resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz during drain: %d, want 200", resp.StatusCode)
		}
	}

	// New checks are refused...
	status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: catalogSrc(t, "IRIW")})
	if status != http.StatusServiceUnavailable || bad.Kind != "draining" {
		t.Errorf("new check during drain: %d/%q, want 503/draining", status, bad.Kind)
	}

	// ...while the in-flight one runs to completion.
	<-slow
	if slowStatus != http.StatusUnprocessableEntity || slowBad.Kind != "deadline" {
		t.Errorf("in-flight check during drain: %d/%q, want its own 422/deadline", slowStatus, slowBad.Kind)
	}
}

// TestDrainUnblocksAfterInFlight checks Drain() itself returns once the
// last in-flight request finishes.
func TestDrainUnblocksAfterInFlight(t *testing.T) {
	s, srv := newTestServer(t, Options{ExecLimit: 1 << 30, TransitionLimit: 1 << 40})
	done := make(chan struct{})
	go func() {
		defer close(done)
		postCheck(t, srv.URL, CheckRequest{Program: contendedSrc(7, 3), DeadlineMs: 300})
	}()
	for i := 0; s.Stats().Running == 0; i++ {
		if i > 200 {
			t.Fatal("check never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	<-done
}

// TestInputValidation walks the rejection matrix: every malformed input
// is refused with the right status and kind before any enumeration.
func TestInputValidation(t *testing.T) {
	_, srv := newTestServer(t, Options{MaxThreads: 3, MaxOps: 8, MaxBodyBytes: 4 << 10})
	cases := []struct {
		name   string
		req    CheckRequest
		status int
		kind   string
	}{
		{"bad model", CheckRequest{Program: catalogSrc(t, "IRIW"), Model: "DRF9"}, 400, "validate"},
		{"syntax error", CheckRequest{Program: "litmus \"x\"\n\nthread a\n  blorp X 1 data\n"}, 400, "parse"},
		{"undefined register", CheckRequest{Program: "litmus \"x\"\n\nthread a\n  store X r9 data\n"}, 400, "parse"},
		{"duplicate thread names", CheckRequest{Program: "litmus \"x\"\n\nthread a\n  store X 1 data\n\nthread a\n  store X 2 data\n"}, 400, "validate"},
		{"empty program", CheckRequest{Program: "litmus \"x\"\n\nthread a\n"}, 400, "validate"},
		{"no threads", CheckRequest{Program: "litmus \"x\"\n"}, 400, "validate"},
		{"too many threads", CheckRequest{Program: contendedSrc(4, 1)}, 400, "validate"},
		{"too many ops", CheckRequest{Program: contendedSrc(3, 3)}, 400, "validate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, bad := postCheck(t, srv.URL, c.req)
			if status != c.status || bad.Kind != c.kind {
				t.Errorf("got %d/%q (%s), want %d/%q", status, bad.Kind, bad.Error, c.status, c.kind)
			}
		})
	}

	// Oversized body.
	big := bytes.Repeat([]byte("x"), 8<<10)
	resp, err := http.Post(srv.URL+"/check", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", resp.StatusCode)
	}

	// Bad JSON.
	resp, err = http.Post(srv.URL+"/check", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", resp.StatusCode)
	}
}

// TestRateLimitPerClient drives one client over its token bucket with a
// fake clock and checks 429 + Retry-After, then refill.
func TestRateLimitPerClient(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	s := New(Options{RatePerSec: 1, RateBurst: 2, CacheSize: -1, now: clock})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Two distinct programs per wave so neither cache nor single-flight
	// absorbs the repeat.
	src := func(i int) string {
		return "litmus \"r" + strconv.Itoa(i) + "\"\n\nthread a\n  store X " + strconv.Itoa(i+1) + " data\n"
	}
	for i := 0; i < 2; i++ {
		if status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: src(i)}); status != http.StatusOK {
			t.Fatalf("burst request %d: %d (%s)", i, status, bad.Error)
		}
	}
	status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: src(2)})
	if status != http.StatusTooManyRequests || bad.Kind != "rate_limited" {
		t.Fatalf("over-budget request: %d/%q, want 429/rate_limited", status, bad.Kind)
	}
	if bad.RetryAfterMs <= 0 {
		t.Error("429 must carry a retry-after hint")
	}
	advance(2 * time.Second)
	if status, _, _ := postCheck(t, srv.URL, CheckRequest{Program: src(3)}); status != http.StatusOK {
		t.Errorf("after refill: %d, want 200", status)
	}
	if st := s.Stats(); st.RateLimited != 1 {
		t.Errorf("rateLimited=%d, want 1", st.RateLimited)
	}
}

// TestWitnessCachedAcrossRequests: the first witness request runs one
// admitted search; an identical resubmission is served from the witness
// cache with no further enumeration.
func TestWitnessCachedAcrossRequests(t *testing.T) {
	s, srv := newTestServer(t, Options{})
	req := CheckRequest{Program: catalogSrc(t, "MPData"), Model: "DRFrlx", Witness: true}
	status, first, bad := postCheck(t, srv.URL, req)
	if status != http.StatusOK || first.Witness == "" {
		t.Fatalf("first witness request: %d (%s), witness %q", status, bad.Error, first.Witness)
	}
	status, second, bad := postCheck(t, srv.URL, req)
	if status != http.StatusOK {
		t.Fatalf("second witness request: %d (%s)", status, bad.Error)
	}
	if !second.Cached || second.Witness != first.Witness {
		t.Errorf("resubmission: cached=%v, witness match=%v", second.Cached, second.Witness == first.Witness)
	}
	if st := s.Stats(); st.WitnessSearches != 1 {
		t.Errorf("witness searches = %d, want exactly 1 (second served from cache)", st.WitnessSearches)
	}
}

// TestWitnessOnCacheHitRespectsDrain: a witness request for a cached
// illegal program must not start an enumeration while draining — the
// verdict is still served, witness-less — and fresh checks still get
// 503. This pins the gate ordering: only zero-enumeration work bypasses
// the drain gate.
func TestWitnessOnCacheHitRespectsDrain(t *testing.T) {
	s, srv := newTestServer(t, Options{})
	src := catalogSrc(t, "MPData")
	// Cache the verdict without a witness.
	if status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Model: "DRFrlx"}); status != http.StatusOK {
		t.Fatalf("prefill: %d (%s)", status, bad.Error)
	}
	s.BeginDrain()
	status, resp, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Model: "DRFrlx", Witness: true})
	if status != http.StatusOK {
		t.Fatalf("cached verdict during drain: %d (%s)", status, bad.Error)
	}
	if !resp.Cached || resp.Witness != "" {
		t.Errorf("during drain: cached=%v witness=%q, want cached verdict with the witness dropped", resp.Cached, resp.Witness)
	}
	if st := s.Stats(); st.WitnessSearches != 0 || st.WitnessDrops != 1 {
		t.Errorf("stats: searches=%d drops=%d, want 0 searches and 1 drop", st.WitnessSearches, st.WitnessDrops)
	}
}

// TestWitnessOnCacheHitRespectsRateLimit: witness searches on cached
// verdicts spend rate-limit tokens like any other enumeration, and an
// empty bucket degrades to a witness-less 200 instead of running the
// search (or returning 429).
func TestWitnessOnCacheHitRespectsRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	s := New(Options{RatePerSec: 1, RateBurst: 1, now: clock})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	src := catalogSrc(t, "MPData")
	// Prefill spends the only token and caches the verdict.
	if status, _, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Model: "DRFrlx"}); status != http.StatusOK {
		t.Fatalf("prefill: %d (%s)", status, bad.Error)
	}
	status, resp, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Model: "DRFrlx", Witness: true})
	if status != http.StatusOK {
		t.Fatalf("cached verdict with empty bucket: %d (%s)", status, bad.Error)
	}
	if !resp.Cached || resp.Witness != "" {
		t.Errorf("empty bucket: cached=%v witness=%q, want cached verdict with the witness dropped", resp.Cached, resp.Witness)
	}
	if st := s.Stats(); st.WitnessSearches != 0 || st.RateLimited != 0 {
		t.Errorf("stats: searches=%d rateLimited=%d, want 0 and 0 (degraded, not rejected)", st.WitnessSearches, st.RateLimited)
	}
	// With a refilled bucket the same request runs the admitted search.
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	status, resp, bad = postCheck(t, srv.URL, CheckRequest{Program: src, Model: "DRFrlx", Witness: true})
	if status != http.StatusOK || resp.Witness == "" {
		t.Fatalf("after refill: %d (%s), witness %q", status, bad.Error, resp.Witness)
	}
	if st := s.Stats(); st.WitnessSearches != 1 {
		t.Errorf("witness searches = %d, want 1", st.WitnessSearches)
	}
}

// TestAbortedUploadNotCountedTooLarge: a client that dies mid-body must
// not be classified (and counted) as oversized input.
func TestAbortedUploadNotCountedTooLarge(t *testing.T) {
	s, srv := newTestServer(t, Options{})
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /check HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"prog")
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Requests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted request never reached the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give the handler a moment to classify the read error.
	time.Sleep(50 * time.Millisecond)
	if st := s.Stats(); st.RejectedInput != 0 {
		t.Errorf("aborted upload counted as rejected input (%d), want 0", st.RejectedInput)
	}
}

// TestSingleFlightFollowerSurvivesLeaderCancel: the shared check is
// detached from any single request — the leader's context ending cancels
// only the leader's wait, the follower still gets the verdict, and the
// call context is torn down once everyone is gone.
func TestSingleFlightFollowerSurvivesLeaderCancel(t *testing.T) {
	var g singleflight
	started := make(chan context.Context, 1)
	release := make(chan struct{})
	fn := func(ctx context.Context) (*memmodel.Verdict, error) {
		started <- ctx
		select {
		case <-release:
			return &memmodel.Verdict{Legal: true}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	type result struct {
		v         *memmodel.Verdict
		coalesced bool
		err       error
	}
	waiters := func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		if c := g.calls["k"]; c != nil {
			return c.waiters
		}
		return 0
	}

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	defer leaderCancel()
	leaderDone := make(chan result, 1)
	go func() {
		v, c, err := g.do(leaderCtx, "k", fn)
		leaderDone <- result{v, c, err}
	}()
	callCtx := <-started

	followerDone := make(chan result, 1)
	go func() {
		v, c, err := g.do(context.Background(), "k", fn)
		followerDone <- result{v, c, err}
	}()
	for i := 0; waiters() != 2; i++ {
		if i > 1000 {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	leaderCancel()
	lr := <-leaderDone
	var wc *waitCanceled
	if !errors.As(lr.err, &wc) || !errors.Is(lr.err, context.Canceled) {
		t.Fatalf("leader error = %v, want *waitCanceled wrapping context.Canceled", lr.err)
	}
	// The shared check must keep running for the follower.
	select {
	case <-callCtx.Done():
		t.Fatal("leader cancellation killed the shared check the follower is waiting on")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	fr := <-followerDone
	if fr.err != nil || fr.v == nil || !fr.v.Legal {
		t.Fatalf("follower result = (%+v, %v), want the completed verdict", fr.v, fr.err)
	}
	if !fr.coalesced {
		t.Error("follower must report it joined an existing flight")
	}
	select {
	case <-callCtx.Done():
	case <-time.After(time.Second):
		t.Error("call context not released after the flight completed")
	}
}

// TestSingleFlightFollowerOwnDeadline: a follower with a short deadline
// gets its own cancellation immediately instead of waiting out the
// leader's longer one.
func TestSingleFlightFollowerOwnDeadline(t *testing.T) {
	var g singleflight
	release := make(chan struct{})
	defer close(release)
	fn := func(ctx context.Context) (*memmodel.Verdict, error) {
		select {
		case <-release:
			return &memmodel.Verdict{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	go g.do(context.Background(), "k", fn) // leader with no deadline

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := g.do(ctx, "k", fn)
	var wc *waitCanceled
	if !errors.As(err, &wc) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower error = %v, want *waitCanceled wrapping DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("follower waited %s past its own 20ms deadline", elapsed)
	}
}

// TestSingleFlightLastWaiterCancelsCheck: when every joined request has
// given up, the now-unwanted check is canceled instead of enumerating on.
func TestSingleFlightLastWaiterCancelsCheck(t *testing.T) {
	var g singleflight
	fnErr := make(chan error, 1)
	fn := func(ctx context.Context) (*memmodel.Verdict, error) {
		<-ctx.Done()
		fnErr <- ctx.Err()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.do(ctx, "k", fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter error = %v, want canceled", err)
	}
	select {
	case err := <-fnErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("check saw %v, want cancellation", err)
		}
	case <-time.After(time.Second):
		t.Error("abandoned check was never canceled")
	}
}

// TestMetricsExposition checks the Prometheus rendering covers the
// counters that changed.
func TestMetricsExposition(t *testing.T) {
	s, srv := newTestServer(t, Options{})
	postCheck(t, srv.URL, CheckRequest{Program: catalogSrc(t, "MP_paired")})
	postCheck(t, srv.URL, CheckRequest{Program: catalogSrc(t, "MP_paired")})
	var b bytes.Buffer
	s.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"rats_serve_requests_total 2",
		"rats_serve_ok_total 2",
		"rats_serve_checked_total 1",
		"rats_serve_cache_hits_total 1",
		"rats_serve_in_flight 0",
		"rats_serve_queue_depth 0",
		"rats_serve_cache_entries 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestModeSolveVerdictsMatch: a request with mode "solve" routes through
// the constraint-solving backend and must report the same legality,
// races, SC results, and canonical key the default enumeration reports
// (Execs legitimately differs: the solver only enumerates during its
// confirmation phase).
func TestModeSolveVerdictsMatch(t *testing.T) {
	_, srv := newTestServer(t, Options{CacheSize: -1})
	for _, c := range []struct {
		name, model string
	}{
		{"MP_paired", "DRFrlx"},
		{"MPData", "DRFrlx"},
		{"EventCounterObserved", "DRFrlx"},
		{"MP_unpaired", "DRF1"},
	} {
		src := catalogSrc(t, c.name)
		st, enum, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Model: c.model})
		if st != http.StatusOK {
			t.Fatalf("%s enumeration: status %d (%s)", c.name, st, bad.Error)
		}
		st, solved, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Model: c.model, Mode: "solve"})
		if st != http.StatusOK {
			t.Fatalf("%s mode=solve: status %d (%s)", c.name, st, bad.Error)
		}
		if solved.Legal != enum.Legal {
			t.Errorf("%s: legal=%v under solve, %v under enumeration", c.name, solved.Legal, enum.Legal)
		}
		if fmt.Sprint(solved.Races) != fmt.Sprint(enum.Races) {
			t.Errorf("%s: races diverge:\nsolve: %v\nenum:  %v", c.name, solved.Races, enum.Races)
		}
		if fmt.Sprint(solved.SCResults) != fmt.Sprint(enum.SCResults) {
			t.Errorf("%s: sc_results diverge:\nsolve: %v\nenum:  %v", c.name, solved.SCResults, enum.SCResults)
		}
		if solved.Canonical != enum.Canonical {
			t.Errorf("%s: canonical keys diverge: %s vs %s", c.name, solved.Canonical, enum.Canonical)
		}
	}
}

// TestModeSolveContendedWithinDeadline is the served form of the
// tentpole claim: the contended 7-thread program that blows a deadline
// under enumeration (see TestTraceDeadlineReconciles) completes through
// mode=solve well inside the same order of deadline.
func TestModeSolveContendedWithinDeadline(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	st, ok, bad := postCheck(t, srv.URL, CheckRequest{
		Program: contendedSrc(7, 3), Mode: "solve", DeadlineMs: 2000,
	})
	if st != http.StatusOK {
		t.Fatalf("mode=solve on contended(7,3): status %d (%s: %s)", st, bad.Kind, bad.Error)
	}
	if !ok.Legal {
		t.Error("contended unpaired increments are race-free")
	}
	if len(ok.SCResults) != 1 || ok.SCResults[0] != "X=21;" {
		t.Errorf("sc_results: got %v, want [X=21;]", ok.SCResults)
	}
}

// TestModeUnknownRejected: a mode the dispatcher does not know is a
// validation error, rejected before any parsing of the program.
func TestModeUnknownRejected(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	st, _, bad := postCheck(t, srv.URL, CheckRequest{Program: catalogSrc(t, "IRIW"), Mode: "dpll"})
	if st != http.StatusBadRequest || bad.Kind != "validate" {
		t.Fatalf("unknown mode: %d/%q, want 400/validate", st, bad.Kind)
	}
	if !strings.Contains(bad.Error, "dpll") {
		t.Errorf("error %q does not name the rejected mode", bad.Error)
	}
}

// TestModeSolveCachedSeparately: the two backends report different Execs
// counts, so a solve request must not be served from an enumeration
// request's cache entry (and vice versa) — but repeated solve requests
// share one.
func TestModeSolveCachedSeparately(t *testing.T) {
	_, srv := newTestServer(t, Options{})
	src := catalogSrc(t, "MP_paired")
	if st, _, bad := postCheck(t, srv.URL, CheckRequest{Program: src}); st != http.StatusOK {
		t.Fatalf("enumeration warm-up: status %d (%s)", st, bad.Error)
	}
	st, first, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Mode: "solve"})
	if st != http.StatusOK {
		t.Fatalf("first solve: status %d (%s)", st, bad.Error)
	}
	if first.Cached {
		t.Error("solve request was served from the enumeration cache entry")
	}
	st, second, bad := postCheck(t, srv.URL, CheckRequest{Program: src, Mode: "solve"})
	if st != http.StatusOK {
		t.Fatalf("second solve: status %d (%s)", st, bad.Error)
	}
	if !second.Cached {
		t.Error("repeated solve request missed the cache")
	}
}
