package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"rats/internal/stats"
)

// IntervalFormat selects the interval-metrics output encoding.
type IntervalFormat uint8

const (
	// FormatCSV writes a header row then one row per sample.
	FormatCSV IntervalFormat = iota
	// FormatJSON writes a JSON array of {cycle, counter: value, ...}
	// objects.
	FormatJSON
)

// IntervalSink samples the aggregate stats.Stats counters on a fixed
// cycle interval (driven by Hub.Tick) into a time series, so a figure
// regression can be localized in simulated time instead of only showing
// up in the end-of-run totals. It ignores the discrete event stream.
type IntervalSink struct {
	bw     *bufio.Writer
	format IntervalFormat
	err    error

	count int
	last  stats.Stats
}

// NewIntervalSink builds the sink over w. The caller owns w and closes
// it after Close.
func NewIntervalSink(w io.Writer, format IntervalFormat) *IntervalSink {
	s := &IntervalSink{bw: bufio.NewWriter(w), format: format}
	switch format {
	case FormatCSV:
		s.bw.WriteString("cycle")
		z := stats.Stats{}
		for _, r := range z.Rows() {
			fmt.Fprintf(s.bw, ",%s", r.Name)
		}
		s.bw.WriteByte('\n')
	case FormatJSON:
		s.bw.WriteByte('[')
	}
	return s
}

// Emit ignores discrete events (this sink only samples).
func (s *IntervalSink) Emit(Event) {}

// Sample appends one row of the time series.
func (s *IntervalSink) Sample(cycle int64, snap stats.Stats) {
	if s.err != nil {
		return
	}
	s.count++
	s.last = snap
	switch s.format {
	case FormatCSV:
		fmt.Fprintf(s.bw, "%d", cycle)
		for _, r := range snap.Rows() {
			fmt.Fprintf(s.bw, ",%d", r.Value)
		}
		s.bw.WriteByte('\n')
	case FormatJSON:
		obj := map[string]int64{"cycle": cycle}
		for _, r := range snap.Rows() {
			obj[r.Name] = r.Value
		}
		b, err := json.Marshal(obj)
		if err != nil {
			s.err = err
			return
		}
		if s.count > 1 {
			s.bw.WriteByte(',')
		}
		s.bw.Write(b)
	}
}

// Count returns the number of samples taken.
func (s *IntervalSink) Count() int { return s.count }

// Last returns the most recent sample (the end-of-run aggregate once
// FinalSample has fired).
func (s *IntervalSink) Last() stats.Stats { return s.last }

// Close writes the trailer and flushes.
func (s *IntervalSink) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.format == FormatJSON {
		s.bw.WriteString("]\n")
	}
	return s.bw.Flush()
}
