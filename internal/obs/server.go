package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rats/internal/memmodel/telemetry"
	"rats/internal/probe"
	"rats/internal/rtrace"
	"rats/internal/stats"
)

// StatsGauge is a probe sink that keeps the most recent interval sample
// of the aggregate counters for the /metrics endpoint. It ignores the
// discrete event stream (the latency sink handles per-transaction
// detail) and is safe to read while the simulation thread samples.
type StatsGauge struct {
	mu    sync.Mutex
	cycle int64
	snap  stats.Stats
}

// Emit ignores discrete events.
func (g *StatsGauge) Emit(probe.Event) {}

// Sample stores the snapshot (called by the hub on interval boundaries
// and at end of run).
func (g *StatsGauge) Sample(cycle int64, snap stats.Stats) {
	g.mu.Lock()
	g.cycle = cycle
	g.snap = snap
	g.mu.Unlock()
}

// Close is a no-op.
func (g *StatsGauge) Close() error { return nil }

// Snapshot returns the latest sample.
func (g *StatsGauge) Snapshot() (int64, stats.Stats) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cycle, g.snap
}

// Server is the live observability HTTP endpoint. It serves:
//
//	/metrics  — Prometheus text exposition: run-info labels, the
//	            aggregate simulation counters (rats_* gauges), the
//	            per-transaction latency histogram split by op class and
//	            hit level, and the rats_check_* semantics-checker
//	            aggregates when a telemetry registry is attached
//	/progress — sweep status JSON (per-run state, counts, elapsed time)
//	/checks   — semantics-check telemetry JSON (per-check live counters,
//	            sorted by program then model)
//	/buildinfo — binary identity JSON (Go version, VCS revision, run info)
//	/debug/pprof/ — the standard Go profiling handlers
//
// All data sources are optional; absent ones are simply omitted from the
// output, so the same server works for a single ratsim run (gauge +
// latency) and a ratsfigures sweep (progress + per-run merges).
type Server struct {
	mu       sync.Mutex
	info     map[string]string
	gauge    *StatsGauge
	latency  *probe.LatencySink
	progress *Progress
	checks   *telemetry.Registry
	traces   *rtrace.Tracer
	extra    []func(w io.Writer)
	extraOM  []func(w io.Writer, om bool)
	handlers map[string]http.Handler

	ln  net.Listener
	srv *http.Server
}

// Connection hardening for the observability listener. The endpoints are
// read-only and cheap, so slow or hostile clients get short read windows;
// there is deliberately no WriteTimeout because /debug/pprof/profile
// streams for a caller-chosen number of seconds.
const (
	serverReadHeaderTimeout = 5 * time.Second
	serverReadTimeout       = 30 * time.Second
	serverIdleTimeout       = 2 * time.Minute
	serverMaxHeaderBytes    = 1 << 20
	// serverMaxBodyBytes bounds request bodies on every endpoint; the
	// built-in endpoints ignore bodies entirely, and mounted extensions
	// (Handle) accept litmus programs, which are tiny.
	serverMaxBodyBytes = 1 << 20
)

// NewServer builds a server with no data sources attached.
func NewServer() *Server { return &Server{info: map[string]string{}} }

// SetRunInfo sets one rats_run_info label (e.g. workload, config,
// scale).
func (s *Server) SetRunInfo(key, value string) {
	s.mu.Lock()
	s.info[key] = value
	s.mu.Unlock()
}

// SetGauge attaches the aggregate-counter source.
func (s *Server) SetGauge(g *StatsGauge) {
	s.mu.Lock()
	s.gauge = g
	s.mu.Unlock()
}

// SetLatency attaches the per-transaction latency source.
func (s *Server) SetLatency(l *probe.LatencySink) {
	s.mu.Lock()
	s.latency = l
	s.mu.Unlock()
}

// SetProgress attaches the sweep progress source.
func (s *Server) SetProgress(p *Progress) {
	s.mu.Lock()
	s.progress = p
	s.mu.Unlock()
}

// SetChecks attaches the semantics-check telemetry registry: its
// aggregates appear as rats_check_* metrics on /metrics and its per-check
// state as the /checks JSON payload.
func (s *Server) SetChecks(r *telemetry.Registry) {
	s.mu.Lock()
	s.checks = r
	s.mu.Unlock()
}

// AddMetricsFunc registers an extra metrics source: f is invoked at the
// end of every /metrics render (and WriteMetrics call) to append its own
// exposition lines. Sources render in registration order.
func (s *Server) AddMetricsFunc(f func(w io.Writer)) {
	s.mu.Lock()
	s.extra = append(s.extra, f)
	s.mu.Unlock()
}

// AddMetricsOM registers a format-aware metrics source: f receives om
// true when the scrape negotiated the OpenMetrics content type (so it
// can attach exemplars) and false for the classic text format. It
// renders alongside AddMetricsFunc sources in registration order.
func (s *Server) AddMetricsOM(f func(w io.Writer, om bool)) {
	s.mu.Lock()
	s.extraOM = append(s.extraOM, f)
	s.mu.Unlock()
}

// Handle mounts an additional handler on the server's mux under pattern.
// Registered handlers share the server's connection hardening and body
// bounds. Must be called before Handler/Start.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mu.Lock()
	if s.handlers == nil {
		s.handlers = map[string]http.Handler{}
	}
	s.handlers[pattern] = h
	s.mu.Unlock()
}

func (s *Server) sources() (map[string]string, *StatsGauge, *probe.LatencySink, *Progress, *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := make(map[string]string, len(s.info))
	for k, v := range s.info {
		info[k] = v
	}
	return info, s.gauge, s.latency, s.progress, s.checks
}

// WriteMetrics renders the classic Prometheus text exposition. The
// output is deterministic for a fixed state: run-info labels and latency
// keys are sorted, counters follow stats.Rows order, and histogram
// buckets are emitted in increasing bound order (non-empty buckets plus
// +Inf).
func (s *Server) WriteMetrics(w io.Writer) {
	s.writeMetrics(w, false)
}

// writeMetrics renders either the classic text format (om false,
// byte-identical to what WriteMetrics always produced) or OpenMetrics
// (om true): counter TYPE lines drop the _total suffix, latency-
// histogram buckets carry `# {trace_id=...}` exemplars when the
// telemetry registry has them, and the output ends with `# EOF`.
func (s *Server) writeMetrics(w io.Writer, om bool) {
	info, gauge, latency, _, checks := s.sources()

	if len(info) > 0 {
		keys := make([]string, 0, len(info))
		for k := range info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP rats_run_info Run identity labels.\n# TYPE rats_run_info gauge\nrats_run_info{")
		for i, k := range keys {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", k, info[k])
		}
		io.WriteString(w, "} 1\n")
	}

	if gauge != nil {
		cycle, snap := gauge.Snapshot()
		snap.Cycles = cycle
		for _, r := range snap.Rows() {
			fmt.Fprintf(w, "# TYPE rats_%s gauge\nrats_%s %d\n", r.Name, r.Name, r.Value)
		}
	}

	if latency != nil {
		snap := latency.Snapshot()
		if len(snap) > 0 {
			fmt.Fprintf(w, "# HELP rats_txn_latency_cycles Per-transaction memory latency in cycles.\n# TYPE rats_txn_latency_cycles histogram\n")
			for _, k := range probe.SortKeys(snap) {
				e := snap[k]
				labels := fmt.Sprintf("op=%q,level=%q", k.Op.String(), k.Level.String())
				cum := int64(0)
				e.Hist.Each(func(upper, count int64) {
					cum += count
					fmt.Fprintf(w, "rats_txn_latency_cycles_bucket{%s,le=\"%d\"} %d\n", labels, upper, cum)
				})
				fmt.Fprintf(w, "rats_txn_latency_cycles_bucket{%s,le=\"+Inf\"} %d\n", labels, e.Hist.Count())
				fmt.Fprintf(w, "rats_txn_latency_cycles_sum{%s} %d\n", labels, e.Hist.Sum())
				fmt.Fprintf(w, "rats_txn_latency_cycles_count{%s} %d\n", labels, e.Hist.Count())
			}
		}
	}

	if checks != nil {
		tot := checks.Totals()
		fmt.Fprintf(w, "# HELP rats_check_total Semantics checks registered, by state.\n# TYPE rats_check_total gauge\n")
		for st := 0; st < telemetry.NumCheckStates; st++ {
			fmt.Fprintf(w, "rats_check_total{state=%q} %d\n", telemetry.CheckState(st).String(), tot.States[st])
		}
		counters := []struct {
			name, help string
			value      int64
		}{
			{"executions", "Executions enumerated across all checks.", tot.Executions},
			{"transitions", "Search transitions taken across all checks.", tot.Transitions},
			{"sleep_skips", "Transitions pruned by sleep sets.", tot.SleepSkips},
			{"memo_hits", "Seen-state memoization hits (system-model searches).", tot.MemoHits},
			{"analyzed", "Executions classified by analysis workers.", tot.Analyzed},
			{"recycled", "Executions reused through the streaming recycle pool.", tot.Recycled},
			{"allocated", "Executions freshly allocated by the enumerator.", tot.Allocated},
			{"race_pairs", "Distinct racy pairs across final verdicts.", tot.RacePairs},
			{"sc_results", "Distinct SC results across final verdicts.", tot.SCResults},
			{"solver_decisions", "Solve-mode branching states (DPLL decisions).", tot.SolveDecisions},
			{"solver_propagations", "Solve-mode forced moves and statically implied pairs (unit propagations).", tot.SolvePropagations},
			{"solver_conflicts", "Solve-mode memo hits and statically refuted pairs (conflicts).", tot.SolveConflicts},
			{"solver_learned", "Solve-mode memoized states (learned entries).", tot.SolveLearned},
		}
		for _, c := range counters {
			if om {
				fmt.Fprintf(w, "# HELP rats_check_%s %s\n# TYPE rats_check_%s counter\nrats_check_%s_total %d\n",
					c.name, c.help, c.name, c.name, c.value)
			} else {
				fmt.Fprintf(w, "# HELP rats_check_%s_total %s\n# TYPE rats_check_%s_total counter\nrats_check_%s_total %d\n",
					c.name, c.help, c.name, c.name, c.value)
			}
		}
		if lat := checks.Latency(); lat.Count() > 0 {
			var exemplars map[int64]telemetry.Exemplar
			if om {
				exemplars = checks.LatencyExemplars()
			}
			fmt.Fprintf(w, "# HELP rats_check_latency_us Per-check wall time in microseconds.\n# TYPE rats_check_latency_us histogram\n")
			cum := int64(0)
			lat.Each(func(upper, count int64) {
				cum += count
				fmt.Fprintf(w, "rats_check_latency_us_bucket{le=\"%d\"} %d", upper, cum)
				if ex, ok := exemplars[upper]; ok {
					fmt.Fprintf(w, " # {trace_id=%q} %d %.3f", ex.TraceID, ex.ValueUs,
						float64(ex.At.UnixNano())/1e9)
				}
				fmt.Fprintln(w)
			})
			fmt.Fprintf(w, "rats_check_latency_us_bucket{le=\"+Inf\"} %d\n", lat.Count())
			fmt.Fprintf(w, "rats_check_latency_us_sum %d\n", lat.Sum())
			fmt.Fprintf(w, "rats_check_latency_us_count %d\n", lat.Count())
		}
	}

	s.mu.Lock()
	extra := make([]func(w io.Writer), len(s.extra))
	copy(extra, s.extra)
	extraOM := make([]func(w io.Writer, om bool), len(s.extraOM))
	copy(extraOM, s.extraOM)
	s.mu.Unlock()
	for _, f := range extra {
		f(w)
	}
	for _, f := range extraOM {
		f(w, om)
	}
	if om {
		io.WriteString(w, "# EOF\n")
	}
}

// BuildInfo is the /buildinfo JSON payload: toolchain and VCS identity of
// the serving binary plus the run-info labels, so a dashboard scraping a
// long sweep can pin down exactly what produced the numbers.
type BuildInfo struct {
	GoVersion   string            `json:"go_version"`
	Module      string            `json:"module,omitempty"`
	Version     string            `json:"version,omitempty"`
	VCSRevision string            `json:"vcs_revision,omitempty"`
	VCSTime     string            `json:"vcs_time,omitempty"`
	VCSModified bool              `json:"vcs_modified,omitempty"`
	Run         map[string]string `json:"run,omitempty"`
}

// buildInfo collects the payload from the runtime's embedded build info.
func (s *Server) buildInfo() BuildInfo {
	info, _, _, _, _ := s.sources()
	bi := BuildInfo{GoVersion: runtime.Version()}
	if len(info) > 0 {
		bi.Run = info
	}
	if rbi, ok := debug.ReadBuildInfo(); ok {
		bi.Module = rbi.Main.Path
		bi.Version = rbi.Main.Version
		for _, st := range rbi.Settings {
			switch st.Key {
			case "vcs.revision":
				bi.VCSRevision = st.Value
			case "vcs.time":
				bi.VCSTime = st.Value
			case "vcs.modified":
				bi.VCSModified = st.Value == "true"
			}
		}
	}
	return bi
}

// Handler returns the HTTP mux serving /metrics, /progress, and
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			s.writeMetrics(w, true)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w, false)
	})
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _, _, progress, _ := s.sources()
		rep := Report{}
		if progress != nil {
			rep = progress.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
	mux.HandleFunc("/checks", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _, _, _, checks := s.sources()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(checks.Snapshot())
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.buildInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	for pattern, h := range s.handlers {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	return boundBodies(mux)
}

// boundBodies caps every request body so no handler — built-in or
// mounted — can be made to buffer an unbounded upload.
func boundBodies(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, serverMaxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// Start binds addr (e.g. ":6060"; ":0" picks a free port) and serves in
// a background goroutine. It returns the bound address. The listener is
// hardened against slow clients: header and request reads time out and
// idle keep-alive connections are reaped, so a slowloris peer cannot pin
// the endpoint for the lifetime of a sweep.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: serverReadHeaderTimeout,
		ReadTimeout:       serverReadTimeout,
		IdleTimeout:       serverIdleTimeout,
		MaxHeaderBytes:    serverMaxHeaderBytes,
	}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops the listener: new connections are refused
// while in-flight requests run to completion (or ctx expires).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv != nil {
		return s.srv.Shutdown(ctx)
	}
	return nil
}

// Close stops the listener immediately, dropping in-flight requests.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}
