package probe

import (
	"bufio"
	"encoding/json"
	"io"
)

// Seg indexes a span's per-level latency decomposition: each cycle
// between a transaction's coalescer push and its completion is attributed
// to exactly one segment, so the segments always sum to End-Start.
type Seg uint8

const (
	// SegCoalescer: queued in the CU coalescer behind earlier
	// transactions (issue-side queueing).
	SegCoalescer Seg = iota
	// SegL1: L1 tag lookup, local atomic unit, completion delivery, and
	// remote-L1 service time in three-hop forwards.
	SegL1
	// SegMSHR: parked on an MSHR entry behind another transaction's
	// outstanding request (miss-side queueing).
	SegMSHR
	// SegNoC: in flight on the mesh — request, forward, and response legs,
	// including link-contention queueing.
	SegNoC
	// SegL2: at the home L2 bank (tag pipeline, registry, bank atomic
	// unit).
	SegL2
	// SegMem: DRAM port queueing plus the DRAM access itself.
	SegMem
	// NumSegs bounds arrays indexed by segment.
	NumSegs
)

func (s Seg) String() string {
	switch s {
	case SegCoalescer:
		return "coalescer"
	case SegL1:
		return "l1"
	case SegMSHR:
		return "mshr"
	case SegNoC:
		return "noc"
	case SegL2:
		return "l2"
	case SegMem:
		return "mem"
	}
	return "?"
}

// SpanOp classifies a transaction for histogram keying: the plain
// load/store data path versus the atomic classes whose consistency
// actions the paper's argument is about.
type SpanOp uint8

const (
	SpanLoad SpanOp = iota
	SpanStore
	// SpanAtomic covers relaxed/commutative/etc. atomics and paired SC
	// atomics — everything that is not specifically acquire- or
	// release-classified.
	SpanAtomic
	SpanAcquire
	SpanRelease
	// NumSpanOps bounds arrays indexed by op class.
	NumSpanOps
)

func (o SpanOp) String() string {
	switch o {
	case SpanLoad:
		return "load"
	case SpanStore:
		return "store"
	case SpanAtomic:
		return "atomic"
	case SpanAcquire:
		return "acquire"
	case SpanRelease:
		return "release"
	}
	return "?"
}

// HitLevel is the deepest point of the hierarchy a transaction reached.
type HitLevel uint8

const (
	// HitL1: served entirely at the local L1 (hits, store-buffer stores,
	// work-group-scoped atomics).
	HitL1 HitLevel = iota
	// HitL2: missed L1, served by the home L2 bank.
	HitL2
	// HitRemoteL1: three-hop — the L2 registry forwarded to a remote
	// owning L1.
	HitRemoteL1
	// HitMem: missed L2, served by DRAM.
	HitMem
	// NumHitLevels bounds arrays indexed by hit level.
	NumHitLevels
)

func (l HitLevel) String() string {
	switch l {
	case HitL1:
		return "l1"
	case HitL2:
		return "l2"
	case HitRemoteL1:
		return "remote-l1"
	case HitMem:
		return "mem"
	}
	return "?"
}

// Span is one completed memory transaction's latency record.
type Span struct {
	Txn  int64
	Warp int
	Node int
	Op   SpanOp
	// Level is the deepest hierarchy level the transaction reached.
	Level HitLevel
	Addr  uint64
	// Start is the coalescer-push cycle, End the completion cycle.
	Start, End int64
	// Segs is the per-level cycle decomposition; entries sum to End-Start.
	Segs [NumSegs]int64
}

// Latency returns the span's total duration in cycles.
func (s *Span) Latency() int64 { return s.End - s.Start }

// openSpan is an in-flight span being reassembled.
type openSpan struct {
	Span
	// last is the monotone per-transaction clock: the cycle of the latest
	// event attributed so far.
	last int64
	// mode is the segment the next gap will be attributed to.
	mode Seg
	// postNoC defers attribution after a NoC delivery until the next
	// event reveals which side (L1 or L2 bank) consumed the message.
	postNoC bool
}

// SpanSink reassembles the Txn-keyed event stream into per-transaction
// latency spans. It is a gap-attribution state machine: each event
// advances the transaction's clock, charging the elapsed gap to the
// segment implied by the previous event (waiting in the coalescer,
// parked on an MSHR, in flight on the mesh, at the L2 bank, in DRAM),
// then updates that mode from the event's kind. A TxnComplete event
// finalizes the span and hands it to the callback.
//
// The sink is tolerant by construction: events for unknown transactions
// (completed stores draining from the store buffer, writebacks) are
// ignored, out-of-order timestamps never make the clock go backwards
// (the invariant sum(Segs) == End-Start holds regardless), and
// transactions that never complete simply stay open — bounded by the
// machine's outstanding-transaction capacity, never leaking per event.
type SpanSink struct {
	open map[int64]*openSpan
	fn   func(Span)

	completed  int64
	outOfOrder int64
}

// NewSpanSink builds a sink delivering completed spans to fn (which may
// be nil to only count).
func NewSpanSink(fn func(Span)) *SpanSink {
	return &SpanSink{open: map[int64]*openSpan{}, fn: fn}
}

// Completed returns the number of spans finalized so far.
func (s *SpanSink) Completed() int64 { return s.completed }

// Open returns the number of transactions still being reassembled
// (unterminated spans at end of run, e.g. after a watchdog abort).
func (s *SpanSink) Open() int { return len(s.open) }

// OutOfOrder returns the number of events whose timestamp was behind the
// transaction's clock (tolerated; the gap is charged as zero).
func (s *SpanSink) OutOfOrder() int64 { return s.outOfOrder }

// Emit consumes one event.
func (s *SpanSink) Emit(ev Event) {
	if ev.Txn == 0 {
		return
	}
	if ev.Kind == CoalescerPush {
		// Aux carries the op class (set by the CU); transaction ids are
		// never reused, so this cannot clobber a live span.
		s.open[ev.Txn] = &openSpan{
			Span: Span{Txn: ev.Txn, Warp: ev.Warp, Node: ev.Node,
				Op: SpanOp(ev.Aux), Addr: ev.Addr, Start: ev.Cycle},
			last: ev.Cycle,
		}
		return
	}
	o := s.open[ev.Txn]
	if o == nil {
		return
	}
	seg := o.mode
	if o.postNoC {
		// The message was delivered; whoever emits next consumed it.
		if ev.Comp == CompL2 {
			seg = SegL2
		} else {
			seg = SegL1
		}
		o.postNoC = false
		o.mode = seg
	}
	switch {
	case ev.Cycle > o.last:
		o.Segs[seg] += ev.Cycle - o.last
		o.last = ev.Cycle
	case ev.Cycle < o.last:
		s.outOfOrder++
	}

	switch ev.Kind {
	case CoalescerDrain:
		o.mode = SegL1
	case CacheHit, CacheMiss, OwnershipRequest, OwnershipGrant, AtomicPerformed:
		if ev.Comp == CompL2 {
			o.mode = SegL2
			o.deepen(HitL2)
		} else {
			o.mode = SegL1
		}
	case RemoteForward:
		o.mode = SegL2
		o.deepen(HitRemoteL1)
	case MSHRAlloc, MSHRCoalesce:
		o.mode = SegMSHR
	case NoCEnqueue, NoCHop:
		o.mode = SegNoC
	case NoCDeliver:
		o.mode = SegNoC
		o.postNoC = true
	case DRAMAccess:
		o.mode = SegMem
		o.deepen(HitMem)
	case TxnComplete:
		o.End = o.last
		delete(s.open, ev.Txn)
		s.completed++
		if s.fn != nil {
			s.fn(o.Span)
		}
	}
}

func (o *openSpan) deepen(l HitLevel) {
	if l > o.Level {
		o.Level = l
	}
}

// Close is a no-op (unterminated spans remain observable via Open).
func (s *SpanSink) Close() error { return nil }

// spanJSON is the JSONL encoding of a span: field order is fixed so the
// same run produces byte-identical output (the determinism contract).
type spanJSON struct {
	Txn   int64       `json:"txn"`
	Warp  int         `json:"warp"`
	Node  int         `json:"node"`
	Op    string      `json:"op"`
	Level string      `json:"level"`
	Addr  uint64      `json:"addr"`
	Start int64       `json:"start"`
	End   int64       `json:"end"`
	Segs  spanSegJSON `json:"segs"`
}

type spanSegJSON struct {
	Coalescer int64 `json:"coalescer"`
	L1        int64 `json:"l1"`
	MSHR      int64 `json:"mshr"`
	NoC       int64 `json:"noc"`
	L2        int64 `json:"l2"`
	Mem       int64 `json:"mem"`
}

// SpanWriter is a sink writing one JSON object per completed span
// (JSONL), in completion order.
type SpanWriter struct {
	sink *SpanSink
	bw   *bufio.Writer
	err  error
}

// NewSpanWriter builds the sink over w. The caller owns w and closes it
// after Close.
func NewSpanWriter(w io.Writer) *SpanWriter {
	sw := &SpanWriter{bw: bufio.NewWriter(w)}
	sw.sink = NewSpanSink(sw.write)
	return sw
}

// Emit consumes one event.
func (sw *SpanWriter) Emit(ev Event) { sw.sink.Emit(ev) }

// Completed returns the number of spans written.
func (sw *SpanWriter) Completed() int64 { return sw.sink.Completed() }

// Open returns the number of unterminated spans.
func (sw *SpanWriter) Open() int { return sw.sink.Open() }

func (sw *SpanWriter) write(sp Span) {
	if sw.err != nil {
		return
	}
	b, err := json.Marshal(spanJSON{
		Txn: sp.Txn, Warp: sp.Warp, Node: sp.Node,
		Op: sp.Op.String(), Level: sp.Level.String(), Addr: sp.Addr,
		Start: sp.Start, End: sp.End,
		Segs: spanSegJSON{
			Coalescer: sp.Segs[SegCoalescer], L1: sp.Segs[SegL1],
			MSHR: sp.Segs[SegMSHR], NoC: sp.Segs[SegNoC],
			L2: sp.Segs[SegL2], Mem: sp.Segs[SegMem],
		},
	})
	if err != nil {
		sw.err = err
		return
	}
	sw.bw.Write(b)
	sw.err = sw.bw.WriteByte('\n')
}

// Close flushes the output.
func (sw *SpanWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}
