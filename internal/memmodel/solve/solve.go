// Package solve is the constraint-solving backend behind
// CheckOptions.Mode "solve": instead of enumerating every SC execution
// and classifying races per execution, it treats the check as a
// constraint problem over the static event tables of the analysis arena
// and solves for racy executions.
//
// The pipeline has three phases:
//
//  1. Static propagation (solve.static): candidate race pairs — cross
//     thread, same location, at least one write — are derived from the
//     Present-masked static tables the PR 5 arena already computes,
//     using the same word-parallel rel kernels the per-execution
//     analysis uses. A static happens-before over-approximation
//     maxHB = (po ∪ pw×pr∩sameloc)⁺ then splits every per-kind
//     candidate three ways: pairs whose race conditions hold in every
//     execution are implied (unit propagation), pairs whose kind
//     conditions can never hold are refuted (conflicts), and the
//     residue stays undecided.
//  2. Confirmation search (solve.search): only when undecided pairs
//     remain, a sequential POR enumeration runs with an early-stop
//     visitor — each confirmed pair is closed under the program's
//     thread automorphisms (symmetry reduction: identical threads
//     confirm each other's orbits), and the search stops as soon as
//     every undecided pair is confirmed. If it instead runs to
//     exhaustion, the verdict is still exact (the POR union equals the
//     full union) and the visited executions double as the SC result
//     set.
//  3. State search (solve.states): the SC result set, when phase 2 did
//     not already produce it, comes from a memoized DFS over
//     (pc, memory, registers) states of the quantum-equivalent program
//     with thread-symmetry-canonicalized memo keys — decision/
//     propagation/conflict/learned counters map onto DPLL vocabulary
//     (branching states, forced moves, memo hits, memoized states).
//
// The backend is verdict-only and exact: it reports precisely the
// race pairs and SC results the enumerator would, byte-identical after
// canonical-namespace rewriting, while heavily contended programs whose
// interleaving count is intractable resolve statically or stop early.
// The enumerator remains the differential oracle (FuzzSolveMatchesEnumerate).
package solve

import (
	"errors"
	"fmt"
	"sort"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/rel"
	"rats/internal/memmodel/telemetry"
)

func init() {
	memmodel.RegisterSolveBackend(check)
}

// Check runs the solve backend directly. Callers normally go through
// memmodel.CheckProgramWith with CheckOptions.Mode set to ModeSolve
// (importing this package registers the backend); the direct entry
// serves tests and tools that want the solver unconditionally.
func Check(p *litmus.Program, m core.Model, opts memmodel.CheckOptions) (*memmodel.Verdict, error) {
	return check(p, m, opts)
}

// stateForErr mirrors the enumeration pipeline's error-to-state mapping.
func stateForErr(err error) telemetry.CheckState {
	var ce *memmodel.CancelError
	switch {
	case errors.Is(err, memmodel.ErrLimit):
		return telemetry.StateLimit
	case errors.Is(err, memmodel.ErrStop), errors.As(err, &ce):
		return telemetry.StateStopped
	}
	return telemetry.StateFailed
}

func check(p0 *litmus.Program, m core.Model, opts memmodel.CheckOptions) (*memmodel.Verdict, error) {
	// Solving on the canonical program realizes variable-symmetry
	// reduction (thread order and location names are normalized away);
	// the verdict is rewritten back into the submitter's namespace at
	// the end. The canonical program is freshly built per call, so
	// renaming it lets inner search errors name the submitted program.
	can, err := memmodel.Canonicalize(p0)
	if err != nil {
		return nil, err
	}
	can.Prog.Name = p0.Name
	p := can.Prog.Under(m)

	tel := opts.Telemetry
	effLimit := opts.Limit
	if effLimit == 0 {
		effLimit = memmodel.DefaultLimit
	}
	tel.Begin(int64(effLimit))
	if opts.Ctx != nil {
		if cerr := opts.Ctx.Err(); cerr != nil {
			tel.Finish(telemetry.StateStopped)
			return nil, &memmodel.CancelError{Prog: p.Name, Phase: "solve", Err: cerr}
		}
	}
	sp := opts.Span

	an := memmodel.NewAnalyzer()
	stSpan := sp.Child("solve.static")
	cs := buildConstraints(an, p, m)
	stSpan.SetInt("implied", cs.nImplied)
	stSpan.SetInt("refuted", cs.nRefuted)
	stSpan.SetInt("undecided", cs.nUndecided)
	stSpan.End()

	// Phase 2: confirmation search for the undecided residue. The
	// visitor collects SC result keys as it goes: if the search runs to
	// exhaustion (no early stop), those keys are the full SC result set
	// and phase 3 is skipped.
	execs := 0
	var scResults map[string]bool
	exhaustive := false
	if cs.nUndecided > 0 {
		se := sp.Child("solve.search")
		tel.SetSpan(se)
		collected := map[string]bool{}
		stopped := false
		eo := memmodel.EnumOptions{
			Quantum: true, Sequential: true,
			Limit: opts.Limit, Ctx: opts.Ctx,
			TransitionLimit: opts.TransitionLimit,
			Telemetry:       tel,
			Visit: func(ex *memmodel.Execution) error {
				execs++
				collected[ex.ResultKey()] = true
				a := an.Analyze(ex)
				for _, k := range cs.kinds {
					if len(cs.undecided[k]) == 0 {
						continue
					}
					for _, pr := range a.Races[k] {
						cs.confirm(k, pr)
					}
				}
				if cs.nUndecided == 0 {
					stopped = true
					return memmodel.ErrStop
				}
				return nil
			},
		}
		_, serr := memmodel.Enumerate(p, eo)
		tel.SetSpan(nil)
		se.SetInt("executions", int64(execs))
		se.SetInt("confirmed", cs.nConfirmed)
		se.End()
		if serr != nil {
			tel.Finish(stateForErr(serr))
			return nil, serr
		}
		if !stopped {
			scResults = collected
			exhaustive = true
		}
	}

	// Phase 3: memoized state search for the SC result set.
	var decisions, propagations, conflicts, learned int64
	if !exhaustive {
		ss := sp.Child("solve.states")
		ds := newStateSearch(p, opts, cs.classThreads, tel)
		ds.run()
		ds.flush()
		ss.SetInt("states", ds.learned)
		ss.SetInt("memo_hits", ds.memoHits)
		ss.End()
		if ds.err != nil {
			tel.Finish(stateForErr(ds.err))
			return nil, ds.err
		}
		scResults = ds.results
		decisions, propagations = ds.decisions, ds.propagations
		conflicts, learned = ds.memoHits, ds.learned
	}
	tel.AddSolve(decisions, propagations+cs.nImplied, conflicts+cs.nRefuted, learned)

	v := &memmodel.Verdict{
		Model: m, Legal: true,
		Races:     map[memmodel.RaceKind][]string{},
		SCResults: scResults,
		Execs:     execs,
	}
	var distinct int64
	for _, k := range cs.kinds {
		pairs := append(cs.implied[k], cs.confirmed[k]...)
		if len(pairs) == 0 {
			continue
		}
		descs := make([]string, 0, len(pairs))
		for _, pr := range pairs {
			descs = append(descs, cs.desc(pr))
		}
		sort.Strings(descs)
		v.Races[k] = descs
		v.Legal = false
		distinct += int64(len(descs))
	}
	tel.SetUnion(distinct, distinct, int64(len(scResults)))
	out := can.RewriteVerdict(v, p0.Name)
	tel.Finish(telemetry.StateDone)
	return out, nil
}

// constraints is the solver's static decision state: per race kind, the
// candidate pairs split into implied (race in every execution), refuted
// (race in no execution), and undecided (needs the confirmation search).
type constraints struct {
	kinds []memmodel.RaceKind

	// Event tables for descriptions and orbit closure. thread/class
	// alias the analyzer arena (valid while the program is unchanged);
	// id is the arena's thread-major event numbering.
	thread []int
	opIdx  []int
	class  []core.Class
	id     [][]int

	// Thread-symmetry classes: threads with identical op lists are
	// interchangeable by a program automorphism, so a confirmed race
	// pair confirms its whole orbit.
	classOf      []int
	classThreads [][]int

	implied   map[memmodel.RaceKind][][2]int
	confirmed map[memmodel.RaceKind][][2]int
	undecided map[memmodel.RaceKind]map[[2]int]bool

	nImplied, nRefuted, nUndecided, nConfirmed int64
}

// desc renders a pair exactly as the enumeration pipeline's
// partialVerdict does; event IDs are thread-major, so i < j already is
// the canonical (thread, opIndex)-lexicographic orientation.
func (cs *constraints) desc(pr [2]int) string {
	i, j := pr[0], pr[1]
	return fmt.Sprintf("T%d.%d(%s)~T%d.%d(%s)",
		cs.thread[i], cs.opIdx[i], cs.class[i],
		cs.thread[j], cs.opIdx[j], cs.class[j])
}

// confirm moves a witnessed pair (and its thread-symmetry orbit) from
// undecided to confirmed. Identical threads induce program
// automorphisms, and the union race set is automorphism-closed, so one
// witness confirms every image of the pair under permutations of its
// endpoints' thread classes.
func (cs *constraints) confirm(k memmodel.RaceKind, pr [2]int) {
	und := cs.undecided[k]
	if und == nil || !und[pr] {
		return
	}
	i, j := pr[0], pr[1]
	t1, o1 := cs.thread[i], cs.opIdx[i]
	t2, o2 := cs.thread[j], cs.opIdx[j]
	for _, a := range cs.classThreads[cs.classOf[t1]] {
		for _, b := range cs.classThreads[cs.classOf[t2]] {
			if a == b {
				continue
			}
			x, y := cs.id[a][o1], cs.id[b][o2]
			if x > y {
				x, y = y, x
			}
			q := [2]int{x, y}
			if und[q] {
				delete(und, q)
				cs.nUndecided--
				cs.nConfirmed++
				cs.confirmed[k] = append(cs.confirmed[k], q)
			}
		}
	}
}

// buildConstraints computes the static constraint store for p under m:
// the per-kind candidate pairs and their implied/refuted/undecided
// split. It reuses the analyzer arena's static tables as-is and builds
// the candidate and ordering relations with the rel kernels.
func buildConstraints(an *memmodel.Analyzer, p *litmus.Program, m core.Model) *constraints {
	st := an.Static(p)
	n := st.N
	nT := len(p.Threads)

	cs := &constraints{
		thread:    st.Thread,
		class:     st.Class,
		id:        st.ID,
		implied:   map[memmodel.RaceKind][][2]int{},
		confirmed: map[memmodel.RaceKind][][2]int{},
		undecided: map[memmodel.RaceKind]map[[2]int]bool{},
	}
	cs.kinds = []memmodel.RaceKind{memmodel.DataRace}
	if m == core.DRFrlx {
		cs.kinds = memmodel.RaceKinds()
	}

	// Per-event op facts the kind conditions need: op index, guard-free
	// presence (threads run to completion, so guards are the only
	// absence source), and the pairwise-commutativity inputs (Analyze
	// passes Operand.Const regardless of registers, so the mirror here
	// is exact, not an approximation).
	cs.opIdx = make([]int, n)
	always := make([]bool, n)
	aop := make([]core.AtomicOp, n)
	operand := make([]int64, n)
	for t := range p.Threads {
		ops := p.Threads[t].Ops
		for oi := range ops {
			op := &ops[oi]
			id := st.ID[t][oi]
			if id < 0 {
				continue
			}
			cs.opIdx[id] = oi
			always[id] = len(op.Guards) == 0
			aop[id] = op.AOp
			operand[id] = op.Operand.Const
		}
	}

	// Thread-symmetry classes by exact op-list identity.
	sig := map[string]int{}
	cs.classOf = make([]int, nT)
	for t := range p.Threads {
		th := p.Threads[t]
		key := fmt.Sprintf("%d\x00%+v", th.NumRegs(), th.Ops)
		ci, ok := sig[key]
		if !ok {
			ci = len(cs.classThreads)
			sig[key] = ci
			cs.classThreads = append(cs.classThreads, nil)
		}
		cs.classOf[t] = ci
		cs.classThreads[ci] = append(cs.classThreads[ci], t)
	}

	// Static event-set masks and relations, mirroring BuildRelations'
	// per-execution construction without the Present mask.
	threadSets := rel.MakeBitsSlab(n, nT)
	locSets := rel.MakeBitsSlab(n, len(st.Locs))
	for i := 0; i < n; i++ {
		threadSets[st.Thread[i]].Set(i)
		locSets[st.Loc[i]].Set(i)
	}
	writes := rel.BitsFromBools(st.Writes)
	rels := rel.NewSlab(n, 6)
	sameLoc, cand, maxHB, unord, tmp, kindRel := rels[0], rels[1], rels[2], rels[3], rels[4], rels[5]
	for i := 0; i < n; i++ {
		sl := sameLoc.Row(i)
		sl.CopyFrom(locSets[st.Loc[i]])
		sl.Unset(i)
		// Candidate: conflicting (same loc, ≥1 write) and cross-thread.
		cr := cand.Row(i)
		cr.CopyFrom(sl)
		if !st.Writes[i] {
			cr.AndIn(writes)
		}
		cr.AndNotIn(threadSets[st.Thread[i]])
		// Static program order: later events of i's thread.
		pr := maxHB.Row(i)
		pr.CopyFrom(threadSets[st.Thread[i]])
		pr.KeepAbove(i)
	}
	// maxHB = (po ∪ (pw × pr ∩ sameloc))⁺ over-approximates hb1 of every
	// execution: execution po rows are Present-masked subsets of the
	// static rows, and so1 ⊆ pw×pr ∩ CO ⊆ pw×pr ∩ sameloc. Hence pairs
	// unordered by maxHB are hb1-unordered — i.e. they race — in every
	// execution in which both events are present.
	tmp.CrossIn(st.PW, st.PR)
	tmp.InterIn(sameLoc)
	maxHB.UnionIn(tmp)
	maxHB.TransCloseIn()
	unord.CopyFrom(cand)
	tmp.CopyFrom(cand)
	tmp.InterIn(maxHB)
	unord.DiffIn(maxHB)
	tmp.ForEach(func(i, j int) { unord.Clear(j, i) })

	// Kind observability mirrors of relations.go's observedInto:
	// possiblyObs(x) — the loaded value can be observed in some
	// execution; obsAlways(x) — it is observed in every execution.
	possiblyObs := func(x int) bool {
		return st.Reads[x] && (st.ObsAlways[x] || len(st.ObsUse[x]) > 0)
	}
	obsAlways := func(x int) bool {
		if !st.Reads[x] || !always[x] {
			return false
		}
		if st.ObsAlways[x] {
			return true
		}
		for _, u := range st.ObsUse[x] {
			if always[u] {
				return true
			}
		}
		return false
	}

	for _, k := range cs.kinds {
		switch k {
		case memmodel.DataRace:
			kindRel.InterAloInto(cand, st.ClassBits[core.Data])
		case memmodel.CommutativeRace:
			kindRel.InterAloInto(cand, st.ClassBits[core.Commutative])
		case memmodel.NonOrderingRace:
			kindRel.InterAloInto(cand, st.ClassBits[core.NonOrdering])
			kindRel.RestrictToIn(st.Atomic)
		case memmodel.QuantumRace:
			kindRel.InterAloInto(cand, st.ClassBits[core.Quantum])
			tmp.CrossIn(st.ClassBits[core.Quantum], st.ClassBits[core.Quantum])
			kindRel.DiffIn(tmp)
		case memmodel.SpeculativeRace:
			kindRel.InterAloInto(cand, st.ClassBits[core.Speculative])
		}
		kindRel.ForEach(func(i, j int) {
			if i >= j {
				return
			}
			// guaranteed: both events present and racing in every
			// execution — the precondition for implying a pair.
			guaranteed := always[i] && always[j] && unord.Has(i, j)
			switch k {
			case memmodel.DataRace, memmodel.QuantumRace:
				// No extra dynamic condition beyond being a race.
				if guaranteed {
					cs.imply(k, i, j)
				} else {
					cs.defer_(k, i, j)
				}
			case memmodel.CommutativeRace:
				pairwise := core.Commutes(aop[i], operand[i], aop[j], operand[j])
				switch {
				case pairwise && !possiblyObs(i) && !possiblyObs(j):
					// Commutative and never observed: not a
					// commutative race in any execution.
					cs.nRefuted++
				case guaranteed && (!pairwise || obsAlways(i) || obsAlways(j)):
					cs.imply(k, i, j)
				default:
					cs.defer_(k, i, j)
				}
			case memmodel.SpeculativeRace:
				bothW := st.Writes[i] && st.Writes[j]
				switch {
				case !bothW && !possiblyObs(i) && !possiblyObs(j):
					cs.nRefuted++
				case guaranteed && (bothW || obsAlways(i) || obsAlways(j)):
					cs.imply(k, i, j)
				default:
					cs.defer_(k, i, j)
				}
			case memmodel.NonOrderingRace:
				// The non-ordering condition (a CO-oriented edge
				// carrying unique ordering responsibility, minus the
				// per-execution data/commutative overlap) is inherently
				// dynamic: never implied, decided by confirmation.
				cs.defer_(k, i, j)
			}
		})
	}
	return cs
}

// imply records a pair proven to race in every execution.
func (cs *constraints) imply(k memmodel.RaceKind, i, j int) {
	cs.implied[k] = append(cs.implied[k], [2]int{i, j})
	cs.nImplied++
}

// defer_ records a pair the static split cannot decide.
func (cs *constraints) defer_(k memmodel.RaceKind, i, j int) {
	if cs.undecided[k] == nil {
		cs.undecided[k] = map[[2]int]bool{}
	}
	cs.undecided[k][[2]int{i, j}] = true
	cs.nUndecided++
}
