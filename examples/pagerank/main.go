// PageRank sweep: generate a synthetic hub graph, build the PR workload
// on it, and sweep all six configurations — a miniature Figure 4 for one
// input, demonstrating the data-reuse win of DRF1 and the atomic-overlap
// win of DRFrlx.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	"rats/internal/graphs"
	"rats/internal/harness"
	"rats/internal/sim/system"
	"rats/internal/workloads"
)

func main() {
	g := graphs.Hub("example-hub", 400, 3, 0.15, 99)
	fmt.Printf("graph %s: %d vertices, %d arcs, max degree %d\n\n",
		g.Name, g.N(), g.Edges(), g.MaxDegree())

	params := workloads.DefaultGraph(workloads.Test)
	var base int64
	for _, name := range harness.ConfigOrder {
		cfg, err := harness.ConfigFor(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := system.RunTrace(cfg, workloads.PR(g, params))
		if err != nil {
			log.Fatal(err)
		}
		if name == "GD0" {
			base = res.Stats.Cycles
		}
		fmt.Printf("%-4s %8d cycles  %.3f of GD0   L1 hit rate %4.1f%%  energy %.0f pJ\n",
			name, res.Stats.Cycles, float64(res.Stats.Cycles)/float64(base),
			100*float64(res.Stats.L1Hits)/float64(res.Stats.L1Accesses),
			res.Energy.Total())
	}
	fmt.Println("\nfunctional check (ranks vs sequential reference) passed in every configuration")
}
