// Package cache provides the storage structures the simulated memory
// system is built from: set-associative arrays with LRU replacement and
// per-line coherence state, MSHR tables with same-address coalescing, and
// a store buffer. The coherence *policies* live in internal/sim/memsys;
// this package only manages state.
package cache

import "fmt"

// State is a cache line's coherence state.
type State uint8

const (
	// Invalid: the line holds nothing.
	Invalid State = iota
	// Valid: a clean, readable copy (may be self-invalidated at
	// acquires).
	Valid
	// Owned: a registered, writable copy (DeNovo ownership); survives
	// self-invalidation.
	Owned
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Valid:
		return "V"
	case Owned:
		return "O"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line's metadata.
type Line struct {
	Tag   uint64
	State State
	Dirty bool
	lru   uint64
}

// Array is a set-associative cache array indexed by line address (byte
// address >> lineShift performed by the caller — the array works in units
// of line numbers).
type Array struct {
	sets  int
	ways  int
	lines []Line
	tick  uint64
}

// NewArray builds an array with the given geometry.
func NewArray(sets, ways int) *Array {
	if sets <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	return &Array{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

func (a *Array) set(lineAddr uint64) []Line {
	s := int(lineAddr % uint64(a.sets))
	return a.lines[s*a.ways : (s+1)*a.ways]
}

// Lookup returns the line's state (Invalid if absent) and touches LRU on
// hit.
func (a *Array) Lookup(lineAddr uint64) State {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == lineAddr {
			a.tick++
			set[i].lru = a.tick
			return set[i].State
		}
	}
	return Invalid
}

// Peek returns the state without touching LRU.
func (a *Array) Peek(lineAddr uint64) State {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == lineAddr {
			return set[i].State
		}
	}
	return Invalid
}

// Victim describes an evicted line.
type Victim struct {
	LineAddr uint64
	State    State
	Dirty    bool
}

// Insert fills lineAddr with the given state, returning the victim if a
// valid line had to be evicted. Inserting over an existing copy updates
// its state in place.
func (a *Array) Insert(lineAddr uint64, st State, dirty bool) (Victim, bool) {
	set := a.set(lineAddr)
	a.tick++
	// In-place update.
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == lineAddr {
			set[i].State = st
			set[i].Dirty = set[i].Dirty || dirty
			set[i].lru = a.tick
			return Victim{}, false
		}
	}
	// Free way.
	for i := range set {
		if set[i].State == Invalid {
			set[i] = Line{Tag: lineAddr, State: st, Dirty: dirty, lru: a.tick}
			return Victim{}, false
		}
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	v := Victim{LineAddr: set[vi].Tag, State: set[vi].State, Dirty: set[vi].Dirty}
	set[vi] = Line{Tag: lineAddr, State: st, Dirty: dirty, lru: a.tick}
	return v, true
}

// SetDirty marks an existing line dirty.
func (a *Array) SetDirty(lineAddr uint64) {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == lineAddr {
			set[i].Dirty = true
			return
		}
	}
}

// Invalidate drops a single line, returning its previous state.
func (a *Array) Invalidate(lineAddr uint64) State {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == lineAddr {
			st := set[i].State
			set[i] = Line{}
			return st
		}
	}
	return Invalid
}

// FlashInvalidate drops every line for which keep returns false and
// returns the number of lines dropped. A nil keep drops everything.
// This is the self-invalidation mechanism of GPU coherence (drop all)
// and DeNovo (keep owned lines).
func (a *Array) FlashInvalidate(keep func(Line) bool) int {
	n := 0
	for i := range a.lines {
		if a.lines[i].State == Invalid {
			continue
		}
		if keep != nil && keep(a.lines[i]) {
			continue
		}
		a.lines[i] = Line{}
		n++
	}
	return n
}

// CountState returns how many lines are in the given state.
func (a *Array) CountState(st State) int {
	n := 0
	for i := range a.lines {
		if a.lines[i].State == st {
			n++
		}
	}
	return n
}
