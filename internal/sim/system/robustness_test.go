package system

import (
	"errors"
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/fault"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
	"rats/internal/workloads"
)

func mustSpec(t *testing.T, s string) *fault.Spec {
	t.Helper()
	spec, err := fault.Parse(s)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", s, err)
	}
	return spec
}

// barrierTrace builds a two-warp trace where both warps must reach a
// device-wide barrier. With warp 1 wedged by an injected fault, warp 0
// waits at the barrier forever — a deliberate deadlock.
func barrierTrace() *trace.Trace {
	tr := trace.New("wedged-barrier")
	a := tr.AddWarp(0)
	a.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	a.Barrier()
	a.Load(core.Data, 0x1000)
	b := tr.AddWarp(1)
	b.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	b.Barrier()
	return tr
}

// TestWatchdogBarrierDeadlock wedges one warp so the device-wide barrier
// can never resolve, and asserts the watchdog fires within its window —
// not at MaxCycles — with a structured report naming the stuck warps.
func TestWatchdogBarrierDeadlock(t *testing.T) {
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	cfg.Faults = mustSpec(t, "wedge:warp=1,from=0")
	cfg.FaultSeed = 1
	cfg.WatchdogWindow = 5000
	_, err := RunTrace(cfg, barrierTrace())
	if err == nil {
		t.Fatal("wedged barrier run completed; expected a watchdog error")
	}
	var diag *DiagnosticError
	if !errors.As(err, &diag) {
		t.Fatalf("error is %T, want *DiagnosticError: %v", err, err)
	}
	if !strings.Contains(diag.Reason, "no forward progress") {
		t.Errorf("reason = %q, want a no-forward-progress watchdog report", diag.Reason)
	}
	// The watchdog must fire within a couple of windows of the wedge, far
	// below the MaxCycles guard.
	if diag.Cycle > 10*cfg.WatchdogWindow {
		t.Errorf("watchdog fired at cycle %d, want <= %d", diag.Cycle, 10*cfg.WatchdogWindow)
	}
	if diag.Cycle >= cfg.MaxCycles {
		t.Errorf("watchdog fired at MaxCycles %d — it should fire far earlier", diag.Cycle)
	}
	// The report must identify both stuck warps and what they wait on.
	states := map[int]string{}
	for _, w := range diag.Warps {
		states[w.Warp] = w.State
	}
	if !strings.Contains(states[0], "barrier") {
		t.Errorf("warp 0 state = %q, want at-barrier", states[0])
	}
	if !strings.Contains(states[1], "wedged") {
		t.Errorf("warp 1 state = %q, want wedged", states[1])
	}
	msg := err.Error()
	for _, want := range []string{"warp 0", "warp 1", "no forward progress"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error text missing %q:\n%s", want, msg)
		}
	}
}

// TestMaxCyclesDiagnostics disables the watchdog and asserts the
// MaxCycles guard still returns the structured diagnostic, not a bare
// string.
func TestMaxCyclesDiagnostics(t *testing.T) {
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	cfg.Faults = mustSpec(t, "wedge:warp=1,from=0")
	cfg.FaultSeed = 1
	cfg.WatchdogWindow = 0 // watchdog off: only the hard guard remains
	cfg.MaxCycles = 20000
	_, err := RunTrace(cfg, barrierTrace())
	if err == nil {
		t.Fatal("expected a MaxCycles error")
	}
	var diag *DiagnosticError
	if !errors.As(err, &diag) {
		t.Fatalf("error is %T, want *DiagnosticError: %v", err, err)
	}
	if !strings.Contains(diag.Reason, "MaxCycles") {
		t.Errorf("reason = %q, want MaxCycles exhaustion", diag.Reason)
	}
	if diag.Cycle <= cfg.MaxCycles {
		t.Errorf("fired at cycle %d, want past MaxCycles %d", diag.Cycle, cfg.MaxCycles)
	}
	if diag.TotalWarps != 2 || len(diag.Warps) == 0 {
		t.Errorf("diagnostic warps: total=%d stuck=%d, want 2 with stuck warps listed",
			diag.TotalWarps, len(diag.Warps))
	}
	if diag.RetiredOps <= 0 {
		t.Error("diagnostic should report the retired-op count at abort")
	}
}

// TestAbort asserts an external Abort (the harness's wall-clock timeout
// mechanism) stops a wedged run with a diagnostic error.
func TestAbort(t *testing.T) {
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	cfg.Faults = mustSpec(t, "wedge:warp=1,from=0")
	cfg.FaultSeed = 1
	cfg.WatchdogWindow = 0
	s := New(cfg)
	if err := s.Load(barrierTrace()); err != nil {
		t.Fatal(err)
	}
	s.Abort("test abort")
	_, err := s.Run()
	if err == nil {
		t.Fatal("aborted run completed")
	}
	var diag *DiagnosticError
	if !errors.As(err, &diag) {
		t.Fatalf("error is %T, want *DiagnosticError: %v", err, err)
	}
	if !strings.Contains(diag.Reason, "test abort") {
		t.Errorf("reason = %q, want the abort message", diag.Reason)
	}
}

// metamorphicSpec exercises every architecture-preserving fault kind at
// once: NoC delay jitter, duplication, reordering bursts, MSHR and
// store-buffer pressure windows, and L2 bank stall storms.
const metamorphicSpec = "delay:p=0.05,max=10;dup:p=0.03;reorder:p=0.02,window=20,burst=4;" +
	"mshr:cap=2,period=3000,len=300;sb:cap=1,period=4000,len=300;l2stall:period=5000,len=100"

// TestFaultMetamorphic is the property test behind the fault injector's
// contract: delay/dup/reorder/pressure faults perturb timing only. Across
// several seeds, every architectural counter and the workload's
// functional check must match the fault-free run exactly.
func TestFaultMetamorphic(t *testing.T) {
	spec := mustSpec(t, metamorphicSpec)
	if !spec.Metamorphic() {
		t.Fatal("test spec must be metamorphic")
	}
	for _, wl := range []string{"H", "SC"} {
		entry := workloads.ByName(wl)
		if entry == nil {
			t.Fatalf("unknown workload %q", wl)
		}
		for _, cfgName := range []struct {
			name  string
			proto memsys.Protocol
			model core.Model
		}{
			{"GD0", memsys.ProtoGPU, core.DRF0},
			{"DDR", memsys.ProtoDeNovo, core.DRFrlx},
		} {
			base := memsys.Default(cfgName.proto, cfgName.model)
			clean, err := RunTrace(base, entry.Build(workloads.Test))
			if err != nil {
				t.Fatalf("%s/%s clean: %v", wl, cfgName.name, err)
			}
			for seed := int64(1); seed <= 4; seed++ {
				cfg := base
				cfg.Faults = spec
				cfg.FaultSeed = seed
				res, err := RunTrace(cfg, entry.Build(workloads.Test))
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", wl, cfgName.name, seed, err)
				}
				got := [5]int64{res.Stats.CoreOps, res.Stats.ScratchAccesses,
					res.Stats.Atomics, res.Stats.AtomicsAtL1, res.Stats.AtomicsAtL2}
				want := [5]int64{clean.Stats.CoreOps, clean.Stats.ScratchAccesses,
					clean.Stats.Atomics, clean.Stats.AtomicsAtL1, clean.Stats.AtomicsAtL2}
				if got != want {
					t.Errorf("%s/%s seed %d: architectural counters changed under faults:\ngot  %v\nwant %v",
						wl, cfgName.name, seed, got, want)
				}
			}
		}
	}
}

// TestFaultSameSeedExactTiming asserts reproducibility: the same spec and
// seed give bit-identical stats, including timing.
func TestFaultSameSeedExactTiming(t *testing.T) {
	entry := workloads.ByName("H")
	run := func() *Result {
		cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
		cfg.Faults = mustSpec(t, metamorphicSpec)
		cfg.FaultSeed = 99
		res, err := RunTrace(cfg, entry.Build(workloads.Test))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Stats != r2.Stats {
		t.Errorf("same spec+seed diverged:\n%v\nvs\n%v", r1.Stats.String(), r2.Stats.String())
	}
	// A different seed should (for this spec and workload) perturb timing.
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	cfg.Faults = mustSpec(t, metamorphicSpec)
	cfg.FaultSeed = 100
	r3, err := RunTrace(cfg, entry.Build(workloads.Test))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Cycles == r1.Stats.Cycles && r3.Stats.NoCMessages == r1.Stats.NoCMessages {
		t.Log("warning: different seeds produced identical timing (unlikely but legal)")
	}
}
