package memsys

import (
	"rats/internal/core"
	"rats/internal/fault"
	"rats/internal/probe"
	"rats/internal/sim/noc"
	"rats/internal/stats"
)

// Env bundles the shared infrastructure every memory-system component
// uses: the interconnect, the statistics sink, the global functional
// value layer, and the event scheduler provided by the system driver.
type Env struct {
	Cfg   *Config
	Mesh  *noc.Mesh
	Stats *stats.Stats
	// Values is the functional value layer, keyed by word address.
	// Atomic operations read-modify-write it at the point (and simulated
	// time) they perform — at the L2 bank under GPU coherence, at the
	// owning L1 under DeNovo — so workload functional checks hold under
	// every configuration.
	Values map[uint64]int64
	// At schedules a deferred continuation to run at the given cycle
	// (>= current). Same-cycle continuations must fire in scheduling
	// order (FIFO) — protocol handlers rely on it.
	At func(cycle int64, d Deferred)
	// Probe is the observability hub, or nil when disabled. Emission
	// sites guard with a nil check so disabled runs pay nothing.
	Probe *probe.Hub
	// Fault is the fault injector, or nil when disabled. Injection sites
	// guard with a nil check so clean runs pay nothing.
	Fault *fault.Injector
	// WarpSeq numbers warps globally in placement order (probe warp
	// ids).
	WarpSeq int
}

// ApplyAtomic performs an atomic on the value layer and returns the old
// value.
func (e *Env) ApplyAtomic(addr uint64, aop core.AtomicOp, operand int64) int64 {
	w := e.Cfg.WordAddr(addr)
	old := e.Values[w]
	e.Values[w] = aop.Apply(old, operand, 0)
	return old
}

// Read returns the current functional value of a word.
func (e *Env) Read(addr uint64) int64 { return e.Values[e.Cfg.WordAddr(addr)] }

// Txn is one memory transaction handed from a compute unit to its L1:
// either a coalesced per-line load, a coalesced per-line store, or a
// per-lane atomic.
type Txn struct {
	ID      int64
	Kind    TxnKind
	Addr    uint64 // byte address (line-representative for loads/stores)
	Class   core.Class
	AOp     core.AtomicOp
	Operand int64
	// Warp is the issuing warp's global id (probe attribution); -1 for
	// transactions not tied to a warp.
	Warp int
	// LocalScope marks an HRF work-group-scoped atomic: it may perform at
	// the L1 without coherence actions (the programmer guarantees no
	// cross-CU access between global synchronizations).
	LocalScope bool
	// Done receives the completion callback exactly once; value is
	// meaningful for atomics. An interface rather than a func so issuers
	// can register themselves (a pointer — no per-transaction closure).
	Done Completer
	// Owner and Group are opaque completion bookkeeping for the issuing
	// compute unit (which instruction this transaction belongs to).
	Owner any
	Group int32
}

// Completer receives a transaction's completion.
type Completer interface {
	// TxnDone is invoked exactly once when t completes; value is
	// meaningful for atomics. The transaction may be recycled by its
	// issuer once TxnDone returns — no component may retain t past it.
	TxnDone(t *Txn, cycle, value int64)
}

// DoneFunc adapts a plain function to Completer (tests and ad-hoc
// issuers).
type DoneFunc func(cycle, value int64)

// TxnDone implements Completer.
func (f DoneFunc) TxnDone(_ *Txn, cycle, value int64) { f(cycle, value) }

// TxnKind distinguishes transaction types at the L1.
type TxnKind uint8

const (
	// TxnLoad is a coalesced data load of one line.
	TxnLoad TxnKind = iota
	// TxnStore is a coalesced data store to one line.
	TxnStore
	// TxnAtomic is a single-lane atomic operation.
	TxnAtomic
)

func (k TxnKind) String() string {
	switch k {
	case TxnLoad:
		return "load"
	case TxnStore:
		return "store"
	default:
		return "atomic"
	}
}
