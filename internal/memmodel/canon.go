package memmodel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rats/internal/litmus"
)

// This file implements program canonicalization for verdict caching: two
// litmus programs that differ only by thread reordering, shared-location
// renaming, or semantically irrelevant serialization choices (register
// order inside a sum expression, guard order inside a conjunction,
// explicit vs. implicit zero initializers) map to the same canonical
// program and hence the same Key. The mapping is sound by construction —
// equal keys imply the canonical programs serialize identically, i.e. the
// submissions are the same program up to renaming — while completeness is
// best-effort: a refinement pass orders threads and locations by their
// structural role, so residual misses only cost a cache fill, never a
// wrong verdict.

// Canonical is a program's canonical form plus the renaming that produced
// it, so verdicts computed on the canonical program can be rewritten back
// into the submitter's namespace.
type Canonical struct {
	// Prog is the canonical program: threads reordered and renamed
	// t0..tN-1, locations renamed v0..vK-1, expressions and guards
	// normalized, every location's initial value explicit.
	Prog *litmus.Program
	// Key is the canonical hash (sha256 hex of the canonical program's
	// textual form).
	Key string
	// ThreadOf maps canonical thread index -> original thread index.
	ThreadOf []int
	// LocOf maps canonical location name -> original location name.
	LocOf map[litmus.Loc]litmus.Loc
}

// refineRounds is how many label-refinement iterations Canonicalize runs.
// Each round folds the current thread signatures into the location labels
// and vice versa; litmus-scale programs stabilize in two.
const refineRounds = 3

// Canonicalize computes the canonical form of a validated program.
func Canonicalize(p *litmus.Program) (*Canonical, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	locs := p.Locs()

	// Refinement: label locations by initial value, then alternate
	// location labels <- multiset of (thread signature, position) uses and
	// thread signatures <- op serializations under the current location
	// labels.
	locLabel := make(map[litmus.Loc]string, len(locs))
	for _, l := range locs {
		locLabel[l] = "i" + strconv.FormatInt(p.Init[l], 10)
	}
	tsigs := make([]string, len(p.Threads))
	for round := 0; round < refineRounds; round++ {
		for t := range p.Threads {
			tsigs[t] = threadSig(p.Threads[t], locLabel)
		}
		next := make(map[litmus.Loc]string, len(locs))
		for _, l := range locs {
			var uses []string
			for t, th := range p.Threads {
				for oi := range th.Ops {
					if !th.Ops[oi].IsBranch && th.Ops[oi].Loc == l {
						uses = append(uses, fmt.Sprintf("%s@%d", tsigs[t], oi))
					}
				}
			}
			sort.Strings(uses)
			sum := sha256.Sum256([]byte("i" + strconv.FormatInt(p.Init[l], 10) + "\x00" + strings.Join(uses, "\x01")))
			next[l] = hex.EncodeToString(sum[:8])
		}
		locLabel = next
	}

	// Thread order: by final signature, original index as a deterministic
	// tiebreak (tied signatures mean the refinement sees the threads as
	// interchangeable; if they are, either order serializes identically).
	order := make([]int, len(p.Threads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tsigs[order[a]] < tsigs[order[b]]
	})

	// Location order: first appearance walking threads in canonical
	// order; init-only locations follow, ordered by label (a pure
	// function of their initial value at that point).
	locRank := make(map[litmus.Loc]int, len(locs))
	var locOrder []litmus.Loc
	appear := func(l litmus.Loc) {
		if _, ok := locRank[l]; !ok {
			locRank[l] = len(locOrder)
			locOrder = append(locOrder, l)
		}
	}
	for _, t := range order {
		for _, o := range p.Threads[t].Ops {
			if !o.IsBranch {
				appear(o.Loc)
			}
		}
	}
	var rest []litmus.Loc
	for _, l := range locs {
		if _, ok := locRank[l]; !ok {
			rest = append(rest, l)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if locLabel[rest[a]] != locLabel[rest[b]] {
			return locLabel[rest[a]] < locLabel[rest[b]]
		}
		return rest[a] < rest[b]
	})
	for _, l := range rest {
		appear(l)
	}

	locMap := make(map[litmus.Loc]litmus.Loc, len(locOrder)) // orig -> canon
	locOf := make(map[litmus.Loc]litmus.Loc, len(locOrder))  // canon -> orig
	for i, l := range locOrder {
		cl := litmus.Loc("v" + strconv.Itoa(i))
		locMap[l] = cl
		locOf[cl] = l
	}

	// Build the canonical program.
	cp := litmus.New("canonical")
	for _, l := range locOrder {
		cp.SetInit(locMap[l], p.Init[l])
	}
	if len(p.QuantumDomain) > 0 {
		cp.QuantumDomain = append([]int64(nil), p.QuantumDomain...)
		sort.Slice(cp.QuantumDomain, func(a, b int) bool { return cp.QuantumDomain[a] < cp.QuantumDomain[b] })
	}
	for ci, t := range order {
		src := p.Threads[t]
		dst := cp.Thread("t" + strconv.Itoa(ci))
		dst.Ops = make([]litmus.Op, len(src.Ops))
		for i, o := range src.Ops {
			dst.Ops[i] = normalizeOp(o, locMap)
		}
		dst.SetNumRegs(src.NumRegs())
	}
	sum := sha256.Sum256([]byte(litmus.Format(cp)))
	return &Canonical{
		Prog:     cp,
		Key:      hex.EncodeToString(sum[:]),
		ThreadOf: order,
		LocOf:    locOf,
	}, nil
}

// normalizeOp deep-copies an op, renames its location, and normalizes
// semantically irrelevant orderings (registers within a sum, guards
// within a conjunction, address-dependency lists).
func normalizeOp(o litmus.Op, locMap map[litmus.Loc]litmus.Loc) litmus.Op {
	n := o
	n.Cond = normalizeExpr(o.Cond)
	n.Operand = normalizeExpr(o.Operand)
	n.Expected = normalizeExpr(o.Expected)
	if !o.IsBranch {
		n.Loc = locMap[o.Loc]
	}
	if len(o.AddrDeps) > 0 {
		n.AddrDeps = append([]litmus.Reg(nil), o.AddrDeps...)
		sort.Slice(n.AddrDeps, func(a, b int) bool { return n.AddrDeps[a] < n.AddrDeps[b] })
	}
	if len(o.Guards) > 0 {
		n.Guards = make([]litmus.Guard, len(o.Guards))
		for i, g := range o.Guards {
			n.Guards[i] = litmus.Guard{A: normalizeExpr(g.A), B: normalizeExpr(g.B), Op: g.Op}
		}
		sort.SliceStable(n.Guards, func(a, b int) bool {
			return guardSig(n.Guards[a]) < guardSig(n.Guards[b])
		})
	}
	return n
}

func normalizeExpr(e litmus.Expr) litmus.Expr {
	n := litmus.Expr{Const: e.Const}
	if len(e.Regs) > 0 {
		n.Regs = append([]litmus.Reg(nil), e.Regs...)
		sort.Slice(n.Regs, func(a, b int) bool { return n.Regs[a] < n.Regs[b] })
	}
	return n
}

func exprSig(e litmus.Expr) string {
	n := normalizeExpr(e)
	var b strings.Builder
	b.WriteString(strconv.FormatInt(n.Const, 10))
	for _, r := range n.Regs {
		b.WriteString("+r")
		b.WriteString(strconv.Itoa(int(r)))
	}
	return b.String()
}

func guardSig(g litmus.Guard) string {
	return fmt.Sprintf("%s?%d?%s", exprSig(g.A), g.Op, exprSig(g.B))
}

// opSig serializes one op under the current location labels, for the
// refinement pass. It intentionally mirrors normalizeOp's view of what
// matters semantically.
func opSig(o litmus.Op, locLabel map[litmus.Loc]string) string {
	if o.IsBranch {
		return "b:" + exprSig(o.Cond)
	}
	var gs []string
	for _, g := range o.Guards {
		gs = append(gs, guardSig(g))
	}
	sort.Strings(gs)
	deps := append([]litmus.Reg(nil), o.AddrDeps...)
	sort.Slice(deps, func(a, b int) bool { return deps[a] < deps[b] })
	return fmt.Sprintf("c%d;a%d;l%s;d%d;o%s;e%s;ad%v;g%s",
		o.Class, o.AOp, locLabel[o.Loc], o.Dst, exprSig(o.Operand), exprSig(o.Expected), deps, strings.Join(gs, "&"))
}

func threadSig(t *litmus.Thread, locLabel map[litmus.Loc]string) string {
	sigs := make([]string, len(t.Ops))
	for i := range t.Ops {
		sigs[i] = opSig(t.Ops[i], locLabel)
	}
	return strings.Join(sigs, "\x02")
}

// RewriteVerdict maps a verdict computed on the canonical program back
// into the original program's namespace: race descriptions go through the
// thread permutation (re-normalizing each pair's orientation to the
// original event order), SC-result keys through the location renaming,
// and the program name becomes name. Execs reflects the canonical
// program's search (partial-order reduction may pick a different number
// of representatives per trace than a direct check of the original —
// the verdict-relevant sets are identical).
func (c *Canonical) RewriteVerdict(v *Verdict, name string) *Verdict {
	out := &Verdict{
		Prog:      name,
		Model:     v.Model,
		Legal:     v.Legal,
		Execs:     v.Execs,
		Races:     make(map[RaceKind][]string, len(v.Races)),
		SCResults: make(map[string]bool, len(v.SCResults)),
	}
	for k, descs := range v.Races {
		rewritten := make([]string, 0, len(descs))
		for _, d := range descs {
			rewritten = append(rewritten, c.rewriteRaceDesc(d))
		}
		sort.Strings(rewritten)
		out.Races[k] = rewritten
	}
	for key := range v.SCResults {
		out.SCResults[c.rewriteResultKey(key)] = true
	}
	return out
}

// raceSide is one endpoint of a "T%d.%d(%s)" race description.
type raceSide struct {
	thread, op int
	class      string
}

func parseRaceSide(s string) (raceSide, bool) {
	if !strings.HasPrefix(s, "T") || !strings.HasSuffix(s, ")") {
		return raceSide{}, false
	}
	dot := strings.IndexByte(s, '.')
	par := strings.IndexByte(s, '(')
	if dot < 0 || par < 0 || par < dot {
		return raceSide{}, false
	}
	t, err1 := strconv.Atoi(s[1:dot])
	o, err2 := strconv.Atoi(s[dot+1 : par])
	if err1 != nil || err2 != nil {
		return raceSide{}, false
	}
	return raceSide{thread: t, op: o, class: s[par+1 : len(s)-1]}, true
}

// rewriteRaceDesc maps one "T%d.%d(%s)~T%d.%d(%s)" description through
// the thread permutation. Unparseable descriptions pass through verbatim
// (the format is ours, so this is a belt-and-suspenders fallback).
func (c *Canonical) rewriteRaceDesc(d string) string {
	halves := strings.SplitN(d, "~", 2)
	if len(halves) != 2 {
		return d
	}
	a, okA := parseRaceSide(halves[0])
	b, okB := parseRaceSide(halves[1])
	if !okA || !okB || a.thread >= len(c.ThreadOf) || b.thread >= len(c.ThreadOf) {
		return d
	}
	a.thread = c.ThreadOf[a.thread]
	b.thread = c.ThreadOf[b.thread]
	// Event IDs are assigned thread-major, so the canonical i<j
	// orientation corresponds to (thread, opIndex) lexicographic order;
	// restore it in the original program's numbering.
	if a.thread > b.thread || (a.thread == b.thread && a.op > b.op) {
		a, b = b, a
	}
	return fmt.Sprintf("T%d.%d(%s)~T%d.%d(%s)", a.thread, a.op, a.class, b.thread, b.op, b.class)
}

// rewriteResultKey maps a "loc=val;..." result key through the location
// renaming, restoring the sorted-by-name order the original program's
// ResultKey would produce.
func (c *Canonical) rewriteResultKey(key string) string {
	segs := strings.Split(strings.TrimSuffix(key, ";"), ";")
	type kv struct{ loc, val string }
	out := make([]kv, 0, len(segs))
	for _, seg := range segs {
		if seg == "" {
			continue
		}
		eq := strings.LastIndexByte(seg, '=')
		if eq < 0 {
			out = append(out, kv{loc: seg})
			continue
		}
		loc, val := seg[:eq], seg[eq+1:]
		if orig, ok := c.LocOf[litmus.Loc(loc)]; ok {
			loc = string(orig)
		}
		out = append(out, kv{loc: loc, val: val})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].loc < out[b].loc })
	var b strings.Builder
	for _, e := range out {
		b.WriteString(e.loc)
		b.WriteByte('=')
		b.WriteString(e.val)
		b.WriteByte(';')
	}
	return b.String()
}
