package litmus_test

import (
	"fmt"

	"rats/internal/core"
	"rats/internal/litmus"
)

// ExampleParse reads a litmus test from its textual form.
func ExampleParse() {
	p, err := litmus.Parse(`
litmus "store_buffering"
thread t0
  store X 1 paired
  r0 = load Y paired
thread t1
  store Y 1 paired
  r1 = load X paired
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name, len(p.Threads), "threads,", p.NumOps(), "ops")
	// Output:
	// store_buffering 2 threads, 4 ops
}

// ExampleFormat renders a builder-constructed program back to text.
func ExampleFormat() {
	p := litmus.New("mp")
	prod := p.Thread("producer")
	prod.Store("D", 1, core.Data)
	prod.Store("F", 1, core.Release)
	fmt.Print(litmus.Format(p))
	// Output:
	// litmus "mp"
	//
	// thread producer
	//   store D 1 data
	//   store F 1 release
}
