// Package cu models the compute units (GPU CUs and the CPU core) that
// issue trace operations into the memory system. This is where the
// consistency model acts: the per-class Behavior from internal/core
// decides whether an atomic self-invalidates the L1 (acquire), flushes
// the store buffer (release), and how much it may overlap with other
// outstanding accesses (Table 4 of the paper).
package cu

import (
	"rats/internal/core"
	"rats/internal/probe"
	"rats/internal/sim/memsys"
	"rats/internal/stats"
	"rats/internal/trace"
)

// warpState tracks one warp's progress through its op stream.
type warpState struct {
	ops *trace.Warp
	pc  int
	// id is the global warp index (probe attribution).
	id int

	// busyUntil blocks issue during compute/scratch ops.
	busyUntil int64
	// outLoads / outAtomics count outstanding memory *instructions* (a
	// 32-lane atomic is one instruction whose lanes are all in flight at
	// once, as on a real SIMT pipeline).
	outLoads   int
	outAtomics int
	// fence blocks all issue until an SC (OverlapNone) access completes.
	fence bool
	// waitingFlush blocks the current op until the store buffer drains.
	waitingFlush bool
	// flushDone is set by the flush callback.
	flushDone bool
	// atBarrier marks the warp parked at a device-wide barrier.
	atBarrier bool
	// atEnd marks the op stream exhausted; the warp retires (done) once
	// trailing compute and outstanding memory operations finish.
	atEnd bool
	done  bool

	// curStall/stallSince track the open stall interval for the probe
	// layer (maintained only when a hub is attached).
	curStall   probe.StallReason
	stallSince int64

	// groups are the warp's in-flight instruction groups: one per memory
	// instruction, counting its transactions still outstanding. Slots are
	// reused once a group completes, so steady-state issue allocates
	// nothing (the per-transaction completion closures this replaces were
	// the CU's dominant allocation source).
	groups []instrGroup
}

// instrGroup counts one memory instruction's outstanding transactions.
type instrGroup struct {
	remaining int
	atomic    bool
	active    bool
}

// allocGroup claims a free group slot (or grows) for an instruction with
// n transactions.
func (w *warpState) allocGroup(n int, atomic bool) int32 {
	for i := range w.groups {
		if !w.groups[i].active {
			w.groups[i] = instrGroup{remaining: n, atomic: atomic, active: true}
			return int32(i)
		}
	}
	w.groups = append(w.groups, instrGroup{remaining: n, atomic: atomic, active: true})
	return int32(len(w.groups) - 1)
}

// CU drives the warps placed on one node.
type CU struct {
	env  *memsys.Env
	node int
	l1   *memsys.L1

	warps []*warpState
	rr    int

	// coalescer is the queue of line transactions awaiting L1 issue;
	// coalescer[coalHead:] holds the live entries (head-index draining
	// reuses the backing array, pre-sized to the configured queue depth).
	coalescer []*memsys.Txn
	coalHead  int
	txnSeq    *int64

	// txnFree recycles completed transactions; lineScratch is the reusable
	// buffer linesOf dedupes into (valid until its next call).
	txnFree     []*memsys.Txn
	lineScratch []uint64

	st *stats.Stats

	// barrierWaiters counts warps currently parked at a barrier; the
	// system driver releases them.
	barrierWaiters int
}

// New builds a CU on the given node over its L1.
func New(env *memsys.Env, node int, l1 *memsys.L1, txnSeq *int64) *CU {
	return &CU{env: env, node: node, l1: l1, txnSeq: txnSeq, st: env.Stats,
		coalescer: make([]*memsys.Txn, 0, env.Cfg.CoalescerQueue)}
}

// depth returns the number of transactions queued in the coalescer.
func (c *CU) depth() int { return len(c.coalescer) - c.coalHead }

// newTxn takes a transaction from the free list (or allocates one),
// zeroed, with Group set to the no-group sentinel.
func (c *CU) newTxn() *memsys.Txn {
	if n := len(c.txnFree); n > 0 {
		t := c.txnFree[n-1]
		c.txnFree = c.txnFree[:n-1]
		*t = memsys.Txn{Group: -1}
		return t
	}
	return &memsys.Txn{Group: -1}
}

// TxnDone implements memsys.Completer: it closes the transaction's
// instruction group (decrementing the warp's outstanding counts when the
// group empties) and recycles the transaction. Safe because nothing in
// the memory system retains a transaction past its completion call.
func (c *CU) TxnDone(t *memsys.Txn, cycle, value int64) {
	if t.Group >= 0 {
		w := t.Owner.(*warpState)
		g := &w.groups[t.Group]
		g.remaining--
		if g.remaining == 0 {
			g.active = false
			if g.atomic {
				w.outAtomics--
			} else {
				w.outLoads--
			}
			c.clearFence(w)
		}
	}
	c.txnFree = append(c.txnFree, t)
}

// AddWarp assigns a warp to this CU, numbering it globally in placement
// order.
func (c *CU) AddWarp(w *trace.Warp) {
	ws := &warpState{ops: w, id: c.env.WarpSeq}
	c.env.WarpSeq++
	if len(w.Ops) == 0 {
		ws.atEnd = true
		ws.done = true
	}
	c.warps = append(c.warps, ws)
}

// NumWarps returns the warp count.
func (c *CU) NumWarps() int { return len(c.warps) }

// Done reports whether every warp has retired and all transactions
// completed.
func (c *CU) Done() bool {
	if c.depth() > 0 {
		return false
	}
	for _, w := range c.warps {
		if !w.done || w.outLoads > 0 || w.outAtomics > 0 {
			return false
		}
	}
	return true
}

// BarrierWaiters returns the number of warps parked at a barrier.
func (c *CU) BarrierWaiters() int { return c.barrierWaiters }

// ReleaseBarrier resumes every parked warp (called by the system driver
// once all warps in the device have arrived and stores have drained).
func (c *CU) ReleaseBarrier() {
	for _, w := range c.warps {
		if w.atBarrier {
			w.atBarrier = false
			w.pc++
			if w.pc >= len(w.ops.Ops) {
				w.atEnd = true
			}
		}
	}
	c.barrierWaiters = 0
}

// L1 exposes the CU's cache controller (for the barrier protocol).
func (c *CU) L1() *memsys.L1 { return c.l1 }

// linesOf groups addresses by cache line, preserving first-touch order.
// The result is the CU's reusable scratch buffer, valid only until the
// next call; with at most one warp's worth of lanes the linear-scan
// dedupe beats a map and allocates nothing.
func (c *CU) linesOf(addrs []uint64) []uint64 {
	lines := c.lineScratch[:0]
	for _, a := range addrs {
		l := a / c.env.Cfg.LineSize
		dup := false
		for _, seen := range lines {
			if seen == l {
				dup = true
				break
			}
		}
		if !dup {
			lines = append(lines, l)
		}
	}
	c.lineScratch = lines
	return lines
}

// canIssue evaluates the consistency gates for a warp's next op.
func (c *CU) canIssue(w *warpState, op *trace.Op) bool {
	if !op.Kind.IsMem() && op.Kind != trace.Barrier && op.Kind != trace.Join {
		return true
	}
	if op.Kind == trace.Barrier || op.Kind == trace.Join {
		// Barriers carry paired semantics; joins model register
		// dependencies: both wait for everything outstanding.
		return w.outLoads == 0 && w.outAtomics == 0
	}
	b := c.env.Cfg.Behavior(op.Class)
	if b.Overlap == core.OverlapNone {
		if w.outLoads > 0 || w.outAtomics > 0 {
			return false
		}
	}
	if b.Overlap == core.OverlapAtomicSerial && op.Kind == trace.Atomic && w.outAtomics > 0 {
		return false
	}
	// Bound per-warp MLP (instructions in flight).
	if w.outLoads+w.outAtomics >= c.env.Cfg.MaxOutstandingPerWarp {
		return false
	}
	if op.Kind == trace.Atomic && w.outAtomics >= c.env.Cfg.MaxOutstandingAtomicsPerWarp {
		return false
	}
	return true
}

// issueOp performs the consistency actions and enqueues the op's
// transactions. Returns false if the coalescer lacks space (retry).
func (c *CU) issueOp(cycle int64, w *warpState, op *trace.Op) bool {
	b := c.env.Cfg.Behavior(op.Class)
	if op.Scope == trace.ScopeLocal {
		// HRF work-group scope: ordering is only required within this CU,
		// which sees its own accesses in order — no invalidation or
		// flush; overlap still follows the class.
		b.InvalidateOnLoad = false
		b.FlushOnStore = false
	}
	writes := op.AOp.Writes() || op.Kind == trace.Store
	reads := op.AOp.Reads() && op.Kind != trace.Store

	// Release: the store buffer must drain before the access performs.
	if b.FlushOnStore && writes && op.Kind.IsMem() {
		if !w.waitingFlush {
			w.waitingFlush = true
			w.flushDone = false
			c.st.ReleaseFlushes++
			if h := c.env.Probe; h != nil {
				h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node,
					Warp: w.id, Kind: probe.ReleaseFlush})
			}
			c.l1.Flush(cycle, func(int64) { w.flushDone = true })
		}
		if !w.flushDone {
			return false
		}
		w.waitingFlush = false
	}

	// Estimate transaction count and check coalescer space.
	var txns int
	switch op.Kind {
	case trace.Load, trace.Store:
		txns = len(c.linesOf(op.Addrs))
	case trace.Atomic:
		txns = len(op.Addrs)
	}
	if c.depth()+txns > c.env.Cfg.CoalescerQueue {
		return false
	}

	// Acquire: self-invalidate before subsequent reads can hit stale data.
	if b.InvalidateOnLoad && reads && op.Kind == trace.Atomic {
		c.l1.AcquireInvalidate()
	}

	switch op.Kind {
	case trace.Load:
		lines := c.linesOf(op.Addrs)
		w.outLoads++
		g := w.allocGroup(len(lines), false)
		for _, line := range lines {
			t := c.newTxn()
			t.Kind = memsys.TxnLoad
			t.Addr = line * c.env.Cfg.LineSize
			t.Class = op.Class
			t.AOp = core.OpLoad
			t.Done = c
			t.Owner = w
			t.Group = g
			c.push(w, t)
		}
	case trace.Store:
		for _, line := range c.linesOf(op.Addrs) {
			// Stores complete into the store buffer; they do not hold the
			// warp. Flush semantics make them visible.
			t := c.newTxn()
			t.Kind = memsys.TxnStore
			t.Addr = line * c.env.Cfg.LineSize
			t.Class = op.Class
			t.AOp = core.OpStore
			t.Done = c
			c.push(w, t)
		}
	case trace.Atomic:
		w.outAtomics++
		g := w.allocGroup(len(op.Addrs), true)
		for i, a := range op.Addrs {
			operand := op.Operand
			if op.Operands != nil {
				operand = op.Operands[i]
			}
			t := c.newTxn()
			t.Kind = memsys.TxnAtomic
			t.Addr = a
			t.Class = op.Class
			t.LocalScope = op.Scope == trace.ScopeLocal
			t.AOp = op.AOp
			t.Operand = operand
			t.Done = c
			t.Owner = w
			t.Group = g
			c.push(w, t)
		}
	}

	if op.Kind.IsMem() && b.Overlap == core.OverlapNone {
		// SC access: block the warp until it completes.
		w.fence = true
		c.clearFence(w) // store-only SC ops hold no transactions
	}
	return true
}

func (c *CU) clearFence(w *warpState) {
	if w.fence && w.outLoads == 0 && w.outAtomics == 0 {
		w.fence = false
	}
}

// spanOpOf classifies a transaction for the latency-span layer.
func spanOpOf(t *memsys.Txn) probe.SpanOp {
	switch t.Kind {
	case memsys.TxnLoad:
		return probe.SpanLoad
	case memsys.TxnStore:
		return probe.SpanStore
	}
	switch t.Class {
	case core.Acquire:
		return probe.SpanAcquire
	case core.Release:
		return probe.SpanRelease
	}
	return probe.SpanAtomic
}

func (c *CU) push(w *warpState, t *memsys.Txn) {
	*c.txnSeq++
	t.ID = *c.txnSeq
	t.Warp = w.id
	if c.coalHead > 0 && len(c.coalescer) == cap(c.coalescer) {
		n := copy(c.coalescer, c.coalescer[c.coalHead:])
		for i := n; i < len(c.coalescer); i++ {
			c.coalescer[i] = nil
		}
		c.coalescer = c.coalescer[:n]
		c.coalHead = 0
	}
	c.coalescer = append(c.coalescer, t)
	if h := c.env.Probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompCU, Node: c.node, Warp: w.id,
			Kind: probe.CoalescerPush, Txn: t.ID, Addr: t.Addr,
			Arg: int64(c.depth()), Aux: int64(spanOpOf(t))})
	}
}

// Tick advances the CU one cycle: retire finished warps, drain the
// coalescer into the L1, then issue at most one warp op (CPU nodes may
// issue several, reflecting the faster CPU clock).
//
// quiet marks a cycle the skip oracle (NextWork) proved idle but that is
// being processed anyway because fast-forwarding is disabled. Stall
// accounting and stall-interval tracking are suppressed on quiet cycles
// — exactly the accounting a skipped cycle gets — while all state
// transitions still run, so an oracle that wrongly skips a productive
// cycle shows up as diverging architectural counters in the equivalence
// tests rather than being masked.
func (c *CU) Tick(cycle int64, quiet bool) {
	// Retirement: the op stream is exhausted, trailing compute has
	// elapsed, and no memory operations remain in flight.
	for _, w := range c.warps {
		if w.atEnd && !w.done && w.busyUntil <= cycle && w.outLoads == 0 && w.outAtomics == 0 {
			w.done = true
		}
	}
	// Coalescer → L1 (one transaction per cycle port).
	if c.depth() > 0 {
		if t := c.coalescer[c.coalHead]; c.l1.TryIssue(cycle, t) {
			c.coalescer[c.coalHead] = nil
			c.coalHead++
			if c.coalHead == len(c.coalescer) {
				c.coalescer = c.coalescer[:0]
				c.coalHead = 0
			}
			if h := c.env.Probe; h != nil {
				h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node,
					Warp: t.Warp, Kind: probe.CoalescerDrain, Txn: t.ID, Addr: t.Addr})
			}
		}
	}

	issues := 1
	if len(c.warps) > 0 && c.warps[0].ops.IsCPU {
		issues = c.env.Cfg.CPUIssuePerCycle
	}
	for n := 0; n < issues; n++ {
		if !c.issueOne(cycle, quiet) {
			break
		}
	}
	if h := c.env.Probe; h != nil && !quiet {
		c.trackStalls(cycle, h)
	}
}

// issueOne finds one ready warp round-robin and issues its next op.
func (c *CU) issueOne(cycle int64, quiet bool) bool {
	nw := len(c.warps)
	if nw == 0 {
		return false
	}
	for k := 0; k < nw; k++ {
		w := c.warps[(c.rr+k)%nw]
		if w.done || w.atEnd || w.atBarrier || w.fence || w.busyUntil > cycle {
			continue
		}
		if f := c.env.Fault; f != nil && f.Wedged(w.id, cycle) {
			if !quiet {
				c.st.WarpIssueStalls++
			}
			continue
		}
		op := &w.ops.Ops[w.pc]
		if !c.canIssue(w, op) {
			if !quiet {
				c.st.WarpIssueStalls++
			}
			continue
		}
		switch op.Kind {
		case trace.Compute:
			w.busyUntil = cycle + int64(op.Cycles)
			c.st.CoreOps++
		case trace.ScratchLoad, trace.ScratchStore:
			w.busyUntil = cycle + int64(op.Cycles)
			c.st.CoreOps++
			c.st.ScratchAccesses++
		case trace.Barrier:
			w.atBarrier = true
			c.barrierWaiters++
			if h := c.env.Probe; h != nil {
				h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node,
					Warp: w.id, Kind: probe.BarrierArrive})
			}
			c.rr = (c.rr + k + 1) % nw
			return true
		case trace.Join:
			// Pure dependency marker: free once issuable.
		default:
			if !c.issueOp(cycle, w, op) {
				if !quiet {
					c.st.WarpIssueStalls++
				}
				continue
			}
			c.st.CoreOps++
		}
		if h := c.env.Probe; h != nil {
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node,
				Warp: w.id, Kind: probe.WarpIssue, Arg: int64(op.Kind)})
		}
		w.pc++
		if w.pc >= len(w.ops.Ops) {
			w.atEnd = true
		}
		c.rr = (c.rr + k + 1) % nw
		return true
	}
	return false
}

// NextWork returns the earliest cycle at which this CU can make progress
// on its own, or -1 if it is entirely waiting on external events
// (message deliveries and scheduled completions). The hint must be
// exact, not merely conservative in one direction: the driver fast
// forwards the clock straight to the minimum hint across all
// components, so a cycle where this CU would have acted but which the
// hint did not report would silently change timing. The equivalence
// tests (skip on vs off) pin this property.
func (c *CU) NextWork(cycle int64) int64 {
	if c.depth() > 0 {
		// A queued transaction retries L1 issue every cycle.
		return cycle + 1
	}
	wake := int64(-1)
	min := func(t int64) {
		if t <= cycle {
			t = cycle + 1
		}
		if wake < 0 || t < wake {
			wake = t
		}
	}
	for _, w := range c.warps {
		switch {
		case w.done || w.atBarrier:
			// Retired, or parked until the driver-side barrier release (which
			// itself only happens at processed cycles).
		case w.atEnd:
			// Retiring: wakes when trailing compute elapses, but only once
			// outstanding memory has completed — completions are events.
			if w.outLoads == 0 && w.outAtomics == 0 {
				min(w.busyUntil)
			}
		case w.fence, w.waitingFlush && !w.flushDone:
			// SC fence / release flush: unblocked by completions.
		case w.busyUntil > cycle:
			// Computing: the next op issues (or begins stalling) the moment
			// compute finishes, regardless of memory still in flight.
			min(w.busyUntil)
		default:
			// Ready warp. A wedged warp must stay hot so the fault tally and
			// the watchdog timeline match cycle-by-cycle execution exactly.
			if f := c.env.Fault; f != nil && f.WedgeActive(w.id, cycle+1) {
				min(cycle + 1)
				continue
			}
			// If the consistency gates pass, the warp issues (or retries a
			// full coalescer) next cycle. If they fail, every gate is a pure
			// function of outstanding-op counts, which only completions
			// change — so the warp is provably idle until the next event.
			if c.canIssue(w, &w.ops.Ops[w.pc]) {
				min(cycle + 1)
			}
		}
	}
	return wake
}

// CoalescerDepth returns the number of transactions queued for L1 issue
// (liveness diagnostics).
func (c *CU) CoalescerDepth() int { return c.depth() }

// WarpDiag is one warp's state snapshot for liveness diagnostics.
type WarpDiag struct {
	Warp, Node int
	// PC and Ops locate the warp in its op stream.
	PC, Ops int
	// State names what the warp is doing or waiting on.
	State                string
	OutLoads, OutAtomics int
}

// Stuck reports whether the warp still has work it cannot finish on its
// own this instant (everything but retired).
func (d WarpDiag) Stuck() bool { return d.State != "retired" }

// Diag snapshots every warp's state at the given cycle.
func (c *CU) Diag(cycle int64) []WarpDiag {
	out := make([]WarpDiag, 0, len(c.warps))
	for _, w := range c.warps {
		d := WarpDiag{Warp: w.id, Node: c.node, PC: w.pc, Ops: len(w.ops.Ops),
			OutLoads: w.outLoads, OutAtomics: w.outAtomics}
		switch {
		case w.done:
			d.State = "retired"
		case w.atBarrier:
			d.State = "at-barrier"
		case c.env.Fault != nil && c.env.Fault.WedgeActive(w.id, cycle):
			d.State = "wedged (injected fault)"
		case w.fence:
			d.State = "sc-fence drain"
		case w.waitingFlush && !w.flushDone:
			d.State = "release-flush wait"
		case w.outLoads > 0 || w.outAtomics > 0:
			d.State = "memory wait"
		case w.busyUntil > cycle:
			d.State = "compute"
		case w.atEnd:
			d.State = "retiring"
		default:
			d.State = "ready"
		}
		out = append(out, d)
	}
	return out
}

// RetiredWarps counts warps that have finished their op streams.
func (c *CU) RetiredWarps() int {
	n := 0
	for _, w := range c.warps {
		if w.done {
			n++
		}
	}
	return n
}

// stallReasonOf classifies why a warp cannot issue this cycle (probe
// attribution; mirrors the gates in canIssue/issueOp).
func (c *CU) stallReasonOf(w *warpState, cycle int64) probe.StallReason {
	switch {
	case w.done:
		return probe.StallNone
	case w.atBarrier:
		return probe.StallBarrier
	case w.atEnd:
		if w.outLoads > 0 || w.outAtomics > 0 {
			return probe.StallMemory
		}
		return probe.StallNone
	case w.busyUntil > cycle:
		return probe.StallNone // compute-occupied, not a stall
	case w.fence:
		return probe.StallConsistency // SC access draining
	case w.waitingFlush && !w.flushDone:
		return probe.StallConsistency // release flush in progress
	}
	if f := c.env.Fault; f != nil && f.WedgeActive(w.id, cycle) {
		return probe.StallFault
	}
	op := &w.ops.Ops[w.pc]
	if !op.Kind.IsMem() && op.Kind != trace.Barrier && op.Kind != trace.Join {
		return probe.StallNone
	}
	if op.Kind == trace.Barrier || op.Kind == trace.Join {
		if w.outLoads > 0 || w.outAtomics > 0 {
			return probe.StallMemory
		}
		return probe.StallNone
	}
	b := c.env.Cfg.Behavior(op.Class)
	if b.Overlap == core.OverlapNone && (w.outLoads > 0 || w.outAtomics > 0) {
		return probe.StallConsistency
	}
	if b.Overlap == core.OverlapAtomicSerial && op.Kind == trace.Atomic && w.outAtomics > 0 {
		return probe.StallConsistency
	}
	if w.outLoads+w.outAtomics >= c.env.Cfg.MaxOutstandingPerWarp {
		return probe.StallMemory
	}
	if op.Kind == trace.Atomic && w.outAtomics >= c.env.Cfg.MaxOutstandingAtomicsPerWarp {
		return probe.StallMemory
	}
	var txns int
	switch op.Kind {
	case trace.Load, trace.Store:
		txns = len(c.linesOf(op.Addrs))
	case trace.Atomic:
		txns = len(op.Addrs)
	}
	if c.depth()+txns > c.env.Cfg.CoalescerQueue {
		if c.l1.SBFull() {
			return probe.StallStoreBufferFull
		}
		return probe.StallIssue
	}
	return probe.StallNone
}

// trackStalls maintains each warp's open stall interval, emitting
// begin/end events on transitions. It runs once per processed cycle when
// a hub is attached, so intervals span fast-forwarded gaps and each
// warp's stall intervals are disjoint (their sum is bounded by the run's
// total cycles).
func (c *CU) trackStalls(cycle int64, h *probe.Hub) {
	for _, w := range c.warps {
		r := c.stallReasonOf(w, cycle)
		if r == w.curStall {
			continue
		}
		if w.curStall != probe.StallNone {
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node, Warp: w.id,
				Kind: probe.StallEnd, Reason: w.curStall, Arg: cycle - w.stallSince})
		}
		if r != probe.StallNone {
			w.stallSince = cycle
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node, Warp: w.id,
				Kind: probe.StallBegin, Reason: r})
		}
		w.curStall = r
	}
}

// CloseStalls ends any open stall intervals (called by the system driver
// at the end of the run so no stalled cycles are lost).
func (c *CU) CloseStalls(cycle int64, h *probe.Hub) {
	for _, w := range c.warps {
		if w.curStall != probe.StallNone {
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompCU, Node: c.node, Warp: w.id,
				Kind: probe.StallEnd, Reason: w.curStall, Arg: cycle - w.stallSince})
			w.curStall = probe.StallNone
		}
	}
}
