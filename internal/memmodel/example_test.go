package memmodel_test

import (
	"fmt"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
)

// ExampleCheckProgram classifies the message-passing idiom under all
// three models: with a paired flag it is legal everywhere; the naive
// data-race version is caught by the data-race detector.
func ExampleCheckProgram() {
	legal := litmus.MP("mp_paired", core.Paired)
	racy := litmus.MPData()
	for _, p := range []*litmus.Program{legal, racy} {
		v, err := memmodel.CheckProgram(p, core.DRFrlx)
		if err != nil {
			panic(err)
		}
		fmt.Println(v.Summary())
	}
	// Output:
	// mp_paired under DRFrlx: LEGAL (2 SC executions)
	// MPData under DRFrlx: ILLEGAL — 1 data race(s)
}

// ExampleCheckProgram_commutative shows the commutative-race detector
// distinguishing discarded racing increments (legal) from one whose value
// is observed (illegal).
func ExampleCheckProgram_commutative() {
	ok := litmus.New("counter_ok")
	ok.Thread("w0").Inc("CTR", core.Commutative)
	ok.Thread("w1").Inc("CTR", core.Commutative)

	bad := litmus.New("counter_observed")
	t0 := bad.Thread("w0")
	r := t0.RMW(core.OpInc, "CTR", 0, core.Commutative)
	t0.Use(r)
	bad.Thread("w1").Inc("CTR", core.Commutative)

	for _, p := range []*litmus.Program{ok, bad} {
		v, err := memmodel.CheckProgram(p, core.DRFrlx)
		if err != nil {
			panic(err)
		}
		fmt.Println(v.Summary())
	}
	// Output:
	// counter_ok under DRFrlx: LEGAL (2 SC executions)
	// counter_observed under DRFrlx: ILLEGAL — 1 commutative race(s)
}

// ExampleValidateTheorem checks Theorem 3.1 on the seqlock use case: the
// relaxed system model produces only SC results for the legal program.
func ExampleValidateTheorem() {
	rep, err := memmodel.ValidateTheorem(litmus.Seqlocks())
	if err != nil {
		panic(err)
	}
	fmt.Printf("legal=%v systemSC=%v\n", rep.Legal, rep.SystemSC)
	// Output:
	// legal=true systemSC=true
}

// ExampleInferLabels relaxes a naive all-SC event counter: the racing
// increments drop to a free class while nothing forces them paired.
func ExampleInferLabels() {
	p := litmus.New("counter")
	p.Thread("w0").Inc("CTR", core.Paired)
	p.Thread("w1").Inc("CTR", core.Paired)
	labels, err := memmodel.InferLabels(p, memmodel.InferOptions{
		Candidates: []core.Class{core.Paired, core.Commutative},
	})
	if err != nil {
		panic(err)
	}
	for _, l := range labels {
		fmt.Println(l)
	}
	// Output:
	// [commutative, commutative] cost=0
}
