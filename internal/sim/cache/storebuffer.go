package cache

import "rats/internal/probe"

// StoreBuffer models the per-core FIFO of stores that have issued but not
// yet become globally visible. Under GPU coherence entries drain as
// write-throughs to the LLC; under DeNovo they drain as ownership
// requests. A release (paired store or barrier) must wait until the
// buffer is empty and all drained entries have been acknowledged — the
// "store buffer flush" cost that DRF1 and DRFrlx avoid for relaxed
// atomics (Table 4).
type StoreBuffer struct {
	capacity int
	queue    []any
	// unacked counts entries drained into the memory system whose
	// completion acknowledgements are still pending.
	unacked int

	// probe, when non-nil, receives fill/drain events attributed to node
	// (the owning L1).
	probe *probe.Hub
	node  int
}

// AttachProbe routes fill/drain events to the hub, attributed to the
// owning L1's node.
func (b *StoreBuffer) AttachProbe(h *probe.Hub, node int) {
	b.probe = h
	b.node = node
}

// NewStoreBuffer builds a buffer with the given capacity.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{capacity: capacity}
}

// Full reports whether a new store cannot be accepted.
func (b *StoreBuffer) Full() bool { return len(b.queue) >= b.capacity }

// Len returns the number of queued (not yet drained) entries.
func (b *StoreBuffer) Len() int { return len(b.queue) }

// Push appends a store. The caller must have checked Full.
func (b *StoreBuffer) Push(e any) {
	if b.Full() {
		panic("cache: store buffer push when full")
	}
	b.queue = append(b.queue, e)
	if h := b.probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: b.node, Warp: -1,
			Kind: probe.SBFill, Arg: int64(len(b.queue))})
	}
}

// Pop drains the oldest entry into the memory system, incrementing the
// unacked count. Returns nil when empty.
func (b *StoreBuffer) Pop() any {
	if len(b.queue) == 0 {
		return nil
	}
	e := b.queue[0]
	b.queue = b.queue[1:]
	b.unacked++
	if h := b.probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: b.node, Warp: -1,
			Kind: probe.SBDrain, Arg: int64(len(b.queue))})
	}
	return e
}

// Ack records completion of a drained entry.
func (b *StoreBuffer) Ack() {
	if b.unacked == 0 {
		panic("cache: store buffer ack without outstanding drain")
	}
	b.unacked--
}

// Drained reports whether the buffer is empty and every drained entry has
// been acknowledged — the flush condition.
func (b *StoreBuffer) Drained() bool { return len(b.queue) == 0 && b.unacked == 0 }

// Unacked returns the in-flight drained count.
func (b *StoreBuffer) Unacked() int { return b.unacked }

// Peek returns the oldest entry without draining it, or nil.
func (b *StoreBuffer) Peek() any {
	if len(b.queue) == 0 {
		return nil
	}
	return b.queue[0]
}
