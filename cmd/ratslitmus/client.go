package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/serve"
)

// Exit codes, so scripts and CI can tell *why* a check run failed:
// mismatches and checker errors are not the same failure as a program
// that would not even parse, and a tripped budget is retryable where a
// validation error is not.
const (
	exitOK       = 0 // all verdicts produced (and matched, where expected)
	exitCheck    = 1 // verdict mismatch, checker failure, or I/O error
	exitParse    = 2 // program text did not parse (or bad flags)
	exitValidate = 3 // program parsed but is structurally invalid
	exitLimit    = 4 // deadline or execution/transition budget exhausted
)

// classifyLocal maps a local parse/check error onto an exit code.
func classifyLocal(err error, parsing bool) int {
	var pe *litmus.ParseError
	var ce *memmodel.CancelError
	switch {
	case errors.As(err, &pe):
		return exitParse
	case parsing:
		// litmus.Parse failures that are not positional syntax errors are
		// Validate rejections (duplicate threads, bad refs, empty program).
		return exitValidate
	case errors.As(err, &ce), errors.Is(err, memmodel.ErrLimit):
		return exitLimit
	}
	return exitCheck
}

// classifyRemote maps a ratsserve error kind onto an exit code.
func classifyRemote(kind string) int {
	switch kind {
	case "parse":
		return exitParse
	case "validate", "too_large", "bad_json":
		return exitValidate
	case "deadline", "limit", "canceled":
		return exitLimit
	}
	return exitCheck
}

// serveClient checks programs against a running ratsserve.
type serveClient struct {
	url        string // base URL, e.g. http://127.0.0.1:8080
	client     *http.Client
	deadlineMs int64  // per-check deadline forwarded to the server; 0 = server default
	mode       string // backend mode forwarded to the server; "" = enumeration
}

func newServeClient(url string, deadline time.Duration, mode memmodel.Mode) *serveClient {
	return &serveClient{
		url:        strings.TrimRight(url, "/"),
		client:     &http.Client{Timeout: 2 * time.Minute},
		deadlineMs: deadline.Milliseconds(),
		mode:       string(mode),
	}
}

// withDeadline binds a wall-time budget onto local check options.
func withDeadline(opts memmodel.CheckOptions, d time.Duration) (memmodel.CheckOptions, context.CancelFunc) {
	if d <= 0 {
		return opts, func() {}
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	opts.Ctx = ctx
	return opts, cancel
}

// checkRetryFor bounds how long check keeps retrying shed (429/503)
// responses before reporting the overload to the caller.
const checkRetryFor = 90 * time.Second

// check POSTs one program+model to the service. Shed responses (rate
// limit, full queue, drain) are retried after the server's Retry-After
// hint — load shedding is the service working as designed, and a client
// that treats 429/503 as fatal defeats it. On any other non-200 it
// returns the decoded ErrorResponse as the error and the matching exit
// code.
func (c *serveClient) check(src, model string, witness bool) (*serve.CheckResponse, int, error) {
	body, err := json.Marshal(serve.CheckRequest{Program: src, Model: model, Witness: witness, DeadlineMs: c.deadlineMs, Mode: c.mode})
	if err != nil {
		return nil, exitCheck, err
	}
	deadline := time.Now().Add(checkRetryFor)
	for {
		resp, retryMs, code, err := c.post(body)
		if code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
			return resp, code, err
		}
		if time.Now().After(deadline) {
			return nil, exitCheck, fmt.Errorf("still shed after %s: %w", checkRetryFor, err)
		}
		if retryMs <= 0 {
			retryMs = 1000
		}
		time.Sleep(time.Duration(retryMs) * time.Millisecond)
	}
}

// post performs one /check attempt. The int result is the exit code on
// a terminal answer, or the HTTP status 429/503 on a retryable shed.
// Errors carry the server's X-Rats-Trace-Id so a failed run can be
// cross-referenced against the service's /tracez ring and trace JSONL.
func (c *serveClient) post(body []byte) (*serve.CheckResponse, int64, int, error) {
	httpResp, err := c.client.Post(c.url+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, exitCheck, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return nil, 0, exitCheck, err
	}
	if httpResp.StatusCode != http.StatusOK {
		trace := traceSuffix(httpResp)
		var er serve.ErrorResponse
		decodeErr := json.Unmarshal(raw, &er)
		if httpResp.StatusCode == http.StatusTooManyRequests || httpResp.StatusCode == http.StatusServiceUnavailable {
			return nil, er.RetryAfterMs, httpResp.StatusCode, fmt.Errorf("%s: %s (%s)%s", c.url, er.Error, er.Kind, trace)
		}
		if decodeErr == nil && er.Error != "" {
			return nil, 0, classifyRemote(er.Kind), fmt.Errorf("%s: %s (%s)%s", c.url, er.Error, er.Kind, trace)
		}
		return nil, 0, exitCheck, fmt.Errorf("%s: HTTP %d%s", c.url, httpResp.StatusCode, trace)
	}
	var resp serve.CheckResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, 0, exitCheck, fmt.Errorf("%s: %w%s", c.url, err, traceSuffix(httpResp))
	}
	return &resp, 0, exitOK, nil
}

// traceSuffix renders " [trace <id>]" from the response's trace header,
// or "" when the server (or an intermediary) sent none.
func traceSuffix(resp *http.Response) string {
	if id := resp.Header.Get(serve.TraceHeader); id != "" {
		return " [trace " + id + "]"
	}
	return ""
}

// diffText renders one verdict in the stable, machine-diffable form
// shared by local and served checks: name, model, legality, races, and
// SC-reachable results — and nothing execution-order-dependent (POR
// execution counts differ across equivalent thread orders, so they are
// deliberately excluded).
func diffText(name, model string, legal bool, races map[string][]string, sc []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "case %s model %s\nlegal %v\n", name, model, legal)
	kinds := make([]string, 0, len(races))
	for k := range races {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		descs := append([]string(nil), races[k]...)
		sort.Strings(descs)
		for _, d := range descs {
			fmt.Fprintf(&b, "race %s: %s\n", k, d)
		}
	}
	sc = append([]string(nil), sc...)
	sort.Strings(sc)
	for _, r := range sc {
		fmt.Fprintf(&b, "sc %s\n", r)
	}
	b.WriteString("\n")
	return b.String()
}

// localDiffText checks prog locally under model m and renders diffText.
// Under -mode solve it is also the differential harness the solver is
// shipped with: the same program is checked again on the streaming
// enumeration pipeline, and any difference in the rendered verdict is a
// hard error (exit 1) — so a `-mode solve -diff` catalog run both prints
// byte-identical output to a streaming run and proves it.
func localDiffText(prog *litmus.Program, m core.Model, deadline time.Duration, opts memmodel.CheckOptions) (string, int, error) {
	copts, cancel := withDeadline(opts, deadline)
	v, err := memmodel.CheckProgramWith(prog, m, copts)
	cancel()
	if err != nil {
		return "", classifyLocal(err, false), err
	}
	out := renderDiff(prog.Name, m, v)
	if opts.Mode == memmodel.ModeSolve {
		eopts := opts
		eopts.Mode = memmodel.ModeEnumerate
		eopts, cancel := withDeadline(eopts, deadline)
		ev, err := memmodel.CheckProgramWith(prog, m, eopts)
		cancel()
		if err != nil {
			return "", classifyLocal(err, false), err
		}
		if eout := renderDiff(prog.Name, m, ev); eout != out {
			return "", exitCheck, fmt.Errorf("solver diverges from enumeration on %s under %s:\n--- solve ---\n%s--- enumerate ---\n%s",
				prog.Name, m, out, eout)
		}
	}
	return out, exitOK, nil
}

// renderDiff renders a local verdict in diffText form.
func renderDiff(name string, m core.Model, v *memmodel.Verdict) string {
	races := make(map[string][]string, len(v.Races))
	for k, descs := range v.Races {
		races[k.String()] = descs
	}
	sc := make([]string, 0, len(v.SCResults))
	for r := range v.SCResults {
		sc = append(sc, r)
	}
	return diffText(name, m.String(), v.Legal, races, sc)
}

// caseResult is one catalog case's rendered output (all models).
type caseResult struct {
	out  string
	code int
	err  error
}

// runCatalog checks catalog cases — all of them, or just -case NAME —
// either locally or through -serve-url, and prints one record per
// case×model in deterministic suite order regardless of -j. The output
// of a local and a served run over the same catalog is byte-identical,
// which is exactly what the CI smoke job diffs.
func runCatalog(caseName, serveURL string, jobs int, diffMode bool, deadline time.Duration, opts memmodel.CheckOptions) int {
	suite := litmus.Suite()
	cases := make([]litmus.Case, 0, len(suite))
	if caseName != "" {
		tc := litmus.ByName(caseName)
		if tc == nil {
			fmt.Fprintf(os.Stderr, "ratslitmus: unknown case %q (see -list)\n", caseName)
			return exitParse
		}
		cases = append(cases, *tc)
	} else {
		cases = suite
	}

	var cl *serveClient
	if serveURL != "" {
		cl = newServeClient(serveURL, deadline, opts.Mode)
	}
	if jobs < 1 {
		jobs = 1
	}

	results := make([]caseResult, len(cases))
	var wg sync.WaitGroup
	sem := make(chan struct{}, jobs)
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = checkCase(cases[i], cl, diffMode, deadline, opts)
		}(i)
	}
	wg.Wait()

	code := exitOK
	for _, r := range results {
		fmt.Print(r.out)
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", r.err)
			if code == exitOK {
				code = r.code
			}
		}
	}
	return code
}

// checkCase renders one catalog case under every model.
func checkCase(tc litmus.Case, cl *serveClient, diffMode bool, deadline time.Duration, opts memmodel.CheckOptions) caseResult {
	var b strings.Builder
	src := litmus.Format(tc.Prog)
	for _, m := range core.Models() {
		var (
			out  string
			code int
			err  error
		)
		if cl != nil {
			var resp *serve.CheckResponse
			resp, code, err = cl.check(src, m.String(), false)
			if err == nil {
				if diffMode {
					out = diffText(resp.Name, resp.Model, resp.Legal, resp.Races, resp.SCResults)
				} else {
					out = fmt.Sprintf("%-26s %-8s legal=%-5v cached=%v\n", resp.Name, resp.Model, resp.Legal, resp.Cached)
				}
			}
		} else {
			out, code, err = localDiffText(tc.Prog, m, deadline, opts)
			if err == nil && !diffMode {
				out = strings.SplitN(out, "\n", 3)[0] + "\n" // compact: "case NAME model M"
			}
		}
		if err != nil {
			return caseResult{out: b.String(), code: code, err: err}
		}
		b.WriteString(out)
	}
	return caseResult{out: b.String(), code: exitOK}
}
