package rel

import "testing"

// relFromBytes decodes a relation from fuzz input: the first byte picks
// the size (1..66, crossing the word boundary), the rest seed pairs.
func relFromBytes(data []byte, skip int) (Rel, boolRel, int) {
	if len(data) <= skip {
		return New(1), newBoolRel(1), skip
	}
	n := 1 + int(data[skip])%66
	r, ref := New(n), newBoolRel(n)
	used := skip + 1
	for ; used+1 < len(data) && used < skip+1+2*n; used += 2 {
		i, j := int(data[used])%n, int(data[used+1])%n
		r.Set(i, j)
		ref.Set(i, j)
	}
	return r, ref, used
}

func sameRel(a, b Rel) bool {
	return a.Diff(b).Empty() && b.Diff(a).Empty()
}

// FuzzAlgebraicIdentities fuzzes the algebraic laws of the bitset
// kernels and their agreement with the []bool reference:
//
//	(r⁺)⁺ = r⁺          closure is idempotent
//	(r;s);t = r;(s;t)   composition associates
//	¬(a ∪ b) = ¬a ∩ ¬b  De Morgan over a fixed universe (via Diff)
//	(a;b)⁻¹ = b⁻¹;a⁻¹   inverse anti-distributes over composition
func FuzzAlgebraicIdentities(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{65, 0, 64, 64, 1, 1, 0})
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, refA, used := relFromBytes(data, 0)
		if a.Size() > 66 {
			t.Skip()
		}
		n := a.Size()
		b, refB, used := relFromBytes(append([]byte{byte(n - 1)}, data[used:]...), 0)
		c, _, _ := relFromBytes(append([]byte{byte(n - 1)}, data[used:]...), 0)

		// Differential: every operator agrees with the reference.
		if err := equalRef(a.Union(b), refA.Union(refB)); err != nil {
			t.Fatalf("Union: %v", err)
		}
		if err := equalRef(a.Compose(b), refA.Compose(refB)); err != nil {
			t.Fatalf("Compose: %v", err)
		}
		if err := equalRef(a.TransClosure(), refA.TransClosure()); err != nil {
			t.Fatalf("TransClosure: %v", err)
		}

		// (r⁺)⁺ = r⁺.
		tc := a.TransClosure()
		if !sameRel(tc.TransClosure(), tc) {
			t.Fatal("closure not idempotent")
		}
		// r ⊆ r⁺ and r⁺;r⁺ ⊆ r⁺.
		if !a.Diff(tc).Empty() {
			t.Fatal("closure lost pairs")
		}
		if !tc.Compose(tc).Diff(tc).Empty() {
			t.Fatal("closure not transitive")
		}
		// (a;b);c = a;(b;c).
		if !sameRel(a.Compose(b).Compose(c), a.Compose(b.Compose(c))) {
			t.Fatal("composition not associative")
		}
		// De Morgan over the full universe U: U\(a ∪ b) = (U\a) ∩ (U\b)
		// and U\(a ∩ b) = (U\a) ∪ (U\b).
		u := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				u.Set(i, j)
			}
		}
		if !sameRel(u.Diff(a.Union(b)), u.Diff(a).Inter(u.Diff(b))) {
			t.Fatal("De Morgan (union) fails")
		}
		if !sameRel(u.Diff(a.Inter(b)), u.Diff(a).Union(u.Diff(b))) {
			t.Fatal("De Morgan (intersection) fails")
		}
		// (a;b)⁻¹ = b⁻¹;a⁻¹.
		if !sameRel(a.Compose(b).Inverse(), b.Inverse().Compose(a.Inverse())) {
			t.Fatal("inverse does not anti-distribute over composition")
		}
		// Sym is symmetric and contains r.
		sym := a.Sym()
		if !sameRel(sym, sym.Inverse()) || !a.Diff(sym).Empty() {
			t.Fatal("Sym broken")
		}
	})
}

// FuzzInPlaceMatchesAllocating fuzzes that every -In/-Into kernel
// produces exactly what its allocating counterpart does.
func FuzzInPlaceMatchesAllocating(f *testing.F) {
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, _, used := relFromBytes(data, 0)
		n := a.Size()
		b, _, _ := relFromBytes(append([]byte{byte(n - 1)}, data[used:]...), 0)

		in := a.Clone()
		in.UnionIn(b)
		if !sameRel(in, a.Union(b)) {
			t.Fatal("UnionIn")
		}
		in.CopyFrom(a)
		in.InterIn(b)
		if !sameRel(in, a.Inter(b)) {
			t.Fatal("InterIn")
		}
		in.CopyFrom(a)
		in.DiffIn(b)
		if !sameRel(in, a.Diff(b)) {
			t.Fatal("DiffIn")
		}
		in.CopyFrom(a)
		in.TransCloseIn()
		if !sameRel(in, a.TransClosure()) {
			t.Fatal("TransCloseIn")
		}
		in.CopyFrom(a)
		in.ReflTransCloseIn()
		if !sameRel(in, a.ReflTransClosure()) {
			t.Fatal("ReflTransCloseIn")
		}
		in.ComposeInto(a, b)
		if !sameRel(in, a.Compose(b)) {
			t.Fatal("ComposeInto")
		}
		in.InverseInto(a)
		if !sameRel(in, a.Inverse()) {
			t.Fatal("InverseInto")
		}
	})
}
