package rtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock advances a fixed step per call, for deterministic offsets.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

func testTracer(opts Options) *Tracer {
	if opts.Now == nil {
		opts.Now = fakeClock(time.Unix(1_700_000_000, 0), time.Millisecond)
	}
	if opts.NewID == nil {
		n := 0
		var mu sync.Mutex
		opts.NewID = func() string {
			mu.Lock()
			defer mu.Unlock()
			n++
			return fmt.Sprintf("trace%04d", n)
		}
	}
	return New(opts)
}

// sumPhases asserts the reconciliation contract: phases tile [0, dur]
// contiguously and their durations sum to the trace duration exactly.
func sumPhases(t *testing.T, td *TraceData) {
	t.Helper()
	var sum int64
	prevEnd := int64(0)
	for i, ph := range td.Phases {
		if ph.StartUs != prevEnd {
			t.Errorf("phase %d (%s) starts at %d, previous ended at %d", i, ph.Name, ph.StartUs, prevEnd)
		}
		if ph.EndUs < ph.StartUs {
			t.Errorf("phase %d (%s) ends before it starts: [%d, %d]", i, ph.Name, ph.StartUs, ph.EndUs)
		}
		sum += ph.EndUs - ph.StartUs
		prevEnd = ph.EndUs
	}
	if len(td.Phases) > 0 && prevEnd != td.DurationUs {
		t.Errorf("last phase ends at %d, trace duration is %d", prevEnd, td.DurationUs)
	}
	if sum != td.DurationUs {
		t.Errorf("phase durations sum to %d, trace duration is %d", sum, td.DurationUs)
	}
}

func TestPhaseTiling(t *testing.T) {
	tr := testTracer(Options{}).Start("check")
	if tr.ID() == "" {
		t.Fatal("no trace ID")
	}
	p1 := tr.Phase("decode")
	p1.SetInt("bytes", 120)
	tr.Phase("validate")
	p3 := tr.Phase("flight")
	c := p3.Child("queue")
	c.End()
	chk := p3.Child("check")
	chk.Event("enumerated", Int("executions", 42), Str("pruned_pct", "61.0"))
	chk.End()
	tr.Phase("serialize")
	tr.SetStatus(200, "")
	td := tr.Finish()
	if td == nil {
		t.Fatal("Finish returned nil")
	}
	sumPhases(t, td)
	if td.Status != 200 {
		t.Fatalf("status = %d", td.Status)
	}
	if len(td.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(td.Phases))
	}
	fl := td.Phases[2]
	if len(fl.Children) != 2 {
		t.Fatalf("flight children = %d, want 2", len(fl.Children))
	}
	for _, c := range fl.Children {
		if c.StartUs < fl.StartUs || c.EndUs > td.DurationUs {
			t.Errorf("child %s [%d,%d] escapes trace [0,%d]", c.Name, c.StartUs, c.EndUs, td.DurationUs)
		}
	}
	if ev := fl.Children[1].Events; len(ev) != 1 || ev[0].Name != "enumerated" {
		t.Fatalf("events = %+v", ev)
	}
	if td.Truncated != 0 {
		t.Fatalf("truncated = %d, want 0", td.Truncated)
	}
	// Finish is idempotent and returns the same data.
	if td2 := tr.Finish(); td2 != td {
		t.Fatal("second Finish returned different data")
	}
}

func TestOpenSpansClampedAtFinish(t *testing.T) {
	tc := testTracer(Options{})
	tr := tc.Start("check")
	ph := tr.Phase("flight")
	ph.Child("check") // never ended
	td := tr.Finish()
	sumPhases(t, td)
	if td.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", td.Truncated)
	}
	c := td.Phases[0].Children[0]
	if c.EndUs != td.DurationUs {
		t.Fatalf("open child clamped to %d, want trace duration %d", c.EndUs, td.DurationUs)
	}
}

func TestLateSpansDropped(t *testing.T) {
	tc := testTracer(Options{})
	tr := tc.Start("check")
	ph := tr.Phase("flight")
	tr.Finish()
	if c := ph.Child("check"); c != nil {
		t.Fatal("Child on finished trace should return nil")
	}
	ph.Event("late")
	if got := tc.Stats().LateSpans; got != 2 {
		t.Fatalf("late spans = %d, want 2", got)
	}
	// Late drops must not corrupt the already-exported data.
	td, ok := tc.Find(tr.ID())
	if !ok {
		t.Fatal("trace not in ring")
	}
	if len(td.Phases[0].Children) != 0 || len(td.Phases[0].Events) != 0 {
		t.Fatal("late span or event leaked into finished trace")
	}
}

func TestNilSafety(t *testing.T) {
	var tc *Tracer
	tr := tc.Start("x")
	if tr != nil {
		t.Fatal("nil tracer must return nil trace")
	}
	tr.SetAttr("k", "v")
	tr.SetStatus(200, "")
	sp := tr.Phase("p")
	sp.SetInt("n", 1)
	sp.Event("e")
	c := sp.Child("c")
	c.End()
	if got := c.TraceID(); got != "" {
		t.Fatalf("TraceID on nil span = %q", got)
	}
	if td := tr.Finish(); td != nil {
		t.Fatal("Finish on nil trace must return nil")
	}
	if err := tc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestTailSampling(t *testing.T) {
	var out bytes.Buffer
	// No warmup: the keep decision is pure error-or-slow from trace one.
	tc := testTracer(Options{Out: &out, Tail: 0.9, TailWarmup: -1})
	// Slowest first: once the 500ms outlier anchors the tail quantile,
	// the 1ms bulk falls below it and gets sampled out.
	durs := []time.Duration{500 * time.Millisecond, time.Millisecond,
		time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond,
		time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	step := time.Duration(0)
	tc.opts.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now.Add(step)
	}
	for i, d := range durs {
		tr := tc.Start(fmt.Sprintf("t%d", i))
		mu.Lock()
		step += d
		mu.Unlock()
		tr.SetStatus(200, "")
		tr.Finish()
	}
	// One error trace: always kept regardless of duration.
	tr := tc.Start("err")
	tr.SetStatus(422, "deadline")
	tr.Finish()

	st := tc.Stats()
	if st.Kept == 0 || st.Sampled == 0 {
		t.Fatalf("sampler kept %d / dropped %d, want both nonzero", st.Kept, st.Sampled)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != int(st.Kept) {
		t.Fatalf("JSONL lines = %d, kept = %d", len(lines), st.Kept)
	}
	var sawErr, sawSlow bool
	for _, ln := range lines {
		var td TraceData
		if err := json.Unmarshal([]byte(ln), &td); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if td.Kind == "deadline" {
			sawErr = true
		}
		if td.DurationUs >= 500_000 {
			sawSlow = true
		}
	}
	if !sawErr {
		t.Error("error trace was sampled out")
	}
	if !sawSlow {
		t.Error("slowest trace was sampled out")
	}
}

func TestKeepAllByDefault(t *testing.T) {
	var out bytes.Buffer
	tc := testTracer(Options{Out: &out})
	for i := 0; i < 10; i++ {
		tc.Start("t").Finish()
	}
	if st := tc.Stats(); st.Sampled != 0 || st.Kept != 10 {
		t.Fatalf("default sampling dropped traces: %+v", st)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 10 {
		t.Fatalf("JSONL lines = %d, want 10", lines)
	}
}

func TestRing(t *testing.T) {
	tc := testTracer(Options{RingSize: 4})
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	step := time.Duration(0)
	tc.opts.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now.Add(step)
	}
	ids := make([]string, 10)
	for i := 0; i < 10; i++ {
		tr := tc.Start(fmt.Sprintf("t%d", i))
		ids[i] = tr.ID()
		mu.Lock()
		step += time.Duration(i+1) * time.Millisecond
		mu.Unlock()
		if i == 3 {
			tr.SetStatus(500, "internal")
		}
		tr.Finish()
	}
	snap := tc.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(snap.Recent))
	}
	if snap.Recent[0].TraceID != ids[9] {
		t.Fatalf("recent[0] = %s, want newest %s", snap.Recent[0].TraceID, ids[9])
	}
	if len(snap.Errors) != 1 || snap.Errors[0].TraceID != ids[3] {
		t.Fatalf("errors = %+v", snap.Errors)
	}
	if len(snap.Slowest) != 4 {
		t.Fatalf("slowest = %d, want 4", len(snap.Slowest))
	}
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].DurationUs > snap.Slowest[i-1].DurationUs {
			t.Fatal("slowest not sorted descending")
		}
	}
	if snap.Slowest[0].TraceID != ids[9] {
		t.Fatalf("slowest[0] = %s, want %s", snap.Slowest[0].TraceID, ids[9])
	}
	// The error trace fell out of recent but is still findable via the
	// error view.
	if _, ok := tc.Find(ids[3]); !ok {
		t.Fatal("error trace not findable")
	}
	if _, ok := tc.Find("nope"); ok {
		t.Fatal("found a trace that does not exist")
	}
	if snap.Stats.Finished != 10 {
		t.Fatalf("finished = %d", snap.Stats.Finished)
	}
}

func TestShutdownWaits(t *testing.T) {
	tc := testTracer(Options{})
	tr := tc.Start("slow")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := tc.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil with a trace still active")
	}
	tr.Finish()
	if err := tc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := tc.Active(); n != 0 {
		t.Fatalf("active = %d after shutdown", n)
	}
}

func TestConcurrentSpansAndSnapshots(t *testing.T) {
	tc := New(Options{RingSize: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := tc.Start("load")
				ph := tr.Phase("work")
				var inner sync.WaitGroup
				for w := 0; w < 3; w++ {
					inner.Add(1)
					go func(w int) {
						defer inner.Done()
						c := ph.Child("worker")
						c.Event("tick", Int("w", int64(w)))
						c.End()
					}(w)
				}
				inner.Wait()
				tr.Phase("serialize")
				tr.SetStatus(200, "")
				td := tr.Finish()
				sumPhases(t, td)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tc.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if st := tc.Stats(); st.Active != 0 || st.Finished != 400 {
		t.Fatalf("stats = %+v", st)
	}
}

// buildGoldenTrace assembles the fixed trace used by the Chrome and
// wide-event goldens.
func buildGoldenTrace(t *testing.T) *TraceData {
	t.Helper()
	tc := testTracer(Options{})
	tr := tc.Start("check")
	tr.SetAttr("client", "127.0.0.1")
	tr.SetAttr("program", "IRIW")
	tr.SetAttr("model", "DRFrlx")
	tr.Phase("decode")
	tr.Phase("validate")
	tr.Phase("cache")
	tr.Phase("gates")
	fl := tr.Phase("flight")
	fl.SetAttr("role", "leader")
	q := fl.Child("queue")
	q.End()
	chk := fl.Child("check")
	en := chk.Child("enumerate")
	en.Event("enumerated", Int("executions", 15), Int("transitions", 96), Str("pruned_pct", "61.3"))
	en.End()
	mg := chk.Child("merge")
	mg.SetInt("race_pairs", 2)
	mg.End()
	chk.End()
	tr.Phase("serialize")
	tr.SetStatus(200, "")
	return tr.Finish()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update to refresh)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestChromeGolden(t *testing.T) {
	td := buildGoldenTrace(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, td); err != nil {
		t.Fatal(err)
	}
	// Structural sanity before byte comparison: valid JSON with the
	// probe-format envelope.
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected envelope: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	checkGolden(t, "chrome_trace.json", buf.Bytes())

	// Byte stability: a second render of the same data is identical.
	var again bytes.Buffer
	if err := WriteChrome(&again, td); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome export is not byte-stable across renders")
	}
}

func TestWideEventGolden(t *testing.T) {
	td := buildGoldenTrace(t)
	line, err := WideEvent(td)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) {
		t.Fatal("wide event line is not newline-terminated")
	}
	var we map[string]any
	if err := json.Unmarshal(line, &we); err != nil {
		t.Fatalf("wide event is not valid JSON: %v", err)
	}
	for _, k := range []string{"ts", "trace_id", "name", "status", "duration_ms", "attrs", "phases_ms"} {
		if _, ok := we[k]; !ok {
			t.Errorf("wide event missing %q", k)
		}
	}
	checkGolden(t, "wide_event.json", line)
}

func TestJSONLRoundTrip(t *testing.T) {
	var out bytes.Buffer
	tc := testTracer(Options{Out: &out})
	tr := tc.Start("check")
	tr.Phase("decode")
	tr.Phase("serialize")
	tr.SetStatus(400, "bad_json")
	want := tr.Finish()
	var got TraceData
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != want.TraceID || got.Status != 400 || got.Kind != "bad_json" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	sumPhases(t, &got)
}
