// Command ratsserve is the long-running race-checking service: it
// accepts litmus programs as JSON over HTTP, checks them on the
// streaming memmodel pipeline, and returns verdicts, witnesses, and
// telemetry — hardened for overload (bounded queue + load shedding,
// per-client rate limits, per-request deadlines that cancel the search
// mid-enumeration) and for hostile input (size/thread/op caps, full
// validation before any enumeration).
//
// Usage:
//
//	ratsserve -addr :8080                 # serve /check + observability
//	ratsserve -workers 4 -queue 16        # admission control tuning
//	ratsserve -rate 50 -burst 100         # per-client token bucket
//	ratsserve -deadline 5s -max-deadline 30s
//	ratsserve -telemetry-out checks.jsonl # flush per-check JSONL on exit
//	ratsserve -traces-out traces.jsonl    # stream request traces (JSONL)
//	ratsserve -traces-tail 0.95           # ...tail-sampled: errors + slowest 5%
//	ratsserve -access-log access.jsonl    # one wide-event JSON line per request
//
// Endpoints: POST /check, GET /healthz, /readyz, plus the shared
// observability surface (/metrics, /checks, /tracez, /buildinfo,
// /debug/pprof/). Every response carries an X-Rats-Trace-Id header;
// /tracez?id=<id> shows that request's span tree, and
// /tracez?id=<id>&format=chrome exports it for Perfetto.
// On SIGINT/SIGTERM the service flips /readyz unready, finishes
// in-flight checks, flushes telemetry and traces, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
	"rats/internal/rtrace"
	"rats/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		workers    = flag.Int("workers", 0, "max concurrent checks (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "max requests waiting for a worker (0 = 4x workers)")
		rate       = flag.Float64("rate", 0, "per-client requests/sec token-bucket refill (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-client token-bucket burst (0 = rate+1)")
		deadline   = flag.Duration("deadline", 10*time.Second, "default per-check deadline when the request sends none")
		maxDl      = flag.Duration("max-deadline", time.Minute, "cap on client-requested deadlines")
		execLimit  = flag.Int("exec-limit", 0, "per-check execution budget (0 = checker default)")
		transLimit = flag.Int64("transition-limit", 0, "per-check transition budget (0 = server default)")
		maxThreads = flag.Int("max-threads", 0, "max threads per submitted program (0 = default 8)")
		maxOps     = flag.Int("max-ops", 0, "max total ops per submitted program (0 = default 64)")
		maxBody    = flag.Int64("max-body", 0, "max request body bytes (0 = default 256KiB)")
		cacheSize  = flag.Int("cache", 0, "verdict LRU capacity in entries (0 = default 1024, -1 disables)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight checks on shutdown")
		telOut     = flag.String("telemetry-out", "", "write per-check telemetry JSONL here on shutdown")
		tracesOut  = flag.String("traces-out", "", "stream request traces here as JSONL (one span tree per line)")
		tracesTail = flag.Float64("traces-tail", 0, "tail-sample the JSONL: keep errors plus traces at or above this duration quantile, e.g. 0.95 (0 = keep every trace)")
		accessLog  = flag.String("access-log", "", "write one wide-event JSON line per request here")
	)
	flag.Parse()

	var traceFile, accessFile *os.File
	topts := rtrace.Options{Tail: *tracesTail}
	if *tracesOut != "" {
		f, err := os.Create(*tracesOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsserve:", err)
			os.Exit(1)
		}
		traceFile = f
		topts.Out = f
	}
	tracer := rtrace.New(topts)
	if *accessLog != "" {
		f, err := os.Create(*accessLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsserve:", err)
			os.Exit(1)
		}
		accessFile = f
	}

	reg := telemetry.NewRegistry()
	sopts := serve.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		RatePerSec:      *rate,
		RateBurst:       *burst,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDl,
		ExecLimit:       *execLimit,
		TransitionLimit: *transLimit,
		MaxThreads:      *maxThreads,
		MaxOps:          *maxOps,
		MaxBodyBytes:    *maxBody,
		CacheSize:       *cacheSize,
		Registry:        reg,
		Tracer:          tracer,
	}
	if accessFile != nil {
		sopts.AccessLog = accessFile
	}
	svc := serve.New(sopts)

	srv := obs.NewServer()
	srv.SetRunInfo("service", "ratsserve")
	srv.SetChecks(reg)
	srv.SetTraces(tracer)
	srv.AddMetricsOM(svc.WriteMetricsTo)
	h := svc.Handler()
	srv.Handle("/check", h)
	srv.Handle("/healthz", h)
	srv.Handle("/readyz", h)

	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratsserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ratsserve: serving /check /healthz /readyz /metrics /checks /tracez on http://%s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "ratsserve: %s — draining (in-flight checks finish, new checks get 503)\n", got)

	// Drain order: flip unready and stop admitting enumerations, wait for
	// in-flight checks, then stop the HTTP listener (which itself waits
	// for in-flight handlers), then wait for straggler traces (a detached
	// singleflight can outlive its last waiter) and flush telemetry.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ratsserve: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ratsserve: shutdown: %v\n", err)
	}
	if err := tracer.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ratsserve: traces: %v\n", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ratsserve:", err)
		} else {
			fmt.Fprintf(os.Stderr, "ratsserve: traces flushed to %s\n", *tracesOut)
		}
	}
	if accessFile != nil {
		accessFile.Close()
	}
	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsserve:", err)
			os.Exit(1)
		}
		if err := telemetry.WriteRecords(f, reg.Records()); err != nil {
			fmt.Fprintln(os.Stderr, "ratsserve:", err)
			f.Close()
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ratsserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ratsserve: telemetry flushed to %s\n", *telOut)
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "ratsserve: exit — %d requests, %d checked, %d cache hits, %d shed, %d rate-limited, %d deadline/limit trips\n",
		st.Requests, st.Checked, st.CacheHits, st.Shed, st.RateLimited, st.Deadlines+st.Limits)
}
