package harness

import (
	"fmt"
	"strings"

	"rats/internal/probe"
	"rats/internal/sim/system"
	"rats/internal/workloads"
)

// StallRow is one configuration's aggregated stall attribution for a
// workload: total cycles lost per reason, summed over all warps.
type StallRow struct {
	Config string
	Cycles int64 // run length
	Totals [probe.NumStallReasons]int64
}

// StallSweep runs one workload under each named configuration with a
// stall-attribution sink attached, returning the per-config breakdown.
// It shows where each consistency model spends its waiting time — e.g.
// DRF0's consistency stalls melting away under DRFrlx while memory
// stalls stay put.
func StallSweep(entry workloads.Entry, scale workloads.Scale, cfgNames []string) ([]StallRow, error) {
	var rows []StallRow
	for _, name := range cfgNames {
		cfg, err := ConfigFor(name)
		if err != nil {
			return nil, err
		}
		sink := probe.NewStallSink()
		hub := probe.NewHub()
		hub.Attach(sink)
		sys := system.New(cfg)
		sys.AttachProbe(hub)
		if err := sys.Load(entry.Build(scale)); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", entry.Name, name, err)
		}
		res, err := sys.Run()
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", entry.Name, name, err)
		}
		if err := hub.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, StallRow{Config: name, Cycles: res.Stats.Cycles, Totals: sink.ReasonTotals()})
	}
	return rows, nil
}

// RenderStallSweep draws the sweep as a config × reason table.
func RenderStallSweep(workload string, rows []StallRow) string {
	reasons := []probe.StallReason{
		probe.StallIssue, probe.StallMemory, probe.StallBarrier,
		probe.StallStoreBufferFull, probe.StallConsistency,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stall attribution sweep: %s (summed warp-cycles per reason)\n", workload)
	fmt.Fprintf(&b, "  %-8s %10s", "config", "cycles")
	for _, r := range reasons {
		fmt.Fprintf(&b, " %18s", r)
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-8s %10d", row.Config, row.Cycles)
		for _, r := range reasons {
			fmt.Fprintf(&b, " %18d", row.Totals[r])
		}
		b.WriteString("\n")
	}
	return b.String()
}
