package rel

// This file retains the original []bool dense-matrix implementation of
// the relational algebra, verbatim in behaviour, as an internal
// reference: the differential property tests and the fuzz targets check
// every bitset kernel against it, and the benchmark suite measures the
// word-parallel speedup over it. It is not used by any analysis path.

// boolRel is the reference relation: a dense boolean matrix.
type boolRel struct {
	n int
	m []bool
}

func newBoolRel(n int) boolRel { return boolRel{n: n, m: make([]bool, n*n)} }

func boolIdentity(n int) boolRel {
	r := newBoolRel(n)
	for i := 0; i < n; i++ {
		r.Set(i, i)
	}
	return r
}

func boolFromPairs(n int, pairs [][2]int) boolRel {
	r := newBoolRel(n)
	for _, p := range pairs {
		r.Set(p[0], p[1])
	}
	return r
}

func boolCross(a, b []bool) boolRel {
	if len(a) != len(b) {
		panic("rel: Cross on sets of different sizes")
	}
	r := newBoolRel(len(a))
	for i, ai := range a {
		if !ai {
			continue
		}
		for j, bj := range b {
			if bj {
				r.Set(i, j)
			}
		}
	}
	return r
}

func (r boolRel) Size() int         { return r.n }
func (r boolRel) Set(i, j int)      { r.m[i*r.n+j] = true }
func (r boolRel) Clear(i, j int)    { r.m[i*r.n+j] = false }
func (r boolRel) Has(i, j int) bool { return r.m[i*r.n+j] }

func (r boolRel) Clone() boolRel {
	c := newBoolRel(r.n)
	copy(c.m, r.m)
	return c
}

func (r boolRel) Union(o boolRel) boolRel {
	c := r.Clone()
	for i, v := range o.m {
		if v {
			c.m[i] = true
		}
	}
	return c
}

func (r boolRel) Inter(o boolRel) boolRel {
	c := newBoolRel(r.n)
	for i := range c.m {
		c.m[i] = r.m[i] && o.m[i]
	}
	return c
}

func (r boolRel) Diff(o boolRel) boolRel {
	c := newBoolRel(r.n)
	for i := range c.m {
		c.m[i] = r.m[i] && !o.m[i]
	}
	return c
}

func (r boolRel) Compose(o boolRel) boolRel {
	c := newBoolRel(r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if !r.m[i*r.n+j] {
				continue
			}
			for k := 0; k < r.n; k++ {
				if o.m[j*r.n+k] {
					c.m[i*r.n+k] = true
				}
			}
		}
	}
	return c
}

func (r boolRel) Inverse() boolRel {
	c := newBoolRel(r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				c.Set(j, i)
			}
		}
	}
	return c
}

func (r boolRel) TransClosure() boolRel {
	c := r.Clone()
	n := c.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !c.m[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if c.m[k*n+j] {
					c.m[i*n+j] = true
				}
			}
		}
	}
	return c
}

func (r boolRel) ReflTransClosure() boolRel {
	return r.TransClosure().Union(boolIdentity(r.n))
}

func (r boolRel) Sym() boolRel { return r.Union(r.Inverse()) }

func (r boolRel) Empty() bool {
	for _, v := range r.m {
		if v {
			return false
		}
	}
	return true
}

func (r boolRel) Acyclic() bool {
	c := r.TransClosure()
	for i := 0; i < c.n; i++ {
		if c.Has(i, i) {
			return false
		}
	}
	return true
}

func (r boolRel) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func (r boolRel) Count() int {
	n := 0
	for _, v := range r.m {
		if v {
			n++
		}
	}
	return n
}
