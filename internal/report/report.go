// Package report renders the reproduction's tables and figures as ASCII:
// normalized execution-time and energy charts in the style of Figures 3
// and 4 (six configurations, normalized to GD0), speedup tables in the
// style of Figure 1, and the geometric-mean summary statistics Section 6
// quotes.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of positive values (1.0 for empty).
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 1
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Table is a simple named-rows / named-columns float table.
type Table struct {
	Title   string
	RowName string
	Cols    []string
	Rows    []string
	Cells   map[string]map[string]float64
}

// NewTable builds an empty table.
func NewTable(title, rowName string, cols []string) *Table {
	return &Table{Title: title, RowName: rowName, Cols: cols, Cells: map[string]map[string]float64{}}
}

// Set stores a cell, appending the row on first use.
func (t *Table) Set(row, col string, v float64) {
	if t.Cells[row] == nil {
		t.Cells[row] = map[string]float64{}
		t.Rows = append(t.Rows, row)
	}
	t.Cells[row][col] = v
}

// Get returns a cell value (0 if absent).
func (t *Table) Get(row, col string) float64 { return t.Cells[row][col] }

// Normalize divides every row by its value in the reference column.
func (t *Table) Normalize(refCol string) *Table {
	out := NewTable(t.Title+" (normalized to "+refCol+")", t.RowName, t.Cols)
	for _, r := range t.Rows {
		ref := t.Get(r, refCol)
		for _, c := range t.Cols {
			if ref != 0 {
				out.Set(r, c, t.Get(r, c)/ref)
			}
		}
	}
	return out
}

// ColGeomean returns the geometric mean down a column.
func (t *Table) ColGeomean(col string) float64 {
	var vals []float64
	for _, r := range t.Rows {
		if v := t.Get(r, col); v > 0 {
			vals = append(vals, v)
		}
	}
	return Geomean(vals)
}

// Render draws the table with the given cell format (e.g. "%8.3f").
func (t *Table) Render(format string, withGeomean bool) string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := 10
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, t.RowName)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", w+2, r)
		for _, c := range t.Cols {
			fmt.Fprintf(&b, format, t.Get(r, c))
		}
		b.WriteString("\n")
	}
	if withGeomean {
		fmt.Fprintf(&b, "%-*s", w+2, "geomean")
		for _, c := range t.Cols {
			fmt.Fprintf(&b, format, t.ColGeomean(c))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Bars renders a per-row ASCII bar chart of one column group, scaled so
// the longest bar is width characters.
func (t *Table) Bars(width int) string {
	var b strings.Builder
	max := 0.0
	for _, r := range t.Rows {
		for _, c := range t.Cols {
			if v := t.Get(r, c); v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		return ""
	}
	w := 10
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	for _, r := range t.Rows {
		for _, c := range t.Cols {
			v := t.Get(r, c)
			n := int(v / max * float64(width))
			fmt.Fprintf(&b, "%-*s %-5s %s %.3f\n", w+1, r, c, strings.Repeat("#", n), v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// StackedTable holds per-row, per-column component breakdowns (the
// energy figures).
type StackedTable struct {
	Title      string
	Components []string
	Cols       []string
	Rows       []string
	// Cells[row][col][component].
	Cells map[string]map[string]map[string]float64
}

// NewStackedTable builds an empty breakdown table.
func NewStackedTable(title string, components, cols []string) *StackedTable {
	return &StackedTable{
		Title: title, Components: components, Cols: cols,
		Cells: map[string]map[string]map[string]float64{},
	}
}

// Set stores one component value.
func (t *StackedTable) Set(row, col, component string, v float64) {
	if t.Cells[row] == nil {
		t.Cells[row] = map[string]map[string]float64{}
		t.Rows = append(t.Rows, row)
	}
	if t.Cells[row][col] == nil {
		t.Cells[row][col] = map[string]float64{}
	}
	t.Cells[row][col][component] = v
}

// Total returns the component sum of a cell.
func (t *StackedTable) Total(row, col string) float64 {
	s := 0.0
	for _, v := range t.Cells[row][col] {
		s += v
	}
	return s
}

// Render draws the breakdown normalized to refCol's total per row.
func (t *StackedTable) Render(refCol string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (per-component, normalized to %s total)\n", t.Title, refCol)
	header := fmt.Sprintf("%-12s %-6s", "workload", "config")
	for _, c := range t.Components {
		header += fmt.Sprintf("%10s", c)
	}
	header += fmt.Sprintf("%10s", "total")
	b.WriteString(header + "\n")
	for _, r := range t.Rows {
		ref := t.Total(r, refCol)
		if ref == 0 {
			continue
		}
		for _, c := range t.Cols {
			fmt.Fprintf(&b, "%-12s %-6s", r, c)
			for _, comp := range t.Components {
				fmt.Fprintf(&b, "%10.3f", t.Cells[r][c][comp]/ref)
			}
			fmt.Fprintf(&b, "%10.3f\n", t.Total(r, c)/ref)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// KV renders a sorted key/value block (for stats dumps).
func KV(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-40s %12.4f\n", k, m[k])
	}
	return b.String()
}
