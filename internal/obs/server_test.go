package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/obs"
	"rats/internal/probe"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// twoWarpTrace mirrors the probe package's golden workload: a small
// deterministic trace touching loads, atomics, and a barrier.
func twoWarpTrace() *trace.Trace {
	tr := trace.New("two-warp")
	w0 := tr.AddWarp(0)
	w0.Load(core.Data, 0x1000, 0x1040)
	w0.Atomic(core.Paired, core.OpInc, 0, 0x4000)
	w0.Compute(4)
	w0.Load(core.Data, 0x1000)
	w0.Barrier()
	w0.Atomic(core.Commutative, core.OpAdd, 2, 0x8000)
	w1 := tr.AddWarp(1)
	w1.Load(core.Data, 0x2000)
	w1.AtomicScoped(trace.ScopeLocal, core.Paired, core.OpInc, 0, 0x4100)
	w1.Barrier()
	w1.Atomic(core.Commutative, core.OpAdd, 3, 0x8000)
	return tr
}

// runServer executes the two-warp workload with a gauge and latency sink
// feeding a fully-populated observability server.
func runServer(t *testing.T) *obs.Server {
	t.Helper()
	gauge := &obs.StatsGauge{}
	lat := probe.NewLatencySink()
	hub := probe.NewHub()
	hub.Attach(gauge)
	hub.Attach(lat)
	hub.SetSampleInterval(100)

	sys := system.New(memsys.Default(memsys.ProtoDeNovo, core.DRF0))
	sys.AttachProbe(hub)
	if err := sys.Load(twoWarpTrace()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	srv := obs.NewServer()
	srv.SetRunInfo("workload", "two-warp")
	srv.SetRunInfo("config", "DD0")
	srv.SetGauge(gauge)
	srv.SetLatency(lat)
	prog := obs.NewProgress()
	prog.Done("two-warp", "DD0", res.Stats.Cycles)
	srv.SetProgress(prog)
	return srv
}

// TestMetricsGolden pins the exact Prometheus exposition for the
// deterministic two-warp run. Any drift in counters, label sets, or
// histogram bucketing shows up as a golden diff. Regenerate with
// `go test ./internal/obs -run Golden -update`.
func TestMetricsGolden(t *testing.T) {
	srv := runServer(t)
	var buf bytes.Buffer
	srv.WriteMetrics(&buf)

	for _, want := range []string{
		"rats_run_info{config=\"DD0\",workload=\"two-warp\"} 1",
		"rats_cycles ",
		"# TYPE rats_txn_latency_cycles histogram",
		"le=\"+Inf\"",
		"rats_txn_latency_cycles_count{op=\"atomic\",level=\"l1\"}",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	golden := filepath.Join("testdata", "metrics_two_warp.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics drifted from golden (%d vs %d bytes); run with -update and review the diff",
			buf.Len(), len(want))
	}
}

// TestServerEndpoints exercises the HTTP surface: /metrics serves the
// exposition with the Prometheus content type, /progress serves the
// sweep report as JSON, and pprof answers.
func TestServerEndpoints(t *testing.T) {
	srv := runServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	var direct bytes.Buffer
	srv.WriteMetrics(&direct)
	if body != direct.String() {
		t.Error("/metrics body differs from WriteMetrics output")
	}

	body, resp = get("/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/progress content type %q", ct)
	}
	var rep obs.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/progress is not valid JSON: %v", err)
	}
	if rep.Total != 1 || rep.Done != 1 {
		t.Errorf("progress report total=%d done=%d, want 1/1", rep.Total, rep.Done)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].State != obs.RunDone {
		t.Errorf("progress runs = %+v, want one done run", rep.Runs)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

// TestProgressLifecycle walks one run through every state and checks the
// counts and the preserved first-appearance order.
func TestProgressLifecycle(t *testing.T) {
	p := obs.NewProgress()
	p.Start("A", "GD0")
	p.Start("B", "GD0")
	p.Done("A", "GD0", 1234)
	p.Fail("B", "GD0", io.ErrUnexpectedEOF)
	p.Restored("C", "GD0", 99)

	rep := p.Snapshot()
	if rep.Total != 3 || rep.Done != 1 || rep.Failed != 1 || rep.Restored != 1 || rep.Running != 0 {
		t.Fatalf("counts total=%d done=%d failed=%d restored=%d running=%d",
			rep.Total, rep.Done, rep.Failed, rep.Restored, rep.Running)
	}
	if rep.Runs[0].Workload != "A" || rep.Runs[1].Workload != "B" || rep.Runs[2].Workload != "C" {
		t.Errorf("runs out of order: %+v", rep.Runs)
	}
	if rep.Runs[0].Cycles != 1234 {
		t.Errorf("done run cycles = %d, want 1234", rep.Runs[0].Cycles)
	}
	if rep.Runs[1].Err == "" {
		t.Error("failed run lost its error message")
	}
}

// TestServerExtensions checks the mount points the race-checking service
// uses: extra metrics sources appended to /metrics, handlers mounted on
// the shared mux, and the body bound applied to every request.
func TestServerExtensions(t *testing.T) {
	s := obs.NewServer()
	s.AddMetricsFunc(func(w io.Writer) {
		io.WriteString(w, "rats_extra_metric 42\n")
	})
	s.Handle("/echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		w.Write(body)
	}))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "rats_extra_metric 42") {
		t.Errorf("/metrics missing extra source output:\n%s", b)
	}

	resp, err = http.Post(srv.URL+"/echo", "text/plain", strings.NewReader("ping"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ping" {
		t.Errorf("mounted handler: got %q, want %q", b, "ping")
	}

	// A body over the bound must be rejected, not buffered.
	huge := strings.NewReader(strings.Repeat("x", 2<<20))
	resp, err = http.Post(srv.URL+"/echo", "text/plain", huge)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: got status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}
