// Package rtrace is the service's request-lifecycle tracing layer: a
// lightweight always-on tracer that gives every request a random trace
// ID and a span tree whose top-level phases tile the request duration
// exactly — the same sum-to-duration-by-construction contract the probe
// layer's gap-attribution spans give simulator transactions, applied to
// the HTTP pipeline (decode, validate, cache, gates, flight, witness,
// serialize).
//
// The disabled mode is a nil *Tracer: Start returns a nil *Trace, every
// Trace and Span method is safe on a nil receiver and folds into one
// nil-check branch, so instrumented call sites cost nothing when nobody
// is tracing (the telemetry.Check idiom).
//
// Reconciliation by construction: Trace.Phase closes the current
// top-level phase at the moment it opens the next, the first phase
// starts at offset zero, and Finish closes the last phase at the trace's
// end — so the phases are contiguous, gap-free, and their durations sum
// to the request duration exactly, always. Free-form child spans
// (Span.Child) nest under phases for concurrent work — enumeration
// workers, analysis workers — and are clamped to the trace duration if
// still open at Finish.
//
// A finished trace is immutable. Spans recorded against a finished trace
// (a detached singleflight call outliving the request that led it) are
// dropped and counted, never raced.
package rtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"

	"rats/internal/hist"
)

// Attr is one key/value annotation on a trace, span, or event.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{K: k, V: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr {
	return Attr{K: k, V: strconv.FormatInt(v, 10)}
}

// EventData is one point-in-time annotation within a span.
type EventData struct {
	Name  string `json:"name"`
	AtUs  int64  `json:"at_us"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// SpanData is one finished span of a trace: offsets are microseconds
// from the trace start.
type SpanData struct {
	Name     string      `json:"name"`
	StartUs  int64       `json:"start_us"`
	EndUs    int64       `json:"end_us"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Events   []EventData `json:"events,omitempty"`
	Children []SpanData  `json:"children,omitempty"`
}

// TraceData is one finished request trace — the JSONL export record,
// the /tracez payload, and the Chrome-export source. It is immutable
// once built, so snapshots share it freely.
type TraceData struct {
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	// Start is the wall-clock start in RFC3339Nano UTC; StartUnixUs is
	// the same instant in integer microseconds for timeline math.
	Start       string `json:"start"`
	StartUnixUs int64  `json:"start_unix_us"`
	DurationUs  int64  `json:"duration_us"`
	Status      int    `json:"status"`
	Kind        string `json:"kind,omitempty"`
	// Truncated counts spans still open at Finish (clamped to the trace
	// end) plus spans dropped because they arrived after Finish.
	Truncated int        `json:"truncated_spans,omitempty"`
	Attrs     []Attr     `json:"attrs,omitempty"`
	Phases    []SpanData `json:"phases"`
}

// Options configures a Tracer. The zero value traces every request into
// a default-sized ring with no JSONL output.
type Options struct {
	// Now overrides the clock (deterministic tests and goldens).
	Now func() time.Time
	// NewID overrides trace-ID generation; the default is 8 random bytes
	// in hex.
	NewID func() string
	// RingSize bounds each of the /tracez ring's three views (recent,
	// errors, slowest); <= 0 means 64.
	RingSize int
	// Out, when non-nil, receives one JSON line per kept trace. Writes
	// are serialized by the tracer.
	Out io.Writer
	// Tail enables tail sampling of the JSONL output: 0 keeps every
	// trace; a quantile in (0, 1) — e.g. 0.999 — keeps every error trace
	// (status >= 400 or kind set) plus traces at or above that duration
	// quantile of everything seen so far, dropping the boring bulk. The
	// ring always sees every trace regardless.
	Tail float64
	// TailWarmup is how many initial traces are always kept while the
	// duration histogram fills; <= 0 means 32, negative disables.
	TailWarmup int
}

// Stats counts the tracer's lifetime activity.
type Stats struct {
	Started   int64 `json:"started"`
	Finished  int64 `json:"finished"`
	Active    int64 `json:"active"`
	Kept      int64 `json:"kept"`
	Sampled   int64 `json:"sampled_out"`
	LateSpans int64 `json:"late_spans"`
}

// Tracer mints and collects request traces. A nil *Tracer is the
// disabled mode: Start returns nil and everything downstream folds away.
type Tracer struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	active   int64
	started  int64
	finished int64
	kept     int64
	sampled  int64
	late     int64
	durs     hist.Histogram // finished-trace durations, microseconds
	ring     *ring
}

// New builds a Tracer.
func New(opts Options) *Tracer {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.NewID == nil {
		opts.NewID = randomID
	}
	size := opts.RingSize
	if size <= 0 {
		size = 64
	}
	if opts.TailWarmup == 0 {
		opts.TailWarmup = 32
	}
	t := &Tracer{opts: opts, ring: newRing(size)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a fixed ID keeps the
		// service serving rather than panicking in the request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Start begins a trace (nil on a nil tracer).
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{t: t, id: t.opts.NewID(), name: name, start: t.opts.Now()}
	t.mu.Lock()
	t.started++
	t.active++
	t.mu.Unlock()
	return tr
}

// finish files a completed trace: ring, sampling decision, JSONL.
func (t *Tracer) finish(td *TraceData) {
	isErr := td.Status >= 400 || td.Kind != ""
	t.mu.Lock()
	t.finished++
	t.durs.Record(td.DurationUs)
	keep := t.opts.Tail <= 0 || isErr ||
		(t.opts.TailWarmup > 0 && t.finished <= int64(t.opts.TailWarmup)) ||
		td.DurationUs >= t.durs.Quantile(t.opts.Tail)
	t.ring.add(td, isErr)
	if t.opts.Out != nil {
		if keep {
			if b, err := json.Marshal(td); err == nil {
				t.opts.Out.Write(append(b, '\n'))
			}
			t.kept++
		} else {
			t.sampled++
		}
	} else if keep {
		t.kept++
	} else {
		t.sampled++
	}
	t.active--
	t.cond.Broadcast()
	t.mu.Unlock()
}

// noteLate counts a span or event recorded against a finished trace.
func (t *Tracer) noteLate() {
	t.mu.Lock()
	t.late++
	t.mu.Unlock()
}

// Stats snapshots the activity counters (zero value on nil).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Started: t.started, Finished: t.finished, Active: t.active,
		Kept: t.kept, Sampled: t.sampled, LateSpans: t.late,
	}
}

// Active returns the number of started-but-unfinished traces.
func (t *Tracer) Active() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Snapshot returns the ring's current view plus the activity counters.
func (t *Tracer) Snapshot() RingSnapshot {
	if t == nil {
		return RingSnapshot{}
	}
	snap := t.ring.snapshot()
	snap.Stats = t.Stats()
	return snap
}

// Find returns a ring-resident trace by ID.
func (t *Tracer) Find(id string) (*TraceData, bool) {
	if t == nil {
		return nil, false
	}
	return t.ring.find(id)
}

// Shutdown waits until every started trace has finished (or ctx ends).
// It does not stop new traces from starting; the caller drains its
// request sources first.
func (t *Tracer) Shutdown(ctx context.Context) error {
	if t == nil {
		return nil
	}
	done := make(chan struct{})
	go func() {
		t.mu.Lock()
		for t.active > 0 {
			t.cond.Wait()
		}
		t.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Unblock the waiter goroutine eventually; it exits on the next
		// Broadcast from any finishing trace.
		return errShutdownTimeout
	}
}

// errShutdownTimeout reports traces still active when Shutdown's context
// ended.
var errShutdownTimeout = &shutdownTimeoutError{}

type shutdownTimeoutError struct{}

func (*shutdownTimeoutError) Error() string {
	return "rtrace: traces still active at shutdown deadline"
}

// Trace is one live request trace. All methods are nil-safe and
// goroutine-safe: the request handler advances phases while detached
// workers add child spans.
type Trace struct {
	t     *Tracer
	id    string
	name  string
	start time.Time

	mu     sync.Mutex
	done   bool
	status int
	kind   string
	attrs  []Attr
	phases []*Span
	data   *TraceData
}

// ID returns the trace ID ("" on nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// offUs is microseconds since the trace start, clamped non-negative.
// Callers hold tr.mu.
func (tr *Trace) offUs() int64 {
	us := tr.t.opts.Now().Sub(tr.start).Microseconds()
	if us < 0 {
		us = 0
	}
	return us
}

// SetAttr annotates the trace (last write per key wins at render time;
// attrs append in call order).
func (tr *Trace) SetAttr(k, v string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if !tr.done {
		tr.attrs = append(tr.attrs, Attr{K: k, V: v})
	}
	tr.mu.Unlock()
}

// SetInt annotates the trace with an integer attribute.
func (tr *Trace) SetInt(k string, v int64) { tr.SetAttr(k, strconv.FormatInt(v, 10)) }

// SetStatus records the response status and error kind Finish will file.
func (tr *Trace) SetStatus(status int, kind string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if !tr.done {
		tr.status = status
		tr.kind = kind
	}
	tr.mu.Unlock()
}

// Phase closes the current top-level phase and opens the next, returning
// its span. Phases tile the trace by construction: the first starts at
// offset zero, each subsequent one starts exactly where its predecessor
// ends, and Finish closes the last at the trace's total duration — so
// child-phase durations always sum to the request duration.
func (tr *Trace) Phase(name string) *Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		tr.t.noteLate()
		return nil
	}
	start := int64(0)
	if n := len(tr.phases); n > 0 {
		start = tr.offUs()
		if prev := tr.phases[n-1]; prev.endUs < 0 {
			prev.endUs = start
		} else if prev.endUs > start {
			// A clock went backwards between phases; keep the tiling.
			start = prev.endUs
		}
	}
	sp := &Span{tr: tr, name: name, startUs: start, endUs: -1}
	tr.phases = append(tr.phases, sp)
	return sp
}

// Finish closes the trace: the open tail phase ends at the trace
// duration, still-open child spans are clamped and counted as truncated,
// and the immutable TraceData is filed with the tracer (ring, sampler,
// JSONL) and returned. Only the first Finish takes effect; later calls
// return the same data.
func (tr *Trace) Finish() *TraceData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	if tr.done {
		d := tr.data
		tr.mu.Unlock()
		return d
	}
	tr.done = true
	dur := tr.offUs()
	truncated := 0
	if n := len(tr.phases); n > 0 {
		if last := tr.phases[n-1]; last.endUs < 0 {
			last.endUs = dur
		} else if last.endUs != dur {
			// The final phase ended early (End called explicitly): extend
			// it so the tiling covers the full duration.
			last.endUs = dur
		}
	}
	td := &TraceData{
		TraceID:     tr.id,
		Name:        tr.name,
		Start:       tr.start.UTC().Format(time.RFC3339Nano),
		StartUnixUs: tr.start.UnixMicro(),
		DurationUs:  dur,
		Status:      tr.status,
		Kind:        tr.kind,
		Attrs:       tr.attrs,
	}
	td.Phases = make([]SpanData, len(tr.phases))
	for i, sp := range tr.phases {
		td.Phases[i] = sp.freeze(dur, &truncated)
	}
	td.Truncated = truncated
	tr.data = td
	tr.mu.Unlock()
	tr.t.finish(td)
	return td
}

// Span is one live span. Nil-safe; all mutation locks the owning trace.
type Span struct {
	tr       *Trace
	name     string
	startUs  int64
	endUs    int64 // -1 while open
	attrs    []Attr
	events   []EventData
	children []*Span
}

// freeze converts the span tree to immutable data, clamping open spans
// to the trace duration. Caller holds tr.mu.
func (s *Span) freeze(dur int64, truncated *int) SpanData {
	end := s.endUs
	if end < 0 {
		end = dur
		*truncated++
	}
	d := SpanData{
		Name: s.name, StartUs: s.startUs, EndUs: end,
		Attrs: s.attrs, Events: s.events,
	}
	if len(s.children) > 0 {
		d.Children = make([]SpanData, len(s.children))
		for i, c := range s.children {
			d.Children[i] = c.freeze(dur, truncated)
		}
	}
	return d
}

// TraceID returns the owning trace's ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Child opens a nested span. On a finished trace the span is dropped
// (counted as late) and nil is returned — detached work outliving its
// request records nothing rather than racing the export.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		tr.t.noteLate()
		return nil
	}
	c := &Span{tr: tr, name: name, startUs: tr.offUs(), endUs: -1}
	s.children = append(s.children, c)
	return c
}

// End closes the span at the current offset (idempotent).
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if !tr.done && s.endUs < 0 {
		s.endUs = tr.offUs()
		if s.endUs < s.startUs {
			s.endUs = s.startUs
		}
	}
	tr.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if !tr.done {
		s.attrs = append(s.attrs, Attr{K: k, V: v})
	}
	tr.mu.Unlock()
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(k string, v int64) { s.SetAttr(k, strconv.FormatInt(v, 10)) }

// Event records a point-in-time annotation on the span. On a finished
// trace the event is dropped and counted as late.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		tr.t.noteLate()
		return
	}
	s.events = append(s.events, EventData{Name: name, AtUs: tr.offUs(), Attrs: attrs})
	tr.mu.Unlock()
}
