package trace

import (
	"bytes"
	"strings"
	"testing"

	"rats/internal/core"
)

func sampleTrace() *Trace {
	tr := New("sample")
	tr.Init[0x4000] = 7
	w := tr.AddWarp(3)
	w.Compute(10)
	w.Load(core.Data, 0x1000, 0x1040)
	w.Join()
	w.Store(core.Data, 0x2000)
	w.Atomic(core.Commutative, core.OpAdd, 2, 0x3000, 0x3004)
	w.AtomicScoped(ScopeLocal, core.Commutative, core.OpAdd, 3, 0x3040)
	w.AtomicLanes(core.Quantum, core.OpAdd, []uint64{0x5000, 0x5004}, []int64{1, 9})
	w.ScratchAccess(ScratchStore, 1)
	w.Barrier()
	cpu := tr.AddCPUThread()
	cpu.AtomicStore(core.NonOrdering, 0x6000, 1)
	return tr
}

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Error("name lost")
	}
	if back.Init[0x4000] != 7 {
		t.Error("init lost")
	}
	if len(back.Warps) != len(orig.Warps) {
		t.Fatalf("warp count %d", len(back.Warps))
	}
	for wi := range orig.Warps {
		ow, bw := orig.Warps[wi], back.Warps[wi]
		if ow.CU != bw.CU || ow.IsCPU != bw.IsCPU || len(ow.Ops) != len(bw.Ops) {
			t.Fatalf("warp %d shape differs", wi)
		}
		for oi := range ow.Ops {
			oo, bo := ow.Ops[oi], bw.Ops[oi]
			if oo.Kind != bo.Kind || oo.Class != bo.Class || oo.AOp != bo.AOp ||
				oo.Scope != bo.Scope ||
				oo.Cycles != bo.Cycles || oo.Operand != bo.Operand ||
				len(oo.Addrs) != len(bo.Addrs) || len(oo.Operands) != len(bo.Operands) {
				t.Fatalf("warp %d op %d differs: %+v vs %+v", wi, oi, oo, bo)
			}
		}
	}
}

func TestJSONHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"commutative"`, `"atomic"`, `"barrier"`, `"cpu": true`, `"16384"`, `"scope": "local"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, tc := range []struct {
		src, want string
	}{
		{`{`, "trace:"},
		{`{"warps":[{"ops":[{"kind":"bogus"}]}]}`, "unknown kind"},
		{`{"warps":[{"ops":[{"kind":"load","class":"bogus","aop":"load","addrs":[1]}]}]}`, "unknown access class"},
		{`{"warps":[{"ops":[{"kind":"load","class":"data","aop":"bogus","addrs":[1]}]}]}`, "unknown atomic op"},
		{`{"warps":[{"ops":[{"kind":"load","class":"data","aop":"load"}]}]}`, "without addresses"},
		{`{"init":{"xyz":1}}`, "bad init address"},
		{`{"warps":[{"ops":[{"kind":"atomic","class":"data","aop":"add","addrs":[1,2],"operands":[1]}]}]}`, "length mismatch"},
		{`{"warps":[{"ops":[{"kind":"atomic","class":"data","aop":"add","addrs":[1],"scope":"cluster"}]}]}`, "unknown scope"},
	} {
		if _, err := DecodeJSON(strings.NewReader(tc.src)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("DecodeJSON(%q) err=%v, want containing %q", tc.src, err, tc.want)
		}
	}
}
