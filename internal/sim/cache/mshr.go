package cache

import "rats/internal/probe"

// Waiter is one request parked on an MSHR entry: either a transaction
// (Txn holds an opaque pointer supplied by the controller — boxing a
// pointer allocates nothing) or, when Txn is nil, a store-buffer entry
// awaiting ownership. The concrete union avoids boxing the by-value
// SBEntry through `any` on every coalesce.
type Waiter struct {
	Txn   any
	Store SBEntry
}

// MSHR is a miss-status holding register file keyed by line address.
// Multiple requests to the same line coalesce into one entry — the
// mechanism that lets DeNovo's L1 absorb bursts of overlapped atomics to
// a hot address with a single ownership request (Section 5 of the paper).
// Like hardware MSHRs, each entry holds a bounded number of coalescing
// targets.
type MSHR struct {
	capacity int
	targets  int
	entries  map[uint64]*MSHREntry
	// free recycles released entries (and their waiter backing arrays);
	// steady-state miss handling allocates nothing.
	free []*MSHREntry

	// probe, when non-nil, receives alloc/coalesce events attributed to
	// node (the owning L1).
	probe *probe.Hub
	node  int
}

// MSHREntry tracks one outstanding line request.
type MSHREntry struct {
	LineAddr uint64
	// Waiters are the requests parked on the entry, drained when the
	// response arrives.
	Waiters []Waiter
	// WantOwnership marks the entry as an ownership (store/atomic) miss
	// rather than a read miss.
	WantOwnership bool
}

// NewMSHR builds an MSHR file with the given entry capacity and
// per-entry target count.
func NewMSHR(capacity, targets int) *MSHR {
	return &MSHR{capacity: capacity, targets: targets, entries: make(map[uint64]*MSHREntry)}
}

// AttachProbe routes alloc/coalesce events to the hub, attributed to the
// owning L1's node.
func (m *MSHR) AttachProbe(h *probe.Hub, node int) {
	m.probe = h
	m.node = node
}

// CanCoalesce reports whether the entry has a free target slot.
func (m *MSHR) CanCoalesce(e *MSHREntry) bool { return len(e.Waiters) < m.targets }

// Coalesce parks a request on an existing entry, attributed to the
// joining transaction (txn, 0 when none). The caller must have checked
// CanCoalesce.
func (m *MSHR) Coalesce(e *MSHREntry, w Waiter, txn int64) {
	e.Waiters = append(e.Waiters, w)
	if h := m.probe; h != nil {
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: m.node, Warp: -1,
			Kind: probe.MSHRCoalesce, Txn: txn, Addr: e.LineAddr, Arg: int64(len(e.Waiters))})
	}
}

// Lookup returns the entry for a line, or nil.
func (m *MSHR) Lookup(lineAddr uint64) *MSHREntry { return m.entries[lineAddr] }

// Full reports whether a new entry cannot be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Allocate creates an entry for the line, attributed to the allocating
// transaction (txn, 0 when none). The caller must have checked Full and
// Lookup.
func (m *MSHR) Allocate(lineAddr uint64, wantOwnership bool, txn int64) *MSHREntry {
	if m.Full() {
		panic("cache: MSHR allocate when full")
	}
	if m.entries[lineAddr] != nil {
		panic("cache: MSHR double allocate")
	}
	var e *MSHREntry
	if n := len(m.free); n > 0 {
		e = m.free[n-1]
		m.free = m.free[:n-1]
		e.LineAddr = lineAddr
		e.WantOwnership = wantOwnership
	} else {
		e = &MSHREntry{LineAddr: lineAddr, WantOwnership: wantOwnership}
	}
	m.entries[lineAddr] = e
	if h := m.probe; h != nil {
		own := int64(0)
		if wantOwnership {
			own = 1
		}
		h.Emit(probe.Event{Cycle: h.Now(), Comp: probe.CompL1, Node: m.node, Warp: -1,
			Kind: probe.MSHRAlloc, Txn: txn, Addr: lineAddr, Arg: own})
	}
	return e
}

// Release removes the entry, appends its waiters to buf (use a reusable
// scratch sliced to zero length), and recycles the entry. The returned
// slice aliases buf's backing array, not the entry's.
func (m *MSHR) Release(lineAddr uint64, buf []Waiter) []Waiter {
	e := m.entries[lineAddr]
	if e == nil {
		panic("cache: MSHR release of absent entry")
	}
	delete(m.entries, lineAddr)
	buf = append(buf, e.Waiters...)
	for i := range e.Waiters {
		e.Waiters[i] = Waiter{}
	}
	e.Waiters = e.Waiters[:0]
	m.free = append(m.free, e)
	return buf
}

// Outstanding returns the number of live entries.
func (m *MSHR) Outstanding() int { return len(m.entries) }
