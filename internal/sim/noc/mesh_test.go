package noc

import (
	"testing"
	"testing/quick"

	"rats/internal/stats"
)

func newTestMesh(hop int64) (*Mesh, *stats.Stats, *[]Message) {
	st := &stats.Stats{}
	m := NewMesh(4, 4, hop, st)
	var delivered []Message
	for n := 0; n < m.Nodes(); n++ {
		m.SetReceiver(n, func(msg Message) { delivered = append(delivered, msg) })
	}
	return m, st, &delivered
}

func TestRouteXY(t *testing.T) {
	m, _, _ := newTestMesh(2)
	// Node layout: node = y*4 + x.
	path := m.Route(0, 15) // (0,0) -> (3,3)
	want := []int{1, 2, 3, 7, 11, 15}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	if len(m.Route(5, 5)) != 0 {
		t.Error("self route should be empty")
	}
}

func TestHops(t *testing.T) {
	m, _, _ := newTestMesh(2)
	for _, tc := range []struct{ a, b, want int }{
		{0, 15, 6}, {0, 0, 0}, {0, 3, 3}, {3, 12, 6}, {5, 6, 1},
	} {
		if got := m.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDeliveryLatency(t *testing.T) {
	m, _, delivered := newTestMesh(2)
	m.Send(0, Message{Src: 0, Dst: 15, Flits: 1, Payload: Payload{Txn: 1}})
	// 6 hops x 2 cycles = arrival at 12.
	for c := int64(0); c < 12; c++ {
		m.Tick(c)
		if len(*delivered) != 0 {
			t.Fatalf("delivered early at cycle %d", c)
		}
	}
	m.Tick(12)
	if len(*delivered) != 1 {
		t.Fatal("not delivered at cycle 12")
	}
}

func TestLocalDelivery(t *testing.T) {
	m, _, delivered := newTestMesh(2)
	m.Send(0, Message{Src: 7, Dst: 7, Flits: 1, Payload: Payload{Txn: 1}})
	m.Tick(2)
	if len(*delivered) != 1 {
		t.Fatal("local message not delivered after router traversal")
	}
}

func TestLinkContention(t *testing.T) {
	m, _, delivered := newTestMesh(1)
	// Two 5-flit messages over the same single link (0 -> 1): the second
	// serializes behind the first.
	m.Send(0, Message{Src: 0, Dst: 1, Flits: 5, Payload: Payload{Txn: 1}})
	m.Send(0, Message{Src: 0, Dst: 1, Flits: 5, Payload: Payload{Txn: 2}})
	m.Tick(1)
	if len(*delivered) != 1 {
		t.Fatalf("first message should arrive at hop latency; got %d", len(*delivered))
	}
	m.Tick(5) // second departs at 5 (after 5 flits), arrives 6
	if len(*delivered) != 1 {
		t.Fatal("second message arrived too early")
	}
	m.Tick(6)
	if len(*delivered) != 2 {
		t.Fatal("second message should have arrived by cycle 6")
	}
}

func TestFlitHopAccounting(t *testing.T) {
	m, st, _ := newTestMesh(2)
	m.Send(0, Message{Src: 0, Dst: 3, Flits: 5, Payload: Payload{Txn: 1}})
	if st.NoCFlitHops != 15 { // 3 hops x 5 flits
		t.Errorf("flit-hops = %d, want 15", st.NoCFlitHops)
	}
	if st.NoCMessages != 1 {
		t.Errorf("messages = %d, want 1", st.NoCMessages)
	}
}

func TestFIFOPerArrivalCycle(t *testing.T) {
	m, _, delivered := newTestMesh(1)
	// Same-cycle arrivals must deliver in send order (deterministic).
	m.Send(0, Message{Src: 4, Dst: 5, Flits: 1, Payload: Payload{Txn: 1}})
	m.Send(0, Message{Src: 6, Dst: 5, Flits: 1, Payload: Payload{Txn: 2}})
	m.Tick(10)
	if len(*delivered) != 2 {
		t.Fatal("both should arrive")
	}
	if (*delivered)[0].Payload.Txn != 1 || (*delivered)[1].Payload.Txn != 2 {
		t.Error("delivery order not FIFO by send sequence")
	}
}

func TestPendingAndNextArrival(t *testing.T) {
	m, _, _ := newTestMesh(2)
	if m.Pending() || m.NextArrival() != -1 {
		t.Fatal("fresh mesh should be idle")
	}
	m.Send(0, Message{Src: 0, Dst: 1, Flits: 1})
	if !m.Pending() || m.NextArrival() != 2 {
		t.Fatalf("pending=%v nextArrival=%d", m.Pending(), m.NextArrival())
	}
	m.Tick(2)
	if m.Pending() {
		t.Fatal("should be idle after delivery")
	}
}

// TestDeliveryIsComplete: every sent message is delivered exactly once,
// and never before Manhattan-distance x hop latency.
func TestDeliveryIsComplete(t *testing.T) {
	f := func(seed int64) bool {
		m, _, _ := newTestMesh(2)
		type rec struct {
			sent    int64
			arrived int64
			src     int
			dst     int
		}
		var recs []rec
		count := 0
		for n := 0; n < m.Nodes(); n++ {
			m.SetReceiver(n, func(msg Message) {
				count++
				i := int(msg.Payload.Txn)
				recs[i].arrived = 1
			})
		}
		rnd := seed
		next := func(n int) int {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			v := int((rnd >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		const N = 50
		for i := 0; i < N; i++ {
			src, dst := next(16), next(16)
			recs = append(recs, rec{src: src, dst: dst})
			m.Send(int64(i), Message{Src: src, Dst: dst, Flits: 1 + next(5), Payload: Payload{Txn: int64(i)}})
		}
		for c := int64(0); c <= 100000 && m.Pending(); c++ {
			m.Tick(c)
		}
		if count != N {
			return false
		}
		for _, r := range recs {
			if r.arrived == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteOutOfRangePanics(t *testing.T) {
	m, _, _ := newTestMesh(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Route(0, 99)
}
