package cache

// MSHR is a miss-status holding register file keyed by line address.
// Multiple requests to the same line coalesce into one entry — the
// mechanism that lets DeNovo's L1 absorb bursts of overlapped atomics to
// a hot address with a single ownership request (Section 5 of the paper).
// Like hardware MSHRs, each entry holds a bounded number of coalescing
// targets.
type MSHR struct {
	capacity int
	targets  int
	entries  map[uint64]*MSHREntry
}

// MSHREntry tracks one outstanding line request.
type MSHREntry struct {
	LineAddr uint64
	// Waiters are opaque requests parked on the entry, drained when the
	// response arrives.
	Waiters []any
	// WantOwnership marks the entry as an ownership (store/atomic) miss
	// rather than a read miss.
	WantOwnership bool
}

// NewMSHR builds an MSHR file with the given entry capacity and
// per-entry target count.
func NewMSHR(capacity, targets int) *MSHR {
	return &MSHR{capacity: capacity, targets: targets, entries: make(map[uint64]*MSHREntry)}
}

// CanCoalesce reports whether the entry has a free target slot.
func (m *MSHR) CanCoalesce(e *MSHREntry) bool { return len(e.Waiters) < m.targets }

// Lookup returns the entry for a line, or nil.
func (m *MSHR) Lookup(lineAddr uint64) *MSHREntry { return m.entries[lineAddr] }

// Full reports whether a new entry cannot be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Allocate creates an entry for the line. The caller must have checked
// Full and Lookup.
func (m *MSHR) Allocate(lineAddr uint64, wantOwnership bool) *MSHREntry {
	if m.Full() {
		panic("cache: MSHR allocate when full")
	}
	if m.entries[lineAddr] != nil {
		panic("cache: MSHR double allocate")
	}
	e := &MSHREntry{LineAddr: lineAddr, WantOwnership: wantOwnership}
	m.entries[lineAddr] = e
	return e
}

// Release removes the entry and returns its waiters.
func (m *MSHR) Release(lineAddr uint64) []any {
	e := m.entries[lineAddr]
	if e == nil {
		panic("cache: MSHR release of absent entry")
	}
	delete(m.entries, lineAddr)
	return e.Waiters
}

// Outstanding returns the number of live entries.
func (m *MSHR) Outstanding() int { return len(m.entries) }
