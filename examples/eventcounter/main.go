// Event counter end to end: verify the Listing 2 idiom with the litmus
// engine (semantics), then measure the same idiom as a workload on the
// simulated machine (performance), comparing commutative atomics against
// SC atomics under both coherence protocols.
//
//	go run ./examples/eventcounter
package main

import (
	"fmt"
	"log"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/workloads"
)

func main() {
	// Semantics: the histogram-style event counter is DRFrlx-legal; the
	// variant that observes an increment's return value is not.
	fmt.Println("-- semantics (litmus engine)")
	for _, p := range []*litmus.Program{
		litmus.EventCounter(2, 2),
		litmus.EventCounterObserved(),
		litmus.EventCounterNonCommutative(),
	} {
		v, err := memmodel.CheckProgram(p, core.DRFrlx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  ", v.Summary())
	}

	// Performance: the HG microbenchmark is the contended event counter.
	// Under DRF0 every increment is an SC atomic (invalidate + flush +
	// serialize); under DRFrlx the commutative increments overlap.
	fmt.Println("\n-- performance (timing simulator, HG microbenchmark)")
	p := workloads.DefaultHist(workloads.Test)
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		var base int64
		for _, m := range core.Models() {
			res, err := system.RunTrace(memsys.Default(proto, m), workloads.HistGlobal(p))
			if err != nil {
				log.Fatal(err)
			}
			if m == core.DRF0 {
				base = res.Stats.Cycles
			}
			fmt.Printf("  %-6s %-6s  %8d cycles (%.2fx vs DRF0)  invalidations=%d flushes=%d\n",
				proto, m, res.Stats.Cycles, float64(base)/float64(res.Stats.Cycles),
				res.Stats.AcquireInvalidations, res.Stats.ReleaseFlushes)
		}
	}
}
