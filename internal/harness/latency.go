package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"rats/internal/hist"
	"rats/internal/probe"
	"rats/internal/sim/system"
	"rats/internal/workloads"
)

// LatencyCell is one (workload, config) run's per-transaction latency
// aggregates: the run length plus the histogram/segment decomposition
// for every (op class, hit level) observed.
type LatencyCell struct {
	Workload string
	Config   string
	Cycles   int64
	Entries  map[probe.LatencyKey]probe.LatencyEntry
}

// LatencySweep runs every workload under every named configuration with
// a span-stitching latency sink attached, returning one cell per run in
// (workload-major, config-minor) order. Runs execute in parallel — each
// has its own hub and sink — but the returned order is deterministic.
func LatencySweep(entries []workloads.Entry, scale workloads.Scale, cfgNames []string) ([]LatencyCell, error) {
	type job struct {
		entry workloads.Entry
		cfg   string
	}
	var jobs []job
	for _, e := range entries {
		for _, c := range cfgNames {
			jobs = append(jobs, job{e, c})
		}
	}
	cells := make([]LatencyCell, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cells[i], errs[i] = latencyOne(j.entry, scale, j.cfg)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

func latencyOne(entry workloads.Entry, scale workloads.Scale, cfgName string) (LatencyCell, error) {
	cfg, err := ConfigFor(cfgName)
	if err != nil {
		return LatencyCell{}, err
	}
	sink := probe.NewLatencySink()
	hub := probe.NewHub()
	hub.Attach(sink)
	sys := system.New(cfg)
	sys.AttachProbe(hub)
	if err := sys.Load(entry.Build(scale)); err != nil {
		return LatencyCell{}, fmt.Errorf("%s/%s: %w", entry.Name, cfgName, err)
	}
	res, err := sys.Run()
	if err != nil {
		return LatencyCell{}, fmt.Errorf("%s/%s: %w", entry.Name, cfgName, err)
	}
	if err := hub.Close(); err != nil {
		return LatencyCell{}, err
	}
	if n := sink.Open(); n > 0 {
		return LatencyCell{}, fmt.Errorf("%s/%s: %d spans left open at end of run", entry.Name, cfgName, n)
	}
	return LatencyCell{
		Workload: entry.Name,
		Config:   cfgName,
		Cycles:   res.Stats.Cycles,
		Entries:  sink.Snapshot(),
	}, nil
}

// overall merges every (op, level) entry of a cell into one histogram.
func overall(entries map[probe.LatencyKey]probe.LatencyEntry) hist.Histogram {
	var h hist.Histogram
	for _, e := range entries {
		eh := e.Hist
		h.Merge(&eh)
	}
	return h
}

// RenderLatencySweep draws the sweep: first the overall per-run
// percentile table, then the per-config distributions split by op class
// (merged over workloads and hit levels) — the view that shows e.g.
// DRFrlx's atomics completing far earlier than DRF0's.
func RenderLatencySweep(cells []LatencyCell, cfgNames []string) string {
	var b strings.Builder
	b.WriteString("per-transaction memory latency sweep (cycles)\n")
	fmt.Fprintf(&b, "  %-10s %-8s %10s %9s %7s %7s %7s %7s %7s\n",
		"workload", "config", "cycles", "spans", "p50", "p90", "p99", "p99.9", "max")
	for _, c := range cells {
		h := overall(c.Entries)
		s := h.Summarize()
		fmt.Fprintf(&b, "  %-10s %-8s %10d %9d %7d %7d %7d %7d %7d\n",
			c.Workload, c.Config, c.Cycles, s.Count, s.P50, s.P90, s.P99, s.P999, s.Max)
	}

	b.WriteString("\nby op class, merged over workloads\n")
	fmt.Fprintf(&b, "  %-8s %-8s %9s %7s %7s %7s %7s %7s\n",
		"config", "op", "spans", "p50", "p90", "p99", "p99.9", "max")
	for _, cfg := range cfgNames {
		merged := map[probe.SpanOp]*hist.Histogram{}
		for _, c := range cells {
			if c.Config != cfg {
				continue
			}
			for k, e := range c.Entries {
				h := merged[k.Op]
				if h == nil {
					h = &hist.Histogram{}
					merged[k.Op] = h
				}
				eh := e.Hist
				h.Merge(&eh)
			}
		}
		for op := probe.SpanOp(0); op < probe.NumSpanOps; op++ {
			h := merged[op]
			if h == nil {
				continue
			}
			s := h.Summarize()
			fmt.Fprintf(&b, "  %-8s %-8s %9d %7d %7d %7d %7d %7d\n",
				cfg, op, s.Count, s.P50, s.P90, s.P99, s.P999, s.Max)
		}
	}
	return b.String()
}
