package system

import (
	"runtime"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
	"rats/internal/workloads"
)

// idleHeavyTrace builds the fast-forward showcase: warps chasing
// dependent DRAM misses, so the machine spends the vast majority of
// cycles waiting on one in-flight load. Event-driven skipping should
// collapse those waits; the cycles/sec metric is the headline number.
func idleHeavyTrace() *trace.Trace {
	tr := &trace.Trace{Name: "idle-heavy"}
	for c := 0; c < 4; c++ {
		w := &trace.Warp{CU: c}
		base := uint64(0x40_0000 * (c + 1))
		for i := 0; i < 64; i++ {
			// Distinct lines: every load misses to DRAM. The Join makes the
			// next load depend on it, serialising the misses.
			w.Load(core.Data, base+uint64(i)*0x1000)
			w.Join()
		}
		tr.Warps = append(tr.Warps, w)
	}
	return tr
}

// benchRun drives complete simulations, reporting cycles/sec (the
// simulator's throughput over simulated time) and steady-state
// allocs/cycle (measured across Run only, excluding machine
// construction and trace building).
func benchRun(b *testing.B, cfg memsys.Config, tr *trace.Trace, skip bool) {
	b.Helper()
	b.ReportAllocs()
	var (
		cycles     int64
		runMallocs uint64
		m0, m1     runtime.MemStats
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(cfg)
		s.SetCycleSkipping(skip)
		if err := s.Load(tr); err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		res, err := s.Run()
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		runMallocs += m1.Mallocs - m0.Mallocs
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
		b.StartTimer()
	}
	b.StopTimer()
	totalCycles := float64(cycles) * float64(b.N)
	b.ReportMetric(totalCycles/b.Elapsed().Seconds(), "cycles/sec")
	b.ReportMetric(float64(runMallocs)/totalCycles, "allocs/cycle")
}

// BenchmarkSystemRun measures full-machine simulation throughput.
// idle-heavy is the event-driven skipping showcase (compare skip vs
// noskip for the speedup); H is a busy microbenchmark where most cycles
// have real work, bounding the overhead of computing wake hints.
func BenchmarkSystemRun(b *testing.B) {
	idle := idleHeavyTrace()
	busy := workloads.ByName("H").Build(workloads.Test)
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	b.Run("idle-heavy/skip", func(b *testing.B) { benchRun(b, cfg, idle, true) })
	b.Run("idle-heavy/noskip", func(b *testing.B) { benchRun(b, cfg, idle, false) })
	b.Run("H/skip", func(b *testing.B) { benchRun(b, cfg, busy, true) })
	b.Run("H/noskip", func(b *testing.B) { benchRun(b, cfg, busy, false) })
}
