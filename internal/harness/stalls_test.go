package harness

import (
	"strings"
	"testing"

	"rats/internal/workloads"
)

func TestStallSweep(t *testing.T) {
	entry := workloads.ByName("H")
	if entry == nil {
		t.Fatal("workload H missing")
	}
	rows, err := StallSweep(*entry, workloads.Test, ConfigOrder)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ConfigOrder) {
		t.Fatalf("got %d rows for %d configs", len(rows), len(ConfigOrder))
	}
	anyStall := false
	for i, row := range rows {
		if row.Config != ConfigOrder[i] {
			t.Errorf("row %d config %q, want %q", i, row.Config, ConfigOrder[i])
		}
		if row.Cycles <= 0 {
			t.Errorf("%s: no cycles recorded", row.Config)
		}
		for _, v := range row.Totals {
			if v < 0 {
				t.Errorf("%s: negative stall total", row.Config)
			}
			if v > 0 {
				anyStall = true
			}
		}
	}
	if !anyStall {
		t.Error("sweep recorded zero stalls across all configs")
	}
	out := RenderStallSweep(entry.Name, rows)
	for _, want := range []string{"GD0", "DDR", "memory", "consistency"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q", want)
		}
	}
}

func TestStallSweepUnknownConfig(t *testing.T) {
	entry := workloads.ByName("H")
	if _, err := StallSweep(*entry, workloads.Test, []string{"XXX"}); err == nil {
		t.Error("expected error for unknown config")
	}
}
