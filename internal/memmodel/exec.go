// Package memmodel implements the semantics half of the RAts paper: it
// enumerates the sequentially consistent executions of a litmus program
// (including the quantum-equivalent transformation of Section 3.4), builds
// the relations of Section 2.3/3.3 (program order, conflict order, so1,
// hb1, the program/conflict graph), detects the paper's five illegal race
// categories exactly as Listing 7's Herd model does, and provides a
// system-centric model of a straightforward DRFrlx machine for validating
// Theorem 3.1 on litmus tests.
package memmodel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel/telemetry"
	"rats/internal/rtrace"
)

// Event is one dynamic memory operation of an execution. Branch markers
// are not events; their control dependencies are folded into the static
// dependency analysis.
type Event struct {
	// ID is the event's index, stable across executions of the same
	// program (events are numbered thread by thread, op by op).
	ID int
	// Thread is the issuing thread's index.
	Thread int
	// OpIndex is the op's index within its thread (including branches).
	OpIndex int
	// Op is the static operation.
	Op litmus.Op
	// Loaded is the value the event read (loads and RMWs).
	Loaded int64
	// Stored is the value the event wrote (stores and RMWs).
	Stored int64
	// TPos is the event's position in the SC total order T.
	TPos int
	// Randomized marks quantum events whose values were replaced by the
	// quantum transformation.
	Randomized bool
}

// Execution is one SC execution of a program: a total order plus the
// values transferred.
type Execution struct {
	Prog *litmus.Program
	// Events indexed by event ID.
	Events []Event
	// Order lists event IDs in SC total order.
	Order []int
	// RF maps each reading event to the writing event it read from, or -1
	// for the initial value. Randomized quantum reads map to -1.
	RF []int
	// Present[id] reports whether the event executed (guarded ops whose
	// guards failed are absent).
	Present []bool
	// Final is the memory state at the end of the execution — the
	// paper's "result of an execution" (Section 3.2.3).
	Final map[litmus.Loc]int64
	// Regs holds each thread's final register file.
	Regs [][]int64

	// key caches ResultKey; the enumerator fills it at record time from
	// the layout's presorted location order.
	key string
}

// ResultKey serializes the final memory state into a comparable string.
func (e *Execution) ResultKey() string {
	if e.key == "" {
		e.key = resultKey(e.Final)
	}
	return e.key
}

// FinalResultKey serializes a final memory state exactly as
// Execution.ResultKey does ("loc=val;" segments sorted by location
// name), so backends that derive final states without materializing
// executions — the solve package's memoized state search — produce keys
// comparable to the enumerator's SCResults sets.
func FinalResultKey(final map[litmus.Loc]int64) string { return resultKey(final) }

func resultKey(final map[litmus.Loc]int64) string {
	locs := make([]string, 0, len(final))
	for l := range final {
		locs = append(locs, string(l))
	}
	sort.Strings(locs)
	b := make([]byte, 0, 16*len(locs))
	for _, l := range locs {
		b = append(b, l...)
		b = append(b, '=')
		b = strconv.AppendInt(b, final[litmus.Loc(l)], 10)
		b = append(b, ';')
	}
	return string(b)
}

// EnumOptions configures execution enumeration.
type EnumOptions struct {
	// Quantum applies the quantum transformation (Section 3.4.3): quantum
	// loads return arbitrary domain values, quantum stores write
	// arbitrary domain values.
	Quantum bool
	// Limit bounds the number of executions produced (0 = DefaultLimit).
	Limit int
	// Naive disables partial-order reduction and the parallel first-step
	// fan-out, exploring every SC interleaving sequentially. It is the
	// reference semantics the reduced enumerator is tested against; the
	// analyses only need one representative per Mazurkiewicz trace, which
	// the default mode guarantees.
	Naive bool
	// Visit, when non-nil, streams each execution to the callback instead
	// of accumulating a slice: Enumerate returns (nil, err) and holds no
	// reference to delivered executions, so memory stays bounded by the
	// consumer. The callback owns its *Execution. Unless Sequential (or
	// Naive) is set, Visit is called concurrently from the first-step
	// worker pool in an unspecified order. Returning ErrStop stops
	// enumeration cleanly (Enumerate returns nil error); any other error
	// aborts enumeration and is returned.
	Visit func(*Execution) error
	// Sequential disables the parallel first-step fan-out while keeping
	// partial-order reduction, so Visit callbacks arrive from one
	// goroutine in the deterministic sequential branch order.
	Sequential bool
	// Recycle, when non-nil, supplies previously released executions for
	// the enumerator to refill instead of allocating fresh ones — the
	// other half of the Visit streaming contract: once a consumer is done
	// with a delivered *Execution it may hand it back (e.g. via a
	// sync.Pool drained by this hook), making the steady-state pipeline
	// allocation-free. Returning nil falls back to allocation; recycled
	// executions must originate from the same Enumerate call.
	Recycle func() *Execution
	// Telemetry, when non-nil, receives live engine counters: executions
	// recorded, DFS transitions taken, sleep-set skips, and recycle/
	// allocation events. A nil Check is the zero-overhead disabled mode
	// (every counter folds into one nil-check branch). A request-trace
	// span linked via Telemetry.SetSpan additionally receives
	// enumeration span events; it rides this pointer rather than a field
	// of its own so the disabled layout never changes.
	Telemetry *telemetry.Check
	// Ctx, when non-nil, cancels the search: the DFS polls the context at
	// bounded strides (every checkStride nodes per worker), so a client
	// disconnect or deadline stops enumeration promptly instead of
	// exploring to exhaustion. A canceled search returns a *CancelError
	// wrapping the context's error, so errors.Is(err,
	// context.DeadlineExceeded) distinguishes deadlines from disconnects.
	Ctx context.Context
	// TransitionLimit, when positive, bounds the total DFS transitions
	// taken across all workers (a work budget orthogonal to Limit's
	// execution budget: it also caps searches whose interleavings mostly
	// dead-end before recording). Enforced in checkStride-sized strides,
	// so the real cutoff overshoots by at most checkStride transitions
	// per worker. Tripping it returns a *LimitError with Phase
	// "transitions".
	TransitionLimit int64
}

// checkStride is how many DFS nodes a worker explores between
// cancellation/budget checkpoints. Small enough that a 100ms deadline is
// honored within well under a millisecond of search time, large enough
// that the checks vanish from profiles.
const checkStride = 256

// CancelError reports a search stopped by its context. It wraps the
// context's error, so errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) both see through it.
type CancelError struct {
	// Prog is the program whose search was canceled.
	Prog string
	// Phase is the search that was canceled (mirrors LimitError.Phase).
	Phase string
	// Executions is the number of executions recorded before the stop.
	Executions int64
	// Elapsed is the wall-clock time spent searching before the stop.
	Elapsed time.Duration
	// Err is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("memmodel: %s canceled (program %s: %d executions in %s): %v",
		e.Phase, e.Prog, e.Executions, e.Elapsed.Round(time.Millisecond), e.Err)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Err }

// DefaultLimit bounds enumeration to keep litmus tests tractable.
const DefaultLimit = 500_000

// ErrLimit is returned when enumeration exceeds its execution budget.
// Returned errors wrap it in a *LimitError carrying the trip diagnostics;
// match with errors.Is(err, ErrLimit) / errors.As(err, *LimitError).
var ErrLimit = fmt.Errorf("memmodel: execution limit exceeded")

// LimitError is the structured form of ErrLimit: it names the program,
// the budget, how far the search got before tripping, and — when the
// run was instrumented — the telemetry record at trip time, so an
// over-budget check is a diagnosis instead of a bare sentinel (the same
// pattern as the simulator's *DiagnosticError).
type LimitError struct {
	// Prog is the program whose enumeration tripped the budget.
	Prog string
	// Phase is the search that tripped: "enumeration" (SC executions of
	// the quantum-equivalent program) or "system model".
	Phase string
	// Limit is the execution budget that was exceeded.
	Limit int
	// Executions is the number of executions recorded before the trip.
	Executions int64
	// Elapsed is the wall-clock time spent searching before the trip.
	Elapsed time.Duration
	// Telemetry is the instrumentation record at trip time (nil when the
	// run was not instrumented).
	Telemetry *telemetry.Record
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("memmodel: execution limit exceeded (%s, limit %d, program %s: %d executions in %s)",
		e.Phase, e.Limit, e.Prog, e.Executions, e.Elapsed.Round(time.Millisecond))
}

// Unwrap keeps errors.Is(err, ErrLimit) working.
func (e *LimitError) Unwrap() error { return ErrLimit }

// newLimitError builds the structured budget error for one search.
func newLimitError(prog, phase string, limit int, execs int64, start time.Time, tel *telemetry.Check) *LimitError {
	le := &LimitError{
		Prog: prog, Phase: phase, Limit: limit,
		Executions: execs, Elapsed: time.Since(start),
	}
	if tel != nil {
		rec := tel.Record()
		le.Telemetry = &rec
	}
	return le
}

// ErrStop, returned by an EnumOptions.Visit callback, stops enumeration
// early without error: workers drain and Enumerate returns (nil, nil).
var ErrStop = errors.New("memmodel: stop enumeration")

// eventLayout precomputes the static event numbering of a program.
type eventLayout struct {
	// id[t][i] is the event ID of thread t's op i, or -1 for branches.
	id [][]int
	// locID[t][i] is the location index of thread t's op i, or -1 for
	// branches. Indexes locs; the enumerator's memory and last-writer
	// state are slices over it instead of maps keyed by location name.
	locID [][]int
	// locs maps location indices back to names, in Locs() order.
	locs []litmus.Loc
	// sortedLoc lists location indices in ascending name order — the
	// order ResultKey serializes, so record can build keys without
	// sorting per execution.
	sortedLoc []int
	// n is the total number of events.
	n int
}

func layout(p *litmus.Program) eventLayout {
	var l eventLayout
	l.locs = p.Locs()
	idx := make(map[litmus.Loc]int, len(l.locs))
	for i, loc := range l.locs {
		idx[loc] = i
	}
	l.sortedLoc = make([]int, len(l.locs))
	for i := range l.sortedLoc {
		l.sortedLoc[i] = i
	}
	sort.Slice(l.sortedLoc, func(a, b int) bool {
		return l.locs[l.sortedLoc[a]] < l.locs[l.sortedLoc[b]]
	})
	l.id = make([][]int, len(p.Threads))
	l.locID = make([][]int, len(p.Threads))
	for t, th := range p.Threads {
		l.id[t] = make([]int, len(th.Ops))
		l.locID[t] = make([]int, len(th.Ops))
		for i, op := range th.Ops {
			if op.IsBranch {
				l.id[t][i] = -1
				l.locID[t][i] = -1
				continue
			}
			l.id[t][i] = l.n
			l.locID[t][i] = idx[op.Loc]
			l.n++
		}
	}
	return l
}

// QuantumDomain returns the value domain used for randomized quantum
// accesses: the program's explicit domain if set, otherwise every constant
// appearing in the program plus {0, 1}.
func QuantumDomain(p *litmus.Program) []int64 {
	if len(p.QuantumDomain) > 0 {
		return append([]int64(nil), p.QuantumDomain...)
	}
	set := map[int64]bool{0: true, 1: true}
	for _, v := range p.Init {
		set[v] = true
	}
	for t := range p.Threads {
		ops := p.Threads[t].Ops
		for i := range ops {
			if ops[i].IsBranch {
				continue
			}
			set[ops[i].Operand.Const] = true
			set[ops[i].Expected.Const] = true
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// opInfo is one op's static summary for the enumerator's hot loops.
type opInfo struct {
	isBranch  bool
	hasGuards bool
	writes    bool
	reads     bool
	// quantum folds opts.Quantum into the op's class: the op takes
	// quantum value choices.
	quantum bool
	dst     litmus.Reg
	loc     int // location index, -1 for branches
	id      int // event ID, -1 for branches
}

type enumerator struct {
	prog   *litmus.Program
	lay    eventLayout
	opts   EnumOptions
	domain []int64
	// por enables sleep-set partial-order reduction (off in Naive mode
	// and for programs with more threads than the sleep bitmask holds).
	por bool
	// count is the execution counter shared across the parallel workers;
	// it enforces Limit globally so the reduced enumerator errors exactly
	// when the sequential one would (total recorded executions > Limit).
	count *atomic.Int64
	// stop is the shared early-abort flag: set on Visit-requested stop,
	// Visit error, or limit overrun, it makes every worker unwind its
	// search promptly instead of exploring to exhaustion.
	stop *atomic.Bool

	// proto holds the static Event fields (ID, thread, op, TPos=-1);
	// record copies it wholesale and fills in per-execution values.
	proto []Event
	// info caches the static per-op facts the DFS consults at every node
	// ([t][opIndex], shared read-only by clones), so the hot loops avoid
	// copying the full Op struct for each method call.
	info [][]opInfo

	// mutable search state
	pc      []int
	mem     []int64 // current value per location index
	lastW   []int   // event ID of last writer per location index, -1 init
	regs    [][]int64
	order   []int
	loaded  []int64
	stored  []int64
	rf      []int
	random  []bool
	present []bool
	// sleep is the sleep set of the node being explored: a bitmask of
	// threads whose next transition was already fully explored from an
	// equivalent sibling branch and is therefore redundant here.
	sleep uint64

	// keyBuf is the reusable scratch for building result keys in record;
	// keyIntern dedups the key strings (distinct final states are few, so
	// interning makes key construction allocation-free in steady state).
	// Both are per-worker: clone leaves them nil.
	keyBuf    []byte
	keyIntern map[string]string

	execs []*Execution
	err   error

	// tel is the optional instrumentation block, shared by all clones
	// (nil when disabled); start is the enumeration's wall-clock start,
	// stamped once by Enumerate for LimitError diagnostics. Both live at
	// the end of the struct so the disabled mode keeps the hot search
	// state at the same offsets as the uninstrumented layout.
	tel   *telemetry.Check
	start time.Time
	// transitions and sleepSkips are clone-local shards of the hot-loop
	// counters, always incremented (a register add costs less than a
	// nil check per transition) and flushed into tel by flushTel once
	// per branch. clone starts fresh shards per worker.
	transitions int64
	sleepSkips  int64

	// ctx and transLeft implement request-scoped cancellation and the
	// transition budget: every checkEvery DFS nodes the worker polls the
	// context and debits the shared budget in checkStride-sized strides.
	// checkEvery is 0 when neither is configured, so an unscoped search
	// pays one integer compare per node and nothing else. sinceCheck is
	// clone-local.
	ctx        context.Context
	transLeft  *atomic.Int64
	checkEvery int
	sinceCheck int
}

func newEnumerator(p *litmus.Program, opts EnumOptions) *enumerator {
	e := &enumerator{
		prog:   p,
		lay:    layout(p),
		opts:   opts,
		domain: QuantumDomain(p),
		por:    !opts.Naive && len(p.Threads) <= 64,
		count:  new(atomic.Int64),
		stop:   new(atomic.Bool),
		tel:    opts.Telemetry,
		ctx:    opts.Ctx,
		pc:     make([]int, len(p.Threads)),
		order:  make([]int, 0, 16),
	}
	if opts.TransitionLimit > 0 {
		e.transLeft = new(atomic.Int64)
		e.transLeft.Store(opts.TransitionLimit)
	}
	if e.ctx != nil || e.transLeft != nil {
		e.checkEvery = checkStride
	}
	e.mem = make([]int64, len(e.lay.locs))
	e.lastW = make([]int, len(e.lay.locs))
	for i, l := range e.lay.locs {
		e.mem[i] = p.Init[l]
		e.lastW[i] = -1
	}
	e.regs = make([][]int64, len(p.Threads))
	for t, th := range p.Threads {
		e.regs[t] = make([]int64, th.NumRegs())
	}
	n := e.lay.n
	e.loaded = make([]int64, n)
	e.stored = make([]int64, n)
	e.rf = make([]int, n)
	e.random = make([]bool, n)
	e.present = make([]bool, n)
	e.proto = make([]Event, n)
	e.info = make([][]opInfo, len(p.Threads))
	for t, th := range p.Threads {
		e.info[t] = make([]opInfo, len(th.Ops))
		for i := range th.Ops {
			op := &th.Ops[i]
			e.info[t][i] = opInfo{
				isBranch:  op.IsBranch,
				hasGuards: len(op.Guards) > 0,
				writes:    op.Writes(),
				reads:     op.Reads(),
				quantum:   opts.Quantum && op.Class == core.Quantum,
				dst:       op.Dst,
				loc:       e.lay.locID[t][i],
				id:        e.lay.id[t][i],
			}
			if id := e.lay.id[t][i]; id >= 0 {
				e.proto[id] = Event{ID: id, Thread: t, OpIndex: i, Op: *op, TPos: -1}
			}
		}
	}
	return e
}

// clone copies the enumerator's full search state. Workers clone the root
// after its leading no-ops are consumed, so each first-step branch
// explores an independent copy.
func (e *enumerator) clone() *enumerator {
	c := &enumerator{
		prog: e.prog, lay: e.lay, opts: e.opts, domain: e.domain,
		por: e.por, count: e.count, stop: e.stop,
		tel: e.tel, start: e.start,
		ctx: e.ctx, transLeft: e.transLeft, checkEvery: e.checkEvery,
		proto:   e.proto,
		info:    e.info,
		pc:      append([]int(nil), e.pc...),
		mem:     append([]int64(nil), e.mem...),
		lastW:   append([]int(nil), e.lastW...),
		order:   append(make([]int, 0, 16), e.order...),
		loaded:  append([]int64(nil), e.loaded...),
		stored:  append([]int64(nil), e.stored...),
		rf:      append([]int(nil), e.rf...),
		random:  append([]bool(nil), e.random...),
		present: append([]bool(nil), e.present...),
		sleep:   e.sleep,
	}
	c.regs = make([][]int64, len(e.regs))
	for t := range e.regs {
		c.regs[t] = append([]int64(nil), e.regs[t]...)
	}
	return c
}

// Enumerate produces the SC executions of the program (or of its
// quantum-equivalent program when opts.Quantum is set).
//
// By default it applies sleep-set partial-order reduction and fans the
// first-step branches out over a worker pool: the result contains at
// least one representative of every Mazurkiewicz trace (executions that
// differ only in the order of non-conflicting accesses), so the set of
// final states, reads-from choices, per-event values, and every relation
// the analyses derive (conflict order, so1, hb1, races — all functions
// of the total order restricted to conflicting pairs) are identical to
// the Naive enumeration; only the multiplicity of order-equivalent
// executions shrinks. Set opts.Naive to enumerate every interleaving.
func Enumerate(p *litmus.Program, opts EnumOptions) ([]*Execution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Limit == 0 {
		opts.Limit = DefaultLimit
	}
	if opts.Ctx != nil {
		if cerr := opts.Ctx.Err(); cerr != nil {
			return nil, &CancelError{Prog: p.Name, Phase: "enumeration", Err: cerr}
		}
	}
	e := newEnumerator(p, opts)
	e.start = time.Now()
	if opts.Naive || opts.Sequential || len(p.Threads) < 2 {
		e.step()
		// A request trace linked via Telemetry.SetSpan gets one summary
		// event with the final counters (read before flushTel zeroes the
		// clone-local shards). Reading the span off the telemetry block
		// keeps EnumOptions and the enumerator layout-identical to the
		// untraced build — see the tel field's struct comment.
		if sp := e.tel.Span(); sp != nil {
			sp.Event("enumerated",
				rtrace.Int("executions", e.count.Load()),
				rtrace.Int("transitions", e.transitions),
				rtrace.Int("sleep_skips", e.sleepSkips))
		}
		e.flushTel()
		if e.err != nil {
			return nil, e.err
		}
		return e.execs, nil
	}
	return e.runParallel()
}

// flushTel folds the clone-local hot-loop counter shards into the shared
// telemetry block (no-op when disabled).
func (e *enumerator) flushTel() {
	e.tel.AddTransitions(e.transitions)
	e.tel.AddSleepSkips(e.sleepSkips)
	e.transitions, e.sleepSkips = 0, 0
}

// runParallel explores the first-step branches on a worker pool: each
// (thread, value-choice) root transition gets a cloned enumerator, and
// the per-branch execution lists are concatenated in the sequential
// branch order, so the output is deterministic and identical to a
// sequential run of the reduced enumerator.
func (e *enumerator) runParallel() ([]*Execution, error) {
	// Consume leading branch markers and disabled guarded ops exactly as
	// the recursive skip phase in step would: they are thread-local
	// no-ops, so draining them per thread reaches the same state.
	for t, th := range e.prog.Threads {
		for e.pc[t] < len(th.Ops) {
			inf := &e.info[t][e.pc[t]]
			if inf.isBranch || (inf.hasGuards && !th.Ops[e.pc[t]].GuardsHold(e.regs[t])) {
				e.pc[t]++
				continue
			}
			break
		}
	}
	done := true
	for t := range e.prog.Threads {
		if e.pc[t] < len(e.prog.Threads[t].Ops) {
			done = false
		}
	}
	if done {
		e.record()
		if e.err != nil {
			return nil, e.err
		}
		return e.execs, nil
	}

	type task struct {
		t      int
		inf    *opInfo
		lv, sv int64
		sleep  uint64
	}
	var tasks []task
	var sleepAcc uint64
	for t, th := range e.prog.Threads {
		if e.pc[t] >= len(th.Ops) {
			continue
		}
		inf := &e.info[t][e.pc[t]]
		var child uint64
		if e.por {
			child = e.filterSleep(sleepAcc, inf)
		}
		loads, stores := e.choices(inf)
		for _, lv := range loads {
			for _, sv := range stores {
				tasks = append(tasks, task{t: t, inf: inf, lv: lv, sv: sv, sleep: child})
			}
		}
		if e.por {
			sleepAcc |= 1 << uint(t)
		}
	}

	workers := make([]*enumerator, len(tasks))
	jobs := make(chan int)
	var wg sync.WaitGroup
	n := runtime.GOMAXPROCS(0)
	if n > len(tasks) {
		n = len(tasks)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// When a request trace is linked on the telemetry block,
			// each pool worker reports as an "enum.worker" child span
			// with one "branch" event per explored first-step branch
			// (clone-local transition shards, read before flushTel
			// zeroes them; executions is the shared recorded total at
			// event time). nil span = nil child = no per-branch work.
			var wsp *rtrace.Span
			if psp := e.tel.Span(); psp != nil {
				wsp = psp.Child("enum.worker")
				wsp.SetInt("worker", int64(w))
			}
			for i := range jobs {
				tk := tasks[i]
				c := e.clone()
				c.sleep = tk.sleep
				c.execOne(tk.t, tk.inf, tk.lv, tk.sv)
				if wsp != nil {
					wsp.Event("branch",
						rtrace.Int("task", int64(i)),
						rtrace.Int("executions", e.count.Load()),
						rtrace.Int("transitions", c.transitions),
						rtrace.Int("sleep_skips", c.sleepSkips))
				}
				c.flushTel()
				workers[i] = c
			}
			wsp.End()
		}(w)
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var out []*Execution
	for _, c := range workers {
		if c.err != nil {
			return nil, c.err
		}
		out = append(out, c.execs...)
	}
	return out, nil
}

// filterSleep returns the sleeping threads that remain asleep after op
// executes: a sleeping thread's deferred transition stays redundant only
// while the transitions taken commute with it (Godefroid's sleep-set
// rule). Two ops are dependent exactly when they touch the same location
// and at least one writes; everything else commutes — threads' register
// files are disjoint, a thread's next visible op and its guard outcomes
// depend only on its own registers, and quantum value choices are
// order-independent.
func (e *enumerator) filterSleep(sleep uint64, inf *opInfo) uint64 {
	var out uint64
	for u := 0; sleep>>uint(u) != 0; u++ {
		if sleep&(1<<uint(u)) == 0 {
			continue
		}
		if e.pc[u] >= len(e.info[u]) {
			continue
		}
		uinf := &e.info[u][e.pc[u]]
		if uinf.loc != inf.loc || (!uinf.writes && !inf.writes) {
			out |= 1 << uint(u)
		}
	}
	return out
}

// checkpoint polls the cancellation context and debits the shared
// transition budget by one checkStride. Called every checkEvery DFS nodes
// per worker, so detection lags the event by a bounded (and tiny) amount
// of search work. It reports whether the search may continue.
func (e *enumerator) checkpoint() bool {
	if e.ctx != nil {
		if cerr := e.ctx.Err(); cerr != nil {
			e.err = &CancelError{
				Prog: e.prog.Name, Phase: "enumeration",
				Executions: e.count.Load(), Elapsed: time.Since(e.start),
				Err: cerr,
			}
			e.stop.Store(true)
			return false
		}
	}
	if e.transLeft != nil && e.transLeft.Add(-checkStride) <= 0 {
		e.flushTel()
		e.err = newLimitError(e.prog.Name, "transitions",
			int(e.opts.TransitionLimit), e.count.Load(), e.start, e.tel)
		e.stop.Store(true)
		return false
	}
	return true
}

// step is the DFS over interleavings (and quantum value choices).
func (e *enumerator) step() {
	if e.err != nil || e.stop.Load() {
		return
	}
	if e.checkEvery > 0 {
		e.sinceCheck++
		if e.sinceCheck >= e.checkEvery {
			e.sinceCheck = 0
			if !e.checkpoint() {
				return
			}
		}
	}
	done := true
	for t := range e.prog.Threads {
		if e.pc[t] < len(e.info[t]) {
			done = false
			inf := &e.info[t][e.pc[t]]
			// Consume branch markers and disabled guarded ops eagerly:
			// they are thread-local no-ops (guard values are fixed once
			// the thread reaches them) and must not multiply
			// interleavings.
			if inf.isBranch || (inf.hasGuards && !e.prog.Threads[t].Ops[e.pc[t]].GuardsHold(e.regs[t])) {
				e.pc[t]++
				e.step()
				e.pc[t]--
				return
			}
		}
	}
	if done {
		e.record()
		return
	}
	// Fan out over every runnable thread. With POR on, a thread in the
	// sleep set is skipped (its transition here only permutes
	// non-conflicting accesses of a branch already explored), each child
	// inherits the sleeping threads that commute with the chosen op, and
	// a fully explored thread joins the sleep set of its later siblings.
	// Every thread head is a visible op at this point: the skip phase
	// above consumed branch markers and disabled guarded ops, so the
	// independence checks in filterSleep see each thread's actual next
	// transition.
	entry := e.sleep
	sleep := e.sleep
	for t := range e.prog.Threads {
		if e.pc[t] >= len(e.info[t]) {
			continue
		}
		inf := &e.info[t][e.pc[t]]
		if inf.isBranch {
			continue // handled above; only one branch head processed per level
		}
		if e.por {
			if sleep&(1<<uint(t)) != 0 {
				e.sleepSkips++
				continue
			}
			e.sleep = e.filterSleep(sleep, inf)
		}
		e.exec(t, inf)
		if e.err != nil {
			return
		}
		if e.por {
			sleep |= 1 << uint(t)
		}
	}
	e.sleep = entry
}

// exec runs thread t's current op with all applicable value choices,
// recursing after each.
func (e *enumerator) exec(t int, inf *opInfo) {
	loadChoices, storeChoices := e.choices(inf)
	for _, lv := range loadChoices {
		for _, sv := range storeChoices {
			e.execOne(t, inf, lv, sv)
			if e.err != nil {
				return
			}
		}
	}
}

// oneChoice is the value-choice list of non-quantum accesses (the value
// is ignored; the access reads/computes its real value).
var oneChoice = []int64{0}

// choices returns the quantum load/store value-choice lists for op.
func (e *enumerator) choices(inf *opInfo) (loads, stores []int64) {
	loads, stores = oneChoice, oneChoice
	if inf.quantum {
		if inf.reads {
			loads = e.domain
		}
		if inf.writes {
			stores = e.domain
		}
	}
	return loads, stores
}

func (e *enumerator) execOne(t int, inf *opInfo, qload, qstore int64) {
	e.transitions++
	id, loc := inf.id, inf.loc
	oldMem := e.mem[loc]
	oldLast := e.lastW[loc]
	var oldReg int64
	if inf.dst != litmus.NoReg {
		oldReg = e.regs[t][inf.dst]
	}

	// Perform the access.
	loaded := oldMem
	e.rf[id] = oldLast
	if inf.quantum && inf.reads {
		loaded = qload
		e.rf[id] = -1
	}
	e.loaded[id] = loaded
	e.random[id] = inf.quantum
	if inf.dst != litmus.NoReg {
		e.regs[t][inf.dst] = loaded
	}
	if inf.writes {
		var newVal int64
		if inf.quantum {
			newVal = qstore
		} else {
			op := &e.prog.Threads[t].Ops[e.pc[t]]
			operand := op.Operand.Eval(e.regs[t])
			expected := op.Expected.Eval(e.regs[t])
			newVal = op.AOp.Apply(oldMem, operand, expected)
		}
		e.mem[loc] = newVal
		e.lastW[loc] = id
		e.stored[id] = newVal
	}
	e.order = append(e.order, id)
	e.present[id] = true
	e.pc[t]++

	e.step()

	// Undo.
	e.pc[t]--
	e.present[id] = false
	e.order = e.order[:len(e.order)-1]
	if inf.writes {
		e.mem[loc] = oldMem
		e.lastW[loc] = oldLast
	}
	if inf.dst != litmus.NoReg {
		e.regs[t][inf.dst] = oldReg
	}
}

// record snapshots the completed execution and either streams it to the
// Visit callback or appends it to the materialized list. The counter is
// shared across the parallel workers, so Limit bounds the total across
// all branches.
func (e *enumerator) record() {
	if e.stop.Load() {
		return
	}
	if n := e.count.Add(1); n > int64(e.opts.Limit) {
		e.flushTel() // fold this worker's shard into the trip-time snapshot
		e.err = newLimitError(e.prog.Name, "enumeration", e.opts.Limit, n-1, e.start, e.tel)
		e.stop.Store(true)
		return
	}
	e.tel.IncEnumerated()
	var ex *Execution
	if e.opts.Recycle != nil {
		ex = e.opts.Recycle()
	}
	if ex != nil {
		e.tel.IncRecycled()
	} else {
		e.tel.IncAllocated()
		ex = &Execution{
			Events:  make([]Event, e.lay.n),
			Order:   make([]int, 0, len(e.order)),
			RF:      make([]int, e.lay.n),
			Present: make([]bool, e.lay.n),
			Final:   make(map[litmus.Loc]int64, len(e.lay.locs)),
			Regs:    make([][]int64, len(e.regs)),
		}
		for t := range e.regs {
			ex.Regs[t] = make([]int64, len(e.regs[t]))
		}
	}
	ex.Prog = e.prog
	ex.Order = append(ex.Order[:0], e.order...)
	copy(ex.RF, e.rf)
	copy(ex.Present, e.present)
	for i, l := range e.lay.locs {
		ex.Final[l] = e.mem[i]
	}
	// Serialize the result key directly from the presorted location order
	// (identical to resultKey(ex.Final), minus its per-call sort).
	e.keyBuf = e.keyBuf[:0]
	for _, li := range e.lay.sortedLoc {
		e.keyBuf = append(e.keyBuf, e.lay.locs[li]...)
		e.keyBuf = append(e.keyBuf, '=')
		e.keyBuf = strconv.AppendInt(e.keyBuf, e.mem[li], 10)
		e.keyBuf = append(e.keyBuf, ';')
	}
	if e.keyIntern == nil {
		e.keyIntern = make(map[string]string, 8)
	}
	key, ok := e.keyIntern[string(e.keyBuf)]
	if !ok {
		key = string(e.keyBuf)
		e.keyIntern[key] = key
	}
	ex.key = key
	// The static Event fields come from the prototype; only values and
	// the total-order position vary per execution. Absent events keep the
	// prototype's zero values and TPos -1.
	copy(ex.Events, e.proto)
	for id := 0; id < e.lay.n; id++ {
		if e.present[id] {
			ev := &ex.Events[id]
			ev.Loaded = e.loaded[id]
			ev.Stored = e.stored[id]
			ev.Randomized = e.random[id]
		} else {
			ex.RF[id] = -1
		}
	}
	for pos, id := range ex.Order {
		ex.Events[id].TPos = pos
	}
	for t := range e.regs {
		copy(ex.Regs[t], e.regs[t])
	}
	if e.opts.Visit != nil {
		if err := e.opts.Visit(ex); err != nil {
			if !errors.Is(err, ErrStop) {
				e.err = err
			}
			e.stop.Store(true)
		}
		return
	}
	e.execs = append(e.execs, ex)
}

// Results returns the set of distinct final memory states over a slice of
// executions, keyed by ResultKey.
func Results(execs []*Execution) map[string]map[litmus.Loc]int64 {
	out := map[string]map[litmus.Loc]int64{}
	for _, e := range execs {
		out[e.ResultKey()] = e.Final
	}
	return out
}
