// Command ratsexplore sweeps one simulator parameter across a range of
// values for a workload/configuration pair — the interactive counterpart
// of the ablation benchmarks.
//
// Usage:
//
//	ratsexplore -workload HG -config DDR -param mshr-targets -values 1,2,4,8
//	ratsexplore -params   # list sweepable parameters
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"rats/internal/harness"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/workloads"
)

// params maps sweepable names to config setters.
var params = map[string]func(*memsys.Config, int64){
	"l2-atomic-occupancy": func(c *memsys.Config, v int64) { c.L2AtomicOccupancy = v },
	"l1-atomic-occupancy": func(c *memsys.Config, v int64) { c.L1AtomicOccupancy = v },
	"l2-latency":          func(c *memsys.Config, v int64) { c.L2Lat = v },
	"l2-tag-latency":      func(c *memsys.Config, v int64) { c.L2TagLat = v },
	"dram-latency":        func(c *memsys.Config, v int64) { c.DRAMLat = v },
	"hop-latency":         func(c *memsys.Config, v int64) { c.HopLat = v },
	"mshr-targets":        func(c *memsys.Config, v int64) { c.L1MSHRTargets = int(v) },
	"mshrs":               func(c *memsys.Config, v int64) { c.L1MSHRs = int(v) },
	"store-buffer":        func(c *memsys.Config, v int64) { c.StoreBuffer = int(v) },
	"warp-mlp":            func(c *memsys.Config, v int64) { c.MaxOutstandingPerWarp = int(v) },
	"atomic-mlp":          func(c *memsys.Config, v int64) { c.MaxOutstandingAtomicsPerWarp = int(v) },
}

func main() {
	var (
		workload  = flag.String("workload", "HG", "workload short name")
		config    = flag.String("config", "DDR", "base configuration")
		param     = flag.String("param", "mshr-targets", "parameter to sweep")
		values    = flag.String("values", "1,2,4,8,16", "comma-separated values")
		scaleName = flag.String("scale", "test", "workload scale: test or paper")
		list      = flag.Bool("params", false, "list sweepable parameters")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(params))
		for n := range params {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratsexplore:", err)
			os.Exit(1)
		}
	}
	setter, ok := params[*param]
	if !ok {
		die(fmt.Errorf("unknown parameter %q (use -params)", *param))
	}
	entry := workloads.ByName(*workload)
	if entry == nil {
		die(fmt.Errorf("unknown workload %q", *workload))
	}
	scale := workloads.Test
	if *scaleName == "paper" {
		scale = workloads.Paper
	}

	fmt.Printf("sweeping %s on %s/%s\n", *param, *workload, *config)
	var base float64
	for _, vs := range strings.Split(*values, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(vs), 10, 64)
		die(err)
		cfg, err := harness.ConfigFor(*config)
		die(err)
		setter(&cfg, v)
		res, err := system.RunTrace(cfg, entry.Build(scale))
		die(err)
		cyc := float64(res.Stats.Cycles)
		if base == 0 {
			base = cyc
		}
		fmt.Printf("  %-6d %10d cycles  %6.3fx  energy %12.0f pJ  flit-hops %10d\n",
			v, res.Stats.Cycles, cyc/base, res.Energy.Total(), res.Stats.NoCFlitHops)
	}
}
