package workloads

import (
	"fmt"
	"math/rand"

	"rats/internal/core"
	"rats/internal/trace"
)

// HistParams sizes the histogram microbenchmarks. The paper uses a
// 256 KB input with 256 bins.
type HistParams struct {
	Elems int // 1-byte input elements
	Bins  int
	CUs   int
	Warps int // warps per CU
	Seed  int64
}

// DefaultHist returns the paper-shaped parameters at the given scale.
func DefaultHist(s Scale) HistParams {
	return HistParams{
		Elems: s.pick(8<<10, 96<<10),
		Bins:  256,
		CUs:   15,
		Warps: s.pick(2, 4),
		Seed:  42,
	}
}

// histValues deterministically assigns a bin to every element.
func histValues(p HistParams) []int {
	rng := rand.New(rand.NewSource(p.Seed))
	vals := make([]int, p.Elems)
	for i := range vals {
		vals[i] = rng.Intn(p.Bins)
	}
	return vals
}

// histCheck validates the final bins against the reference counts.
func histCheck(p HistParams, vals []int) func(func(uint64) int64) error {
	want := make([]int64, p.Bins)
	for _, v := range vals {
		want[v]++
	}
	return func(read func(uint64) int64) error {
		for b := 0; b < p.Bins; b++ {
			if got := read(word(binsBase, b)); got != want[b] {
				return fmt.Errorf("bin %d = %d, want %d", b, got, want[b])
			}
		}
		return nil
	}
}

// splitElems partitions elements evenly over warps.
func splitElems(elems, nwarps int) [][2]int {
	out := make([][2]int, nwarps)
	per := elems / nwarps
	for w := 0; w < nwarps; w++ {
		lo := w * per
		hi := lo + per
		if w == nwarps-1 {
			hi = elems
		}
		out[w] = [2]int{lo, hi}
	}
	return out
}

// Hist builds the "H" microbenchmark (Listing 2 / CUDA SDK histogram):
// each warp bins its input slice in the scratchpad, then merges its
// local histogram into the global bins with commutative atomic adds.
func Hist(p HistParams) *trace.Trace {
	vals := histValues(p)
	tr := trace.New("H")
	nwarps := p.CUs * p.Warps
	for w, span := range splitElems(p.Elems, nwarps) {
		warp := tr.AddWarp(w % p.CUs)
		local := make([]int64, p.Bins)
		for _, ch := range chunk32(span[1] - span[0]) {
			lo := span[0] + ch[0]
			hi := span[0] + ch[1]
			addrs := make([]uint64, 0, hi-lo)
			for e := lo; e < hi; e++ {
				addrs = append(addrs, dataBase+uint64(e)) // 1-byte elements
				local[vals[e]]++
			}
			warp.Load(core.Data, addrs...)
			warp.Join()
			warp.ScratchAccess(trace.ScratchStore, 1) // local bin update
			warp.Compute(2)
		}
		// Merge local bins into the global histogram.
		for _, ch := range chunk32(p.Bins) {
			addrs := make([]uint64, 0, ch[1]-ch[0])
			ops := make([]int64, 0, ch[1]-ch[0])
			for b := ch[0]; b < ch[1]; b++ {
				if local[b] == 0 {
					continue
				}
				addrs = append(addrs, word(binsBase, b))
				ops = append(ops, local[b])
			}
			if len(addrs) > 0 {
				warp.AtomicLanes(core.Commutative, core.OpAdd, addrs, ops)
			}
		}
	}
	tr.FinalCheck = histCheck(p, vals)
	return tr
}

// HistGlobal builds "HG": every element updates the global histogram
// directly — maximal atomic contention.
func HistGlobal(p HistParams) *trace.Trace {
	vals := histValues(p)
	tr := trace.New("HG")
	nwarps := p.CUs * p.Warps
	for w, span := range splitElems(p.Elems, nwarps) {
		warp := tr.AddWarp(w % p.CUs)
		for _, ch := range chunk32(span[1] - span[0]) {
			lo := span[0] + ch[0]
			hi := span[0] + ch[1]
			loads := make([]uint64, 0, hi-lo)
			bins := make([]uint64, 0, hi-lo)
			for e := lo; e < hi; e++ {
				loads = append(loads, dataBase+uint64(e))
				bins = append(bins, word(binsBase, vals[e]))
			}
			warp.Load(core.Data, loads...)
			warp.Join()
			warp.Atomic(core.Commutative, core.OpInc, 0, bins...)
		}
	}
	tr.FinalCheck = histCheck(p, vals)
	return tr
}

// HistGlobalNonOrder builds "HG-NO": reading the final bin values with
// non-ordering atomic loads (the bottom of Listing 2). Per the paper the
// update portion is pre-done (bins arrive initialized) and only the read
// phase is measured.
func HistGlobalNonOrder(p HistParams) *trace.Trace {
	vals := histValues(p)
	counts := make([]int64, p.Bins)
	for _, v := range vals {
		counts[v]++
	}
	tr := trace.New("HG-NO")
	for b := 0; b < p.Bins; b++ {
		tr.Init[word(binsBase, b)] = counts[b]
	}
	nwarps := p.CUs * p.Warps
	rounds := p.Elems / (p.Bins * nwarps)
	if rounds < 1 {
		rounds = 1
	}
	for w := 0; w < nwarps; w++ {
		warp := tr.AddWarp(w % p.CUs)
		for r := 0; r < rounds; r++ {
			for _, ch := range chunk32(p.Bins) {
				addrs := make([]uint64, 0, ch[1]-ch[0])
				for b := ch[0]; b < ch[1]; b++ {
					addrs = append(addrs, word(binsBase, b))
				}
				warp.Atomic(core.NonOrdering, core.OpLoad, 0, addrs...)
				warp.Compute(4)
			}
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		var sum int64
		for b := 0; b < p.Bins; b++ {
			sum += read(word(binsBase, b))
		}
		if sum != total {
			return fmt.Errorf("bins disturbed: sum %d, want %d", sum, total)
		}
		return nil
	}
	return tr
}

// FlagsParams sizes the Flags microbenchmark (90 thread blocks in the
// paper).
type FlagsParams struct {
	CUs      int
	Warps    int // worker warps per CU
	Polls    int // stop-flag polls per worker
	DirtyMod int // set dirty every DirtyMod-th poll
}

// DefaultFlags returns paper-shaped parameters.
func DefaultFlags(s Scale) FlagsParams {
	return FlagsParams{CUs: 15, Warps: s.pick(2, 6), Polls: s.pick(16, 64), DirtyMod: 8}
}

// Flags builds Listing 3: workers poll stop (non-ordering) and set dirty
// (commutative); the CPU main thread raises stop, joins at a barrier,
// and reads dirty.
func Flags(p FlagsParams) *trace.Trace {
	tr := trace.New("Flags")
	stop := word(flagBase, 0)
	dirty := word(flagBase, 1)
	for w := 0; w < p.CUs*p.Warps; w++ {
		warp := tr.AddWarp(w % p.CUs)
		for i := 0; i < p.Polls; i++ {
			warp.AtomicLoad(core.NonOrdering, stop)
			warp.Compute(5)
			if i%p.DirtyMod == p.DirtyMod-1 {
				warp.AtomicStore(core.Commutative, dirty, 1)
			}
		}
		warp.Barrier()
	}
	main := tr.AddCPUThread()
	main.Compute(50)
	main.AtomicStore(core.NonOrdering, stop, 1)
	main.Barrier()
	main.AtomicLoad(core.NonOrdering, dirty)
	tr.FinalCheck = func(read func(uint64) int64) error {
		if read(stop) != 1 || read(dirty) != 1 {
			return fmt.Errorf("stop=%d dirty=%d, want 1/1", read(stop), read(dirty))
		}
		return nil
	}
	return tr
}

// SplitCounterParams sizes SplitCounter (112 thread blocks in the paper).
type SplitCounterParams struct {
	CUs      int
	Updaters int // updater warps (one shard each)
	Readers  int // reader warps
	Adds     int // adds per updater
	Reads    int // full-sum reads per reader
}

// DefaultSplitCounter returns paper-shaped parameters.
func DefaultSplitCounter(s Scale) SplitCounterParams {
	// Split counters exist because updates vastly outnumber reads; the
	// reader scans are rare. Adds are warp-wide instructions (32 lanes).
	return SplitCounterParams{
		CUs: 15, Updaters: s.pick(12, 15), Readers: s.pick(3, 6),
		Adds: s.pick(6, 24), Reads: s.pick(2, 6),
	}
}

// SplitCounter builds Listing 4: updaters add to their own shard with
// quantum RMWs; readers sum every shard with quantum loads.
func SplitCounter(p SplitCounterParams) *trace.Trace {
	tr := trace.New("SC")
	lanes := func(addr uint64) []uint64 {
		out := make([]uint64, warpLanes)
		for i := range out {
			out[i] = addr
		}
		return out
	}
	for u := 0; u < p.Updaters; u++ {
		warp := tr.AddWarp(u % p.CUs)
		shard := word(binsBase, u)
		for i := 0; i < p.Adds; i++ {
			// Warp-wide add: all 32 lanes update this thread block's shard.
			warp.Atomic(core.Quantum, core.OpAdd, 1, lanes(shard)...)
			warp.Compute(3)
		}
	}
	for r := 0; r < p.Readers; r++ {
		warp := tr.AddWarp((p.Updaters + r) % p.CUs)
		for i := 0; i < p.Reads; i++ {
			for _, ch := range chunk32(p.Updaters) {
				addrs := make([]uint64, 0, ch[1]-ch[0])
				for u := ch[0]; u < ch[1]; u++ {
					addrs = append(addrs, word(binsBase, u))
				}
				warp.Atomic(core.Quantum, core.OpLoad, 0, addrs...)
			}
			warp.Join()
			warp.Compute(p.Updaters) // sum the shards
		}
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		var sum int64
		for u := 0; u < p.Updaters; u++ {
			sum += read(word(binsBase, u))
		}
		if want := int64(p.Updaters * p.Adds * warpLanes); sum != want {
			return fmt.Errorf("split counter sum %d, want %d", sum, want)
		}
		return nil
	}
	return tr
}

// RefCounterParams sizes RefCounter (64 thread blocks in the paper).
type RefCounterParams struct {
	CUs    int
	Warps  int // warps total
	Rounds int // inc/dec rounds per warp
}

// DefaultRefCounter returns paper-shaped parameters. Increments and
// decrements are warp-wide instructions (every thread adjusts the
// count).
func DefaultRefCounter(s Scale) RefCounterParams {
	return RefCounterParams{CUs: 15, Warps: s.pick(15, 30), Rounds: s.pick(4, 12)}
}

// RefCounter builds Listing 5: every warp increments two shared
// reference counters with quantum RMWs, works, then decrements them in
// the opposite order; the thread seeing zero marks the object with a
// commutative store.
func RefCounter(p RefCounterParams) *trace.Trace {
	tr := trace.New("RC")
	rc1 := word(binsBase, 0)
	rc2 := word(binsBase, 16) // separate lines: two independent counters
	mark := word(flagBase, 0)
	lanes := func(addr uint64) []uint64 {
		out := make([]uint64, warpLanes)
		for i := range out {
			out[i] = addr
		}
		return out
	}
	for w := 0; w < p.Warps; w++ {
		warp := tr.AddWarp(w % p.CUs)
		for i := 0; i < p.Rounds; i++ {
			warp.Atomic(core.Quantum, core.OpInc, 0, lanes(rc1)...)
			warp.Atomic(core.Quantum, core.OpInc, 0, lanes(rc2)...)
			warp.Compute(4)
			warp.Atomic(core.Quantum, core.OpDec, 0, lanes(rc2)...)
			warp.Atomic(core.Quantum, core.OpDec, 0, lanes(rc1)...)
			if i == p.Rounds-1 {
				// Last round: the final releaser marks for deletion.
				warp.AtomicStore(core.Commutative, mark, 1)
			}
		}
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		if read(rc1) != 0 || read(rc2) != 0 {
			return fmt.Errorf("refcounts %d/%d, want 0/0", read(rc1), read(rc2))
		}
		if read(mark) != 1 {
			return fmt.Errorf("mark = %d, want 1", read(mark))
		}
		return nil
	}
	return tr
}

// SeqlocksParams sizes Seqlocks (512 thread blocks in the paper).
type SeqlocksParams struct {
	CUs     int
	Readers int
	Writers int
	Reads   int // read-side critical sections per reader
	Writes  int // write-side critical sections per writer
	Words   int // protected data words
}

// DefaultSeqlocks returns paper-shaped parameters.
func DefaultSeqlocks(s Scale) SeqlocksParams {
	return SeqlocksParams{
		CUs: 15, Readers: s.pick(14, 40), Writers: 2,
		Reads: s.pick(8, 32), Writes: s.pick(4, 16), Words: 4,
	}
}

// Seqlocks builds Listing 6: readers bracket speculative data loads with
// paired sequence reads (the second a read-don't-modify-write); writers
// bump the sequence around speculative stores.
func Seqlocks(p SeqlocksParams) *trace.Trace {
	return seqlocks(p, "SEQ", core.Paired, core.Paired)
}

// SeqlocksRA builds the Section 7 variant: the reader's first sequence
// read uses acquire ordering and the read-don't-modify-write uses
// release ordering, avoiding the full SC fences.
func SeqlocksRA(p SeqlocksParams) *trace.Trace {
	return seqlocks(p, "SEQ-RA", core.Acquire, core.Release)
}

func seqlocks(p SeqlocksParams, name string, firstRead, secondRead core.Class) *trace.Trace {
	tr := trace.New(name)
	seq := word(flagBase, 0)
	dataAddr := func(i int) uint64 { return word(dataBase, i) }
	for r := 0; r < p.Readers; r++ {
		warp := tr.AddWarp(r % p.CUs)
		for i := 0; i < p.Reads; i++ {
			warp.AtomicLoad(firstRead, seq) // seq0
			for d := 0; d < p.Words; d++ {
				warp.AtomicLoad(core.Speculative, dataAddr(d))
			}
			warp.Atomic(secondRead, core.OpAdd, 0, seq) // read-don't-modify-write
			warp.Join()
			warp.Compute(4)
		}
	}
	for w := 0; w < p.Writers; w++ {
		warp := tr.AddWarp((p.Readers + w) % p.CUs)
		for i := 0; i < p.Writes; i++ {
			warp.Atomic(core.Paired, core.OpInc, 0, seq) // odd: update in progress
			for d := 0; d < p.Words; d++ {
				warp.AtomicStore(core.Speculative, dataAddr(d), int64(i+1))
			}
			warp.Atomic(core.Paired, core.OpInc, 0, seq) // even: published
			warp.Compute(8)
		}
	}
	tr.FinalCheck = func(read func(uint64) int64) error {
		got := read(seq)
		want := int64(2 * p.Writers * p.Writes)
		if got != want {
			return fmt.Errorf("seq = %d, want %d", got, want)
		}
		return nil
	}
	return tr
}
