package probe_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rats/internal/core"
	"rats/internal/fault"
	"rats/internal/probe"
	"rats/internal/sim/memsys"
	"rats/internal/sim/system"
	"rats/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// twoWarpTrace is a small deterministic workload touching every probe
// surface: loads (hits and misses), scoped and global atomics, a
// barrier, and enough ops to cross CU boundaries on the NoC.
func twoWarpTrace() *trace.Trace {
	tr := trace.New("two-warp")
	w0 := tr.AddWarp(0)
	w0.Load(core.Data, 0x1000, 0x1040)
	w0.Atomic(core.Paired, core.OpInc, 0, 0x4000)
	w0.Compute(4)
	w0.Load(core.Data, 0x1000) // repeat: should hit
	w0.Barrier()
	w0.Atomic(core.Commutative, core.OpAdd, 2, 0x8000)
	w1 := tr.AddWarp(1)
	w1.Load(core.Data, 0x2000)
	w1.AtomicScoped(trace.ScopeLocal, core.Paired, core.OpInc, 0, 0x4100)
	w1.Barrier()
	w1.Atomic(core.Commutative, core.OpAdd, 3, 0x8000)
	return tr
}

// runWithHub executes the two-warp workload under DeNovo/DRF0 (the
// ownership-rich configuration) with the given hub attached.
func runWithHub(t *testing.T, hub *probe.Hub) *system.Result {
	t.Helper()
	sys := system.New(memsys.Default(memsys.ProtoDeNovo, core.DRF0))
	sys.AttachProbe(hub)
	if err := sys.Load(twoWarpTrace()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChromeTraceGolden pins the exact Chrome trace JSON for the
// two-warp workload. The simulator is deterministic, so any drift in
// emission points or encoding shows up as a golden diff. Regenerate
// with `go test ./internal/probe -run Golden -update`.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	hub := probe.NewHub()
	hub.Attach(probe.NewChromeTrace(&buf))
	runWithHub(t, hub)

	// The output must be well-formed Chrome trace JSON regardless of
	// golden state.
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	golden := filepath.Join("testdata", "chrome_two_warp.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden (%d vs %d bytes); run with -update and review the diff",
			buf.Len(), len(want))
	}
}

// TestIntervalFinalSampleMatchesStats: the last interval sample must be
// the end-of-run aggregate — every counter, not an approximation.
func TestIntervalFinalSampleMatchesStats(t *testing.T) {
	var buf bytes.Buffer
	sink := probe.NewIntervalSink(&buf, probe.FormatCSV)
	hub := probe.NewHub()
	hub.Attach(sink)
	hub.SetSampleInterval(50)
	res := runWithHub(t, hub)

	if sink.Count() < 2 {
		t.Fatalf("expected >=2 samples over %d cycles at interval 50, got %d",
			res.Stats.Cycles, sink.Count())
	}
	if sink.Last() != res.Stats {
		t.Errorf("final sample differs from end-of-run stats\nsample: %+v\nstats:  %+v",
			sink.Last(), res.Stats)
	}
}

// TestIntervalFinalSampleOnFailedRun: when a run dies (here: a wedged
// warp deadlocking the barrier until the watchdog fires), the interval
// sink must still receive a final partial sample, stamped with the cycle
// the diagnostic captured — the tail of the time series is exactly the
// window where a hang's signature lives.
func TestIntervalFinalSampleOnFailedRun(t *testing.T) {
	tr := trace.New("wedged")
	w0 := tr.AddWarp(0)
	w0.Load(core.Data, 0x1000)
	w0.Barrier()
	w1 := tr.AddWarp(1)
	w1.Barrier()

	spec, err := fault.Parse("wedge:warp=1,from=0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	cfg.Faults = spec
	cfg.FaultSeed = 1
	cfg.WatchdogWindow = 5000

	var buf bytes.Buffer
	sink := probe.NewIntervalSink(&buf, probe.FormatCSV)
	hub := probe.NewHub()
	hub.Attach(sink)
	// An interval far beyond the watchdog window: the only sample can be
	// the end-of-run flush.
	hub.SetSampleInterval(1 << 40)

	sys := system.New(cfg)
	sys.AttachProbe(hub)
	if err := sys.Load(tr); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run()
	if err == nil {
		t.Fatal("wedged run completed; expected a watchdog diagnostic")
	}
	var diag *system.DiagnosticError
	if !errors.As(err, &diag) {
		t.Fatalf("error is %T, want *DiagnosticError: %v", err, err)
	}
	if sink.Count() == 0 {
		t.Fatal("failed run flushed no interval samples")
	}
	if got := sink.Last().Cycles; got != diag.Cycle {
		t.Errorf("final sample at cycle %d, diagnostic captured at %d", got, diag.Cycle)
	}
}

// TestStallSumsBounded: per-warp stall intervals are disjoint by
// construction, so each warp's attributed total can never exceed the
// run length.
func TestStallSumsBounded(t *testing.T) {
	sink := probe.NewStallSink()
	hub := probe.NewHub()
	hub.Attach(sink)
	res := runWithHub(t, hub)

	warps := sink.Warps()
	if len(warps) == 0 {
		t.Fatal("no stalls recorded for a workload with misses and barriers")
	}
	for _, w := range warps {
		if tot := sink.WarpTotal(w); tot > res.Stats.Cycles {
			t.Errorf("warp %d attributed %d stall cycles > run length %d", w, tot, res.Stats.Cycles)
		}
	}
	if table := sink.Table(res.Stats.Cycles); table == "" {
		t.Error("empty stall table")
	}
}
