// Package hist provides fixed-allocation, log-bucketed (HDR-style)
// histograms for latency distributions measured in cycles.
//
// Values are bucketed exactly below 2^subBits and log-linearly above:
// each power-of-two octave is split into 2^subBits sub-buckets, bounding
// the relative quantile error at 2^-subBits (~3%) while keeping the whole
// histogram a single fixed array — no allocation on the record path, and
// Merge is a flat array add, so per-run histograms can be folded across a
// sweep cheaply and deterministically.
package hist

import "math/bits"

const (
	subBits  = 5
	subCount = 1 << subBits
	// Buckets 0..subCount-1 hold exact values; each octave >= subBits
	// contributes subCount more.
	numBuckets = (63-subBits)*subCount + subCount
)

// Histogram is a fixed-size log-bucketed histogram. The zero value is
// ready to use, and plain assignment copies it (value semantics), which
// Snapshot-style APIs rely on.
type Histogram struct {
	counts   [numBuckets]int64
	count    int64
	sum      int64
	min, max int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((v >> (uint(exp) - subBits)) & (subCount - 1))
	return (exp-subBits+1)*subCount + sub
}

// upperBound is the largest value that maps into bucket i.
func upperBound(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	block := i / subCount
	sub := int64(i % subCount)
	exp := uint(block + subBits - 1)
	width := int64(1) << (exp - subBits)
	return int64(1)<<exp + (sub+1)*width - 1
}

// Record adds one observation. Negative values are clamped to zero (spans
// are non-negative by construction; the clamp keeps a corrupted input
// from indexing out of range).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all recorded observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest recorded observation (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// upper edge of the bucket holding the rank-⌈q·count⌉ observation,
// clamped to the true max. Exact for values below 2^subBits.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			u := upperBound(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds every observation of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Each calls fn for every non-empty bucket in ascending order with the
// bucket's inclusive upper bound and its (non-cumulative) count.
func (h *Histogram) Each(fn func(upper, count int64)) {
	for i, c := range h.counts {
		if c != 0 {
			fn(upperBound(i), c)
		}
	}
}

// Summary bundles the quantiles a latency table wants.
type Summary struct {
	Count                     int64
	P50, P90, P99, P999, Max  int64
	Mean                      float64
}

// Summarize computes the standard latency summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
		Mean:  h.Mean(),
	}
}

// UpperFor returns the inclusive upper bound of the bucket that would
// hold v — the same edge Each reports — so callers can key per-bucket
// side tables (e.g. exemplars) off observed values.
func UpperFor(v int64) int64 {
	if v < 0 {
		v = 0
	}
	return upperBound(bucketIndex(v))
}
