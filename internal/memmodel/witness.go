package memmodel

import (
	"fmt"
	"strings"

	"rats/internal/core"
	"rats/internal/litmus"
)

// Witness is a concrete SC execution exhibiting an illegal race, with
// enough detail to explain the verdict to a programmer: the interleaving,
// the values transferred, and the racing access pair per category.
type Witness struct {
	Exec *Execution
	Kind RaceKind
	// Pair is the racing event pair (event IDs).
	Pair [2]int
}

// FindWitness searches the SC executions of the (quantum-equivalent)
// program for the first illegal race under the model and returns a
// witness, or nil if the program is legal. Executions stream through a
// sequential enumeration with an early stop, so the search uses bounded
// memory, ends at the first racy execution, and deterministically
// returns the same witness every run (the first in the reduced
// enumerator's branch order).
func FindWitness(p *litmus.Program, m core.Model) (*Witness, error) {
	return FindWitnessWith(p, m, EnumOptions{})
}

// FindWitnessWith is FindWitness with caller-supplied enumeration
// bounds: opts.Ctx, Limit, and TransitionLimit are honored, so a witness
// search on hostile input stays as bounded as the check that preceded
// it. The search-shape fields (Sequential, Quantum, Visit) are owned by
// the witness search and overridden.
func FindWitnessWith(p *litmus.Program, m core.Model, opts EnumOptions) (*Witness, error) {
	kinds := []RaceKind{DataRace}
	if m == core.DRFrlx {
		kinds = RaceKinds()
	}
	var w *Witness
	an := NewAnalyzer()
	opts.Quantum = true
	opts.Sequential = true
	opts.Visit = func(ex *Execution) error {
		a := an.Analyze(ex)
		for _, k := range kinds {
			if prs := a.Races[k]; len(prs) > 0 {
				w = &Witness{Exec: ex, Kind: k, Pair: prs[0]}
				return ErrStop
			}
		}
		return nil
	}
	_, err := Enumerate(p.Under(m), opts)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// describeEvent renders one event with thread, op, and values.
func describeEvent(ex *Execution, id int) string {
	ev := ex.Events[id]
	var val string
	switch {
	case ev.Op.Reads() && ev.Op.Writes():
		val = fmt.Sprintf(" (read %d, wrote %d)", ev.Loaded, ev.Stored)
	case ev.Op.Reads():
		val = fmt.Sprintf(" (read %d)", ev.Loaded)
	case ev.Op.Writes():
		val = fmt.Sprintf(" (wrote %d)", ev.Stored)
	}
	rand := ""
	if ev.Randomized {
		rand = " [quantum-randomized]"
	}
	return fmt.Sprintf("T%d: %v%s%s", ev.Thread, ev.Op, val, rand)
}

// String renders the witness: the SC total order with the racing pair
// marked, the final state, and a one-line diagnosis.
func (w *Witness) String() string {
	var b strings.Builder
	ex := w.Exec
	fmt.Fprintf(&b, "%v between:\n", w.Kind)
	fmt.Fprintf(&b, "  X = %s\n", describeEvent(ex, w.Pair[0]))
	fmt.Fprintf(&b, "  Y = %s\n", describeEvent(ex, w.Pair[1]))
	b.WriteString("witness SC execution (total order):\n")
	for pos, id := range ex.Order {
		mark := "   "
		if id == w.Pair[0] {
			mark = " X "
		}
		if id == w.Pair[1] {
			mark = " Y "
		}
		fmt.Fprintf(&b, "  %2d%s%s\n", pos, mark, describeEvent(ex, id))
	}
	fmt.Fprintf(&b, "final state: %s\n", ex.ResultKey())
	b.WriteString(w.diagnosis())
	return b.String()
}

// diagnosis explains, per race kind, which condition of the paper's
// definition fired.
func (w *Witness) diagnosis() string {
	ex := w.Exec
	x, y := ex.Events[w.Pair[0]], ex.Events[w.Pair[1]]
	switch w.Kind {
	case DataRace:
		return "diagnosis: conflicting accesses unordered by happens-before-1, at least one distinguished as data\n"
	case CommutativeRace:
		if !core.Commutes(x.Op.AOp, x.Op.Operand.Const, y.Op.AOp, y.Op.Operand.Const) {
			return fmt.Sprintf("diagnosis: racing %v and %v do not commute\n", x.Op.AOp, y.Op.AOp)
		}
		return "diagnosis: a racing commutative access's return value is observed by a later instruction\n"
	case NonOrderingRace:
		return "diagnosis: the racy non-ordering edge lies on an ordering path between other conflicting accesses with no valid alternative path\n"
	case QuantumRace:
		q, other := x, y
		if q.Op.Class != core.Quantum {
			q, other = y, x
		}
		return fmt.Sprintf("diagnosis: quantum access to %s races with non-quantum %v access\n", q.Op.Loc, other.Op.Class)
	case SpeculativeRace:
		if x.Op.Writes() && y.Op.Writes() {
			return "diagnosis: two racing stores involve a speculative access\n"
		}
		return "diagnosis: a racy speculative load's value is observed by a later instruction\n"
	}
	return ""
}
