// Command ratsim runs one workload under one configuration and prints the
// timing, event, and energy statistics.
//
// Usage:
//
//	ratsim -workload PR-3 -config DDR [-scale paper] [-energy]
//	ratsim -workload H -config DDR -trace-out run.json -stalls
//	ratsim -workload H -config DDR -spans-out spans.jsonl -latency
//	ratsim -workload H -config DDR -http :6060 -http-linger 30s
//	ratsim -workload H -config GD0 -faults 'delay:p=0.05,max=10;dup:p=0.02' -fault-seed 7
//	ratsim -workload H -config GD0 -faults 'wedge:warp=0,from=0' -watchdog 20000
//	ratsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rats/internal/fault"
	"rats/internal/harness"
	"rats/internal/obs"
	"rats/internal/probe"
	"rats/internal/sim/system"
	"rats/internal/trace"
	"rats/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ratsim:", err)
	os.Exit(1)
}

func main() {
	var (
		workload  = flag.String("workload", "H", "workload short name (see -list)")
		config    = flag.String("config", "GD0", "configuration: GD0, GD1, GDR, DD0, DD1, DDR")
		scaleName = flag.String("scale", "test", "workload scale: test or paper")
		list      = flag.Bool("list", false, "list workloads and exit")
		showEn    = flag.Bool("energy", true, "print the energy breakdown")
		dump      = flag.String("dump", "", "write the generated trace as JSON to this file and exit")
		replay    = flag.String("replay", "", "run a JSON trace file instead of a generated workload")

		traceOut   = flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON timeline to this file")
		metricsOut = flag.String("metrics-out", "", "write interval-sampled counters to this file (.json for JSON, else CSV)")
		metricsInt = flag.Int64("metrics-interval", 1000, "sampling interval in cycles for -metrics-out and -http")
		stalls     = flag.Bool("stalls", false, "print the per-warp stall attribution table")
		spansOut   = flag.String("spans-out", "", "write per-transaction latency spans as JSONL to this file")
		latency    = flag.Bool("latency", false, "print the per-transaction latency table (op class x hit level)")
		httpAddr   = flag.String("http", "", "serve live /metrics, /progress, and pprof on this address, e.g. :6060")
		httpLinger = flag.Duration("http-linger", 0, "keep the -http server up this long after the run finishes")

		faultSpec = flag.String("faults", "", "fault-injection spec, e.g. 'delay:p=0.05,max=10;dup:p=0.02' (see internal/fault)")
		faultSeed = flag.Int64("fault-seed", 1, "PRNG seed for fault injection (same spec+seed = same timing)")
		watchdog  = flag.Int64("watchdog", 0, "liveness watchdog no-progress window in cycles (>0 override, <0 disable, 0 default)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the run (0 = none), e.g. 30s")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println(harness.Table3())
		return
	}
	scale := workloads.Test
	if *scaleName == "paper" {
		scale = workloads.Paper
	}
	cfg, err := harness.ConfigFor(*config)
	if err != nil {
		fatal(err)
	}
	if *faultSpec != "" {
		spec, err := fault.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = spec
		cfg.FaultSeed = *faultSeed
	}
	switch {
	case *watchdog > 0:
		cfg.WatchdogWindow = *watchdog
	case *watchdog < 0:
		cfg.WatchdogWindow = 0
	}
	var tr *trace.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.DecodeJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		entry := workloads.ByName(*workload)
		if entry == nil {
			fmt.Fprintf(os.Stderr, "ratsim: unknown workload %q (use -list)\n", *workload)
			os.Exit(1)
		}
		tr = entry.Build(scale)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.EncodeJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d warps, %d ops)\n", *dump, len(tr.Warps), tr.NumOps())
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Observability sinks: any of these flags attaches a probe hub.
	var (
		hub        *probe.Hub
		stallSink  *probe.StallSink
		spanWriter *probe.SpanWriter
		latSink    *probe.LatencySink
		server     *obs.Server
		progress   *obs.Progress
		closers    []*os.File
	)
	if *traceOut != "" || *metricsOut != "" || *stalls || *spansOut != "" || *latency || *httpAddr != "" {
		hub = probe.NewHub()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			closers = append(closers, f)
			hub.Attach(probe.NewChromeTrace(f))
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			closers = append(closers, f)
			format := probe.FormatCSV
			if strings.HasSuffix(*metricsOut, ".json") {
				format = probe.FormatJSON
			}
			hub.Attach(probe.NewIntervalSink(f, format))
			hub.SetSampleInterval(*metricsInt)
		}
		if *stalls {
			stallSink = probe.NewStallSink()
			hub.Attach(stallSink)
		}
		if *spansOut != "" {
			f, err := os.Create(*spansOut)
			if err != nil {
				fatal(err)
			}
			closers = append(closers, f)
			spanWriter = probe.NewSpanWriter(f)
			hub.Attach(spanWriter)
		}
		if *latency || *httpAddr != "" {
			latSink = probe.NewLatencySink()
			hub.Attach(latSink)
		}
		if *httpAddr != "" {
			gauge := &obs.StatsGauge{}
			hub.Attach(gauge)
			hub.SetSampleInterval(*metricsInt)
			progress = obs.NewProgress()
			server = obs.NewServer()
			server.SetRunInfo("workload", *workload)
			server.SetRunInfo("config", *config)
			server.SetRunInfo("scale", *scaleName)
			server.SetGauge(gauge)
			server.SetLatency(latSink)
			server.SetProgress(progress)
			addr, err := server.Start(*httpAddr)
			if err != nil {
				fatal(err)
			}
			defer server.Close()
			fmt.Printf("observability server on http://%s (/metrics /progress /debug/pprof)\n", addr)
		}
	}

	fmt.Printf("running %s (%d warps, %d ops) under %s/%s\n",
		tr.Name, len(tr.Warps), tr.NumOps(), cfg.Protocol, cfg.Model)
	sys := system.New(cfg)
	if hub != nil {
		sys.AttachProbe(hub)
	}
	if err := sys.Load(tr); err != nil {
		fatal(err)
	}
	if *timeout > 0 {
		t := time.AfterFunc(*timeout, func() { sys.Abort(fmt.Sprintf("wall-clock timeout %s exceeded", *timeout)) })
		defer t.Stop()
	}
	linger := func() {
		if server != nil && *httpLinger > 0 {
			fmt.Printf("lingering %s for /metrics scrapes\n", *httpLinger)
			time.Sleep(*httpLinger)
		}
	}
	if progress != nil {
		progress.Start(tr.Name, *config)
	}
	res, err := sys.Run()
	if err != nil {
		if progress != nil {
			progress.Fail(tr.Name, *config, err)
		}
		linger()
		fatal(err)
	}
	if progress != nil {
		progress.Done(tr.Name, *config, res.Stats.Cycles)
	}
	if counts, ok := sys.FaultCounts(); ok {
		fmt.Println("injected faults:", counts.String())
	}
	if hub != nil {
		if err := hub.Close(); err != nil {
			fatal(err)
		}
		for _, f := range closers {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Println(res.Stats.String())
	if stallSink != nil {
		fmt.Println(stallSink.Table(res.Stats.Cycles))
	}
	if latSink != nil && *latency {
		fmt.Println("per-transaction latency (cycles):")
		fmt.Print(latSink.Table())
	}
	if *showEn {
		fmt.Println("energy breakdown (pJ):")
		for _, c := range res.Energy.Components() {
			fmt.Printf("  %-10s %16.0f\n", c.Name, c.Value)
		}
		fmt.Printf("  %-10s %16.0f\n", "total", res.Energy.Total())
	}
	if *traceOut != "" {
		fmt.Printf("wrote timeline %s (open in ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsOut != "" {
		fmt.Printf("wrote interval metrics %s (every %d cycles)\n", *metricsOut, *metricsInt)
	}
	if spanWriter != nil {
		fmt.Printf("wrote %d latency spans to %s\n", spanWriter.Completed(), *spansOut)
	}
	linger()

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}
