package system

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
)

// randomCommutativeTrace builds a random workload whose functional result
// is order-independent (commutative adds only), so every protocol and
// model must produce identical final values.
func randomCommutativeTrace(seed int64) (*trace.Trace, map[uint64]int64) {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(fmt.Sprintf("random-%d", seed))
	expected := map[uint64]int64{}
	nwarps := 2 + rng.Intn(6)
	naddrs := 1 + rng.Intn(5)
	addr := func(i int) uint64 { return 0x4000 + uint64(i)*68 } // cross-line spread
	classes := []core.Class{core.Paired, core.Unpaired, core.Commutative, core.Quantum}
	for w := 0; w < nwarps; w++ {
		warp := tr.AddWarp(rng.Intn(8))
		nops := 1 + rng.Intn(12)
		for i := 0; i < nops; i++ {
			switch rng.Intn(4) {
			case 0:
				warp.Load(core.Data, 0x100000+uint64(rng.Intn(64))*64)
			case 1:
				warp.Compute(rng.Intn(8))
			default:
				a := addr(rng.Intn(naddrs))
				v := int64(1 + rng.Intn(9))
				c := classes[rng.Intn(len(classes))]
				warp.Atomic(c, core.OpAdd, v, a)
				expected[a] += v
			}
		}
	}
	return tr, expected
}

// TestCrossConfigFunctionalEquivalence: for random commutative workloads,
// all six configurations compute identical final memory values — protocol
// and model change timing, never results.
func TestCrossConfigFunctionalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		var finals []map[uint64]int64
		tr0, expected := randomCommutativeTrace(seed)
		_ = tr0
		for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
			for _, m := range core.Models() {
				tr, _ := randomCommutativeTrace(seed) // fresh trace per run
				res, err := RunTrace(memsys.Default(proto, m), tr)
				if err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				got := map[uint64]int64{}
				for a := range expected {
					got[a] = res.Read(a)
				}
				finals = append(finals, got)
			}
		}
		for a, want := range expected {
			for i, got := range finals {
				if got[a] != want {
					t.Logf("seed %d config %d addr %#x: got %d want %d", seed, i, a, got[a], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// contentionFreeTrace gives every warp a private address set, so
// relaxation cannot create cross-warp contention.
func contentionFreeTrace(seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(fmt.Sprintf("cf-%d", seed))
	nwarps := 2 + rng.Intn(5)
	for w := 0; w < nwarps; w++ {
		warp := tr.AddWarp(w % 8)
		base := 0x4000 + uint64(w)*0x10000
		nops := 2 + rng.Intn(10)
		for i := 0; i < nops; i++ {
			switch rng.Intn(3) {
			case 0:
				warp.Compute(rng.Intn(6))
			default:
				warp.Atomic(core.Commutative, core.OpAdd, 1, base+uint64(rng.Intn(4))*64)
			}
		}
	}
	return tr
}

// TestWeakerModelNeverSlowerProperty: on contention-free workloads
// (per-warp private addresses), DRFrlx is never meaningfully slower than
// DRF0 under the same protocol. (Under contention the paper itself
// observes DRFrlx losses — PR-3 — so the property holds only
// contention-free.)
func TestWeakerModelNeverSlowerProperty(t *testing.T) {
	f := func(seed int64) bool {
		for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
			tr0 := contentionFreeTrace(seed)
			r0, err := RunTrace(memsys.Default(proto, core.DRF0), tr0)
			if err != nil {
				return false
			}
			trR := contentionFreeTrace(seed)
			rR, err := RunTrace(memsys.Default(proto, core.DRFrlx), trR)
			if err != nil {
				return false
			}
			// Small tolerance for scheduling jitter.
			if float64(rR.Stats.Cycles) > 1.05*float64(r0.Stats.Cycles)+20 {
				t.Logf("seed %d %v: DRFrlx %d vs DRF0 %d", seed, proto, rR.Stats.Cycles, r0.Stats.Cycles)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsConservation: basic accounting invariants hold on a random
// workload — hits+misses == accesses (where tracked), atomics placed at
// exactly one level, L2 hits+misses == lookups.
func TestStatsConservation(t *testing.T) {
	f := func(seed int64) bool {
		tr, _ := randomCommutativeTrace(seed)
		for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
			res, err := RunTrace(memsys.Default(proto, core.DRFrlx), tr)
			if err != nil {
				return false
			}
			s := res.Stats
			if s.Atomics != s.AtomicsAtL1+s.AtomicsAtL2 {
				return false
			}
			if proto == memsys.ProtoGPU && s.AtomicsAtL1 != 0 {
				return false
			}
			if proto == memsys.ProtoDeNovo && s.AtomicsAtL2 != 0 {
				return false
			}
			if s.L2Hits+s.L2Misses > s.L2Accesses {
				return false
			}
			if s.Cycles <= 0 {
				return false
			}
			tr, _ = randomCommutativeTrace(seed) // rebuild: traces are single-use
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
