package probe_test

import (
	"testing"

	"rats/internal/probe"
)

func TestActiveOrNilFolds(t *testing.T) {
	var nilHub *probe.Hub
	if nilHub.ActiveOrNil() != nil {
		t.Error("nil hub must stay nil")
	}
	h := probe.NewHub()
	if h.ActiveOrNil() != nil {
		t.Error("empty hub must fold to nil")
	}
	h.SetSampleInterval(100)
	if h.ActiveOrNil() == nil {
		t.Error("sampling hub must stay active")
	}
	h2 := probe.NewHub()
	h2.Attach(&probe.CountingSink{})
	if h2.ActiveOrNil() == nil {
		t.Error("hub with sink must stay active")
	}
}
