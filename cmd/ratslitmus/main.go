// Command ratslitmus runs the litmus suite through both the
// programmer-centric race-classification model (Listing 7 of the paper)
// and the system-centric relaxed-execution model, reporting per-test
// verdicts under DRF0, DRF1, and DRFrlx, plus the Theorem 3.1 validation.
//
// Usage:
//
//	ratslitmus                   # full suite
//	ratslitmus -j 8              # suite with 8 parallel checkers
//	ratslitmus -mode materialize # two-phase reference pipeline
//	ratslitmus -mode solve       # constraint-solving backend; with -diff
//	                             # every verdict is cross-checked against
//	                             # streaming enumeration (exit 1 on any
//	                             # divergence)
//	ratslitmus -http :6060       # serve live /checks + /metrics during
//	                             # the suite run
//	ratslitmus -telemetry-out f  # write deterministic per-check JSONL
//	ratslitmus -table1           # Table 1 (use cases and applications)
//	ratslitmus -theorem          # Theorem 3.1 validation only
//	ratslitmus -file t.litmus    # check a litmus file (with -witness for
//	                             # a concrete racy execution)
//	ratslitmus -diff             # stable machine-diffable catalog verdicts
//	ratslitmus -serve-url URL    # check against a running ratsserve; the
//	                             # -diff output is byte-identical to a
//	                             # local run over the same programs
//	ratslitmus -list             # print catalog case names
//	ratslitmus -case IRIW -diff  # one catalog case
//
// Exit codes: 0 all verdicts produced and matched; 1 mismatch, checker
// failure, or I/O error; 2 parse error (bad program text or flags);
// 3 validation error (program parsed but is structurally invalid);
// 4 deadline or execution/transition budget exhausted.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"rats/internal/core"
	"rats/internal/harness"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"

	// Registers the constraint-solving backend behind -mode solve.
	_ "rats/internal/memmodel/solve"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 and exit")
		theorem  = flag.Bool("theorem", false, "run only the Theorem 3.1 validation")
		file     = flag.String("file", "", "check a single litmus file instead of the suite")
		witness  = flag.Bool("witness", false, "with -file: print a witness execution for the first illegal race")
		infer    = flag.Bool("infer", false, "with -file: infer the cheapest legal atomic labelling")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "suite-level parallelism (test cases checked concurrently)")
		mode     = flag.String("mode", "streaming", "analysis pipeline: streaming|materialize|solve")
		httpAddr = flag.String("http", "", "serve live observability (/checks, /metrics, /progress, /buildinfo) on this address during the suite run")
		linger   = flag.Duration("http-linger", 0, "with -http: keep serving this long after the suite finishes")
		telOut   = flag.String("telemetry-out", "", "write deterministic per-check telemetry JSONL to this file")
		serveURL = flag.String("serve-url", "", "check via a running ratsserve at this base URL instead of checking locally")
		diffMode = flag.Bool("diff", false, "print stable machine-diffable verdicts (name/model/legal/races/sc_results) instead of the human report")
		caseName = flag.String("case", "", "check one named catalog case (see -list) instead of the whole suite")
		listOnly = flag.Bool("list", false, "print catalog case names and exit")
		deadline = flag.Duration("deadline", 0, "per-check wall-time budget for -file/-case/-diff checks (0 = none locally, server default via -serve-url); trips exit code 4")
	)
	flag.Parse()

	opts, err := pipelineOptions(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(exitParse)
	}

	if *listOnly {
		for _, tc := range litmus.Suite() {
			fmt.Println(tc.Prog.Name)
		}
		return
	}
	if *file != "" {
		os.Exit(checkFile(*file, *witness, *infer, *serveURL, *diffMode, *deadline, opts))
	}
	if *caseName != "" || *diffMode || *serveURL != "" {
		os.Exit(runCatalog(*caseName, *serveURL, *jobs, *diffMode, *deadline, opts))
	}

	suite := litmus.Suite()
	if *table1 {
		fmt.Println("Table 1: GPU relaxed atomic use cases")
		fmt.Printf("  %-28s %s\n", "category", "application")
		for _, tc := range suite {
			if tc.UseCase != "" {
				fmt.Printf("  %-28s %s\n", tc.UseCase, tc.App)
			}
		}
		return
	}

	// Sweep-level integration: the obs server and the JSONL artifact both
	// hang off a telemetry registry; either flag turns instrumentation on.
	runOpts := &harness.RunOptions{}
	var srv *obs.Server
	if *httpAddr != "" || *telOut != "" {
		runOpts.Checks = telemetry.NewRegistry()
	}
	if *httpAddr != "" {
		runOpts.Progress = obs.NewProgress()
		srv = obs.NewServer()
		srv.SetRunInfo("suite", "litmus")
		srv.SetRunInfo("mode", *mode)
		srv.SetChecks(runOpts.Checks)
		srv.SetProgress(runOpts.Progress)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ratslitmus: serving /checks /metrics /progress /buildinfo on http://%s\n", addr)
	}
	var telFile *os.File
	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		telFile = f
		runOpts.TelemetryOut = f
	}

	// Cases are checked on the sweep's worker pool and reported in suite
	// order, so the output is deterministic and identical to a serial run
	// regardless of -j.
	results, err := harness.LitmusSweep(suite, harness.LitmusSweepOptions{
		Workers:     *jobs,
		TheoremOnly: *theorem,
		Check:       opts,
		Run:         runOpts,
	})
	if telFile != nil {
		if cerr := telFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", cerr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}

	fail := 0
	for _, r := range results {
		out, nfail := renderCase(r, *theorem)
		fmt.Print(out)
		fail += nfail
	}
	if srv != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "ratslitmus: suite finished; serving for another %s\n", *linger)
		time.Sleep(*linger)
	}
	if fail > 0 {
		fmt.Printf("\n%d mismatches\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall litmus verdicts match and Theorem 3.1 holds on every legal test")
}

// pipelineOptions maps the -mode flag onto CheckOptions.
func pipelineOptions(mode string) (memmodel.CheckOptions, error) {
	switch mode {
	case "streaming":
		return memmodel.CheckOptions{}, nil
	case "materialize":
		return memmodel.CheckOptions{Materialize: true}, nil
	case "solve":
		return memmodel.CheckOptions{Mode: memmodel.ModeSolve}, nil
	}
	return memmodel.CheckOptions{}, fmt.Errorf("unknown -mode %q (want streaming, materialize, or solve)", mode)
}

// renderCase formats one sweep result as the per-case report, returning
// it with the mismatch count.
func renderCase(r harness.LitmusCaseResult, theoremOnly bool) (string, int) {
	var b strings.Builder
	fail := 0
	tc := r.Case
	if !theoremOnly {
		fmt.Fprintf(&b, "%-26s %s\n", tc.Prog.Name, tc.Notes)
		for i, m := range core.Models() {
			v := r.Verdicts[i]
			status := "ok"
			if v.Legal != tc.Legal[i] {
				status = "MISMATCH"
				fail++
			}
			fmt.Fprintf(&b, "  %-8s legal=%-5v expected=%-5v %-9s %s\n",
				m, v.Legal, tc.Legal[i], status, raceSummary(v))
		}
	}
	rep := r.Theorem
	ok := !rep.Legal || rep.SystemSC
	status := "theorem holds"
	if !ok {
		status = "THEOREM VIOLATED"
		fail++
	}
	fmt.Fprintf(&b, "  %-8s system results=%d SC results=%d: %s\n", "sys", rep.SystemCount, rep.SCCount, status)
	return b.String(), fail
}

func raceSummary(v *memmodel.Verdict) string {
	if v.Legal {
		return ""
	}
	out := ""
	for _, k := range memmodel.RaceKinds() {
		if n := len(v.Races[k]); n > 0 {
			if out != "" {
				out += ", "
			}
			out += fmt.Sprintf("%d %s(s)", n, k)
		}
	}
	return out
}

// checkFile parses and checks one litmus file under all three models,
// locally or through -serve-url, and returns the process exit code.
// Parse, validation, and budget failures get distinct codes so callers
// can script against the difference (see the package comment).
func checkFile(path string, witness, infer bool, serveURL string, diffMode bool, deadline time.Duration, opts memmodel.CheckOptions) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		return exitCheck
	}
	if serveURL != "" {
		cl := newServeClient(serveURL, deadline, opts.Mode)
		for _, m := range core.Models() {
			resp, code, err := cl.check(string(src), m.String(), witness)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ratslitmus:", err)
				return code
			}
			if diffMode {
				fmt.Print(diffText(resp.Name, resp.Model, resp.Legal, resp.Races, resp.SCResults))
			} else {
				fmt.Printf("%-26s %-8s legal=%-5v cached=%v\n", resp.Name, resp.Model, resp.Legal, resp.Cached)
				if resp.Witness != "" {
					fmt.Println(resp.Witness)
				}
			}
		}
		return exitOK
	}
	p, err := litmus.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		return classifyLocal(err, true)
	}
	for _, m := range core.Models() {
		if diffMode {
			out, code, err := localDiffText(p, m, deadline, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ratslitmus:", err)
				return code
			}
			fmt.Print(out)
			continue
		}
		mopts, cancel := withDeadline(opts, deadline)
		v, err := memmodel.CheckProgramWith(p, m, mopts)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			return classifyLocal(err, false)
		}
		fmt.Println(v.Summary())
		if witness && !v.Legal {
			w, err := memmodel.FindWitness(p, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ratslitmus:", err)
				return classifyLocal(err, false)
			}
			if w != nil {
				fmt.Println(w)
			}
		}
	}
	if diffMode {
		return exitOK
	}
	if infer {
		fmt.Println("\nannotatable sites:")
		for i, s := range memmodel.Sites(p) {
			fmt.Printf("  %d: %s\n", i, s)
		}
		labels, err := memmodel.InferLabels(p, memmodel.InferOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			return exitCheck
		}
		if len(labels) == 0 {
			fmt.Println("no legal labelling exists (data races?)")
		} else {
			fmt.Printf("minimum-cost legal labellings (%d):\n", len(labels))
			for _, l := range labels {
				fmt.Println("  ", l)
			}
		}
	}

	rep, err := memmodel.ValidateTheorem(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		return classifyLocal(err, false)
	}
	if rep.Legal {
		if rep.SystemSC {
			fmt.Println("system model: all relaxed executions SC (Theorem 3.1 holds)")
		} else {
			fmt.Println("system model: THEOREM VIOLATED — relaxed executions escape SC")
		}
	} else {
		fmt.Printf("system model: %d reachable results (illegal program; %d outside SC)\n",
			rep.SystemCount, len(rep.NonSCResults))
	}
	return exitOK
}
