package memsys

import "rats/internal/sim/noc"

// deferKind selects what a Deferred does when it fires.
type deferKind uint8

const (
	// deferFn invokes an arbitrary callback (cold paths: injected L2
	// stall storms, deferred ownership yields).
	deferFn deferKind = iota
	// deferComplete completes txn at l1 with the recorded value.
	deferComplete
	// deferCompleteRead completes txn at l1 with the functional value of
	// its address read at fire time (load completions).
	deferCompleteRead
	// deferLocalAtomic performs a DeNovo/local-scope atomic at l1.
	deferLocalAtomic
	// deferL2Atomic performs a GPU-coherence atomic at the l2 bank.
	deferL2Atomic
)

// Deferred is a scheduled continuation handed to Env.At. The hot-path
// continuations — transaction completions and atomic performs — are
// expressed as tagged fields on this by-value struct instead of
// closures, so scheduling them allocates nothing; only the cold paths
// (fault-injected stalls, ownership-yield races) pay for a closure via
// the fn case. Drivers (the system event loop, test rigs) just store the
// value and call Fire at the scheduled cycle.
type Deferred struct {
	kind  deferKind
	fn    func(int64)
	l1    *L1
	l2    *L2Bank
	txn   *Txn
	value int64
	pkt   noc.Payload
}

// Fire runs the continuation at the given cycle.
func (d *Deferred) Fire(cycle int64) {
	switch d.kind {
	case deferFn:
		d.fn(cycle)
	case deferComplete:
		d.l1.complete(cycle, d.txn, d.value)
	case deferCompleteRead:
		d.l1.complete(cycle, d.txn, d.l1.env.Read(d.txn.Addr))
	case deferLocalAtomic:
		d.l1.fireLocalAtomic(cycle, d.txn)
	case deferL2Atomic:
		d.l2.fireAtomic(cycle, d.pkt)
	}
}

// deferCall wraps a plain callback (cold paths only — it allocates the
// closure like any func value).
func deferCall(fn func(int64)) Deferred { return Deferred{kind: deferFn, fn: fn} }
