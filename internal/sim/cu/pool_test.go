package cu

import (
	"testing"

	"rats/internal/core"
	"rats/internal/trace"
)

// TestTxnPoolRecycles pins the free-list behaviour: after a warp's ops
// complete, the pool holds the recycled transactions and reissues them.
func TestTxnPoolRecycles(t *testing.T) {
	h := newHarness(core.DRFrlx)
	w := &trace.Warp{CU: 0}
	for i := 0; i < 8; i++ {
		w.Load(core.Data, uint64(0x1000*(i+1)))
		w.Join()
	}
	h.cu.AddWarp(w)
	h.runUntilDone(t, 5000)
	if n := len(h.cu.txnFree); n == 0 {
		t.Fatal("free list empty after completions")
	}
	if h.txn != 8 {
		t.Fatalf("issued %d txns", h.txn)
	}
	// Serialised loads: at most one in flight, so the pool should have
	// served all but the first from recycled transactions.
	if n := len(h.cu.txnFree); n > 2 {
		t.Fatalf("pool grew to %d entries for serialised loads", n)
	}
}
