package core

import (
	"testing"
	"testing/quick"
)

func TestClassStringRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
}

func TestParseClassAliases(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
	}{
		{"seq_cst", Paired},
		{"sc", Paired},
		{"nonordering", NonOrdering},
		{"non_ordering", NonOrdering},
	} {
		got, err := ParseClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) should fail")
	}
}

func TestClassPredicates(t *testing.T) {
	if Data.IsAtomic() {
		t.Error("Data must not be atomic")
	}
	for _, c := range Classes()[1:] {
		if !c.IsAtomic() {
			t.Errorf("%v must be atomic", c)
		}
	}
	relaxed := map[Class]bool{Commutative: true, NonOrdering: true, Quantum: true, Speculative: true}
	for _, c := range Classes() {
		if c.IsRelaxed() != relaxed[c] {
			t.Errorf("%v.IsRelaxed() = %v, want %v", c, c.IsRelaxed(), relaxed[c])
		}
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	if Class(200).Valid() {
		t.Error("Class(200) should be invalid")
	}
}

func TestModelEffective(t *testing.T) {
	// DRF0 collapses every atomic to paired.
	for _, c := range Classes() {
		eff := DRF0.Effective(c)
		if c == Data && eff != Data {
			t.Errorf("DRF0.Effective(Data) = %v", eff)
		}
		if c != Data && eff != Paired {
			t.Errorf("DRF0.Effective(%v) = %v, want Paired", c, eff)
		}
	}
	// DRF1 keeps paired, collapses relaxed to unpaired.
	if got := DRF1.Effective(Paired); got != Paired {
		t.Errorf("DRF1.Effective(Paired) = %v", got)
	}
	for _, c := range []Class{Unpaired, Commutative, NonOrdering, Quantum, Speculative} {
		if got := DRF1.Effective(c); got != Unpaired {
			t.Errorf("DRF1.Effective(%v) = %v, want Unpaired", c, got)
		}
	}
	// DRFrlx is the identity.
	for _, c := range Classes() {
		if got := DRFrlx.Effective(c); got != c {
			t.Errorf("DRFrlx.Effective(%v) = %v", c, got)
		}
	}
}

// TestModelMonotonicity: moving to a weaker model never adds consistency
// actions — the core soundness property the simulator relies on.
func TestModelMonotonicity(t *testing.T) {
	for _, c := range Classes() {
		b0 := DRF0.Behavior(c)
		b1 := DRF1.Behavior(c)
		br := DRFrlx.Behavior(c)
		if c == Data {
			continue
		}
		if b1.InvalidateOnLoad && !b0.InvalidateOnLoad {
			t.Errorf("%v: DRF1 invalidates but DRF0 does not", c)
		}
		if br.InvalidateOnLoad && !b1.InvalidateOnLoad {
			t.Errorf("%v: DRFrlx invalidates but DRF1 does not", c)
		}
		if b1.FlushOnStore && !b0.FlushOnStore {
			t.Errorf("%v: DRF1 flushes but DRF0 does not", c)
		}
		if br.FlushOnStore && !b1.FlushOnStore {
			t.Errorf("%v: DRFrlx flushes but DRF1 does not", c)
		}
		if b1.Overlap < b0.Overlap || br.Overlap < b1.Overlap {
			t.Errorf("%v: overlap not monotone: %v %v %v", c, b0.Overlap, b1.Overlap, br.Overlap)
		}
	}
}

func TestBehaviorPaired(t *testing.T) {
	for _, m := range Models() {
		b := m.Behavior(Paired)
		if !b.InvalidateOnLoad || !b.FlushOnStore || b.Overlap != OverlapNone {
			t.Errorf("%v: paired behaviour %+v must be full SC atomic", m, b)
		}
	}
}

func TestBenefitsTableMatchesPaper(t *testing.T) {
	// Table 4 of the paper: rows are (DRF0, DRF1, DRFrlx).
	want := [][3]bool{
		{false, true, true},  // avoid cache invalidations
		{false, true, true},  // avoid store buffer flushes
		{false, false, true}, // overlap atomics
	}
	got := BenefitsTable()
	if len(got) != len(want) {
		t.Fatalf("BenefitsTable has %d rows, want %d", len(got), len(want))
	}
	for i, row := range got {
		if row.Has != want[i] {
			t.Errorf("row %q = %v, want %v", row.Name, row.Has, want[i])
		}
	}
}

func TestAtomicOpApply(t *testing.T) {
	for _, tc := range []struct {
		op                     AtomicOp
		old, operand, expected int64
		want                   int64
	}{
		{OpLoad, 7, 99, 0, 7},
		{OpStore, 7, 99, 0, 99},
		{OpAdd, 7, 3, 0, 10},
		{OpSub, 7, 3, 0, 4},
		{OpInc, 7, 0, 0, 8},
		{OpDec, 7, 0, 0, 6},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpMin, 7, 3, 0, 3},
		{OpMin, 3, 7, 0, 3},
		{OpMax, 7, 3, 0, 7},
		{OpMax, 3, 7, 0, 7},
		{OpExchange, 7, 99, 0, 99},
		{OpCAS, 7, 99, 7, 99},
		{OpCAS, 7, 99, 8, 7},
	} {
		if got := tc.op.Apply(tc.old, tc.operand, tc.expected); got != tc.want {
			t.Errorf("%v.Apply(%d,%d,%d) = %d, want %d", tc.op, tc.old, tc.operand, tc.expected, got, tc.want)
		}
	}
}

// TestCommutesSound: whenever Commutes says yes, applying the two
// operations in either order must produce the same final value, for
// arbitrary old values and operands (property-based, testing/quick).
func TestCommutesSound(t *testing.T) {
	ops := []AtomicOp{OpStore, OpAdd, OpSub, OpInc, OpDec, OpAnd, OpOr, OpXor, OpMin, OpMax, OpExchange}
	f := func(oi, oj uint8, old, a, b int64) bool {
		opX := ops[int(oi)%len(ops)]
		opY := ops[int(oj)%len(ops)]
		if !Commutes(opX, a, opY, b) {
			return true // nothing claimed
		}
		xy := opY.Apply(opX.Apply(old, a, 0), b, 0)
		yx := opX.Apply(opY.Apply(old, b, 0), a, 0)
		return xy == yx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCommutesCases(t *testing.T) {
	if !Commutes(OpInc, 0, OpAdd, 5) {
		t.Error("inc and add must commute")
	}
	if !Commutes(OpAdd, 2, OpSub, 9) {
		t.Error("add and sub must commute")
	}
	if Commutes(OpAdd, 1, OpMax, 1) {
		t.Error("add and max must not commute")
	}
	if Commutes(OpLoad, 0, OpAdd, 1) {
		t.Error("load never commutes (not a modifying op)")
	}
	if !Commutes(OpStore, 4, OpStore, 4) {
		t.Error("stores of equal values commute")
	}
	if Commutes(OpStore, 4, OpStore, 5) {
		t.Error("stores of different values must not commute")
	}
	if Commutes(OpCAS, 1, OpCAS, 1) {
		t.Error("CAS must not be treated as commutative")
	}
}

func TestModelStringParse(t *testing.T) {
	for _, m := range Models() {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("TSO"); err == nil {
		t.Error("ParseModel(TSO) should fail")
	}
}

func TestOpPredicates(t *testing.T) {
	if OpLoad.Writes() || !OpLoad.Reads() || OpLoad.IsRMW() {
		t.Error("load predicates wrong")
	}
	if !OpStore.Writes() || OpStore.Reads() || OpStore.IsRMW() {
		t.Error("store predicates wrong")
	}
	for _, op := range []AtomicOp{OpAdd, OpSub, OpInc, OpDec, OpAnd, OpOr, OpXor, OpMin, OpMax, OpExchange, OpCAS} {
		if !op.IsRMW() || !op.Writes() || !op.Reads() {
			t.Errorf("%v must be a full RMW", op)
		}
	}
}

func TestAcquireReleaseExtension(t *testing.T) {
	if !Acquire.OrdersLikePaired() || !Release.OrdersLikePaired() || Unpaired.OrdersLikePaired() {
		t.Error("OrdersLikePaired wrong")
	}
	// DRF0/DRF1 strengthen the extension classes to paired.
	for _, m := range []Model{DRF0, DRF1} {
		if m.Effective(Acquire) != Paired || m.Effective(Release) != Paired {
			t.Errorf("%v must strengthen acquire/release to paired", m)
		}
	}
	// Under DRFrlx: acquire invalidates without flushing; release flushes
	// without invalidating; neither pays the full SC fence.
	a := DRFrlx.Behavior(Acquire)
	if !a.InvalidateOnLoad || a.FlushOnStore || a.Overlap != OverlapAtomicSerial {
		t.Errorf("acquire behaviour %+v", a)
	}
	r := DRFrlx.Behavior(Release)
	if r.InvalidateOnLoad || !r.FlushOnStore || r.Overlap != OverlapAtomicSerial {
		t.Errorf("release behaviour %+v", r)
	}
}
