// Package rel implements the small relational algebra over execution
// events that the Herd memory-model tool exposes (union, intersection,
// difference, sequential composition, transitive closure, inverses,
// cartesian products of event sets). Relations are dense boolean matrices;
// litmus executions have at most a few dozen events, so density is the
// right trade-off.
package rel

import "fmt"

// Rel is a binary relation over events 0..n-1.
type Rel struct {
	n int
	m []bool
}

// New returns an empty relation over n events.
func New(n int) Rel { return Rel{n: n, m: make([]bool, n*n)} }

// Identity returns the identity relation over n events.
func Identity(n int) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		r.Set(i, i)
	}
	return r
}

// FromPairs builds a relation from explicit (i, j) pairs.
func FromPairs(n int, pairs [][2]int) Rel {
	r := New(n)
	for _, p := range pairs {
		r.Set(p[0], p[1])
	}
	return r
}

// Cross returns the relation {(i, j) : a[i] && b[j]} — Herd's set product
// (e.g. PairedW * PairedR).
func Cross(a, b []bool) Rel {
	if len(a) != len(b) {
		panic("rel: Cross on sets of different sizes")
	}
	r := New(len(a))
	for i, ai := range a {
		if !ai {
			continue
		}
		for j, bj := range b {
			if bj {
				r.Set(i, j)
			}
		}
	}
	return r
}

// Size returns the number of events the relation ranges over.
func (r Rel) Size() int { return r.n }

// Set adds the pair (i, j).
func (r Rel) Set(i, j int) { r.m[i*r.n+j] = true }

// Clear removes the pair (i, j).
func (r Rel) Clear(i, j int) { r.m[i*r.n+j] = false }

// Has reports whether (i, j) is in the relation.
func (r Rel) Has(i, j int) bool { return r.m[i*r.n+j] }

// Clone returns a deep copy.
func (r Rel) Clone() Rel {
	c := New(r.n)
	copy(c.m, r.m)
	return c
}

func (r Rel) check(o Rel) {
	if r.n != o.n {
		panic(fmt.Sprintf("rel: size mismatch %d vs %d", r.n, o.n))
	}
}

// Union returns r ∪ o.
func (r Rel) Union(o Rel) Rel {
	r.check(o)
	c := r.Clone()
	for i, v := range o.m {
		if v {
			c.m[i] = true
		}
	}
	return c
}

// Inter returns r ∩ o.
func (r Rel) Inter(o Rel) Rel {
	r.check(o)
	c := New(r.n)
	for i := range c.m {
		c.m[i] = r.m[i] && o.m[i]
	}
	return c
}

// Diff returns r \ o.
func (r Rel) Diff(o Rel) Rel {
	r.check(o)
	c := New(r.n)
	for i := range c.m {
		c.m[i] = r.m[i] && !o.m[i]
	}
	return c
}

// Compose returns the sequential composition r ; o
// ({(i, k) : ∃j. r(i,j) ∧ o(j,k)}).
func (r Rel) Compose(o Rel) Rel {
	r.check(o)
	c := New(r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if !r.m[i*r.n+j] {
				continue
			}
			for k := 0; k < r.n; k++ {
				if o.m[j*r.n+k] {
					c.m[i*r.n+k] = true
				}
			}
		}
	}
	return c
}

// Inverse returns r⁻¹.
func (r Rel) Inverse() Rel {
	c := New(r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				c.Set(j, i)
			}
		}
	}
	return c
}

// TransClosure returns r⁺ (irreflexive transitive closure) via
// Floyd–Warshall reachability.
func (r Rel) TransClosure() Rel {
	c := r.Clone()
	n := c.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !c.m[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if c.m[k*n+j] {
					c.m[i*n+j] = true
				}
			}
		}
	}
	return c
}

// ReflTransClosure returns r* = r⁺ ∪ id.
func (r Rel) ReflTransClosure() Rel {
	return r.TransClosure().Union(Identity(r.n))
}

// Restrict keeps only pairs (i, j) with a[i] && b[j] (Herd's
// "r & (A * B)").
func (r Rel) Restrict(a, b []bool) Rel {
	return r.Inter(Cross(a, b))
}

// Sym returns r ∪ r⁻¹.
func (r Rel) Sym() Rel { return r.Union(r.Inverse()) }

// Empty reports whether the relation has no pairs.
func (r Rel) Empty() bool {
	for _, v := range r.m {
		if v {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation contains no cycle (including
// self-loops after closure).
func (r Rel) Acyclic() bool {
	c := r.TransClosure()
	for i := 0; i < c.n; i++ {
		if c.Has(i, i) {
			return false
		}
	}
	return true
}

// Pairs lists the relation's pairs in row-major order.
func (r Rel) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Count returns the number of pairs.
func (r Rel) Count() int {
	n := 0
	for _, v := range r.m {
		if v {
			n++
		}
	}
	return n
}
