package memmodel

import (
	"errors"
	"strconv"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// twoByTwo builds the minimal two-thread program: T0 stores X then Y,
// T1 stores Y then X (paired everywhere, so it is race-free trivially).
func twoByTwo() *litmus.Program {
	p := litmus.New("twoByTwo")
	t0 := p.Thread("t0")
	t0.Store("X", 1, core.Paired)
	t0.Store("Y", 1, core.Paired)
	t1 := p.Thread("t1")
	t1.Store("Y", 2, core.Paired)
	t1.Store("X", 2, core.Paired)
	return p
}

func TestEnumerateInterleavingCount(t *testing.T) {
	naive, err := Enumerate(twoByTwo(), EnumOptions{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	// C(4,2) = 6 interleavings of two 2-op threads.
	if len(naive) != 6 {
		t.Fatalf("got %d executions, want 6", len(naive))
	}
	// The reduced enumerator drops order-equivalent duplicates (the two
	// stores to different locations commute) but keeps every final state.
	por, err := Enumerate(twoByTwo(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(por) >= len(naive) || len(por) < 3 {
		t.Fatalf("POR kept %d of %d executions", len(por), len(naive))
	}
	for _, execs := range [][]*Execution{naive, por} {
		for _, ex := range execs {
			if len(ex.Order) != 4 {
				t.Fatalf("order length %d", len(ex.Order))
			}
			// T order must respect program order.
			for i := 0; i < len(ex.Order); i++ {
				for j := i + 1; j < len(ex.Order); j++ {
					ei, ej := ex.Events[ex.Order[i]], ex.Events[ex.Order[j]]
					if ei.Thread == ej.Thread && ei.OpIndex > ej.OpIndex {
						t.Fatal("T violates program order")
					}
				}
			}
		}
	}
}

func TestEnumerateValues(t *testing.T) {
	// MP with paired flag: when the consumer sees F=1 it must see D=1.
	execs, err := Enumerate(litmus.MP("mp", core.Paired), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sawFlag := false
	for _, ex := range execs {
		var f, d *Event
		for i := range ex.Events {
			ev := &ex.Events[i]
			if ev.Thread == 1 && ev.Op.Loc == "F" {
				f = ev
			}
			if ev.Thread == 1 && ev.Op.Loc == "D" {
				d = ev
			}
		}
		if f == nil {
			t.Fatal("flag read missing")
		}
		if f.Loaded == 1 {
			sawFlag = true
			if d == nil || !ex.Present[d.ID] {
				t.Fatal("guarded data read should be present when flag seen")
			}
			if d.Loaded != 1 {
				t.Fatalf("SC violation: flag=1 but data=%d", d.Loaded)
			}
		} else if d != nil && ex.Present[d.ID] {
			t.Fatal("guarded data read present despite flag=0")
		}
	}
	if !sawFlag {
		t.Fatal("no execution observed the flag")
	}
}

func TestEnumerateFinalState(t *testing.T) {
	execs, err := Enumerate(twoByTwo(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	finals := map[string]bool{}
	for _, ex := range execs {
		finals[ex.ResultKey()] = true
	}
	// X=1,Y=2 requires X=2 <T X=1 and Y=1 <T Y=2, which together with
	// program order form a cycle — exactly 3 final states are
	// SC-reachable.
	want := []string{"X=1;Y=1;", "X=2;Y=2;", "X=2;Y=1;"}
	if len(finals) != len(want) {
		t.Fatalf("got %d distinct finals (%v), want %d", len(finals), finals, len(want))
	}
	for _, w := range want {
		if !finals[w] {
			t.Errorf("missing final state %q", w)
		}
	}
}

func TestEnumerateRMWAtomicity(t *testing.T) {
	// Two increments: the final value must always be 2 (no lost updates —
	// the RMW reads and writes atomically in one event).
	p := litmus.New("incinc")
	p.Thread("a").Inc("C", core.Paired)
	p.Thread("b").Inc("C", core.Paired)
	execs, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 2 {
		t.Fatalf("got %d executions, want 2", len(execs))
	}
	for _, ex := range execs {
		if ex.Final["C"] != 2 {
			t.Fatalf("lost update: final C = %d", ex.Final["C"])
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	p := litmus.New("big")
	for i := 0; i < 3; i++ {
		th := p.Thread("t" + strconv.Itoa(i))
		for j := 0; j < 4; j++ {
			th.Store("X", int64(j), core.Paired)
		}
	}
	_, err := Enumerate(p, EnumOptions{Limit: 10})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
}

func TestQuantumTransformation(t *testing.T) {
	// A quantum load with domain {0,1,2} must return every domain value
	// across executions, regardless of what is actually stored.
	p := litmus.New("q")
	p.QuantumDomain = []int64{0, 1, 2}
	t0 := p.Thread("t0")
	t0.RMWDiscard(core.OpAdd, "C", 1, core.Quantum)
	t1 := p.Thread("t1")
	r := t1.Load("C", core.Quantum)
	t1.StoreExpr("OUT", litmus.RegExpr(r), core.Data)

	execs, err := Enumerate(p, EnumOptions{Quantum: true})
	if err != nil {
		t.Fatal(err)
	}
	outs := map[int64]bool{}
	randomized := false
	for _, ex := range execs {
		outs[ex.Final["OUT"]] = true
		for _, ev := range ex.Events {
			if ev.Randomized {
				randomized = true
			}
		}
	}
	for _, v := range []int64{0, 1, 2} {
		if !outs[v] {
			t.Errorf("quantum load never returned %d: %v", v, outs)
		}
	}
	if !randomized {
		t.Error("no event marked Randomized")
	}

	// Without the quantum flag, values are the real ones.
	execs, err = Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range execs {
		if out := ex.Final["OUT"]; out != 0 && out != 1 {
			t.Errorf("real execution produced OUT=%d", out)
		}
	}
}

func TestQuantumDomainDerivation(t *testing.T) {
	p := litmus.New("d")
	p.SetInit("X", 5)
	t0 := p.Thread("t0")
	t0.Store("X", 9, core.Quantum)
	dom := QuantumDomain(p)
	want := map[int64]bool{0: true, 1: true, 5: true, 9: true}
	if len(dom) != len(want) {
		t.Fatalf("domain %v", dom)
	}
	for _, v := range dom {
		if !want[v] {
			t.Fatalf("unexpected domain value %d", v)
		}
	}
}

func TestGuardSkipsProduceNoEvents(t *testing.T) {
	p := litmus.New("g")
	t0 := p.Thread("t0")
	r := t0.Load("F", core.Paired)
	t0.WithGuards(litmus.NZ(r))
	t0.Store("X", 1, core.Data)
	t0.EndGuards()
	execs, err := Enumerate(p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 1 {
		t.Fatalf("got %d executions", len(execs))
	}
	ex := execs[0]
	if ex.Final["X"] != 0 {
		t.Error("guarded store executed despite failed guard")
	}
	if len(ex.Order) != 1 {
		t.Errorf("order %v should contain only the load", ex.Order)
	}
}

func TestResultsHelper(t *testing.T) {
	execs, err := Enumerate(twoByTwo(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs := Results(execs)
	if len(rs) != 3 {
		t.Fatalf("Results has %d entries", len(rs))
	}
	for k, final := range rs {
		if resultKey(final) != k {
			t.Error("Results key mismatch")
		}
	}
}
