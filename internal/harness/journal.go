package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"rats/internal/energy"
	"rats/internal/sim/system"
	"rats/internal/stats"
)

// journalRecord is one journal line: a completed run (Kind empty, the
// original format) or a failed attempt (Kind "attempt"). For results,
// Stats and Energy are enough to rebuild figures and summaries; the
// functional value layer is not persisted, so restored results have a nil
// Read closure. For attempts, Attempt is the cumulative attempt count for
// the pair and Error the first line of the failure, so a resumed sweep
// knows how much of the retry budget an earlier process already burned.
type journalRecord struct {
	Kind     string           `json:"kind,omitempty"`
	Workload string           `json:"workload"`
	Config   string           `json:"config"`
	Stats    stats.Stats      `json:"stats,omitempty"`
	Energy   energy.Breakdown `json:"energy,omitempty"`
	Attempt  int              `json:"attempt,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// attemptState tracks the journaled attempt history for one pair.
type attemptState struct {
	count   int
	lastErr string
}

// Journal is a crash-safe JSONL checkpoint of a sweep. Every completed
// run is appended and synced immediately, so a killed process loses at
// most the runs still in flight; reopening the same path restores the
// completed ones and the sweep re-simulates only what is missing.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	done     map[string]*system.Result
	attempts map[string]attemptState
}

func journalKey(workload, config string) string { return workload + "\x00" + config }

// OpenJournal opens (or creates) the journal at path and loads every
// intact record. A torn final line — the signature of a crash mid-write —
// is tolerated and skipped.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	j := &Journal{f: f, done: map[string]*system.Result{}, attempts: map[string]attemptState{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn or corrupt line (likely the tail of an interrupted
			// write): skip it; the pair will simply be re-run.
			continue
		}
		if rec.Kind == "attempt" {
			key := journalKey(rec.Workload, rec.Config)
			if st := j.attempts[key]; rec.Attempt > st.count {
				j.attempts[key] = attemptState{count: rec.Attempt, lastErr: rec.Error}
			}
			continue
		}
		cfg, err := ConfigFor(rec.Config)
		if err != nil {
			continue
		}
		j.done[journalKey(rec.Workload, rec.Config)] = &system.Result{
			Name:   rec.Workload,
			Cfg:    cfg,
			Stats:  rec.Stats,
			Energy: rec.Energy,
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: read journal: %w", err)
	}
	// Position at the end for appends.
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: seek journal: %w", err)
	}
	return j, nil
}

// Loaded returns how many completed runs were restored at open time plus
// any recorded since.
func (j *Journal) Loaded() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Lookup returns the journaled result for a (workload, config) pair.
// Restored results carry stats and energy but a nil Read closure.
func (j *Journal) Lookup(workload, config string) (*system.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.done[journalKey(workload, config)]
	return res, ok
}

// Record appends one completed run and syncs it to stable storage before
// returning, making the checkpoint crash-safe.
func (j *Journal) Record(workload, config string, res *system.Result) error {
	line, err := json.Marshal(journalRecord{
		Workload: workload,
		Config:   config,
		Stats:    res.Stats,
		Energy:   res.Energy,
	})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.done[journalKey(workload, config)] = res
	return nil
}

// Attempts returns how many failed attempts have been journaled for a
// (workload, config) pair, with the first line of the last error. A
// successful run does not erase the history, but Lookup hits first, so
// the pair is restored rather than re-run anyway.
func (j *Journal) Attempts(workload, config string) (int, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.attempts[journalKey(workload, config)]
	return st.count, st.lastErr
}

// RecordAttempt journals one failed attempt (attempt is the cumulative
// count for the pair) and syncs before returning, so a killed process
// cannot silently forget how much retry budget it burned.
func (j *Journal) RecordAttempt(workload, config string, attempt int, runErr error) error {
	msg := runErr.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i] // drop panic stacks; one journal line per attempt
	}
	line, err := json.Marshal(journalRecord{
		Kind:     "attempt",
		Workload: workload,
		Config:   config,
		Attempt:  attempt,
		Error:    msg,
	})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	key := journalKey(workload, config)
	if st := j.attempts[key]; attempt > st.count {
		j.attempts[key] = attemptState{count: attempt, lastErr: msg}
	}
	return nil
}

// Close releases the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
