package rtrace

import "sync"

// ring keeps three bounded views of finished traces for /tracez: the
// last N of everything, the last N errors, and the N slowest by
// duration. TraceData is immutable, so the views share pointers with the
// JSONL export and snapshots are cheap copies.
type ring struct {
	mu      sync.Mutex
	size    int
	recent  []*TraceData // append-ordered, oldest first, capped at size
	errors  []*TraceData
	slowest []*TraceData // sorted by DurationUs descending, capped at size
}

func newRing(size int) *ring {
	return &ring{size: size}
}

func (r *ring) add(td *TraceData, isErr bool) {
	r.mu.Lock()
	r.recent = pushCapped(r.recent, td, r.size)
	if isErr {
		r.errors = pushCapped(r.errors, td, r.size)
	}
	// Insertion into the slowest view: find the spot, drop the tail.
	i := len(r.slowest)
	for i > 0 && r.slowest[i-1].DurationUs < td.DurationUs {
		i--
	}
	if i < r.size {
		r.slowest = append(r.slowest, nil)
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = td
		if len(r.slowest) > r.size {
			r.slowest = r.slowest[:r.size]
		}
	}
	r.mu.Unlock()
}

func pushCapped(s []*TraceData, td *TraceData, size int) []*TraceData {
	s = append(s, td)
	if len(s) > size {
		copy(s, s[1:])
		s = s[:len(s)-1]
	}
	return s
}

// RingSnapshot is the /tracez payload: newest-first recents and errors,
// slowest-first slow traces, plus the tracer's activity counters.
type RingSnapshot struct {
	Stats   Stats        `json:"stats"`
	Recent  []*TraceData `json:"recent"`
	Errors  []*TraceData `json:"errors,omitempty"`
	Slowest []*TraceData `json:"slowest,omitempty"`
}

func (r *ring) snapshot() RingSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingSnapshot{
		Recent:  reversed(r.recent),
		Errors:  reversed(r.errors),
		Slowest: append([]*TraceData(nil), r.slowest...),
	}
}

func reversed(s []*TraceData) []*TraceData {
	out := make([]*TraceData, len(s))
	for i, td := range s {
		out[len(s)-1-i] = td
	}
	return out
}

// find looks a trace up by ID across all three views.
func (r *ring) find(id string) (*TraceData, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, set := range [][]*TraceData{r.recent, r.errors, r.slowest} {
		for _, td := range set {
			if td.TraceID == id {
				return td, true
			}
		}
	}
	return nil, false
}
