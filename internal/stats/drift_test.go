package stats

import (
	"reflect"
	"testing"
)

// TestAddCoversEveryField: Add must accumulate every exported int64
// counter. The test fills a Stats via reflection with distinct values,
// adds it to itself twice, and checks each field doubled — a counter
// missing from Add stays at its seed value and fails.
func TestAddCoversEveryField(t *testing.T) {
	var src Stats
	v := reflect.ValueOf(&src).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		if tp.Field(i).Type.Kind() != reflect.Int64 {
			t.Fatalf("field %s is %v; drift test assumes all counters are int64",
				tp.Field(i).Name, tp.Field(i).Type)
		}
		v.Field(i).SetInt(int64(i + 1))
	}
	sum := src
	sum.Add(&src)
	sv := reflect.ValueOf(sum)
	for i := 0; i < tp.NumField(); i++ {
		want := int64(2 * (i + 1))
		if got := sv.Field(i).Int(); got != want {
			t.Errorf("Add misses field %s: got %d want %d", tp.Field(i).Name, got, want)
		}
	}
}

// TestRowsCoversEveryField: Rows must report every counter exactly once,
// with the value taken from the right field. Distinct per-field seeds
// catch both a missing row and a row wired to the wrong field.
func TestRowsCoversEveryField(t *testing.T) {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		v.Field(i).SetInt(int64(1000 + i))
	}
	rows := s.Rows()
	if len(rows) != tp.NumField() {
		t.Fatalf("Rows has %d entries for %d Stats fields", len(rows), tp.NumField())
	}
	seen := map[int64]string{}
	names := map[string]bool{}
	for _, r := range rows {
		if names[r.Name] {
			t.Errorf("duplicate row name %q", r.Name)
		}
		names[r.Name] = true
		if prev, dup := seen[r.Value]; dup {
			t.Errorf("rows %q and %q report the same value %d", prev, r.Name, r.Value)
		}
		seen[r.Value] = r.Name
		if r.Value < 1000 || r.Value >= int64(1000+tp.NumField()) {
			t.Errorf("row %q value %d does not match any seeded field", r.Name, r.Value)
		}
	}
}
