// Package rel implements the small relational algebra over execution
// events that the Herd memory-model tool exposes (union, intersection,
// difference, sequential composition, transitive closure, inverses,
// cartesian products of event sets). Relations are dense bit matrices:
// each row is a []uint64 bitset, so the set operators are word-parallel
// (64 pairs per instruction), Compose and TransClosure are row-OR kernels
// (O(n³/64)), and litmus-sized relations (n ≤ 64) fit one word per row.
//
// Every allocating operator has an in-place (-In) or destination (-Into)
// variant, and Bits/ForEach expose rows and pairs without materializing
// index slices, so a steady-state analysis pipeline can run without
// allocating. The original []bool implementation is retained in
// reference.go as the differential-testing and benchmarking baseline.
package rel

import (
	"fmt"
	"math/bits"
)

// words returns the number of 64-bit words needed for n bits.
func words(n int) int { return (n + 63) >> 6 }

// Bits is a set over events 0..n-1, packed 64 per word. It is the row
// type of Rel and the mask type of the word-parallel kernels. The zero
// value is an empty set over zero events.
type Bits struct {
	n int
	b []uint64
}

// MakeBits returns an empty set over n events.
func MakeBits(n int) Bits { return Bits{n: n, b: make([]uint64, words(n))} }

// MakeBitsSlab returns k empty size-n sets carved from one backing
// allocation (capacity-capped so a later regrowth of one cannot bleed
// into its neighbours), for arenas that set up many sets at once.
func MakeBitsSlab(n, k int) []Bits {
	w := words(n)
	backing := make([]uint64, w*k)
	out := make([]Bits, k)
	for i := range out {
		out[i] = Bits{n: n, b: backing[i*w : (i+1)*w : (i+1)*w]}
	}
	return out
}

// BitsFromBools packs a predicate vector into a Bits set.
func BitsFromBools(v []bool) Bits {
	s := MakeBits(len(v))
	for i, ok := range v {
		if ok {
			s.b[i>>6] |= 1 << uint(i&63)
		}
	}
	return s
}

// Len returns the number of events the set ranges over.
func (s Bits) Len() int { return s.n }

func (s Bits) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("rel: bit %d out of range [0,%d)", i, s.n))
	}
}

func (s Bits) checkLen(o Bits) {
	if s.n != o.n {
		panic(fmt.Sprintf("rel: size mismatch %d vs %d", s.n, o.n))
	}
}

// Set adds event i.
func (s Bits) Set(i int) { s.check(i); s.b[i>>6] |= 1 << uint(i&63) }

// Unset removes event i.
func (s Bits) Unset(i int) { s.check(i); s.b[i>>6] &^= 1 << uint(i&63) }

// Has reports whether event i is in the set.
func (s Bits) Has(i int) bool { s.check(i); return s.b[i>>6]&(1<<uint(i&63)) != 0 }

// Reset clears every bit.
func (s Bits) Reset() {
	for i := range s.b {
		s.b[i] = 0
	}
}

// CopyFrom overwrites s with o.
func (s Bits) CopyFrom(o Bits) { s.checkLen(o); copy(s.b, o.b) }

// OrIn adds every element of o (s ∪= o).
func (s Bits) OrIn(o Bits) {
	s.checkLen(o)
	for i, w := range o.b {
		s.b[i] |= w
	}
}

// AndIn keeps only elements also in o (s ∩= o).
func (s Bits) AndIn(o Bits) {
	s.checkLen(o)
	for i, w := range o.b {
		s.b[i] &= w
	}
}

// AndNotIn removes every element of o (s \= o).
func (s Bits) AndNotIn(o Bits) {
	s.checkLen(o)
	for i, w := range o.b {
		s.b[i] &^= w
	}
}

// KeepAbove removes every event ≤ i.
func (s Bits) KeepAbove(i int) {
	wi := i >> 6
	for k := 0; k < wi && k < len(s.b); k++ {
		s.b[k] = 0
	}
	if wi < len(s.b) {
		s.b[wi] &^= (1 << uint(i&63+1)) - 1
	}
}

// Count returns the number of elements.
func (s Bits) Count() int {
	c := 0
	for _, w := range s.b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether the set is non-empty.
func (s Bits) Any() bool {
	for _, w := range s.b {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls f for every element in ascending order.
func (s Bits) ForEach(f func(i int)) {
	for wi, w := range s.b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Rel is a binary relation over events 0..n-1, stored as n bitset rows of
// w = ⌈n/64⌉ words each. Methods have value receivers but share the
// backing array, exactly like a slice: Set/Clear and the -In/-Into
// kernels mutate the relation they are called on.
type Rel struct {
	n int
	w int
	m []uint64
}

// New returns an empty relation over n events.
func New(n int) Rel {
	w := words(n)
	return Rel{n: n, w: w, m: make([]uint64, n*w)}
}

// NewSlab returns k empty size-n relations carved from one backing
// allocation (capacity-capped so Resized regrowth of one allocates fresh
// instead of bleeding into its neighbours), for arenas that set up many
// relations at once.
func NewSlab(n, k int) []Rel {
	w := words(n)
	backing := make([]uint64, n*w*k)
	out := make([]Rel, k)
	for i := range out {
		out[i] = Rel{n: n, w: w, m: backing[i*n*w : (i+1)*n*w : (i+1)*n*w]}
	}
	return out
}

// Identity returns the identity relation over n events.
func Identity(n int) Rel {
	r := New(n)
	r.AddIdentity()
	return r
}

// FromPairs builds a relation from explicit (i, j) pairs.
func FromPairs(n int, pairs [][2]int) Rel {
	r := New(n)
	for _, p := range pairs {
		r.Set(p[0], p[1])
	}
	return r
}

// Cross returns the relation {(i, j) : a[i] && b[j]} — Herd's set product
// (e.g. PairedW * PairedR).
func Cross(a, b []bool) Rel {
	if len(a) != len(b) {
		panic("rel: Cross on sets of different sizes")
	}
	r := New(len(a))
	r.CrossIn(BitsFromBools(a), BitsFromBools(b))
	return r
}

// Size returns the number of events the relation ranges over.
func (r Rel) Size() int { return r.n }

func (r Rel) checkPair(i, j int) {
	if i < 0 || i >= r.n || j < 0 || j >= r.n {
		panic(fmt.Sprintf("rel: pair (%d,%d) out of range [0,%d)", i, j, r.n))
	}
}

// Set adds the pair (i, j).
func (r Rel) Set(i, j int) {
	r.checkPair(i, j)
	r.m[i*r.w+j>>6] |= 1 << uint(j&63)
}

// Clear removes the pair (i, j).
func (r Rel) Clear(i, j int) {
	r.checkPair(i, j)
	r.m[i*r.w+j>>6] &^= 1 << uint(j&63)
}

// Has reports whether (i, j) is in the relation.
func (r Rel) Has(i, j int) bool {
	r.checkPair(i, j)
	return r.m[i*r.w+j>>6]&(1<<uint(j&63)) != 0
}

// Row returns row i — the set {j : r(i, j)} — aliasing the relation's
// storage, so mutations through the row mutate the relation.
func (r Rel) Row(i int) Bits { return Bits{n: r.n, b: r.m[i*r.w : (i+1)*r.w]} }

// Clone returns a deep copy.
func (r Rel) Clone() Rel {
	c := New(r.n)
	copy(c.m, r.m)
	return c
}

// Resized returns an empty relation over n events, reusing r's backing
// array when it is large enough. Arena helper: rels are re-dimensioned
// per program without reallocating.
func (r Rel) Resized(n int) Rel {
	need := n * words(n)
	if cap(r.m) < need {
		return New(n)
	}
	r.n, r.w, r.m = n, words(n), r.m[:need]
	r.ClearAll()
	return r
}

// ClearAll removes every pair.
func (r Rel) ClearAll() {
	for i := range r.m {
		r.m[i] = 0
	}
}

func (r Rel) check(o Rel) {
	if r.n != o.n {
		panic(fmt.Sprintf("rel: size mismatch %d vs %d", r.n, o.n))
	}
}

// CopyFrom overwrites r with o.
func (r Rel) CopyFrom(o Rel) {
	r.check(o)
	copy(r.m, o.m)
}

// AddIdentity adds every (i, i) pair.
func (r Rel) AddIdentity() {
	for i := 0; i < r.n; i++ {
		r.m[i*r.w+i>>6] |= 1 << uint(i&63)
	}
}

// UnionIn adds every pair of o (r ∪= o).
func (r Rel) UnionIn(o Rel) {
	r.check(o)
	for i, w := range o.m {
		r.m[i] |= w
	}
}

// InterIn keeps only pairs also in o (r ∩= o).
func (r Rel) InterIn(o Rel) {
	r.check(o)
	for i, w := range o.m {
		r.m[i] &= w
	}
}

// DiffIn removes every pair of o (r \= o).
func (r Rel) DiffIn(o Rel) {
	r.check(o)
	for i, w := range o.m {
		r.m[i] &^= w
	}
}

// Union returns r ∪ o.
func (r Rel) Union(o Rel) Rel {
	c := r.Clone()
	c.UnionIn(o)
	return c
}

// Inter returns r ∩ o.
func (r Rel) Inter(o Rel) Rel {
	c := r.Clone()
	c.InterIn(o)
	return c
}

// Diff returns r \ o.
func (r Rel) Diff(o Rel) Rel {
	c := r.Clone()
	c.DiffIn(o)
	return c
}

// ComposeInto overwrites r with the sequential composition a ; b
// ({(i, k) : ∃j. a(i,j) ∧ b(j,k)}). r must not alias a or b. The kernel
// is a row-OR: for every edge (i, j) of a, row j of b is OR-ed into row i
// of the result — O(n³/64) worst case, O(pairs(a)·n/64) in practice.
func (r Rel) ComposeInto(a, b Rel) {
	r.check(a)
	r.check(b)
	if r.w == 1 {
		// One word per row (n ≤ 64, every litmus-scale relation): gather
		// b-rows of a's set bits without any slice arithmetic.
		for i := 0; i < r.n; i++ {
			w := a.m[i]
			var out uint64
			for w != 0 {
				out |= b.m[bits.TrailingZeros64(w)]
				w &= w - 1
			}
			r.m[i] = out
		}
		return
	}
	for i := 0; i < r.n; i++ {
		dst := r.m[i*r.w : (i+1)*r.w]
		for k := range dst {
			dst[k] = 0
		}
		row := a.m[i*a.w : (i+1)*a.w]
		for wi, w := range row {
			for w != 0 {
				j := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				brow := b.m[j*b.w : (j+1)*b.w]
				for k, bw := range brow {
					dst[k] |= bw
				}
			}
		}
	}
}

// Compose returns the sequential composition r ; o.
func (r Rel) Compose(o Rel) Rel {
	c := New(r.n)
	c.ComposeInto(r, o)
	return c
}

// InverseInto overwrites r with a⁻¹. r must not alias a.
func (r Rel) InverseInto(a Rel) {
	r.check(a)
	if r.w == 1 && r.n > 0 {
		// Single-word rows: pad to a 64×64 bit matrix and transpose with
		// recursive block swaps (Hacker's Delight 7-3) — the off-diagonal
		// j×j quadrants of every 2j×2j block swap via masked shifts, so
		// the whole transpose is ~6·64 word ops regardless of density.
		var t [64]uint64
		copy(t[:], a.m)
		j := uint(32)
		m := uint64(0x00000000FFFFFFFF)
		for j != 0 {
			for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
				x := (t[k]>>j ^ t[k+int(j)]) & m
				t[k] ^= x << j
				t[k+int(j)] ^= x
			}
			j >>= 1
			m ^= m << j
		}
		copy(r.m, t[:r.n])
		return
	}
	r.ClearAll()
	for i := 0; i < a.n; i++ {
		row := a.m[i*a.w : (i+1)*a.w]
		for wi, w := range row {
			for w != 0 {
				j := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				r.m[j*r.w+i>>6] |= 1 << uint(i&63)
			}
		}
	}
}

// Inverse returns r⁻¹.
func (r Rel) Inverse() Rel {
	c := New(r.n)
	c.InverseInto(r)
	return c
}

// TransCloseIn replaces r with r⁺ (irreflexive transitive closure) in
// place: Floyd–Warshall where the inner loop is a whole-row OR, so each
// of the n² (k, i) steps costs n/64 word operations.
func (r Rel) TransCloseIn() {
	n, w := r.n, r.w
	if w == 1 {
		// Single-word rows: Warshall's update is one AND-test and one OR.
		for k := 0; k < n; k++ {
			kbit := uint64(1) << uint(k)
			krow := r.m[k]
			for i := 0; i < n; i++ {
				if r.m[i]&kbit != 0 {
					r.m[i] |= krow
				}
			}
		}
		return
	}
	for k := 0; k < n; k++ {
		krow := r.m[k*w : (k+1)*w]
		kw, kb := k>>6, uint(k&63)
		for i := 0; i < n; i++ {
			if r.m[i*w+kw]&(1<<kb) == 0 {
				continue
			}
			irow := r.m[i*w : (i+1)*w]
			for t, word := range krow {
				irow[t] |= word
			}
		}
	}
}

// TransClosure returns r⁺.
func (r Rel) TransClosure() Rel {
	c := r.Clone()
	c.TransCloseIn()
	return c
}

// ReflTransCloseIn replaces r with r* = r⁺ ∪ id in place.
func (r Rel) ReflTransCloseIn() {
	r.TransCloseIn()
	r.AddIdentity()
}

// ReflTransClosure returns r* = r⁺ ∪ id.
func (r Rel) ReflTransClosure() Rel {
	c := r.Clone()
	c.ReflTransCloseIn()
	return c
}

// CrossIn overwrites r with the set product a × b.
func (r Rel) CrossIn(a, b Bits) {
	if a.n != r.n || b.n != r.n {
		panic("rel: Cross on sets of different sizes")
	}
	if r.w == 1 && r.n > 0 {
		aw, bw := a.b[0], b.b[0]
		for i := 0; i < r.n; i++ {
			if aw&(1<<uint(i)) != 0 {
				r.m[i] = bw
			} else {
				r.m[i] = 0
			}
		}
		return
	}
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if a.Has(i) {
			row.CopyFrom(b)
		} else {
			row.Reset()
		}
	}
}

// InterAloInto overwrites r with src ∩ ((s × ⊤) ∪ (⊤ × s)) — the pairs of
// src with at least one endpoint in s (Herd's "at least one" class
// filter), as a single fused row kernel. r may alias src.
func (r Rel) InterAloInto(src Rel, s Bits) {
	r.check(src)
	if s.n != r.n {
		panic(fmt.Sprintf("rel: size mismatch %d vs %d", r.n, s.n))
	}
	if r.w == 1 && r.n > 0 {
		sw := s.b[0]
		for i := 0; i < r.n; i++ {
			m := src.m[i]
			if sw&(1<<uint(i)) == 0 {
				m &= sw
			}
			r.m[i] = m
		}
		return
	}
	for i := 0; i < r.n; i++ {
		row, srow := r.Row(i), src.Row(i)
		if s.Has(i) {
			row.CopyFrom(srow)
		} else {
			row.CopyFrom(srow)
			row.AndIn(s)
		}
	}
}

// RestrictToIn keeps only pairs with both endpoints in s (r ∩= s × s).
func (r Rel) RestrictToIn(s Bits) {
	if s.n != r.n {
		panic(fmt.Sprintf("rel: size mismatch %d vs %d", r.n, s.n))
	}
	if r.w == 1 && r.n > 0 {
		sw := s.b[0]
		for i := 0; i < r.n; i++ {
			if sw&(1<<uint(i)) != 0 {
				r.m[i] &= sw
			} else {
				r.m[i] = 0
			}
		}
		return
	}
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if s.Has(i) {
			row.AndIn(s)
		} else {
			row.Reset()
		}
	}
}

// Restrict keeps only pairs (i, j) with a[i] && b[j] (Herd's
// "r & (A * B)").
func (r Rel) Restrict(a, b []bool) Rel {
	return r.Inter(Cross(a, b))
}

// Sym returns r ∪ r⁻¹.
func (r Rel) Sym() Rel { return r.Union(r.Inverse()) }

// Empty reports whether the relation has no pairs.
func (r Rel) Empty() bool {
	for _, w := range r.m {
		if w != 0 {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation contains no cycle (including
// self-loops after closure).
func (r Rel) Acyclic() bool {
	c := r.TransClosure()
	for i := 0; i < c.n; i++ {
		if c.m[i*c.w+i>>6]&(1<<uint(i&63)) != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every pair in row-major order.
func (r Rel) ForEach(f func(i, j int)) {
	for i := 0; i < r.n; i++ {
		row := r.m[i*r.w : (i+1)*r.w]
		for wi, w := range row {
			for w != 0 {
				f(i, wi<<6+bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
}

// Pairs lists the relation's pairs in row-major order.
func (r Rel) Pairs() [][2]int {
	var out [][2]int
	r.ForEach(func(i, j int) { out = append(out, [2]int{i, j}) })
	return out
}

// AppendPairs appends the relation's pairs to buf in row-major order and
// returns it. Unlike Pairs/ForEach it involves no closure, so callers
// reusing buf across calls allocate nothing once it has grown.
func (r Rel) AppendPairs(buf [][2]int) [][2]int {
	for i := 0; i < r.n; i++ {
		row := r.m[i*r.w : (i+1)*r.w]
		for wi, w := range row {
			for w != 0 {
				buf = append(buf, [2]int{i, wi<<6 + bits.TrailingZeros64(w)})
				w &= w - 1
			}
		}
	}
	return buf
}

// Count returns the number of pairs.
func (r Rel) Count() int {
	c := 0
	for _, w := range r.m {
		c += bits.OnesCount64(w)
	}
	return c
}
