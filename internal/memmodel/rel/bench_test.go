package rel

import (
	"math/rand"
	"testing"
)

// The kernel benchmarks compare the bitset implementation against the
// retained []bool reference at litmus-typical (n=24) and one-word-limit
// (n=64) sizes. The CI bench gate enforces a speedup floor on the
// closure and composition kernels (see scripts/benchjson.py).

func benchRels(n int) (Rel, Rel, boolRel, boolRel) {
	rng := rand.New(rand.NewSource(9))
	a, b := New(n), New(n)
	ra, rb := newBoolRel(n), newBoolRel(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.15 {
				a.Set(i, j)
				ra.Set(i, j)
			}
			if rng.Float64() < 0.15 {
				b.Set(i, j)
				rb.Set(i, j)
			}
		}
	}
	return a, b, ra, rb
}

func BenchmarkTransClosure(b *testing.B) {
	for _, n := range []int{24, 64} {
		a, _, ra, _ := benchRels(n)
		b.Run(sizeName(n)+"/bitset", func(b *testing.B) {
			b.ReportAllocs()
			scratch := New(n)
			for i := 0; i < b.N; i++ {
				scratch.CopyFrom(a)
				scratch.TransCloseIn()
			}
		})
		b.Run(sizeName(n)+"/ref", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ra.TransClosure()
			}
		})
	}
}

func BenchmarkCompose(b *testing.B) {
	for _, n := range []int{24, 64} {
		a, o, ra, ro := benchRels(n)
		b.Run(sizeName(n)+"/bitset", func(b *testing.B) {
			b.ReportAllocs()
			scratch := New(n)
			for i := 0; i < b.N; i++ {
				scratch.ComposeInto(a, o)
			}
		})
		b.Run(sizeName(n)+"/ref", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ra.Compose(ro)
			}
		})
	}
}

func BenchmarkSetOps(b *testing.B) {
	for _, n := range []int{24, 64} {
		a, o, ra, ro := benchRels(n)
		b.Run(sizeName(n)+"/bitset", func(b *testing.B) {
			b.ReportAllocs()
			scratch := New(n)
			for i := 0; i < b.N; i++ {
				scratch.CopyFrom(a)
				scratch.UnionIn(o)
				scratch.InterIn(a)
				scratch.DiffIn(o)
			}
		})
		b.Run(sizeName(n)+"/ref", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ra.Union(ro).Inter(ra).Diff(ro)
			}
		})
	}
}

func sizeName(n int) string {
	if n == 24 {
		return "n24"
	}
	return "n64"
}
