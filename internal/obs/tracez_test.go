package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
	"rats/internal/rtrace"
)

// mkTrace drives one synthetic request trace through the tracer.
func mkTrace(tr *rtrace.Tracer, name string, status int, kind string) string {
	t := tr.Start(name)
	t.Phase("work").SetAttr("step", "one")
	t.Phase("serialize")
	t.SetStatus(status, kind)
	t.Finish()
	return t.ID()
}

func getBody(t *testing.T, url string, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestTracezEndpoints walks the /tracez surface: ring snapshot, lookup
// by ID, Chrome export of one trace and of the whole ring, and the 404s
// for unknown IDs and servers without a tracer.
func TestTracezEndpoints(t *testing.T) {
	tracer := rtrace.New(rtrace.Options{})
	okID := mkTrace(tracer, "check", 200, "")
	errID := mkTrace(tracer, "check", 422, "deadline")

	srv := obs.NewServer()
	srv.SetTraces(tracer)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, ct, body := getBody(t, ts.URL+"/tracez", "")
	if st != http.StatusOK || !strings.Contains(ct, "application/json") {
		t.Fatalf("/tracez: %d %s", st, ct)
	}
	var snap rtrace.RingSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/tracez payload: %v", err)
	}
	if snap.Stats.Finished != 2 || len(snap.Recent) != 2 || len(snap.Errors) != 1 {
		t.Errorf("snapshot finished=%d recent=%d errors=%d, want 2/2/1",
			snap.Stats.Finished, len(snap.Recent), len(snap.Errors))
	}

	st, _, body = getBody(t, ts.URL+"/tracez?id="+errID, "")
	if st != http.StatusOK || !strings.Contains(body, errID) || !strings.Contains(body, `"deadline"`) {
		t.Errorf("/tracez?id=%s: %d, body %q", errID, st, body)
	}

	if st, _, _ = getBody(t, ts.URL+"/tracez?id=nope", ""); st != http.StatusNotFound {
		t.Errorf("/tracez?id=nope: %d, want 404", st)
	}

	st, _, body = getBody(t, ts.URL+"/tracez?id="+okID+"&format=chrome", "")
	if st != http.StatusOK || !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, okID) {
		t.Errorf("chrome export of %s: %d, body %q", okID, st, body)
	}

	st, _, body = getBody(t, ts.URL+"/tracez?format=chrome", "")
	if st != http.StatusOK || !strings.Contains(body, okID) || !strings.Contains(body, errID) {
		t.Errorf("chrome export of ring: %d missing traces", st)
	}

	bare := obs.NewServer()
	tb := httptest.NewServer(bare.Handler())
	defer tb.Close()
	if st, _, _ = getBody(t, tb.URL+"/tracez", ""); st != http.StatusNotFound {
		t.Errorf("/tracez without tracer: %d, want 404", st)
	}
}

// TestMetricsContentNegotiation: the classic Prometheus exposition stays
// the default (and byte-free of OpenMetrics syntax), while an Accept
// header naming openmetrics-text switches to the OpenMetrics form with
// its # EOF terminator and latency exemplars.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := checksRegistry()
	// A traced check so the latency histogram carries an exemplar.
	c := reg.NewCheck("Traced", "DRFrlx")
	c.SetTraceID("feedc0dedeadbeef")
	c.Begin(100)
	c.IncEnumerated()
	c.Finish(telemetry.StateDone)

	srv := obs.NewServer()
	srv.SetChecks(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, ct, classic := getBody(t, ts.URL+"/metrics", "")
	if st != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("classic /metrics: %d %s", st, ct)
	}
	if strings.Contains(classic, "# EOF") || strings.Contains(classic, "trace_id") {
		t.Error("classic exposition contains OpenMetrics syntax")
	}

	st, ct, om := getBody(t, ts.URL+"/metrics", "application/openmetrics-text; version=1.0.0, text/plain;q=0.5")
	if st != http.StatusOK || !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics /metrics: %d %s", st, ct)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("OpenMetrics exposition missing # EOF terminator:\n...%s", om[max(0, len(om)-200):])
	}
	if !strings.Contains(om, `# {trace_id="feedc0dedeadbeef"}`) {
		t.Error("OpenMetrics exposition missing the latency exemplar")
	}
	// OpenMetrics counter families are TYPEd without the _total suffix.
	if !strings.Contains(om, "# TYPE rats_check_executions counter") {
		t.Error("OpenMetrics exposition missing suffix-less counter TYPE")
	}
	if !strings.Contains(om, "rats_check_executions_total ") {
		t.Error("OpenMetrics exposition missing _total sample")
	}

	// A generic browser Accept header stays on the classic format.
	_, ct, _ = getBody(t, ts.URL+"/metrics", "text/html,application/xhtml+xml,*/*;q=0.8")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("browser Accept negotiated %s, want classic text/plain", ct)
	}
}

// TestTracezConcurrentWithLoad hammers /tracez (JSON and Chrome) and
// /metrics while traces churn — run under -race this proves snapshot
// reads never race trace finishing.
func TestTracezConcurrentWithLoad(t *testing.T) {
	tracer := rtrace.New(rtrace.Options{RingSize: 8})
	srv := obs.NewServer()
	srv.SetTraces(tracer)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, traces = 4, 50
	var wgW, wgR sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			for i := 0; i < traces; i++ {
				status := 200
				if i%7 == 0 {
					status = 422
				}
				tr := tracer.Start("check")
				tr.Phase("work").SetInt("writer", int64(w))
				sp := tr.Phase("flight").Child("enum.worker")
				sp.Event("enumerated", rtrace.Int("executions", int64(i)))
				sp.End()
				tr.SetStatus(status, "")
				tr.Finish()
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wgR.Add(1)
		go func(r int) {
			defer wgR.Done()
			paths := []string{"/tracez", "/tracez?format=chrome", "/tracez?id=nope"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + paths[(r+i)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(r)
	}

	// Writers finish first; then stop the readers.
	wgW.Wait()
	close(stop)
	wgR.Wait()

	if got := tracer.Stats().Finished; got != writers*traces {
		t.Fatalf("finished=%d, want %d", got, writers*traces)
	}
}
