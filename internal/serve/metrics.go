package serve

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the robustness counters the service exports: how much
// work arrived, how much was served from where, and — the point of the
// exercise — exactly how the rest was turned away.
type metrics struct {
	requests        atomic.Int64 // every /check request
	ok              atomic.Int64 // 200 responses
	checked         atomic.Int64 // checks actually enumerated
	cacheHits       atomic.Int64 // verdicts served from the LRU
	rejectedInput   atomic.Int64 // 400/413: malformed or oversized input
	rateLimited     atomic.Int64 // 429: token bucket empty
	shed            atomic.Int64 // 503: queue full
	deadlines       atomic.Int64 // deadline/disconnect cancellations
	limits          atomic.Int64 // execution/transition budget trips
	witnessSearches atomic.Int64 // witness enumerations run under admission
	witnessDrops    atomic.Int64 // witnesses omitted: gates, deadline, or failed search
	internal        atomic.Int64 // unexpected checker errors
	drains          atomic.Int64 // BeginDrain transitions
	queued          atomic.Int64 // gauge: requests waiting for a worker
	running         atomic.Int64 // gauge: checks executing now
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Requests        int64 `json:"requests"`
	OK              int64 `json:"ok"`
	Checked         int64 `json:"checked"`
	CacheHits       int64 `json:"cache_hits"`
	RejectedInput   int64 `json:"rejected_input"`
	RateLimited     int64 `json:"rate_limited"`
	Shed            int64 `json:"shed"`
	Deadlines       int64 `json:"deadlines"`
	Limits          int64 `json:"limits"`
	WitnessSearches int64 `json:"witness_searches"`
	WitnessDrops    int64 `json:"witness_drops"`
	Internal        int64 `json:"internal"`
	Drains          int64 `json:"drains"`
	Queued          int64 `json:"queued"`
	Running         int64 `json:"running"`
	CacheSize       int64 `json:"cache_size"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Requests:        s.m.requests.Load(),
		OK:              s.m.ok.Load(),
		Checked:         s.m.checked.Load(),
		CacheHits:       s.m.cacheHits.Load(),
		RejectedInput:   s.m.rejectedInput.Load(),
		RateLimited:     s.m.rateLimited.Load(),
		Shed:            s.m.shed.Load(),
		Deadlines:       s.m.deadlines.Load(),
		Limits:          s.m.limits.Load(),
		WitnessSearches: s.m.witnessSearches.Load(),
		WitnessDrops:    s.m.witnessDrops.Load(),
		Internal:        s.m.internal.Load(),
		Drains:          s.m.drains.Load(),
		Queued:          s.m.queued.Load(),
		Running:         s.m.running.Load(),
	}
	if s.cache != nil {
		st.CacheSize = int64(s.cache.len())
	}
	return st
}

// WriteMetrics renders the service counters in Prometheus text
// exposition, for mounting on the obs server via AddMetricsFunc.
func (s *Service) WriteMetrics(w io.Writer) {
	st := s.Stats()
	counters := []struct {
		name, help string
		value      int64
	}{
		{"requests", "Check requests received.", st.Requests},
		{"ok", "Check requests answered 200.", st.OK},
		{"checked", "Checks that ran an enumeration.", st.Checked},
		{"cache_hits", "Verdicts served from the canonical LRU cache.", st.CacheHits},
		{"rejected_input", "Requests rejected before enumeration (bad JSON, parse, validation, size).", st.RejectedInput},
		{"rate_limited", "Requests rejected by the per-client token bucket.", st.RateLimited},
		{"shed", "Requests shed because the work queue was full.", st.Shed},
		{"deadline_exceeded", "Checks cancelled by deadline or client disconnect.", st.Deadlines},
		{"limit_exceeded", "Checks stopped by the execution or transition budget.", st.Limits},
		{"witness_searches", "Witness enumerations run under admission control.", st.WitnessSearches},
		{"witness_drops", "Witness requests degraded to a witness-less response.", st.WitnessDrops},
		{"internal_errors", "Checks that failed unexpectedly.", st.Internal},
		{"drains", "Times the service entered drain.", st.Drains},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP rats_serve_%s_total %s\n# TYPE rats_serve_%s_total counter\nrats_serve_%s_total %d\n",
			c.name, c.help, c.name, c.name, c.value)
	}
	gauges := []struct {
		name, help string
		value      int64
	}{
		{"queue_depth", "Requests waiting for a worker slot.", st.Queued},
		{"in_flight", "Checks executing right now.", st.Running},
		{"cache_entries", "Verdicts resident in the LRU cache.", st.CacheSize},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP rats_serve_%s %s\n# TYPE rats_serve_%s gauge\nrats_serve_%s %d\n",
			g.name, g.help, g.name, g.name, g.value)
	}
}
