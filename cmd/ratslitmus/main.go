// Command ratslitmus runs the litmus suite through both the
// programmer-centric race-classification model (Listing 7 of the paper)
// and the system-centric relaxed-execution model, reporting per-test
// verdicts under DRF0, DRF1, and DRFrlx, plus the Theorem 3.1 validation.
//
// Usage:
//
//	ratslitmus                   # full suite
//	ratslitmus -j 8              # suite with 8 parallel checkers
//	ratslitmus -mode materialize # two-phase reference pipeline
//	ratslitmus -table1           # Table 1 (use cases and applications)
//	ratslitmus -theorem          # Theorem 3.1 validation only
//	ratslitmus -file t.litmus    # check a litmus file (with -witness for
//	                             # a concrete racy execution)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print Table 1 and exit")
		theorem = flag.Bool("theorem", false, "run only the Theorem 3.1 validation")
		file    = flag.String("file", "", "check a single litmus file instead of the suite")
		witness = flag.Bool("witness", false, "with -file: print a witness execution for the first illegal race")
		infer   = flag.Bool("infer", false, "with -file: infer the cheapest legal atomic labelling")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "suite-level parallelism (test cases checked concurrently)")
		mode    = flag.String("mode", "streaming", "analysis pipeline: streaming|materialize")
	)
	flag.Parse()

	opts, err := pipelineOptions(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(2)
	}

	if *file != "" {
		checkFile(*file, *witness, *infer, opts)
		return
	}

	suite := litmus.Suite()
	if *table1 {
		fmt.Println("Table 1: GPU relaxed atomic use cases")
		fmt.Printf("  %-28s %s\n", "category", "application")
		for _, tc := range suite {
			if tc.UseCase != "" {
				fmt.Printf("  %-28s %s\n", tc.UseCase, tc.App)
			}
		}
		return
	}

	// Check test cases on a worker pool. Each case renders its report into
	// a private buffer, and buffers are printed in suite order, so the
	// output is deterministic and identical to a serial run regardless of
	// -j.
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	if workers > len(suite) {
		workers = len(suite)
	}
	type result struct {
		out  string
		fail int
		err  error
	}
	results := make([]result, len(suite))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out, nfail, err := runCase(suite[i], *theorem, opts)
				results[i] = result{out: out, fail: nfail, err: err}
			}
		}()
	}
	for i := range suite {
		idx <- i
	}
	close(idx)
	wg.Wait()

	fail := 0
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", r.err)
			os.Exit(1)
		}
		fmt.Print(r.out)
		fail += r.fail
	}
	if fail > 0 {
		fmt.Printf("\n%d mismatches\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall litmus verdicts match and Theorem 3.1 holds on every legal test")
}

// pipelineOptions maps the -mode flag onto CheckOptions.
func pipelineOptions(mode string) (memmodel.CheckOptions, error) {
	switch mode {
	case "streaming":
		return memmodel.CheckOptions{}, nil
	case "materialize":
		return memmodel.CheckOptions{Materialize: true}, nil
	}
	return memmodel.CheckOptions{}, fmt.Errorf("unknown -mode %q (want streaming or materialize)", mode)
}

// runCase checks one suite case under every model plus the theorem
// validation, returning its rendered report and mismatch count.
func runCase(tc litmus.Case, theoremOnly bool, opts memmodel.CheckOptions) (string, int, error) {
	var b strings.Builder
	fail := 0
	if !theoremOnly {
		fmt.Fprintf(&b, "%-26s %s\n", tc.Prog.Name, tc.Notes)
		for i, m := range core.Models() {
			v, err := memmodel.CheckProgramWith(tc.Prog, m, opts)
			if err != nil {
				return "", 0, err
			}
			status := "ok"
			if v.Legal != tc.Legal[i] {
				status = "MISMATCH"
				fail++
			}
			fmt.Fprintf(&b, "  %-8s legal=%-5v expected=%-5v %-9s %s\n",
				m, v.Legal, tc.Legal[i], status, raceSummary(v))
		}
	}
	rep, err := memmodel.ValidateTheorem(tc.Prog)
	if err != nil {
		return "", 0, err
	}
	ok := !rep.Legal || rep.SystemSC
	status := "theorem holds"
	if !ok {
		status = "THEOREM VIOLATED"
		fail++
	}
	fmt.Fprintf(&b, "  %-8s system results=%d SC results=%d: %s\n", "sys", rep.SystemCount, rep.SCCount, status)
	return b.String(), fail, nil
}

func raceSummary(v *memmodel.Verdict) string {
	if v.Legal {
		return ""
	}
	out := ""
	for _, k := range memmodel.RaceKinds() {
		if n := len(v.Races[k]); n > 0 {
			if out != "" {
				out += ", "
			}
			out += fmt.Sprintf("%d %s(s)", n, k)
		}
	}
	return out
}

// checkFile parses and checks one litmus file under all three models.
func checkFile(path string, witness, infer bool, opts memmodel.CheckOptions) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}
	p, err := litmus.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}
	for _, m := range core.Models() {
		v, err := memmodel.CheckProgramWith(p, m, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		fmt.Println(v.Summary())
		if witness && !v.Legal {
			w, err := memmodel.FindWitness(p, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ratslitmus:", err)
				os.Exit(1)
			}
			if w != nil {
				fmt.Println(w)
			}
		}
	}
	if infer {
		fmt.Println("\nannotatable sites:")
		for i, s := range memmodel.Sites(p) {
			fmt.Printf("  %d: %s\n", i, s)
		}
		labels, err := memmodel.InferLabels(p, memmodel.InferOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		if len(labels) == 0 {
			fmt.Println("no legal labelling exists (data races?)")
		} else {
			fmt.Printf("minimum-cost legal labellings (%d):\n", len(labels))
			for _, l := range labels {
				fmt.Println("  ", l)
			}
		}
	}

	rep, err := memmodel.ValidateTheorem(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}
	if rep.Legal {
		if rep.SystemSC {
			fmt.Println("system model: all relaxed executions SC (Theorem 3.1 holds)")
		} else {
			fmt.Println("system model: THEOREM VIOLATED — relaxed executions escape SC")
		}
	} else {
		fmt.Printf("system model: %d reachable results (illegal program; %d outside SC)\n",
			rep.SystemCount, len(rep.NonSCResults))
	}
}
