package core

import "fmt"

// Model is one of the three consistency models the paper evaluates.
type Model uint8

const (
	// DRF0 treats every atomic as paired (SC atomic).
	DRF0 Model = iota
	// DRF1 distinguishes paired from unpaired atomics; everything that is
	// not paired behaves as unpaired (Adve & Hill's DRF1, Section 2.3).
	DRF1
	// DRFrlx is the paper's model: paired, unpaired, and the four relaxed
	// classes each get their own treatment.
	DRFrlx
)

// Models lists the three models in evaluation order.
func Models() []Model { return []Model{DRF0, DRF1, DRFrlx} }

func (m Model) String() string {
	switch m {
	case DRF0:
		return "DRF0"
	case DRF1:
		return "DRF1"
	case DRFrlx:
		return "DRFrlx"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// ParseModel converts a model name ("DRF0", "DRF1", "DRFrlx", case as
// written in the paper) to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "DRF0", "drf0":
		return DRF0, nil
	case "DRF1", "drf1":
		return DRF1, nil
	case "DRFrlx", "drfrlx", "DRFRLX":
		return DRFrlx, nil
	}
	return DRF0, fmt.Errorf("core: unknown model %q", s)
}

// Overlap describes how much memory-level parallelism the system may
// extract for an atomic under a given model (the third row of Table 4).
type Overlap uint8

const (
	// OverlapNone: the atomic may not be outstanding concurrently with
	// any other memory operation of its thread (SC atomic behaviour).
	OverlapNone Overlap = iota
	// OverlapAtomicSerial: the atomic may overlap with data operations
	// but must stay in program order with other atomics (unpaired).
	OverlapAtomicSerial
	// OverlapFree: the atomic may overlap with anything (relaxed).
	OverlapFree
)

func (o Overlap) String() string {
	switch o {
	case OverlapNone:
		return "none"
	case OverlapAtomicSerial:
		return "atomic-serial"
	case OverlapFree:
		return "free"
	}
	return fmt.Sprintf("Overlap(%d)", uint8(o))
}

// Behavior is the set of consistency actions a system must take for one
// memory operation under one model. It encodes Table 4 of the paper.
type Behavior struct {
	// InvalidateOnLoad: an atomic load with this behaviour is an acquire:
	// the L1 must self-invalidate (potentially) stale data before
	// subsequent reads.
	InvalidateOnLoad bool
	// FlushOnStore: an atomic store with this behaviour is a release: the
	// store buffer must be flushed (all prior writes made visible) before
	// the store performs.
	FlushOnStore bool
	// Overlap bounds the memory-level parallelism available to the
	// operation.
	Overlap Overlap
}

// pairedBehavior is the SC-atomic treatment.
var pairedBehavior = Behavior{InvalidateOnLoad: true, FlushOnStore: true, Overlap: OverlapNone}

// unpairedBehavior removes acquire/release actions but keeps atomics in
// program order with each other.
var unpairedBehavior = Behavior{Overlap: OverlapAtomicSerial}

// relaxedBehavior removes all constraints (bounded only by hardware
// resources such as MSHRs).
var relaxedBehavior = Behavior{Overlap: OverlapFree}

// Effective maps a programmer-annotated class to the class the model
// actually distinguishes. DRF0 collapses every atomic to paired; DRF1
// collapses the relaxed classes to unpaired; DRFrlx keeps all classes.
//
// This mirrors how the paper's benchmark variants were built: the same
// annotated source is run under each model with weaker annotations
// conservatively strengthened.
func (m Model) Effective(c Class) Class {
	if c == Data {
		return Data
	}
	switch m {
	case DRF0:
		return Paired
	case DRF1:
		// Acquire/release order data accesses, so DRF1 (which has no such
		// category) must keep them paired; everything else relaxes to
		// unpaired.
		if c.OrdersLikePaired() {
			return Paired
		}
		return Unpaired
	default: // DRFrlx
		return c
	}
}

// acquireBehavior invalidates on loads but permits atomic-serial overlap
// (no full SC fence) — the Section 7 release-acquire extension.
var acquireBehavior = Behavior{InvalidateOnLoad: true, Overlap: OverlapAtomicSerial}

// releaseBehavior flushes on stores but permits atomic-serial overlap.
var releaseBehavior = Behavior{FlushOnStore: true, Overlap: OverlapAtomicSerial}

// Behavior returns the consistency actions required for an operation of
// class c under model m.
func (m Model) Behavior(c Class) Behavior {
	switch eff := m.Effective(c); {
	case eff == Data:
		return relaxedBehavior // data ops are unconstrained between syncs
	case eff == Paired:
		return pairedBehavior
	case eff == Unpaired:
		return unpairedBehavior
	case eff == Acquire:
		return acquireBehavior
	case eff == Release:
		return releaseBehavior
	default: // the four relaxed classes under DRFrlx
		return relaxedBehavior
	}
}

// Benefit is one row of Table 4.
type Benefit struct {
	Name string
	// Has[m] reports whether model m provides the benefit (for its
	// weakest applicable atomic class).
	Has [3]bool
}

// BenefitsTable reproduces Table 4 of the paper programmatically from the
// Behavior definitions, so the table can never drift from the simulator's
// actual policies.
func BenefitsTable() []Benefit {
	weakest := map[Model]Class{DRF0: Paired, DRF1: Unpaired, DRFrlx: Commutative}
	rows := []struct {
		name string
		has  func(b Behavior) bool
	}{
		{"Avoid cache invalidations at atomic loads", func(b Behavior) bool { return !b.InvalidateOnLoad }},
		{"Avoid store buffer flushes at atomic stores", func(b Behavior) bool { return !b.FlushOnStore }},
		{"Overlap atomics in the memory system", func(b Behavior) bool { return b.Overlap == OverlapFree }},
	}
	out := make([]Benefit, 0, len(rows))
	for _, r := range rows {
		var ben Benefit
		ben.Name = r.name
		for i, m := range Models() {
			ben.Has[i] = r.has(m.Behavior(weakest[m]))
		}
		out = append(out, ben)
	}
	return out
}
