package trace

import (
	"testing"

	"rats/internal/core"
)

func TestBuilders(t *testing.T) {
	tr := New("t")
	w := tr.AddWarp(3)
	w.Compute(10).
		Load(core.Data, 0x100, 0x104).
		Join().
		Store(core.Data, 0x200).
		Atomic(core.Commutative, core.OpAdd, 2, 0x300).
		AtomicLoad(core.NonOrdering, 0x304).
		AtomicStore(core.Speculative, 0x308, 9).
		ScratchAccess(ScratchStore, 2).
		Barrier()
	if w.CU != 3 || w.IsCPU {
		t.Fatal("warp placement wrong")
	}
	kinds := []Kind{Compute, Load, Join, Store, Atomic, Atomic, Atomic, ScratchStore, ScratchStore, Barrier}
	if len(w.Ops) != len(kinds) {
		t.Fatalf("op count %d, want %d", len(w.Ops), len(kinds))
	}
	for i, k := range kinds {
		if w.Ops[i].Kind != k {
			t.Errorf("op %d kind %v, want %v", i, w.Ops[i].Kind, k)
		}
	}
	if tr.NumOps() != len(kinds) {
		t.Errorf("NumOps = %d", tr.NumOps())
	}
	cpu := tr.AddCPUThread()
	if !cpu.IsCPU {
		t.Error("CPU thread flag missing")
	}
}

func TestAtomicLanes(t *testing.T) {
	tr := New("t")
	w := tr.AddWarp(0)
	w.AtomicLanes(core.Commutative, core.OpAdd, []uint64{0, 4}, []int64{3, 5})
	op := w.Ops[0]
	if op.Operands[0] != 3 || op.Operands[1] != 5 {
		t.Fatal("per-lane operands lost")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	w.AtomicLanes(core.Commutative, core.OpAdd, []uint64{0}, []int64{1, 2})
}

func TestKindPredicates(t *testing.T) {
	mem := map[Kind]bool{Load: true, Store: true, Atomic: true}
	for _, k := range []Kind{Compute, Load, Store, Atomic, ScratchLoad, ScratchStore, Barrier, Join} {
		if k.IsMem() != mem[k] {
			t.Errorf("%v.IsMem() = %v", k, k.IsMem())
		}
		if k.String() == "" || k.String()[0] == 'K' {
			t.Errorf("%v has no name", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestAtomicStoreSemantics(t *testing.T) {
	tr := New("t")
	w := tr.AddWarp(0)
	w.AtomicStore(core.Quantum, 0x10, 7)
	op := w.Ops[0]
	if op.AOp != core.OpStore || op.Operand != 7 || op.Class != core.Quantum {
		t.Fatalf("atomic store op wrong: %+v", op)
	}
	w.AtomicLoad(core.Unpaired, 0x20)
	op = w.Ops[1]
	if op.AOp != core.OpLoad || len(op.Addrs) != 1 {
		t.Fatalf("atomic load op wrong: %+v", op)
	}
}

func TestInitSeeding(t *testing.T) {
	tr := New("t")
	tr.Init[0x40] = 9
	if tr.Init[0x40] != 9 {
		t.Fatal("init lost")
	}
	if tr.Name != "t" {
		t.Fatal("name lost")
	}
}
