// Package energy computes the per-component energy breakdown the paper
// reports (Figures 3(b) and 4(b)): GPU core+, scratchpad, L1, L2, and
// network. Like GPUWattch/McPAT it is an event-based model: each counted
// event costs a fixed per-access energy, plus static power integrated
// over execution time. Absolute values are arbitrary-but-fixed picojoule
// scale; only relative comparisons across configurations are meaningful,
// matching how the paper presents energy (normalized to GD0).
package energy

import "rats/internal/stats"

// Model holds per-event energies (picojoules) and per-cycle static power
// (picojoules per cycle) for each component.
type Model struct {
	// Dynamic per-event energies.
	CoreOp        float64
	ScratchAccess float64
	L1Access      float64
	L2Access      float64
	DRAMAccess    float64 // accounted to the L2 component (off-chip port)
	FlitHop       float64

	// Static power per cycle.
	CoreStatic    float64
	ScratchStatic float64
	L1Static      float64
	L2Static      float64
	NoCStatic     float64
}

// DefaultModel returns energies loosely calibrated to GPUWattch/McPAT
// relative magnitudes: DRAM ≫ L2 > NoC hop ≈ L1 > scratchpad ≈ core op.
func DefaultModel() Model {
	return Model{
		CoreOp:        12,
		ScratchAccess: 8,
		L1Access:      20,
		L2Access:      55,
		DRAMAccess:    320,
		FlitHop:       6,

		CoreStatic:    1.6,
		ScratchStatic: 0.2,
		L1Static:      0.4,
		L2Static:      1.0,
		NoCStatic:     0.6,
	}
}

// Breakdown is the per-component energy of one run, in picojoules.
type Breakdown struct {
	Core    float64
	Scratch float64
	L1      float64
	L2      float64
	NoC     float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Core + b.Scratch + b.L1 + b.L2 + b.NoC }

// Components lists the breakdown in the paper's order.
func (b Breakdown) Components() []struct {
	Name  string
	Value float64
} {
	return []struct {
		Name  string
		Value float64
	}{
		{"GPU core+", b.Core},
		{"Scratch", b.Scratch},
		{"L1", b.L1},
		{"L2", b.L2},
		{"NoC", b.NoC},
	}
}

// Compute evaluates the model over a run's statistics.
func Compute(s *stats.Stats, m Model) Breakdown {
	cyc := float64(s.Cycles)
	return Breakdown{
		Core:    float64(s.CoreOps)*m.CoreOp + cyc*m.CoreStatic,
		Scratch: float64(s.ScratchAccesses)*m.ScratchAccess + cyc*m.ScratchStatic,
		L1:      float64(s.L1Accesses)*m.L1Access + cyc*m.L1Static,
		L2:      float64(s.L2Accesses)*m.L2Access + float64(s.DRAMAccesses)*m.DRAMAccess + cyc*m.L2Static,
		NoC:     float64(s.NoCFlitHops)*m.FlitHop + cyc*m.NoCStatic,
	}
}
