package memmodel

import (
	"rats/internal/core"
	"rats/internal/litmus"

	"rats/internal/memmodel/rel"
)

// Relations bundles the per-execution relations of Sections 2.3 and 3.3:
// program order, the paper's conflict order (all conflicting accesses
// ordered by the SC total order T — a superset of Herd's co/rf/fr),
// synchronization order so1, happens-before hb1, and the derived
// program/conflict-graph reachability relations the non-ordering detector
// needs.
type Relations struct {
	N int
	// Core relations.
	PO       rel.Rel // program order
	Conflict rel.Rel // symmetric conflict (same loc, ≥1 write)
	CO       rel.Rel // conflict order: conflict ∩ (T-earlier × T-later)
	SO1      rel.Rel // synchronization order 1 (paired W → paired R)
	HB1      rel.Rel // happens-before-1 = (po ∪ so1)+
	Race     rel.Rel // symmetric: conflict, cross-thread, hb1-unordered

	// Program/conflict graph reachability.
	G      rel.Rel // po ∪ co (graph edges)
	Reach  rel.Rel // G* (reflexive)
	POPath rel.Rel // G* ; po ; G*  (paths containing ≥1 po edge)

	// Event sets.
	Present        []bool
	IsW, IsR       []bool
	IsAtomic, IsPU []bool // PU: paired or unpaired
	Class          []core.Class
	Observed       []bool // loaded value feeds a later dependency
	SameLoc        rel.Rel
	ValidPath      rel.Rel // hb1 ∪ homogeneous valid ordering paths
}

// Analyzer is a reusable race-analysis context: it owns every relation,
// bitset, and pair buffer BuildRelations and Analyze need, so repeated
// analyses of executions from the same program run with ~zero allocations
// per execution. The *Relations and *Analysis it returns borrow the
// arena: they are valid until the next BuildRelations/Analyze call on the
// same Analyzer. An Analyzer must not be used from multiple goroutines
// concurrently; the streaming CheckProgram pipeline gives each analysis
// worker its own.
type Analyzer struct {
	prog *litmus.Program
	lay  eventLayout
	n    int

	rels Relations

	// Scratch relations.
	tBefore  rel.Rel // T-earlier × T-later over present events
	invReach rel.Rel
	hEdges   rel.Rel // valid-path homogeneous edge set
	hStar    rel.Rel
	poRestr  rel.Rel
	tmp1     rel.Rel
	tmp2     rel.Rel
	dRel     rel.Rel // per-kind race relations
	cRel     rel.Rel
	nRel     rel.Rel
	qRel     rel.Rel
	sRel     rel.Rel

	// Scratch event sets.
	present    rel.Bits
	after      rel.Bits
	wBits      rel.Bits
	pwBits     rel.Bits // so1 sources (paired/release writes)
	prBits     rel.Bits // so1 targets (paired/acquire reads)
	atomicBits rel.Bits
	puBits     rel.Bits
	scr        rel.Bits
	threadBits []rel.Bits
	locBits    []rel.Bits
	locIdx     map[litmus.Loc]int
	classBits  []rel.Bits // indexed by core.Class; static per program
	// Static per-program event tables (event IDs are stable across
	// executions, so everything derivable from the static ops alone is
	// computed once in ensure): issuing thread and location index,
	// access-kind flags, and the candidate sets the per-execution loops
	// only need to mask with Present.
	evThread     []int
	evLoc        []int
	evWrites     []bool
	evReads      []bool
	evClass      []core.Class
	pwStatic     rel.Bits // paired/release writes
	prStatic     rel.Bits // paired/acquire reads
	puStatic     rel.Bits // paired or unpaired accesses
	atomicStatic rel.Bits
	// Observability precompute: obsAlways[id] marks events whose loaded
	// value feeds a later branch condition or guard of the thread (always
	// evaluated, so always observed when the event is present); obsUse[id]
	// lists the later same-thread events that use the destination register
	// in their address/data/expected inputs (observed only when that user
	// is itself present).
	obsAlways []bool
	obsUse    [][]int

	pairBuf  [][2]int
	analysis Analysis
}

// NewAnalyzer returns an empty analysis arena. It sizes itself lazily to
// the first program analyzed and re-sizes transparently when fed
// executions of a different program.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// ensure re-dimensions the arena for p's event layout. Repeated calls for
// the same program are pointer-compare cheap.
func (a *Analyzer) ensure(p *litmus.Program) {
	if a.prog == p {
		return
	}
	a.prog = p
	a.lay = layout(p)
	n := a.lay.n
	sameN := n == a.n
	a.n = n

	r := &a.rels
	r.N = n
	rels := [...]*rel.Rel{
		&r.PO, &r.Conflict, &r.CO, &r.SO1, &r.HB1, &r.Race,
		&r.G, &r.Reach, &r.POPath, &r.SameLoc, &r.ValidPath,
		&a.tBefore, &a.invReach, &a.hEdges, &a.hStar,
		&a.poRestr, &a.tmp1, &a.tmp2,
		&a.dRel, &a.cRel, &a.nRel, &a.qRel, &a.sRel,
	}
	if sameN {
		for _, rp := range rels {
			*rp = rp.Resized(n)
		}
	} else {
		// Dimension change (or first use): carve every relation from one
		// slab so arena setup costs one allocation, not one per relation.
		slab := rel.NewSlab(n, len(rels))
		for i, rp := range rels {
			*rp = slab[i]
		}
	}

	r.Present = boolBuf(r.Present, n)
	r.IsW = boolBuf(r.IsW, n)
	r.IsR = boolBuf(r.IsR, n)
	r.IsAtomic = boolBuf(r.IsAtomic, n)
	r.IsPU = boolBuf(r.IsPU, n)
	r.Observed = boolBuf(r.Observed, n)
	if cap(r.Class) < n {
		r.Class = make([]core.Class, n)
	}
	r.Class = r.Class[:n]

	if !sameN {
		bits := rel.MakeBitsSlab(n, 12)
		a.present, a.after, a.wBits, a.pwBits = bits[0], bits[1], bits[2], bits[3]
		a.prBits, a.atomicBits, a.puBits, a.scr = bits[4], bits[5], bits[6], bits[7]
		a.pwStatic, a.prStatic, a.puStatic, a.atomicStatic = bits[8], bits[9], bits[10], bits[11]
		a.threadBits = nil
		a.locBits = nil
		a.classBits = nil
	} else {
		a.pwStatic.Reset()
		a.prStatic.Reset()
		a.puStatic.Reset()
		a.atomicStatic.Reset()
	}
	if len(a.threadBits) != len(p.Threads) {
		a.threadBits = rel.MakeBitsSlab(n, len(p.Threads))
	}
	nc := 0
	for _, c := range core.Classes() {
		if int(c)+1 > nc {
			nc = int(c) + 1
		}
	}
	if len(a.classBits) != nc {
		a.classBits = rel.MakeBitsSlab(n, nc)
	} else {
		for c := range a.classBits {
			a.classBits[c].Reset()
		}
	}
	locs := a.lay.locs
	if a.locIdx == nil || len(a.locBits) < len(locs) || !sameN {
		a.locIdx = make(map[litmus.Loc]int, len(locs))
		a.locBits = rel.MakeBitsSlab(n, len(locs))
	} else {
		for k := range a.locIdx {
			delete(a.locIdx, k)
		}
		a.locBits = a.locBits[:len(locs)]
	}
	for i, l := range locs {
		a.locIdx[l] = i
	}
	if cap(a.evThread) < n {
		a.evThread = make([]int, n)
		a.evLoc = make([]int, n)
	}
	a.evThread = a.evThread[:n]
	a.evLoc = a.evLoc[:n]
	a.evWrites = boolBuf(a.evWrites, n)
	a.evReads = boolBuf(a.evReads, n)
	if cap(a.evClass) < n {
		a.evClass = make([]core.Class, n)
	}
	a.evClass = a.evClass[:n]
	a.obsAlways = boolBuf(a.obsAlways, n)
	if cap(a.obsUse) < n {
		a.obsUse = make([][]int, n)
	}
	a.obsUse = a.obsUse[:n]
	for t, th := range p.Threads {
		for i := range th.Ops {
			op := &th.Ops[i]
			id := a.lay.id[t][i]
			if id < 0 {
				continue
			}
			a.evThread[id] = t
			a.evLoc[id] = a.locIdx[op.Loc]
			a.evWrites[id] = op.Writes()
			a.evReads[id] = op.Reads()
			cls := op.Class
			a.evClass[id] = cls
			a.classBits[cls].Set(id)
			if cls.IsAtomic() {
				a.atomicStatic.Set(id)
			}
			if cls == core.Paired || cls == core.Unpaired {
				a.puStatic.Set(id)
			}
			if (cls == core.Paired || cls == core.Release) && op.Writes() {
				a.pwStatic.Set(id)
			}
			if (cls == core.Paired || cls == core.Acquire) && op.Reads() {
				a.prStatic.Set(id)
			}
			// Observability scan (the paper's Herd approximation): the
			// destination register feeds the address, data, or control
			// (branch/guard) inputs of a later instruction of the thread.
			// Branch conditions and guards are always evaluated, so those
			// uses observe unconditionally; other uses only count in
			// executions where the using op is present.
			a.obsAlways[id] = false
			a.obsUse[id] = a.obsUse[id][:0]
			if op.Dst == litmus.NoReg {
				continue
			}
			for j := i + 1; j < len(th.Ops); j++ {
				later := &th.Ops[j]
				if later.IsBranch {
					if later.Cond.DependsOn(op.Dst) {
						a.obsAlways[id] = true
						break
					}
					continue
				}
				if later.GuardUsesReg(op.Dst) {
					a.obsAlways[id] = true
					break
				}
				if later.UsesReg(op.Dst) {
					a.obsUse[id] = append(a.obsUse[id], a.lay.id[t][j])
				}
			}
		}
	}
}

// StaticTables is the per-program, execution-independent slice of the
// analysis arena: the event numbering, access-kind flags, class masks,
// synchronization candidate sets, and the observability precompute that
// ensure computes once per program. The solve backend reuses it as its
// constraint store — candidate race pairs and the static happens-before
// over-approximation are derived from these tables with the same
// word-parallel rel kernels the per-execution analysis uses, instead of
// being rebuilt per execution.
//
// The slices alias the arena: they are valid until the Analyzer is next
// fed a different program, and must not be mutated.
type StaticTables struct {
	// N is the event count; ID[t][i] is the event ID of thread t's op i
	// (-1 for branch markers).
	N  int
	ID [][]int
	// Thread and Loc give each event's issuing thread and location index
	// (into Locs); Writes/Reads/Class are the event's static access facts.
	Thread []int
	Loc    []int
	Locs   []litmus.Loc
	Writes []bool
	Reads  []bool
	Class  []core.Class
	// ClassBits[c] is the event set of class c; PW/PR are the so1 edge
	// candidates (paired/release writes, paired/acquire reads); Atomic is
	// the atomic event set.
	ClassBits []rel.Bits
	PW, PR    rel.Bits
	Atomic    rel.Bits
	// ObsAlways marks events whose loaded value feeds a later branch
	// condition or guard (observed whenever present); ObsUse lists the
	// later same-thread events whose address/data/expected inputs read
	// the destination register (observed only when that user is present).
	ObsAlways []bool
	ObsUse    [][]int
}

// Static re-dimensions the arena for p and exposes its static tables.
// Repeated calls for the same program are pointer-compare cheap.
func (a *Analyzer) Static(p *litmus.Program) StaticTables {
	a.ensure(p)
	return StaticTables{
		N:         a.n,
		ID:        a.lay.id,
		Thread:    a.evThread,
		Loc:       a.evLoc,
		Locs:      a.lay.locs,
		Writes:    a.evWrites,
		Reads:     a.evReads,
		Class:     a.evClass,
		ClassBits: a.classBits,
		PW:        a.pwStatic,
		PR:        a.prStatic,
		Atomic:    a.atomicStatic,
		ObsAlways: a.obsAlways,
		ObsUse:    a.obsUse,
	}
}

// boolBuf resizes a reusable []bool buffer.
func boolBuf(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}

// observedInto evaluates the precomputed observability scan against one
// execution's Present set. The analysis is execution-aware: an op skipped
// by a failed guard does not use its operand registers in that execution
// (the misspeculated seqlock read whose value is discarded), which is why
// obsUse entries are gated on the user's presence, while obsAlways
// (branch/guard uses) holds unconditionally.
func (a *Analyzer) observedInto(out []bool, ex *Execution) {
	for id := range out {
		o := false
		if ex.Present[id] {
			if a.obsAlways[id] {
				o = true
			} else {
				for _, u := range a.obsUse[id] {
					if ex.Present[u] {
						o = true
						break
					}
				}
			}
		}
		out[id] = o
	}
}

// BuildRelations computes all relations for one execution into a fresh
// arena. Callers analyzing many executions should allocate one Analyzer
// and use its BuildRelations method instead.
func BuildRelations(ex *Execution) *Relations {
	return NewAnalyzer().BuildRelations(ex)
}

// BuildRelations computes all relations for one execution in the
// analyzer's arena. The returned *Relations is valid until the next
// BuildRelations/Analyze call.
func (a *Analyzer) BuildRelations(ex *Execution) *Relations {
	a.ensure(ex.Prog)
	n := a.n
	r := &a.rels

	copy(r.Class, a.evClass)
	for i := 0; i < n; i++ {
		pres := ex.Present[i]
		r.Present[i] = pres
		r.IsW[i] = pres && a.evWrites[i]
		r.IsR[i] = pres && a.evReads[i]
		r.IsAtomic[i] = pres && a.atomicStatic.Has(i)
		r.IsPU[i] = pres && a.puStatic.Has(i)
	}
	a.observedInto(r.Observed, ex)

	// Event-set masks: present events per thread, per location, writers.
	a.present.Reset()
	a.wBits.Reset()
	for t := range a.threadBits {
		a.threadBits[t].Reset()
	}
	for l := range a.locBits {
		a.locBits[l].Reset()
	}
	for i := 0; i < n; i++ {
		if !ex.Present[i] {
			continue
		}
		a.present.Set(i)
		a.threadBits[a.evThread[i]].Set(i)
		a.locBits[a.evLoc[i]].Set(i)
		if a.evWrites[i] {
			a.wBits.Set(i)
		}
	}

	// Program order, same-location, conflict — one masked row per event:
	// po(i) = later present events of i's thread, sameloc(i) = present
	// events at i's location minus i, conflict(i) = sameloc(i) when i
	// writes, sameloc(i) ∩ writers otherwise.
	r.PO.ClearAll()
	r.SameLoc.ClearAll()
	r.Conflict.ClearAll()
	for i := 0; i < n; i++ {
		if !ex.Present[i] {
			continue
		}
		po := r.PO.Row(i)
		po.CopyFrom(a.threadBits[a.evThread[i]])
		po.KeepAbove(i)
		sl := r.SameLoc.Row(i)
		sl.CopyFrom(a.locBits[a.evLoc[i]])
		sl.Unset(i)
		cf := r.Conflict.Row(i)
		cf.CopyFrom(sl)
		if !r.IsW[i] {
			cf.AndIn(a.wBits)
		}
	}

	// Conflict order: conflicting accesses in T order. tBefore rows are
	// suffix sets of the total order, built in one reverse sweep.
	a.tBefore.ClearAll()
	a.after.Reset()
	for pos := len(ex.Order) - 1; pos >= 0; pos-- {
		id := ex.Order[pos]
		a.tBefore.Row(id).CopyFrom(a.after)
		a.after.Set(id)
	}
	r.CO.CopyFrom(r.Conflict)
	r.CO.InterIn(a.tBefore)

	// so1: paired write → paired read, conflicting, T-ordered. The
	// Section 7 extension classes participate: a release write
	// synchronizes with a paired/acquire read (sound on the simulated
	// multi-copy-atomic machine).
	a.pwBits.CopyFrom(a.pwStatic)
	a.pwBits.AndIn(a.present)
	a.prBits.CopyFrom(a.prStatic)
	a.prBits.AndIn(a.present)
	r.SO1.CrossIn(a.pwBits, a.prBits)
	r.SO1.InterIn(r.CO)

	// hb1 = (po ∪ so1)+.
	r.HB1.CopyFrom(r.PO)
	r.HB1.UnionIn(r.SO1)
	r.HB1.TransCloseIn()

	// Race: conflicting, different threads, hb1-unordered (symmetric).
	r.Race.ClearAll()
	for i := 0; i < n; i++ {
		if !ex.Present[i] {
			continue
		}
		row := r.Race.Row(i)
		row.CopyFrom(r.Conflict.Row(i))
		row.AndNotIn(a.threadBits[a.evThread[i]])
	}
	// Subtract hb1-ordered pairs in both orientations without
	// materializing hb1⁻¹: the word-parallel DiffIn removes the forward
	// orientation, and the reverse orientation of each ordered candidate
	// (a sparse set — cross-thread conflicting pairs only) is cleared
	// pointwise.
	a.tmp1.CopyFrom(r.Race)
	a.tmp1.InterIn(r.HB1)
	r.Race.DiffIn(r.HB1)
	a.tmp1.ForEach(func(i, j int) {
		r.Race.Clear(j, i)
	})

	// Program/conflict graph reachability.
	r.G.CopyFrom(r.PO)
	r.G.UnionIn(r.CO)
	r.Reach.CopyFrom(r.G)
	r.Reach.ReflTransCloseIn()
	a.tmp1.ComposeInto(r.Reach, r.PO)
	r.POPath.ComposeInto(a.tmp1, r.Reach)

	// Valid ordering paths (per Listing 7's operational encoding, which
	// resolves the prose definition): a valid path is an ordering path
	// (it contains a program-order edge) made entirely of hb1 edges
	// (po ∪ so1 — each individually enforced by the system), entirely of
	// same-location edges, or entirely of edges between paired/unpaired
	// accesses. Note it is the path's *edges* that must be in po ∪ so1 —
	// merely having hb1-ordered endpoints is NOT enough: a bare so1 edge
	// is not an ordering path, and crediting it would declare programs
	// legal whose non-ordering stores a compliant system can reorder into
	// non-SC results (found by the exhaustive theorem fuzzer).
	r.ValidPath.ClearAll()
	addVO := func(edges, restr rel.Rel) {
		if restr.Empty() {
			// The contribution hStar;restr;hStar is empty: skip the
			// closure and both compositions.
			return
		}
		a.hStar.CopyFrom(edges)
		a.hStar.ReflTransCloseIn()
		a.tmp1.ComposeInto(a.hStar, restr)
		a.tmp2.ComposeInto(a.tmp1, a.hStar)
		r.ValidPath.UnionIn(a.tmp2)
	}
	a.hEdges.CopyFrom(r.G)
	a.hEdges.InterIn(r.SameLoc)
	a.poRestr.CopyFrom(r.PO)
	a.poRestr.InterIn(r.SameLoc)
	addVO(a.hEdges, a.poRestr)
	a.puBits.CopyFrom(a.puStatic)
	a.puBits.AndIn(a.present)
	a.hEdges.CopyFrom(r.G)
	a.hEdges.RestrictToIn(a.puBits)
	a.poRestr.CopyFrom(r.PO)
	a.poRestr.RestrictToIn(a.puBits)
	addVO(a.hEdges, a.poRestr)
	a.hEdges.CopyFrom(r.PO)
	a.hEdges.UnionIn(r.SO1)
	addVO(a.hEdges, r.PO)

	return r
}
