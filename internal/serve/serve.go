// Package serve implements the hardened race-checking HTTP service
// behind cmd/ratsserve: litmus programs arrive as JSON, are validated,
// canonicalized, and checked on the streaming memmodel pipeline, and the
// service is engineered to stay predictable under overload and hostile
// input — bounded queues shed with 429/503 + Retry-After, per-request
// deadlines cancel the search mid-enumeration, duplicate submissions
// collapse onto one in-flight check and an LRU verdict cache, and
// SIGTERM drains in-flight work before the process exits.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/rtrace"

	// Registers the constraint-solving backend so requests may opt into
	// "mode": "solve".
	_ "rats/internal/memmodel/solve"
)

// TraceHeader is the response header carrying the request's trace ID.
const TraceHeader = "X-Rats-Trace-Id"

// Options configures a Service. The zero value serves with sane
// defaults; every field has an explicit override for tests and tuning.
type Options struct {
	// Workers caps concurrently running checks; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth caps requests waiting for a worker slot beyond the
	// running ones; <= 0 means 4x Workers. Requests beyond the queue are
	// shed with 503 + Retry-After.
	QueueDepth int
	// MaxBodyBytes bounds the request body; <= 0 means 256 KiB.
	MaxBodyBytes int64
	// MaxThreads and MaxOps bound the submitted program before any
	// enumeration starts; <= 0 means 8 threads / 64 total ops.
	MaxThreads int
	MaxOps     int
	// DefaultDeadline applies when the request carries no deadline_ms;
	// <= 0 means 10s. MaxDeadline caps client-requested deadlines
	// (<= 0 means 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// ExecLimit and TransitionLimit are per-check search budgets passed
	// to the checker; 0 means the checker's default execution limit and
	// a 50M-transition budget. Tripping either returns HTTP 422.
	ExecLimit       int
	TransitionLimit int64
	// CacheSize is the LRU verdict cache capacity in entries; <= 0 means
	// 1024, negative... use -1 to disable.
	CacheSize int
	// RatePerSec and RateBurst configure the per-client token bucket;
	// RatePerSec <= 0 disables rate limiting.
	RatePerSec float64
	RateBurst  int
	// Registry, when non-nil, registers every executed check so the obs
	// layer's /checks and rats_check_* metrics cover the service.
	Registry *telemetry.Registry
	// Tracer issues request traces. nil means New builds a default
	// in-process tracer (ring buffer only, no JSONL export): tracing is
	// always on, every response carries a trace ID.
	Tracer *rtrace.Tracer
	// AccessLog, when non-nil, receives one wide-event JSON line per
	// finished request (rtrace.WideEvent). Writes are serialized.
	AccessLog io.Writer
	// now overrides the clock in tests.
	now func() time.Time
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Workers <= 0 {
		v.Workers = runtime.GOMAXPROCS(0)
	}
	if v.QueueDepth <= 0 {
		v.QueueDepth = 4 * v.Workers
	}
	if v.MaxBodyBytes <= 0 {
		v.MaxBodyBytes = 256 << 10
	}
	if v.MaxThreads <= 0 {
		v.MaxThreads = 8
	}
	if v.MaxOps <= 0 {
		v.MaxOps = 64
	}
	if v.DefaultDeadline <= 0 {
		v.DefaultDeadline = 10 * time.Second
	}
	if v.MaxDeadline <= 0 {
		v.MaxDeadline = time.Minute
	}
	if v.TransitionLimit == 0 {
		v.TransitionLimit = 50_000_000
	}
	if v.CacheSize == 0 {
		v.CacheSize = 1024
	}
	if v.now == nil {
		v.now = time.Now
	}
	return v
}

// Service is the race-checking service. Create with New, mount Handler
// on an HTTP server, and call Drain on shutdown.
type Service struct {
	opts  Options
	sem   chan struct{}
	cache *lru[*memmodel.Verdict]
	// witnesses caches rendered witnesses by submission hash: the witness
	// is computed on the submitted program itself (names read back in the
	// submitter's namespace), so the raw text — not the canonical form —
	// is the right key.
	witnesses *lru[string]
	group     singleflight
	rates     *rateTable
	m         metrics
	tracer    *rtrace.Tracer
	logMu     sync.Mutex

	draining atomic.Bool
	inflight sync.WaitGroup
}

// Tracer returns the service's request tracer (for /tracez wiring).
func (s *Service) Tracer() *rtrace.Tracer { return s.tracer }

// New builds a Service from opts.
func New(opts Options) *Service {
	o := opts.withDefaults()
	s := &Service{
		opts:   o,
		sem:    make(chan struct{}, o.Workers),
		tracer: o.Tracer,
	}
	if s.tracer == nil {
		s.tracer = rtrace.New(rtrace.Options{})
	}
	if o.CacheSize > 0 {
		s.cache = newLRU[*memmodel.Verdict](o.CacheSize)
		s.witnesses = newLRU[string](o.CacheSize)
	}
	if o.RatePerSec > 0 {
		burst := o.RateBurst
		if burst <= 0 {
			burst = int(o.RatePerSec) + 1
		}
		s.rates = newRateTable(o.RatePerSec, burst, o.now)
	}
	return s
}

// CheckRequest is the POST /check payload.
type CheckRequest struct {
	// Program is the litmus program in the textual format of
	// internal/litmus (see README).
	Program string `json:"program"`
	// Model is DRF0, DRF1, or DRFrlx; empty means DRFrlx.
	Model string `json:"model,omitempty"`
	// DeadlineMs bounds the check's wall time; 0 means the server
	// default, values above the server cap are clamped.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Witness asks for a human-readable witness execution when the
	// program is illegal.
	Witness bool `json:"witness,omitempty"`
	// Mode selects the checking backend: empty for the default streaming
	// enumeration, "solve" for the constraint-solving backend (exact,
	// verdict-only; typically far faster on contended programs).
	Mode string `json:"mode,omitempty"`
}

// CheckResponse is the POST /check success payload. Verdict fields are
// expressed in the submitted program's own thread/location namespace
// even when the verdict was served from the canonical-program cache.
type CheckResponse struct {
	Name      string              `json:"name"`
	Model     string              `json:"model"`
	Legal     bool                `json:"legal"`
	Races     map[string][]string `json:"races,omitempty"`
	Execs     int                 `json:"execs"`
	SCResults []string            `json:"sc_results"`
	// Cached reports the verdict came from the LRU cache; Coalesced that
	// it was joined onto a concurrent identical check.
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Canonical string `json:"canonical_key"`
	ElapsedMs int64  `json:"elapsed_ms"`
	Witness   string `json:"witness,omitempty"`
	// TraceID identifies the request's trace (also in X-Rats-Trace-Id),
	// resolvable via /tracez?id= and the -traces-out JSONL.
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorResponse is the payload of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: bad_json, bad_body, parse, validate,
	// too_large, rate_limited, overloaded, draining, deadline, limit,
	// canceled, internal.
	Kind string `json:"kind"`
	// Phase, Executions, ElapsedMs detail budget trips (kind limit /
	// deadline).
	Phase      string `json:"phase,omitempty"`
	Executions int64  `json:"executions,omitempty"`
	ElapsedMs  int64  `json:"elapsed_ms,omitempty"`
	// RetryAfterMs mirrors the Retry-After header on 429/503.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// TraceID identifies the request's trace (also in X-Rats-Trace-Id),
	// resolvable via /tracez?id= and the -traces-out JSONL.
	TraceID string `json:"trace_id,omitempty"`
}

// retryAfter is the backoff hint attached to shed responses.
const retryAfter = 1 * time.Second

// Handler returns the service mux: POST /check, GET /healthz, GET
// /readyz.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/check", s.handleCheck)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	return mux
}

// BeginDrain flips the service unready: /readyz and new /check requests
// return 503 while already-admitted checks run to completion.
func (s *Service) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.m.drains.Add(1)
	}
}

// Drain begins draining (if not already begun) and blocks until every
// in-flight check has completed or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) reject(w http.ResponseWriter, tr *rtrace.Trace, status int, kind, msg string) {
	tr.Phase("serialize")
	resp := ErrorResponse{Error: msg, Kind: kind, TraceID: tr.ID()}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		resp.RetryAfterMs = retryAfter.Milliseconds()
	}
	writeJSON(w, status, resp)
	s.finishTrace(tr, status, kind)
}

// finishTrace closes the request trace and emits its wide-event access
// log line. Every response path — success and every rejection — funnels
// through here exactly once.
func (s *Service) finishTrace(tr *rtrace.Trace, status int, kind string) {
	if tr == nil {
		return
	}
	tr.SetStatus(status, kind)
	td := tr.Finish()
	if s.opts.AccessLog == nil || td == nil {
		return
	}
	if line, err := rtrace.WideEvent(td); err == nil {
		s.logMu.Lock()
		s.opts.AccessLog.Write(line)
		s.logMu.Unlock()
	}
}

// handleCheck runs the full request pipeline. Stage order is load-bearing:
// parse and canonicalize before anything stateful so cache hits can be
// served even when the service is shedding or draining, then rate-limit,
// then admission-control the expensive enumeration.
func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	// Track the whole request, not just the enumeration: Drain returns
	// only once every admitted request has written its response.
	s.inflight.Add(1)
	defer s.inflight.Done()

	tr := s.tracer.Start("check")
	tid := tr.ID()
	if tid != "" {
		w.Header().Set(TraceHeader, tid)
		tr.SetAttr("client", clientKey(r))
	}
	s.hit(&s.m.requests, tid)
	if r.Method != http.MethodPost {
		s.reject(w, tr, http.StatusMethodNotAllowed, "method", "POST a JSON check request")
		return
	}
	start := s.opts.now()

	// 1. Bound and decode the body. Only the size limit tripping is the
	// client's input being too large; any other read error is a transport
	// failure (typically an upload aborted mid-body) and gets a 400 that
	// the client likely never sees — it must not count as rejected input.
	tr.Phase("decode")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.hit(&s.m.rejectedInput, tid)
			s.reject(w, tr, http.StatusRequestEntityTooLarge, "too_large",
				"request body exceeds "+strconv.FormatInt(s.opts.MaxBodyBytes, 10)+" bytes")
			return
		}
		s.reject(w, tr, http.StatusBadRequest, "bad_body", "reading request body: "+err.Error())
		return
	}
	var req CheckRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.hit(&s.m.rejectedInput, tid)
		s.reject(w, tr, http.StatusBadRequest, "bad_json", "invalid JSON: "+err.Error())
		return
	}

	// 2. Parse, validate, and size-check the program — all before any
	// enumeration state exists.
	tr.Phase("validate")
	model := core.DRFrlx
	if req.Model != "" {
		model, err = core.ParseModel(req.Model)
		if err != nil {
			s.hit(&s.m.rejectedInput, tid)
			s.reject(w, tr, http.StatusBadRequest, "validate", err.Error())
			return
		}
	}
	mode := memmodel.Mode(req.Mode)
	if mode != memmodel.ModeEnumerate && mode != memmodel.ModeSolve {
		s.hit(&s.m.rejectedInput, tid)
		s.reject(w, tr, http.StatusBadRequest, "validate",
			"unknown mode "+strconv.Quote(req.Mode)+`; use "" or "solve"`)
		return
	}
	prog, err := litmus.Parse(req.Program)
	if err != nil {
		s.hit(&s.m.rejectedInput, tid)
		var pe *litmus.ParseError
		if errors.As(err, &pe) {
			s.reject(w, tr, http.StatusBadRequest, "parse", err.Error())
		} else {
			s.reject(w, tr, http.StatusBadRequest, "validate", err.Error())
		}
		return
	}
	if n := len(prog.Threads); n > s.opts.MaxThreads {
		s.hit(&s.m.rejectedInput, tid)
		s.reject(w, tr, http.StatusBadRequest, "validate",
			"program has "+strconv.Itoa(n)+" threads, server cap is "+strconv.Itoa(s.opts.MaxThreads))
		return
	}
	if n := prog.NumOps(); n > s.opts.MaxOps {
		s.hit(&s.m.rejectedInput, tid)
		s.reject(w, tr, http.StatusBadRequest, "validate",
			"program has "+strconv.Itoa(n)+" operations, server cap is "+strconv.Itoa(s.opts.MaxOps))
		return
	}

	// 3. Canonicalize: equivalent submissions share one cache entry and
	// one in-flight check.
	canon, err := memmodel.Canonicalize(prog)
	if err != nil {
		s.hit(&s.m.rejectedInput, tid)
		s.reject(w, tr, http.StatusBadRequest, "validate", err.Error())
		return
	}
	// The backends produce identical verdicts, but they are cached and
	// coalesced separately: a solve verdict must never satisfy (or join)
	// an enumeration request's flight, whose Execs count differs.
	key := canon.Key + "|" + model.String()
	if mode == memmodel.ModeSolve {
		key += "|solve"
	}
	if tid != "" {
		tr.SetAttr("program", prog.Name)
		tr.SetAttr("model", model.String())
		tr.SetAttr("canonical", canon.Key)
		if mode != memmodel.ModeEnumerate {
			tr.SetAttr("mode", string(mode))
		}
	}

	// 4. Cache: verdict hits cost no enumeration and are served
	// unconditionally — during shed, drain, and rate limiting. A hit that
	// also needs a witness may still require enumeration work; unless the
	// witness is cached too, that work passes the same gates and
	// admission control as a fresh check below.
	var v *memmodel.Verdict
	var witness string
	var cached, coalesced bool
	cacheSpan := tr.Phase("cache")
	if s.cache != nil {
		if cv, ok := s.cache.get(key); ok {
			s.hit(&s.m.cacheHits, tid)
			v, cached = cv, true
		}
	}
	cacheSpan.SetAttr("hit", strconv.FormatBool(cached))
	if cached {
		needWitness := req.Witness && !v.Legal
		if needWitness && s.witnesses != nil {
			if wc, ok := s.witnesses.get(witnessKey(req.Program, model)); ok {
				witness, needWitness = wc, false
				cacheSpan.Event("witness_cache_hit")
			}
		}
		if !needWitness {
			s.respond(w, tr, prog, canon, model, v, witness, start, true, false)
			return
		}
	}

	// 5. Drain gate: no new enumeration — check or witness search —
	// starts while shutting down. A cached verdict still goes out; only
	// its witness search is dropped.
	gates := tr.Phase("gates")
	if s.draining.Load() {
		if cached {
			s.hit(&s.m.witnessDrops, tid)
			gates.Event("witness_dropped", rtrace.Str("reason", "draining"))
			s.respond(w, tr, prog, canon, model, v, "", start, true, false)
			return
		}
		s.reject(w, tr, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	// 6. Per-client rate limit. A witness search on a cached verdict is
	// enumeration work like any other, so it spends a token — but an
	// empty bucket degrades it to a witness-less 200 rather than a 429.
	if s.rates != nil {
		ok, left := s.rates.allow(clientKey(r))
		gates.Event("rate_limit",
			rtrace.Str("allowed", strconv.FormatBool(ok)),
			rtrace.Str("tokens_left", strconv.FormatFloat(left, 'f', 2, 64)))
		if !ok {
			if cached {
				s.hit(&s.m.witnessDrops, tid)
				s.respond(w, tr, prog, canon, model, v, "", start, true, false)
				return
			}
			s.hit(&s.m.rateLimited, tid)
			s.reject(w, tr, http.StatusTooManyRequests, "rate_limited", "per-client rate limit exceeded")
			return
		}
	}

	// 7. Deadline for everything downstream: queue wait, check, and
	// witness search share one budget.
	deadline := s.opts.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		if deadline > s.opts.MaxDeadline {
			deadline = s.opts.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// 8. Single-flight: concurrent identical submissions join one shared
	// check. The shared check runs detached from any single request, so
	// this request waiting out its own deadline (or its client hanging
	// up) ends only its wait, not the flight. The flight span belongs to
	// THIS request: a leader's span hosts the queue/check children (via
	// the closure below); a follower's span only measures its wait, and
	// its role attribute says so.
	if v == nil {
		// Solve-mode checks surface as their own top-level trace phase so
		// /tracez distinguishes solver time from enumeration flights.
		phase := "flight"
		if mode == memmodel.ModeSolve {
			phase = "solve"
		}
		flight := tr.Phase(phase)
		var err error
		v, coalesced, err = s.group.do(ctx, key, func(cctx context.Context) (*memmodel.Verdict, error) {
			return s.admitAndCheck(cctx, canon, model, mode, key, flight)
		})
		flight.SetAttr("role", flightRole(coalesced))
		if err != nil {
			var wc *waitCanceled
			var ce *memmodel.CancelError
			switch {
			case errors.As(err, &wc):
				// This request stopped waiting; the shared check ran (or
				// runs) on for the other waiters.
				s.hit(&s.m.deadlines, tid)
				err = &memmodel.CancelError{Prog: prog.Name, Phase: "wait", Err: wc.Unwrap()}
			case errors.As(err, &ce) && ctx.Err() != nil:
				// The shared check was canceled because this request was
				// its last waiter: report the request's own cause —
				// deadline vs disconnect — alongside the search's
				// diagnostics (the check itself only ever saw
				// context.Canceled from the flight winding down).
				err = &memmodel.CancelError{Prog: ce.Prog, Phase: ce.Phase,
					Executions: ce.Executions, Elapsed: ce.Elapsed, Err: ctx.Err()}
			}
			s.writeCheckError(w, tr, err)
			return
		}
	}

	// 9. Witness search: enumeration on the submitted program, admitted
	// like a check and best-effort — failure degrades to a witness-less
	// verdict, never an error.
	if req.Witness && !v.Legal && witness == "" {
		wsp := tr.Phase("witness")
		witness = s.findWitness(ctx, req.Program, prog, model, wsp)
	}
	s.respond(w, tr, prog, canon, model, v, witness, start, cached, coalesced)
}

// flightRole names this request's side of the singleflight: the leader
// ran the check, a follower coalesced onto it and only waited.
func flightRole(coalesced bool) string {
	if coalesced {
		return "follower"
	}
	return "leader"
}

// admit acquires a worker slot, queueing up to QueueDepth waiters
// behind the busy workers. It fails with errOverloaded when the queue is
// full and with ctx.Err() when the caller's context ends first; on
// success the returned release func must be called to free the slot.
// Every enumeration the service runs — check or witness search — goes
// through here, so the worker/queue bounds hold globally.
func (s *Service) admit(ctx context.Context, traceID string) (func(), error) {
	select {
	case s.sem <- struct{}{}:
	default:
		// All workers busy: queue if there is room.
		if n := s.m.queued.Add(1); n > int64(s.opts.QueueDepth) {
			s.m.queued.Add(-1)
			s.hit(&s.m.shed, traceID)
			return nil, errOverloaded
		}
		select {
		case s.sem <- struct{}{}:
			s.m.queued.Add(-1)
		case <-ctx.Done():
			s.m.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	return func() { <-s.sem }, nil
}

// admitAndCheck acquires a worker slot (respecting the bounded queue)
// and runs the canonical program's check on the requested backend. sp is
// the singleflight leader's flight span (nil when its request already
// finished): queue dwell and the check itself become children under it,
// and the engine's telemetry block is linked to the leader's trace ID.
// key is the cache/singleflight key (mode-suffixed for solve requests).
func (s *Service) admitAndCheck(ctx context.Context, canon *memmodel.Canonical, model core.Model, mode memmodel.Mode, key string, sp *rtrace.Span) (*memmodel.Verdict, error) {
	tid := sp.TraceID()
	qs := sp.Child("queue")
	release, err := s.admit(ctx, tid)
	qs.End()
	if err != nil {
		if errors.Is(err, errOverloaded) {
			return nil, err
		}
		s.hit(&s.m.deadlines, tid)
		return nil, &memmodel.CancelError{Prog: canon.Prog.Name, Phase: "queue", Err: err}
	}
	defer release()

	s.m.running.Add(1)
	defer s.m.running.Add(-1)

	cs := sp.Child("check")
	defer cs.End()
	var tel *telemetry.Check
	if s.opts.Registry != nil {
		tel = s.opts.Registry.NewCheck(canon.Prog.Name+":"+canon.Key[:12], model.String())
		tel.SetTraceID(tid)
	}
	v, err := memmodel.CheckProgramWith(canon.Prog, model, memmodel.CheckOptions{
		Limit:           s.opts.ExecLimit,
		TransitionLimit: s.opts.TransitionLimit,
		Ctx:             ctx,
		Telemetry:       tel,
		Span:            cs,
		Mode:            mode,
	})
	if tel != nil {
		snap := tel.Snapshot()
		cs.Event("enumerated",
			rtrace.Int("executions", snap.Executions),
			rtrace.Str("pruned_pct", strconv.FormatFloat(snap.PrunedPct, 'f', 1, 64)))
	}
	if err != nil {
		var ce *memmodel.CancelError
		if errors.As(err, &ce) {
			s.hit(&s.m.deadlines, tid)
		} else if errors.Is(err, memmodel.ErrLimit) {
			s.hit(&s.m.limits, tid)
		}
		return nil, err
	}
	s.hit(&s.m.checked, tid)
	if s.cache != nil {
		s.cache.put(key, v)
	}
	return v, nil
}

// errOverloaded marks a queue-full shed.
var errOverloaded = errors.New("serve: all workers busy and queue full")

// writeCheckError maps checker errors onto structured HTTP responses.
func (s *Service) writeCheckError(w http.ResponseWriter, tr *rtrace.Trace, err error) {
	var ce *memmodel.CancelError
	var le *memmodel.LimitError
	var status int
	var resp ErrorResponse
	switch {
	case errors.Is(err, errOverloaded):
		s.reject(w, tr, http.StatusServiceUnavailable, "overloaded", "all workers busy and queue full; retry later")
		return
	case errors.As(err, &ce):
		kind := "canceled"
		if errors.Is(ce.Err, context.DeadlineExceeded) {
			kind = "deadline"
		}
		status = http.StatusUnprocessableEntity
		resp = ErrorResponse{
			Error: err.Error(), Kind: kind, Phase: ce.Phase,
			Executions: ce.Executions, ElapsedMs: ce.Elapsed.Milliseconds(),
		}
	case errors.As(err, &le):
		status = http.StatusUnprocessableEntity
		resp = ErrorResponse{
			Error: err.Error(), Kind: "limit", Phase: le.Phase,
			Executions: le.Executions, ElapsedMs: le.Elapsed.Milliseconds(),
		}
	default:
		s.hit(&s.m.internal, tr.ID())
		status = http.StatusInternalServerError
		resp = ErrorResponse{Error: err.Error(), Kind: "internal"}
	}
	tr.Phase("serialize")
	resp.TraceID = tr.ID()
	writeJSON(w, status, resp)
	s.finishTrace(tr, status, resp.Kind)
}

// witnessKey keys the rendered-witness cache by submission text and
// model: witnesses are found on the submitted program itself so names
// read back in the submitter's namespace, which makes equivalent-but-
// renamed submissions distinct entries on purpose.
func witnessKey(src string, model core.Model) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:]) + "|" + model.String()
}

// findWitness runs the witness search on the submitted program under the
// same admission control as a check: a worker slot (queueing if
// necessary) bounds concurrent enumerations and ctx bounds wall time, so
// repeated witness requests can never run more searches than the service
// has capacity for. Successful searches are cached by submission text;
// any admission or search failure yields "" — the caller serves the
// verdict witness-less rather than erroring.
func (s *Service) findWitness(ctx context.Context, src string, prog *litmus.Program, model core.Model, sp *rtrace.Span) string {
	tid := sp.TraceID()
	if s.witnesses != nil {
		if w, ok := s.witnesses.get(witnessKey(src, model)); ok {
			sp.Event("witness_cache_hit")
			return w
		}
	}
	qs := sp.Child("queue")
	release, err := s.admit(ctx, tid)
	qs.End()
	if err != nil {
		s.hit(&s.m.witnessDrops, tid)
		sp.Event("witness_dropped", rtrace.Str("reason", "admission"))
		return ""
	}
	defer release()

	s.m.running.Add(1)
	defer s.m.running.Add(-1)
	s.hit(&s.m.witnessSearches, tid)
	// The witness search is not a registered check, but when the request
	// is traced an ephemeral telemetry block carries the enumerate span
	// to the engine (spans ride telemetry.Check.SetSpan, not EnumOptions,
	// to keep the untraced enumerator layout untouched).
	es := sp.Child("enumerate")
	var wtel *telemetry.Check
	if es != nil {
		wtel = telemetry.NewCheck(prog.Name, model.String())
		wtel.SetSpan(es)
	}
	wit, err := memmodel.FindWitnessWith(prog, model, memmodel.EnumOptions{
		Ctx: ctx, TransitionLimit: s.opts.TransitionLimit, Telemetry: wtel,
	})
	es.End()
	if err != nil || wit == nil {
		s.hit(&s.m.witnessDrops, tid)
		sp.Event("witness_dropped", rtrace.Str("reason", "search"))
		return ""
	}
	rendered := wit.String()
	if s.witnesses != nil {
		s.witnesses.put(witnessKey(src, model), rendered)
	}
	return rendered
}

// respond rewrites the canonical verdict into the request's namespace
// and renders the success payload. It runs no enumeration: the witness,
// if any, was found (or cache-hit) by the caller under admission
// control.
func (s *Service) respond(w http.ResponseWriter, tr *rtrace.Trace,
	prog *litmus.Program, canon *memmodel.Canonical, model core.Model,
	v *memmodel.Verdict, witness string, start time.Time, cached, coalesced bool) {
	if tr != nil {
		outcome := "checked"
		if cached {
			outcome = "cache_hit"
		} else if coalesced {
			outcome = "coalesced"
		}
		tr.SetAttr("outcome", outcome)
		verdict := "illegal"
		if v.Legal {
			verdict = "legal"
		}
		tr.SetAttr("verdict", verdict)
	}
	tr.Phase("serialize")
	rv := canon.RewriteVerdict(v, prog.Name)
	resp := CheckResponse{
		Name:      prog.Name,
		Model:     model.String(),
		Legal:     rv.Legal,
		Execs:     rv.Execs,
		SCResults: sortedKeys(rv.SCResults),
		Cached:    cached,
		Coalesced: coalesced,
		Canonical: canon.Key,
		ElapsedMs: s.opts.now().Sub(start).Milliseconds(),
		Witness:   witness,
		TraceID:   tr.ID(),
	}
	if len(rv.Races) > 0 {
		resp.Races = make(map[string][]string, len(rv.Races))
		for k, descs := range rv.Races {
			resp.Races[k.String()] = descs
		}
	}
	s.hit(&s.m.ok, tr.ID())
	writeJSON(w, http.StatusOK, resp)
	s.finishTrace(tr, http.StatusOK, "")
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
