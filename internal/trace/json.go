package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"rats/internal/core"
)

// JSON serialization for traces, so generated workloads can be dumped,
// inspected, diffed, and replayed (`ratsim -dump`). FinalCheck is a
// function and is not serialized; a reloaded trace runs without its
// functional check.

type jsonOp struct {
	Kind     string   `json:"kind"`
	Cycles   int      `json:"cycles,omitempty"`
	Class    string   `json:"class,omitempty"`
	Scope    string   `json:"scope,omitempty"`
	AOp      string   `json:"aop,omitempty"`
	Operand  int64    `json:"operand,omitempty"`
	Operands []int64  `json:"operands,omitempty"`
	Addrs    []uint64 `json:"addrs,omitempty"`
}

type jsonWarp struct {
	CU    int      `json:"cu"`
	IsCPU bool     `json:"cpu,omitempty"`
	Ops   []jsonOp `json:"ops"`
}

type jsonTrace struct {
	Name  string           `json:"name"`
	Init  map[string]int64 `json:"init,omitempty"`
	Warps []jsonWarp       `json:"warps"`
}

var kindNames = map[Kind]string{
	Compute: "compute", Load: "load", Store: "store", Atomic: "atomic",
	ScratchLoad: "scratch-load", ScratchStore: "scratch-store",
	Barrier: "barrier", Join: "join",
}

var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

var aopNames = map[core.AtomicOp]string{
	core.OpLoad: "load", core.OpStore: "store", core.OpAdd: "add",
	core.OpSub: "sub", core.OpInc: "inc", core.OpDec: "dec",
	core.OpAnd: "and", core.OpOr: "or", core.OpXor: "xor",
	core.OpMin: "min", core.OpMax: "max", core.OpExchange: "xchg",
	core.OpCAS: "cas",
}

var aopByName = func() map[string]core.AtomicOp {
	m := map[string]core.AtomicOp{}
	for k, n := range aopNames {
		m[n] = k
	}
	return m
}()

// EncodeJSON writes the trace as JSON.
func (t *Trace) EncodeJSON(w io.Writer) error {
	jt := jsonTrace{Name: t.Name}
	if len(t.Init) > 0 {
		jt.Init = map[string]int64{}
		for a, v := range t.Init {
			jt.Init[strconv.FormatUint(a, 10)] = v
		}
	}
	for _, warp := range t.Warps {
		jw := jsonWarp{CU: warp.CU, IsCPU: warp.IsCPU}
		for _, op := range warp.Ops {
			jo := jsonOp{
				Kind:     kindNames[op.Kind],
				Cycles:   op.Cycles,
				Operand:  op.Operand,
				Operands: op.Operands,
				Addrs:    op.Addrs,
			}
			if op.Kind.IsMem() {
				jo.Class = op.Class.String()
				jo.AOp = aopNames[op.AOp]
				if op.Scope == ScopeLocal {
					jo.Scope = "local"
				}
			}
			jw.Ops = append(jw.Ops, jo)
		}
		jt.Warps = append(jt.Warps, jw)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jt)
}

// DecodeJSON reads a trace written by EncodeJSON. FinalCheck is nil.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t := New(jt.Name)
	for a, v := range jt.Init {
		addr, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad init address %q", a)
		}
		t.Init[addr] = v
	}
	for wi, jw := range jt.Warps {
		var w *Warp
		if jw.IsCPU {
			w = t.AddCPUThread()
		} else {
			w = t.AddWarp(jw.CU)
		}
		for oi, jo := range jw.Ops {
			kind, ok := kindByName[jo.Kind]
			if !ok {
				return nil, fmt.Errorf("trace: warp %d op %d: unknown kind %q", wi, oi, jo.Kind)
			}
			op := Op{Kind: kind, Cycles: jo.Cycles, Operand: jo.Operand, Operands: jo.Operands, Addrs: jo.Addrs}
			if kind.IsMem() {
				class, err := core.ParseClass(jo.Class)
				if err != nil {
					return nil, fmt.Errorf("trace: warp %d op %d: %w", wi, oi, err)
				}
				aop, ok := aopByName[jo.AOp]
				if !ok {
					return nil, fmt.Errorf("trace: warp %d op %d: unknown atomic op %q", wi, oi, jo.AOp)
				}
				op.Class = class
				op.AOp = aop
				switch jo.Scope {
				case "", "global":
					op.Scope = ScopeGlobal
				case "local":
					op.Scope = ScopeLocal
				default:
					return nil, fmt.Errorf("trace: warp %d op %d: unknown scope %q", wi, oi, jo.Scope)
				}
				if len(op.Addrs) == 0 {
					return nil, fmt.Errorf("trace: warp %d op %d: memory op without addresses", wi, oi)
				}
				if op.Operands != nil && len(op.Operands) != len(op.Addrs) {
					return nil, fmt.Errorf("trace: warp %d op %d: operands/addrs length mismatch", wi, oi)
				}
			}
			w.Ops = append(w.Ops, op)
		}
	}
	return t, nil
}
