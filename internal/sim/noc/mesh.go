// Package noc models the on-chip interconnect of the simulated system: a
// 2D mesh with XY dimension-order routing (the paper uses a Garnet 4x4
// mesh with one CU or CPU core per node). The model is link-accurate at
// message granularity: each directed link serializes at one flit per
// cycle, each hop adds router+link latency, and flit-hops are counted for
// the energy model.
package noc

import (
	"fmt"
	"sort"

	"rats/internal/fault"
	"rats/internal/probe"
	"rats/internal/stats"
)

// Payload is the by-value body of a Message. The mesh treats it as opaque
// packet bits: the endpoints (package memsys) define the Kind codes and
// the meaning of each field, and register a namer for diagnostics. A
// fixed-shape struct rather than an interface keeps Send/Tick free of
// per-message boxing allocations on the simulator's hottest path.
type Payload struct {
	// Kind is the endpoint-defined message type code (0 is reserved for
	// "no payload").
	Kind uint8
	// Op is an endpoint-defined operation code (e.g. an atomic op).
	Op uint8
	// Requester is the node a response should be routed back to.
	Requester int
	// Line is the address the message concerns (line or word granular,
	// per Kind).
	Line uint64
	// Txn is the endpoint-level transaction or request id.
	Txn int64
	// Operand carries a kind-specific value (atomic operand or result).
	Operand int64
}

// Message is one network transfer.
type Message struct {
	Src, Dst int
	// Flits is the message size (1 for control, DataFlits for a cache
	// line plus header).
	Flits int
	// Txn is the originating memory transaction's id for latency-span
	// attribution, or 0 (e.g. writebacks, store-buffer drains).
	Txn int64
	// Payload is delivered to the destination's receiver.
	Payload Payload
}

// link identifies a directed link between adjacent nodes.
type link struct{ from, to int }

type inflight struct {
	arrival int64
	seq     int64 // FIFO tiebreak for determinism
	msg     Message
	// dup marks an injected duplicate: it occupies links like the
	// original but is dropped at delivery (endpoints dedupe).
	dup bool
}

// pq is a hand-rolled binary min-heap of in-flight messages, ordered by
// (arrival, seq). container/heap's interface would box every element
// through `any` on Push/Pop — one allocation per message in each
// direction — so the sift loops are written out against the concrete
// element type instead.
type pq []inflight

func (p pq) less(i, j int) bool {
	if p[i].arrival != p[j].arrival {
		return p[i].arrival < p[j].arrival
	}
	return p[i].seq < p[j].seq
}

func (p *pq) push(f inflight) {
	q := append(*p, f)
	*p = q
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (p *pq) pop() inflight {
	q := *p
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*p = q
	for i := 0; ; {
		s := i
		if l := 2*i + 1; l < n && q.less(l, s) {
			s = l
		}
		if r := 2*i + 2; r < n && q.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}

// Mesh is the interconnect.
type Mesh struct {
	// Width and Height are the mesh dimensions (nodes = Width*Height).
	Width, Height int
	// HopLatency is the per-hop pipeline latency in cycles.
	HopLatency int64

	nextFree map[link]int64 // earliest cycle each link is free
	inbox    pq
	seq      int64
	recv     []func(Message)
	stats    *stats.Stats
	probe    *probe.Hub
	fault    *fault.Injector
	// kindName renders a payload's Kind for diagnostics (set by the
	// endpoint package, which defines the codes).
	kindName func(Payload) string
}

// SetPayloadNamer registers the diagnostic renderer for payload kinds.
func (m *Mesh) SetPayloadNamer(fn func(Payload) string) { m.kindName = fn }

// AttachProbe routes enqueue/hop/deliver events to the hub.
func (m *Mesh) AttachProbe(h *probe.Hub) { m.probe = h }

// SetFault enables fault injection on this mesh (delay jitter,
// duplication, reordering bursts).
func (m *Mesh) SetFault(f *fault.Injector) { m.fault = f }

// NewMesh builds a width x height mesh.
func NewMesh(width, height int, hopLatency int64, st *stats.Stats) *Mesh {
	m := &Mesh{
		Width: width, Height: height, HopLatency: hopLatency,
		nextFree: map[link]int64{},
		recv:     make([]func(Message), width*height),
		stats:    st,
	}
	return m
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.Width * m.Height }

// SetReceiver registers the delivery callback for a node.
func (m *Mesh) SetReceiver(node int, fn func(Message)) { m.recv[node] = fn }

func (m *Mesh) xy(node int) (x, y int) { return node % m.Width, node / m.Width }

// Route returns the XY path from src to dst as a sequence of node IDs
// (excluding src, including dst).
func (m *Mesh) Route(src, dst int) []int {
	if src < 0 || dst < 0 || src >= m.Nodes() || dst >= m.Nodes() {
		panic(fmt.Sprintf("noc: route %d -> %d out of range", src, dst))
	}
	var path []int
	x, y := m.xy(src)
	dx, dy := m.xy(dst)
	cur := src
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		cur = y*m.Width + x
		path = append(path, cur)
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		cur = y*m.Width + x
		path = append(path, cur)
	}
	return path
}

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	x, y := m.xy(src)
	dx, dy := m.xy(dst)
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(x-dx) + abs(y-dy)
}

// Send injects a message at the given cycle. Delivery time accounts for
// per-hop latency and per-link serialization (one flit per cycle per
// link); contention delays are modelled by tracking when each link next
// frees up.
func (m *Mesh) Send(cycle int64, msg Message) {
	if msg.Flits <= 0 {
		msg.Flits = 1
	}
	m.seq++
	if h := m.probe; h != nil {
		h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompNoC, Node: msg.Src, Warp: -1,
			Kind: probe.NoCEnqueue, Txn: msg.Txn, Msg: m.seq, Arg: int64(msg.Dst), Aux: int64(msg.Flits)})
	}
	t := m.route(cycle, msg, m.seq)
	if f := m.fault; f != nil {
		if d := f.MessageDelay(); d > 0 {
			t += d
			if h := m.probe; h != nil {
				h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompNoC, Node: msg.Src, Warp: -1,
					Kind: probe.FaultInjected, Txn: msg.Txn, Msg: m.seq, Arg: 0, Aux: d})
			}
		}
	}
	m.stats.NoCMessages++
	m.inbox.push(inflight{arrival: t, seq: m.seq, msg: msg})
	if f := m.fault; f != nil && f.Duplicate() {
		// The duplicate traverses (and occupies) the links like a real
		// message — a pure timing perturbation — and is dropped at
		// delivery, as if endpoints deduplicated by sequence number.
		m.seq++
		td := m.route(cycle, msg, m.seq)
		m.stats.NoCMessages++
		m.inbox.push(inflight{arrival: td, seq: m.seq, msg: msg, dup: true})
		if h := m.probe; h != nil {
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompNoC, Node: msg.Src, Warp: -1,
				Kind: probe.FaultInjected, Txn: msg.Txn, Msg: m.seq, Arg: 1})
		}
	}
}

// route books the message across its XY path, advancing per-link
// free times, and returns the delivery cycle. The walk mirrors Route but
// is inlined hop by hop: materializing the path as a slice allocated on
// every message, which dominated the simulator's allocation profile.
func (m *Mesh) route(cycle int64, msg Message, seq int64) int64 {
	if msg.Src < 0 || msg.Dst < 0 || msg.Src >= m.Nodes() || msg.Dst >= m.Nodes() {
		panic(fmt.Sprintf("noc: route %d -> %d out of range", msg.Src, msg.Dst))
	}
	t := cycle
	if msg.Src != msg.Dst {
		x, y := m.xy(msg.Src)
		dx, dy := m.xy(msg.Dst)
		prev := msg.Src
		for x != dx || y != dy {
			switch {
			case x < dx:
				x++
			case x > dx:
				x--
			case y < dy:
				y++
			default:
				y--
			}
			next := y*m.Width + x
			l := link{prev, next}
			depart := t
			if nf := m.nextFree[l]; nf > depart {
				depart = nf
			}
			m.nextFree[l] = depart + int64(msg.Flits)
			t = depart + m.HopLatency
			m.stats.NoCFlitHops += int64(msg.Flits)
			if h := m.probe; h != nil {
				h.Emit(probe.Event{Cycle: t, Comp: probe.CompNoC, Node: next, Warp: -1,
					Kind: probe.NoCHop, Txn: msg.Txn, Msg: seq, Aux: int64(msg.Flits)})
			}
			prev = next
		}
	} else {
		// Local delivery still pays one router traversal.
		t += m.HopLatency
	}
	return t
}

// Tick delivers every message whose arrival time has been reached.
func (m *Mesh) Tick(cycle int64) {
	for len(m.inbox) > 0 && m.inbox[0].arrival <= cycle {
		f := m.inbox.pop()
		if f.dup {
			// Injected duplicate: consumed bandwidth, dropped here.
			continue
		}
		r := m.recv[f.msg.Dst]
		if r == nil {
			panic(fmt.Sprintf("noc: no receiver at node %d", f.msg.Dst))
		}
		if h := m.probe; h != nil {
			h.Emit(probe.Event{Cycle: cycle, Comp: probe.CompNoC, Node: f.msg.Dst, Warp: -1,
				Kind: probe.NoCDeliver, Txn: f.msg.Txn, Msg: f.seq, Arg: int64(f.msg.Src)})
		}
		r(f.msg)
	}
}

// Pending reports whether messages are still in flight.
func (m *Mesh) Pending() bool { return len(m.inbox) > 0 }

// NextArrival returns the earliest in-flight arrival cycle, or -1.
func (m *Mesh) NextArrival() int64 {
	if len(m.inbox) == 0 {
		return -1
	}
	return m.inbox[0].arrival
}

// NextWork is the mesh's wake hint: delivering in-flight messages is its
// only self-driven work, so the earliest arrival is the next cycle it
// needs to be ticked (-1 when nothing is in flight).
func (m *Mesh) NextWork(cycle int64) int64 { return m.NextArrival() }

// MsgDiag is one in-flight message's snapshot for liveness diagnostics.
type MsgDiag struct {
	Src, Dst int
	Flits    int
	Arrival  int64
	// Payload is the payload's rendered name (e.g. memsys.readReq), via
	// the registered namer, or "kind(N)" when none is set.
	Payload string
	Dup     bool
}

// InFlight snapshots every undelivered message, soonest arrival first.
func (m *Mesh) InFlight() []MsgDiag {
	out := make([]MsgDiag, 0, len(m.inbox))
	for _, f := range m.inbox {
		name := ""
		if m.kindName != nil {
			name = m.kindName(f.msg.Payload)
		}
		if name == "" {
			name = fmt.Sprintf("kind(%d)", f.msg.Payload.Kind)
		}
		out = append(out, MsgDiag{
			Src: f.msg.Src, Dst: f.msg.Dst, Flits: f.msg.Flits,
			Arrival: f.arrival, Payload: name, Dup: f.dup,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}
