package system

import (
	"bytes"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
)

// scopedTrace mixes local- and global-scope atomics so the dump/replay
// path must preserve Op.Scope to reproduce identical timing.
func scopedTrace() *trace.Trace {
	tr := trace.New("scoped-replay")
	for w := 0; w < 4; w++ {
		warp := tr.AddWarp(w % 2)
		for i := 0; i < 6; i++ {
			warp.AtomicScoped(trace.ScopeLocal, core.Paired, core.OpInc, 0, 0x4000+uint64(w%2)*0x100)
			warp.Atomic(core.Commutative, core.OpAdd, 1, 0x8000)
			warp.Compute(3)
		}
		warp.Barrier()
		warp.Atomic(core.Unpaired, core.OpLoad, 0, 0x8000)
	}
	return tr
}

// TestScopedReplayEquivalence: encoding a trace with scoped atomics to
// JSON and replaying the decoded copy must reproduce the exact Stats of
// the original run. This guards the -dump/-replay path end to end (a
// dropped Scope field silently changes DRF1/DRFrlx timing).
func TestScopedReplayEquivalence(t *testing.T) {
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		for _, m := range core.Models() {
			direct, err := RunTrace(memsys.Default(proto, m), scopedTrace())
			if err != nil {
				t.Fatalf("%v/%v direct: %v", proto, m, err)
			}
			var buf bytes.Buffer
			if err := scopedTrace().EncodeJSON(&buf); err != nil {
				t.Fatalf("%v/%v encode: %v", proto, m, err)
			}
			back, err := trace.DecodeJSON(&buf)
			if err != nil {
				t.Fatalf("%v/%v decode: %v", proto, m, err)
			}
			replayed, err := RunTrace(memsys.Default(proto, m), back)
			if err != nil {
				t.Fatalf("%v/%v replay: %v", proto, m, err)
			}
			if direct.Stats != replayed.Stats {
				t.Errorf("%v/%v: replayed stats differ\ndirect:   %+v\nreplayed: %+v",
					proto, m, direct.Stats, replayed.Stats)
			}
		}
	}
}
