package harness

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rats/internal/fault"
	"rats/internal/trace"
	"rats/internal/workloads"
)

// TestRunAllAggregatesErrors asserts a sweep reports every failure, not
// just the first, while still returning the runs that succeeded.
func TestRunAllAggregatesErrors(t *testing.T) {
	entries := workloads.Micro()[:1]
	res, err := RunAll(entries, workloads.Test, []string{"XD0", "GD0", "XD1"})
	if err == nil {
		t.Fatal("expected an error for the two bogus configs")
	}
	msg := err.Error()
	for _, want := range []string{"XD0", "XD1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing failure %q:\n%s", want, msg)
		}
	}
	// The good config's run must survive as a partial result.
	if res[entries[0].Name]["GD0"] == nil {
		t.Error("partial results dropped the successful GD0 run")
	}
}

// TestRunAllRecoversPanics injects a workload whose trace builder panics
// and asserts the sweep completes, converts the panic into an error with
// a stack, and still returns the healthy runs.
func TestRunAllRecoversPanics(t *testing.T) {
	good := workloads.Micro()[0]
	bomb := workloads.Entry{
		Name:  "bomb",
		Build: func(workloads.Scale) *trace.Trace { panic("kaboom") },
	}
	res, err := RunAll([]workloads.Entry{bomb, good}, workloads.Test, []string{"GD0"})
	if err == nil {
		t.Fatal("expected the panicking workload to surface as an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "kaboom") || !strings.Contains(msg, "panic") {
		t.Errorf("error should carry the recovered panic:\n%s", msg)
	}
	if !strings.Contains(msg, "resilience_test") {
		t.Errorf("error should carry the panic's stack trace:\n%s", msg)
	}
	if res[good.Name]["GD0"] == nil {
		t.Error("healthy run lost to a neighbouring panic")
	}
}

// TestRunAllTimeout wedges a warp (with the watchdog disabled) and
// asserts the per-run wall-clock timeout aborts it.
func TestRunAllTimeout(t *testing.T) {
	spec, err := fault.Parse("wedge:warp=0,from=0")
	if err != nil {
		t.Fatal(err)
	}
	entries := workloads.Micro()[:1]
	opts := &RunOptions{
		Timeout:        100 * time.Millisecond,
		Faults:         spec,
		WatchdogWindow: -1, // force the timeout, not the watchdog, to fire
	}
	start := time.Now()
	_, err = RunAllWith(entries, workloads.Test, []string{"GD0"}, opts)
	if err == nil {
		t.Fatal("wedged run completed; expected a timeout error")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Errorf("error = %v, want a wall-clock timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("timeout took %v to take effect", elapsed)
	}
}

// TestJournalResume records a sweep into a journal, reopens it, and
// asserts (a) completed pairs are restored rather than re-simulated and
// (b) only missing pairs run fresh.
func TestJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	entries := workloads.Micro()[:2]

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := RunAllWith(entries, workloads.Test, []string{"GD0", "DDR"}, &RunOptions{Journal: j1})
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all four (workload, config) pairs must be restored.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Loaded(); got != 4 {
		t.Fatalf("restored %d runs, want 4", got)
	}
	res2, err := RunAllWith(entries, workloads.Test, []string{"GD0", "DDR", "GD1"}, &RunOptions{Journal: j2})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	for _, e := range entries {
		// Journal-restored results have no functional-read closure — the
		// telltale that they were not re-simulated.
		for _, c := range []string{"GD0", "DDR"} {
			r := res2[e.Name][c]
			if r == nil {
				t.Fatalf("%s/%s missing after resume", e.Name, c)
			}
			if r.Read != nil {
				t.Errorf("%s/%s was re-simulated despite a journal entry", e.Name, c)
			}
			if r.Stats != res1[e.Name][c].Stats {
				t.Errorf("%s/%s restored stats differ from the original run", e.Name, c)
			}
		}
		// The config absent from the journal must have run fresh.
		if r := res2[e.Name]["GD1"]; r == nil || r.Read == nil {
			t.Errorf("%s/GD1 should have been freshly simulated", e.Name)
		}
	}
}

// TestJournalTornTail appends garbage (a crash mid-write) to a journal
// and asserts reopening tolerates it, keeping every intact record.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	entries := workloads.Micro()[:1]
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAllWith(entries, workloads.Test, []string{"GD0"}, &RunOptions{Journal: j1}); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"workload":"H","config":"DDR","st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should not prevent reopening: %v", err)
	}
	defer j2.Close()
	if got := j2.Loaded(); got != 1 {
		t.Errorf("restored %d runs, want 1 (the intact record)", got)
	}
	if _, ok := j2.Lookup(entries[0].Name, "GD0"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := j2.Lookup("H", "DDR"); ok {
		t.Error("torn record should not have been restored")
	}
}

// TestFigureWithPartialResults asserts Figure3With returns both the
// error and a figure holding whatever succeeded. (Exercised indirectly
// via RunAllWith's contract: buildFigure skips nil results.)
func TestFigureWithPartialResults(t *testing.T) {
	fig, err := Figure3With(workloads.Test, nil)
	if err != nil {
		t.Fatalf("clean Figure3With: %v", err)
	}
	if fig == nil || len(fig.Order) == 0 {
		t.Fatal("Figure3With returned no figure")
	}
}

// TestRetriesRecoverFlakyRun makes a trace builder panic on its first
// two calls and succeed on the third, and asserts Retries turns the
// flaky pair into a success — with the attempts visible in the journal.
func TestRetriesRecoverFlakyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	good := workloads.Micro()[0]
	var calls atomic.Int64
	flaky := workloads.Entry{
		Name: "flaky",
		Build: func(s workloads.Scale) *trace.Trace {
			if calls.Add(1) < 3 {
				panic("transient build failure")
			}
			return good.Build(s)
		},
	}
	res, err := RunAllWith([]workloads.Entry{flaky}, workloads.Test, []string{"GD0"}, &RunOptions{
		Journal:      j,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("flaky run should have recovered on the third attempt: %v", err)
	}
	if res["flaky"]["GD0"] == nil {
		t.Fatal("recovered run missing from results")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("builder called %d times, want 3", got)
	}
	if n, last := j.Attempts("flaky", "GD0"); n != 2 || !strings.Contains(last, "transient") {
		t.Errorf("journal attempts = (%d, %q), want 2 transient failures", n, last)
	}
}

// TestRetrySleepNeverOverflows: large attempt numbers must saturate at
// the 5s cap (plus jitter), not overflow the shift into a negative
// duration or panic computing the jitter.
func TestRetrySleepNeverOverflows(t *testing.T) {
	const max = 5*time.Second + 5*time.Second/2
	for _, n := range []int{0, 1, 6, 37, 63, 200} {
		for _, base := range []time.Duration{0, 100 * time.Millisecond, time.Hour} {
			d := retrySleep(base, n)
			if d <= 0 || d > max+time.Hour/2 {
				t.Errorf("retrySleep(%s, %d) = %s, want positive and capped", base, n, d)
			}
			if base <= 100*time.Millisecond && d > max {
				t.Errorf("retrySleep(%s, %d) = %s, want <= %s", base, n, d, max)
			}
		}
	}
}

// TestRetryableClassifiesBySentinel: a deterministic failure whose
// message happens to contain "timeout" (here, the workload's own name)
// must not look transient and burn the retry budget.
func TestRetryableClassifiesBySentinel(t *testing.T) {
	var calls atomic.Int64
	broken := workloads.Entry{
		Name: "timeout-stress",
		Build: func(workloads.Scale) *trace.Trace {
			calls.Add(1)
			return nil // "workload timeout-stress built a nil trace"
		},
	}
	_, err := RunAllWith([]workloads.Entry{broken}, workloads.Test, []string{"GD0"}, &RunOptions{
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("nil trace must fail the run")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("test premise broken: error %q no longer mentions timeout", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("message-matched failure retried: builder called %d times, want 1", got)
	}
}

// TestRetriesOnTimeout: a genuine wall-clock timeout is classified
// retryable through the sentinel and consumes the budget.
func TestRetriesOnTimeout(t *testing.T) {
	spec, err := fault.Parse("wedge:warp=0,from=0")
	if err != nil {
		t.Fatal(err)
	}
	base := workloads.Micro()[0]
	var calls atomic.Int64
	counted := workloads.Entry{
		Name: "wedged",
		Build: func(s workloads.Scale) *trace.Trace {
			calls.Add(1)
			return base.Build(s)
		},
	}
	_, err = RunAllWith([]workloads.Entry{counted}, workloads.Test, []string{"GD0"}, &RunOptions{
		Timeout:        80 * time.Millisecond,
		Faults:         spec,
		WatchdogWindow: -1,
		Retries:        1,
		RetryBackoff:   time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "attempt 2/2") {
		t.Fatalf("error = %v, want budget exhausted at attempt 2/2", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("wedged run attempted %d times, want 2 (timeout is retryable)", got)
	}
}

// TestRetriesNotForDeterministicFailures asserts a failure that is
// neither a panic nor a timeout is not retried, whatever the budget.
func TestRetriesNotForDeterministicFailures(t *testing.T) {
	var calls atomic.Int64
	broken := workloads.Entry{
		Name: "nil-trace",
		Build: func(workloads.Scale) *trace.Trace {
			calls.Add(1)
			return nil
		},
	}
	_, err := RunAllWith([]workloads.Entry{broken}, workloads.Test, []string{"GD0"}, &RunOptions{
		Retries:      5,
		RetryBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("nil trace must fail the run")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("deterministic failure retried: builder called %d times, want 1", got)
	}
}

// TestRetriesExhaustionSurvivesResume exhausts a pair's retry budget in
// one sweep and asserts a resumed sweep (same journal) fails the pair
// immediately instead of burning the attempts again.
func TestRetriesExhaustionSurvivesResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	var calls atomic.Int64
	bomb := workloads.Entry{
		Name: "bomb",
		Build: func(workloads.Scale) *trace.Trace {
			calls.Add(1)
			panic("kaboom")
		},
	}
	opts := func(j *Journal) *RunOptions {
		return &RunOptions{Journal: j, Retries: 1, RetryBackoff: time.Millisecond}
	}

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunAllWith([]workloads.Entry{bomb}, workloads.Test, []string{"GD0"}, opts(j1))
	if err == nil || !strings.Contains(err.Error(), "attempt 2/2") {
		t.Fatalf("first sweep error = %v, want exhausted attempt 2/2", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("first sweep ran %d attempts, want 2", got)
	}
	j1.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n, _ := j2.Attempts("bomb", "GD0"); n != 2 {
		t.Fatalf("reloaded journal reports %d attempts, want 2", n)
	}
	_, err = RunAllWith([]workloads.Entry{bomb}, workloads.Test, []string{"GD0"}, opts(j2))
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("resumed sweep error = %v, want a budget-exhausted refusal", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("resumed sweep re-ran the pair: %d total attempts, want still 2", got)
	}

	// A bigger budget on resume grants exactly the difference.
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	_, err = RunAllWith([]workloads.Entry{bomb}, workloads.Test, []string{"GD0"},
		&RunOptions{Journal: j3, Retries: 3, RetryBackoff: time.Millisecond})
	if err == nil {
		t.Fatal("bomb cannot succeed")
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("raised budget ran %d total attempts, want 4 (2 journaled + 2 new)", got)
	}
}
