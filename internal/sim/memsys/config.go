// Package memsys implements the simulated memory system: per-node L1
// controllers under two coherence protocols (conventional GPU coherence
// and DeNovo), banked NUCA L2 slices with an atomic unit per bank, and a
// DRAM port per bank. Protocol behaviour follows Sections 2.1, 2.2, and 5
// of the RAts paper:
//
//   - GPU coherence: write-through no-allocate L1s, flash self-
//     invalidation on acquires, store-buffer flush on releases, and all
//     atomics performed at the L2 bank (no reuse, no coalescing).
//   - DeNovo: ownership (registration) obtained at the L2 for stores and
//     atomics, writeback caches, self-invalidation that spares owned
//     lines, atomics performed at the L1 once owned (reuse), and L1 MSHRs
//     that coalesce same-line requests (absorbing bursts of overlapped
//     atomics with a single ownership transfer).
package memsys

import (
	"rats/internal/core"
	"rats/internal/fault"
)

// Protocol selects the coherence protocol.
type Protocol uint8

const (
	// ProtoGPU is conventional software-driven GPU coherence.
	ProtoGPU Protocol = iota
	// ProtoDeNovo is the DeNovo hybrid protocol.
	ProtoDeNovo
)

func (p Protocol) String() string {
	if p == ProtoDeNovo {
		return "DeNovo"
	}
	return "GPU"
}

// Config holds every simulator parameter. Defaults reproduce Table 2 of
// the paper.
type Config struct {
	Protocol Protocol
	Model    core.Model

	// Topology.
	MeshWidth, MeshHeight int
	NumCUs                int // GPU compute units; CPU occupies the last node
	CPUNode               int

	// Geometry.
	LineSize uint64
	WordSize uint64

	// L1 (per node).
	L1Sets  int
	L1Ways  int
	L1MSHRs int
	// L1MSHRTargets bounds how many requests coalesce into one MSHR
	// entry before back-pressure.
	L1MSHRTargets int
	StoreBuffer   int
	L1HitLat      int64
	// L1AtomicOccupancy is the L1 atomic unit's cycles per operation
	// (DeNovo performs atomics at the L1 once owned).
	L1AtomicOccupancy int64

	// L2 (per bank; one bank per node).
	L2SetsPerBank int
	L2Ways        int
	L2Lat         int64
	// L2TagLat is the directory/registry lookup latency for forwarding
	// requests to a remote owner (no data-array access).
	L2TagLat int64
	// L2AtomicOccupancy is the bank atomic unit's cycles per operation.
	L2AtomicOccupancy int64

	// DRAM (per bank port).
	DRAMLat int64
	DRAMOcc int64

	// NoC.
	HopLat       int64
	ControlFlits int
	DataFlits    int

	// Core-side limits.
	MaxOutstandingPerWarp int
	// MaxOutstandingAtomicsPerWarp separately bounds atomic instructions
	// in flight per warp (relaxed atomics only; paired/unpaired are
	// gated by the consistency model).
	MaxOutstandingAtomicsPerWarp int
	CoalescerQueue               int
	CPUIssuePerCycle             int

	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// WatchdogWindow is the liveness watchdog's no-progress window: if no
	// forward progress (retired ops, cache/L2 accesses, atomics, message
	// sends, warp retirements) is observed for this many cycles, the run
	// aborts with a structured diagnostic dump. 0 disables the watchdog
	// (MaxCycles still guards, with the same diagnostics).
	WatchdogWindow int64

	// Faults, when non-nil, enables deterministic fault injection (see
	// package fault for the spec grammar); FaultSeed seeds the injector's
	// PRNG so the same spec+seed reproduce the same timing exactly.
	Faults    *fault.Spec
	FaultSeed int64
}

// Default returns the integrated CPU-GPU system of Table 2 under the
// given protocol and consistency model: 15 CUs + 1 CPU on a 4x4 mesh,
// 32 KB 8-way L1s, a 4 MB 16-bank NUCA L2, 128-entry store buffers and
// MSHRs. Latencies are chosen so that L2 hits land in the paper's
// 29–61-cycle range and remote L1 hits in the 35–83-cycle range,
// depending on mesh distance.
func Default(proto Protocol, model core.Model) Config {
	return Config{
		Protocol:   proto,
		Model:      model,
		MeshWidth:  4,
		MeshHeight: 4,
		NumCUs:     15,
		CPUNode:    15,

		LineSize: 64,
		WordSize: 4,

		L1Sets:            64, // 64 sets x 8 ways x 64B = 32 KB
		L1Ways:            8,
		L1MSHRs:           128,
		L1MSHRTargets:     8,
		StoreBuffer:       128,
		L1HitLat:          1,
		L1AtomicOccupancy: 1,

		L2SetsPerBank:     256, // 256 sets x 16 ways x 64B = 256 KB per bank
		L2Ways:            16,
		L2Lat:             25,
		L2TagLat:          4,
		L2AtomicOccupancy: 5,

		DRAMLat: 160,
		DRAMOcc: 20,

		HopLat:       2,
		ControlFlits: 1,
		DataFlits:    5,

		MaxOutstandingPerWarp:        4,
		MaxOutstandingAtomicsPerWarp: 2,
		CoalescerQueue:               64,
		CPUIssuePerCycle:             3, // the 2 GHz CPU vs 700 MHz GPU clock ratio

		MaxCycles:      200_000_000,
		WatchdogWindow: 1_000_000,
	}
}

// Discrete returns the discrete-GPU configuration used to reproduce
// Figure 1: a GPU whose atomics cross a slow bus to a distant L2 and
// whose SC atomics serialize the pipeline. Only GPU coherence applies.
func Discrete(model core.Model) Config {
	c := Default(ProtoGPU, model)
	c.L2Lat = 80
	c.L2AtomicOccupancy = 12
	c.DRAMLat = 350
	c.HopLat = 4
	return c
}

// Nodes returns the mesh node count.
func (c *Config) Nodes() int { return c.MeshWidth * c.MeshHeight }

// LineAddr converts a byte address to a line number.
func (c *Config) LineAddr(addr uint64) uint64 { return addr / c.LineSize }

// WordAddr aligns a byte address down to its word.
func (c *Config) WordAddr(addr uint64) uint64 { return addr / c.WordSize * c.WordSize }

// HomeNode returns the node whose L2 bank owns the line (address
// interleaved across all banks).
func (c *Config) HomeNode(line uint64) int { return int(line % uint64(c.Nodes())) }

// Behavior resolves the consistency actions for an access class under the
// configured model.
func (c *Config) Behavior(class core.Class) core.Behavior { return c.Model.Behavior(class) }
