package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
)

// fakeClock steps a fixed amount per reading, making elapsed times (and
// therefore the latency histogram) deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

// checksRegistry builds a registry with two hand-driven checks whose
// counters (and, via the fake clock, latencies) are fully deterministic.
func checksRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.SetClock(fakeClock(10 * time.Millisecond))

	c1 := reg.NewCheck("IRIW", "DRFrlx")
	c1.Begin(500)
	for i := 0; i < 24; i++ {
		c1.IncEnumerated()
	}
	for i := 0; i < 96; i++ {
		c1.IncTransition()
	}
	for i := 0; i < 32; i++ {
		c1.IncSleepSkip()
	}
	w := c1.Worker()
	for i := 0; i < 24; i++ {
		w.IncAnalyzed()
	}
	for i := 0; i < 20; i++ {
		c1.IncRecycled()
	}
	for i := 0; i < 4; i++ {
		c1.IncAllocated()
	}
	c1.SetUnion(3, 5, 16)
	c1.Finish(telemetry.StateDone)

	c2 := reg.NewCheck("WorkQueue", "DRF0")
	c2.Begin(100)
	for i := 0; i < 100; i++ {
		c2.IncEnumerated()
	}
	for i := 0; i < 400; i++ {
		c2.IncTransition()
	}
	c2.AddMemoHits(12)
	c2.Finish(telemetry.StateLimit)
	return reg
}

// TestChecksMetricsGolden pins the rats_check_* exposition exactly: state
// gauge, the counter aggregates, and the per-check latency histogram fed
// by the deterministic fake clock. Regenerate with
// `go test ./internal/obs -run ChecksMetricsGolden -update`.
func TestChecksMetricsGolden(t *testing.T) {
	srv := obs.NewServer()
	srv.SetRunInfo("suite", "litmus")
	srv.SetChecks(checksRegistry())

	var buf bytes.Buffer
	srv.WriteMetrics(&buf)

	for _, want := range []string{
		`rats_check_total{state="done"} 1`,
		`rats_check_total{state="limit"} 1`,
		`rats_check_total{state="running"} 0`,
		"rats_check_executions_total 124",
		"rats_check_transitions_total 496",
		"rats_check_sleep_skips_total 32",
		"rats_check_memo_hits_total 12",
		"rats_check_analyzed_total 24",
		"rats_check_recycled_total 20",
		"rats_check_allocated_total 4",
		"rats_check_race_pairs_total 3",
		"rats_check_sc_results_total 16",
		"# TYPE rats_check_latency_us histogram",
		"rats_check_latency_us_count 2",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	golden := filepath.Join("testdata", "metrics_checks.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("check metrics drifted from golden (%d vs %d bytes); run with -update and review the diff",
			buf.Len(), len(want))
	}
}

// TestChecksEndpointConcurrent runs several instrumented CheckProgramWith
// calls against one obs server while hammering /checks (run under -race
// in CI). Snapshots taken mid-flight must always parse and stay
// internally consistent; the final snapshot's aggregates must equal the
// verdicts' totals, with checks sorted by (program, model).
func TestChecksEndpointConcurrent(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := obs.NewServer()
	srv.SetChecks(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	progs := []*litmus.Program{
		litmus.IRIW(), litmus.WorkQueue(), litmus.Seqlocks(), litmus.MPData(),
	}
	var wg sync.WaitGroup
	execs := make([]int64, len(progs))
	for i, p := range progs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.NewCheck(p.Name, core.DRFrlx.String())
			c.SetSuiteWorker(i)
			v, err := memmodel.CheckProgramWith(p, core.DRFrlx, memmodel.CheckOptions{Telemetry: c, Workers: 2})
			if err != nil {
				t.Errorf("%s: %v", p.Name, err)
				return
			}
			execs[i] = int64(v.Execs)
		}()
	}

	// Poll /checks while the checks run; every snapshot must parse and
	// never report more checks than registered.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for polling := true; polling; {
		select {
		case <-done:
			polling = false
		default:
		}
		resp, err := http.Get(ts.URL + "/checks")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var snap telemetry.RegistrySnapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("/checks not valid JSON: %v\n%s", err, body)
		}
		if snap.Total > len(progs) {
			t.Fatalf("snapshot reports %d checks, only %d registered", snap.Total, len(progs))
		}
	}

	resp, err := http.Get(ts.URL + "/checks")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap telemetry.RegistrySnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != len(progs) || snap.Done != len(progs) {
		t.Fatalf("final snapshot total=%d done=%d, want %d/%d", snap.Total, snap.Done, len(progs), len(progs))
	}
	var wantExecs int64
	for _, e := range execs {
		wantExecs += e
	}
	if snap.Executions != wantExecs {
		t.Errorf("aggregate executions = %d, verdicts sum to %d", snap.Executions, wantExecs)
	}
	for i := 1; i < len(snap.Checks); i++ {
		a, b := snap.Checks[i-1], snap.Checks[i]
		if a.Program > b.Program || (a.Program == b.Program && a.Model > b.Model) {
			t.Errorf("checks not sorted: %s/%s before %s/%s", a.Program, a.Model, b.Program, b.Model)
		}
	}
	for _, c := range snap.Checks {
		if c.State != "done" || c.Analyzed != c.Executions {
			t.Errorf("check %s/%s inconsistent: %+v", c.Program, c.Model, c)
		}
	}
}

// TestBuildInfoEndpoint: /buildinfo must serve JSON naming the Go
// toolchain and echoing the run-info labels.
func TestBuildInfoEndpoint(t *testing.T) {
	srv := obs.NewServer()
	srv.SetRunInfo("suite", "litmus")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/buildinfo content type %q", ct)
	}
	var bi obs.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("go version = %q", bi.GoVersion)
	}
	if bi.Run["suite"] != "litmus" {
		t.Errorf("run info = %v", bi.Run)
	}
}

// TestProgressTiming: RunStatus carries start time and elapsed wall time,
// and both stay omitted from JSON for statuses that never started (the
// pre-existing payload shape is unchanged).
func TestProgressTiming(t *testing.T) {
	p := obs.NewProgress()
	p.SetClock(fakeClock(10 * time.Millisecond))
	p.Start("A", "GD0")
	p.Done("A", "GD0", 42)
	p.Restored("B", "GD0", 7)

	rep := p.Snapshot()
	a := rep.Runs[0]
	if a.StartedAt == "" {
		t.Error("done run has no StartedAt")
	}
	if a.ElapsedMs != 10 {
		t.Errorf("elapsed = %vms, want 10ms (one 10ms clock step)", a.ElapsedMs)
	}
	b := rep.Runs[1]
	if b.StartedAt != "" || b.ElapsedMs != 0 {
		t.Errorf("restored-without-start run has timing: %+v", b)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"started_at", "elapsed_ms"} {
		if strings.Contains(string(raw), key) {
			t.Errorf("JSON for unstarted run contains %q: %s", key, raw)
		}
	}
	raw, err = json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"started_at", "elapsed_ms"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON for started run missing %q: %s", key, raw)
		}
	}
}
