package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rats/internal/memmodel/telemetry"
	"rats/internal/rtrace"
)

// syncBuffer is an io.Writer the tracer can share with test assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newTracedServer wires an explicit tracer (with a JSONL sink) into a
// test service, mirroring how cmd/ratsserve assembles the pieces.
func newTracedServer(t *testing.T, opts Options, topts rtrace.Options) (*Service, *httptest.Server, *rtrace.Tracer, *syncBuffer) {
	t.Helper()
	out := &syncBuffer{}
	topts.Out = out
	tracer := rtrace.New(topts)
	opts.Tracer = tracer
	s, srv := newTestServer(t, opts)
	return s, srv, tracer, out
}

// postTraced POSTs one check and returns the response's trace ID from
// the X-Rats-Trace-Id header alongside the decoded payload.
func postTraced(t *testing.T, url string, req CheckRequest) (int, string, CheckResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok CheckResponse
	var bad ErrorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatalf("decode 200 body: %v", err)
		}
	} else if err := dec.Decode(&bad); err != nil {
		t.Fatalf("decode %d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, resp.Header.Get(TraceHeader), ok, bad
}

// rawTraced issues an arbitrary request to /check (malformed bodies,
// wrong methods) and returns the status, trace header, and error body.
func rawTraced(t *testing.T, method, url, body string) (int, string, ErrorResponse) {
	t.Helper()
	req, err := http.NewRequest(method, url+"/check", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode %d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, resp.Header.Get(TraceHeader), er
}

// waitTrace polls the tracer ring for id: the handler writes the HTTP
// response before filing the finished trace, so the client can observe
// the response a beat before the ring does.
func waitTrace(t *testing.T, tracer *rtrace.Tracer, id string) *rtrace.TraceData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if td, ok := tracer.Find(id); ok {
			return td
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never reached the ring", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkTiling asserts the reconciliation contract: phases start at zero,
// each begins exactly where its predecessor ends, the last ends at the
// trace duration, and so their durations sum to the request duration.
func checkTiling(t *testing.T, td *rtrace.TraceData) {
	t.Helper()
	if len(td.Phases) == 0 {
		t.Fatalf("trace %s has no phases", td.TraceID)
	}
	var sum, prev int64
	for i, p := range td.Phases {
		if p.StartUs != prev {
			t.Errorf("trace %s phase %d (%s) starts at %dus, want %dus (contiguous tiling)",
				td.TraceID, i, p.Name, p.StartUs, prev)
		}
		if p.EndUs < p.StartUs {
			t.Errorf("trace %s phase %s ends (%dus) before it starts (%dus)", td.TraceID, p.Name, p.EndUs, p.StartUs)
		}
		sum += p.EndUs - p.StartUs
		prev = p.EndUs
	}
	if prev != td.DurationUs {
		t.Errorf("trace %s last phase ends at %dus, want the trace duration %dus", td.TraceID, prev, td.DurationUs)
	}
	if sum != td.DurationUs {
		t.Errorf("trace %s phase durations sum to %dus, want %dus", td.TraceID, sum, td.DurationUs)
	}
}

func findPhase(td *rtrace.TraceData, name string) *rtrace.SpanData {
	for i := range td.Phases {
		if td.Phases[i].Name == name {
			return &td.Phases[i]
		}
	}
	return nil
}

func attrValue(attrs []rtrace.Attr, key string) string {
	v := ""
	for _, a := range attrs {
		if a.K == key {
			v = a.V
		}
	}
	return v
}

func hasEvent(sp *rtrace.SpanData, name string) *rtrace.EventData {
	for i := range sp.Events {
		if sp.Events[i].Name == name {
			return &sp.Events[i]
		}
	}
	return nil
}

// jsonlIDs parses the tracer's JSONL sink into the set of exported
// trace IDs, failing on any malformed line.
func jsonlIDs(t *testing.T, out *syncBuffer) map[string]bool {
	t.Helper()
	ids := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		var td rtrace.TraceData
		if err := json.Unmarshal([]byte(line), &td); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
		ids[td.TraceID] = true
	}
	return ids
}

// TestTraceIDOnEveryStatus is the acceptance sweep: every response the
// service can produce — 200 and each 4xx/5xx — carries a trace ID in
// both the X-Rats-Trace-Id header and the JSON body, and that ID
// resolves in the ring (/tracez) and in the JSONL export.
func TestTraceIDOnEveryStatus(t *testing.T) {
	s, srv, tracer, out := newTracedServer(t,
		Options{Workers: 2, MaxBodyBytes: 4 << 10}, rtrace.Options{})

	var got []struct {
		status int
		id     string
	}
	note := func(status int, headerID, bodyID string) {
		t.Helper()
		if headerID == "" {
			t.Errorf("status %d: missing %s header", status, TraceHeader)
		}
		if bodyID != headerID {
			t.Errorf("status %d: body trace_id %q != header %q", status, bodyID, headerID)
		}
		got = append(got, struct {
			status int
			id     string
		}{status, headerID})
	}

	st, id, ok, _ := postTraced(t, srv.URL, CheckRequest{Program: catalogSrc(t, "MP_paired")})
	if st != http.StatusOK {
		t.Fatalf("healthy check: status %d", st)
	}
	note(st, id, ok.TraceID)

	st, id, er := rawTraced(t, http.MethodPost, srv.URL, "{not json")
	if st != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", st)
	}
	note(st, id, er.TraceID)

	st, id, er = rawTraced(t, http.MethodGet, srv.URL, "")
	if st != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", st)
	}
	note(st, id, er.TraceID)

	st, id, er = rawTraced(t, http.MethodPost, srv.URL, strings.Repeat("x", 8<<10))
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", st)
	}
	note(st, id, er.TraceID)

	st, id, _, bad := postTraced(t, srv.URL, CheckRequest{Program: contendedSrc(7, 3), DeadlineMs: 100})
	if st != http.StatusUnprocessableEntity || bad.Kind != "deadline" {
		t.Fatalf("intractable check: %d/%q, want 422/deadline", st, bad.Kind)
	}
	note(st, id, bad.TraceID)

	// Draining flips one-way, so the 503 goes last.
	s.BeginDrain()
	st, id, _, bad = postTraced(t, srv.URL, CheckRequest{Program: catalogSrc(t, "IRIW")})
	if st != http.StatusServiceUnavailable || bad.Kind != "draining" {
		t.Fatalf("draining check: %d/%q, want 503/draining", st, bad.Kind)
	}
	note(st, id, bad.TraceID)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tracer.Shutdown(ctx); err != nil {
		t.Fatalf("tracer shutdown: %v", err)
	}
	exported := jsonlIDs(t, out)
	for _, g := range got {
		if _, ok := tracer.Find(g.id); !ok {
			t.Errorf("status %d: trace %s not resolvable in the ring", g.status, g.id)
		}
		if !exported[g.id] {
			t.Errorf("status %d: trace %s missing from the JSONL export", g.status, g.id)
		}
	}
}

// TestTraceIDOnRateLimit covers the remaining status: a 429 carries and
// exports its trace ID like every other response.
func TestTraceIDOnRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	out := &syncBuffer{}
	tracer := rtrace.New(rtrace.Options{Out: out})
	s := New(Options{RatePerSec: 1, RateBurst: 1, CacheSize: -1, now: clock, Tracer: tracer})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if st, _, _, bad := postTraced(t, srv.URL, CheckRequest{Program: catalogSrc(t, "MP_paired")}); st != http.StatusOK {
		t.Fatalf("first request: status %d (%s)", st, bad.Error)
	}
	st, id, _, bad := postTraced(t, srv.URL, CheckRequest{Program: catalogSrc(t, "IRIW")})
	if st != http.StatusTooManyRequests || bad.Kind != "rate_limited" {
		t.Fatalf("over-budget request: %d/%q, want 429/rate_limited", st, bad.Kind)
	}
	if id == "" || bad.TraceID != id {
		t.Fatalf("429 trace ID: header %q, body %q", id, bad.TraceID)
	}
	td := waitTrace(t, tracer, id)
	checkTiling(t, td)
	gates := findPhase(td, "gates")
	if gates == nil {
		t.Fatal("429 trace has no gates phase")
	}
	ev := hasEvent(gates, "rate_limit")
	if ev == nil {
		t.Fatal("gates phase has no rate_limit event")
	}
	if v := attrValue(ev.Attrs, "allowed"); v != "false" {
		t.Errorf("rate_limit event allowed=%q, want false", v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tracer.Shutdown(ctx)
	if !jsonlIDs(t, out)[id] {
		t.Errorf("429 trace %s missing from JSONL export", id)
	}
}

// TestTraceCacheHitReconciles: a cache-hit response's trace tiles
// exactly (decode/validate/cache/serialize) and records the hit.
func TestTraceCacheHitReconciles(t *testing.T) {
	_, srv, tracer, _ := newTracedServer(t, Options{}, rtrace.Options{})
	src := catalogSrc(t, "MP_paired")
	if st, _, _, bad := postTraced(t, srv.URL, CheckRequest{Program: src}); st != http.StatusOK {
		t.Fatalf("warm-up check: status %d (%s)", st, bad.Error)
	}
	st, id, ok, _ := postTraced(t, srv.URL, CheckRequest{Program: src})
	if st != http.StatusOK || !ok.Cached {
		t.Fatalf("resubmission: status %d cached=%v, want 200 from cache", st, ok.Cached)
	}
	td := waitTrace(t, tracer, id)
	checkTiling(t, td)
	if td.Status != http.StatusOK {
		t.Errorf("trace status %d, want 200", td.Status)
	}
	cache := findPhase(td, "cache")
	if cache == nil {
		t.Fatal("cache-hit trace has no cache phase")
	}
	if v := attrValue(cache.Attrs, "hit"); v != "true" {
		t.Errorf("cache phase hit=%q, want true", v)
	}
	if v := attrValue(td.Attrs, "outcome"); v != "cache_hit" {
		t.Errorf("trace outcome=%q, want cache_hit", v)
	}
	// The fast path never opens flight/witness phases.
	if findPhase(td, "flight") != nil {
		t.Error("cache-hit trace opened a flight phase")
	}
	if findPhase(td, "serialize") == nil {
		t.Error("cache-hit trace has no serialize phase")
	}
}

// TestTraceFlightRolesReconcile: under concurrent identical submissions
// the leader's flight phase hosts the queue and check children while a
// follower's flight phase is a bare wait marked role=follower — and both
// trace shapes tile to their request durations.
func TestTraceFlightRolesReconcile(t *testing.T) {
	_, srv, tracer, _ := newTracedServer(t,
		Options{Workers: 1, QueueDepth: 64, CacheSize: -1, Registry: telemetry.NewRegistry()},
		rtrace.Options{RingSize: 256})
	src := catalogSrc(t, "IRIW")

	// Pin the single worker on an intractable check so the IRIW leader
	// queues behind it: the burst below arrives while the leader is still
	// waiting, which makes follower coalescing deterministic rather than
	// a race against a sub-millisecond check.
	var slow sync.WaitGroup
	slow.Add(1)
	go func() {
		defer slow.Done()
		postTraced(t, srv.URL, CheckRequest{Program: contendedSrc(7, 3), DeadlineMs: 400})
	}()
	time.Sleep(100 * time.Millisecond)

	const n = 8
	ids := make([]string, n)
	coalesced := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, id, ok, _ := postTraced(t, srv.URL, CheckRequest{Program: src})
			if st == http.StatusOK {
				ids[i], coalesced[i] = id, ok.Coalesced
			}
		}(i)
	}
	wg.Wait()
	slow.Wait()

	var leaderID, followerID string
	for i := range ids {
		if ids[i] == "" {
			continue
		}
		if coalesced[i] && followerID == "" {
			followerID = ids[i]
		}
		if !coalesced[i] && leaderID == "" {
			leaderID = ids[i]
		}
	}
	if leaderID == "" || followerID == "" {
		t.Fatalf("no leader/follower pair in the burst (leader=%q follower=%q)", leaderID, followerID)
	}

	lead := waitTrace(t, tracer, leaderID)
	checkTiling(t, lead)
	lf := findPhase(lead, "flight")
	if lf == nil {
		t.Fatal("leader trace has no flight phase")
	}
	if v := attrValue(lf.Attrs, "role"); v != "leader" {
		t.Errorf("leader flight role=%q, want leader", v)
	}
	var sawQueue, sawCheck bool
	for _, c := range lf.Children {
		switch c.Name {
		case "queue":
			sawQueue = true
		case "check":
			sawCheck = true
			if hasEvent(&c, "enumerated") == nil {
				t.Error("leader check span has no enumerated event")
			}
		}
	}
	if !sawQueue || !sawCheck {
		t.Errorf("leader flight children queue=%v check=%v, want both", sawQueue, sawCheck)
	}

	fol := waitTrace(t, tracer, followerID)
	checkTiling(t, fol)
	ff := findPhase(fol, "flight")
	if ff == nil {
		t.Fatal("follower trace has no flight phase")
	}
	if v := attrValue(ff.Attrs, "role"); v != "follower" {
		t.Errorf("follower flight role=%q, want follower", v)
	}
	if len(ff.Children) != 0 {
		t.Errorf("follower flight has %d children, want a bare wait", len(ff.Children))
	}
}

// TestTraceDeadlineReconciles: a deadline-cancelled enumeration still
// produces a fully-tiled trace ending in serialize, stamped 422/deadline.
func TestTraceDeadlineReconciles(t *testing.T) {
	_, srv, tracer, _ := newTracedServer(t,
		Options{Workers: 1, Registry: telemetry.NewRegistry()}, rtrace.Options{})
	st, id, _, bad := postTraced(t, srv.URL, CheckRequest{Program: contendedSrc(7, 3), DeadlineMs: 100})
	if st != http.StatusUnprocessableEntity || bad.Kind != "deadline" {
		t.Fatalf("intractable check: %d/%q, want 422/deadline", st, bad.Kind)
	}
	td := waitTrace(t, tracer, id)
	checkTiling(t, td)
	if td.Status != http.StatusUnprocessableEntity || td.Kind != "deadline" {
		t.Errorf("trace stamped %d/%q, want 422/deadline", td.Status, td.Kind)
	}
	fl := findPhase(td, "flight")
	if fl == nil {
		t.Fatal("deadline trace has no flight phase")
	}
	if last := td.Phases[len(td.Phases)-1]; last.Name != "serialize" {
		t.Errorf("last phase %q, want serialize", last.Name)
	}
}

// TestTraceWitnessDroppedOnDrain: a cached verdict served during drain
// records why its witness search was skipped, and the trace still tiles.
func TestTraceWitnessDroppedOnDrain(t *testing.T) {
	s, srv, tracer, _ := newTracedServer(t, Options{}, rtrace.Options{})
	src := catalogSrc(t, "MPData")
	if st, _, ok, bad := postTraced(t, srv.URL, CheckRequest{Program: src}); st != http.StatusOK || ok.Legal {
		t.Fatalf("warm-up: status %d legal=%v (%s)", st, ok.Legal, bad.Error)
	}
	s.BeginDrain()
	st, id, ok, _ := postTraced(t, srv.URL, CheckRequest{Program: src, Witness: true})
	if st != http.StatusOK || !ok.Cached || ok.Witness != "" {
		t.Fatalf("drain-time witness request: %d cached=%v witness=%q, want witness-less cache hit", st, ok.Cached, ok.Witness)
	}
	td := waitTrace(t, tracer, id)
	checkTiling(t, td)
	gates := findPhase(td, "gates")
	if gates == nil {
		t.Fatal("trace has no gates phase")
	}
	ev := hasEvent(gates, "witness_dropped")
	if ev == nil {
		t.Fatal("gates phase has no witness_dropped event")
	}
	if v := attrValue(ev.Attrs, "reason"); v != "draining" {
		t.Errorf("witness_dropped reason=%q, want draining", v)
	}
}

// TestNoTraceLeakPastShutdown: after a mixed workload — successes,
// rejects, and a deadline-cancelled check whose singleflight ran
// detached — Drain + tracer.Shutdown leaves zero active traces and
// every started trace accounted finished.
func TestNoTraceLeakPastShutdown(t *testing.T) {
	s, srv, tracer, _ := newTracedServer(t,
		Options{Workers: 2, Registry: telemetry.NewRegistry()}, rtrace.Options{})

	var requests int64
	post := func(req CheckRequest) {
		postTraced(t, srv.URL, req)
		requests++
	}
	post(CheckRequest{Program: catalogSrc(t, "MP_paired")})
	post(CheckRequest{Program: catalogSrc(t, "MP_paired")}) // cache hit
	post(CheckRequest{Program: contendedSrc(7, 3), DeadlineMs: 100})
	rawTraced(t, http.MethodPost, srv.URL, "{not json")
	requests++
	rawTraced(t, http.MethodGet, srv.URL, "")
	requests++

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := tracer.Shutdown(ctx); err != nil {
		t.Fatalf("tracer.Shutdown: %v", err)
	}
	st := tracer.Stats()
	if st.Active != 0 {
		t.Errorf("%d traces still active after shutdown", st.Active)
	}
	if st.Started != st.Finished {
		t.Errorf("started=%d finished=%d, want equal", st.Started, st.Finished)
	}
	if st.Started != requests {
		t.Errorf("started=%d, want one trace per request (%d)", st.Started, requests)
	}
}

// TestMetricsExemplars: the OpenMetrics exposition carries trace-ID
// exemplars on the request counters while the classic exposition stays
// byte-for-byte free of them.
func TestMetricsExemplars(t *testing.T) {
	s, srv, _, _ := newTracedServer(t, Options{}, rtrace.Options{})
	st, id, _, _ := postTraced(t, srv.URL, CheckRequest{Program: catalogSrc(t, "MP_paired")})
	if st != http.StatusOK {
		t.Fatalf("check: status %d", st)
	}

	var classic bytes.Buffer
	s.WriteMetrics(&classic)
	if strings.Contains(classic.String(), "trace_id") {
		t.Error("classic exposition leaks exemplars")
	}
	if !strings.Contains(classic.String(), "rats_serve_requests_total 1") {
		t.Errorf("classic exposition missing request counter:\n%s", classic.String())
	}

	var om bytes.Buffer
	s.WriteMetricsTo(&om, true)
	want := `rats_serve_requests_total 1 # {trace_id="` + id + `"} 1 `
	if !strings.Contains(om.String(), want) {
		t.Errorf("OpenMetrics exposition missing exemplar %q:\n%s", want, om.String())
	}
}

// TestTraceSolveReconciles: a mode=solve check opens a top-level "solve"
// phase (never "flight"), tiles exactly like every other trace, and its
// check span carries the solver's own child spans (solve.static and, for
// this statically-decided program, solve.states).
func TestTraceSolveReconciles(t *testing.T) {
	_, srv, tracer, _ := newTracedServer(t,
		Options{Registry: telemetry.NewRegistry()}, rtrace.Options{})
	st, id, ok, bad := postTraced(t, srv.URL, CheckRequest{
		Program: contendedSrc(7, 3), Mode: "solve", DeadlineMs: 5000,
	})
	if st != http.StatusOK {
		t.Fatalf("mode=solve check: status %d (%s: %s)", st, bad.Kind, bad.Error)
	}
	if !ok.Legal {
		t.Fatal("contended unpaired increments are race-free")
	}
	td := waitTrace(t, tracer, id)
	checkTiling(t, td)
	if v := attrValue(td.Attrs, "mode"); v != "solve" {
		t.Errorf("trace mode=%q, want solve", v)
	}
	if findPhase(td, "flight") != nil {
		t.Error("solve-mode trace opened a flight phase")
	}
	sol := findPhase(td, "solve")
	if sol == nil {
		t.Fatal("solve-mode trace has no solve phase")
	}
	if v := attrValue(sol.Attrs, "role"); v != "leader" {
		t.Errorf("solve phase role=%q, want leader", v)
	}
	var check *rtrace.SpanData
	for i := range sol.Children {
		if sol.Children[i].Name == "check" {
			check = &sol.Children[i]
		}
	}
	if check == nil {
		t.Fatal("solve phase has no check child")
	}
	var sawStatic, sawStates bool
	for _, c := range check.Children {
		switch c.Name {
		case "solve.static":
			sawStatic = true
		case "solve.states":
			sawStates = true
		}
	}
	if !sawStatic || !sawStates {
		t.Errorf("check span children static=%v states=%v, want both", sawStatic, sawStates)
	}
}
