package graphs

import "sort"

// The paper's BC inputs are rome99 (road network), nasa1824 and ex33
// (FEM matrices), and c-22 (optimization matrix); its PageRank inputs are
// c-37, c-36, ex3, and c-40. Absent the University of Florida collection,
// the catalog instantiates each name with a generator of the same
// structural family, scaled down so the cycle-level simulation stays
// tractable. The *shape* contrast the paper exploits is preserved:
// road = low degree / deep BFS, FEM = moderate local reuse, c-* = dense
// hub rows that concentrate atomic traffic.

// BCInputs returns the four BC graphs in the paper's numbering
// (BC-1..BC-4).
func BCInputs() []*Graph {
	return []*Graph{
		Road("rome99", 24, 1),        // BC-1: road network
		FEM("nasa1824", 700, 8, 2),   // BC-2: FEM matrix
		FEM("ex33", 500, 12, 3),      // BC-3: FEM matrix
		Hub("c-22", 500, 3, 0.15, 4), // BC-4: optimization matrix
	}
}

// PRInputs returns the four PageRank graphs in the paper's numbering
// (PR-1..PR-4).
func PRInputs() []*Graph {
	return []*Graph{
		Hub("c-37", 600, 4, 0.12, 5), // PR-1
		Hub("c-36", 500, 3, 0.18, 6), // PR-2
		FEM("ex3", 600, 10, 7),       // PR-3
		Hub("c-40", 700, 5, 0.10, 8), // PR-4
	}
}

// ByName returns a catalog graph by its paper name.
func ByName(name string) *Graph {
	for _, g := range append(BCInputs(), PRInputs()...) {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Names lists all catalog graph names, sorted.
func Names() []string {
	var out []string
	for _, g := range append(BCInputs(), PRInputs()...) {
		out = append(out, g.Name)
	}
	sort.Strings(out)
	return out
}
