package rel

import (
	"fmt"
	"math/rand"
	"testing"
)

// toBool converts a bitset relation to the reference representation.
func toBool(r Rel) boolRel {
	c := newBoolRel(r.Size())
	r.ForEach(func(i, j int) { c.Set(i, j) })
	return c
}

// equalRefs compares a bitset relation against a reference relation
// exactly (same size, same pairs).
func equalRef(r Rel, ref boolRel) error {
	if r.Size() != ref.Size() {
		return fmt.Errorf("size %d vs %d", r.Size(), ref.Size())
	}
	for i := 0; i < r.Size(); i++ {
		for j := 0; j < r.Size(); j++ {
			if r.Has(i, j) != ref.Has(i, j) {
				return fmt.Errorf("pair (%d,%d): bitset %v, reference %v", i, j, r.Has(i, j), ref.Has(i, j))
			}
		}
	}
	return nil
}

func randPair(rng *rand.Rand, n int, density float64) (Rel, boolRel) {
	r := New(n)
	ref := newBoolRel(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				r.Set(i, j)
				ref.Set(i, j)
			}
		}
	}
	return r, ref
}

func randSet(rng *rand.Rand, n int, density float64) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = rng.Float64() < density
	}
	return s
}

// TestDifferentialAgainstReference checks every bitset operator against
// the retained []bool implementation on randomized relations of sizes
// 1–80 (crossing the one-word boundary at 64) and densities from sparse
// to near-full.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(80)
		if trial%10 == 0 {
			// Force word-boundary sizes regularly.
			n = []int{1, 63, 64, 65, 80}[rng.Intn(5)]
		}
		density := []float64{0.02, 0.1, 0.3, 0.7, 0.95}[rng.Intn(5)]
		a, refA := randPair(rng, n, density)
		b, refB := randPair(rng, n, density)

		type op struct {
			name string
			got  Rel
			want boolRel
		}
		checks := []op{
			{"Union", a.Union(b), refA.Union(refB)},
			{"Inter", a.Inter(b), refA.Inter(refB)},
			{"Diff", a.Diff(b), refA.Diff(refB)},
			{"Compose", a.Compose(b), refA.Compose(refB)},
			{"Inverse", a.Inverse(), refA.Inverse()},
			{"TransClosure", a.TransClosure(), refA.TransClosure()},
			{"ReflTransClosure", a.ReflTransClosure(), refA.ReflTransClosure()},
			{"Sym", a.Sym(), refA.Sym()},
			{"Identity", Identity(n), boolIdentity(n)},
		}
		for _, c := range checks {
			if err := equalRef(c.got, c.want); err != nil {
				t.Fatalf("n=%d density=%.2f %s: %v", n, density, c.name, err)
			}
		}

		// Scalar queries.
		if a.Count() != refA.Count() {
			t.Fatalf("n=%d Count: %d vs %d", n, a.Count(), refA.Count())
		}
		if a.Empty() != refA.Empty() {
			t.Fatalf("n=%d Empty: %v vs %v", n, a.Empty(), refA.Empty())
		}
		if a.Acyclic() != refA.Acyclic() {
			t.Fatalf("n=%d Acyclic: %v vs %v", n, a.Acyclic(), refA.Acyclic())
		}
		if fmt.Sprint(a.Pairs()) != fmt.Sprint(refA.Pairs()) {
			t.Fatalf("n=%d Pairs differ", n)
		}

		// Set-product and restriction operators.
		sa, sb := randSet(rng, n, 0.5), randSet(rng, n, 0.5)
		if err := equalRef(Cross(sa, sb), boolCross(sa, sb)); err != nil {
			t.Fatalf("n=%d Cross: %v", n, err)
		}
		if err := equalRef(a.Restrict(sa, sb), refA.Inter(boolCross(sa, sb))); err != nil {
			t.Fatalf("n=%d Restrict: %v", n, err)
		}

		// In-place variants must match their allocating counterparts.
		in := a.Clone()
		in.UnionIn(b)
		if err := equalRef(in, refA.Union(refB)); err != nil {
			t.Fatalf("n=%d UnionIn: %v", n, err)
		}
		in.CopyFrom(a)
		in.InterIn(b)
		if err := equalRef(in, refA.Inter(refB)); err != nil {
			t.Fatalf("n=%d InterIn: %v", n, err)
		}
		in.CopyFrom(a)
		in.DiffIn(b)
		if err := equalRef(in, refA.Diff(refB)); err != nil {
			t.Fatalf("n=%d DiffIn: %v", n, err)
		}
		in.CopyFrom(a)
		in.TransCloseIn()
		if err := equalRef(in, refA.TransClosure()); err != nil {
			t.Fatalf("n=%d TransCloseIn: %v", n, err)
		}
		in.CopyFrom(a)
		in.ReflTransCloseIn()
		if err := equalRef(in, refA.ReflTransClosure()); err != nil {
			t.Fatalf("n=%d ReflTransCloseIn: %v", n, err)
		}
		in.ComposeInto(a, b)
		if err := equalRef(in, refA.Compose(refB)); err != nil {
			t.Fatalf("n=%d ComposeInto: %v", n, err)
		}
		in.InverseInto(a)
		if err := equalRef(in, refA.Inverse()); err != nil {
			t.Fatalf("n=%d InverseInto: %v", n, err)
		}

		// Mask kernels against their definitional expansions.
		sBits := BitsFromBools(sa)
		any := make([]bool, n)
		for i := range any {
			any[i] = true
		}
		in.InterAloInto(a, sBits)
		alo := refA.Inter(boolCross(sa, any).Union(boolCross(any, sa)))
		if err := equalRef(in, alo); err != nil {
			t.Fatalf("n=%d InterAloInto: %v", n, err)
		}
		in.CopyFrom(a)
		in.RestrictToIn(sBits)
		if err := equalRef(in, refA.Inter(boolCross(sa, sa))); err != nil {
			t.Fatalf("n=%d RestrictToIn: %v", n, err)
		}
		in.CrossIn(BitsFromBools(sa), BitsFromBools(sb))
		if err := equalRef(in, boolCross(sa, sb)); err != nil {
			t.Fatalf("n=%d CrossIn: %v", n, err)
		}

		// ForEach visits exactly the reference pairs, in row-major order.
		var fe [][2]int
		a.ForEach(func(i, j int) { fe = append(fe, [2]int{i, j}) })
		if fmt.Sprint(fe) != fmt.Sprint(refA.Pairs()) {
			t.Fatalf("n=%d ForEach ordering differs", n)
		}
	}
}

// TestBitsMatchesBoolSets checks the Bits set ops against plain []bool
// reasoning on randomized sets of sizes 1–80.
func TestBitsMatchesBoolSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(80)
		va, vb := randSet(rng, n, 0.4), randSet(rng, n, 0.4)
		a, b := BitsFromBools(va), BitsFromBools(vb)
		count, anyB := 0, false
		for i := 0; i < n; i++ {
			if a.Has(i) != va[i] {
				t.Fatalf("n=%d Has(%d) mismatch", n, i)
			}
			if va[i] {
				count++
				anyB = true
			}
		}
		if a.Count() != count || a.Any() != anyB {
			t.Fatalf("n=%d Count/Any mismatch", n)
		}
		check := func(name string, got Bits, want func(x, y bool) bool) {
			for i := 0; i < n; i++ {
				if got.Has(i) != want(va[i], vb[i]) {
					t.Fatalf("n=%d %s bit %d mismatch", n, name, i)
				}
			}
		}
		s := MakeBits(n)
		s.CopyFrom(a)
		s.OrIn(b)
		check("OrIn", s, func(x, y bool) bool { return x || y })
		s.CopyFrom(a)
		s.AndIn(b)
		check("AndIn", s, func(x, y bool) bool { return x && y })
		s.CopyFrom(a)
		s.AndNotIn(b)
		check("AndNotIn", s, func(x, y bool) bool { return x && !y })

		k := rng.Intn(n)
		s.CopyFrom(a)
		s.KeepAbove(k)
		for i := 0; i < n; i++ {
			want := va[i] && i > k
			if s.Has(i) != want {
				t.Fatalf("n=%d KeepAbove(%d) bit %d: got %v want %v", n, k, i, s.Has(i), want)
			}
		}

		var visited []int
		a.ForEach(func(i int) { visited = append(visited, i) })
		for idx := 1; idx < len(visited); idx++ {
			if visited[idx] <= visited[idx-1] {
				t.Fatalf("ForEach not ascending: %v", visited)
			}
		}
		if len(visited) != count {
			t.Fatalf("ForEach visited %d, want %d", len(visited), count)
		}
	}
}

// TestResizedReusesStorage pins the arena contract: shrinking or
// same-size Resized reuses the backing array and clears it.
func TestResizedReusesStorage(t *testing.T) {
	r := New(64)
	r.Set(3, 5)
	small := r.Resized(16)
	if small.Size() != 16 || !small.Empty() {
		t.Fatalf("Resized(16): size %d empty %v", small.Size(), small.Empty())
	}
	small.Set(1, 2)
	grown := small.Resized(80)
	if grown.Size() != 80 || !grown.Empty() {
		t.Fatalf("Resized(80): size %d empty %v", grown.Size(), grown.Empty())
	}
}
