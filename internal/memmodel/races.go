package memmodel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel/rel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/rtrace"
)

// RaceKind is one of the paper's illegal race categories.
type RaceKind uint8

const (
	DataRace RaceKind = iota
	CommutativeRace
	NonOrderingRace
	QuantumRace
	SpeculativeRace

	// NumRaceKinds bounds the RaceKind enum for array indexing.
	NumRaceKinds = 5
)

func (k RaceKind) String() string {
	switch k {
	case DataRace:
		return "data race"
	case CommutativeRace:
		return "commutative race"
	case NonOrderingRace:
		return "non-ordering race"
	case QuantumRace:
		return "quantum race"
	case SpeculativeRace:
		return "speculative race"
	}
	return fmt.Sprintf("RaceKind(%d)", uint8(k))
}

// RaceKinds lists all kinds in precedence order.
func RaceKinds() []RaceKind {
	return []RaceKind{DataRace, CommutativeRace, NonOrderingRace, QuantumRace, SpeculativeRace}
}

// Analysis holds the per-execution race analysis: for each kind, the
// unordered event pairs (i < j) that form such a race, sorted
// lexicographically.
type Analysis struct {
	Exec  *Execution
	Rel   *Relations
	Races [NumRaceKinds][][2]int
}

// Illegal reports whether the execution contains any illegal race under
// the given model (DRF0/DRF1 forbid data races; DRFrlx forbids all five).
func (a *Analysis) Illegal(m core.Model) bool {
	if len(a.Races[DataRace]) > 0 {
		return true
	}
	if m != core.DRFrlx {
		return false
	}
	for _, k := range []RaceKind{CommutativeRace, NonOrderingRace, QuantumRace, SpeculativeRace} {
		if len(a.Races[k]) > 0 {
			return true
		}
	}
	return false
}

// canonicalInto folds a symmetric relation to unordered (i<j) pairs,
// appending into buf (a reused arena buffer sliced to [:0]). Race
// relations are sparse, so it extracts the set pairs with the word-
// skipping AppendPairs kernel and sorted-insertes the normalized pairs
// (deduplicating the two orientations of a symmetric pair) rather than
// probing all n² cells.
func (a *Analyzer) canonicalInto(buf [][2]int, r rel.Rel) [][2]int {
	a.pairBuf = r.AppendPairs(a.pairBuf[:0])
	for _, p := range a.pairBuf {
		i, j := p[0], p[1]
		if i > j {
			i, j = j, i
		}
		k := len(buf)
		for k > 0 && (buf[k-1][0] > i || (buf[k-1][0] == i && buf[k-1][1] > j)) {
			k--
		}
		if (k > 0 && buf[k-1] == [2]int{i, j}) || (k < len(buf) && buf[k] == [2]int{i, j}) {
			continue
		}
		buf = append(buf, [2]int{})
		copy(buf[k+1:], buf[k:])
		buf[k] = [2]int{i, j}
	}
	return buf
}

// Analyze runs the programmer-centric model of Listing 7 on one SC
// execution in a fresh arena. Callers analyzing many executions should
// allocate one Analyzer and use its Analyze method instead.
func Analyze(ex *Execution) *Analysis {
	return NewAnalyzer().Analyze(ex)
}

// Analyze runs the programmer-centric model of Listing 7 on one SC
// execution: it computes data, commutative, non-ordering, quantum, and
// speculative races. The returned *Analysis borrows the arena and is
// valid until the next BuildRelations/Analyze call on this Analyzer.
func (a *Analyzer) Analyze(ex *Execution) *Analysis {
	r := a.BuildRelations(ex)

	// classBits are static per program (ensure filled them); only the
	// atomic mask depends on which events executed.
	a.atomicBits.CopyFrom(a.atomicStatic)
	a.atomicBits.AndIn(a.present)

	// data-race = race & (at-least-one Data)
	a.dRel.InterAloInto(r.Race, a.classBits[core.Data])

	// Commutative race (Section 3.2.3): race with at least one commutative
	// access where (a) the accesses are not pairwise commutative, or
	// (b) either access's loaded value is observed.
	a.cRel.ClearAll()
	a.tmp1.InterAloInto(r.Race, a.classBits[core.Commutative])
	a.tmp1.ForEach(func(i, j int) {
		ei, ej := &ex.Events[i], &ex.Events[j]
		pairwise := core.Commutes(ei.Op.AOp, ei.Op.Operand.Const, ej.Op.AOp, ej.Op.Operand.Const)
		observed := (r.IsR[i] && r.Observed[i]) || (r.IsR[j] && r.Observed[j])
		if !pairwise || observed {
			a.cRel.Set(i, j)
		}
	})

	// Non-ordering race (Section 3.3.3): a racing atomic pair (X, Y) with
	// at least one non-ordering access, whose conflict-order edge lies on
	// an ordering path from some conflicting (A, B) that has no valid
	// ordering path. Per Listing 7, pairs already flagged as data or
	// commutative races are excluded.
	a.nRel.ClearAll()
	a.tmp1.InterAloInto(r.Race, a.classBits[core.NonOrdering])
	a.tmp1.RestrictToIn(a.atomicBits)
	a.tmp1.DiffIn(a.dRel)
	a.tmp1.DiffIn(a.cRel)
	if !a.tmp1.Empty() {
		a.invReach.InverseInto(r.Reach)
		a.tmp1.ForEach(func(x, y int) {
			// Consider the T-ordered direction only.
			if r.CO.Has(x, y) && a.noPathIsUnique(r, x, y) {
				a.nRel.Set(x, y)
			}
		})
	}

	// Quantum race (Section 3.4.3): race between a quantum access and a
	// non-quantum access.
	a.qRel.InterAloInto(r.Race, a.classBits[core.Quantum])
	a.tmp1.CrossIn(a.classBits[core.Quantum], a.classBits[core.Quantum])
	a.qRel.DiffIn(a.tmp1)

	// Speculative race (Section 3.5.3): race with at least one speculative
	// access where both are writes, or the racy load's value is observed.
	a.sRel.ClearAll()
	a.tmp1.InterAloInto(r.Race, a.classBits[core.Speculative])
	a.tmp1.ForEach(func(i, j int) {
		bothWrites := r.IsW[i] && r.IsW[j]
		observed := (r.IsR[i] && r.Observed[i]) || (r.IsR[j] && r.Observed[j])
		if bothWrites || observed {
			a.sRel.Set(i, j)
		}
	})

	an := &a.analysis
	an.Exec = ex
	an.Rel = r
	an.Races[DataRace] = a.canonicalInto(an.Races[DataRace][:0], a.dRel)
	an.Races[CommutativeRace] = a.canonicalInto(an.Races[CommutativeRace][:0], a.cRel)
	an.Races[NonOrderingRace] = a.canonicalInto(an.Races[NonOrderingRace][:0], a.nRel)
	an.Races[QuantumRace] = a.canonicalInto(an.Races[QuantumRace][:0], a.qRel)
	an.Races[SpeculativeRace] = a.canonicalInto(an.Races[SpeculativeRace][:0], a.sRel)
	return an
}

// noPathIsUnique reports whether the conflict-order edge (x → y) lies on
// an ordering path from some conflicting pair (A, B) that has no valid
// ordering path — i.e. the non-ordering edge carries ordering
// responsibility it is not allowed to carry.
//
// Bitset form of the quantified original: for each A with Reach(A, x),
// candidate B's are CO.Row(A) \ ValidPath.Row(A) ∩ Reach.Row(y), further
// intersected with POPath.Row(y) when the A-side lacks a po edge
// (POPath(A, x) fails); any surviving bit witnesses the race. CO is
// irreflexive, so A ≠ B needs no explicit mask. Requires a.invReach to
// hold the inverse of r.Reach.
func (a *Analyzer) noPathIsUnique(r *Relations, x, y int) bool {
	found := false
	a.invReach.Row(x).ForEach(func(src int) {
		if found {
			return
		}
		s := a.scr
		s.CopyFrom(r.CO.Row(src))
		s.AndNotIn(r.ValidPath.Row(src))
		s.AndIn(r.Reach.Row(y))
		if !r.POPath.Has(src, x) {
			s.AndIn(r.POPath.Row(y))
		}
		if s.Any() {
			found = true
		}
	})
	return found
}

// Verdict is the program-level outcome of checking every SC execution of
// the (quantum-equivalent) program.
type Verdict struct {
	Prog  string
	Model core.Model
	// Legal reports whether the program is race-free under the model
	// (a "DRF0/DRF1/DRFrlx program" per the respective definitions).
	Legal bool
	// Races collects, per kind, the distinct racy op pairs found across
	// executions, described as "thread.opindex" strings.
	Races map[RaceKind][]string
	// Execs is the number of SC executions analyzed. The enumerator
	// applies partial-order reduction, so this counts one representative
	// per trace of commuting accesses, not every interleaving.
	Execs int
	// SCResults is the set of final memory states over all SC executions
	// of the (quantum-equivalent) program.
	SCResults map[string]bool
}

// Mode selects the analysis backend CheckProgramWith runs.
type Mode string

const (
	// ModeEnumerate is the default: enumerate every SC execution (with
	// partial-order reduction) and classify races per execution.
	ModeEnumerate Mode = ""
	// ModeSolve routes the check through the constraint-solving backend
	// (internal/memmodel/solve): race candidates are decided statically
	// where possible and only the residue is searched, so heavily
	// contended programs whose interleaving count is intractable still
	// get exact verdicts. The backend must be registered by importing the
	// solve package; it is verdict-only, so Materialize requests fall
	// back to the enumerator.
	ModeSolve Mode = "solve"
)

// solveBackend is the registered constraint-solving checker. The solve
// package imports memmodel, so the dependency has to point this way:
// memmodel dispatches through this hook and the solve package's init
// registers itself into it.
var solveBackend func(*litmus.Program, core.Model, CheckOptions) (*Verdict, error)

// RegisterSolveBackend installs the ModeSolve implementation. Called by
// the solve package's init; last registration wins.
func RegisterSolveBackend(fn func(*litmus.Program, core.Model, CheckOptions) (*Verdict, error)) {
	solveBackend = fn
}

// CheckOptions configures CheckProgram's analysis pipeline.
type CheckOptions struct {
	// Mode selects the backend: ModeEnumerate (default) enumerates and
	// classifies every SC execution; ModeSolve solves for racy executions
	// instead, falling back to the enumerator when Materialize is set
	// (the solver produces verdicts, not execution lists).
	Mode Mode
	// Materialize switches from the default streaming pipeline (POR
	// enumeration feeding a pool of Analyze workers through a bounded
	// channel) to the two-phase mode that first collects every execution
	// into a slice and then analyzes serially. The verdict is identical
	// either way; materializing costs O(#executions) memory and exists
	// for tests and debugging.
	Materialize bool
	// Workers caps the analysis worker pool (streaming mode only);
	// <= 0 means GOMAXPROCS. Workers spawn lazily as the enumerator
	// outpaces analysis, so small programs stay on one goroutine.
	Workers int
	// Limit overrides the enumerator's execution limit; 0 means the
	// enumerator default.
	Limit int
	// TransitionLimit, when positive, bounds the total DFS transitions of
	// the check (EnumOptions.TransitionLimit): a work budget that also
	// caps searches whose interleavings mostly dead-end before recording
	// an execution. Tripping it returns a *LimitError with Phase
	// "transitions".
	TransitionLimit int64
	// Ctx, when non-nil, cancels the check: deadlines and client
	// disconnects stop the enumeration promptly and surface as a
	// *CancelError wrapping the context's error.
	Ctx context.Context
	// Telemetry, when non-nil, receives the check's live engine counters
	// (enumeration, pruning, analysis workers, verdict merge) and its
	// lifecycle transitions. nil disables instrumentation at zero cost.
	Telemetry *telemetry.Check
	// Span, when non-nil, is the request-trace parent for this check:
	// the pipeline opens "enumerate", per-worker "analyze.worker", and
	// "merge" children under it, and links each enumerate child onto
	// Telemetry (telemetry.Check.SetSpan) for the engine's own events —
	// so the engine-internal "enumerated"/"enum.worker" annotations need
	// Telemetry set too. nil disables tracing at zero cost.
	Span *rtrace.Span
}

// CheckProgram enumerates the SC executions of the program's
// quantum-equivalent form (as model m distinguishes its accesses) and
// classifies every race. DRF0 and DRF1 forbid data races only; DRFrlx
// forbids all five categories. The returned verdict aggregates races
// across executions. Executions stream from the enumerator straight into
// a pool of analysis workers, so memory stays bounded regardless of how
// many executions the program has.
func CheckProgram(p0 *litmus.Program, m core.Model) (*Verdict, error) {
	return CheckProgramWith(p0, m, CheckOptions{})
}

// CheckProgramWith is CheckProgram with an explicit pipeline
// configuration. The verdict is deterministic — byte-identical between
// streaming and materializing modes and across worker counts — because
// every aggregated field is an order-independent set union finished by a
// sort.
func CheckProgramWith(p0 *litmus.Program, m core.Model, opts CheckOptions) (*Verdict, error) {
	if opts.Mode == ModeSolve && !opts.Materialize {
		if solveBackend == nil {
			return nil, fmt.Errorf("memmodel: CheckOptions.Mode %q requires the solve backend: import rats/internal/memmodel/solve", opts.Mode)
		}
		return solveBackend(p0, m, opts)
	}
	if opts.Mode != ModeEnumerate && opts.Mode != ModeSolve {
		return nil, fmt.Errorf("memmodel: unknown CheckOptions.Mode %q", opts.Mode)
	}
	p := p0.Under(m)
	kinds := []RaceKind{DataRace}
	if m == core.DRFrlx {
		kinds = RaceKinds()
	}
	tel := opts.Telemetry
	effLimit := opts.Limit
	if effLimit == 0 {
		effLimit = DefaultLimit
	}
	tel.Begin(int64(effLimit))
	sp := opts.Span
	eo := EnumOptions{
		Quantum: true, Limit: opts.Limit, Telemetry: tel,
		Ctx: opts.Ctx, TransitionLimit: opts.TransitionLimit,
	}

	if opts.Materialize {
		en := sp.Child("enumerate")
		tel.SetSpan(en)
		execs, err := Enumerate(p, eo)
		tel.SetSpan(nil)
		en.End()
		if err != nil {
			tel.Finish(stateForErr(err))
			return nil, err
		}
		aw := sp.Child("analyze.worker")
		pv := newPartialVerdict()
		an := NewAnalyzer()
		w := tel.Worker()
		for _, ex := range execs {
			pv.add(an.Analyze(ex), kinds)
			w.IncAnalyzed()
		}
		aw.SetInt("analyzed", int64(len(execs)))
		aw.End()
		mg := sp.Child("merge")
		v := finishVerdict(p0.Name, m, []*partialVerdict{pv}, tel)
		mg.End()
		tel.Finish(telemetry.StateDone)
		return v, nil
	}

	maxWorkers := opts.Workers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	eo.Sequential = true
	if maxWorkers == 1 {
		// Single-worker streaming runs the analysis inline in the Visit
		// callback: no channel, no goroutine hand-off, and one Execution
		// recycled for every delivery, so memory is O(1) in the number of
		// executions.
		pv := newPartialVerdict()
		an := NewAnalyzer()
		w := tel.Worker()
		var spare *Execution
		eo.Recycle = func() *Execution {
			ex := spare
			spare = nil
			return ex
		}
		eo.Visit = func(ex *Execution) error {
			pv.add(an.Analyze(ex), kinds)
			w.IncAnalyzed()
			spare = ex
			return nil
		}
		// Enumeration and analysis interleave on one goroutine, so a
		// single span covers both.
		en := sp.Child("enumerate")
		tel.SetSpan(en)
		_, err := Enumerate(p, eo)
		tel.SetSpan(nil)
		en.End()
		if err != nil {
			tel.Finish(stateForErr(err))
			return nil, err
		}
		mg := sp.Child("merge")
		v := finishVerdict(p0.Name, m, []*partialVerdict{pv}, tel)
		mg.End()
		tel.Finish(telemetry.StateDone)
		return v, nil
	}
	ch := make(chan *Execution, 4*maxWorkers)
	var (
		wg     sync.WaitGroup
		parts  []*partialVerdict
		exPool sync.Pool
	)
	// spawn adds one analysis worker with its own arena and verdict
	// shard. Only the producer goroutine (the Visit callback below)
	// spawns, so parts needs no lock until wg.Wait returns. Analyzed
	// executions go back to the pool for the enumerator to refill, so the
	// steady-state pipeline recycles a bounded working set (channel
	// capacity + in-flight) instead of allocating per execution.
	spawn := func() {
		pv := newPartialVerdict()
		parts = append(parts, pv)
		w := tel.Worker()
		var wsp *rtrace.Span
		if sp != nil {
			wsp = sp.Child("analyze.worker")
			wsp.SetInt("worker", int64(len(parts)-1))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			an := NewAnalyzer()
			if w == nil && wsp == nil {
				for ex := range ch {
					pv.add(an.Analyze(ex), kinds)
					exPool.Put(ex)
				}
				return
			}
			// Instrumented loop: a blocking receive on an empty channel
			// means this worker outpaced the enumerator — count it as an
			// idle wait before parking.
			var analyzed int64
			defer func() {
				if wsp != nil {
					wsp.SetInt("analyzed", analyzed)
					wsp.End()
				}
			}()
			for {
				var ex *Execution
				var ok bool
				select {
				case ex, ok = <-ch:
				default:
					w.IncIdle()
					ex, ok = <-ch
				}
				if !ok {
					return
				}
				pv.add(an.Analyze(ex), kinds)
				w.IncAnalyzed()
				analyzed++
				exPool.Put(ex)
			}
		}()
	}
	spawn()
	// Enumeration runs sequentially as the pipeline's producer: per
	// execution it is several times cheaper than analysis, so the
	// parallelism that matters is on the analysis side, and a single
	// deterministic producer avoids the first-step fan-out's goroutine
	// and state-cloning overhead. Additional workers spawn only on
	// backlog — a channel filling up means analysis is falling behind —
	// so programs with few executions stay on one goroutine.
	eo.Recycle = func() *Execution {
		ex, _ := exPool.Get().(*Execution)
		return ex
	}
	eo.Visit = func(ex *Execution) error {
		if len(ch) > len(parts) && len(parts) < maxWorkers {
			spawn()
		}
		ch <- ex
		return nil
	}
	en := sp.Child("enumerate")
	tel.SetSpan(en)
	_, err := Enumerate(p, eo)
	tel.SetSpan(nil)
	en.End()
	close(ch)
	wg.Wait()
	if err != nil {
		tel.Finish(stateForErr(err))
		return nil, err
	}
	mg := sp.Child("merge")
	v := finishVerdict(p0.Name, m, parts, tel)
	mg.End()
	tel.Finish(telemetry.StateDone)
	return v, nil
}

// stateForErr maps a check error onto its terminal telemetry state.
func stateForErr(err error) telemetry.CheckState {
	var ce *CancelError
	switch {
	case errors.Is(err, ErrLimit):
		return telemetry.StateLimit
	case errors.Is(err, ErrStop), errors.As(err, &ce):
		return telemetry.StateStopped
	}
	return telemetry.StateFailed
}

// partialVerdict is one analysis worker's shard of the verdict. All
// fields are sets (or counts), so merging shards is order-independent.
type partialVerdict struct {
	execs     int
	scResults map[string]bool
	races     [NumRaceKinds]map[string]bool
	// descCache memoizes pair descriptions: the same racy pair recurs in
	// many executions, and its description depends only on static event
	// identity.
	descCache map[[2]int]string
}

func newPartialVerdict() *partialVerdict {
	return &partialVerdict{scResults: map[string]bool{}}
}

func (pv *partialVerdict) add(a *Analysis, kinds []RaceKind) {
	pv.execs++
	ex := a.Exec
	pv.scResults[ex.ResultKey()] = true
	for _, k := range kinds {
		for _, pr := range a.Races[k] {
			desc, ok := pv.descCache[pr]
			if !ok {
				ei, ej := &ex.Events[pr[0]], &ex.Events[pr[1]]
				desc = fmt.Sprintf("T%d.%d(%s)~T%d.%d(%s)",
					ei.Thread, ei.OpIndex, ei.Op.Class, ej.Thread, ej.OpIndex, ej.Op.Class)
				if pv.descCache == nil {
					pv.descCache = map[[2]int]string{}
				}
				pv.descCache[pr] = desc
			}
			if pv.races[k] == nil {
				pv.races[k] = map[string]bool{}
			}
			pv.races[k][desc] = true
		}
	}
}

// finishVerdict merges worker shards into the final verdict. Set union
// followed by a sort makes the result independent of how executions were
// partitioned across workers and of delivery order. The telemetry check
// (when instrumented) records the merge shape: distinct racy pairs and
// SC results (deterministic), plus the shard-set entries fed into the
// union (scheduling-dependent — how executions landed on workers).
func finishVerdict(name string, m core.Model, parts []*partialVerdict, tel *telemetry.Check) *Verdict {
	v := &Verdict{
		Prog: name, Model: m, Legal: true,
		Races:     map[RaceKind][]string{},
		SCResults: map[string]bool{},
	}
	var merged [NumRaceKinds]map[string]bool
	var mergeInputs int64
	for _, pv := range parts {
		v.Execs += pv.execs
		for k := range pv.scResults {
			v.SCResults[k] = true
		}
		mergeInputs += int64(len(pv.scResults))
		for ki, set := range pv.races {
			mergeInputs += int64(len(set))
			for d := range set {
				if merged[ki] == nil {
					merged[ki] = map[string]bool{}
				}
				merged[ki][d] = true
			}
		}
	}
	var distinct int64
	for ki, set := range merged {
		if len(set) == 0 {
			continue
		}
		distinct += int64(len(set))
		v.Legal = false
		descs := make([]string, 0, len(set))
		for d := range set {
			descs = append(descs, d)
		}
		sort.Strings(descs)
		v.Races[RaceKind(ki)] = descs
	}
	tel.SetUnion(distinct, mergeInputs, int64(len(v.SCResults)))
	return v
}

// Summary renders the verdict as a one-line description for reports.
func (v *Verdict) Summary() string {
	if v.Legal {
		return fmt.Sprintf("%s under %s: LEGAL (%d SC executions)", v.Prog, v.Model, v.Execs)
	}
	var parts []string
	for _, k := range RaceKinds() {
		if n := len(v.Races[k]); n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s(s)", n, k))
		}
	}
	return fmt.Sprintf("%s under %s: ILLEGAL — %s", v.Prog, v.Model, strings.Join(parts, ", "))
}
