package litmus

import (
	"fmt"

	"rats/internal/core"
)

// Case is one entry of the litmus suite: a program plus its expected
// legality under each model, and its Table 1 classification.
type Case struct {
	Prog *Program
	// Legal[m] is the expected verdict under core.Model(m): whether the
	// program is a legal DRF0/DRF1/DRFrlx program respectively.
	Legal [3]bool
	// UseCase is the paper's relaxed-atomic category (Table 1); empty for
	// classic litmus shapes and mislabeled variants.
	UseCase string
	// App is the application the paper associates with the use case.
	App string
	// Notes explains what the test stresses.
	Notes string
}

// WorkQueue builds Listing 1: a client enqueues (data write + paired
// occupancy increment); the service thread polls occupancy with an
// unpaired atomic and only dequeues — with a paired re-check — when the
// queue is non-empty.
func WorkQueue() *Program {
	p := New("WorkQueue")
	client := p.Thread("client")
	client.Store("D", 42, core.Data) // enqueue payload
	client.Inc("OCC", core.Paired)   // publish occupancy
	service := p.Thread("service")
	occ := service.Load("OCC", core.Unpaired) // relaxed occupancy() poll
	service.WithGuards(NZ(occ))
	occ2 := service.Load("OCC", core.Paired) // dequeue()'s SC re-check
	service.WithGuards(NZ(occ2))
	d := service.Load("D", core.Data) // consume payload
	service.EndGuards()
	service.Use(d)
	return p
}

// EventCounter builds Listing 2: workers concurrently increment a shared
// counter with commutative atomics, then signal completion with paired
// stores; the main thread joins and reads the final count.
func EventCounter(workers, incs int) *Program {
	p := New(fmt.Sprintf("EventCounter_%dx%d", workers, incs))
	for w := 0; w < workers; w++ {
		t := p.Thread(fmt.Sprintf("worker%d", w))
		for i := 0; i < incs; i++ {
			t.Inc("CTR", core.Commutative)
		}
		t.Store(Loc(fmt.Sprintf("DONE%d", w)), 1, core.Paired)
	}
	main := p.Thread("main")
	var guards []Guard
	for w := 0; w < workers; w++ {
		r := main.Load(Loc(fmt.Sprintf("DONE%d", w)), core.Paired)
		guards = append(guards, EQConst(r, 1))
	}
	main.WithGuards(guards...)
	c := main.Load("CTR", core.Data) // join ordered: plain read is safe
	main.EndGuards()
	main.Use(c)
	return p
}

// EventCounterObserved is a mislabeled Event Counter whose racing
// increments feed their old values into later instructions — condition
// (3) of the commutative-race definition.
func EventCounterObserved() *Program {
	p := New("EventCounterObserved")
	t0 := p.Thread("w0")
	r := t0.RMW(core.OpInc, "CTR", 0, core.Commutative)
	t0.Use(r) // old value observed — illegal for a commutative atomic
	t1 := p.Thread("w1")
	t1.Inc("CTR", core.Commutative)
	return p
}

// EventCounterNonCommutative is a mislabeled Event Counter whose racing
// updates do not commute (exchange vs. increment).
func EventCounterNonCommutative() *Program {
	p := New("EventCounterNonCommutative")
	t0 := p.Thread("w0")
	t0.RMWDiscard(core.OpExchange, "CTR", 7, core.Commutative)
	t1 := p.Thread("w1")
	t1.Inc("CTR", core.Commutative)
	return p
}

// Flags builds Listing 3: workers poll a stop flag (non-ordering) and set
// a dirty flag (commutative); the main thread raises stop, joins via
// paired flags, and then reads dirty.
func Flags(workers int) *Program {
	p := New(fmt.Sprintf("Flags_%d", workers))
	for w := 0; w < workers; w++ {
		t := p.Thread(fmt.Sprintf("worker%d", w))
		t.LoadDiscard("STOP", core.NonOrdering) // while(!stop) poll
		t.Store("DIRTY", 1, core.Commutative)
		t.Store(Loc(fmt.Sprintf("DONE%d", w)), 1, core.Paired)
	}
	main := p.Thread("main")
	main.Store("STOP", 1, core.NonOrdering)
	var guards []Guard
	for w := 0; w < workers; w++ {
		r := main.Load(Loc(fmt.Sprintf("DONE%d", w)), core.Paired)
		guards = append(guards, EQConst(r, 1))
	}
	main.WithGuards(guards...)
	d := main.Load("DIRTY", core.NonOrdering)
	main.EndGuards()
	main.Use(d)
	return p
}

// NOFlagPublish is the mislabeled Flags variant: a producer publishes an
// unpaired payload through a non-ordering flag, making the flag's racy
// edge the only ordering path between the payload accesses — a
// non-ordering race (the guarded shape of Figure 2(a)).
func NOFlagPublish() *Program {
	p := New("NOFlagPublish")
	prod := p.Thread("producer")
	prod.Store("DIRTY", 1, core.Unpaired)
	prod.Store("STOP", 1, core.NonOrdering)
	cons := p.Thread("consumer")
	s := cons.Load("STOP", core.NonOrdering)
	cons.WithGuards(NZ(s))
	d := cons.Load("DIRTY", core.Unpaired)
	cons.EndGuards()
	cons.Use(d)
	return p
}

// SplitCounter builds Listing 4: updaters add to their own shard with
// quantum RMWs; a reader sums the shards with quantum loads into a
// private location.
func SplitCounter() *Program {
	p := New("SplitCounter")
	t0 := p.Thread("updater0")
	t0.RMWDiscard(core.OpAdd, "C0", 1, core.Quantum)
	t1 := p.Thread("updater1")
	t1.RMWDiscard(core.OpAdd, "C1", 1, core.Quantum)
	rd := p.Thread("reader")
	a := rd.Load("C0", core.Quantum)
	b := rd.Load("C1", core.Quantum)
	rd.StoreExpr("SUM", Expr{Regs: []Reg{a, b}}, core.Data) // private sum
	return p
}

// QuantumMixed is a mislabeled variant: a quantum load racing with a
// non-quantum atomic store — a quantum race.
func QuantumMixed() *Program {
	p := New("QuantumMixed")
	t0 := p.Thread("t0")
	t0.Store("C", 1, core.Unpaired)
	t1 := p.Thread("t1")
	r := t1.Load("C", core.Quantum)
	t1.Use(r)
	return p
}

// RefCounter builds Listing 5 (single-counter form): both threads
// increment then decrement a shared reference count with quantum RMWs;
// whichever sees the count drop to zero marks the object for deletion
// with a commutative store.
func RefCounter() *Program {
	p := New("RefCounter")
	// Domain covers every value a refcount can take here (0..2) so the
	// quantum-equivalent enumeration subsumes the real executions.
	p.QuantumDomain = []int64{0, 1, 2}
	for i := 0; i < 2; i++ {
		t := p.Thread(fmt.Sprintf("t%d", i))
		t.Inc("RC", core.Quantum)
		old := t.RMW(core.OpDec, "RC", 0, core.Quantum)
		t.WithGuards(EQConst(old, 1)) // new value == 0: last reference
		t.Store("MARK", 1, core.Commutative)
		t.EndGuards()
	}
	return p
}

// RefCounterTwo builds the two-counter essence of Listing 5: the threads
// release the counters in opposite orders, which quantum atomics permit.
func RefCounterTwo() *Program {
	p := New("RefCounterTwo")
	p.QuantumDomain = []int64{0, 1, 2}
	t0 := p.Thread("t0")
	t0.Inc("RC1", core.Quantum)
	o0 := t0.RMW(core.OpDec, "RC2", 0, core.Quantum)
	t0.WithGuards(EQConst(o0, 1))
	t0.Store("MARK2", 1, core.Commutative)
	t0.EndGuards()
	t1 := p.Thread("t1")
	t1.Inc("RC2", core.Quantum)
	o1 := t1.RMW(core.OpDec, "RC1", 0, core.Quantum)
	t1.WithGuards(EQConst(o1, 1))
	t1.Store("MARK1", 1, core.Commutative)
	t1.EndGuards()
	return p
}

// Seqlocks builds Listing 6: a writer CASes the sequence number, updates
// the data with speculative stores, and publishes; a reader brackets
// speculative loads with paired sequence reads and uses the values only
// when the sequence check passes.
func Seqlocks() *Program {
	p := New("Seqlocks")
	w := p.Thread("writer")
	old := w.CAS("SEQ", 0, 1, core.Paired)
	w.WithGuards(EQZ(old)) // acquired the seqlock
	w.Store("D1", 10, core.Speculative)
	w.Store("D2", 20, core.Speculative)
	w.Store("SEQ", 2, core.Paired)
	w.EndGuards()
	r := p.Thread("reader")
	s0 := r.Load("SEQ", core.Paired)
	d1 := r.Load("D1", core.Speculative)
	d2 := r.Load("D2", core.Speculative)
	s1 := r.RMW(core.OpAdd, "SEQ", 0, core.Paired) // read-don't-modify-write
	r.WithGuards(EQEvenReg(s0, s1))                // seq unchanged and even
	r.StoreExpr("OUT", Expr{Regs: []Reg{d1, d2}}, core.Data)
	r.EndGuards()
	return p
}

// SeqlocksRA is the Section 7 variant: the reader's sequence accesses use
// acquire/release ordering instead of SC (the paper notes seqlock readers
// can be relaxed this far; the "read-don't-modify-write" becomes a
// release RMW).
func SeqlocksRA() *Program {
	p := New("SeqlocksRA")
	w := p.Thread("writer")
	old := w.CAS("SEQ", 0, 1, core.Paired)
	w.WithGuards(EQZ(old))
	w.Store("D1", 10, core.Speculative)
	w.Store("D2", 20, core.Speculative)
	w.Store("SEQ", 2, core.Paired)
	w.EndGuards()
	r := p.Thread("reader")
	s0 := r.Load("SEQ", core.Acquire)
	d1 := r.Load("D1", core.Speculative)
	d2 := r.Load("D2", core.Speculative)
	s1 := r.RMW(core.OpAdd, "SEQ", 0, core.Release) // read-don't-modify-write
	r.WithGuards(EQEvenReg(s0, s1))
	r.StoreExpr("OUT", Expr{Regs: []Reg{d1, d2}}, core.Data)
	r.EndGuards()
	return p
}

// SeqlocksUnchecked is the mislabeled seqlock: the reader uses the
// speculative values without the sequence re-check, so racy loads are
// observed — a speculative race.
func SeqlocksUnchecked() *Program {
	p := New("SeqlocksUnchecked")
	w := p.Thread("writer")
	w.Store("D1", 10, core.Speculative)
	r := p.Thread("reader")
	d1 := r.Load("D1", core.Speculative)
	r.StoreExpr("OUT", RegExpr(d1), core.Data)
	return p
}

// SeqlocksWW is the mislabeled seqlock with two unsynchronized writers:
// racing speculative stores — a speculative race.
func SeqlocksWW() *Program {
	p := New("SeqlocksWW")
	w0 := p.Thread("writer0")
	w0.Store("D1", 10, core.Speculative)
	w1 := p.Thread("writer1")
	w1.Store("D1", 20, core.Speculative)
	return p
}

// Figure2a reproduces Figure 2(a): the non-ordering accesses to Y form
// the only ordering path between the conflicting accesses to X.
func Figure2a() *Program {
	p := New("Figure2a")
	t0 := p.Thread("t0")
	t0.Store("X", 3, core.Unpaired)
	t0.Store("Y", 2, core.NonOrdering)
	t1 := p.Thread("t1")
	y := t1.Load("Y", core.NonOrdering)
	x := t1.Load("X", core.Unpaired)
	t1.Use(y)
	t1.Use(x)
	return p
}

// Figure2b reproduces Figure 2(b): a paired path through Z absolves the
// non-ordering accesses of ordering responsibility in the execution the
// figure shows.
func Figure2b() *Program {
	p := New("Figure2b")
	t0 := p.Thread("t0")
	t0.Store("X", 3, core.Unpaired)
	t0.Store("Z", 1, core.Paired)
	t0.Store("Y", 2, core.NonOrdering)
	t1 := p.Thread("t1")
	z := t1.Load("Z", core.Paired)
	y := t1.Load("Y", core.NonOrdering)
	x := t1.Load("X", core.Unpaired)
	t1.Use(z)
	t1.Use(y)
	t1.Use(x)
	return p
}

// MP builds message passing with the flag at the given class; the data
// read is guarded on seeing the flag.
func MP(name string, flagClass core.Class) *Program {
	p := New(name)
	t0 := p.Thread("producer")
	t0.Store("D", 1, core.Data)
	t0.Store("F", 1, flagClass)
	t1 := p.Thread("consumer")
	f := t1.Load("F", flagClass)
	t1.WithGuards(NZ(f))
	d := t1.Load("D", core.Data)
	t1.EndGuards()
	t1.Use(d)
	return p
}

// MPRA builds message passing with a release store and acquire load on
// the flag — the Section 7 extension ordering data without SC atomics.
func MPRA() *Program {
	p := New("MP_release_acquire")
	t0 := p.Thread("producer")
	t0.Store("D", 1, core.Data)
	t0.Store("F", 1, core.Release)
	t1 := p.Thread("consumer")
	f := t1.Load("F", core.Acquire)
	t1.WithGuards(NZ(f))
	d := t1.Load("D", core.Data)
	t1.EndGuards()
	t1.Use(d)
	return p
}

// MPData is an unannotated message-passing race: a plain data race.
func MPData() *Program {
	p := New("MPData")
	t0 := p.Thread("producer")
	t0.Store("D", 1, core.Data)
	t1 := p.Thread("consumer")
	d := t1.Load("D", core.Data)
	t1.Use(d)
	return p
}

// SB builds store buffering with both locations at the given class; the
// loaded values are published to private locations so the final state
// captures them.
func SB(name string, c core.Class) *Program {
	p := New(name)
	t0 := p.Thread("t0")
	t0.Store("X", 1, c)
	r0 := t0.Load("Y", c)
	t0.StoreExpr("OUT0", RegExpr(r0), core.Data)
	t1 := p.Thread("t1")
	t1.Store("Y", 1, c)
	r1 := t1.Load("X", c)
	t1.StoreExpr("OUT1", RegExpr(r1), core.Data)
	return p
}

// CoRR is the per-location coherence shape: two reads of the same
// location must not appear to go backwards, even relaxed.
func CoRR(c core.Class) *Program {
	p := New(fmt.Sprintf("CoRR_%s", c))
	t0 := p.Thread("writer")
	t0.Store("X", 1, c)
	t1 := p.Thread("reader")
	a := t1.Load("X", c)
	b := t1.Load("X", c)
	t1.StoreExpr("OUT0", RegExpr(a), core.Data)
	t1.StoreExpr("OUT1", RegExpr(b), core.Data)
	return p
}

// IRIW builds independent-reads-of-independent-writes with paired
// accesses: SC must hold.
func IRIW() *Program {
	p := New("IRIW")
	p.Thread("w0").Store("X", 1, core.Paired)
	p.Thread("w1").Store("Y", 1, core.Paired)
	r0 := p.Thread("r0")
	a := r0.Load("X", core.Paired)
	b := r0.Load("Y", core.Paired)
	r0.StoreExpr("OUT0", Expr{Regs: []Reg{a}}, core.Data)
	r0.StoreExpr("OUT1", Expr{Regs: []Reg{b}}, core.Data)
	r1 := p.Thread("r1")
	c := r1.Load("Y", core.Paired)
	d := r1.Load("X", core.Paired)
	r1.StoreExpr("OUT2", Expr{Regs: []Reg{c}}, core.Data)
	r1.StoreExpr("OUT3", Expr{Regs: []Reg{d}}, core.Data)
	return p
}

// LB builds load buffering: each thread loads one location and stores
// the other. The loaded values are published so they are observable.
func LB(name string, c core.Class) *Program {
	p := New(name)
	t0 := p.Thread("t0")
	r0 := t0.Load("X", c)
	t0.Store("Y", 1, c)
	t0.StoreExpr("OUT0", RegExpr(r0), core.Data)
	t1 := p.Thread("t1")
	r1 := t1.Load("Y", c)
	t1.Store("X", 1, c)
	t1.StoreExpr("OUT1", RegExpr(r1), core.Data)
	return p
}

// TwoPlusTwoW builds 2+2W: both threads store to both locations in
// opposite orders, with the given class and values.
func TwoPlusTwoW(name string, c core.Class, v0, v1 int64) *Program {
	p := New(name)
	t0 := p.Thread("t0")
	t0.Store("X", v0, c)
	t0.Store("Y", v0, c)
	t1 := p.Thread("t1")
	t1.Store("Y", v1, c)
	t1.Store("X", v1, c)
	return p
}

// WRC builds write-to-read causality with paired flags: T0 publishes,
// T1 observes and republishes, T2 observes transitively.
func WRC() *Program {
	p := New("WRC")
	p.Thread("t0").Store("X", 1, core.Paired)
	t1 := p.Thread("t1")
	a := t1.Load("X", core.Paired)
	t1.WithGuards(NZ(a))
	t1.Store("Y", 1, core.Paired)
	t1.EndGuards()
	t2 := p.Thread("t2")
	b := t2.Load("Y", core.Paired)
	t2.WithGuards(NZ(b))
	c := t2.Load("X", core.Paired)
	t2.EndGuards()
	t2.StoreExpr("OUT", RegExpr(c), core.Data)
	return p
}

// CoWW builds same-location write-write-read: per-location SC makes any
// labelling legal.
func CoWW(c core.Class) *Program {
	p := New(fmt.Sprintf("CoWW_%s", c))
	t0 := p.Thread("t0")
	t0.Store("X", 1, c)
	t0.Store("X", 2, c)
	t1 := p.Thread("t1")
	r := t1.Load("X", c)
	t1.StoreExpr("OUT", RegExpr(r), core.Data)
	return p
}

// Suite returns the full litmus suite with expected verdicts.
// Legal is indexed [DRF0, DRF1, DRFrlx].
func Suite() []Case {
	all := func() [3]bool { return [3]bool{true, true, true} }
	return []Case{
		{Prog: WorkQueue(), Legal: all(), UseCase: "Unpaired", App: "Work Queue",
			Notes: "Listing 1: relaxed occupancy poll, SC re-check in dequeue"},
		{Prog: EventCounter(2, 2), Legal: all(), UseCase: "Commutative", App: "Event Counter",
			Notes: "Listing 2: racing commutative increments, paired join before read"},
		{Prog: Flags(2), Legal: all(), UseCase: "Non-Ordering", App: "Flags",
			Notes: "Listing 3: stop/dirty flags never order other accesses"},
		{Prog: SplitCounter(), Legal: all(), UseCase: "Quantum", App: "Split Counter",
			Notes: "Listing 4: approximate partial sums via quantum loads"},
		{Prog: RefCounter(), Legal: all(), UseCase: "Quantum", App: "Reference Counter",
			Notes: "Listing 5 (single counter): quantum inc/dec, commutative mark"},
		{Prog: RefCounterTwo(), Legal: all(), UseCase: "Quantum", App: "Reference Counter",
			Notes: "Listing 5: two counters released in opposite orders"},
		{Prog: Seqlocks(), Legal: all(), UseCase: "Speculative", App: "Seqlocks",
			Notes: "Listing 6: speculative data accesses bracketed by sequence checks"},
		{Prog: SeqlocksRA(), Legal: all(), UseCase: "Speculative", App: "Seqlocks",
			Notes: "Section 7: reader sequence checks relaxed to acquire/release ordering"},

		// Mislabeled variants: each must be caught by exactly the detector
		// the paper's model defines. DRF0/DRF1 only forbid data races, so
		// atomics-only races stay legal there.
		{Prog: EventCounterObserved(), Legal: [3]bool{true, true, false},
			Notes: "commutative race: racing increment's value observed"},
		{Prog: EventCounterNonCommutative(), Legal: [3]bool{true, true, false},
			Notes: "commutative race: exchange does not commute with increment"},
		{Prog: NOFlagPublish(), Legal: [3]bool{true, true, false},
			Notes: "non-ordering race: the NO flag is the only ordering path for the unpaired payload"},
		{Prog: QuantumMixed(), Legal: [3]bool{true, true, false},
			Notes: "quantum race: quantum load races with unpaired store"},
		{Prog: SeqlocksUnchecked(), Legal: [3]bool{true, true, false},
			Notes: "speculative race: racy speculative load observed"},
		{Prog: SeqlocksWW(), Legal: [3]bool{true, true, false},
			Notes: "speculative race: racing speculative stores"},
		{Prog: Figure2a(), Legal: [3]bool{true, true, false},
			Notes: "Figure 2(a): unique ordering path through non-ordering atomics"},

		// Classic shapes.
		{Prog: MP("MP_paired", core.Paired), Legal: all(),
			Notes: "message passing with paired flag"},
		{Prog: MP("MP_unpaired", core.Unpaired), Legal: [3]bool{true, false, false},
			Notes: "unpaired atomics do not order data: data race under DRF1/DRFrlx; legal under DRF0 (flag strengthens to paired)"},
		{Prog: MPRA(), Legal: all(),
			Notes: "Section 7 extension: release/acquire flag orders the data read"},
		{Prog: MPData(), Legal: [3]bool{false, false, false},
			Notes: "plain data race under every model"},
		{Prog: SB("SB_paired", core.Paired), Legal: all(),
			Notes: "store buffering, paired: SC enforced"},
		{Prog: SB("SB_nonordering", core.NonOrdering), Legal: [3]bool{true, true, false},
			Notes: "store buffering with non-ordering atomics: the racy edges carry unique ordering paths"},
		{Prog: IRIW(), Legal: all(),
			Notes: "independent reads of independent writes, paired"},
		{Prog: LB("LB_paired", core.Paired), Legal: all(),
			Notes: "load buffering, paired: SC forbids r0=r1=1"},
		{Prog: LB("LB_nonordering", core.NonOrdering), Legal: [3]bool{true, true, false},
			Notes: "load buffering with non-ordering atomics: the racy edges carry unique ordering paths"},
		{Prog: TwoPlusTwoW("2+2W_paired", core.Paired, 1, 2), Legal: all(),
			Notes: "2+2W, paired"},
		{Prog: TwoPlusTwoW("2+2W_commutative", core.Commutative, 1, 2), Legal: [3]bool{true, true, false},
			Notes: "racing commutative stores of different values do not commute"},
		{Prog: TwoPlusTwoW("2+2W_samevalue", core.Commutative, 7, 7), Legal: all(),
			Notes: "racing commutative stores of the same value commute — legal"},
		{Prog: WRC(), Legal: all(),
			Notes: "write-to-read causality, paired flags"},
		{Prog: CoWW(core.NonOrdering), Legal: all(),
			Notes: "same-location writes: per-location paths are valid ordering paths"},
		{Prog: CoRR(core.NonOrdering), Legal: all(),
			Notes: "same-location reads: same-address ordering paths are valid (condition 2), so relaxed coRR is race-free"},
	}
}

// ByName returns the suite case with the given program name, or nil.
func ByName(name string) *Case {
	for _, tc := range Suite() {
		if tc.Prog.Name == name {
			c := tc
			return &c
		}
	}
	return nil
}
