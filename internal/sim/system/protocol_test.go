package system

import (
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
)

func gpuCfg(m core.Model) memsys.Config    { return memsys.Default(memsys.ProtoGPU, m) }
func denovoCfg(m core.Model) memsys.Config { return memsys.Default(memsys.ProtoDeNovo, m) }

func mustRun(t *testing.T, cfg memsys.Config, tr *trace.Trace) *Result {
	t.Helper()
	res, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCoalescerGroupsLanesByLine(t *testing.T) {
	// 32 lanes within one line: a single L1 transaction.
	tr := trace.New("coalesce")
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i)
	}
	tr.AddWarp(0).Load(core.Data, addrs...)
	res := mustRun(t, gpuCfg(core.DRF0), tr)
	if res.Stats.L1Accesses != 1 {
		t.Errorf("coalesced load made %d L1 accesses, want 1", res.Stats.L1Accesses)
	}

	// 32 lanes striding across 32 lines: 32 transactions.
	tr2 := trace.New("divergent")
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i)*64
	}
	tr2.AddWarp(0).Load(core.Data, addrs...)
	res2 := mustRun(t, gpuCfg(core.DRF0), tr2)
	if res2.Stats.L1Accesses != 32 {
		t.Errorf("divergent load made %d L1 accesses, want 32", res2.Stats.L1Accesses)
	}
}

func TestWriteThroughAcks(t *testing.T) {
	// GPU stores drain as write-throughs; a paired atomic store afterward
	// must wait for the drain (flush) and the machine must quiesce.
	tr := trace.New("wt")
	w := tr.AddWarp(0)
	for i := 0; i < 4; i++ {
		w.Store(core.Data, uint64(0x1000+64*i))
	}
	w.AtomicStore(core.Paired, 0x8000, 1)
	res := mustRun(t, gpuCfg(core.DRF0), tr)
	if res.Stats.ReleaseFlushes != 1 {
		t.Errorf("flushes = %d", res.Stats.ReleaseFlushes)
	}
	// 4 write-throughs reached the L2.
	if res.Stats.L2Accesses < 4 {
		t.Errorf("L2 accesses = %d, want >= 4 write-throughs", res.Stats.L2Accesses)
	}
}

func TestDeNovoStoreObtainsOwnership(t *testing.T) {
	tr := trace.New("own")
	w := tr.AddWarp(0)
	w.Store(core.Data, 0x1000)
	w.AtomicStore(core.Paired, 0x8000, 1) // release forces the drain to finish
	res := mustRun(t, denovoCfg(core.DRFrlx), tr)
	if res.Stats.OwnershipRequests < 1 {
		t.Error("DeNovo store should request ownership")
	}
	if res.Stats.Writebacks != 0 {
		t.Error("no evictions expected")
	}
}

func TestDeNovoWritebackOnEviction(t *testing.T) {
	// Fill one L1 set (64 sets, 8 ways) with 9 owned lines mapping to the
	// same set: the 9th insert evicts an owned victim -> writeback.
	cfg := denovoCfg(core.DRFrlx)
	tr := trace.New("evict")
	w := tr.AddWarp(0)
	setStride := cfg.LineSize * uint64(cfg.L1Sets) // same set every stride
	for i := 0; i < 9; i++ {
		w.Atomic(core.Commutative, core.OpInc, 0, uint64(i)*setStride)
		w.Join()
	}
	res := mustRun(t, cfg, tr)
	if res.Stats.Writebacks < 1 {
		t.Errorf("writebacks = %d, want >= 1", res.Stats.Writebacks)
	}
}

func TestDeNovoRemoteForwarding(t *testing.T) {
	// CU0 owns a line (atomic), then CU1 reads it: the L2 must forward to
	// the owner (three-hop).
	tr := trace.New("fwd")
	a := tr.AddWarp(0)
	a.Atomic(core.Paired, core.OpAdd, 5, 0x4000)
	a.Barrier()
	b := tr.AddWarp(1)
	b.Barrier()
	b.Load(core.Data, 0x4000)
	res := mustRun(t, denovoCfg(core.DRFrlx), tr)
	if res.Stats.RemoteL1Forwards < 1 {
		t.Errorf("remote forwards = %d, want >= 1", res.Stats.RemoteL1Forwards)
	}
	if res.Read(0x4000) != 5 {
		t.Errorf("value = %d", res.Read(0x4000))
	}
}

func TestDeNovoOwnershipPingPong(t *testing.T) {
	// Two CUs alternately RMW one address with paired atomics: ownership
	// must transfer repeatedly and the count must be exact.
	tr := trace.New("pingpong")
	const per = 10
	for cu := 0; cu < 2; cu++ {
		w := tr.AddWarp(cu)
		for i := 0; i < per; i++ {
			w.Atomic(core.Paired, core.OpInc, 0, 0x4000)
		}
	}
	res := mustRun(t, denovoCfg(core.DRFrlx), tr)
	if res.Read(0x4000) != 2*per {
		t.Fatalf("count = %d", res.Read(0x4000))
	}
	if res.Stats.OwnershipRequests < 3 {
		t.Errorf("ownership should ping-pong: %d requests", res.Stats.OwnershipRequests)
	}
	if res.Stats.AtomicsAtL1 != 2*per {
		t.Errorf("atomics at L1 = %d", res.Stats.AtomicsAtL1)
	}
}

func TestDeNovoInvalidationSparesOwnedLines(t *testing.T) {
	// A DeNovo warp owns a line (store), then a paired atomic load
	// flash-invalidates: the owned line must survive and the next access
	// hit; under GPU coherence the same access misses.
	mk := func() *trace.Trace {
		tr := trace.New("keep-owned")
		w := tr.AddWarp(0)
		w.Atomic(core.Commutative, core.OpInc, 0, 0x1000) // own the line
		w.Join()
		w.AtomicLoad(core.Paired, 0x8000) // acquire: invalidate
		w.Atomic(core.Commutative, core.OpInc, 0, 0x1000)
		w.Join()
		return tr
	}
	dres := mustRun(t, denovoCfg(core.DRFrlx), mk())
	if dres.Stats.OwnershipRequests != 2 { // 0x1000 once + 0x8000 once
		t.Errorf("DeNovo ownership requests = %d, want 2 (owned line survived)", dres.Stats.OwnershipRequests)
	}
	if dres.Stats.LinesInvalidated != 0 {
		t.Errorf("DeNovo invalidated %d lines; owned lines must survive", dres.Stats.LinesInvalidated)
	}
}

func TestGPUInvalidationDropsEverything(t *testing.T) {
	tr := trace.New("drop-all")
	w := tr.AddWarp(0)
	w.Load(core.Data, 0x1000)
	w.Join()
	w.AtomicLoad(core.Paired, 0x8000)
	w.Load(core.Data, 0x1000) // must miss again
	w.Join()
	res := mustRun(t, gpuCfg(core.DRF0), tr)
	if res.Stats.LinesInvalidated < 1 {
		t.Error("GPU acquire should invalidate valid lines")
	}
	if res.Stats.L1Misses < 2 {
		t.Errorf("misses = %d; the re-load must miss after invalidation", res.Stats.L1Misses)
	}
}

func TestMSHRCoalescingStat(t *testing.T) {
	// Many relaxed atomics to one line from one CU while ownership is in
	// flight: they coalesce into the MSHR entry.
	tr := trace.New("coalesce-atomics")
	w := tr.AddWarp(0)
	for i := 0; i < 4; i++ {
		w.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	}
	res := mustRun(t, denovoCfg(core.DRFrlx), tr)
	if res.Stats.MSHRCoalesced < 1 {
		t.Errorf("coalesced = %d, want >= 1", res.Stats.MSHRCoalesced)
	}
	if res.Read(0x4000) != 4 {
		t.Errorf("count = %d", res.Read(0x4000))
	}
}

func TestFenceBlocksWarp(t *testing.T) {
	// Under DRF0 every atomic is SC: the second atomic cannot issue until
	// the first completes, so cycles grow at least linearly in the atomic
	// round-trip; under DRFrlx they overlap.
	mk := func(n int) *trace.Trace {
		tr := trace.New("fence")
		w := tr.AddWarp(0)
		for i := 0; i < n; i++ {
			w.Atomic(core.Commutative, core.OpInc, 0, uint64(0x4000+64*i))
		}
		return tr
	}
	sc := mustRun(t, gpuCfg(core.DRF0), mk(8))
	rlx := mustRun(t, gpuCfg(core.DRFrlx), mk(8))
	if sc.Stats.Cycles <= rlx.Stats.Cycles {
		t.Errorf("SC (%d cycles) should exceed relaxed (%d)", sc.Stats.Cycles, rlx.Stats.Cycles)
	}
	if float64(sc.Stats.Cycles) < 1.5*float64(rlx.Stats.Cycles) {
		t.Errorf("SC/relaxed = %.2f; expected meaningful serialization", float64(sc.Stats.Cycles)/float64(rlx.Stats.Cycles))
	}
}

func TestUnpairedAtomicSerialization(t *testing.T) {
	// Unpaired atomics keep program order among themselves (DRF1) but may
	// overlap with data loads.
	mk := func() *trace.Trace {
		tr := trace.New("unpaired-order")
		w := tr.AddWarp(0)
		w.AtomicLoad(core.Unpaired, 0x4000)
		w.AtomicLoad(core.Unpaired, 0x4040)
		return tr
	}
	d1 := mustRun(t, gpuCfg(core.DRF1), mk())
	dr := mustRun(t, gpuCfg(core.DRFrlx), mk())
	// DRF1 keeps them as unpaired either way; but DRFrlx lets the
	// *relaxed* version overlap. With unpaired labels both serialize.
	if d1.Stats.Cycles != dr.Stats.Cycles {
		t.Errorf("unpaired atomics must serialize identically under DRF1 (%d) and DRFrlx (%d)",
			d1.Stats.Cycles, dr.Stats.Cycles)
	}
}

func TestCPUFasterIssue(t *testing.T) {
	// The CPU issues several ops per GPU cycle (clock ratio).
	mk := func(cpu bool) *trace.Trace {
		tr := trace.New("cpu-rate")
		var w *trace.Warp
		if cpu {
			w = tr.AddCPUThread()
		} else {
			w = tr.AddWarp(0)
		}
		for i := 0; i < 60; i++ {
			w.Compute(0)
		}
		return tr
	}
	gpu := mustRun(t, denovoCfg(core.DRF0), mk(false))
	cpu := mustRun(t, denovoCfg(core.DRF0), mk(true))
	if cpu.Stats.Cycles >= gpu.Stats.Cycles {
		t.Errorf("CPU (%d cycles) should outpace a GPU warp (%d) on scalar compute",
			cpu.Stats.Cycles, gpu.Stats.Cycles)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := gpuCfg(core.DRF0)
	cfg.MaxCycles = 10
	tr := trace.New("too-long")
	tr.AddWarp(0).Compute(100).Load(core.Data, 0x1000)
	if _, err := RunTrace(cfg, tr); err == nil {
		t.Fatal("expected MaxCycles error")
	}
}

func TestFunctionalCheckFailureSurfaces(t *testing.T) {
	tr := trace.New("bad-check")
	tr.AddWarp(0).Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	tr.FinalCheck = func(read func(uint64) int64) error {
		if read(0x4000) != 999 {
			return errExpected
		}
		return nil
	}
	if _, err := RunTrace(gpuCfg(core.DRF0), tr); err == nil {
		t.Fatal("functional check failure not surfaced")
	}
}

var errExpected = errFor("expected failure")

type errFor string

func (e errFor) Error() string { return string(e) }

func TestBarrierWithRetiredWarps(t *testing.T) {
	// One warp retires before the others barrier: the barrier must still
	// resolve among the live warps.
	tr := trace.New("partial-barrier")
	tr.AddWarp(0).Compute(1) // retires immediately, no barrier
	a := tr.AddWarp(1)
	a.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
	a.Barrier()
	b := tr.AddWarp(2)
	b.Compute(500) // arrives late
	b.Barrier()
	res := mustRun(t, gpuCfg(core.DRFrlx), tr)
	if res.Read(0x4000) != 1 {
		t.Fatal("barrier workload corrupted")
	}
}

func TestDiscreteConfigSlower(t *testing.T) {
	tr := func() *trace.Trace {
		t := trace.New("d")
		t.AddWarp(0).Atomic(core.Paired, core.OpInc, 0, 0x4000).
			Atomic(core.Paired, core.OpInc, 0, 0x4000)
		return t
	}
	integrated := mustRun(t, gpuCfg(core.DRF0), tr())
	discrete := mustRun(t, memsys.Discrete(core.DRF0), tr())
	if discrete.Stats.Cycles <= integrated.Stats.Cycles {
		t.Errorf("discrete config (%d cycles) should be slower than integrated (%d)",
			discrete.Stats.Cycles, integrated.Stats.Cycles)
	}
}

func TestHRFLocalScopeAtomics(t *testing.T) {
	// Work-group-scoped atomics perform at the L1 with no coherence
	// traffic under both protocols, and no acquire invalidations fire.
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		tr := trace.New("hrf")
		w := tr.AddWarp(0)
		w.Load(core.Data, 0x100) // warm a line
		w.Join()
		for i := 0; i < 4; i++ {
			w.AtomicScoped(trace.ScopeLocal, core.Paired, core.OpInc, 0, 0x4000)
		}
		cfg := memsys.Default(proto, core.DRF0)
		res := mustRun(t, cfg, tr)
		if res.Read(0x4000) != 4 {
			t.Fatalf("%v: count = %d", proto, res.Read(0x4000))
		}
		if res.Stats.AtomicsAtL1 != 4 || res.Stats.AtomicsAtL2 != 0 {
			t.Errorf("%v: scoped atomics at L1=%d L2=%d, want 4/0", proto, res.Stats.AtomicsAtL1, res.Stats.AtomicsAtL2)
		}
		if res.Stats.AcquireInvalidations != 0 || res.Stats.ReleaseFlushes != 0 {
			t.Errorf("%v: scoped atomics performed global consistency actions", proto)
		}
		if res.Stats.OwnershipRequests != 0 {
			t.Errorf("%v: scoped atomics requested ownership", proto)
		}
	}
}
