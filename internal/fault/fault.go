// Package fault implements a deterministic, seeded fault injector for the
// simulator, in the spirit of memory-model stress tools (Herding Cats'
// perturbed executions): message delay jitter, duplication, and reordering
// bursts in the NoC; MSHR and store-buffer capacity-pressure windows; and
// L2 bank stall storms. All perturbations except `wedge` are metamorphic —
// they may change timing (cycles, traffic, stalls) but must leave
// architectural results (retired-op counts, atomic counts, functional
// checks) unchanged, which the property tests in internal/sim/system
// assert. The `wedge` fault deliberately breaks liveness and exists to
// drill the watchdog.
//
// A spec is a semicolon-separated list of clauses, each `kind:key=value[,
// key=value...]`:
//
//	delay:p=0.05,max=12            extra [1,max]-cycle latency on each
//	                               message with probability p
//	dup:p=0.02                     duplicate a message with probability p;
//	                               the copy consumes link bandwidth and is
//	                               dropped at delivery (endpoints dedupe)
//	reorder:p=0.01,window=16,burst=4
//	                               with probability p start a burst: the
//	                               next `burst` messages each get a random
//	                               [0,window]-cycle delay so later traffic
//	                               overtakes them
//	mshr:cap=2,period=5000,len=500 during [k*period, k*period+len) windows
//	                               the L1 MSHR's effective capacity shrinks
//	                               to cap (issue-side back-pressure only)
//	sb:cap=2,period=5000,len=500   same, for the store buffer
//	l2stall:period=10000,len=200   during windows every L2 bank defers all
//	                               request handling to the window's end (a
//	                               bank stall storm)
//	wedge:warp=0,from=100          LIVENESS-BREAKING: warp `warp` never
//	                               issues again from cycle `from` (watchdog
//	                               drills only)
//
// The injector is seeded: the same spec and seed reproduce the same
// perturbation sequence exactly, because the single-threaded simulation
// loop consumes the PRNG in a deterministic order.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// DelayClause adds random per-message latency.
type DelayClause struct {
	P   float64 // per-message probability
	Max int64   // added delay is uniform in [1, Max]
}

// DupClause duplicates messages (the copy is dropped at delivery).
type DupClause struct {
	P float64
}

// ReorderClause starts bursts of randomly delayed messages so that later
// traffic overtakes them.
type ReorderClause struct {
	P      float64 // per-message probability of starting a burst
	Window int64   // each burst message is delayed uniform [0, Window]
	Burst  int     // messages per burst
}

// WindowClause describes a periodic pressure window: active during
// [k*Period, k*Period+Len) for every k.
type WindowClause struct {
	Cap    int   // effective capacity during the window (mshr/sb only)
	Period int64 // window repetition period in cycles
	Len    int64 // window length in cycles (must be < Period)
}

// active reports whether the window covers the cycle.
func (w *WindowClause) active(cycle int64) bool {
	return cycle%w.Period < w.Len
}

// WedgeClause suppresses one warp's issue forever — a deliberate liveness
// violation used to exercise the watchdog.
type WedgeClause struct {
	Warp int
	From int64
}

// Spec is a parsed fault specification.
type Spec struct {
	Delay   *DelayClause
	Dup     *DupClause
	Reorder *ReorderClause
	MSHR    *WindowClause
	SB      *WindowClause
	L2Stall *WindowClause
	Wedge   *WedgeClause

	// Source is the original spec string (reporting).
	Source string
}

// Metamorphic reports whether every clause preserves architectural
// results (everything except wedge does).
func (s *Spec) Metamorphic() bool { return s.Wedge == nil }

// Parse parses a fault spec string (see the package documentation for the
// grammar).
func Parse(spec string) (*Spec, error) {
	out := &Spec{Source: spec}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, args, _ := strings.Cut(clause, ":")
		kv, err := parseArgs(kind, args)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "delay":
			c := &DelayClause{P: kv.f("p", 0), Max: kv.i("max", 8)}
			if err := kv.check(c.P > 0 && c.Max > 0, "needs p>0 and max>0"); err != nil {
				return nil, err
			}
			out.Delay = c
		case "dup":
			c := &DupClause{P: kv.f("p", 0)}
			if err := kv.check(c.P > 0, "needs p>0"); err != nil {
				return nil, err
			}
			out.Dup = c
		case "reorder":
			c := &ReorderClause{P: kv.f("p", 0), Window: kv.i("window", 16), Burst: int(kv.i("burst", 1))}
			if err := kv.check(c.P > 0 && c.Window > 0 && c.Burst > 0, "needs p>0, window>0, burst>0"); err != nil {
				return nil, err
			}
			out.Reorder = c
		case "mshr", "sb":
			c := &WindowClause{Cap: int(kv.i("cap", 1)), Period: kv.i("period", 10000), Len: kv.i("len", 500)}
			if err := kv.check(c.Cap >= 0 && c.Period > 0 && c.Len > 0 && c.Len < c.Period,
				"needs cap>=0, period>0, 0<len<period"); err != nil {
				return nil, err
			}
			if kind == "mshr" {
				out.MSHR = c
			} else {
				out.SB = c
			}
		case "l2stall":
			c := &WindowClause{Period: kv.i("period", 10000), Len: kv.i("len", 200)}
			if err := kv.check(c.Period > 0 && c.Len > 0 && c.Len < c.Period,
				"needs period>0, 0<len<period"); err != nil {
				return nil, err
			}
			out.L2Stall = c
		case "wedge":
			out.Wedge = &WedgeClause{Warp: int(kv.i("warp", 0)), From: kv.i("from", 0)}
		default:
			return nil, fmt.Errorf("fault: unknown clause %q (want delay|dup|reorder|mshr|sb|l2stall|wedge)", kind)
		}
		if err := kv.unused(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// kvs holds one clause's parsed key=value pairs plus any parse error.
type kvs struct {
	kind string
	m    map[string]string
	used map[string]bool
	err  error
}

func parseArgs(kind, args string) (*kvs, error) {
	kv := &kvs{kind: kind, m: map[string]string{}, used: map[string]bool{}}
	if strings.TrimSpace(args) == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("fault: %s: bad argument %q (want key=value)", kind, pair)
		}
		kv.m[k] = v
	}
	return kv, nil
}

func (kv *kvs) f(key string, def float64) float64 {
	v, ok := kv.m[key]
	if !ok {
		return def
	}
	kv.used[key] = true
	x, err := strconv.ParseFloat(v, 64)
	if err != nil && kv.err == nil {
		kv.err = fmt.Errorf("fault: %s: bad %s=%q: %v", kv.kind, key, v, err)
	}
	return x
}

func (kv *kvs) i(key string, def int64) int64 {
	v, ok := kv.m[key]
	if !ok {
		return def
	}
	kv.used[key] = true
	x, err := strconv.ParseInt(v, 10, 64)
	if err != nil && kv.err == nil {
		kv.err = fmt.Errorf("fault: %s: bad %s=%q: %v", kv.kind, key, v, err)
	}
	return x
}

// check surfaces a clause-validation failure (after any value parse error).
func (kv *kvs) check(ok bool, msg string) error {
	if kv.err != nil {
		return kv.err
	}
	if !ok {
		return fmt.Errorf("fault: %s: %s", kv.kind, msg)
	}
	return nil
}

// unused rejects keys the clause does not understand.
func (kv *kvs) unused() error {
	if kv.err != nil {
		return kv.err
	}
	for k := range kv.m {
		if !kv.used[k] {
			return fmt.Errorf("fault: %s: unknown key %q", kv.kind, k)
		}
	}
	return nil
}

// Counts tallies injected perturbations for end-of-run reporting.
type Counts struct {
	Delayed      int64 // messages given extra latency (delay clause)
	Duplicated   int64 // messages duplicated
	Reordered    int64 // messages delayed by a reorder burst
	MSHRSqueezes int64 // issue attempts refused by an MSHR pressure window
	SBSqueezes   int64 // issue attempts refused by a store-buffer window
	L2Stalls     int64 // bank requests deferred by a stall storm
	WedgeHolds   int64 // issue slots suppressed by a wedge
}

// String renders the tally on one line.
func (c Counts) String() string {
	return fmt.Sprintf("%d delayed, %d duplicated, %d reordered, %d mshr-squeezed, %d sb-squeezed, %d l2-stalled, %d wedge-held",
		c.Delayed, c.Duplicated, c.Reordered, c.MSHRSqueezes, c.SBSqueezes, c.L2Stalls, c.WedgeHolds)
}

// Injector is the per-run fault source. One instance belongs to exactly
// one System (the simulation loop is single-threaded), so PRNG draws occur
// in a deterministic order and the same spec+seed reproduce the same
// perturbations exactly.
type Injector struct {
	spec      *Spec
	rng       *rand.Rand
	burstLeft int
	counts    Counts
}

// NewInjector builds an injector over a parsed spec with the given seed.
func NewInjector(spec *Spec, seed int64) *Injector {
	return &Injector{spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// Spec returns the injector's specification.
func (i *Injector) Spec() *Spec { return i.spec }

// Counts returns the perturbation tally so far.
func (i *Injector) Counts() Counts { return i.counts }

// MessageDelay draws the extra latency for one NoC message (delay jitter
// plus any active reorder burst). Zero means unperturbed.
func (i *Injector) MessageDelay() int64 {
	var d int64
	if c := i.spec.Delay; c != nil && i.rng.Float64() < c.P {
		d += 1 + i.rng.Int63n(c.Max)
		i.counts.Delayed++
	}
	if c := i.spec.Reorder; c != nil {
		if i.burstLeft == 0 && i.rng.Float64() < c.P {
			i.burstLeft = c.Burst
		}
		if i.burstLeft > 0 {
			i.burstLeft--
			d += i.rng.Int63n(c.Window + 1)
			i.counts.Reordered++
		}
	}
	return d
}

// Duplicate reports whether this message should be duplicated.
func (i *Injector) Duplicate() bool {
	c := i.spec.Dup
	if c == nil || i.rng.Float64() >= c.P {
		return false
	}
	i.counts.Duplicated++
	return true
}

// MSHRCap returns the MSHR's effective capacity at the cycle (the real
// capacity outside pressure windows).
func (i *Injector) MSHRCap(cycle int64, capacity int) int {
	if c := i.spec.MSHR; c != nil && c.active(cycle) && c.Cap < capacity {
		i.counts.MSHRSqueezes++
		return c.Cap
	}
	return capacity
}

// SBCap returns the store buffer's effective capacity at the cycle.
func (i *Injector) SBCap(cycle int64, capacity int) int {
	if c := i.spec.SB; c != nil && c.active(cycle) && c.Cap < capacity {
		i.counts.SBSqueezes++
		return c.Cap
	}
	return capacity
}

// L2StallUntil returns the cycle at which the current bank stall storm
// ends, or 0 when no storm is active. Handlers defer to the returned
// cycle, which is strictly past the window so the retry proceeds.
func (i *Injector) L2StallUntil(cycle int64) int64 {
	c := i.spec.L2Stall
	if c == nil || !c.active(cycle) {
		return 0
	}
	i.counts.L2Stalls++
	return cycle - cycle%c.Period + c.Len
}

// Wedged reports whether the warp's issue is suppressed at the cycle (the
// liveness-breaking drill fault).
func (i *Injector) Wedged(warp int, cycle int64) bool {
	if !i.WedgeActive(warp, cycle) {
		return false
	}
	i.counts.WedgeHolds++
	return true
}

// WedgeActive is the side-effect-free form of Wedged: it answers without
// bumping the perturbation tally, so wake-hint computations (which may
// probe the same cycle several times) leave the counts exactly as a
// cycle-by-cycle run would.
func (i *Injector) WedgeActive(warp int, cycle int64) bool {
	c := i.spec.Wedge
	return c != nil && warp == c.Warp && cycle >= c.From
}

// NextWork returns the next cycle at which a pressure-window clause
// (mshr, sb, l2stall) changes state — the injector's wake hint. Window
// caps are consulted lazily at issue attempts, so a boundary crossing
// cannot by itself create work; the hint still reports boundaries so the
// driver re-evaluates the machine there rather than relying on that
// reasoning holding for future components. Returns -1 with no window
// clauses configured.
func (i *Injector) NextWork(cycle int64) int64 {
	next := int64(-1)
	edge := func(w *WindowClause) {
		if w == nil {
			return
		}
		// Next boundary after `cycle`: the active window's end, or the next
		// window's start.
		phase := cycle % w.Period
		var t int64
		if phase < w.Len {
			t = cycle - phase + w.Len
		} else {
			t = cycle - phase + w.Period
		}
		if next < 0 || t < next {
			next = t
		}
	}
	edge(i.spec.MSHR)
	edge(i.spec.SB)
	edge(i.spec.L2Stall)
	return next
}
