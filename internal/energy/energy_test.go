package energy

import (
	"testing"
	"testing/quick"

	"rats/internal/stats"
)

func TestComputeBreakdown(t *testing.T) {
	m := Model{
		CoreOp: 10, ScratchAccess: 5, L1Access: 20, L2Access: 50, DRAMAccess: 300, FlitHop: 6,
		CoreStatic: 1, ScratchStatic: 1, L1Static: 1, L2Static: 1, NoCStatic: 1,
	}
	s := &stats.Stats{
		Cycles: 100, CoreOps: 10, ScratchAccesses: 4, L1Accesses: 3,
		L2Accesses: 2, DRAMAccesses: 1, NoCFlitHops: 5,
	}
	b := Compute(s, m)
	if b.Core != 10*10+100 {
		t.Errorf("Core = %f", b.Core)
	}
	if b.Scratch != 4*5+100 {
		t.Errorf("Scratch = %f", b.Scratch)
	}
	if b.L1 != 3*20+100 {
		t.Errorf("L1 = %f", b.L1)
	}
	if b.L2 != 2*50+1*300+100 {
		t.Errorf("L2 = %f", b.L2)
	}
	if b.NoC != 5*6+100 {
		t.Errorf("NoC = %f", b.NoC)
	}
	if b.Total() != b.Core+b.Scratch+b.L1+b.L2+b.NoC {
		t.Error("total mismatch")
	}
}

func TestComponentsOrder(t *testing.T) {
	b := Breakdown{Core: 1, Scratch: 2, L1: 3, L2: 4, NoC: 5}
	comps := b.Components()
	want := []string{"GPU core+", "Scratch", "L1", "L2", "NoC"}
	for i, c := range comps {
		if c.Name != want[i] {
			t.Errorf("component %d = %s, want %s", i, c.Name, want[i])
		}
		if c.Value != float64(i+1) {
			t.Errorf("component %s = %f", c.Name, c.Value)
		}
	}
}

func TestDefaultModelRelativeMagnitudes(t *testing.T) {
	m := DefaultModel()
	if !(m.DRAMAccess > m.L2Access && m.L2Access > m.L1Access && m.L1Access > m.ScratchAccess) {
		t.Error("energy hierarchy violated: DRAM > L2 > L1 > scratch expected")
	}
	if m.CoreOp <= 0 || m.FlitHop <= 0 {
		t.Error("degenerate model")
	}
}

// TestMonotonicity: more events never reduce energy.
func TestMonotonicity(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16) bool {
		s1 := &stats.Stats{Cycles: 10, L1Accesses: int64(a)}
		s2 := &stats.Stats{Cycles: 10, L1Accesses: int64(a) + int64(b)}
		return Compute(s2, m).Total() >= Compute(s1, m).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStaticScalesWithCycles: a longer run at identical event counts
// costs more energy (leakage).
func TestStaticScalesWithCycles(t *testing.T) {
	m := DefaultModel()
	s1 := &stats.Stats{Cycles: 100, L1Accesses: 5}
	s2 := &stats.Stats{Cycles: 200, L1Accesses: 5}
	if Compute(s2, m).Total() <= Compute(s1, m).Total() {
		t.Error("static power not integrated over cycles")
	}
}
