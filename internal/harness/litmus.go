package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
	"rats/internal/obs"
)

// LitmusSweepOptions configures a litmus-suite sweep.
type LitmusSweepOptions struct {
	// Workers is the suite-level parallelism (test cases checked
	// concurrently); <= 0 means GOMAXPROCS. Telemetry checks created by a
	// worker carry its index, so a live /checks view shows which worker
	// owned which program.
	Workers int
	// TheoremOnly skips the per-model verdicts and runs only the Theorem
	// 3.1 validation.
	TheoremOnly bool
	// Check configures each per-model semantics check (pipeline mode,
	// execution limit, analysis workers). Its Telemetry field is managed
	// by the sweep.
	Check memmodel.CheckOptions
	// Run supplies the sweep-level integration: Progress receives
	// per-case lifecycle updates, Checks registers one telemetry check
	// per (program, model) pair plus one per system-model search, and
	// TelemetryOut receives the deterministic per-check JSONL records
	// once the sweep completes.
	Run *RunOptions
}

// LitmusCaseResult is one suite case's outcome.
type LitmusCaseResult struct {
	Case litmus.Case
	// Verdicts holds one verdict per core.Models() entry (nil when
	// TheoremOnly is set or the case errored).
	Verdicts []*memmodel.Verdict
	// Theorem is the Theorem 3.1 validation report.
	Theorem *memmodel.TheoremReport
	// Checks lists the case's telemetry checks in deterministic order —
	// one per model in core.Models() order, then the system-model check.
	// Empty when no registry was attached.
	Checks []*telemetry.Check
	// Err is the first error the case hit; the other fields are partial.
	Err error
}

// LitmusSweep checks every suite case under every model plus the Theorem
// 3.1 validation, in parallel across cases on a bounded worker pool.
// Results come back in suite order regardless of scheduling. Failures do
// not stop the sweep: every case is attempted, per-case errors land in
// the results and are joined into the returned error.
func LitmusSweep(suite []litmus.Case, opts LitmusSweepOptions) ([]LitmusCaseResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(suite) {
		workers = len(suite)
	}
	if workers < 1 {
		workers = 1
	}
	var reg *telemetry.Registry
	var progress *obs.Progress
	if opts.Run != nil {
		reg = opts.Run.Checks
		progress = opts.Run.Progress
	}

	results := make([]LitmusCaseResult, len(suite))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runLitmusCase(suite[i], w, opts, reg, progress)
			}
		}()
	}
	for i := range suite {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", results[i].Case.Prog.Name, results[i].Err))
		}
	}
	if opts.Run != nil && opts.Run.TelemetryOut != nil {
		var recs []telemetry.Record
		for i := range results {
			for _, c := range results[i].Checks {
				recs = append(recs, c.Record())
			}
		}
		if err := telemetry.WriteRecords(opts.Run.TelemetryOut, recs); err != nil {
			errs = append(errs, fmt.Errorf("telemetry out: %w", err))
		}
	}
	return results, errors.Join(errs...)
}

// runLitmusCase checks one case: every model (unless TheoremOnly), then
// the theorem validation with an instrumented system-model search.
func runLitmusCase(tc litmus.Case, worker int, opts LitmusSweepOptions, reg *telemetry.Registry, progress *obs.Progress) LitmusCaseResult {
	res := LitmusCaseResult{Case: tc}
	if progress != nil {
		progress.Start(tc.Prog.Name, "litmus")
	}
	fail := func(err error) LitmusCaseResult {
		res.Err = err
		if progress != nil {
			progress.Fail(tc.Prog.Name, "litmus", err)
		}
		return res
	}
	var total int64
	if !opts.TheoremOnly {
		for _, m := range core.Models() {
			co := opts.Check
			c := reg.NewCheck(tc.Prog.Name, m.String())
			c.SetSuiteWorker(worker)
			co.Telemetry = c
			v, err := memmodel.CheckProgramWith(tc.Prog, m, co)
			if c != nil {
				res.Checks = append(res.Checks, c)
			}
			if err != nil {
				return fail(err)
			}
			res.Verdicts = append(res.Verdicts, v)
			total += int64(v.Execs)
		}
	}
	sysTel := reg.NewCheck(tc.Prog.Name, "system")
	sysTel.SetSuiteWorker(worker)
	co := opts.Check
	// The per-model loop already instrumented the DRFrlx programmer-
	// centric check; only the system-model search gets its own check here.
	co.Telemetry = nil
	rep, err := memmodel.ValidateTheoremWith(tc.Prog, co, sysTel)
	if sysTel != nil {
		res.Checks = append(res.Checks, sysTel)
	}
	if err != nil {
		return fail(err)
	}
	res.Theorem = rep
	total += sysTel.Enumerated()
	if progress != nil {
		progress.Done(tc.Prog.Name, "litmus", total)
	}
	return res
}
