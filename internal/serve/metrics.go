package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// exemplar links a counter to the most recent traced request that
// incremented it — the OpenMetrics exemplar payload.
type exemplar struct {
	traceID string
	at      time.Time
}

// counter is an atomic counter that remembers one recent exemplar.
// Add-only sites (no request trace in scope) use Add; request-path
// sites go through Service.hit, which also stamps the exemplar.
type counter struct {
	n  atomic.Int64
	ex atomic.Pointer[exemplar]
}

func (c *counter) Add(d int64) int64 { return c.n.Add(d) }
func (c *counter) Load() int64       { return c.n.Load() }

// metrics holds the robustness counters the service exports: how much
// work arrived, how much was served from where, and — the point of the
// exercise — exactly how the rest was turned away.
type metrics struct {
	requests        counter // every /check request
	ok              counter // 200 responses
	checked         counter // checks actually enumerated
	cacheHits       counter // verdicts served from the LRU
	rejectedInput   counter // 400/413: malformed or oversized input
	rateLimited     counter // 429: token bucket empty
	shed            counter // 503: queue full
	deadlines       counter // deadline/disconnect cancellations
	limits          counter // execution/transition budget trips
	witnessSearches counter // witness enumerations run under admission
	witnessDrops    counter // witnesses omitted: gates, deadline, or failed search
	internal        counter // unexpected checker errors
	drains          counter // BeginDrain transitions
	queued          atomic.Int64 // gauge: requests waiting for a worker
	running         atomic.Int64 // gauge: checks executing now
}

// hit increments c and, when the increment belongs to a traced request,
// stamps the counter's exemplar with that trace.
func (s *Service) hit(c *counter, traceID string) {
	c.n.Add(1)
	if traceID != "" {
		c.ex.Store(&exemplar{traceID: traceID, at: s.opts.now()})
	}
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Requests        int64 `json:"requests"`
	OK              int64 `json:"ok"`
	Checked         int64 `json:"checked"`
	CacheHits       int64 `json:"cache_hits"`
	RejectedInput   int64 `json:"rejected_input"`
	RateLimited     int64 `json:"rate_limited"`
	Shed            int64 `json:"shed"`
	Deadlines       int64 `json:"deadlines"`
	Limits          int64 `json:"limits"`
	WitnessSearches int64 `json:"witness_searches"`
	WitnessDrops    int64 `json:"witness_drops"`
	Internal        int64 `json:"internal"`
	Drains          int64 `json:"drains"`
	Queued          int64 `json:"queued"`
	Running         int64 `json:"running"`
	CacheSize       int64 `json:"cache_size"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Requests:        s.m.requests.Load(),
		OK:              s.m.ok.Load(),
		Checked:         s.m.checked.Load(),
		CacheHits:       s.m.cacheHits.Load(),
		RejectedInput:   s.m.rejectedInput.Load(),
		RateLimited:     s.m.rateLimited.Load(),
		Shed:            s.m.shed.Load(),
		Deadlines:       s.m.deadlines.Load(),
		Limits:          s.m.limits.Load(),
		WitnessSearches: s.m.witnessSearches.Load(),
		WitnessDrops:    s.m.witnessDrops.Load(),
		Internal:        s.m.internal.Load(),
		Drains:          s.m.drains.Load(),
		Queued:          s.m.queued.Load(),
		Running:         s.m.running.Load(),
	}
	if s.cache != nil {
		st.CacheSize = int64(s.cache.len())
	}
	return st
}

// WriteMetrics renders the service counters in classic Prometheus text
// exposition, for mounting on the obs server via AddMetricsFunc.
func (s *Service) WriteMetrics(w io.Writer) {
	s.WriteMetricsTo(w, false)
}

// WriteMetricsTo renders the service counters. With om false the output
// is the classic Prometheus text format, byte-identical to what
// WriteMetrics always produced. With om true it follows OpenMetrics
// conventions — the TYPE line names the metric family without the
// _total suffix — and each counter with a recorded exemplar carries it
// in `# {trace_id="..."}` syntax, linking the aggregate back to a
// concrete recent request.
func (s *Service) WriteMetricsTo(w io.Writer, om bool) {
	st := s.Stats()
	counters := []struct {
		name, help string
		value      int64
		c          *counter
	}{
		{"requests", "Check requests received.", st.Requests, &s.m.requests},
		{"ok", "Check requests answered 200.", st.OK, &s.m.ok},
		{"checked", "Checks that ran an enumeration.", st.Checked, &s.m.checked},
		{"cache_hits", "Verdicts served from the canonical LRU cache.", st.CacheHits, &s.m.cacheHits},
		{"rejected_input", "Requests rejected before enumeration (bad JSON, parse, validation, size).", st.RejectedInput, &s.m.rejectedInput},
		{"rate_limited", "Requests rejected by the per-client token bucket.", st.RateLimited, &s.m.rateLimited},
		{"shed", "Requests shed because the work queue was full.", st.Shed, &s.m.shed},
		{"deadline_exceeded", "Checks cancelled by deadline or client disconnect.", st.Deadlines, &s.m.deadlines},
		{"limit_exceeded", "Checks stopped by the execution or transition budget.", st.Limits, &s.m.limits},
		{"witness_searches", "Witness enumerations run under admission control.", st.WitnessSearches, &s.m.witnessSearches},
		{"witness_drops", "Witness requests degraded to a witness-less response.", st.WitnessDrops, &s.m.witnessDrops},
		{"internal_errors", "Checks that failed unexpectedly.", st.Internal, &s.m.internal},
		{"drains", "Times the service entered drain.", st.Drains, &s.m.drains},
	}
	for _, c := range counters {
		if om {
			fmt.Fprintf(w, "# HELP rats_serve_%s %s\n# TYPE rats_serve_%s counter\nrats_serve_%s_total %d",
				c.name, c.help, c.name, c.name, c.value)
			if ex := c.c.ex.Load(); ex != nil {
				fmt.Fprintf(w, " # {trace_id=%q} 1 %.3f", ex.traceID,
					float64(ex.at.UnixNano())/1e9)
			}
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprintf(w, "# HELP rats_serve_%s_total %s\n# TYPE rats_serve_%s_total counter\nrats_serve_%s_total %d\n",
			c.name, c.help, c.name, c.name, c.value)
	}
	gauges := []struct {
		name, help string
		value      int64
	}{
		{"queue_depth", "Requests waiting for a worker slot.", st.Queued},
		{"in_flight", "Checks executing right now.", st.Running},
		{"cache_entries", "Verdicts resident in the LRU cache.", st.CacheSize},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP rats_serve_%s %s\n# TYPE rats_serve_%s gauge\nrats_serve_%s %d\n",
			g.name, g.help, g.name, g.name, g.value)
	}
}
