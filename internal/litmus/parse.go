package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"rats/internal/core"
)

// This file implements a small Herd-style text format for litmus tests,
// so tests can be written as files and fed to cmd/ratslitmus:
//
//	litmus "MP_paired"
//	init D=0 F=0
//	quantum-domain 0 1 2
//
//	thread producer
//	  store D 1 data
//	  store F 1 paired
//
//	thread consumer
//	  r0 = load F paired
//	  if r0 != 0 {
//	    r1 = load D data
//	  }
//	  use r1
//
// Statements, one per line:
//
//	rX = load LOC CLASS            atomic/data load into a register
//	load LOC CLASS                 load, value discarded
//	store LOC EXPR CLASS           store of an expression
//	rX = OP LOC EXPR CLASS         RMW (OP: add sub inc dec and or xor min max xchg)
//	OP LOC EXPR CLASS              RMW, old value discarded
//	rX = cas LOC EXPECTED DESIRED CLASS
//	if COND [&& COND]... {         guarded block (conditions: rX != 0,
//	  ...                          rX == 0, rX == N, rX == rY,
//	}                              rX == rY even)
//	use rX                         observe a register (control dependency)
//	branch EXPR                    explicit branch marker
//
// EXPR is an integer, a register, or a '+'-joined sum of them (e.g.
// r1+r2+3). Lines starting with // or # are comments.

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("litmus: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	prog   *Program
	thread *Thread
	// regs maps register names to indices for the current thread.
	regs map[string]Reg
	// guards is the flattened stack of open guards; blockSizes records
	// how many guards each open if-block pushed (so } pops the right
	// number).
	guards     []Guard
	blockSizes []int
	line       int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a litmus program from its textual form.
func Parse(src string) (*Program, error) {
	p := &parser{prog: New("unnamed")}
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.statement(line); err != nil {
			return nil, err
		}
	}
	if len(p.blockSizes) > 0 {
		return nil, p.errf("unclosed if-block at end of input")
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *parser) statement(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "litmus":
		name := strings.TrimSpace(strings.TrimPrefix(line, "litmus"))
		p.prog.Name = strings.Trim(name, `"`)
		return nil
	case "init":
		for _, kv := range fields[1:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return p.errf("bad init %q (want LOC=VAL)", kv)
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return p.errf("bad init value %q", parts[1])
			}
			p.prog.SetInit(Loc(parts[0]), v)
		}
		return nil
	case "quantum-domain":
		for _, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return p.errf("bad domain value %q", f)
			}
			p.prog.QuantumDomain = append(p.prog.QuantumDomain, v)
		}
		return nil
	case "thread":
		if len(fields) != 2 {
			return p.errf("thread wants a name")
		}
		if len(p.blockSizes) > 0 {
			return p.errf("unclosed if-block before new thread")
		}
		p.thread = p.prog.Thread(fields[1])
		p.regs = map[string]Reg{}
		return nil
	case "}":
		if len(p.blockSizes) == 0 {
			return p.errf("unmatched }")
		}
		n := p.blockSizes[len(p.blockSizes)-1]
		p.blockSizes = p.blockSizes[:len(p.blockSizes)-1]
		p.guards = p.guards[:len(p.guards)-n]
		p.thread.EndGuards()
		p.thread.WithGuards(p.guards...)
		return nil
	}
	if p.thread == nil {
		return p.errf("statement outside a thread")
	}
	if fields[0] == "if" {
		return p.ifBlock(line)
	}
	return p.op(fields)
}

// expr parses an integer / register / sum expression.
func (p *parser) expr(s string) (Expr, error) {
	var e Expr
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		if r, ok := p.regs[term]; ok {
			e.Regs = append(e.Regs, r)
			continue
		}
		v, err := strconv.ParseInt(term, 10, 64)
		if err != nil {
			return Expr{}, p.errf("unknown term %q (not a register or integer)", term)
		}
		e.Const += v
	}
	return e, nil
}

func (p *parser) class(s string) (core.Class, error) {
	c, err := core.ParseClass(s)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	return c, nil
}

// defReg allocates (or reuses the name of) a destination register.
func (p *parser) defReg(name string) (Reg, error) {
	if _, exists := p.regs[name]; exists {
		return 0, p.errf("register %s redefined (use fresh names)", name)
	}
	r := p.thread.newReg()
	p.regs[name] = r
	return r, nil
}

var rmwOps = map[string]core.AtomicOp{
	"add": core.OpAdd, "sub": core.OpSub, "inc": core.OpInc, "dec": core.OpDec,
	"and": core.OpAnd, "or": core.OpOr, "xor": core.OpXor,
	"min": core.OpMin, "max": core.OpMax, "xchg": core.OpExchange,
}

func (p *parser) op(fields []string) error {
	// Destination form: rX = ...
	dst := ""
	if len(fields) >= 2 && fields[1] == "=" {
		dst = fields[0]
		fields = fields[2:]
	}
	if len(fields) == 0 {
		return p.errf("empty statement")
	}
	switch fields[0] {
	case "load":
		if len(fields) != 3 {
			return p.errf("load wants: load LOC CLASS")
		}
		c, err := p.class(fields[2])
		if err != nil {
			return err
		}
		o := Op{Class: c, AOp: core.OpLoad, Loc: Loc(fields[1]), Dst: NoReg}
		if dst != "" {
			r, err := p.defReg(dst)
			if err != nil {
				return err
			}
			o.Dst = r
		}
		p.thread.attach(o)
		return nil
	case "store":
		if dst != "" {
			return p.errf("store has no destination")
		}
		if len(fields) != 4 {
			return p.errf("store wants: store LOC EXPR CLASS")
		}
		e, err := p.expr(fields[2])
		if err != nil {
			return err
		}
		c, err := p.class(fields[3])
		if err != nil {
			return err
		}
		p.thread.attach(Op{Class: c, AOp: core.OpStore, Loc: Loc(fields[1]), Dst: NoReg, Operand: e})
		return nil
	case "cas":
		if len(fields) != 5 {
			return p.errf("cas wants: cas LOC EXPECTED DESIRED CLASS")
		}
		exp, err := p.expr(fields[2])
		if err != nil {
			return err
		}
		des, err := p.expr(fields[3])
		if err != nil {
			return err
		}
		c, err := p.class(fields[4])
		if err != nil {
			return err
		}
		o := Op{Class: c, AOp: core.OpCAS, Loc: Loc(fields[1]), Dst: NoReg, Operand: des, Expected: exp}
		if dst != "" {
			r, err := p.defReg(dst)
			if err != nil {
				return err
			}
			o.Dst = r
		}
		p.thread.attach(o)
		return nil
	case "use":
		if len(fields) != 2 {
			return p.errf("use wants a register")
		}
		r, ok := p.regs[fields[1]]
		if !ok {
			return p.errf("use of undefined register %s", fields[1])
		}
		p.thread.Use(r)
		return nil
	case "branch":
		if len(fields) != 2 {
			return p.errf("branch wants an expression")
		}
		e, err := p.expr(fields[1])
		if err != nil {
			return err
		}
		p.thread.Branch(e)
		return nil
	}
	if aop, ok := rmwOps[fields[0]]; ok {
		// OP LOC [EXPR] CLASS — inc/dec may omit the operand.
		var operandStr, classStr string
		switch len(fields) {
		case 3:
			operandStr, classStr = "0", fields[2]
		case 4:
			operandStr, classStr = fields[2], fields[3]
		default:
			return p.errf("%s wants: %s LOC [EXPR] CLASS", fields[0], fields[0])
		}
		e, err := p.expr(operandStr)
		if err != nil {
			return err
		}
		c, err := p.class(classStr)
		if err != nil {
			return err
		}
		o := Op{Class: c, AOp: aop, Loc: Loc(fields[1]), Dst: NoReg, Operand: e}
		if dst != "" {
			r, err := p.defReg(dst)
			if err != nil {
				return err
			}
			o.Dst = r
		}
		p.thread.attach(o)
		return nil
	}
	return p.errf("unknown statement %q", fields[0])
}

// ifBlock parses `if COND [&& COND]... {`.
func (p *parser) ifBlock(line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "if"))
	if !strings.HasSuffix(body, "{") {
		return p.errf("if-block must end with {")
	}
	body = strings.TrimSpace(strings.TrimSuffix(body, "{"))
	n := 0
	for _, cond := range strings.Split(body, "&&") {
		g, err := p.cond(strings.TrimSpace(cond))
		if err != nil {
			return err
		}
		p.guards = append(p.guards, g)
		n++
	}
	p.blockSizes = append(p.blockSizes, n)
	p.thread.EndGuards()
	p.thread.WithGuards(p.guards...)
	return nil
}

// cond parses a guard condition.
func (p *parser) cond(s string) (Guard, error) {
	even := false
	if strings.HasSuffix(s, " even") {
		even = true
		s = strings.TrimSuffix(s, " even")
	}
	var opStr string
	var gop GuardOp
	switch {
	case strings.Contains(s, "!="):
		opStr, gop = "!=", GuardNE
	case strings.Contains(s, "=="):
		opStr, gop = "==", GuardEQ
	default:
		return Guard{}, p.errf("bad condition %q (want == or !=)", s)
	}
	if even {
		if gop != GuardEQ {
			return Guard{}, p.errf("'even' applies only to ==")
		}
		gop = GuardEQEven
	}
	parts := strings.SplitN(s, opStr, 2)
	a, err := p.expr(strings.TrimSpace(parts[0]))
	if err != nil {
		return Guard{}, err
	}
	b, err := p.expr(strings.TrimSpace(parts[1]))
	if err != nil {
		return Guard{}, err
	}
	return Guard{A: a, B: b, Op: gop}, nil
}
