package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTrace writes the event stream in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Track layout:
//
//	pid 1 "warps":       one thread per warp; stalls render as duration
//	                     slices named by reason, issues/barriers as
//	                     instants.
//	pid 2 "L1 caches":   one thread per node; hits/misses, consistency
//	                     actions, MSHR and store-buffer events as
//	                     instants.
//	pid 3 "L2 banks":    one thread per node; hits/misses, atomics,
//	                     ownership traffic as instants.
//	pid 4 "NoC":         async begin/end pairs (arrows) per message,
//	                     keyed by the message sequence number.
//
// Timestamps are simulated cycles written as microseconds (1 cycle =
// 1 us), which keeps Perfetto's time axis readable.
type ChromeTrace struct {
	bw    *bufio.Writer
	n     int
	err   error
	named map[[2]int]bool // (pid, tid) pairs that have a thread_name
}

const (
	chromePidWarps = 1
	chromePidL1    = 2
	chromePidL2    = 3
	chromePidNoC   = 4
)

// NewChromeTrace builds the sink over w. The caller owns w and closes it
// after Close (which writes the JSON trailer and flushes).
func NewChromeTrace(w io.Writer) *ChromeTrace {
	c := &ChromeTrace{bw: bufio.NewWriter(w), named: map[[2]int]bool{}}
	_, c.err = c.bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	return c
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (c *ChromeTrace) write(ev chromeEvent) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if c.n > 0 {
		c.bw.WriteByte(',')
	}
	c.n++
	_, c.err = c.bw.Write(b)
}

// nameTrack emits the process/thread metadata for a track once.
func (c *ChromeTrace) nameTrack(pid, tid int, process, thread string) {
	key := [2]int{pid, -1}
	if !c.named[key] {
		c.named[key] = true
		c.write(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": process}})
	}
	key = [2]int{pid, tid}
	if !c.named[key] {
		c.named[key] = true
		c.write(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": thread}})
	}
}

func (c *ChromeTrace) instant(ev Event, pid, tid int, process, track, name string, args map[string]any) {
	c.nameTrack(pid, tid, process, track)
	c.write(chromeEvent{Name: name, Cat: ev.Comp.String(), Ph: "i",
		Ts: ev.Cycle, Pid: pid, Tid: tid, S: "t", Args: args})
}

// Emit translates one probe event into trace-event records.
func (c *ChromeTrace) Emit(ev Event) {
	switch ev.Kind {
	case StallEnd:
		// Render the whole stall as a complete duration slice.
		c.nameTrack(chromePidWarps, ev.Warp, "warps", fmt.Sprintf("warp %d", ev.Warp))
		c.write(chromeEvent{Name: ev.Reason.String(), Cat: "stall", Ph: "X",
			Ts: ev.Cycle - ev.Arg, Dur: ev.Arg, Pid: chromePidWarps, Tid: ev.Warp,
			Args: map[string]any{"node": ev.Node}})
	case StallBegin:
		// The paired StallEnd carries the slice; nothing to draw yet.
	case WarpIssue:
		c.instant(ev, chromePidWarps, ev.Warp, "warps",
			fmt.Sprintf("warp %d", ev.Warp), "issue", map[string]any{"op": ev.Arg})
	case BarrierArrive:
		c.instant(ev, chromePidWarps, ev.Warp, "warps",
			fmt.Sprintf("warp %d", ev.Warp), "barrier-arrive", nil)
	case BarrierRelease:
		c.instant(ev, chromePidWarps, 0, "warps", "warp 0",
			"barrier-release", map[string]any{"warps": ev.Arg})
	case CacheHit, CacheMiss, AcquireInvalidation, ReleaseFlush,
		AtomicPerformed, Writeback, OwnershipRequest, OwnershipGrant,
		RemoteForward, MSHRAlloc, MSHRCoalesce, SBFill, SBDrain,
		CoalescerPush, CoalescerDrain:
		pid, process := chromePidL1, "L1 caches"
		if ev.Comp == CompL2 {
			pid, process = chromePidL2, "L2 banks"
		}
		args := map[string]any{"addr": ev.Addr}
		if ev.Warp >= 0 {
			args["warp"] = ev.Warp
		}
		if ev.Arg != 0 {
			args["arg"] = ev.Arg
		}
		c.instant(ev, pid, ev.Node, process,
			fmt.Sprintf("%s %d", ev.Comp, ev.Node), ev.Kind.String(), args)
	case NoCEnqueue:
		c.nameTrack(chromePidNoC, ev.Node, "NoC", fmt.Sprintf("node %d", ev.Node))
		c.write(chromeEvent{Name: "msg", Cat: "noc", Ph: "b", Ts: ev.Cycle,
			Pid: chromePidNoC, Tid: ev.Node, ID: ev.Msg,
			Args: map[string]any{"src": ev.Node, "dst": ev.Arg, "flits": ev.Aux}})
	case NoCDeliver:
		c.nameTrack(chromePidNoC, ev.Node, "NoC", fmt.Sprintf("node %d", ev.Node))
		c.write(chromeEvent{Name: "msg", Cat: "noc", Ph: "e", Ts: ev.Cycle,
			Pid: chromePidNoC, Tid: ev.Node, ID: ev.Msg})
	case NoCHop:
		// Per-hop detail is too fine for the timeline; skip.
	}
}

// Close writes the JSON trailer and flushes.
func (c *ChromeTrace) Close() error {
	if c.err != nil {
		return c.err
	}
	if _, err := c.bw.WriteString("]}\n"); err != nil {
		return err
	}
	return c.bw.Flush()
}
