package fault

import (
	"strings"
	"testing"
)

func TestParseFullSpec(t *testing.T) {
	spec, err := Parse("delay:p=0.05,max=12;dup:p=0.02;reorder:p=0.01,window=16,burst=4;" +
		"mshr:cap=2,period=5000,len=500;sb:cap=1,period=7000,len=300;" +
		"l2stall:period=10000,len=200;wedge:warp=3,from=100")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Delay == nil || spec.Delay.P != 0.05 || spec.Delay.Max != 12 {
		t.Errorf("delay clause: %+v", spec.Delay)
	}
	if spec.Dup == nil || spec.Dup.P != 0.02 {
		t.Errorf("dup clause: %+v", spec.Dup)
	}
	if spec.Reorder == nil || spec.Reorder.Window != 16 || spec.Reorder.Burst != 4 {
		t.Errorf("reorder clause: %+v", spec.Reorder)
	}
	if spec.MSHR == nil || spec.MSHR.Cap != 2 || spec.MSHR.Period != 5000 || spec.MSHR.Len != 500 {
		t.Errorf("mshr clause: %+v", spec.MSHR)
	}
	if spec.SB == nil || spec.SB.Cap != 1 {
		t.Errorf("sb clause: %+v", spec.SB)
	}
	if spec.L2Stall == nil || spec.L2Stall.Period != 10000 || spec.L2Stall.Len != 200 {
		t.Errorf("l2stall clause: %+v", spec.L2Stall)
	}
	if spec.Wedge == nil || spec.Wedge.Warp != 3 || spec.Wedge.From != 100 {
		t.Errorf("wedge clause: %+v", spec.Wedge)
	}
	if spec.Metamorphic() {
		t.Error("spec with wedge must not be metamorphic")
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := Parse("delay:p=0.1;reorder:p=0.2;mshr:cap=0;l2stall:;wedge:")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Delay.Max != 8 {
		t.Errorf("delay max default = %d, want 8", spec.Delay.Max)
	}
	if spec.Reorder.Window != 16 || spec.Reorder.Burst != 1 {
		t.Errorf("reorder defaults: %+v", spec.Reorder)
	}
	if spec.MSHR.Period != 10000 || spec.MSHR.Len != 500 {
		t.Errorf("mshr defaults: %+v", spec.MSHR)
	}
	if spec.Wedge.Warp != 0 || spec.Wedge.From != 0 {
		t.Errorf("wedge defaults: %+v", spec.Wedge)
	}
}

func TestParseMetamorphic(t *testing.T) {
	spec, err := Parse("delay:p=0.1,max=4;dup:p=0.1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !spec.Metamorphic() {
		t.Error("delay+dup spec should be metamorphic")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus:p=0.1",              // unknown clause
		"delay:p=0.1,max=0",        // max must be > 0
		"delay:p=0",                // p must be > 0
		"delay:p=x",                // unparsable float
		"dup:q=0.1",                // unknown key
		"reorder:p=0.1,burst=0",    // burst must be > 0
		"mshr:cap=2,period=0",      // period must be > 0
		"mshr:cap=2,len=20000",     // len must be < period
		"l2stall:period=10,len=10", // len must be < period
		"delay:p",                  // malformed key=value
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", bad)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec, err := Parse("delay:p=0.3,max=10;dup:p=0.2;reorder:p=0.1,window=8,burst=3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	draw := func(seed int64) ([]int64, []bool) {
		inj := NewInjector(spec, seed)
		delays := make([]int64, 200)
		dups := make([]bool, 200)
		for i := range delays {
			delays[i] = inj.MessageDelay()
			dups[i] = inj.Duplicate()
		}
		return delays, dups
	}
	d1, u1 := draw(42)
	d2, u2 := draw(42)
	for i := range d1 {
		if d1[i] != d2[i] || u1[i] != u2[i] {
			t.Fatalf("same seed diverged at draw %d: (%d,%v) vs (%d,%v)", i, d1[i], u1[i], d2[i], u2[i])
		}
	}
	d3, _ := draw(43)
	same := true
	for i := range d1 {
		if d1[i] != d3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical delay sequences")
	}
}

func TestPressureWindows(t *testing.T) {
	spec, err := Parse("mshr:cap=2,period=100,len=10;sb:cap=1,period=100,len=10;l2stall:period=100,len=10")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	inj := NewInjector(spec, 1)
	// Inside the window.
	if got := inj.MSHRCap(5, 16); got != 2 {
		t.Errorf("MSHRCap in window = %d, want 2", got)
	}
	if got := inj.SBCap(205, 16); got != 1 {
		t.Errorf("SBCap in window = %d, want 1", got)
	}
	if until := inj.L2StallUntil(305); until != 310 {
		t.Errorf("L2StallUntil(305) = %d, want 310", until)
	}
	// Outside the window: real capacity, no stall.
	if got := inj.MSHRCap(50, 16); got != 16 {
		t.Errorf("MSHRCap outside window = %d, want 16", got)
	}
	if until := inj.L2StallUntil(50); until != 0 {
		t.Errorf("L2StallUntil outside window = %d, want 0", until)
	}
	c := inj.Counts()
	if c.MSHRSqueezes != 1 || c.SBSqueezes != 1 || c.L2Stalls != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestWedge(t *testing.T) {
	spec, err := Parse("wedge:warp=2,from=50")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	inj := NewInjector(spec, 1)
	if inj.Wedged(2, 10) {
		t.Error("wedged before `from` cycle")
	}
	if inj.Wedged(1, 100) {
		t.Error("wrong warp wedged")
	}
	if !inj.Wedged(2, 50) {
		t.Error("warp 2 not wedged at cycle 50")
	}
	if s := inj.Counts().String(); !strings.Contains(s, "1 wedge-held") {
		t.Errorf("counts string = %q", s)
	}
}
