package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"rats/internal/hist"
)

// Registry tracks every check of a suite run for the live /checks
// endpoint and the rats_check_* metrics aggregates. A nil *Registry is
// the disabled mode: NewCheck returns a nil *Check and the whole
// instrumentation layer folds away.
type Registry struct {
	mu        sync.Mutex
	checks    []*Check
	latency   hist.Histogram // per-check wall time, microseconds
	exemplars map[int64]Exemplar
	clock     func() time.Time
}

// Exemplar links one latency-histogram bucket to a recent trace that
// landed in it — the OpenMetrics exemplar payload for that bucket.
type Exemplar struct {
	TraceID string
	ValueUs int64
	At      time.Time
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// SetClock overrides the wall clock for every subsequently created
// check (deterministic tests and goldens).
func (r *Registry) SetClock(fn func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = fn
	r.mu.Unlock()
}

// NewCheck registers and returns a new check (nil on a nil registry).
// The registry observes the check's wall time into its latency
// histogram when the check finishes.
func (r *Registry) NewCheck(program, model string) *Check {
	if r == nil {
		return nil
	}
	c := NewCheck(program, model)
	r.mu.Lock()
	c.clock = r.clock
	c.onFinish = r.observe
	r.checks = append(r.checks, c)
	r.mu.Unlock()
	return c
}

func (r *Registry) observe(c *Check) {
	us := c.elapsedNS.Load() / 1e3
	id := c.TraceID()
	r.mu.Lock()
	r.latency.Record(us)
	if id != "" {
		// Last trace to land in a bucket wins: recency beats fairness
		// for "show me a request that was this slow".
		if r.exemplars == nil {
			r.exemplars = make(map[int64]Exemplar)
		}
		at := time.Now()
		if r.clock != nil {
			at = r.clock()
		}
		r.exemplars[hist.UpperFor(us)] = Exemplar{TraceID: id, ValueUs: us, At: at}
	}
	r.mu.Unlock()
}

// LatencyExemplars returns the per-bucket exemplar table, keyed by the
// same inclusive bucket upper bound Histogram.Each reports (nil on nil
// or when no traced checks have finished).
func (r *Registry) LatencyExemplars() map[int64]Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.exemplars) == 0 {
		return nil
	}
	out := make(map[int64]Exemplar, len(r.exemplars))
	for k, v := range r.exemplars {
		out[k] = v
	}
	return out
}

// Totals aggregates the deterministic counters across every registered
// check — the rats_check_* exposition source. Summing Records keeps the
// aggregates order-independent, so the final metrics equal the sums over
// the per-check JSONL records exactly.
type Totals struct {
	States      [NumCheckStates]int64
	Executions  int64
	Transitions int64
	SleepSkips  int64
	MemoHits    int64
	Analyzed    int64
	Recycled    int64
	Allocated   int64
	RacePairs   int64
	SCResults   int64

	SolveDecisions    int64
	SolvePropagations int64
	SolveConflicts    int64
	SolveLearned      int64
}

// RegistrySnapshot is the /checks JSON payload.
type RegistrySnapshot struct {
	Total      int           `json:"total"`
	Running    int           `json:"running"`
	Done       int           `json:"done"`
	Limit      int           `json:"limit"`
	Stopped    int           `json:"stopped"`
	Failed     int           `json:"failed"`
	Executions int64         `json:"executions"`
	Latency    *hist.Summary `json:"latency_ms,omitempty"`
	Checks     []Snapshot    `json:"checks"`
}

// sortedChecks returns the registered checks ordered by (program,
// model): registration order is scheduling-dependent under a parallel
// suite runner, so every reader sorts for a stable view.
func (r *Registry) sortedChecks() []*Check {
	r.mu.Lock()
	out := append([]*Check(nil), r.checks...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].program != out[j].program {
			return out[i].program < out[j].program
		}
		return out[i].model < out[j].model
	})
	return out
}

// Snapshot returns the live /checks view, checks sorted by (program,
// model).
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	for _, c := range r.sortedChecks() {
		s := c.Snapshot()
		snap.Total++
		switch c.State() {
		case StateRunning:
			snap.Running++
		case StateDone:
			snap.Done++
		case StateLimit:
			snap.Limit++
		case StateStopped:
			snap.Stopped++
		case StateFailed:
			snap.Failed++
		}
		snap.Executions += s.Executions
		snap.Checks = append(snap.Checks, s)
	}
	r.mu.Lock()
	if r.latency.Count() > 0 {
		// The histogram records microseconds; surface milliseconds.
		us := r.latency.Summarize()
		ms := hist.Summary{
			Count: us.Count,
			P50:   us.P50 / 1000, P90: us.P90 / 1000, P99: us.P99 / 1000,
			P999: us.P999 / 1000,
			Max:  us.Max / 1000,
			Mean: us.Mean / 1000,
		}
		snap.Latency = &ms
	}
	r.mu.Unlock()
	return snap
}

// Totals returns the metrics aggregates (zero value on nil).
func (r *Registry) Totals() Totals {
	var t Totals
	if r == nil {
		return t
	}
	r.mu.Lock()
	checks := append([]*Check(nil), r.checks...)
	r.mu.Unlock()
	for _, c := range checks {
		t.States[c.State()]++
		t.Executions += c.enumerated.Load()
		t.Transitions += c.transitions.Load()
		t.SleepSkips += c.sleepSkips.Load()
		t.MemoHits += c.memoHits.Load()
		t.Analyzed += c.analyzed.Load()
		t.Recycled += c.recycled.Load()
		t.Allocated += c.allocated.Load()
		t.RacePairs += c.racePairs.Load()
		t.SCResults += c.scResults.Load()
		t.SolveDecisions += c.solveDecisions.Load()
		t.SolvePropagations += c.solvePropagations.Load()
		t.SolveConflicts += c.solveConflicts.Load()
		t.SolveLearned += c.solveLearned.Load()
	}
	return t
}

// Latency returns the per-check wall-time histogram in microseconds
// (copy; zero value on nil).
func (r *Registry) Latency() hist.Histogram {
	if r == nil {
		return hist.Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latency
}

// Records returns every check's deterministic record, sorted by
// (program, model).
func (r *Registry) Records() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for _, c := range r.sortedChecks() {
		out = append(out, c.Record())
	}
	return out
}

// WriteRecords writes records as JSONL (one JSON object per line). With
// records in a deterministic order the output is byte-identical across
// runs and worker counts.
func WriteRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}
